/**
 * @file
 * Paper Fig. 21: LLC-size sensitivity — proposal speedup vs same-size
 * baseline for 1MB to 8MB LLCs.
 *
 * Paper reference points: average gain declines from 6.3% at 1MB to
 * 4.2% at 8MB (bigger LLCs retain translations by capacity); mcf keeps
 * gaining because its data set still does not fit.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    struct Geom
    {
        std::uint32_t sizeMb;
        Cycle latency;
        double paperAvg;
    };
    const Geom geoms[] = {
        {1, 18, 6.3}, {2, 20, 5.1}, {4, 22, std::nan("")}, {8, 24, 4.2}};

    const Benchmark subset[] = {Benchmark::xalancbmk, Benchmark::canneal,
                                Benchmark::mcf, Benchmark::cc,
                                Benchmark::pr};

    static std::map<std::uint32_t, std::vector<double>> series;

    for (const Geom &g : geoms) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            Geom gg = g;
            registerCase("fig21/llc_" + std::to_string(g.sizeMb) + "M/" +
                             bname,
                         [gg, b, bname] {
                             SystemConfig base = baselineConfig();
                             base.llcPerCore.sizeBytes =
                                 gg.sizeMb * 1024 * 1024;
                             base.llcPerCore.latency = gg.latency;
                             RunResult rb = runBenchmark(base, b);

                             SystemConfig enh = base;
                             TranslationAwareOptions o;
                             o.tempo = true;
                             applyTranslationAware(enh, o);
                             RunResult re = runBenchmark(enh, b);

                             const double sp = speedup(rb, re);
                             addRow("LLC=" + std::to_string(gg.sizeMb) +
                                        "MB",
                                    bname, (sp - 1) * 100, std::nan(""),
                                    "%");
                             series[gg.sizeMb].push_back(sp);
                         });
        }
    }

    registerCase("fig21/summary", [&geoms] {
        for (const Geom &g : geoms)
            addRow("LLC=" + std::to_string(g.sizeMb) + "MB", "geomean",
                   (geomean(series[g.sizeMb]) - 1) * 100, g.paperAvg,
                   "%");
    });

    return benchMain(argc, argv, "Fig. 21 — LLC size sensitivity");
}
