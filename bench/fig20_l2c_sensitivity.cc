/**
 * @file
 * Paper Fig. 20: L2C-size sensitivity — proposal speedup vs same-size
 * baseline for 256KB to 1MB L2 caches (larger L2Cs get slightly higher
 * latency, as the paper notes for 1MB).
 *
 * Paper reference points: average gain roughly flat at 768KB and lower
 * at 1MB (baseline retains more translations by capacity); xalancbmk
 * keeps gaining; mcf's gain shrinks once translations fit.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    struct Geom
    {
        std::uint32_t sizeKb;
        std::uint32_t ways;
        Cycle latency;
    };
    const Geom geoms[] = {
        {256, 8, 9}, {512, 8, 10}, {768, 12, 11}, {1024, 16, 12}};

    const Benchmark subset[] = {Benchmark::xalancbmk, Benchmark::canneal,
                                Benchmark::mcf, Benchmark::cc,
                                Benchmark::pr};

    static std::map<std::uint32_t, std::vector<double>> series;

    for (const Geom &g : geoms) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            Geom gg = g;
            registerCase("fig20/l2_" + std::to_string(g.sizeKb) + "K/" +
                             bname,
                         [gg, b, bname] {
                             SystemConfig base = baselineConfig();
                             base.l2.sizeBytes = gg.sizeKb * 1024;
                             base.l2.ways = gg.ways;
                             base.l2.latency = gg.latency;
                             RunResult rb = runBenchmark(base, b);

                             SystemConfig enh = base;
                             TranslationAwareOptions o;
                             o.tempo = true;
                             applyTranslationAware(enh, o);
                             RunResult re = runBenchmark(enh, b);

                             const double sp = speedup(rb, re);
                             addRow("L2C=" + std::to_string(gg.sizeKb) +
                                        "KB",
                                    bname, (sp - 1) * 100, std::nan(""),
                                    "%");
                             series[gg.sizeKb].push_back(sp);
                         });
        }
    }

    registerCase("fig20/summary", [&geoms] {
        for (const Geom &g : geoms)
            addRow("L2C=" + std::to_string(g.sizeKb) + "KB", "geomean",
                   (geomean(series[g.sizeKb]) - 1) * 100, std::nan(""),
                   "% (paper: flat to declining past 512KB)");
    });

    return benchMain(argc, argv, "Fig. 20 — L2C size sensitivity");
}
