/**
 * @file
 * Paper Table II: per-benchmark characterization — STLB MPKI and the
 * L2C/LLC MPKIs for replay loads, non-replay loads and leaf-level
 * translations (PTL1), on the baseline system.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    for (Benchmark b : kAllBenchmarks) {
        const std::string name = benchmarkName(b);
        registerCase("table2/" + name, [b, name] {
            const RunResult &r =
                cachedRun("base/" + name, baselineConfig(), b);
            const TableTwoRow &p = paperTableTwo(b);
            addRow("STLB MPKI", name, r.stlbMpki, p.stlbMpki, "MPKI");
            addRow("L2C replay", name, r.l2ReplayMpki, p.l2Replay,
                   "MPKI");
            addRow("L2C non-replay", name, r.l2NonReplayMpki,
                   p.l2NonReplay, "MPKI");
            addRow("L2C PTL1", name, r.l2Ptl1Mpki, p.l2Ptl1, "MPKI");
            addRow("LLC replay", name, r.llcReplayMpki, p.llcReplay,
                   "MPKI");
            addRow("LLC non-replay", name, r.llcNonReplayMpki,
                   p.llcNonReplay, "MPKI");
            addRow("LLC PTL1", name, r.llcPtl1Mpki, p.llcPtl1, "MPKI");
        });
    }

    return benchMain(argc, argv,
                     "Table II — benchmark characterization (baseline)");
}
