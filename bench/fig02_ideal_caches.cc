/**
 * @file
 * Paper Fig. 2: speedup with *ideal* L2C/LLC treatment of leaf-level
 * translations (T), replay loads (R), and both (TR). An ideal cache
 * grants a hit at its own latency for the selected class while still
 * pushing the miss through the MSHRs (bandwidth is charged).
 *
 * Paper reference points (suite average): ideal LLC for TR = +30.7%;
 * ideal L2C+LLC for TR = +37.6%; ideal L2C for T only = +4.7%;
 * ideal L2C for R only = +30.2%.
 */

#include "bench_common.hh"

using namespace tacbench;

namespace {

struct Variant
{
    const char *name;
    double paperAvg; ///< percent improvement
    void (*apply)(SystemConfig &);
};

const Variant kVariants[] = {
    {"ideal-LLC(T)", std::nan(""),
     [](SystemConfig &c) { c.idealLlcTranslations = true; }},
    {"ideal-LLC(R)", std::nan(""),
     [](SystemConfig &c) { c.idealLlcReplays = true; }},
    {"ideal-LLC(TR)", 30.7,
     [](SystemConfig &c) {
         c.idealLlcTranslations = c.idealLlcReplays = true;
     }},
    {"ideal-L2C(T)+LLC(TR)", std::nan(""),
     [](SystemConfig &c) {
         c.idealLlcTranslations = c.idealLlcReplays = true;
         c.idealL2Translations = true;
     }},
    {"ideal-L2C+LLC(TR)", 37.6,
     [](SystemConfig &c) {
         c.idealLlcTranslations = c.idealLlcReplays = true;
         c.idealL2Translations = c.idealL2Replays = true;
     }},
};

} // namespace

int
main(int argc, char **argv)
{
    // A memory-intensive subset keeps the binary fast; the suite-average
    // rows are computed over it.
    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::radii};

    for (const Variant &v : kVariants) {
        auto *vp = &v;
        registerCase(std::string("fig02/") + v.name, [vp, &subset] {
            std::vector<double> speedups;
            for (Benchmark b : subset) {
                const std::string name = benchmarkName(b);
                const RunResult &base =
                    cachedRun("base/" + name, baselineConfig(), b);
                SystemConfig cfg = baselineConfig();
                vp->apply(cfg);
                RunResult r = runBenchmark(cfg, b);
                const double s = speedup(base, r);
                addRow(vp->name, name, (s - 1) * 100, std::nan(""), "%");
                speedups.push_back(s);
            }
            addRow(vp->name, "geomean", (geomean(speedups) - 1) * 100,
                   vp->paperAvg, "%");
        });
    }

    return benchMain(argc, argv,
                     "Fig. 2 — speedup with ideal L2C/LLC for T/R/TR");
}
