/**
 * @file
 * Paper Fig. 12: leaf-level translation MPKI at the LLC for baseline
 * SHiP, SHiP with the flag-extended signatures only (NewSign), and full
 * T-SHiP (NewSign + RRPV=0 insertion for leaf translations); plus the
 * Hawkeye equivalents.
 *
 * Paper reference point: each step lowers translation MPKI, with T-SHiP
 * pushing the on-chip translation hit rate to ~99%.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    struct Variant
    {
        const char *name;
        PolicyKind kind;
        bool newSig;
        bool tr0;
    };
    const Variant variants[] = {
        {"SHiP", PolicyKind::SHiP, false, false},
        {"SHiP+NewSign", PolicyKind::SHiP, true, false},
        {"T-SHiP", PolicyKind::SHiP, true, true},
        {"Hawkeye", PolicyKind::Hawkeye, false, false},
        {"Hawkeye+NewSign", PolicyKind::Hawkeye, true, false},
        {"T-Hawkeye", PolicyKind::Hawkeye, true, true},
    };

    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::radii, Benchmark::tc};

    static std::map<std::string, std::vector<double>> series;

    for (const Variant &v : variants) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            Variant vv = v;
            registerCase(std::string("fig12/") + v.name + "/" + bname,
                         [vv, b, bname] {
                             SystemConfig cfg = baselineConfig();
                             cfg.llcPolicy = vv.kind;
                             cfg.llcOpts.newSignatures = vv.newSig;
                             cfg.llcOpts.translationRrpv0 = vv.tr0;
                             RunResult r = runBenchmark(cfg, b);
                             addRow(vv.name, bname, r.llcPtl1Mpki,
                                    std::nan(""), "MPKI");
                             series[vv.name].push_back(r.llcPtl1Mpki);
                         });
        }
    }

    registerCase("fig12/summary", [] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        for (auto &kv : series)
            addRow(kv.first, "suite avg", avg(kv.second), std::nan(""),
                   "MPKI (paper: SHiP > NewSign > T-SHiP)");
    });

    return benchMain(
        argc, argv,
        "Fig. 12 — LLC translation MPKI: signatures and T-insertion");
}
