/**
 * @file
 * Paper Fig. 14 — the headline result: speedup over the DRRIP+SHiP
 * baseline as the enhancements stack up: T-DRRIP, +T-SHiP, +ATP,
 * +TEMPO.
 *
 * Paper reference points (suite average): T-DRRIP +0.5%, +T-SHiP +2.9%,
 * +ATP +4.8%, +TEMPO +5.1% (max +10.6%); >98% of leaf translations hit
 * on-chip with the full scheme.
 *
 * All 45 simulation points (9 baselines + 4 steps x 9 benchmarks) are
 * registered up front and executed by the parallel sweep runner; the
 * benchmark cases only read memoized results.
 */

#include <algorithm>
#include <map>

#include "bench_common.hh"

using namespace tacbench;

namespace {

struct Step
{
    const char *name;
    double paperAvg;
    TranslationAwareOptions opts;
};

const Step kSteps[] = {
    {"T-DRRIP", 0.5, {true, false, false, false, false}},
    {"+T-SHiP", 2.9, {true, true, false, false, false}},
    {"+ATP", 4.8, {true, true, false, true, false}},
    {"+TEMPO", 5.1, {true, true, false, true, true}},
};

std::string
stepKey(const Step &s, const std::string &bname)
{
    return std::string("fig14/") + s.name + "/" + bname;
}

SystemConfig
stepConfig(const Step &s)
{
    SystemConfig cfg = baselineConfig();
    applyTranslationAware(cfg, s.opts);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    static std::map<std::string, std::vector<double>> series;
    static double onChip = 0;

    // Phase 1: register every point for the parallel sweep.
    for (Benchmark b : kAllBenchmarks)
        registerPoint("base/" + benchmarkName(b), baselineConfig(), b);
    for (const Step &s : kSteps)
        for (Benchmark b : kAllBenchmarks)
            registerPoint(stepKey(s, benchmarkName(b)), stepConfig(s), b);

    // Optional VM axes: does the full scheme still pay off when huge
    // pages shrink the walk burden, or when nesting multiplies it?
    if (vmAxesRequested()) {
        for (const VmAxis &a : vmAxes()) {
            for (Benchmark b : kAllBenchmarks) {
                const std::string bname = benchmarkName(b);
                registerPoint("vm/" + std::string(a.name) + "/base/" +
                                  bname,
                              withVmAxis(baselineConfig(), a), b);
                registerPoint("vm/" + std::string(a.name) + "/prop/" +
                                  bname,
                              withVmAxis(proposedConfig(), a), b);
            }
        }
    }

    // Phase 2/3 (in benchMain): execute the sweep, then these cases
    // fetch the memoized results and derive the figure's rows.
    for (const Step &s : kSteps) {
        for (Benchmark b : kAllBenchmarks) {
            const std::string bname = benchmarkName(b);
            Step step = s;
            registerCase(stepKey(s, bname), [step, b, bname] {
                const RunResult &base =
                    cachedRun("base/" + bname, baselineConfig(), b);
                const RunResult &r =
                    cachedRun(stepKey(step, bname), stepConfig(step), b);
                const double sp = speedup(base, r);
                addRow(step.name, bname, (sp - 1) * 100, std::nan(""),
                       "%");
                series[step.name].push_back(sp);
                if (step.opts.tempo)
                    onChip += r.leafOnChipHitRate;
            });
        }
    }

    if (vmAxesRequested()) {
        for (const VmAxis &a : vmAxes()) {
            const VmAxis axis = a;
            registerCase("fig14/vm/" + std::string(a.name), [axis] {
                std::vector<double> sp;
                double mpki = 0;
                for (Benchmark b : kAllBenchmarks) {
                    const std::string bname = benchmarkName(b);
                    const std::string pre =
                        "vm/" + std::string(axis.name) + "/";
                    const RunResult &base =
                        cachedRun(pre + "base/" + bname,
                                  withVmAxis(baselineConfig(), axis), b);
                    const RunResult &prop =
                        cachedRun(pre + "prop/" + bname,
                                  withVmAxis(proposedConfig(), axis), b);
                    sp.push_back(speedup(base, prop));
                    mpki += base.stlbMpki;
                }
                addRow(std::string("vm:") + axis.name, "geomean",
                       (geomean(sp) - 1) * 100, std::nan(""), "%");
                addRow(std::string("vm:") + axis.name, "base STLB MPKI",
                       mpki / 9.0, std::nan(""), "");
            });
        }
    }

    registerCase("fig14/summary", [] {
        for (const Step &s : kSteps) {
            const auto &v = series[s.name];
            addRow(s.name, "geomean", (geomean(v) - 1) * 100, s.paperAvg,
                   "%");
            double mx = 0;
            for (double x : v)
                mx = std::max(mx, (x - 1) * 100);
            if (std::string(s.name) == "+TEMPO")
                addRow(s.name, "max", mx, 10.6, "%");
        }
        addRow("leaf on-chip hit rate", "suite avg",
               onChip / 9.0 * 100, 98.0, "%");
    });

    return benchMain(argc, argv,
                     "Fig. 14 — speedup with the paper's enhancements");
}
