/**
 * @file
 * Paper Fig. 6: replay-load MPKI at the LLC under the baseline
 * replacement policies.
 *
 * Paper reference point: replacement policy choice has essentially no
 * effect on replay MPKI — replay blocks are dead on arrival, so no
 * recency/prediction scheme can keep the ones that matter.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const std::pair<const char *, PolicyKind> policies[] = {
        {"LRU", PolicyKind::LRU},       {"SRRIP", PolicyKind::SRRIP},
        {"DRRIP", PolicyKind::DRRIP},   {"SHiP", PolicyKind::SHiP},
        {"Hawkeye", PolicyKind::Hawkeye},
    };

    static std::map<std::string, std::vector<double>> series;

    for (auto [pname, kind] : policies) {
        for (Benchmark b : kAllBenchmarks) {
            const std::string bname = benchmarkName(b);
            PolicyKind k = kind;
            std::string pn = pname;
            registerCase(std::string("fig06/") + pname + "/" + bname,
                         [k, pn, b, bname] {
                             SystemConfig cfg = baselineConfig();
                             cfg.llcPolicy = k;
                             RunResult r = runBenchmark(cfg, b);
                             addRow(pn, bname, r.llcReplayMpki,
                                    std::nan(""), "MPKI");
                             series[pn].push_back(r.llcReplayMpki);
                         });
        }
    }

    registerCase("fig06/summary", [] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        for (auto &kv : series)
            addRow(kv.first, "suite avg", avg(kv.second), std::nan(""),
                   "MPKI (policy-invariant per paper)");
    });

    return benchMain(argc, argv,
                     "Fig. 6 — replay MPKI at LLC by replacement policy");
}
