/**
 * @file
 * Paper Fig. 8: LLC replay MPKI with and without state-of-the-art data
 * prefetchers (IPCP at L1D; SPP/Bingo/ISB at L2C).
 *
 * Paper reference point: spatial prefetchers barely move replay MPKI
 * (<1% improvement) because they cannot (or cannot profitably) cross
 * pages; temporal ISB helps some benchmarks by replaying recorded
 * physical sequences.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    struct Pf
    {
        const char *name;
        PrefetcherKind l1;
        PrefetcherKind l2;
    };
    const Pf pfs[] = {
        {"no-prefetch", PrefetcherKind::None, PrefetcherKind::None},
        {"IPCP", PrefetcherKind::Ipcp, PrefetcherKind::None},
        {"SPP", PrefetcherKind::None, PrefetcherKind::Spp},
        {"Bingo", PrefetcherKind::None, PrefetcherKind::Bingo},
        {"ISB", PrefetcherKind::None, PrefetcherKind::Isb},
    };

    const Benchmark subset[] = {Benchmark::xalancbmk, Benchmark::mcf,
                                Benchmark::canneal, Benchmark::cc,
                                Benchmark::pr, Benchmark::bf};

    static std::map<std::string, std::vector<double>> series;

    for (const Pf &p : pfs) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            Pf pf = p;
            registerCase(std::string("fig08/") + p.name + "/" + bname,
                         [pf, b, bname] {
                             SystemConfig cfg = baselineConfig();
                             cfg.l1Prefetcher = pf.l1;
                             cfg.l2Prefetcher = pf.l2;
                             RunResult r = runBenchmark(cfg, b);
                             addRow(pf.name, bname, r.llcReplayMpki,
                                    std::nan(""), "MPKI");
                             series[pf.name].push_back(r.llcReplayMpki);
                         });
        }
    }

    registerCase("fig08/summary", [] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        const double base = avg(series["no-prefetch"]);
        for (auto &kv : series) {
            const double delta =
                base > 0 ? (kv.second.empty()
                                ? 0.0
                                : (avg(kv.second) / base - 1) * 100)
                         : 0.0;
            addRow(kv.first, "replay MPKI vs none", delta,
                   kv.first == std::string("no-prefetch") ? 0.0
                                                          : std::nan(""),
                   "%");
        }
    });

    return benchMain(argc, argv,
                     "Fig. 8 — LLC replay MPKI with prefetchers");
}
