/**
 * @file
 * Paper §V-B: comparison with CSALT-style dynamic translation/data
 * cache partitioning (Marathe et al., MICRO'17).
 *
 * Paper reference points: CSALT partitioning adds only ~1% on top of
 * the enhanced SHiP/DRRIP baseline; over a weak LRU baseline its gains
 * are larger (corroborating the CSALT paper).
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::xalancbmk};

    std::vector<double> csaltOverStrong, csaltOverLru, propGain;

    for (Benchmark b : subset) {
        const std::string name = benchmarkName(b);
        registerCase(
            "csalt/" + name,
            [b, name, &csaltOverStrong, &csaltOverLru, &propGain] {
                const RunResult &base =
                    cachedRun("base/" + name, baselineConfig(), b);

                // CSALT on the strong (DRRIP+SHiP) baseline.
                SystemConfig cs = baselineConfig();
                cs.llcCsalt = true;
                RunResult rcs = runBenchmark(cs, b);

                // CSALT over a weak LRU baseline (the CSALT paper's own
                // setting, corroborated by §V-B).
                SystemConfig lru = baselineConfig();
                lru.l2Policy = PolicyKind::LRU;
                lru.llcPolicy = PolicyKind::LRU;
                RunResult rlru = runBenchmark(lru, b);
                SystemConfig lruCs = lru;
                lruCs.llcCsalt = true;
                RunResult rlruCs = runBenchmark(lruCs, b);

                const RunResult &rp =
                    cachedRun("prop/" + name, proposedConfig(), b);

                const double sStrong = speedup(base, rcs);
                const double sLru = speedup(rlru, rlruCs);
                const double sProp = speedup(base, rp);
                addRow("CSALT over strong base", name,
                       (sStrong - 1) * 100, std::nan(""), "%");
                addRow("CSALT over LRU base", name, (sLru - 1) * 100,
                       std::nan(""), "%");
                addRow("proposal over strong base", name,
                       (sProp - 1) * 100, std::nan(""), "%");
                csaltOverStrong.push_back(sStrong);
                csaltOverLru.push_back(sLru);
                propGain.push_back(sProp);
            });
    }

    registerCase("csalt/summary",
                 [&csaltOverStrong, &csaltOverLru, &propGain] {
                     addRow("CSALT over strong base", "geomean",
                            (geomean(csaltOverStrong) - 1) * 100, 1.0,
                            "%");
                     addRow("CSALT over LRU base", "geomean",
                            (geomean(csaltOverLru) - 1) * 100,
                            std::nan(""), "% (paper: larger than strong)");
                     addRow("proposal over strong base", "geomean",
                            (geomean(propGain) - 1) * 100, 5.1, "%");
                 });

    return benchMain(argc, argv,
                     "§V-B — comparison with CSALT partitioning");
}
