/**
 * @file
 * Paper Fig. 10 ablation: inserting *replay loads* at RRPV=0 (together
 * with translations) degrades performance — replay blocks are dead, and
 * parking them at RRPV=0 forces RRIP to age (and eventually evict) the
 * translation blocks the scheme is trying to keep.
 *
 * Compares, against the plain baseline: (a) the correct T-DRRIP/T-SHiP
 * insertion (translations 0, replays evict-fast) and (b) the ablated
 * RRPV0-for-both variant. The paper reports (b) losing performance.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::radii, Benchmark::bf};

    std::vector<double> good, bad;

    for (Benchmark b : subset) {
        const std::string name = benchmarkName(b);
        registerCase("fig10/" + name, [b, name, &good, &bad] {
            const RunResult &base =
                cachedRun("base/" + name, baselineConfig(), b);

            SystemConfig tCfg = baselineConfig();
            tCfg.l2Opts.translationRrpv0 = true;
            tCfg.l2Opts.replayEvictFast = true;
            tCfg.llcOpts.newSignatures = true;
            tCfg.llcOpts.translationRrpv0 = true;
            RunResult tRes = runBenchmark(tCfg, b);

            SystemConfig aCfg = tCfg;
            aCfg.l2Opts.replayEvictFast = false;
            aCfg.l2Opts.replayRrpv0 = true;  // ablation: replays at 0
            aCfg.llcOpts.replayRrpv0 = true;
            RunResult aRes = runBenchmark(aCfg, b);

            const double sGood = (speedup(base, tRes) - 1) * 100;
            const double sBad = (speedup(base, aRes) - 1) * 100;
            addRow("T-insertion (correct)", name, sGood, std::nan(""),
                   "%");
            addRow("RRPV0-for-replays (ablated)", name, sBad,
                   std::nan(""), "%");
            good.push_back(sGood);
            bad.push_back(sBad);
        });
    }

    registerCase("fig10/summary", [&good, &bad] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        addRow("T-insertion (correct)", "suite avg", avg(good),
               std::nan(""), "% (paper: positive)");
        addRow("RRPV0-for-replays (ablated)", "suite avg", avg(bad),
               std::nan(""), "% (paper: degradation vs correct)");
    });

    return benchMain(argc, argv,
                     "Fig. 10 — RRPV=0 insertion for replays (ablation)");
}
