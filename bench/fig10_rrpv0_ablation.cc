/**
 * @file
 * Paper Fig. 10 ablation: inserting *replay loads* at RRPV=0 (together
 * with translations) degrades performance — replay blocks are dead, and
 * parking them at RRPV=0 forces RRIP to age (and eventually evict) the
 * translation blocks the scheme is trying to keep.
 *
 * Compares, against the plain baseline: (a) the correct T-DRRIP/T-SHiP
 * insertion (translations 0, replays evict-fast) and (b) the ablated
 * RRPV0-for-both variant. The paper reports (b) losing performance.
 *
 * The 18 points (6 benchmarks x {base, correct, ablated}) are registered
 * up front and executed by the parallel sweep runner.
 */

#include "bench_common.hh"

using namespace tacbench;

namespace {

SystemConfig
correctConfig()
{
    SystemConfig cfg = baselineConfig();
    cfg.l2Opts.translationRrpv0 = true;
    cfg.l2Opts.replayEvictFast = true;
    cfg.llcOpts.newSignatures = true;
    cfg.llcOpts.translationRrpv0 = true;
    return cfg;
}

SystemConfig
ablatedConfig()
{
    SystemConfig cfg = correctConfig();
    cfg.l2Opts.replayEvictFast = false;
    cfg.l2Opts.replayRrpv0 = true; // ablation: replays at 0
    cfg.llcOpts.replayRrpv0 = true;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::radii, Benchmark::bf};

    std::vector<double> good, bad;

    for (Benchmark b : subset) {
        const std::string name = benchmarkName(b);
        registerPoint("base/" + name, baselineConfig(), b);
        registerPoint("fig10/T/" + name, correctConfig(), b);
        registerPoint("fig10/ablate/" + name, ablatedConfig(), b);
    }

    for (Benchmark b : subset) {
        const std::string name = benchmarkName(b);
        registerCase("fig10/" + name, [b, name, &good, &bad] {
            const RunResult &base =
                cachedRun("base/" + name, baselineConfig(), b);
            const RunResult &tRes =
                cachedRun("fig10/T/" + name, correctConfig(), b);
            const RunResult &aRes =
                cachedRun("fig10/ablate/" + name, ablatedConfig(), b);

            const double sGood = (speedup(base, tRes) - 1) * 100;
            const double sBad = (speedup(base, aRes) - 1) * 100;
            addRow("T-insertion (correct)", name, sGood, std::nan(""),
                   "%");
            addRow("RRPV0-for-replays (ablated)", name, sBad,
                   std::nan(""), "%");
            good.push_back(sGood);
            bad.push_back(sBad);
        });
    }

    registerCase("fig10/summary", [&good, &bad] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        addRow("T-insertion (correct)", "suite avg", avg(good),
               std::nan(""), "% (paper: positive)");
        addRow("RRPV0-for-replays (ablated)", "suite avg", avg(bad),
               std::nan(""), "% (paper: degradation vs correct)");
    });

    return benchMain(argc, argv,
                     "Fig. 10 — RRPV=0 insertion for replays (ablation)");
}
