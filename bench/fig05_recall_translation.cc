/**
 * @file
 * Paper Fig. 5: recall-distance distribution of leaf-level translation
 * blocks at the LLC (A) and L2C (B). Recall distance = accesses arriving
 * at the set between a block's eviction and its next request.
 *
 * Paper reference point: ~30% of translation blocks have a recall
 * distance within 50 — i.e. retaining them a little longer converts
 * their misses into hits, which is T-DRRIP/T-SHiP's premise.
 */

#include "bench_common.hh"
#include "sim/system.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::xalancbmk};

    std::vector<double> llc50, l2c50;

    for (Benchmark b : subset) {
        const std::string name = benchmarkName(b);
        registerCase("fig05/" + name, [b, name, &llc50, &l2c50] {
            SystemConfig cfg = baselineConfig();
            cfg.profileCacheRecall = true;
            std::vector<std::unique_ptr<Workload>> w;
            w.push_back(makeWorkload(b, cfg.seed));
            System sys(cfg, std::move(w));
            sys.warmup(defaultWarmup());
            sys.run(defaultInstructions());

            const Histogram &llc =
                sys.llc().recallProfiler()->translationHist();
            const Histogram &l2c =
                sys.l2().recallProfiler()->translationHist();
            const double fLlc = llc.fractionAtOrBelow(50) * 100;
            const double fL2c = l2c.fractionAtOrBelow(50) * 100;
            addRow("LLC recall<=50", name, fLlc, std::nan(""), "%");
            addRow("L2C recall<=50", name, fL2c, std::nan(""), "%");
            addRow("LLC recall<=10", name,
                   llc.fractionAtOrBelow(10) * 100, std::nan(""), "%");
            llc50.push_back(fLlc);
            l2c50.push_back(fL2c);
        });
    }

    registerCase("fig05/summary", [&llc50, &l2c50] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        addRow("LLC recall<=50", "suite avg", avg(llc50), 30.0, "%");
        addRow("L2C recall<=50", "suite avg", avg(l2c50), 30.0, "%");
    });

    return benchMain(
        argc, argv,
        "Fig. 5 — recall distance of leaf translations at LLC/L2C");
}
