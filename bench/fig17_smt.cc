/**
 * @file
 * Paper Fig. 17: 2-way SMT — two threads share the whole memory
 * hierarchy; the metric is harmonic speedup vs solo runs, compared
 * between the baseline and the full proposal.
 *
 * Paper reference points: suite average +6.3%, max +12.6% (pr-cc);
 * radii-bf +6.5%, tc-pr +11.1%, canneal-xalancbmk +3.5%,
 * xalancbmk-xalancbmk +0.5%.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    struct Mix
    {
        Benchmark t0, t1;
        double paper; ///< percent gain, NaN if unlisted
    };
    const Mix mixes[] = {
        {Benchmark::xalancbmk, Benchmark::xalancbmk, 0.5},
        {Benchmark::canneal, Benchmark::xalancbmk, 3.5},
        {Benchmark::mcf, Benchmark::tc, std::nan("")},
        {Benchmark::radii, Benchmark::bf, 6.5},
        {Benchmark::tc, Benchmark::pr, 11.1},
        {Benchmark::pr, Benchmark::cc, 12.6},
        {Benchmark::canneal, Benchmark::pr, std::nan("")},
        {Benchmark::mcf, Benchmark::mcf, std::nan("")},
    };

    std::vector<double> gains;

    for (const Mix &m : mixes) {
        const std::string name =
            benchmarkName(m.t0) + "-" + benchmarkName(m.t1);
        Mix mm = m;
        registerCase("fig17/" + name, [mm, name, &gains] {
            // Solo IPCs (baseline system) for the harmonic denominator.
            const RunResult &solo0 = cachedRun(
                "base/" + benchmarkName(mm.t0), baselineConfig(), mm.t0);
            const RunResult &solo1 = cachedRun(
                "base/" + benchmarkName(mm.t1), baselineConfig(), mm.t1);
            const std::vector<double> soloIpc = {solo0.ipc, solo1.ipc};

            SystemConfig smtBase = baselineConfig();
            smtBase.threadsPerCore = 2;
            RunResult mixBase =
                runMix(smtBase, {mm.t0, mm.t1});

            SystemConfig smtEnh = smtBase;
            TranslationAwareOptions o;
            o.tempo = true;
            applyTranslationAware(smtEnh, o);
            RunResult mixEnh = runMix(smtEnh, {mm.t0, mm.t1});

            const double hBase = harmonicSpeedup(soloIpc, mixBase);
            const double hEnh = harmonicSpeedup(soloIpc, mixEnh);
            const double gain =
                hBase > 0 ? (hEnh / hBase - 1) * 100 : 0.0;
            addRow("SMT harmonic-speedup gain", name, gain, mm.paper,
                   "%");
            gains.push_back(gain);
        });
    }

    registerCase("fig17/summary", [&gains] {
        double s = 0;
        for (double x : gains)
            s += x;
        addRow("SMT harmonic-speedup gain", "mix avg",
               gains.empty() ? 0 : s / double(gains.size()), 6.3, "%");
    });

    return benchMain(argc, argv, "Fig. 17 — 2-way SMT speedup per mix");
}
