/**
 * @file
 * Paper Fig. 17: 2-way SMT — two threads share the whole memory
 * hierarchy; the metric is harmonic speedup vs solo runs, compared
 * between the baseline and the full proposal.
 *
 * The mix table is generated combinatorially: all 45 unordered pairs
 * (including self-pairs) of the 9-benchmark suite, with the SMT machine
 * built from the declarative topology string "cores=1,smt=2"
 * (sim/topology.hh). Solo references and both mix policies are all
 * registered up front and executed by the parallel sweep runner; the
 * pairs the paper reports carry its reference numbers.
 *
 * Paper reference points: suite average +6.3%, max +12.6% (pr-cc);
 * radii-bf +6.5%, tc-pr +11.1%, canneal-xalancbmk +3.5%,
 * xalancbmk-xalancbmk +0.5%.
 */

#include <map>
#include <utility>

#include "bench_common.hh"
#include "sim/topology.hh"

using namespace tacbench;

namespace {

using B = Benchmark;

/** The paper's published per-pair gains (percent), keyed t0-t1. */
double
paperGain(B t0, B t1)
{
    static const std::map<std::pair<B, B>, double> known = {
        {{B::xalancbmk, B::xalancbmk}, 0.5},
        {{B::canneal, B::xalancbmk}, 3.5},
        {{B::radii, B::bf}, 6.5},
        {{B::tc, B::pr}, 11.1},
        {{B::pr, B::cc}, 12.6},
    };
    // Pairs are generated in suite order; the paper lists some of them
    // the other way round, so look up both orientations.
    auto it = known.find({t0, t1});
    if (it == known.end())
        it = known.find({t1, t0});
    return it == known.end() ? std::nan("") : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    const SystemConfig smtBase =
        configFromTopology("cores=1,smt=2", baselineConfig());
    SystemConfig smtEnh = smtBase;
    TranslationAwareOptions o;
    o.tempo = true;
    applyTranslationAware(smtEnh, o);

    // Phase 1: 9 solos (baseline, for the harmonic denominator) plus
    // both policies for each of the 45 unordered pairs: 99 points.
    for (B b : kAllBenchmarks)
        registerPoint("base/" + benchmarkName(b), baselineConfig(), b);
    for (std::size_t i = 0; i < kAllBenchmarks.size(); ++i) {
        for (std::size_t j = i; j < kAllBenchmarks.size(); ++j) {
            const B t0 = kAllBenchmarks[i], t1 = kAllBenchmarks[j];
            const std::string name =
                benchmarkName(t0) + "-" + benchmarkName(t1);
            registerMixPoint("smt/base/" + name, smtBase, {t0, t1});
            registerMixPoint("smt/enh/" + name, smtEnh, {t0, t1});
        }
    }

    static std::vector<double> gains;

    for (std::size_t i = 0; i < kAllBenchmarks.size(); ++i) {
        for (std::size_t j = i; j < kAllBenchmarks.size(); ++j) {
            const B t0 = kAllBenchmarks[i], t1 = kAllBenchmarks[j];
            const std::string name =
                benchmarkName(t0) + "-" + benchmarkName(t1);
            registerCase("fig17/" + name, [t0, t1, name] {
                const RunResult &solo0 =
                    sweep().result("base/" + benchmarkName(t0));
                const RunResult &solo1 =
                    sweep().result("base/" + benchmarkName(t1));
                const std::vector<double> soloIpc = {solo0.ipc,
                                                     solo1.ipc};

                const RunResult &mixBase =
                    sweep().result("smt/base/" + name);
                const RunResult &mixEnh =
                    sweep().result("smt/enh/" + name);

                const double hBase = harmonicSpeedup(soloIpc, mixBase);
                const double hEnh = harmonicSpeedup(soloIpc, mixEnh);
                const double gain =
                    hBase > 0 ? (hEnh / hBase - 1) * 100 : 0.0;
                addRow("SMT harmonic-speedup gain", name, gain,
                       paperGain(t0, t1), "%");
                gains.push_back(gain);
            });
        }
    }

    registerCase("fig17/summary", [] {
        double s = 0;
        for (double x : gains)
            s += x;
        addRow("SMT harmonic-speedup gain", "pair avg",
               gains.empty() ? 0 : s / double(gains.size()), 6.3, "%");
    });

    return benchMain(argc, argv,
                     "Fig. 17 — 2-way SMT speedup, all 45 pairs");
}
