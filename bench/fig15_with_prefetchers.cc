/**
 * @file
 * Paper Fig. 15: speedup of the full proposal when the baseline already
 * has a state-of-the-art data prefetcher.
 *
 * Paper reference points (suite average speedup of the proposal on a
 * prefetching baseline): IPCP +11.2%, Bingo +7.5%, SPP +6.4%,
 * ISB +7.2% — slightly larger than without prefetching because these
 * prefetchers do not cover the irregular (replay) misses.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    struct Pf
    {
        const char *name;
        PrefetcherKind l1;
        PrefetcherKind l2;
        double paperAvg;
    };
    const Pf pfs[] = {
        {"IPCP", PrefetcherKind::Ipcp, PrefetcherKind::None, 11.2},
        {"Bingo", PrefetcherKind::None, PrefetcherKind::Bingo, 7.5},
        {"SPP", PrefetcherKind::None, PrefetcherKind::Spp, 6.4},
        {"ISB", PrefetcherKind::None, PrefetcherKind::Isb, 7.2},
    };

    const Benchmark subset[] = {Benchmark::xalancbmk, Benchmark::canneal,
                                Benchmark::mcf, Benchmark::cc,
                                Benchmark::pr, Benchmark::radii};

    static std::map<std::string, std::vector<double>> series;

    for (const Pf &p : pfs) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            Pf pf = p;
            registerCase(std::string("fig15/") + p.name + "/" + bname,
                         [pf, b, bname] {
                             SystemConfig base = baselineConfig();
                             base.l1Prefetcher = pf.l1;
                             base.l2Prefetcher = pf.l2;
                             RunResult rb = runBenchmark(base, b);

                             SystemConfig enh = base;
                             TranslationAwareOptions o;
                             o.tempo = true;
                             applyTranslationAware(enh, o);
                             RunResult re = runBenchmark(enh, b);

                             const double sp = speedup(rb, re);
                             addRow(pf.name, bname, (sp - 1) * 100,
                                    std::nan(""), "%");
                             series[pf.name].push_back(sp);
                         });
        }
    }

    registerCase("fig15/summary", [&pfs] {
        for (const Pf &p : pfs)
            addRow(p.name, "geomean",
                   (geomean(series[p.name]) - 1) * 100, p.paperAvg, "%");
    });

    return benchMain(
        argc, argv,
        "Fig. 15 — proposal speedup on prefetching baselines");
}
