/**
 * @file
 * Paper Fig. 1: average and maximum cycles a demand access stalls at the
 * head of the ROB, split into the translation phase of STLB-missing
 * accesses (T), the replay-data phase (R), and non-replay loads.
 *
 * Paper reference points (averages across their suite): STLB-miss
 * translation stall avg 33 / max 54 cycles; replay stall avg 191 /
 * max 226; non-replay loads avg 47.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    std::vector<double> avgT, avgR, avgN;

    for (Benchmark b : kAllBenchmarks) {
        const std::string name = benchmarkName(b);
        registerCase("fig01/" + name, [b, name, &avgT, &avgR, &avgN] {
            const RunResult &r =
                cachedRun("base/" + name, baselineConfig(), b);
            addRow("T-stall avg", name, r.avgStallPerWalk,
                   std::nan(""), "cycles");
            addRow("R-stall avg", name, r.avgStallPerReplay,
                   std::nan(""), "cycles");
            addRow("NonReplay-stall avg", name, r.avgStallPerNonReplay,
                   std::nan(""), "cycles");
            avgT.push_back(r.avgStallPerWalk);
            avgR.push_back(r.avgStallPerReplay);
            avgN.push_back(r.avgStallPerNonReplay);
        });
    }

    registerCase("fig01/summary", [&avgT, &avgR, &avgN] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        auto vmax = [](const std::vector<double> &v) {
            double m = 0;
            for (double x : v)
                m = std::max(m, x);
            return m;
        };
        addRow("T-stall", "suite avg", avg(avgT), 33, "cycles");
        addRow("T-stall", "suite max", vmax(avgT), 54, "cycles");
        addRow("R-stall", "suite avg", avg(avgR), 191, "cycles");
        addRow("R-stall", "suite max", vmax(avgR), 226, "cycles");
        addRow("NonReplay-stall", "suite avg", avg(avgN), 47, "cycles");
    });

    return benchMain(argc, argv,
                     "Fig. 1 — ROB-head stall cycles (T / R / non-replay)");
}
