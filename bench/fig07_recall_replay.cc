/**
 * @file
 * Paper Fig. 7: recall-distance distribution of replay-load blocks at
 * the LLC (A) and L2C (B).
 *
 * Paper reference point: more than 60% of replay blocks have a recall
 * distance beyond 50 unique set accesses — retention cannot save them,
 * which is why the paper prefetches them (ATP) instead.
 */

#include "bench_common.hh"
#include "sim/system.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::bf};

    std::vector<double> over50;

    for (Benchmark b : subset) {
        const std::string name = benchmarkName(b);
        registerCase("fig07/" + name, [b, name, &over50] {
            SystemConfig cfg = baselineConfig();
            cfg.profileCacheRecall = true;
            std::vector<std::unique_ptr<Workload>> w;
            w.push_back(makeWorkload(b, cfg.seed));
            System sys(cfg, std::move(w));
            sys.warmup(defaultWarmup());
            sys.run(defaultInstructions());

            const Histogram &llc = sys.llc().recallProfiler()->replayHist();
            const Histogram &l2c = sys.l2().recallProfiler()->replayHist();
            const double fLlc = (1 - llc.fractionAtOrBelow(50)) * 100;
            const double fL2c = (1 - l2c.fractionAtOrBelow(50)) * 100;
            addRow("LLC recall>50", name, fLlc, std::nan(""), "%");
            addRow("L2C recall>50", name, fL2c, std::nan(""), "%");
            over50.push_back(fLlc);
        });
    }

    registerCase("fig07/summary", [&over50] {
        double s = 0;
        for (double x : over50)
            s += x;
        addRow("LLC recall>50", "suite avg",
               over50.empty() ? 0 : s / double(over50.size()), 60.0, "%");
    });

    return benchMain(argc, argv,
                     "Fig. 7 — recall distance of replays at LLC/L2C");
}
