/**
 * @file
 * Paper Fig. 4: leaf-level translation MPKI at the LLC under LRU,
 * SRRIP, DRRIP, SHiP and Hawkeye.
 *
 * Paper reference points (change vs LRU, suite average): SRRIP -14.72%,
 * DRRIP -27.45%, SHiP -33.3%, Hawkeye +44.1%.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const std::pair<const char *, PolicyKind> policies[] = {
        {"LRU", PolicyKind::LRU},       {"SRRIP", PolicyKind::SRRIP},
        {"DRRIP", PolicyKind::DRRIP},   {"SHiP", PolicyKind::SHiP},
        {"Hawkeye", PolicyKind::Hawkeye},
    };

    static std::map<std::string, std::vector<double>> series;

    for (auto [pname, kind] : policies) {
        for (Benchmark b : kAllBenchmarks) {
            const std::string bname = benchmarkName(b);
            const std::string key =
                std::string("fig04/") + pname + "/" + bname;
            PolicyKind k = kind;
            std::string pn = pname;
            registerCase(key, [k, pn, b, bname] {
                SystemConfig cfg = baselineConfig();
                cfg.llcPolicy = k;
                RunResult r = runBenchmark(cfg, b);
                addRow(pn, bname, r.llcPtl1Mpki, std::nan(""), "MPKI");
                series[pn].push_back(r.llcPtl1Mpki);
            });
        }
    }

    registerCase("fig04/summary", [] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        const double lru = avg(series["LRU"]);
        const struct { const char *n; double paper; } deltas[] = {
            {"SRRIP", -14.72}, {"DRRIP", -27.45}, {"SHiP", -33.3},
            {"Hawkeye", +44.1},
        };
        addRow("LRU", "suite avg MPKI", lru, std::nan(""), "MPKI");
        for (auto d : deltas) {
            const double pct =
                lru > 0 ? (avg(series[d.n]) / lru - 1) * 100 : 0.0;
            addRow(std::string(d.n) + " vs LRU", "suite avg", pct,
                   d.paper, "%");
        }
    });

    return benchMain(argc, argv,
                     "Fig. 4 — leaf-translation MPKI at LLC by policy");
}
