/**
 * @file
 * Paper §V-A multi-core results: 8-core multiprogrammed mixes
 * (homogeneous and heterogeneous), private L1/L2/TLBs, shared 16MB LLC,
 * two DRAM channels. Metric: weighted speedup of the proposal over the
 * baseline on the same mix.
 *
 * Paper reference point: average improvement above 4%; heterogeneous
 * mixes benefit when co-runners do not thrash the LLC.
 *
 * The 8 mix simulations (4 mixes x {base, enhanced}) are registered up
 * front and executed by the parallel sweep runner.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace tacbench;

namespace {

using B = Benchmark;

tacsim::SystemConfig
mcBaseConfig()
{
    SystemConfig cfg = baselineConfig();
    cfg.numCores = 8;
    return cfg;
}

tacsim::SystemConfig
mcEnhConfig()
{
    SystemConfig cfg = mcBaseConfig();
    TranslationAwareOptions o;
    o.tempo = true;
    applyTranslationAware(cfg, o);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    struct Mix
    {
        const char *name;
        std::vector<B> threads;
    };
    const Mix mixes[] = {
        {"homog-pr", std::vector<B>(8, B::pr)},
        {"homog-canneal", std::vector<B>(8, B::canneal)},
        {"hetero-high",
         {B::pr, B::cc, B::radii, B::bf, B::pr, B::cc, B::radii, B::bf}},
        {"hetero-mixed",
         {B::xalancbmk, B::tc, B::canneal, B::mis, B::mcf, B::bf, B::cc,
          B::pr}},
    };

    // 8-core runs are 8x the work: use a reduced per-thread budget.
    const std::uint64_t instr =
        std::max<std::uint64_t>(100000, defaultInstructions() / 3);
    const std::uint64_t warm =
        std::max<std::uint64_t>(30000, defaultWarmup() / 3);

    for (const Mix &m : mixes) {
        registerMixPoint(std::string("mc/base/") + m.name, mcBaseConfig(),
                         m.threads, instr, warm);
        registerMixPoint(std::string("mc/enh/") + m.name, mcEnhConfig(),
                         m.threads, instr, warm);
    }

    std::vector<double> gains;

    for (const Mix &m : mixes) {
        const Mix *mp = &m;
        registerCase(std::string("multicore/") + m.name, [mp, &gains] {
            const RunResult &rb =
                sweep().result(std::string("mc/base/") + mp->name);
            const RunResult &re =
                sweep().result(std::string("mc/enh/") + mp->name);

            // Weighted speedup: mean of per-thread IPC ratios.
            double sum = 0;
            for (std::size_t t = 0; t < 8; ++t)
                sum += re.threadIpc(t) / rb.threadIpc(t);
            const double ws = sum / 8.0;
            addRow("8-core weighted speedup", mp->name, (ws - 1) * 100,
                   std::nan(""), "%");
            gains.push_back(ws);
        });
    }

    registerCase("multicore/summary", [&gains] {
        addRow("8-core weighted speedup", "mix geomean",
               (geomean(gains) - 1) * 100, 4.0, "% (paper: >4%)");
    });

    return benchMain(argc, argv, "§V-A — 8-core multiprogrammed mixes");
}
