/**
 * @file
 * Paper §V-A multi-core results, generalized into a combinatorial
 * scale-out sweep: for each core count in {8, 16, 32, 64} the binary
 * generates every homogeneous mix (one per benchmark) plus a set of
 * seeded heterogeneous mixes, and runs each under the baseline and the
 * full proposal. Machines are built entirely from declarative
 * TopologySpec strings (sim/topology.hh): sliced LLC with a ring-hop
 * latency, per-core MSHR quotas and bandwidth tokens at the LLC, and
 * auto-derived DRAM channels. 4 core counts x 15 mixes x 2 policies =
 * 120 sweep points, all registered up front on the parallel runner.
 *
 * Metrics per (core count, mix): weighted speedup (mean of per-thread
 * IPC ratios) and harmonic speedup of the proposal, both against the
 * baseline run of the same mix on the same topology. Paper reference
 * point (8-core): average weighted-speedup improvement above 4%.
 *
 * TACSIM_MC_CORES=<comma list> restricts the core counts (CI's
 * multicore-smoke lane runs TACSIM_MC_CORES=16 at a tiny budget);
 * values must keep the auto-sized LLC set count a power of two.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hh"
#include "common/rng.hh"
#include "sim/topology.hh"

using namespace tacbench;

namespace {

using B = Benchmark;

/** Core counts to sweep, from TACSIM_MC_CORES or the default ladder. */
std::vector<unsigned>
coreCounts()
{
    std::string text = "8,16,32,64";
    if (const char *v = std::getenv("TACSIM_MC_CORES"))
        if (*v)
            text = v;
    std::vector<unsigned> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const unsigned long c =
            std::strtoul(text.substr(pos, comma - pos).c_str(), nullptr,
                         10);
        if (c > 0)
            out.push_back(static_cast<unsigned>(c));
        pos = comma + 1;
    }
    return out;
}

/** Largest power of two <= @p v (v >= 1). */
unsigned
pow2Floor(unsigned v)
{
    unsigned p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

/**
 * Declarative machine for @p cores: LLC auto-sized at 2MB/core and
 * sliced one slice per 4 cores with a 2-cycle ring hop, DRAM channels
 * auto-derived, and LLC arbitration tightened as the machine grows
 * (the per-core MSHR quota shrinks from the full 128-entry fair share
 * at 8 cores down to 16 entries at 64, modelling a fixed arbiter
 * budget, while bandwidth tokens stay at 32 demands per 64 cycles).
 */
std::string
topologyFor(unsigned cores)
{
    const unsigned slices = pow2Floor(std::max(1u, cores / 4));
    const unsigned quota = std::max(16u, 1024u / cores);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "cores=%u,llc=auto/16w,slices=%u,slice_lat=2,"
                  "mshr_quota=%u,bw=32",
                  cores, slices, quota);
    return buf;
}

/** One named mix: @p cores benchmarks, one per thread. */
struct Mix
{
    std::string name;
    std::vector<B> threads;
};

/**
 * The mix table for one core count: every homogeneous mix plus
 * kHeteroMixes seeded-random heterogeneous draws. The Rng seed folds in
 * the core count so each machine size sees distinct (but reproducible)
 * co-runner sets.
 */
std::vector<Mix>
mixesFor(unsigned cores)
{
    constexpr unsigned kHeteroMixes = 6;
    std::vector<Mix> mixes;
    for (B b : kAllBenchmarks)
        mixes.push_back({"homog-" + benchmarkName(b),
                         std::vector<B>(cores, b)});
    Rng rng(0x5ca1e0c7u + cores);
    for (unsigned h = 0; h < kHeteroMixes; ++h) {
        Mix m;
        m.name = "hetero-" + std::to_string(h);
        m.threads.reserve(cores);
        for (unsigned t = 0; t < cores; ++t)
            m.threads.push_back(
                kAllBenchmarks[rng.range(kAllBenchmarks.size())]);
        mixes.push_back(std::move(m));
    }
    return mixes;
}

std::string
pointKey(unsigned cores, const std::string &mix, const char *policy)
{
    return "mc/" + std::to_string(cores) + "c/" + mix + "/" + policy;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<unsigned> counts = coreCounts();

    // Shrink the per-thread budget with the core count so every point
    // simulates a roughly constant total instruction volume.
    auto budgetFor = [](unsigned cores) {
        return std::max<std::uint64_t>(
            12000, defaultInstructions() * 8 / (3 * cores));
    };

    // Phase 1: register the full (core count x mix x policy) grid.
    for (unsigned cores : counts) {
        const SystemConfig base =
            configFromTopology(topologyFor(cores), baselineConfig());
        SystemConfig enh = base;
        TranslationAwareOptions o;
        o.tempo = true;
        applyTranslationAware(enh, o);

        const std::uint64_t instr = budgetFor(cores);
        const std::uint64_t warm = std::max<std::uint64_t>(3000, instr / 4);
        for (const Mix &m : mixesFor(cores)) {
            registerMixPoint(pointKey(cores, m.name, "base"), base,
                             m.threads, instr, warm);
            registerMixPoint(pointKey(cores, m.name, "enh"), enh,
                             m.threads, instr, warm);
        }
    }

    // Phase 2: reporting cases. Gains are collected per core count for
    // the geomean summaries; the map outlives the registered lambdas.
    static std::map<unsigned, std::vector<double>> gains;

    for (unsigned cores : counts) {
        for (const Mix &m : mixesFor(cores)) {
            const std::string name = m.name;
            registerCase("multicore/" + std::to_string(cores) + "c/" +
                             name,
                         [cores, name] {
                const RunResult &rb =
                    sweep().result(pointKey(cores, name, "base"));
                const RunResult &re =
                    sweep().result(pointKey(cores, name, "enh"));

                // Weighted speedup: mean of per-thread IPC ratios.
                double sum = 0;
                std::vector<double> baseIpc;
                for (std::size_t t = 0; t < cores; ++t) {
                    baseIpc.push_back(rb.threadIpc(t));
                    sum += re.threadIpc(t) / rb.threadIpc(t);
                }
                const double ws = sum / double(cores);
                // Harmonic speedup of the proposal with the baseline
                // mix run as the reference (fairness-sensitive view of
                // the same comparison; no solo runs needed).
                const double hs = harmonicSpeedup(baseIpc, re);

                const std::string series =
                    std::to_string(cores) + "-core weighted speedup";
                addRow(series, name, (ws - 1) * 100, std::nan(""), "%");
                addRow(std::to_string(cores) + "-core harmonic speedup",
                       name, (hs - 1) * 100, std::nan(""), "%");
                gains[cores].push_back(ws);
            });
        }
    }

    for (unsigned cores : counts) {
        registerCase("multicore/" + std::to_string(cores) + "c/summary",
                     [cores] {
            // The paper's >4% average is an 8-core result; larger
            // machines have no reference number.
            const double paper = cores == 8 ? 4.0 : std::nan("");
            addRow(std::to_string(cores) + "-core weighted speedup",
                   "mix geomean", (geomean(gains[cores]) - 1) * 100,
                   paper, cores == 8 ? "% (paper: >4%)" : "%");
        });
    }

    return benchMain(argc, argv,
                     "§V-A — multiprogrammed mixes at 8/16/32/64 cores");
}
