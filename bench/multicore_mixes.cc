/**
 * @file
 * Paper §V-A multi-core results: 8-core multiprogrammed mixes
 * (homogeneous and heterogeneous), private L1/L2/TLBs, shared 16MB LLC,
 * two DRAM channels. Metric: weighted speedup of the proposal over the
 * baseline on the same mix.
 *
 * Paper reference point: average improvement above 4%; heterogeneous
 * mixes benefit when co-runners do not thrash the LLC.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    using B = Benchmark;
    struct Mix
    {
        const char *name;
        std::vector<B> threads;
    };
    const Mix mixes[] = {
        {"homog-pr", std::vector<B>(8, B::pr)},
        {"homog-canneal", std::vector<B>(8, B::canneal)},
        {"hetero-high",
         {B::pr, B::cc, B::radii, B::bf, B::pr, B::cc, B::radii, B::bf}},
        {"hetero-mixed",
         {B::xalancbmk, B::tc, B::canneal, B::mis, B::mcf, B::bf, B::cc,
          B::pr}},
    };

    // 8-core runs are 8x the work: use a reduced per-thread budget.
    const std::uint64_t instr =
        std::max<std::uint64_t>(100000, defaultInstructions() / 3);
    const std::uint64_t warm =
        std::max<std::uint64_t>(30000, defaultWarmup() / 3);

    std::vector<double> gains;

    for (const Mix &m : mixes) {
        const Mix *mp = &m;
        registerCase(std::string("multicore/") + m.name,
                     [mp, instr, warm, &gains] {
                         SystemConfig base = baselineConfig();
                         base.numCores = 8;
                         RunResult rb =
                             runMix(base, mp->threads, instr, warm);

                         SystemConfig enh = base;
                         TranslationAwareOptions o;
                         o.tempo = true;
                         applyTranslationAware(enh, o);
                         RunResult re =
                             runMix(enh, mp->threads, instr, warm);

                         // Weighted speedup: mean of per-thread IPC
                         // ratios.
                         double sum = 0;
                         for (std::size_t t = 0; t < 8; ++t)
                             sum += re.threadIpc(t) / rb.threadIpc(t);
                         const double ws = sum / 8.0;
                         addRow("8-core weighted speedup", mp->name,
                                (ws - 1) * 100, std::nan(""), "%");
                         gains.push_back(ws);
                     });
    }

    registerCase("multicore/summary", [&gains] {
        addRow("8-core weighted speedup", "mix geomean",
               (geomean(gains) - 1) * 100, 4.0, "% (paper: >4%)");
    });

    return benchMain(argc, argv, "§V-A — 8-core multiprogrammed mixes");
}
