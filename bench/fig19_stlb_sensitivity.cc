/**
 * @file
 * Paper Fig. 19: STLB-size sensitivity — the proposal's speedup vs a
 * same-size baseline, for 512 to 4096 STLB entries.
 *
 * Paper reference points: gains persist across sizes (recall distances
 * of the costly translations are large); gains shrink as the STLB grows
 * because STLB MPKI drops; mcf saturates once its translations fit
 * (STLB MPKI 0.39 at 4096 entries).
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const std::uint32_t sizes[] = {512, 1024, 2048, 4096};
    const Benchmark subset[] = {Benchmark::xalancbmk, Benchmark::canneal,
                                Benchmark::mcf, Benchmark::cc,
                                Benchmark::pr};

    static std::map<std::uint32_t, std::vector<double>> series;

    for (std::uint32_t entries : sizes) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            registerCase("fig19/stlb" + std::to_string(entries) + "/" +
                             bname,
                         [entries, b, bname] {
                             SystemConfig base = baselineConfig();
                             base.stlbEntries = entries;
                             RunResult rb = runBenchmark(base, b);

                             SystemConfig enh = base;
                             TranslationAwareOptions o;
                             o.tempo = true;
                             applyTranslationAware(enh, o);
                             RunResult re = runBenchmark(enh, b);

                             const double sp = speedup(rb, re);
                             addRow("STLB=" + std::to_string(entries),
                                    bname, (sp - 1) * 100, std::nan(""),
                                    "% (stlbMPKI " +
                                        std::to_string(rb.stlbMpki) +
                                        ")");
                             series[entries].push_back(sp);
                         });
        }
    }

    registerCase("fig19/summary", [&sizes] {
        for (std::uint32_t e : sizes)
            addRow("STLB=" + std::to_string(e), "geomean",
                   (geomean(series[e]) - 1) * 100, std::nan(""),
                   "% (paper: positive at all sizes, shrinking)");
    });

    return benchMain(argc, argv, "Fig. 19 — STLB size sensitivity");
}
