/**
 * @file
 * Paper Fig. 3: which level of the hierarchy services leaf-level
 * translations after an STLB miss, and their replay loads.
 *
 * Paper reference points (suite average for translations): 23% L1D,
 * 55.6% L2C, 15.1% LLC, 6.3% DRAM; more than 80% of replay loads miss
 * the LLC.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    std::vector<double> tL1, tL2, tLlc, tDram, rDram;

    for (Benchmark b : kAllBenchmarks) {
        const std::string name = benchmarkName(b);
        registerCase("fig03/" + name, [b, name, &tL1, &tL2, &tLlc, &tDram,
                                       &rDram] {
            const RunResult &r =
                cachedRun("base/" + name, baselineConfig(), b);
            addRow("T from L1D", name, r.leafL1D * 100, std::nan(""), "%");
            addRow("T from L2C", name, r.leafL2C * 100, std::nan(""), "%");
            addRow("T from LLC", name, r.leafLLC * 100, std::nan(""), "%");
            addRow("T from DRAM", name, r.leafDram * 100, std::nan(""),
                   "%");
            addRow("R from DRAM", name, r.replayDram * 100, std::nan(""),
                   "%");
            tL1.push_back(r.leafL1D * 100);
            tL2.push_back(r.leafL2C * 100);
            tLlc.push_back(r.leafLLC * 100);
            tDram.push_back(r.leafDram * 100);
            rDram.push_back(r.replayDram * 100);
        });
    }

    registerCase("fig03/summary", [&tL1, &tL2, &tLlc, &tDram, &rDram] {
        auto avg = [](const std::vector<double> &v) {
            double s = 0;
            for (double x : v)
                s += x;
            return v.empty() ? 0.0 : s / double(v.size());
        };
        addRow("T from L1D", "suite avg", avg(tL1), 23.0, "%");
        addRow("T from L2C", "suite avg", avg(tL2), 55.6, "%");
        addRow("T from LLC", "suite avg", avg(tLlc), 15.1, "%");
        addRow("T from DRAM", "suite avg", avg(tDram), 6.3, "%");
        addRow("R from DRAM", "suite avg", avg(rDram), 80.0, "%");
    });

    return benchMain(
        argc, argv,
        "Fig. 3 — response distribution for leaf translations / replays");
}
