/**
 * @file
 * tacsim-perf: the engine-throughput harness behind BENCH_perf.json.
 *
 * Runs a fixed benchmark×config matrix (all nine Table-II benchmarks ×
 * {baseline, proposed}) at a fixed instruction budget on the PR-1 sweep
 * runner and reports, per point: wall-ms, executed events, events/sec,
 * simulated KIPS and peak RSS — plus host metadata and an aggregate
 * events/sec figure that CI's perf-smoke lane gates on (see
 * scripts/check_perf_regression.py).
 *
 * Usage:
 *   tacsim-perf [--instructions N] [--warmup N] [--out FILE] [--quick]
 *               [--trace FILE] [--sample-interval N]
 *               [--timeseries PATTERN] [--chrome-trace PATTERN]
 *
 * --quick shrinks the matrix to two benchmarks for smoke runs. --trace
 * replaces the synthetic matrix with a recorded `tacsim-trace-v1` file
 * replayed under both configs (throughput on a fixed, shareable input).
 * --timeseries / --chrome-trace enable the observability sinks on every
 * point; the patterns should contain "{key}" (expanded with the point's
 * sweep key) so points write distinct files. Points execute serially by
 * default so per-point wall times are not polluted by sibling points;
 * set TACSIM_JOBS to override.
 *
 * JSON schema "tacsim-bench-v1":
 *   { schema, title, host{cpus, compiler, os}, budget{instructions,
 *     warmup}, points[{key, benchmark, config, ok, wall_ms, events,
 *     events_per_sec, sim_kips, peak_rss_kb, cycles, ipc, error}],
 *     aggregate{wall_ms, events, events_per_sec, sim_kips} }
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/host.hh"
#include "sim/config.hh"
#include "sim/sweep.hh"
#include "trace/reader.hh"

namespace {

using namespace tacsim;

struct PerfPoint
{
    std::string key;
    std::string benchmark;
    std::string config;
};

struct Options
{
    std::uint64_t instructions = 200000;
    std::uint64_t warmup = 50000;
    std::string out = "BENCH_perf.json";
    std::string trace; ///< replay this trace instead of the matrix
    bool quick = false;

    // Observability sinks, applied to every point when non-empty.
    std::uint64_t sampleInterval = 0;
    std::string timeseries;
    std::string chromeTrace;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "tacsim-perf: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--instructions") {
            o.instructions = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--warmup") {
            o.warmup = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--out") {
            o.out = value();
        } else if (arg == "--trace") {
            o.trace = value();
        } else if (arg == "--quick") {
            o.quick = true;
        } else if (arg == "--sample-interval") {
            o.sampleInterval = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--timeseries") {
            o.timeseries = value();
        } else if (arg == "--chrome-trace") {
            o.chromeTrace = value();
        } else {
            std::fprintf(stderr,
                         "usage: tacsim-perf [--instructions N] "
                         "[--warmup N] [--out FILE] [--quick] "
                         "[--trace FILE] [--sample-interval N] "
                         "[--timeseries PATTERN] "
                         "[--chrome-trace PATTERN]\n");
            std::exit(arg == "--help" ? 0 : 2);
        }
    }
    if (o.instructions == 0 || o.warmup == 0) {
        std::fprintf(stderr, "tacsim-perf: budgets must be positive\n");
        std::exit(2);
    }
    return o;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    // Serial by default: each point's wall time is a clean measurement.
    unsigned jobs = 1;
    if (const char *v = std::getenv("TACSIM_JOBS")) {
        const unsigned long parsed = std::strtoul(v, nullptr, 10);
        if (parsed > 0)
            jobs = static_cast<unsigned>(parsed);
    }
    SweepRunner sweep(jobs);

    SystemConfig baseline{};
    SystemConfig proposed{};
    {
        TranslationAwareOptions ta;
        ta.tempo = true;
        applyTranslationAware(proposed, ta);
    }
    for (SystemConfig *cfg : {&baseline, &proposed}) {
        cfg->obs.sampleInterval = opt.sampleInterval;
        cfg->obs.timeseriesPath = opt.timeseries;
        cfg->obs.chromeTracePath = opt.chromeTrace;
    }

    const std::pair<const char *, const SystemConfig *> configs[] = {
        {"baseline", &baseline},
        {"proposed", &proposed},
    };

    std::vector<PerfPoint> points;
    if (!opt.trace.empty()) {
        // Validate the file and pull the benchmark name up front so a
        // bad path fails fast instead of as N identical point errors.
        std::string traceName;
        try {
            trace::TraceReader reader(opt.trace);
            traceName = reader.header().name;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "tacsim-perf: %s\n", e.what());
            return 2;
        }
        for (const auto &[cfgName, cfg] : configs) {
            PerfPoint p;
            p.benchmark = traceName;
            p.config = cfgName;
            p.key = "trace/" + std::string(cfgName);
            sweep.addSpec(p.key, *cfg, "trace:" + opt.trace,
                          opt.instructions, opt.warmup);
            points.push_back(std::move(p));
        }
    } else {
        for (Benchmark b : kAllBenchmarks) {
            const std::string name = benchmarkName(b);
            if (opt.quick && name != "xalancbmk" && name != "mcf")
                continue;
            for (const auto &[cfgName, cfg] : configs) {
                PerfPoint p;
                p.benchmark = name;
                p.config = cfgName;
                p.key = name + "/" + cfgName;
                sweep.add(p.key, *cfg, b, opt.instructions, opt.warmup);
                points.push_back(std::move(p));
            }
        }
    }

    std::fprintf(stderr,
                 "tacsim-perf: %zu points, %llu+%llu instructions, "
                 "%u job(s)\n",
                 points.size(),
                 static_cast<unsigned long long>(opt.warmup),
                 static_cast<unsigned long long>(opt.instructions),
                 jobs);
    sweep.run();

    double totalWallMs = 0;
    std::uint64_t totalEvents = 0, totalInstructions = 0;
    bool anyFailed = false;

    std::FILE *f = std::fopen(opt.out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "tacsim-perf: cannot write %s\n",
                     opt.out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"tacsim-bench-v1\",\n");
    std::fprintf(f, "  \"title\": \"tacsim engine throughput\",\n");
    std::fprintf(f,
                 "  \"host\": {\"cpus\": %u, \"compiler\": \"%s\", "
                 "\"os\": \"%s\"},\n",
                 hostCpus(), jsonEscape(hostCompiler()).c_str(),
                 jsonEscape(hostOs()).c_str());
    std::fprintf(f,
                 "  \"budget\": {\"instructions\": %llu, "
                 "\"warmup\": %llu},\n",
                 static_cast<unsigned long long>(opt.instructions),
                 static_cast<unsigned long long>(opt.warmup));

    std::fprintf(f, "  \"points\": [");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PerfPoint &p = points[i];
        const SweepOutcome *o = sweep.outcome(p.key);
        if (!o || !o->ok) {
            anyFailed = true;
            std::fprintf(f,
                         "%s\n    {\"key\": \"%s\", \"benchmark\": "
                         "\"%s\", \"config\": \"%s\", \"ok\": false, "
                         "\"error\": \"%s\"}",
                         i ? "," : "", jsonEscape(p.key).c_str(),
                         jsonEscape(p.benchmark).c_str(),
                         jsonEscape(p.config).c_str(),
                         jsonEscape(o ? o->error : "not run").c_str());
            std::fprintf(stderr, "tacsim-perf: point %s FAILED: %s\n",
                         p.key.c_str(),
                         o ? o->error.c_str() : "not run");
            continue;
        }
        const double wallSec = o->wallMs / 1000.0;
        const double evPerSec =
            wallSec > 0 ? double(o->result.events) / wallSec : 0.0;
        const std::uint64_t simInstr =
            (opt.instructions + opt.warmup); // per thread; single here
        const double kips =
            wallSec > 0 ? double(simInstr) / wallSec / 1000.0 : 0.0;
        totalWallMs += o->wallMs;
        totalEvents += o->result.events;
        totalInstructions += simInstr;
        std::fprintf(
            f,
            "%s\n    {\"key\": \"%s\", \"benchmark\": \"%s\", "
            "\"config\": \"%s\", \"ok\": true, \"wall_ms\": %.3f, "
            "\"events\": %llu, \"events_per_sec\": %.1f, "
            "\"sim_kips\": %.2f, \"peak_rss_kb\": %llu, "
            "\"cycles\": %llu, \"ipc\": %.6f}",
            i ? "," : "", jsonEscape(p.key).c_str(),
            jsonEscape(p.benchmark).c_str(),
            jsonEscape(p.config).c_str(), o->wallMs,
            static_cast<unsigned long long>(o->result.events), evPerSec,
            kips, static_cast<unsigned long long>(o->peakRssKb),
            static_cast<unsigned long long>(o->result.cycles),
            o->result.ipc);
    }
    std::fprintf(f, "\n  ],\n");

    const double totalWallSec = totalWallMs / 1000.0;
    const double aggEvPerSec =
        totalWallSec > 0 ? double(totalEvents) / totalWallSec : 0.0;
    const double aggKips = totalWallSec > 0
        ? double(totalInstructions) / totalWallSec / 1000.0
        : 0.0;
    std::fprintf(f,
                 "  \"aggregate\": {\"wall_ms\": %.3f, \"events\": "
                 "%llu, \"events_per_sec\": %.1f, \"sim_kips\": "
                 "%.2f}\n}\n",
                 totalWallMs,
                 static_cast<unsigned long long>(totalEvents),
                 aggEvPerSec, aggKips);
    const bool wrote = std::fclose(f) == 0;

    std::fprintf(stderr,
                 "tacsim-perf: %.1f s wall, %.3g events/sec aggregate, "
                 "%.1f KIPS -> %s\n",
                 totalWallSec, aggEvPerSec, aggKips, opt.out.c_str());
    return (wrote && !anyFailed) ? 0 : 1;
}
