/**
 * @file
 * Shared plumbing for the per-figure bench binaries.
 *
 * Each binary registers one google-benchmark case per configuration
 * point (pinned to a single iteration — a simulation is deterministic,
 * repeating it only burns time), accumulates the series it measures,
 * and prints a paper-vs-measured table after the benchmark run so the
 * output is directly comparable with the paper's figure.
 *
 * Execution is two-phase: binaries register their simulation points on
 * the process-wide SweepRunner (registerPoint / registerMixPoint) before
 * benchMain, which executes the whole sweep across a thread pool
 * (TACSIM_JOBS workers) and then runs the reporting cases, which fetch
 * the memoized results via cachedRun(). Binaries that skip registration
 * still work: cachedRun() falls back to executing lazily in-place.
 *
 * Instruction budgets: TACSIM_INSTRUCTIONS / TACSIM_WARMUP override the
 * defaults for higher-fidelity runs. TACSIM_JSON_OUT=<path> additionally
 * writes the table plus per-run metadata as a JSON report.
 */

#ifndef TACSIM_BENCH_COMMON_HH
#define TACSIM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep.hh"

namespace tacbench {

using namespace tacsim;

/** One row of the final paper-vs-measured table. */
using Row = ReportRow;

inline std::vector<Row> &
rows()
{
    static std::vector<Row> r;
    return r;
}

inline void
addRow(std::string series, std::string label, double measured,
       double paper = std::nan(""), std::string unit = "")
{
    rows().push_back(
        {std::move(series), std::move(label), measured, paper,
         std::move(unit)});
}

/** Print the accumulated table with a figure title. */
inline void
printTable(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-28s %-14s %12s %12s %s\n", "series", "benchmark",
                "measured", "paper", "unit");
    for (const Row &r : rows()) {
        if (std::isnan(r.paper)) {
            std::printf("%-28s %-14s %12.3f %12s %s\n", r.series.c_str(),
                        r.label.c_str(), r.measured, "-",
                        r.unit.c_str());
        } else {
            std::printf("%-28s %-14s %12.3f %12.3f %s\n",
                        r.series.c_str(), r.label.c_str(), r.measured,
                        r.paper, r.unit.c_str());
        }
    }
    std::fflush(stdout);
}

/** Baseline Table-I system: DRRIP@L2, SHiP@LLC, no prefetchers. */
inline SystemConfig
baselineConfig()
{
    return SystemConfig{};
}

/** The paper's full proposal on top of the baseline. */
inline SystemConfig
proposedConfig(bool tempo = true)
{
    SystemConfig cfg = baselineConfig();
    TranslationAwareOptions o;
    o.tempo = tempo;
    applyTranslationAware(cfg, o);
    return cfg;
}

/**
 * Optional VM axes for the figure binaries (TACSIM_VM_AXES=1): rerun a
 * figure's comparison under THP-style huge pages and nested (guest×host)
 * translation. Off by default so the standard point set — and the
 * perf-smoke baseline — is unchanged.
 */
struct VmAxis
{
    const char *name; ///< sweep-key segment, e.g. "thp50"
    double thp2m;
    double thp1g;
    bool nested;
};

inline bool
vmAxesRequested()
{
    const char *v = std::getenv("TACSIM_VM_AXES");
    return v && *v && std::string(v) != "0";
}

inline const std::vector<VmAxis> &
vmAxes()
{
    static const std::vector<VmAxis> axes = {
        {"thp50", 0.5, 0.0, false},
        {"thp", 1.0, 0.0, false},
        {"nested", 0.0, 0.0, true},
    };
    return axes;
}

inline SystemConfig
withVmAxis(SystemConfig cfg, const VmAxis &a)
{
    cfg.vm.hugePages2M = a.thp2m;
    cfg.vm.hugePages1G = a.thp1g;
    cfg.vm.nested = a.nested;
    return cfg;
}

/** The process-wide sweep runner every bench binary shares. */
inline SweepRunner &
sweep()
{
    return globalSweep();
}

/** Phase 1: register one simulation point for the parallel sweep. */
inline void
registerPoint(const std::string &key, const SystemConfig &cfg, Benchmark b,
              std::uint64_t instructions = 0, std::uint64_t warmup = 0)
{
    sweep().add(key, cfg, b, instructions, warmup);
}

/** Phase 1: register a multi-thread mix point. */
inline void
registerMixPoint(const std::string &key, const SystemConfig &cfg,
                 std::vector<Benchmark> mix,
                 std::uint64_t instructions = 0, std::uint64_t warmup = 0)
{
    sweep().addMix(key, cfg, std::move(mix), instructions, warmup);
}

/**
 * Memoized per-benchmark run (configs hashed by caller-chosen key).
 * Pre-registered keys return the sweep's result; unknown keys register
 * and execute on the spot (serial fallback).
 */
inline const RunResult &
cachedRun(const std::string &key, const SystemConfig &cfg, Benchmark b,
          std::uint64_t instructions = 0, std::uint64_t warmup = 0)
{
    sweep().add(key, cfg, b, instructions, warmup);
    return sweep().result(key);
}

/**
 * Register a single-shot google-benchmark case that executes @p fn once
 * and reports the wall time of the simulation.
 */
inline void
registerCase(const std::string &name, std::function<void()> fn)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [fn](benchmark::State &state) {
            for (auto _ : state)
                fn();
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/** Standard main body: execute the sweep, run the registered cases,
 *  print the table, and emit the JSON report if requested. */
inline int
benchMain(int argc, char **argv, const std::string &title)
{
    benchmark::Initialize(&argc, argv);
    if (sweep().points() > 0)
        std::fprintf(stderr, "tacsim: sweeping %zu points on %u threads\n",
                     sweep().points(), sweep().threadCount());
    sweep().run();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable(title);
    for (const SweepOutcome *o : sweep().outcomes()) {
        if (!o->ok)
            std::fprintf(stderr, "tacsim: sweep point '%s' FAILED: %s\n",
                         o->key.c_str(), o->error.c_str());
    }
    sweep().writeJsonFromEnv(title, rows());
    return 0;
}

/** Geometric mean of (positive) values. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double logSum = 0;
    for (double x : v)
        logSum += std::log(x);
    return std::exp(logSum / double(v.size()));
}

} // namespace tacbench

#endif // TACSIM_BENCH_COMMON_HH
