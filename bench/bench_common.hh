/**
 * @file
 * Shared plumbing for the per-figure bench binaries.
 *
 * Each binary registers one google-benchmark case per configuration
 * point (pinned to a single iteration — a simulation is deterministic,
 * repeating it only burns time), accumulates the series it measures,
 * and prints a paper-vs-measured table after the benchmark run so the
 * output is directly comparable with the paper's figure.
 *
 * Instruction budgets: TACSIM_INSTRUCTIONS / TACSIM_WARMUP override the
 * defaults for higher-fidelity runs.
 */

#ifndef TACSIM_BENCH_COMMON_HH
#define TACSIM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace tacbench {

using namespace tacsim;

/** One row of the final paper-vs-measured table. */
struct Row
{
    std::string series;  ///< e.g. "T-SHiP"
    std::string label;   ///< e.g. benchmark name
    double measured;
    double paper;        ///< NaN when the paper gives no number
    std::string unit;
};

inline std::vector<Row> &
rows()
{
    static std::vector<Row> r;
    return r;
}

inline void
addRow(std::string series, std::string label, double measured,
       double paper = std::nan(""), std::string unit = "")
{
    rows().push_back(
        {std::move(series), std::move(label), measured, paper,
         std::move(unit)});
}

/** Print the accumulated table with a figure title. */
inline void
printTable(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-28s %-14s %12s %12s %s\n", "series", "benchmark",
                "measured", "paper", "unit");
    for (const Row &r : rows()) {
        if (std::isnan(r.paper)) {
            std::printf("%-28s %-14s %12.3f %12s %s\n", r.series.c_str(),
                        r.label.c_str(), r.measured, "-",
                        r.unit.c_str());
        } else {
            std::printf("%-28s %-14s %12.3f %12.3f %s\n",
                        r.series.c_str(), r.label.c_str(), r.measured,
                        r.paper, r.unit.c_str());
        }
    }
    std::fflush(stdout);
}

/** Baseline Table-I system: DRRIP@L2, SHiP@LLC, no prefetchers. */
inline SystemConfig
baselineConfig()
{
    return SystemConfig{};
}

/** The paper's full proposal on top of the baseline. */
inline SystemConfig
proposedConfig(bool tempo = true)
{
    SystemConfig cfg = baselineConfig();
    TranslationAwareOptions o;
    o.tempo = tempo;
    applyTranslationAware(cfg, o);
    return cfg;
}

/** Memoized per-benchmark run (configs hashed by caller-chosen key). */
inline RunResult &
cachedRun(const std::string &key, const SystemConfig &cfg, Benchmark b,
          std::uint64_t instructions = 0, std::uint64_t warmup = 0)
{
    static std::map<std::string, RunResult> memo;
    auto it = memo.find(key);
    if (it == memo.end())
        it = memo.emplace(key, runBenchmark(cfg, b, instructions, warmup))
                 .first;
    return it->second;
}

/**
 * Register a single-shot google-benchmark case that executes @p fn once
 * and reports the wall time of the simulation.
 */
inline void
registerCase(const std::string &name, std::function<void()> fn)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [fn](benchmark::State &state) {
            for (auto _ : state)
                fn();
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/** Standard main body: run the registered cases, print the table. */
inline int
benchMain(int argc, char **argv, const std::string &title)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable(title);
    return 0;
}

/** Geometric mean of (positive) values. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double logSum = 0;
    for (double x : v)
        logSum += std::log(x);
    return std::exp(logSum / double(v.size()));
}

} // namespace tacbench

#endif // TACSIM_BENCH_COMMON_HH
