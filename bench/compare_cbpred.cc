/**
 * @file
 * Paper §V-B: comparison with CbPred/DpPred-style dead-block management
 * (Mazumdar et al., HPCA'21). Dead-block bypass frees LLC space but
 * does not shorten the stalls of the replay loads themselves, so the
 * paper's scheme beats it.
 *
 * Paper reference point: the proposal improves average performance by
 * a further ~3.1% over CbPred.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const Benchmark subset[] = {Benchmark::canneal, Benchmark::mcf,
                                Benchmark::cc, Benchmark::pr,
                                Benchmark::radii, Benchmark::bf};

    std::vector<double> cbGain, propGain, propOverCb;

    for (Benchmark b : subset) {
        const std::string name = benchmarkName(b);
        registerCase("cbpred/" + name,
                     [b, name, &cbGain, &propGain, &propOverCb] {
                         const RunResult &base =
                             cachedRun("base/" + name, baselineConfig(),
                                       b);

                         SystemConfig cb = baselineConfig();
                         cb.llcDeadBlock = true;
                         RunResult rcb = runBenchmark(cb, b);

                         const RunResult &rp = cachedRun(
                             "prop/" + name, proposedConfig(), b);

                         const double sCb = speedup(base, rcb);
                         const double sP = speedup(base, rp);
                         addRow("CbPred(SHiP)", name, (sCb - 1) * 100,
                                std::nan(""), "%");
                         addRow("proposal", name, (sP - 1) * 100,
                                std::nan(""), "%");
                         cbGain.push_back(sCb);
                         propGain.push_back(sP);
                         propOverCb.push_back(sP / sCb);
                     });
    }

    registerCase("cbpred/summary", [&cbGain, &propGain, &propOverCb] {
        addRow("CbPred(SHiP)", "geomean", (geomean(cbGain) - 1) * 100,
               std::nan(""), "%");
        addRow("proposal", "geomean", (geomean(propGain) - 1) * 100,
               std::nan(""), "%");
        addRow("proposal vs CbPred", "geomean",
               (geomean(propOverCb) - 1) * 100, 3.1, "%");
    });

    return benchMain(argc, argv,
                     "§V-B — comparison with CbPred/DpPred dead-block "
                     "management");
}
