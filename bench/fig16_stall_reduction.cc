/**
 * @file
 * Paper Fig. 16: reduction in ROB-head stall cycles caused by STLB
 * misses (translation phase) and by replay requests, with the full
 * scheme.
 *
 * Paper reference points (suite average): translation-stall cycles
 * -28.76%, replay-stall cycles -18.5%, combined -46.7% of the
 * translation+replay stall total; xalancbmk's stalls drop ~77%.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    std::vector<double> tRed, rRed, totRed;
    std::uint64_t baseT = 0, baseR = 0, enhT = 0, enhR = 0;

    // Phase 1: register the 18 points for the parallel sweep; the cases
    // below fetch the memoized results through cachedRun.
    for (Benchmark b : kAllBenchmarks) {
        const std::string name = benchmarkName(b);
        registerPoint("base/" + name, baselineConfig(), b);
        registerPoint("prop/" + name, proposedConfig(), b);
    }

    // Optional nested-translation axis (TACSIM_VM_AXES=1): with 2D
    // guest×host walks every STLB miss costs several times more cache
    // references, so translation-stall savings should grow.
    const VmAxis nestedAxis{"nested", 0.0, 0.0, true};
    if (vmAxesRequested()) {
        for (Benchmark b : kAllBenchmarks) {
            const std::string name = benchmarkName(b);
            registerPoint("vm/nested/base/" + name,
                          withVmAxis(baselineConfig(), nestedAxis), b);
            registerPoint("vm/nested/prop/" + name,
                          withVmAxis(proposedConfig(), nestedAxis), b);
        }
    }

    for (Benchmark b : kAllBenchmarks) {
        const std::string name = benchmarkName(b);
        registerCase("fig16/" + name, [b, name, &tRed, &rRed, &totRed,
                                       &baseT, &baseR, &enhT, &enhR] {
            const RunResult &base =
                cachedRun("base/" + name, baselineConfig(), b);
            const RunResult &enh =
                cachedRun("prop/" + name, proposedConfig(), b);

            auto red = [](double b0, double b1) {
                return b0 > 0 ? (1.0 - b1 / b0) * 100 : 0.0;
            };
            const double t =
                red(double(base.stallT), double(enh.stallT));
            const double r =
                red(double(base.stallR), double(enh.stallR));
            const double tot = red(double(base.stallT + base.stallR),
                                   double(enh.stallT + enh.stallR));
            addRow("T-stall reduction", name, t, std::nan(""), "%");
            addRow("R-stall reduction", name, r, std::nan(""), "%");
            addRow("T+R stall reduction", name, tot, std::nan(""), "%");
            tRed.push_back(t);
            rRed.push_back(r);
            totRed.push_back(tot);
            baseT += base.stallT;
            baseR += base.stallR;
            enhT += enh.stallT;
            enhR += enh.stallR;
        });
    }

    // Suite aggregates are cycle-weighted (total stall cycles across the
    // suite): per-benchmark percentages over tiny T-stall denominators
    // would let one outlier dominate the mean.
    registerCase("fig16/summary", [&baseT, &baseR, &enhT, &enhR] {
        auto red = [](std::uint64_t b0, std::uint64_t b1) {
            return b0 ? (1.0 - double(b1) / double(b0)) * 100 : 0.0;
        };
        addRow("T-stall reduction", "suite total", red(baseT, enhT),
               28.76, "%");
        addRow("R-stall reduction", "suite total", red(baseR, enhR),
               18.5, "%");
        addRow("T+R stall reduction", "suite total",
               red(baseT + baseR, enhT + enhR), 46.7, "%");
    });

    if (vmAxesRequested()) {
        registerCase("fig16/vm/nested", [nestedAxis] {
            std::uint64_t bT = 0, bR = 0, eT = 0, eR = 0;
            for (Benchmark b : kAllBenchmarks) {
                const std::string name = benchmarkName(b);
                const RunResult &base = cachedRun(
                    "vm/nested/base/" + name,
                    withVmAxis(baselineConfig(), nestedAxis), b);
                const RunResult &enh = cachedRun(
                    "vm/nested/prop/" + name,
                    withVmAxis(proposedConfig(), nestedAxis), b);
                bT += base.stallT;
                bR += base.stallR;
                eT += enh.stallT;
                eR += enh.stallR;
            }
            auto red = [](std::uint64_t b0, std::uint64_t b1) {
                return b0 ? (1.0 - double(b1) / double(b0)) * 100 : 0.0;
            };
            addRow("T-stall reduction", "nested suite", red(bT, eT),
                   std::nan(""), "%");
            addRow("T+R stall reduction", "nested suite",
                   red(bT + bR, eT + eR), std::nan(""), "%");
        });
    }

    return benchMain(argc, argv,
                     "Fig. 16 — ROB stall-cycle reduction (T and R)");
}
