/**
 * @file
 * Design-choice ablation: where should ATP live? The paper places the
 * trigger at both L2C and LLC and inserts the prefetched replay line
 * with eviction priority (RRPV=3). This bench isolates each choice:
 * trigger level (L2C only / LLC only / both) and the TEMPO backstop,
 * on the most translation-sensitive benchmarks.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    struct Variant
    {
        const char *name;
        bool atpL2, atpLlc, tempo;
    };
    const Variant variants[] = {
        {"T-policies only", false, false, false},
        {"+ATP@L2C", true, false, false},
        {"+ATP@LLC", false, true, false},
        {"+ATP@both", true, true, false},
        {"+TEMPO only", false, false, true},
        {"+ATP@both+TEMPO", true, true, true},
    };

    const Benchmark subset[] = {Benchmark::mcf, Benchmark::canneal,
                                Benchmark::pr, Benchmark::tc};

    static std::map<std::string, std::vector<double>> series;

    for (const Variant &v : variants) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            Variant vv = v;
            registerCase(std::string("ablation_atp/") + v.name + "/" +
                             bname,
                         [vv, b, bname] {
                             const RunResult &base = cachedRun(
                                 "base/" + bname, baselineConfig(), b);
                             SystemConfig cfg = baselineConfig();
                             applyTranslationAware(
                                 cfg,
                                 {true, true, false, false, false});
                             cfg.atpL2 = vv.atpL2;
                             cfg.atpLlc = vv.atpLlc;
                             cfg.tempo = vv.tempo;
                             cfg.dram.tempo = vv.tempo;
                             RunResult r = runBenchmark(cfg, b);
                             const double sp = speedup(base, r);
                             addRow(vv.name, bname, (sp - 1) * 100,
                                    std::nan(""), "%");
                             series[vv.name].push_back(sp);
                         });
        }
    }

    registerCase("ablation_atp/summary", [&variants] {
        for (const Variant &v : variants)
            addRow(v.name, "geomean",
                   (geomean(series[v.name]) - 1) * 100, std::nan(""),
                   "%");
    });

    return benchMain(argc, argv,
                     "Ablation — ATP trigger level and TEMPO backstop");
}
