/**
 * @file
 * Paper Fig. 18: recall distance of translations at the STLB itself —
 * the argument against dead-entry bypassing at the TLB (CbPred/DpPred):
 * on average more than 40% of STLB entries have a recall distance
 * beyond 50, so bypassing dead entries cannot expedite the costly
 * misses.
 */

#include "bench_common.hh"
#include "sim/system.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    std::vector<double> over50;

    for (Benchmark b : kAllBenchmarks) {
        const std::string name = benchmarkName(b);
        registerCase("fig18/" + name, [b, name, &over50] {
            SystemConfig cfg = baselineConfig();
            cfg.profileStlbRecall = true;
            std::vector<std::unique_ptr<Workload>> w;
            w.push_back(makeWorkload(b, cfg.seed));
            System sys(cfg, std::move(w));
            sys.warmup(defaultWarmup());
            sys.run(defaultInstructions());

            const Histogram &h =
                sys.stlb().recallProfiler()->translationHist();
            const double f = (1 - h.fractionAtOrBelow(50)) * 100;
            addRow("STLB recall>50", name, f, std::nan(""), "%");
            over50.push_back(f);
        });
    }

    registerCase("fig18/summary", [&over50] {
        double s = 0;
        for (double x : over50)
            s += x;
        addRow("STLB recall>50", "suite avg",
               over50.empty() ? 0 : s / double(over50.size()), 40.0,
               "% (paper: >40%)");
    });

    return benchMain(argc, argv,
                     "Fig. 18 — recall distance of translations at STLB");
}
