/**
 * @file
 * Design-choice ablation: page-walker provisioning. Sweeps the number
 * of concurrent walkers and the PSC sizes — the substrate knobs the
 * paper's Table I fixes (4-ish walkers; PSCL5/4/3/2 = 2/4/8/32) — to
 * show the evaluation is not an artifact of an over- or under-
 * provisioned MMU.
 */

#include "bench_common.hh"

using namespace tacbench;

int
main(int argc, char **argv)
{
    const Benchmark subset[] = {Benchmark::mcf, Benchmark::pr,
                                Benchmark::cc};

    // --- walker-count sweep ---
    for (unsigned walkers : {1u, 2u, 4u, 8u}) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            registerCase("ablation_walker/walkers" +
                             std::to_string(walkers) + "/" + bname,
                         [walkers, b, bname] {
                             SystemConfig cfg = baselineConfig();
                             cfg.ptw.maxConcurrentWalks = walkers;
                             RunResult r = runBenchmark(cfg, b);
                             addRow("walkers=" + std::to_string(walkers),
                                    bname, r.ipc, std::nan(""), "IPC");
                         });
        }
    }

    // --- PSC sweep: none / Table I / doubled ---
    struct PscCfg
    {
        const char *name;
        std::array<std::uint32_t, 4> sizes;
    };
    const PscCfg pscs[] = {
        {"psc=off", {1, 1, 1, 1}}, // 1-entry: effectively useless
        {"psc=TableI", {32, 8, 4, 2}},
        {"psc=2x", {64, 16, 8, 4}},
    };
    for (const PscCfg &p : pscs) {
        for (Benchmark b : subset) {
            const std::string bname = benchmarkName(b);
            PscCfg pc = p;
            registerCase(std::string("ablation_walker/") + p.name + "/" +
                             bname,
                         [pc, b, bname] {
                             SystemConfig cfg = baselineConfig();
                             cfg.ptw.pscSizes = pc.sizes;
                             RunResult r = runBenchmark(cfg, b);
                             addRow(pc.name, bname, r.ipc, std::nan(""),
                                    "IPC");
                         });
        }
    }

    return benchMain(argc, argv,
                     "Ablation — page-walker concurrency and PSC sizing");
}
