/**
 * @file
 * Shared helpers for unit tests: a scriptable memory device that records
 * the requests it receives, and request factories.
 */

#ifndef TACSIM_TESTS_TEST_UTIL_HH
#define TACSIM_TESTS_TEST_UTIL_HH

#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "mem/request.hh"

namespace tacsim::test {

/**
 * Bottom-of-hierarchy stub: records every request and completes it after
 * a fixed delay on the shared event queue.
 */
class MockMemory : public MemDevice
{
  public:
    explicit MockMemory(EventQueue &eq, Cycle delay = 100)
        : eq_(eq), delay_(delay)
    {}

    void
    access(const MemRequestPtr &req) override
    {
        requests.push_back(req);
        MemRequestPtr keep = req;
        eq_.schedule(delay_, [keep, this] {
            keep->complete(eq_.now(), RespSource::DRAM);
        });
    }

    const std::string &name() const override { return name_; }

    /** Requests of a given type received so far. */
    std::size_t
    countOf(ReqType t) const
    {
        std::size_t n = 0;
        for (const auto &r : requests)
            n += r->type == t;
        return n;
    }

    std::vector<MemRequestPtr> requests;

  private:
    EventQueue &eq_;
    Cycle delay_;
    std::string name_ = "mock";
};

/** Build a demand load request. */
inline MemRequestPtr
makeLoad(Addr paddr, Addr ip = 0x400000, bool replay = false)
{
    auto req = std::make_shared<MemRequest>();
    req->paddr = paddr;
    req->vaddr = paddr;
    req->ip = ip;
    req->type = ReqType::Load;
    req->isReplay = replay;
    return req;
}

/** Build a PTW translation read. */
inline MemRequestPtr
makeTranslation(Addr paddr, unsigned level, Addr replayBlock = 0,
                Addr ip = 0x400000)
{
    auto req = std::make_shared<MemRequest>();
    req->paddr = paddr;
    req->ip = ip;
    req->type = ReqType::Translation;
    req->ptLevel = static_cast<std::uint8_t>(level);
    req->leafPte = level == 1; // bare 4K walk: level 1 is the leaf
    req->replayBlockPaddr = replayBlock;
    return req;
}

/** Drain the event queue completely (bounded). */
inline void
drain(EventQueue &eq, std::uint64_t maxSteps = 1u << 20)
{
    while (!eq.empty() && maxSteps--)
        eq.step();
}

} // namespace tacsim::test

#endif // TACSIM_TESTS_TEST_UTIL_HH
