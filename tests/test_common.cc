/**
 * @file
 * Unit tests for address helpers, the RNG and the histogram.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace tacsim {
namespace {

// --- address geometry ---

TEST(Types, BlockHelpers)
{
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
    EXPECT_EQ(blockNumber(0x12345), 0x12345u >> 6);
    EXPECT_EQ(blockAlign(0x1000), 0x1000u);
    EXPECT_EQ(kBlockSize, 64u);
}

TEST(Types, PageHelpers)
{
    EXPECT_EQ(pageAlign(0x12345), 0x12000u);
    EXPECT_EQ(pageNumber(0x12345), 0x12u);
    EXPECT_EQ(kPageSize, 4096u);
}

TEST(Types, PtIndexExtractsNineBitChunks)
{
    // VA[20:12] is the level-1 index, VA[29:21] level-2, etc.
    const Addr va = (Addr{0x1ab} << 12) | (Addr{0x0cd} << 21) |
        (Addr{0x1ef} << 30) | (Addr{0x123} << 39) | (Addr{0x055} << 48);
    EXPECT_EQ(ptIndex(va, 1), 0x1abu);
    EXPECT_EQ(ptIndex(va, 2), 0x0cdu);
    EXPECT_EQ(ptIndex(va, 3), 0x1efu);
    EXPECT_EQ(ptIndex(va, 4), 0x123u);
    EXPECT_EQ(ptIndex(va, 5), 0x055u);
}

TEST(Types, PtIndexMasksToNineBits)
{
    for (unsigned level = 1; level <= kPtLevels; ++level)
        EXPECT_LT(ptIndex(~Addr{0}, level), kPtEntries);
}

// --- RNG ---

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c;
    }
    Rng d(43);
    bool anyDiff = false;
    Rng e(42);
    for (int i = 0; i < 100; ++i)
        anyDiff |= d.next() != e.next();
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, RangeIsBounded)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 30}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.range(bound), bound);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, HashMixIsStableAndSpreads)
{
    EXPECT_EQ(hashMix(1), hashMix(1));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(hashMix(i));
    EXPECT_EQ(seen.size(), 1000u); // no collisions in a small range
}

TEST(Rng, ReseedResetsStream)
{
    Rng r(5);
    const auto first = r.next();
    r.next();
    r.reseed(5);
    EXPECT_EQ(r.next(), first);
}

// --- Histogram ---

TEST(Histogram, BucketsBySuppliedBounds)
{
    Histogram h({10, 50});
    h.add(0);
    h.add(10);  // <=10
    h.add(11);  // <=50
    h.add(50);
    h.add(51);  // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, MeanAndMax)
{
    Histogram h({100});
    h.add(10);
    h.add(20);
    h.add(60);
    EXPECT_DOUBLE_EQ(h.mean(), 30.0);
    EXPECT_EQ(h.max(), 60u);
}

TEST(Histogram, FractionAtOrBelow)
{
    Histogram h({10, 50, 100});
    for (int i = 0; i < 3; ++i)
        h.add(5);
    h.add(40);
    h.add(400);
    EXPECT_DOUBLE_EQ(h.fractionAtOrBelow(10), 0.6);
    EXPECT_DOUBLE_EQ(h.fractionAtOrBelow(50), 0.8);
    EXPECT_DOUBLE_EQ(h.fractionAtOrBelow(100), 0.8);
}

TEST(HistogramDeathTest, FractionAtOrBelowRejectsNonBucketBound)
{
#if defined(TACSIM_VERIFY_ENABLED) || !defined(NDEBUG)
    // A non-bucket bound cannot be answered from bucket counts; the
    // silent alternative would be a partial sum that reads like a valid
    // fraction.
    Histogram h({10, 50, 100});
    h.add(5);
    EXPECT_DEATH_IF_SUPPORTED(h.fractionAtOrBelow(60),
                              "exact bucket bound");
#else
    GTEST_SKIP() << "TACSIM_DCHECK compiled out in this build";
#endif
}

TEST(Histogram, Labels)
{
    Histogram h({10, 50});
    EXPECT_EQ(h.label(0), "0-10");
    EXPECT_EQ(h.label(1), "11-50");
    EXPECT_EQ(h.label(2), ">50");
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h({10});
    h.add(5);
    h.add(500);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAtOrBelow(10), 0.0);
}

} // namespace
} // namespace tacsim
