/**
 * @file
 * Tests for the incremental HTTP/1.1 request parser (serve/http.hh) and
 * the serve-layer JSON reader/writer — the two components that face
 * untrusted network bytes, so the emphasis is on hostile input:
 * split-anywhere feeds, oversized headers and bodies, malformed
 * lengths, deep nesting, trailing garbage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "serve/http.hh"
#include "serve/json.hh"

namespace tacsim {
namespace serve {
namespace {

using State = HttpRequestParser::State;

State
feedAll(HttpRequestParser &p, const std::string &bytes,
        std::size_t chunk = 0)
{
    if (chunk == 0)
        return p.feed(bytes.data(), bytes.size());
    State s = p.state();
    for (std::size_t i = 0; i < bytes.size(); i += chunk)
        s = p.feed(bytes.data() + i,
                   std::min(chunk, bytes.size() - i));
    return s;
}

TEST(HttpParser, ParsesSimpleGet)
{
    HttpRequestParser p;
    ASSERT_EQ(feedAll(p, "GET /healthz HTTP/1.1\r\n"
                         "Host: localhost\r\n\r\n"),
              State::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().target, "/healthz");
    EXPECT_EQ(p.request().header("host"), "localhost");
    EXPECT_TRUE(p.request().body.empty());
}

TEST(HttpParser, ParsesPostWithBody)
{
    const std::string body = "{\"spec\":\"mcf\"}";
    HttpRequestParser p;
    ASSERT_EQ(feedAll(p,
                      "POST /jobs HTTP/1.1\r\n"
                      "Content-Type: application/json\r\n"
                      "Content-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" +
                          body),
              State::Done);
    EXPECT_EQ(p.request().method, "POST");
    EXPECT_EQ(p.request().body, body);
    // Header names are case-insensitive (stored lowercased).
    EXPECT_EQ(p.request().header("content-type"), "application/json");
}

TEST(HttpParser, ByteAtATimeFeedIsEquivalent)
{
    const std::string body = "hello body";
    const std::string req = "POST /jobs HTTP/1.1\r\n"
                            "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    HttpRequestParser p;
    ASSERT_EQ(feedAll(p, req, 1), State::Done);
    EXPECT_EQ(p.request().body, body);
}

TEST(HttpParser, ExcessBytesBeyondContentLengthAreIgnored)
{
    HttpRequestParser p;
    ASSERT_EQ(feedAll(p, "POST /jobs HTTP/1.1\r\n"
                         "Content-Length: 2\r\n\r\nabEXTRA"),
              State::Done);
    EXPECT_EQ(p.request().body, "ab");
}

TEST(HttpParser, RejectsMalformedRequestLine)
{
    HttpRequestParser p1;
    EXPECT_EQ(feedAll(p1, "GET /\r\n\r\n"), State::Error);
    HttpRequestParser p2;
    EXPECT_EQ(feedAll(p2, "GET / extra HTTP/1.1\r\n\r\n"), State::Error);
    HttpRequestParser p3;
    EXPECT_EQ(feedAll(p3, "GET / FTP/1.1\r\n\r\n"), State::Error);
}

TEST(HttpParser, RejectsMalformedContentLength)
{
    HttpRequestParser p;
    EXPECT_EQ(feedAll(p, "POST /jobs HTTP/1.1\r\n"
                         "Content-Length: twelve\r\n\r\n"),
              State::Error);
}

TEST(HttpParser, RejectsChunkedEncoding)
{
    HttpRequestParser p;
    EXPECT_EQ(feedAll(p, "POST /jobs HTTP/1.1\r\n"
                         "Transfer-Encoding: chunked\r\n\r\n"),
              State::Error);
}

TEST(HttpParser, CapsHeaderSize)
{
    HttpRequestParser p;
    std::string req = "GET / HTTP/1.1\r\n";
    req += "X-Pad: " + std::string(HttpRequestParser::kMaxHeaderBytes,
                                   'a');
    EXPECT_EQ(feedAll(p, req, 4096), State::Error);
}

TEST(HttpParser, CapsBodySize)
{
    HttpRequestParser p;
    EXPECT_EQ(feedAll(p,
                      "POST /jobs HTTP/1.1\r\nContent-Length: " +
                          std::to_string(
                              HttpRequestParser::kMaxBodyBytes + 1) +
                          "\r\n\r\n"),
              State::Error);
}

TEST(HttpResponse, CarriesLengthAndClose)
{
    const std::string r = makeHttpResponse(200, "OK", "text/plain",
                                           "body!");
    EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
    EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(r.substr(r.size() - 5), "body!");
}

TEST(Json, ParsesScalarsArraysObjects)
{
    const JsonValue v = parseJson(
        R"({"a": 1, "b": [true, null, "xA"], "c": {"d": 2.5}})");
    EXPECT_EQ(v.at("a").asU64(), 1u);
    EXPECT_TRUE(v.at("b").asArray()[0].asBool());
    EXPECT_TRUE(v.at("b").asArray()[1].isNull());
    EXPECT_EQ(v.at("b").asArray()[2].asString(), "xA");
    EXPECT_EQ(v.at("c").at("d").asNumber(), 2.5);
    EXPECT_TRUE(v.at("missing").isNull());
}

TEST(Json, DumpRoundTripsExactly)
{
    JsonObject o;
    o["pi"] = JsonValue(3.141592653589793);
    o["n"] = JsonValue(static_cast<std::uint64_t>(123456789));
    o["s"] = JsonValue(std::string("quote \" slash \\ ctrl \n"));
    const std::string text = JsonValue(o).dump();
    const JsonValue back = parseJson(text);
    EXPECT_EQ(back.at("pi").asNumber(), 3.141592653589793);
    EXPECT_EQ(back.at("n").asU64(), 123456789u);
    EXPECT_EQ(back.at("s").asString(), o["s"].asString());
    EXPECT_EQ(back.dump(), text); // fixpoint
}

TEST(Json, RejectsHostileInput)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\":1} trailing"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\" 1}"), std::runtime_error);
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_THROW(parseJson(deep), std::runtime_error);
    // Raw control characters must be escaped.
    EXPECT_THROW(parseJson("\"a\nb\""), std::runtime_error);
}

TEST(Json, U64RejectsNonIntegers)
{
    EXPECT_THROW(parseJson("2.5").asU64(), std::runtime_error);
    EXPECT_THROW(parseJson("-1").asU64(), std::runtime_error);
    EXPECT_THROW(parseJson("1e300").asU64(), std::runtime_error);
    EXPECT_EQ(parseJson("0").asU64(), 0u);
}

} // namespace
} // namespace serve
} // namespace tacsim
