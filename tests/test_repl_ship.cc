/**
 * @file
 * Unit tests for SHiP and its translation-conscious variants: SHCT
 * training, insertion prediction, the paper's NewSign flag-extended
 * signatures and T-SHiP's leaf-translation insertion.
 */

#include <gtest/gtest.h>

#include "cache/repl/ship.hh"

namespace tacsim {
namespace {

AccessInfo
dataAccess(Addr ip)
{
    AccessInfo ai;
    ai.blockAddr = 0x1000;
    ai.ip = ip;
    ai.cat = BlockCat::NonReplay;
    return ai;
}

BlockMeta
validMeta()
{
    BlockMeta m;
    m.valid = true;
    return m;
}

TEST(Ship, DeadSignatureInsertsDistant)
{
    ShipPolicy p(64, 8, {});
    const Addr ip = 0x400100;
    // Train the signature dead: fill + evict without reuse, repeatedly.
    for (int i = 0; i < 8; ++i) {
        p.onFill(0, 0, dataAccess(ip));
        p.onEvict(0, 0, validMeta());
    }
    p.onFill(0, 0, dataAccess(ip));
    EXPECT_EQ(p.rrpv(0, 0), RripBase::kMaxRrpv);
}

TEST(Ship, ReusedSignatureInsertsLong)
{
    ShipPolicy p(64, 8, {});
    const Addr ip = 0x400200;
    for (int i = 0; i < 4; ++i) {
        p.onFill(0, 0, dataAccess(ip));
        p.onHit(0, 0, dataAccess(ip));
    }
    p.onFill(0, 1, dataAccess(ip));
    EXPECT_EQ(p.rrpv(0, 1), RripBase::kMaxRrpv - 1);
}

TEST(Ship, CounterSaturates)
{
    ShipPolicy p(64, 8, {});
    const Addr ip = 0x400300;
    for (int i = 0; i < 100; ++i) {
        p.onFill(0, 0, dataAccess(ip));
        p.onHit(0, 0, dataAccess(ip));
    }
    const auto sig = p.signatureFor(ip, false, false);
    EXPECT_EQ(p.shct(sig), ShipPolicy::kCounterMax);
}

TEST(Ship, OnlyFirstHitTrains)
{
    ShipPolicy p(64, 8, {});
    const Addr ip = 0x400400;
    const auto sig = p.signatureFor(ip, false, false);
    const auto before = p.shct(sig);
    p.onFill(0, 0, dataAccess(ip));
    p.onHit(0, 0, dataAccess(ip));
    p.onHit(0, 0, dataAccess(ip));
    p.onHit(0, 0, dataAccess(ip));
    EXPECT_EQ(p.shct(sig), before + 1);
}

TEST(Ship, DefaultSignaturesIgnoreFlags)
{
    ShipPolicy p(64, 8, {});
    EXPECT_EQ(p.signatureFor(0x400500, false, false),
              p.signatureFor(0x400500, true, false));
    EXPECT_EQ(p.signatureFor(0x400500, false, false),
              p.signatureFor(0x400500, false, true));
}

TEST(Ship, NewSignaturesSeparateTrafficClasses)
{
    ReplOpts opts;
    opts.newSignatures = true;
    ShipPolicy p(64, 8, opts);
    const Addr ip = 0x400600;
    const auto data = p.signatureFor(ip, false, false);
    const auto translation = p.signatureFor(ip, true, false);
    const auto replay = p.signatureFor(ip, false, true);
    EXPECT_NE(data, translation);
    EXPECT_NE(data, replay);
    EXPECT_NE(translation, replay);
}

TEST(Ship, NewSignaturesIsolateTraining)
{
    // The paper's motivating failure: a dead data signature must not
    // doom the same IP's translation blocks. With NewSign it does not.
    ReplOpts opts;
    opts.newSignatures = true;
    ShipPolicy p(64, 8, opts);
    const Addr ip = 0x400700;

    AccessInfo data = dataAccess(ip);
    for (int i = 0; i < 8; ++i) {
        p.onFill(0, 0, data);
        p.onEvict(0, 0, validMeta());
    }

    AccessInfo tr = dataAccess(ip);
    tr.cat = BlockCat::PtLeaf;
    tr.ptLevel = 1;
    tr.leafPte = true;
    p.onFill(0, 1, tr);
    EXPECT_LT(p.rrpv(0, 1), RripBase::kMaxRrpv)
        << "translation insertion poisoned by data training";
}

TEST(TShip, LeafTranslationsInsertAtZero)
{
    ReplOpts opts;
    opts.newSignatures = true;
    opts.translationRrpv0 = true;
    ShipPolicy p(64, 8, opts);
    AccessInfo tr = dataAccess(0x400800);
    tr.cat = BlockCat::PtLeaf;
    tr.ptLevel = 1;
    tr.leafPte = true;
    p.onFill(3, 0, tr);
    EXPECT_EQ(p.rrpv(3, 0), 0);
    EXPECT_EQ(p.name(), "T-SHiP");
}

TEST(TShip, NewSignOnlyNameAndBehaviour)
{
    ReplOpts opts;
    opts.newSignatures = true;
    ShipPolicy p(64, 8, opts);
    EXPECT_EQ(p.name(), "SHiP-NewSign");
    AccessInfo tr = dataAccess(0x400900);
    tr.cat = BlockCat::PtLeaf;
    tr.ptLevel = 1;
    tr.leafPte = true;
    p.onFill(3, 0, tr);
    EXPECT_GT(p.rrpv(3, 0), 0); // no forced RRPV0 without the T flag
}

TEST(Ship, EvictWithoutReuseDecrements)
{
    ShipPolicy p(64, 8, {});
    const Addr ip = 0x400a00;
    const auto sig = p.signatureFor(ip, false, false);
    p.onFill(0, 0, dataAccess(ip));
    p.onHit(0, 0, dataAccess(ip)); // counter -> 2
    const auto mid = p.shct(sig);
    p.onFill(0, 0, dataAccess(ip));
    p.onEvict(0, 0, validMeta()); // no reuse -> decrement
    EXPECT_EQ(p.shct(sig), mid - 1);
}

TEST(Ship, InvalidEvictDoesNotTrain)
{
    ShipPolicy p(64, 8, {});
    const Addr ip = 0x400b00;
    const auto sig = p.signatureFor(ip, false, false);
    const auto before = p.shct(sig);
    p.onFill(0, 0, dataAccess(ip));
    BlockMeta invalid;
    invalid.valid = false;
    p.onEvict(0, 0, invalid);
    EXPECT_EQ(p.shct(sig), before);
}

} // namespace
} // namespace tacsim
