/**
 * @file
 * Trace subsystem tests: tacsim-trace-v1 encoding primitives, writer ↔
 * reader round trips, integrity verification, the ChampSim importer,
 * and the subsystem's headline guarantee — recording a synthetic run
 * and replaying the file produces a byte-identical canonical stats dump
 * (the live generator and the trace are interchangeable inputs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/rng.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"
#include "sim/sweep.hh"
#include "trace/champsim.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

#ifndef TACSIM_TEST_DATA_DIR
#error "TACSIM_TEST_DATA_DIR must point at tests/data"
#endif

namespace tacsim {
namespace {

std::string
tmpPath(const std::string &stem)
{
    return ::testing::TempDir() + "tacsim_" + stem + "_" +
        std::to_string(::getpid()) + ".tactrc";
}

// --- encoding primitives ---

TEST(TraceFormat, VarintRoundTrip)
{
    std::vector<unsigned char> buf;
    const std::uint64_t values[] = {0,     1,          127,
                                    128,   16383,      16384,
                                    1u << 20, ~std::uint64_t{0}};
    for (std::uint64_t v : values)
        trace::appendVarint(buf, v);

    std::size_t pos = 0;
    auto take = [&]() {
        std::uint64_t v = 0;
        for (unsigned shift = 0;; shift += 7) {
            const unsigned char b = buf[pos++];
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80))
                return v;
        }
    };
    for (std::uint64_t v : values)
        EXPECT_EQ(take(), v);
    EXPECT_EQ(pos, buf.size());
}

TEST(TraceFormat, ZigzagRoundTrip)
{
    for (std::int64_t v :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
          std::int64_t{1} << 40, -(std::int64_t{1} << 40),
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()})
        EXPECT_EQ(trace::zigzagDecode(trace::zigzagEncode(v)), v);
    // Small magnitudes stay small (that is the point of the fold).
    EXPECT_EQ(trace::zigzagEncode(-1), 1u);
    EXPECT_EQ(trace::zigzagEncode(1), 2u);
}

TEST(TraceFormat, Crc32MatchesKnownVector)
{
    // The IEEE CRC-32 check value for "123456789".
    const char *s = "123456789";
    EXPECT_EQ(trace::crc32(0, s, 9), 0xCBF43926u);
    // Incremental accumulation must match one-shot.
    std::uint32_t crc = trace::crc32(0, s, 4);
    crc = trace::crc32(crc, s + 4, 5);
    EXPECT_EQ(crc, 0xCBF43926u);
}

// --- writer ↔ reader ---

std::vector<TraceRecord>
randomRecords(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TraceRecord> out;
    out.reserve(n);
    Addr ip = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord r;
        ip += rng.range(32) * 4;
        r.ip = ip;
        const std::uint64_t k = rng.range(10);
        if (k < 5) {
            r.kind = TraceRecord::Kind::Load;
            r.vaddr = (Addr{1} << 40) + rng.range(1u << 30);
            r.dependsOnPrevLoad = rng.chance(0.3);
        } else if (k < 7) {
            r.kind = TraceRecord::Kind::Store;
            r.vaddr = (Addr{1} << 41) + rng.range(1u << 24);
        }
        out.push_back(r);
    }
    return out;
}

void
expectSameRecord(const TraceRecord &a, const TraceRecord &b)
{
    EXPECT_EQ(a.ip, b.ip);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.vaddr, b.vaddr);
    EXPECT_EQ(a.dependsOnPrevLoad, b.dependsOnPrevLoad);
}

TEST(TraceFile, WriteReadRoundTrip)
{
    const std::string path = tmpPath("roundtrip");
    const std::vector<TraceRecord> records = randomRecords(5000, 17);

    {
        trace::TraceHeader h;
        h.name = "synthetic";
        h.footprint = 123456789;
        h.seed = 42;
        trace::TraceWriter w(path, h);
        for (const TraceRecord &r : records)
            w.append(r);
        w.finalize();
        EXPECT_EQ(w.recordCount(), records.size());
    }

    trace::TraceReader reader(path);
    EXPECT_EQ(reader.header().name, "synthetic");
    EXPECT_EQ(reader.header().footprint, 123456789u);
    EXPECT_EQ(reader.header().seed, 42u);
    ASSERT_EQ(reader.header().recordCount, records.size());

    TraceRecord r;
    for (const TraceRecord &expected : records) {
        ASSERT_TRUE(reader.next(r));
        expectSameRecord(expected, r);
    }
    EXPECT_FALSE(reader.next(r));

    // rewind() restarts the stream identically (EOF-loop support).
    reader.rewind();
    ASSERT_TRUE(reader.next(r));
    expectSameRecord(records[0], r);

    std::remove(path.c_str());
}

TEST(TraceFile, WorkloadLoopsAtEof)
{
    const std::string path = tmpPath("loop");
    const std::vector<TraceRecord> records = randomRecords(7, 23);
    {
        trace::TraceHeader h;
        h.name = "tiny";
        trace::TraceWriter w(path, h);
        for (const TraceRecord &r : records)
            w.append(r);
        w.finalize();
    }

    trace::TraceFileWorkload wl(path);
    EXPECT_EQ(wl.name(), "tiny");
    for (int lap = 0; lap < 3; ++lap)
        for (const TraceRecord &expected : records) {
            const TraceRecord got = wl.next();
            expectSameRecord(expected, got);
        }

    std::remove(path.c_str());
}

TEST(TraceFile, VerifyPassesAndCatchesCorruption)
{
    const std::string path = tmpPath("verify");
    {
        trace::TraceHeader h;
        h.name = "v";
        trace::TraceWriter w(path, h);
        for (const TraceRecord &r : randomRecords(2000, 5))
            w.append(r);
        w.finalize();
    }
    EXPECT_TRUE(trace::verifyTraceFile(path).ok);

    // Flip one payload byte: CRC (or decode) must catch it.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        const std::streamoff off = static_cast<std::streamoff>(
            trace::kHeaderFixedBytes + 1 /* name "v" */ + 100);
        f.seekg(off);
        char c = 0;
        f.read(&c, 1);
        c = static_cast<char>(c ^ 0x40);
        f.seekp(off);
        f.write(&c, 1);
    }
    const trace::VerifyResult bad = trace::verifyTraceFile(path);
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());

    std::remove(path.c_str());
}

TEST(TraceFile, RejectsGarbageAndMissingFiles)
{
    EXPECT_THROW(trace::TraceReader("/nonexistent/file.tactrc"),
                 std::runtime_error);

    const std::string path = tmpPath("garbage");
    {
        std::ofstream f(path, std::ios::binary);
        f << "this is not a trace file at all";
    }
    EXPECT_THROW(trace::TraceReader{path}, std::runtime_error);
    EXPECT_FALSE(trace::verifyTraceFile(path).ok);
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedFilesFailWithDiagnostics)
{
    const std::string path = tmpPath("trunc");
    {
        trace::TraceHeader h;
        h.name = "t";
        trace::TraceWriter w(path, h);
        for (const TraceRecord &r : randomRecords(2000, 9))
            w.append(r);
        w.finalize();
    }
    long size = 0;
    {
        std::ifstream f(path, std::ios::binary | std::ios::ate);
        size = static_cast<long>(f.tellg());
    }

    // Half the payload gone: the header still promises 2000 records, so
    // decoding must stop at the (supposed) footer boundary and name the
    // shortfall rather than misdecode footer bytes as records.
    ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
    trace::TraceReader reader(path);
    EXPECT_EQ(reader.header().recordCount, 2000u);
    try {
        TraceRecord r;
        while (reader.next(r)) {
        }
        FAIL() << "decoding a truncated payload should throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("payload truncated (decoded"),
                  std::string::npos)
            << e.what();
    }
    const trace::VerifyResult half = trace::verifyTraceFile(path);
    EXPECT_FALSE(half.ok);
    EXPECT_NE(half.error.find("payload truncated"), std::string::npos)
        << half.error;

    // Cut down to the header plus a few payload bytes: no room is left
    // for the footer, which the constructor reports up front.
    ASSERT_EQ(::truncate(path.c_str(),
                         static_cast<long>(trace::kHeaderFixedBytes) + 5),
              0);
    try {
        trace::TraceReader again(path);
        FAIL() << "opening a footer-less file should throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("no room for footer"),
                  std::string::npos)
            << e.what();
    }
    const trace::VerifyResult cut = trace::verifyTraceFile(path);
    EXPECT_FALSE(cut.ok);
    EXPECT_NE(cut.error.find("no room for footer"), std::string::npos)
        << cut.error;

    std::remove(path.c_str());
}

TEST(TraceFile, VerifyRejectsEmptyTrace)
{
    const std::string path = tmpPath("empty");
    {
        trace::TraceHeader h;
        h.name = "e";
        trace::TraceWriter w(path, h);
        w.finalize(); // zero records, structurally valid otherwise
    }
    // The header still parses (info-style reads work)...
    trace::TraceReader reader(path);
    EXPECT_EQ(reader.header().recordCount, 0u);
    TraceRecord r;
    EXPECT_FALSE(reader.next(r));
    // ...but verify and replay both reject a trace with nothing in it.
    const trace::VerifyResult v = trace::verifyTraceFile(path);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("empty trace (0 records)"), std::string::npos)
        << v.error;
    EXPECT_THROW(trace::TraceFileWorkload{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, SpecParserRejectsUnknownSpecs)
{
    EXPECT_THROW(makeWorkloadFromSpec("no-such-benchmark"),
                 std::runtime_error);
    EXPECT_THROW(makeWorkloadFromSpec("trace:"), std::runtime_error);
    EXPECT_THROW(makeWorkloadFromSpec("trace:/nonexistent.tactrc"),
                 std::runtime_error);
    // Benchmark names resolve exactly like makeWorkload().
    for (Benchmark b : kAllBenchmarks) {
        const auto wl = makeWorkloadFromSpec(benchmarkName(b), 3);
        EXPECT_EQ(wl->name(), benchmarkName(b));
    }
}

// --- the headline guarantee: record → replay is stats-identical ---

constexpr std::uint64_t kRtInstructions = 8000;
constexpr std::uint64_t kRtWarmup = 2000;

class TraceRoundTrip : public ::testing::TestWithParam<Benchmark>
{
};

TEST_P(TraceRoundTrip, ReplayMatchesLiveGeneratorByteForByte)
{
    const Benchmark b = GetParam();
    const SystemConfig cfg{};
    const std::string path = tmpPath("rt_" + benchmarkName(b));

    // Live run, straight from the generator.
    const RunResult live =
        runBenchmark(cfg, b, kRtInstructions, kRtWarmup);
    const std::string liveDump = dumpRunResult(live);

    // Recording run: same generator teed through a TraceWriter. The
    // decorator must be transparent — identical dump.
    auto writer = std::make_shared<trace::TraceWriter>(
        path, trace::RecordingWorkload::headerFor(
                  *makeWorkload(b, cfg.seed), cfg.seed));
    std::vector<std::unique_ptr<Workload>> wls;
    wls.push_back(std::make_unique<trace::RecordingWorkload>(
        makeWorkload(b, cfg.seed), writer));
    const RunResult recorded = runWorkloads(cfg, std::move(wls), "",
                                            kRtInstructions, kRtWarmup);
    writer->finalize();
    EXPECT_EQ(dumpRunResult(recorded), liveDump)
        << "recording must not perturb the run";

    ASSERT_TRUE(trace::verifyTraceFile(path).ok);

    // Replay run, driven purely by the file.
    SystemConfig replayCfg = cfg;
    replayCfg.workload = "trace:" + path;
    const RunResult replayed =
        runBenchmark(replayCfg, b, kRtInstructions, kRtWarmup);
    const std::vector<std::string> diffs =
        diffDumps(liveDump, dumpRunResult(replayed));
    EXPECT_TRUE(diffs.empty())
        << "replay diverged from the live generator: " << diffs.size()
        << " field(s), first: " << (diffs.empty() ? "" : diffs[0]);
    EXPECT_EQ(dumpRunResult(replayed), liveDump);

    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, TraceRoundTrip,
    ::testing::Values(Benchmark::xalancbmk, Benchmark::canneal,
                      Benchmark::mcf, Benchmark::pr),
    [](const ::testing::TestParamInfo<Benchmark> &info) {
        return benchmarkName(info.param);
    });

// --- ChampSim import ---

void
putLe64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

/** Append one ChampSim input_instr record (64 bytes). */
void
putChampSim(std::vector<unsigned char> &out, std::uint64_t ip,
            std::vector<unsigned char> destRegs,
            std::vector<unsigned char> srcRegs,
            std::vector<std::uint64_t> destMem,
            std::vector<std::uint64_t> srcMem)
{
    putLe64(out, ip);
    out.push_back(0); // is_branch
    out.push_back(0); // branch_taken
    destRegs.resize(2);
    srcRegs.resize(4);
    destMem.resize(2);
    srcMem.resize(4);
    out.insert(out.end(), destRegs.begin(), destRegs.end());
    out.insert(out.end(), srcRegs.begin(), srcRegs.end());
    for (std::uint64_t v : destMem)
        putLe64(out, v);
    for (std::uint64_t v : srcMem)
        putLe64(out, v);
}

trace::ByteSource
memorySource(const std::vector<unsigned char> &bytes)
{
    auto pos = std::make_shared<std::size_t>(0);
    return [&bytes, pos](void *buf, std::size_t n) {
        const std::size_t left = bytes.size() - *pos;
        const std::size_t take = std::min(n, left);
        std::memcpy(buf, bytes.data() + *pos, take);
        *pos += take;
        return take;
    };
}

TEST(ChampSimImport, MapsRecordsAndLoadDependences)
{
    const Addr base = Addr{1} << 32;
    std::vector<unsigned char> in;
    // 0: load [base] -> r5
    putChampSim(in, 0x1000, {5}, {}, {}, {base});
    // 1: load [base+64] via r5 -> r6  (pointer chase: dependent)
    putChampSim(in, 0x1004, {6}, {5}, {}, {base + 64});
    // 2: store [base+128] addressed via r6 (dependent on load 1)
    putChampSim(in, 0x1008, {}, {6}, {base + 128}, {});
    // 3: ALU overwrites r6 (kills the dependence)
    putChampSim(in, 0x100c, {6}, {}, {}, {});
    // 4: load [base+192] via r6 — r6 no longer holds load data
    putChampSim(in, 0x1010, {7}, {6}, {}, {base + 192});
    // 5: no memory, no registers — plain NonMem filler
    putChampSim(in, 0x1014, {}, {}, {}, {});

    const std::string path = tmpPath("champsim");
    trace::ChampSimImportOptions opts;
    opts.name = "cs-sample";
    const trace::ChampSimImportStats stats =
        trace::importChampSim(memorySource(in), path, opts);

    EXPECT_EQ(stats.instructions, 6u);
    EXPECT_EQ(stats.records, 6u);
    EXPECT_EQ(stats.loads, 3u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.nonMem, 2u);
    EXPECT_EQ(stats.dependent, 2u);

    ASSERT_TRUE(trace::verifyTraceFile(path).ok);
    trace::TraceReader reader(path);
    EXPECT_EQ(reader.header().name, "cs-sample");
    // Footprint derived from the observed span: base..base+192.
    EXPECT_EQ(reader.header().footprint, 193u);

    TraceRecord r;
    ASSERT_TRUE(reader.next(r)); // 0: independent load
    EXPECT_TRUE(r.isLoad());
    EXPECT_EQ(r.vaddr, base);
    EXPECT_FALSE(r.dependsOnPrevLoad);
    ASSERT_TRUE(reader.next(r)); // 1: dependent load
    EXPECT_TRUE(r.isLoad());
    EXPECT_TRUE(r.dependsOnPrevLoad);
    ASSERT_TRUE(reader.next(r)); // 2: dependent store
    EXPECT_TRUE(r.isStore());
    EXPECT_TRUE(r.dependsOnPrevLoad);
    ASSERT_TRUE(reader.next(r)); // 3: NonMem
    EXPECT_FALSE(r.isMem());
    ASSERT_TRUE(reader.next(r)); // 4: load, dependence was killed
    EXPECT_TRUE(r.isLoad());
    EXPECT_FALSE(r.dependsOnPrevLoad);
    ASSERT_TRUE(reader.next(r)); // 5: NonMem
    EXPECT_FALSE(r.isMem());
    EXPECT_FALSE(reader.next(r));

    std::remove(path.c_str());
}

TEST(ChampSimImport, RejectsTruncatedAndEmptyInputs)
{
    std::vector<unsigned char> in;
    putChampSim(in, 0x1000, {}, {}, {}, {Addr{1} << 32});
    in.resize(in.size() - 3); // torn final record

    const std::string path = tmpPath("champsim_bad");
    EXPECT_THROW(trace::importChampSim(memorySource(in), path, {}),
                 std::runtime_error);

    const std::vector<unsigned char> empty;
    EXPECT_THROW(trace::importChampSim(memorySource(empty), path, {}),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(ChampSimImport, ImportedTraceRunsThroughRunnerAndSweep)
{
    // A few thousand synthetic ChampSim instructions: a pointer-chasing
    // load stream over a wide region with periodic stores.
    std::vector<unsigned char> in;
    Rng rng(99);
    const Addr heap = Addr{1} << 33;
    for (int i = 0; i < 4000; ++i) {
        const Addr a = heap + rng.range(1u << 26) * 64;
        if (i % 7 == 3)
            putChampSim(in, 0x2000 + (i % 13) * 4, {}, {9},
                        {a + 8}, {});
        else
            putChampSim(in, 0x2000 + (i % 13) * 4, {9}, {9}, {}, {a});
    }

    const std::string path = tmpPath("champsim_e2e");
    trace::ChampSimImportOptions opts;
    opts.name = "cs-e2e";
    trace::importChampSim(memorySource(in), path, opts);
    ASSERT_TRUE(trace::verifyTraceFile(path).ok);

    // End to end through the runner...
    const SystemConfig cfg{};
    const RunResult direct =
        runSpec(cfg, "trace:" + path, 6000, 1500);
    EXPECT_EQ(direct.benchmark, "cs-e2e");
    EXPECT_GE(direct.instructions, 6000u);
    EXPECT_GT(direct.cycles, 0u);

    // ...and through a sweep point, which must agree byte for byte.
    SweepRunner sweep(2);
    sweep.addSpec("cs-e2e/baseline", cfg, "trace:" + path, 6000, 1500);
    sweep.run();
    const RunResult &viaSweep = sweep.result("cs-e2e/baseline");
    EXPECT_EQ(dumpRunResult(viaSweep), dumpRunResult(direct));
    const SweepOutcome *o = sweep.outcome("cs-e2e/baseline");
    ASSERT_NE(o, nullptr);
    EXPECT_TRUE(o->ok);
    EXPECT_EQ(o->benchmark, "cs-e2e");

    std::remove(path.c_str());
}

// --- committed sample trace (offline replay, no generator needed) ---

TEST(SampleTrace, CommittedSampleVerifiesAndReplays)
{
    const std::string path =
        std::string(TACSIM_TEST_DATA_DIR) + "/xalancbmk_small.tactrc";

    const trace::VerifyResult v = trace::verifyTraceFile(path);
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_EQ(v.header.name, "xalancbmk");
    EXPECT_GT(v.header.recordCount, 1000u);

    SystemConfig cfg{};
    cfg.workload = "trace:" + path;
    const RunResult r =
        runBenchmark(cfg, Benchmark::xalancbmk, 3000, 1000);
    EXPECT_EQ(r.benchmark, "xalancbmk");
    EXPECT_GE(r.instructions, 3000u);
    EXPECT_GT(r.ipc, 0.0);

    // Replay is deterministic: run twice, byte-identical dumps.
    const RunResult again =
        runBenchmark(cfg, Benchmark::xalancbmk, 3000, 1000);
    EXPECT_EQ(dumpRunResult(again), dumpRunResult(r));
}

} // namespace
} // namespace tacsim
