/**
 * @file
 * TopologySpec parser/dumper unit tests: canonical round-trips, exact
 * rejection messages for every malformed-spec class, the
 * SystemConfig<->TopologySpec mapping, and a seeded property stress
 * loop asserting dump->parse is the identity on random valid specs.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hh"
#include "sim/topology.hh"

namespace tacsim {
namespace {

/** Parse @p text expecting failure; returns the exception message. */
std::string
parseError(const std::string &text)
{
    try {
        parseTopologySpec(text);
    } catch (const std::invalid_argument &e) {
        return e.what();
    } catch (const std::exception &e) {
        ADD_FAILURE() << "wrong exception type for '" << text
                      << "': " << e.what();
        return "";
    }
    ADD_FAILURE() << "spec '" << text << "' unexpectedly parsed";
    return "";
}

TEST(TopologySpecTest, ParsesTheHeadlineExample)
{
    const TopologySpec s =
        parseTopologySpec("cores=32,smt=2,llc=16MB/32w,slices=8,chan=4");
    EXPECT_EQ(s.cores, 32u);
    EXPECT_EQ(s.smt, 2u);
    EXPECT_EQ(s.threads(), 64u);
    EXPECT_EQ(s.llcBytes, 16u * 1024 * 1024);
    EXPECT_EQ(s.llcWays, 32u);
    EXPECT_EQ(s.slices, 8u);
    EXPECT_EQ(s.channels, 4u);
    // Unmentioned knobs keep their defaults.
    EXPECT_EQ(s.sliceHopLatency, 0u);
    EXPECT_EQ(s.mshrQuota, 0u);
    EXPECT_EQ(s.bwTokens, 0u);
    EXPECT_EQ(s.bwWindow, 64u);
}

TEST(TopologySpecTest, DumpIsCanonicalAndOmitsDefaults)
{
    EXPECT_EQ(dumpTopologySpec(TopologySpec{}), "cores=1");

    const std::string text =
        "cores=32,smt=2,llc=16MB/32w,slices=8,chan=4";
    EXPECT_EQ(dumpTopologySpec(parseTopologySpec(text)), text);

    // Keys are re-emitted in canonical order regardless of input order.
    EXPECT_EQ(dumpTopologySpec(
                  parseTopologySpec("slices=4,cores=16,smt=2")),
              "cores=16,smt=2,slices=4");
}

TEST(TopologySpecTest, RoundTripsEveryKey)
{
    const std::string text =
        "cores=64,smt=4,llc=128MB/32w,slices=16,slice_lat=3,chan=8,"
        "mshr_quota=24,bw=16/128c";
    const TopologySpec s = parseTopologySpec(text);
    EXPECT_EQ(s.sliceHopLatency, 3u);
    EXPECT_EQ(s.mshrQuota, 24u);
    EXPECT_EQ(s.bwTokens, 16u);
    EXPECT_EQ(s.bwWindow, 128u);
    EXPECT_EQ(dumpTopologySpec(s), text);
    EXPECT_EQ(parseTopologySpec(dumpTopologySpec(s)), s);
}

TEST(TopologySpecTest, LlcSizesAcceptAllUnitsAndAuto)
{
    EXPECT_EQ(parseTopologySpec("cores=1,llc=512KB/8w").llcBytes,
              512u * 1024);
    EXPECT_EQ(parseTopologySpec("cores=1,llc=1GB/16w").llcBytes,
              std::uint64_t{1} << 30);
    // Plain bytes work and dump as the largest exact unit.
    EXPECT_EQ(dumpTopologySpec(parseTopologySpec("cores=1,llc=65536/4w")),
              "cores=1,llc=64KB/4w");

    const TopologySpec a = parseTopologySpec("cores=4,llc=auto/32w");
    EXPECT_EQ(a.llcBytes, 0u);
    EXPECT_EQ(a.llcWays, 32u);
    EXPECT_EQ(resolvedLlcBytes(a, 2u << 20), 8u * 1024 * 1024);
    EXPECT_EQ(dumpTopologySpec(a), "cores=4,llc=auto/32w");
}

TEST(TopologySpecTest, BwWindowDefaultIsOmitted)
{
    EXPECT_EQ(dumpTopologySpec(parseTopologySpec("cores=2,bw=32")),
              "cores=2,bw=32");
    EXPECT_EQ(dumpTopologySpec(parseTopologySpec("cores=2,bw=32/64c")),
              "cores=2,bw=32");
}

TEST(TopologySpecTest, RejectsWithExactMessages)
{
    EXPECT_EQ(parseError(""), "topology: empty spec");
    EXPECT_EQ(parseError("cores=0"), "topology: cores must be nonzero");
    EXPECT_EQ(parseError("cores=2000"),
              "topology: cores must be <= 1024");
    EXPECT_EQ(parseError("cores=4,smt=9"),
              "topology: smt must be in 1..8");
    EXPECT_EQ(parseError("cores=4,llc=8MB/12w"),
              "topology: llc ways must be a nonzero power of two");
    EXPECT_EQ(parseError("cores=4,slices=3"),
              "topology: slices must be a nonzero power of two");
    EXPECT_EQ(parseError("cores=4,bw=8/0c"),
              "topology: bw window must be nonzero");
    EXPECT_EQ(parseError("cores=4,llc=3MB/16w"),
              "topology: llc size 3MB with 16 ways does not yield a "
              "power-of-two set count");
    EXPECT_EQ(parseError("cores=1,llc=64KB/16w,slices=128"),
              "topology: slices (128) exceed llc sets (64)");
}

TEST(TopologySpecTest, RejectsMalformedSyntax)
{
    EXPECT_EQ(parseError("cores"),
              "topology: expected key=value, got 'cores'");
    EXPECT_EQ(parseError("cores=4,,slices=2"),
              "topology: expected key=value, got ''");
    EXPECT_EQ(parseError("cores=4,cores=8"),
              "topology: duplicate key 'cores'");
    EXPECT_EQ(parseError("pizza=1"), "topology: unknown key 'pizza'");
    EXPECT_EQ(parseError("cores=x"),
              "topology: bad value 'x' for 'cores'");
    EXPECT_EQ(parseError("cores=4,llc=bogus/16w"),
              "topology: bad size 'bogus' for 'llc'");
    EXPECT_EQ(parseError("cores=4,llc=8MB/16"),
              "topology: bad ways '16' for 'llc'");
    EXPECT_EQ(parseError("cores=4,bw=8/64"),
              "topology: bad window '64' for 'bw'");
    EXPECT_EQ(parseError("cores=4,bw=x"),
              "topology: bad value 'x' for 'bw'");
}

TEST(TopologySpecTest, ConfigMappingIsAnInverse)
{
    // The default config maps to the default spec (channels=1 is the
    // auto marker, so it round-trips as 0).
    EXPECT_EQ(dumpTopologySpec(topologyOf(SystemConfig{})), "cores=1");

    const std::string text =
        "cores=16,smt=2,llc=64MB/32w,slices=4,slice_lat=2,chan=4,"
        "mshr_quota=64,bw=32/128c";
    const SystemConfig cfg = configFromTopology(text);
    EXPECT_EQ(cfg.numCores, 16u);
    EXPECT_EQ(cfg.threadsPerCore, 2u);
    EXPECT_EQ(cfg.llcTotalBytes, 64u * 1024 * 1024);
    EXPECT_EQ(cfg.llcPerCore.ways, 32u);
    EXPECT_EQ(cfg.llcSlices, 4u);
    EXPECT_EQ(cfg.llcSliceHopLatency, 2u);
    EXPECT_EQ(cfg.dram.channels, 4u);
    EXPECT_EQ(cfg.llcMshrQuotaPerCore, 64u);
    EXPECT_EQ(cfg.llcBwTokensPerCore, 32u);
    EXPECT_EQ(cfg.llcBwWindow, 128u);
    EXPECT_EQ(dumpTopologySpec(topologyOf(cfg)), text);
}

TEST(TopologySpecTest, ApplyValidatesAgainstTheConfigsLlcSizing)
{
    // 3 slices is structurally invalid no matter the capacity.
    SystemConfig cfg;
    TopologySpec bad;
    bad.slices = 3;
    EXPECT_THROW(applyTopology(bad, cfg), std::invalid_argument);
    // The config is untouched on failure paths before the writes.
    EXPECT_EQ(cfg.llcSlices, 1u);
}

TEST(TopologySpecTest, PropertyStressRoundTrip)
{
    // dump->parse must be the identity on any valid spec. The generator
    // is seeded, so a failure reproduces exactly.
    Rng rng(0x70b0106fu);
    for (int i = 0; i < 500; ++i) {
        TopologySpec s;
        s.cores = 1u << rng.range(8);
        s.smt = 1 + static_cast<unsigned>(rng.range(8));
        s.llcWays = 1u << rng.range(6);
        if (rng.range(2))
            s.llcBytes =
                (std::uint64_t{s.llcWays} * kBlockSize) << rng.range(12);
        const std::uint64_t sets = resolvedLlcSets(s, 2u << 20);
        unsigned maxSliceLog = 0;
        while (maxSliceLog < 6 &&
               (std::uint64_t{1} << (maxSliceLog + 1)) <= sets)
            ++maxSliceLog;
        s.slices = 1u << rng.range(maxSliceLog + 1);
        s.sliceHopLatency = rng.range(8);
        s.channels = static_cast<unsigned>(rng.range(9));
        s.mshrQuota = static_cast<std::uint32_t>(rng.range(256));
        s.bwTokens = static_cast<std::uint32_t>(rng.range(64));
        // The window is only dumped alongside nonzero tokens.
        s.bwWindow = s.bwTokens ? 1 + rng.range(256) : 64;

        ASSERT_NO_THROW(validateTopology(s)) << dumpTopologySpec(s);
        const std::string text = dumpTopologySpec(s);
        TopologySpec back;
        ASSERT_NO_THROW(back = parseTopologySpec(text)) << text;
        ASSERT_TRUE(back == s) << "round-trip drift through '" << text
                               << "' (iteration " << i << ")";
    }
}

} // namespace
} // namespace tacsim
