/**
 * @file
 * Unit tests for the OoO core model: retire bounds, dependence
 * serialization, stall attribution (the paper's T/R/N split), store
 * semantics and the cycle-skip contract.
 */

#include <gtest/gtest.h>

#include <deque>

#include "core/core.hh"
#include "test_util.hh"
#include "vm/page_table.hh"

namespace tacsim {
namespace {

/** Scriptable workload: replays a fixed list of records, then NonMem. */
class ScriptWorkload : public Workload
{
  public:
    TraceRecord
    next() override
    {
        if (script.empty()) {
            TraceRecord t;
            t.ip = 0x400000;
            return t;
        }
        TraceRecord t = script.front();
        script.pop_front();
        return t;
    }

    std::string name() const override { return "script"; }
    Addr footprint() const override { return 1 << 20; }

    std::deque<TraceRecord> script;
};

TraceRecord
loadRec(Addr vaddr, bool dep = false, Addr ip = 0x400010)
{
    TraceRecord t;
    t.ip = ip;
    t.kind = TraceRecord::Kind::Load;
    t.vaddr = vaddr;
    t.dependsOnPrevLoad = dep;
    return t;
}

TraceRecord
storeRec(Addr vaddr)
{
    TraceRecord t;
    t.ip = 0x400020;
    t.kind = TraceRecord::Kind::Store;
    t.vaddr = vaddr;
    return t;
}

struct CoreEnv
{
    EventQueue eq;
    test::MockMemory mem{eq, 60};
    FrameAllocator fa;
    PageTable pt{fa};
    Tlb dtlb{"dtlb", 64, 4, 1};
    Tlb stlb{"stlb", 2048, 16, 8};
    PageTableWalker ptw{eq, &mem};
    ScriptWorkload wl;

    CoreEnv()
    {
        ptw.addAddressSpace(0, &pt);
        ptw.setStlb(&stlb);
    }

    Core
    makeCore(CoreParams p = {})
    {
        return Core(p, eq, wl, dtlb, stlb, ptw, mem);
    }

    /** Tick the core until it retires >= n instructions (bounded). */
    Cycle
    runUntil(Core &core, std::uint64_t n, Cycle maxCycles = 200000)
    {
        Cycle c = 0;
        while (core.retired() < n && c < maxCycles) {
            eq.advanceTo(c);
            core.tick();
            ++c;
        }
        return c;
    }
};

struct CoreTest : ::testing::Test, CoreEnv
{};

TEST_F(CoreTest, NonMemIpcBoundedByRetireWidth)
{
    auto core = makeCore();
    const Cycle cycles = runUntil(core, 4000);
    const double ipc = 4000.0 / double(cycles);
    EXPECT_LE(ipc, 4.05);
    EXPECT_GT(ipc, 3.5); // non-mem stream should saturate retire width
}

TEST_F(CoreTest, LoadsCompleteAndRetire)
{
    for (int i = 0; i < 10; ++i)
        wl.script.push_back(loadRec(Addr(0x1000) + Addr(i) * 0x40));
    auto core = makeCore();
    runUntil(core, 20);
    EXPECT_EQ(core.stats().loads, 10u);
    EXPECT_EQ(mem.countOf(ReqType::Load), 10u);
}

TEST_F(CoreTest, DependentChainSerializes)
{
    // Independent loads overlap; dependent ones serialize, so the same
    // count of loads takes much longer.
    for (int i = 0; i < 16; ++i)
        wl.script.push_back(loadRec(Addr(0x100000) + Addr(i) * 0x40));
    auto indep = makeCore();
    const Cycle tIndep = runUntil(indep, 17);

    // Fresh environment for the dependent variant.
    CoreEnv env2;
    for (int i = 0; i < 16; ++i)
        env2.wl.script.push_back(
            loadRec(Addr(0x100000) + Addr(i) * 0x40, /*dep=*/true));
    auto dep = env2.makeCore();
    const Cycle tDep = env2.runUntil(dep, 17);

    EXPECT_GT(tDep, tIndep + 60 * 8); // at least ~8 serialized misses
}

TEST_F(CoreTest, StlbMissAttributedToTranslationThenReplay)
{
    wl.script.push_back(loadRec(0x5000));
    auto core = makeCore();
    runUntil(core, 2);
    const CoreStats &s = core.stats();
    EXPECT_EQ(s.stlbMissAccesses, 1u);
    EXPECT_GT(s.stallCyclesT, 0u);
    EXPECT_GT(s.stallCyclesR, 0u);
    // The single walking load recorded one sample in each histogram.
    EXPECT_EQ(s.stallPerWalk.count(), 1u);
    EXPECT_EQ(s.stallPerReplay.count(), 1u);
}

TEST_F(CoreTest, DtlbHitLoadIsNonReplay)
{
    wl.script.push_back(loadRec(0x5000)); // walks, fills TLBs
    // Dependent so it issues only after the walk fills the DTLB.
    wl.script.push_back(loadRec(0x5040, /*dep=*/true));
    auto core = makeCore();
    runUntil(core, 3);
    EXPECT_EQ(core.stats().stlbMissAccesses, 1u);
    EXPECT_EQ(core.stats().stallPerNonReplay.count(), 1u);
    // The second load's request is not marked replay.
    bool foundNonReplay = false;
    for (const auto &r : mem.requests)
        if (r->type == ReqType::Load && !r->isReplay &&
            r->vaddr == 0x5040)
            foundNonReplay = true;
    EXPECT_TRUE(foundNonReplay);
}

TEST_F(CoreTest, ReplayLoadMarkedReplay)
{
    wl.script.push_back(loadRec(0x5000));
    auto core = makeCore();
    runUntil(core, 2);
    bool foundReplay = false;
    for (const auto &r : mem.requests)
        if (r->type == ReqType::Load && r->isReplay)
            foundReplay = true;
    EXPECT_TRUE(foundReplay);
}

TEST_F(CoreTest, StoresRetireWithoutWaitingForData)
{
    wl.script.push_back(storeRec(0x6000));
    auto core = makeCore();
    const Cycle cycles = runUntil(core, 2);
    EXPECT_EQ(core.stats().stores, 1u);
    // Store waits for translation (a full walk here) but not for the
    // 60-cycle data access on top of it.
    EXPECT_LT(cycles, 1u + 9 + 5 * 60 + 60);
    EXPECT_EQ(mem.countOf(ReqType::Store), 1u);
}

TEST_F(CoreTest, BlockedRequiresFullRobAndIncompleteHead)
{
    CoreParams p;
    p.robSize = 8;
    wl.script.push_back(loadRec(0x7000));
    auto core = makeCore(p);
    EXPECT_FALSE(core.blocked());
    // Fill the ROB behind the slow load.
    for (int i = 0; i < 4; ++i)
        core.tick();
    EXPECT_TRUE(core.blocked());
    test::drain(eq);
    core.tick();
    EXPECT_FALSE(core.blocked());
}

TEST_F(CoreTest, ChargeSkippedCyclesAccumulatesStall)
{
    CoreParams p;
    p.robSize = 8;
    wl.script.push_back(loadRec(0x7000));
    auto core = makeCore(p);
    for (int i = 0; i < 4; ++i)
        core.tick();
    const auto before = core.stats().stallCyclesT +
        core.stats().stallCyclesR + core.stats().stallCyclesN;
    core.chargeSkippedCycles(100);
    const auto after = core.stats().stallCyclesT +
        core.stats().stallCyclesR + core.stats().stallCyclesN;
    EXPECT_EQ(after, before + 100);
}

TEST_F(CoreTest, ResetStatsZeroesCounters)
{
    wl.script.push_back(loadRec(0x5000));
    auto core = makeCore();
    runUntil(core, 10);
    core.resetStats();
    EXPECT_EQ(core.retired(), 0u);
    EXPECT_EQ(core.stats().stallCyclesT, 0u);
    EXPECT_EQ(core.stats().stallPerWalk.count(), 0u);
}

} // namespace
} // namespace tacsim
