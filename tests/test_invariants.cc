/**
 * @file
 * End-to-end invariant sweep, parameterized over every benchmark and
 * the three headline configurations (baseline, T-policies, full
 * scheme): structural properties that must hold for any correct
 * composition of the simulator, regardless of workload.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/system.hh"
#include "sim/verify.hh"

namespace tacsim {
namespace {

enum class Config
{
    Baseline,
    TPolicies,
    FullScheme,
};

const char *
configName(Config c)
{
    switch (c) {
      case Config::Baseline: return "baseline";
      case Config::TPolicies: return "Tpolicies";
      case Config::FullScheme: return "full";
    }
    return "?";
}

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<Benchmark, Config>>
{};

TEST_P(InvariantSweep, EndToEndInvariantsHold)
{
    const auto [bench, variant] = GetParam();
    SystemConfig cfg;
    if (variant == Config::TPolicies)
        applyTranslationAware(cfg, {true, true, false, false, false});
    else if (variant == Config::FullScheme)
        applyTranslationAware(cfg, {true, true, false, true, true});

    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(makeWorkload(bench, cfg.seed));
    System sys(cfg, std::move(w));
    verify::Checker checker(sys, 50000);
    sys.attachChecker(&checker);
    sys.warmup(20000);
    sys.run(80000);
    RunResult r = collectResult(sys, benchmarkName(bench));

    // 0. Full-hierarchy structural verification at the drain point (the
    // run loop also verified periodically if built with TACSIM_VERIFY).
    ASSERT_NO_THROW(checker.checkAll());

    // 1. Forward progress with sane IPC.
    EXPECT_GE(r.instructions, 80000u);
    EXPECT_GT(r.ipc, 0.01);
    EXPECT_LE(r.ipc, 6.0);

    // 2. Per-class access accounting at every level.
    for (Cache *c : {&sys.l1d(), &sys.l2(), &sys.llc()}) {
        const CacheStats &s = c->stats();
        for (std::size_t cat = 0; cat < kNumBlockCats; ++cat)
            ASSERT_EQ(s.accesses[cat], s.hits[cat] + s.misses[cat])
                << c->name();
    }

    // 3. Replay identification: replay accesses at L1D cannot exceed
    // total STLB-missing demand accesses.
    const CacheStats &l1 = sys.l1d().stats();
    EXPECT_LE(l1.at(l1.accesses, BlockCat::Replay),
              sys.core(0).stats().stlbMissAccesses + 64);

    // 4. Walk counts: every leaf read belongs to a walk; upper levels
    // are read at most once per walk. Walks in flight across the
    // stats-reset or run boundary can skew counts by the walker's
    // concurrency, hence the small tolerance.
    const PtwStats &ps = sys.ptw().stats();
    const unsigned slack = cfg.ptw.maxConcurrentWalks;
    EXPECT_LE(ps.levelReads[0], ps.walks + slack);
    EXPECT_GE(ps.levelReads[0] + slack, ps.walks);
    for (unsigned l = 1; l < kPtLevels; ++l)
        EXPECT_LE(ps.levelReads[l], ps.walks + slack);

    // 5. Stall accounting: attributed head stalls cannot exceed cycles.
    const CoreStats &cs = sys.core(0).stats();
    EXPECT_LE(cs.stallCyclesT + cs.stallCyclesR + cs.stallCyclesN,
              sys.measuredCycles());

    // 6. Response fractions form a distribution.
    if (ps.walks > 100) {
        EXPECT_NEAR(r.leafL1D + r.leafL2C + r.leafLLC + r.leafDram, 1.0,
                    0.05);
    }

    // 7. DRAM conservation: row hits + misses + conflicts == reads +
    // writes.
    const DramStats &ds = sys.dram().stats();
    EXPECT_EQ(ds.rowHits + ds.rowMisses + ds.rowConflicts,
              ds.reads + ds.writes);

    // 8. Scheme-specific: ATP only fires when enabled.
    const auto atp =
        sys.l2().stats().atpIssued + sys.llc().stats().atpIssued;
    if (variant != Config::FullScheme) {
        EXPECT_EQ(atp, 0u);
        EXPECT_EQ(sys.dram().stats().tempoPrefetches, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllConfigs, InvariantSweep,
    ::testing::Combine(::testing::ValuesIn(kAllBenchmarks),
                       ::testing::Values(Config::Baseline,
                                         Config::TPolicies,
                                         Config::FullScheme)),
    [](const auto &info) {
        return benchmarkName(std::get<0>(info.param)) + "_" +
            configName(std::get<1>(info.param));
    });

} // namespace
} // namespace tacsim
