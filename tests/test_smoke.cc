/**
 * @file
 * End-to-end smoke test: a tiny single-core run completes and basic
 * invariants hold.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace tacsim {
namespace {

TEST(Smoke, SingleCoreRunCompletes)
{
    SystemConfig cfg;
    RunResult r = runBenchmark(cfg, Benchmark::mcf, 20000, 5000);
    EXPECT_GE(r.instructions, 20000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 6.0);
}

} // namespace
} // namespace tacsim
