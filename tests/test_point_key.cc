/**
 * @file
 * Tests for the canonical point hash (serve/point_key.hh) and its
 * SHA-256 primitive: NIST vectors, stability of the key, sensitivity
 * to exactly the inputs that determine a simulation's outcome (config,
 * workload content, budgets) — and insensitivity to everything else
 * (trace file names, explicitly-spelled default budgets).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "serve/point_key.hh"
#include "serve/sha256.hh"
#include "sim/config.hh"
#include "sim/runner.hh"

namespace tacsim {
namespace {

std::string
tmpPath(const std::string &stem)
{
    return ::testing::TempDir() + "tacsim_" + stem + "_" +
        std::to_string(::getpid());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(f.good());
}

TEST(Sha256, NistVectors)
{
    // FIPS 180-4 examples.
    EXPECT_EQ(serve::sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(serve::sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(serve::sha256Hex("abcdbcdecdefdefgefghfghighijhijk"
                               "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg(1000, 'a');
    serve::Sha256 h;
    for (std::size_t i = 0; i < msg.size(); i += 7)
        h.update(msg.data() + i, std::min<std::size_t>(7,
                                                       msg.size() - i));
    EXPECT_EQ(h.hexDigest(), serve::sha256Hex(msg));
}

TEST(Sha256, FileDigestMatchesBytes)
{
    const std::string path = tmpPath("sha_file");
    const std::string bytes = "tacsim sha256 file digest\n";
    writeFile(path, bytes);
    EXPECT_EQ(serve::sha256FileHex(path), serve::sha256Hex(bytes));
    std::remove(path.c_str());
    EXPECT_THROW(serve::sha256FileHex(path), std::runtime_error);
}

TEST(PointKey, ShapeAndStability)
{
    SystemConfig cfg;
    const std::string k1 = serve::pointKey(cfg, "mcf", 20000, 5000);
    EXPECT_TRUE(serve::isPointKey(k1));
    EXPECT_EQ(k1, serve::pointKey(cfg, "mcf", 20000, 5000));

    EXPECT_FALSE(serve::isPointKey(""));
    EXPECT_FALSE(serve::isPointKey(std::string(63, 'a')));
    EXPECT_FALSE(serve::isPointKey(std::string(63, 'a') + "G"));
    EXPECT_FALSE(serve::isPointKey(std::string(63, 'a') + "A"));
}

TEST(PointKey, SensitiveToOutcomeDeterminingInputs)
{
    SystemConfig cfg;
    const std::string base = serve::pointKey(cfg, "mcf", 20000, 5000);

    SystemConfig other = cfg;
    other.stlbEntries = cfg.stlbEntries * 2;
    EXPECT_NE(serve::pointKey(other, "mcf", 20000, 5000), base);

    EXPECT_NE(serve::pointKey(cfg, "xalancbmk", 20000, 5000), base);
    EXPECT_NE(serve::pointKey(cfg, "mcf", 40000, 5000), base);
    EXPECT_NE(serve::pointKey(cfg, "mcf", 20000, 6000), base);
}

TEST(PointKey, ExplicitDefaultBudgetsShareTheImplicitKey)
{
    SystemConfig cfg;
    EXPECT_EQ(serve::pointKey(cfg, "mcf", 0, 0),
              serve::pointKey(cfg, "mcf", defaultInstructions(),
                              defaultWarmup()));
}

TEST(PointKey, TraceSpecsHashContentNotName)
{
    SystemConfig cfg;
    const std::string pathA = tmpPath("trace_a") + ".tactrc";
    const std::string pathB = tmpPath("trace_b") + ".tactrc";
    // Not valid traces — pointKey hashes bytes without parsing.
    writeFile(pathA, "identical trace bytes");
    writeFile(pathB, "identical trace bytes");

    const std::string kA =
        serve::pointKey(cfg, "trace:" + pathA, 20000, 5000);
    // Same content under a different name: same point.
    EXPECT_EQ(kA, serve::pointKey(cfg, "trace:" + pathB, 20000, 5000));

    // Changed content under the same name: different point. (The
    // memo keys on (path, mtime, size); same-size edits rely on mtime,
    // so change the size too to stay robust on coarse clocks.)
    writeFile(pathB, "different trace bytes entirely");
    EXPECT_NE(kA, serve::pointKey(cfg, "trace:" + pathB, 20000, 5000));

    std::remove(pathA.c_str());
    std::remove(pathB.c_str());

    EXPECT_THROW(serve::pointKey(cfg, "trace:" + pathA, 20000, 5000),
                 std::runtime_error);
}

TEST(PointKey, WarmKeyIgnoresMeasuredBudget)
{
    SystemConfig cfg;
    const std::vector<std::string> specs(cfg.threads(), "mcf");
    const std::string w = serve::warmKey(cfg, specs, 5000);
    EXPECT_TRUE(serve::isPointKey(w));
    EXPECT_EQ(w, serve::warmKey(cfg, specs, 5000));
    EXPECT_NE(w, serve::warmKey(cfg, specs, 6000));
    // warmKey must differ from every pointKey for the same inputs.
    EXPECT_NE(w, serve::pointKey(cfg, specs, 20000, 5000));
}

TEST(PointKey, CanonicalConfigTextIsVersionedAndComplete)
{
    SystemConfig cfg;
    const std::string text = canonicalConfigText(cfg);
    EXPECT_EQ(text.rfind("tacsim-config-v1\n", 0), 0u);
    EXPECT_NE(text.find("\nworkload "), std::string::npos);
    EXPECT_NE(text.find("\nseed "), std::string::npos);

    SystemConfig other = cfg;
    other.tempo = !other.tempo;
    EXPECT_NE(canonicalConfigText(other), text);
}

} // namespace
} // namespace tacsim
