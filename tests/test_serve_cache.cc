/**
 * @file
 * Tests for the persistent content-addressed result cache
 * (serve/result_cache.hh): store/lookup round-trip exactness, the
 * RunResult JSON codec, LRU eviction and gc, restart persistence, and
 * — the regression net this subsystem ships with — every corruption
 * mode (truncated entry, flipped bytes, stale index, malformed index
 * lines, orphaned objects) degrading to a clean miss, never a wrong
 * result and never a crash.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/result_cache.hh"
#include "serve/result_codec.hh"
#include "sim/stats_dump.hh"

namespace tacsim {
namespace {

std::string
tmpDir(const std::string &stem)
{
    const std::string dir = ::testing::TempDir() + "tacsim_" + stem +
        "_" + std::to_string(::getpid());
    std::remove((dir + "/index.txt").c_str());
    return dir;
}

/** A fully populated synthetic result, distinct per @p salt. */
RunResult
makeResult(unsigned salt)
{
    RunResult r;
    r.benchmark = "synthetic" + std::to_string(salt);
    r.instructions = 20000 + salt;
    r.cycles = 100000 + 7 * salt;
    r.ipc = static_cast<double>(r.instructions) /
        static_cast<double>(r.cycles);
    r.stlbMpki = 1.25 + salt;
    r.l2ReplayMpki = 0.5 * salt;
    r.llcReplayMpki = 0.25 * salt;
    r.llcPtl1Mpki = 0.125 * salt;
    r.stallT = 0.1;
    r.stallR = 0.2;
    r.stallN = 0.3;
    r.threadCycles = {r.cycles};
    r.threadInstructions = {r.instructions};
    return r;
}

std::string
fakeKey(unsigned salt)
{
    std::string key(64, '0');
    std::string tail = std::to_string(salt);
    key.replace(64 - tail.size(), tail.size(), tail);
    return key;
}

serve::CacheEntry
makeEntry(unsigned salt)
{
    serve::CacheEntry e;
    e.pointKey = fakeKey(salt);
    e.result = makeResult(salt);
    e.statsDump = dumpRunResult(e.result);
    e.runRecord = serve::makeRunRecord(e.pointKey, e.result);
    return e;
}

std::string
objectPath(const std::string &dir, const std::string &key)
{
    return dir + "/objects/" + key;
}

TEST(ResultCodec, RoundTripsEveryFieldExactly)
{
    const RunResult a = makeResult(3);
    const RunResult b = serve::runResultFromJson(
        serve::parseJson(serve::runResultToJson(a).dump()));
    // dumpRunResult covers every reported field with full precision, so
    // byte-identical dumps mean the codec lost nothing.
    EXPECT_EQ(dumpRunResult(a), dumpRunResult(b));
    EXPECT_EQ(a.threadCycles, b.threadCycles);
    EXPECT_EQ(a.threadInstructions, b.threadInstructions);
}

TEST(ResultCodec, RejectsMissingFields)
{
    serve::JsonValue v = serve::runResultToJson(makeResult(1));
    serve::JsonObject o = v.asObject();
    o.erase("cycles");
    EXPECT_THROW(
        serve::runResultFromJson(serve::JsonValue(std::move(o))),
        std::runtime_error);
}

TEST(ResultCache, StoreLookupRoundTrip)
{
    const std::string dir = tmpDir("cache_roundtrip");
    serve::ResultCache cache(dir);
    const serve::CacheEntry in = makeEntry(1);
    EXPECT_FALSE(cache.contains(in.pointKey));
    cache.store(in);
    EXPECT_TRUE(cache.contains(in.pointKey));

    serve::CacheEntry out;
    ASSERT_TRUE(cache.lookup(in.pointKey, out));
    EXPECT_EQ(out.pointKey, in.pointKey);
    EXPECT_EQ(out.statsDump, in.statsDump); // byte-identical replay
    EXPECT_EQ(out.runRecord, in.runRecord);
    EXPECT_EQ(dumpRunResult(out.result), dumpRunResult(in.result));
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(ResultCache, PersistsAcrossReopen)
{
    const std::string dir = tmpDir("cache_reopen");
    const serve::CacheEntry in = makeEntry(2);
    {
        serve::ResultCache cache(dir);
        cache.store(in);
    }
    serve::ResultCache reopened(dir);
    EXPECT_EQ(reopened.entries(), 1u);
    serve::CacheEntry out;
    ASSERT_TRUE(reopened.lookup(in.pointKey, out));
    EXPECT_EQ(out.statsDump, in.statsDump);
}

TEST(ResultCache, LruEvictionPrefersColdEntries)
{
    const std::string dir = tmpDir("cache_lru");
    serve::ResultCache cache(dir);
    const serve::CacheEntry a = makeEntry(1);
    const serve::CacheEntry b = makeEntry(2);
    const serve::CacheEntry c = makeEntry(3);
    cache.store(a);
    cache.store(b);
    // Touch a: b becomes the LRU entry.
    serve::CacheEntry scratch;
    ASSERT_TRUE(cache.lookup(a.pointKey, scratch));

    cache.store(c);
    EXPECT_EQ(cache.entries(), 3u);
    // Any cap below the current total evicts LRU-first: b, not a.
    EXPECT_EQ(cache.gcToBytes(cache.totalBytes() - 1), 1u);
    EXPECT_TRUE(cache.contains(a.pointKey));
    EXPECT_FALSE(cache.contains(b.pointKey));
    EXPECT_TRUE(cache.contains(c.pointKey));
    EXPECT_EQ(cache.evictions(), 1u);
    // The object file is gone too, not just the index line.
    struct stat st{};
    EXPECT_NE(::stat(objectPath(dir, b.pointKey).c_str(), &st), 0);
}

TEST(ResultCache, MaxBytesCapEnforcedOnStore)
{
    const std::string dir = tmpDir("cache_cap");
    const serve::CacheEntry a = makeEntry(1);
    // Cap below two entries: storing the second evicts the first.
    serve::ResultCache cache(dir,
                             static_cast<std::uint64_t>(
                                 a.statsDump.size() +
                                 a.runRecord.size() + 2048));
    cache.store(a);
    cache.store(makeEntry(2));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_FALSE(cache.contains(a.pointKey));
}

TEST(ResultCache, TruncatedEntryIsAMissNotACrash)
{
    const std::string dir = tmpDir("cache_trunc");
    serve::ResultCache cache(dir);
    const serve::CacheEntry in = makeEntry(4);
    cache.store(in);

    ASSERT_EQ(::truncate(objectPath(dir, in.pointKey).c_str(), 40), 0);
    serve::CacheEntry out;
    EXPECT_FALSE(cache.lookup(in.pointKey, out));
    EXPECT_GE(cache.corruptMisses(), 1u);
    // The corrupt entry was dropped; storing again recovers.
    cache.store(in);
    EXPECT_TRUE(cache.lookup(in.pointKey, out));
    EXPECT_EQ(out.statsDump, in.statsDump);
}

TEST(ResultCache, CrcMismatchIsAMissNotAWrongResult)
{
    const std::string dir = tmpDir("cache_bitflip");
    serve::ResultCache cache(dir);
    const serve::CacheEntry in = makeEntry(5);
    cache.store(in);

    // Flip one payload byte without changing the size.
    const std::string path = objectPath(dir, in.pointKey);
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size / 2);
    char c = 0;
    f.seekg(size / 2);
    f.read(&c, 1);
    f.seekp(size / 2);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
    f.close();

    serve::CacheEntry out;
    EXPECT_FALSE(cache.lookup(in.pointKey, out));
    EXPECT_GE(cache.corruptMisses(), 1u);
}

TEST(ResultCache, StaleIndexEntryIsAMiss)
{
    const std::string dir = tmpDir("cache_stale");
    serve::ResultCache cache(dir);
    const serve::CacheEntry in = makeEntry(6);
    cache.store(in);
    ASSERT_EQ(std::remove(objectPath(dir, in.pointKey).c_str()), 0);

    serve::CacheEntry out;
    EXPECT_FALSE(cache.lookup(in.pointKey, out));
    EXPECT_FALSE(cache.contains(in.pointKey)); // dropped from the index
}

TEST(ResultCache, MalformedIndexLinesAreDroppedOnOpen)
{
    const std::string dir = tmpDir("cache_badindex");
    const serve::CacheEntry in = makeEntry(7);
    {
        serve::ResultCache cache(dir);
        cache.store(in);
    }
    {
        std::ofstream f(dir + "/index.txt", std::ios::app);
        f << "not-a-key this line is garbage\n";
        f << fakeKey(42) << "\n"; // missing fields
    }
    serve::ResultCache reopened(dir);
    EXPECT_EQ(reopened.entries(), 1u);
    serve::CacheEntry out;
    EXPECT_TRUE(reopened.lookup(in.pointKey, out));
}

TEST(ResultCache, VerifyDropsCorruptAndAdoptsOrphans)
{
    const std::string dir = tmpDir("cache_verify");
    serve::ResultCache cache(dir);
    const serve::CacheEntry good = makeEntry(8);
    const serve::CacheEntry bad = makeEntry(9);
    const serve::CacheEntry orphan = makeEntry(10);
    cache.store(good);
    cache.store(bad);
    cache.store(orphan);

    // Corrupt one entry on disk...
    ASSERT_EQ(::truncate(objectPath(dir, bad.pointKey).c_str(), 10), 0);
    // ...and orphan another by erasing only its index line.
    {
        std::ifstream in(dir + "/index.txt");
        std::stringstream kept;
        std::string line;
        while (std::getline(in, line))
            if (line.find(orphan.pointKey) == std::string::npos)
                kept << line << "\n";
        std::ofstream out(dir + "/index.txt", std::ios::trunc);
        out << kept.str();
    }

    serve::ResultCache reopened(dir);
    EXPECT_EQ(reopened.entries(), 2u); // good + bad; orphan forgotten
    EXPECT_EQ(reopened.verify(), 1u);  // bad dropped
    EXPECT_EQ(reopened.entries(), 2u); // good + adopted orphan
    serve::CacheEntry out;
    EXPECT_TRUE(reopened.lookup(good.pointKey, out));
    EXPECT_TRUE(reopened.lookup(orphan.pointKey, out));
    EXPECT_EQ(out.statsDump, orphan.statsDump);
    EXPECT_FALSE(reopened.contains(bad.pointKey));
}

TEST(ResultCache, SweepAdapterRoundTrips)
{
    const std::string dir = tmpDir("cache_adapter");
    serve::ResultCache cache(dir);
    serve::ResultCacheSweepAdapter adapter(cache);

    const RunResult in = makeResult(11);
    const std::string key = fakeKey(11);
    RunResult out;
    EXPECT_FALSE(adapter.lookup(key, out));
    adapter.store(key, in, dumpRunResult(in));
    ASSERT_TRUE(adapter.lookup(key, out));
    EXPECT_EQ(dumpRunResult(out), dumpRunResult(in));

    // The synthesized run record carries the point key.
    serve::CacheEntry entry;
    ASSERT_TRUE(cache.lookup(key, entry));
    EXPECT_NE(entry.runRecord.find(key), std::string::npos);
}

} // namespace
} // namespace tacsim
