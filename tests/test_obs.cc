/**
 * @file
 * Observability tests: the metrics registry contract (naming, reset
 * hooks, the zero-after-reset audit), the stats-reset regressions the
 * registry audit exists to catch, and the two sinks — time-series
 * sampler (schema, determinism across sweep thread counts) and Chrome
 * tracer (well-formed output, monotonic timestamps per track). Also
 * asserts that enabling observability does not perturb the simulation
 * itself: the canonical stats dump is byte-identical with sinks on and
 * off.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/path.hh"
#include "obs/registry.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

namespace tacsim {
namespace {

constexpr std::uint64_t kInstr = 40000;
constexpr std::uint64_t kWarm = 10000;

std::string
tmpPath(const std::string &stem, const std::string &ext)
{
    return ::testing::TempDir() + "tacsim_obs_" + stem + "_" +
        std::to_string(::getpid()) + ext;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

System
makeSystem(const SystemConfig &cfg, Benchmark b = Benchmark::pr)
{
    std::vector<std::unique_ptr<Workload>> w;
    for (unsigned t = 0; t < cfg.threads(); ++t)
        w.push_back(makeWorkload(b, cfg.seed + t));
    return System(cfg, std::move(w));
}

// --- registry contract ---

TEST(ObsRegistry, CounterGaugeHistogramColumns)
{
    obs::Registry reg;
    std::uint64_t hits = 7;
    double level = 1.5;
    Histogram h({10, 100});
    h.add(5);
    h.add(200);

    reg.addCounter("l2c.hits", &hits);
    reg.addGauge("l2c.repl.psel", [&level] { return level; });
    reg.addHistogram("l2c.lat", &h);
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_TRUE(reg.has("l2c.hits"));
    EXPECT_FALSE(reg.has("l2c.misses"));

    // Histograms expand to count/mean/max plus one column per bucket
    // (two bounds -> three buckets with the overflow bucket).
    const std::vector<std::string> cols = reg.columns();
    const std::vector<std::string> want = {
        "l2c.hits",        "l2c.repl.psel",   "l2c.lat.count",
        "l2c.lat.mean",    "l2c.lat.max",     "l2c.lat.bucket0",
        "l2c.lat.bucket1", "l2c.lat.bucket2",
    };
    EXPECT_EQ(cols, want);

    std::vector<obs::Registry::Value> vals;
    reg.sampleInto(vals);
    ASSERT_EQ(vals.size(), cols.size());
    EXPECT_EQ(vals[0].u, 7u);
    EXPECT_DOUBLE_EQ(vals[1].d, 1.5);
    EXPECT_EQ(vals[2].u, 2u);          // count
    EXPECT_DOUBLE_EQ(vals[3].d, 102.5); // mean
    EXPECT_EQ(vals[4].u, 200u);        // max
    EXPECT_EQ(vals[5].u, 1u);          // <=10
    EXPECT_EQ(vals[6].u, 0u);          // <=100
    EXPECT_EQ(vals[7].u, 1u);          // overflow

    // The live pointers mean a dump sees updates without re-sampling.
    hits = 8;
    EXPECT_NE(reg.dumpText().find("l2c.hits 8\n"), std::string::npos);
}

TEST(ObsRegistry, ResetHooksAndAudit)
{
    obs::Registry reg;
    std::uint64_t ctr = 3;
    Histogram h;
    h.add(42);
    double gauge = 9;

    reg.addCounter("a.ctr", &ctr);
    reg.addHistogram("a.hist", &h);
    reg.addGauge("a.gauge", [&gauge] { return gauge; });
    reg.addResetHook([&ctr, &h] {
        ctr = 0;
        h.reset();
    });

    auto bad = reg.nonZeroAfterReset();
    ASSERT_EQ(bad.size(), 2u); // counter + histogram; gauge exempt
    EXPECT_EQ(bad[0], "a.ctr");
    EXPECT_EQ(bad[1], "a.hist");

    reg.resetAll();
    EXPECT_TRUE(reg.nonZeroAfterReset().empty());
    EXPECT_DOUBLE_EQ(gauge, 9.0); // gauges survive reset by design
}

TEST(ObsRegistryDeathTest, RejectsDuplicateAndInvalidNames)
{
    obs::Registry reg;
    std::uint64_t v = 0;
    reg.addCounter("dup.name", &v);
    EXPECT_DEATH_IF_SUPPORTED(reg.addCounter("dup.name", &v),
                              "duplicate metric name");
    EXPECT_DEATH_IF_SUPPORTED(reg.addCounter("Bad Name", &v),
                              "metric names");
}

TEST(ObsPath, SanitizeAndExpand)
{
    EXPECT_EQ(obs::sanitizeKey("mcf/proposed"), "mcf_proposed");
    EXPECT_EQ(obs::sanitizeKey("a.b-c_1"), "a.b-c_1");
    EXPECT_EQ(obs::expandPointPath("out/{key}.jsonl", "mcf/base"),
              "out/mcf_base.jsonl");
    EXPECT_EQ(obs::expandPointPath("{key}/{key}.json", "x"), "x/x.json");
    EXPECT_EQ(obs::expandPointPath("plain.jsonl", "x"), "plain.jsonl");
    EXPECT_EQ(obs::expandPointPath("", "x"), "");
}

// --- stats reset regressions ---

// Every counter and histogram in the hierarchy must return to zero on
// resetStats(). This is the regression net for stats that used to
// survive warm-up: the recall profilers (Cache/Tlb resetStats never
// cleared them) and the dead-block wrapper's bypass counter.
TEST(ObsReset, EveryConfiguredStatZeroAfterReset)
{
    SystemConfig profiled{};
    profiled.profileCacheRecall = true;
    profiled.profileStlbRecall = true;
    profiled.llcDeadBlock = true;

    SystemConfig csalt{};
    csalt.llcCsalt = true;

    SystemConfig proposed{};
    TranslationAwareOptions ta;
    ta.tempo = true;
    applyTranslationAware(proposed, ta);

    for (const SystemConfig *cfg : {&profiled, &csalt, &proposed}) {
        System sys = makeSystem(*cfg);
        sys.run(kInstr);
        EXPECT_FALSE(sys.metrics().nonZeroAfterReset().empty())
            << "run should have produced nonzero stats";
        sys.resetStats();
        const auto bad = sys.metrics().nonZeroAfterReset();
        EXPECT_TRUE(bad.empty())
            << bad.size() << " stats survived resetStats, first: "
            << bad.front();
    }
}

TEST(ObsReset, WarmupEqualsRunPlusReset)
{
    const SystemConfig cfg{};

    System a = makeSystem(cfg);
    a.warmup(kWarm);
    a.run(kInstr);

    System b = makeSystem(cfg);
    b.run(kWarm);
    b.resetStats();
    b.run(kInstr);

    EXPECT_EQ(dumpRunResult(collectResult(a, "x")),
              dumpRunResult(collectResult(b, "x")));
    EXPECT_EQ(dumpFullStats(a), dumpFullStats(b));
}

TEST(ObsReset, CollectResultIsIdempotent)
{
    SystemConfig cfg{};
    System sys = makeSystem(cfg);
    sys.warmup(kWarm);
    sys.run(kInstr);
    // Collecting results reads stats without consuming them: a second
    // collection (e.g. a retry after a failed report write) must match.
    const std::string once = dumpRunResult(collectResult(sys, "x"));
    const std::string twice = dumpRunResult(collectResult(sys, "x"));
    EXPECT_EQ(once, twice);
    EXPECT_EQ(dumpFullStats(sys), dumpFullStats(sys));
}

// --- sinks ---

TEST(ObsSampler, TimeseriesSchemaAndSamples)
{
    const std::string path = tmpPath("ts", ".jsonl");
    SystemConfig cfg{};
    cfg.obs.sampleInterval = 5000;
    cfg.obs.timeseriesPath = path;
    cfg.obs.label = "schema-test";
    {
        System sys = makeSystem(cfg);
        sys.warmup(kWarm);
        sys.run(kInstr);
    } // destructor flushes the final sample

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"schema\":\"tacsim-timeseries-v1\""),
              std::string::npos);
    EXPECT_NE(line.find("\"label\":\"schema-test\""), std::string::npos);
    EXPECT_NE(line.find("\"interval\":5000"), std::string::npos);

    std::size_t samples = 0, resets = 0;
    while (std::getline(in, line)) {
        if (line.find("\"event\":\"reset\"") != std::string::npos)
            ++resets;
        else if (line.rfind("{\"i\":", 0) == 0)
            ++samples;
        else
            FAIL() << "unexpected line: " << line;
    }
    EXPECT_EQ(resets, 1u); // the warmup boundary
    // kWarm + kInstr instructions at interval 5000, plus the final
    // flush; boundary samples make the exact count budget-dependent.
    EXPECT_GE(samples, (kWarm + kInstr) / 5000 - 1);
    std::remove(path.c_str());
}

TEST(ObsSampler, SinksDoNotPerturbSimulation)
{
    SystemConfig plain{};
    TranslationAwareOptions ta;
    ta.tempo = true;
    applyTranslationAware(plain, ta);

    SystemConfig traced = plain;
    traced.obs.sampleInterval = 4000;
    traced.obs.timeseriesPath = tmpPath("perturb", ".jsonl");
    traced.obs.chromeTracePath = tmpPath("perturb", ".json");

    System a = makeSystem(plain);
    a.warmup(kWarm);
    a.run(kInstr);
    const std::string dumpA = dumpRunResult(collectResult(a, "x"));
    const std::string fullA = dumpFullStats(a);

    System b = makeSystem(traced);
    b.warmup(kWarm);
    b.run(kInstr);
    EXPECT_EQ(dumpA, dumpRunResult(collectResult(b, "x")));
    EXPECT_EQ(fullA, dumpFullStats(b));

    std::remove(traced.obs.timeseriesPath.c_str());
    std::remove(traced.obs.chromeTracePath.c_str());
}

TEST(ObsSampler, SweepDeterministicAcrossJobs)
{
    // The same two points swept serially and on a 4-thread pool must
    // produce byte-identical time-series files: {key} expansion gives
    // every point its own output path, so parallel points never share a
    // file.
    const std::string serialPat = tmpPath("serial_{key}", ".jsonl");
    const std::string parallelPat = tmpPath("par_{key}", ".jsonl");

    auto sweepWith = [&](unsigned jobs, const std::string &pattern) {
        SystemConfig cfg{};
        cfg.obs.sampleInterval = 5000;
        cfg.obs.timeseriesPath = pattern;
        SweepRunner sweep(jobs);
        for (Benchmark b : {Benchmark::pr, Benchmark::mcf})
            sweep.add(std::string(benchmarkName(b)) + "/base", cfg, b,
                      kInstr, kWarm);
        sweep.run();
    };
    sweepWith(1, serialPat);
    sweepWith(4, parallelPat);

    for (const char *bench : {"pr", "mcf"}) {
        const std::string key = std::string(bench) + "/base";
        const std::string serialPath =
            obs::expandPointPath(serialPat, key);
        const std::string parallelPath =
            obs::expandPointPath(parallelPat, key);
        const std::string serial = readFile(serialPath);
        EXPECT_FALSE(serial.empty());
        EXPECT_EQ(serial, readFile(parallelPath)) << key;
        std::remove(serialPath.c_str());
        std::remove(parallelPath.c_str());
    }
}

TEST(ObsTrace, ChromeTraceWellFormedAndMonotonic)
{
    const std::string path = tmpPath("chrome", ".json");
    SystemConfig cfg{};
    TranslationAwareOptions ta;
    ta.tempo = true;
    applyTranslationAware(cfg, ta);
    cfg.obs.chromeTracePath = path;
    {
        System sys = makeSystem(cfg);
        sys.warmup(kWarm);
        sys.run(kInstr);
    } // destructor writes the trace

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "{\"traceEvents\":[");

    // One event object per line; verify per-track timestamp ordering
    // (what Perfetto's importer requires) and count the event kinds.
    std::map<unsigned, unsigned long long> lastTs;
    std::size_t spans = 0, counters = 0, instants = 0;
    while (std::getline(in, line)) {
        if (line.rfind("{\"ph\":", 0) != 0)
            continue; // trailer lines ("],", "displayTimeUnit", ...)
        unsigned tid = 0;
        unsigned long long ts = 0;
        if (line.find("\"ph\":\"M\"") != std::string::npos)
            continue; // metadata carries no timestamp
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "{\"ph\":\"%*[XCi]\",\"pid\":0,"
                              "\"tid\":%u,\"ts\":%llu",
                              &tid, &ts),
                  2)
            << line;
        auto it = lastTs.find(tid);
        if (it != lastTs.end()) {
            EXPECT_LE(it->second, ts) << "track " << tid;
        }
        lastTs[tid] = ts;
        spans += line.find("\"ph\":\"X\"") != std::string::npos;
        counters += line.find("\"ph\":\"C\"") != std::string::npos;
        instants += line.find("\"ph\":\"i\"") != std::string::npos;
    }
    EXPECT_GT(spans, 0u) << "expected walk/replay-load spans";
    EXPECT_GT(counters, 0u) << "expected MSHR occupancy counters";
    EXPECT_GT(instants, 0u) << "expected DRAM row events";
    const std::string whole = readFile(path);
    EXPECT_NE(whole.find("\"tacsimDroppedEvents\":0"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace tacsim
