/**
 * @file
 * Unit tests for the DRAM model: row-buffer timing, bank conflicts, bus
 * occupancy, posted writes and the TEMPO hook.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "test_util.hh"

namespace tacsim {
namespace {

using test::makeLoad;
using test::makeTranslation;

struct DramTest : ::testing::Test
{
    EventQueue eq;
    DramParams params;

    Cycle
    readLatency(Dram &dram, Addr addr)
    {
        Cycle done = 0;
        auto req = makeLoad(addr);
        const Cycle start = eq.now();
        req->onComplete = [&](MemRequest &r) { done = r.completedAt; };
        dram.access(req);
        test::drain(eq);
        return done - start;
    }
};

TEST_F(DramTest, RowHitIsFasterThanRowMiss)
{
    Dram dram("d", eq, params);
    const Cycle first = readLatency(dram, 0x10000); // opens the row
    const Cycle second = readLatency(dram, 0x10040); // same row
    EXPECT_GT(first, second);
    EXPECT_EQ(dram.stats().rowHits, 1u);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
}

TEST_F(DramTest, RowConflictIsSlowest)
{
    Dram dram("d", eq, params);
    const Cycle miss = readLatency(dram, 0x10000);
    // Same bank, different row: rowBytes apart maps to the same bank
    // only if the hash agrees, so force it by scanning for a conflict.
    Addr conflict = 0;
    for (Addr cand = 0x10000 + params.rowBytes;; cand += params.rowBytes) {
        // Same bank index as 0x10000?
        Dram probe("p", eq, params);
        (void)probe;
        // The bank mapping is internal; detect a conflict via stats.
        const auto before = dram.stats().rowConflicts;
        const Cycle lat = readLatency(dram, cand);
        if (dram.stats().rowConflicts > before) {
            conflict = cand;
            EXPECT_GE(lat, miss);
            break;
        }
        ASSERT_LT(cand, Addr{0x10000} + params.rowBytes * 512)
            << "no bank conflict found";
    }
    EXPECT_NE(conflict, 0u);
}

TEST_F(DramTest, WritebacksAreCountedAndPosted)
{
    Dram dram("d", eq, params);
    auto wb = std::make_shared<MemRequest>();
    wb->paddr = 0x4000;
    wb->type = ReqType::Writeback;
    bool completed = false;
    wb->onComplete = [&](MemRequest &) { completed = true; };
    dram.access(wb);
    EXPECT_TRUE(completed); // posted: completes immediately
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().reads, 0u);
}

TEST_F(DramTest, BusOccupancyAccumulates)
{
    Dram dram("d", eq, params);
    readLatency(dram, 0x0);
    readLatency(dram, 0x100000);
    EXPECT_EQ(dram.stats().busyCycles, 2 * params.tBurst);
}

TEST_F(DramTest, BackToBackSameBankSerializes)
{
    Dram dram("d", eq, params);
    // Two loads to the same row issued at the same time: the second's
    // data transfer must wait for the shared bus.
    Cycle done1 = 0, done2 = 0;
    auto r1 = makeLoad(0x20000);
    auto r2 = makeLoad(0x20040);
    r1->onComplete = [&](MemRequest &r) { done1 = r.completedAt; };
    r2->onComplete = [&](MemRequest &r) { done2 = r.completedAt; };
    dram.access(r1);
    dram.access(r2);
    test::drain(eq);
    EXPECT_GE(done2, done1 + params.tBurst);
}

TEST_F(DramTest, TranslationReadsCounted)
{
    Dram dram("d", eq, params);
    auto t = makeTranslation(0x8000, 1, 0x9000);
    dram.access(t);
    test::drain(eq);
    EXPECT_EQ(dram.stats().translationReads, 1u);
}

TEST_F(DramTest, TempoFiresOnLeafTranslationOnly)
{
    params.tempo = true;
    Dram dram("d", eq, params);
    std::vector<Addr> prefetched;
    dram.setTempoHook(
        [&](Addr block, Addr) { prefetched.push_back(block); });

    dram.access(makeTranslation(0x8000, 2, 0x9040)); // non-leaf
    dram.access(makeTranslation(0x8100, 1, 0));      // leaf, no target
    dram.access(makeTranslation(0x8200, 1, 0x9040)); // leaf with target
    test::drain(eq);

    ASSERT_EQ(prefetched.size(), 1u);
    EXPECT_EQ(prefetched[0], 0x9040u);
    EXPECT_EQ(dram.stats().tempoPrefetches, 1u);
}

TEST_F(DramTest, TempoDisabledDoesNotFire)
{
    params.tempo = false;
    Dram dram("d", eq, params);
    bool fired = false;
    dram.setTempoHook([&](Addr, Addr) { fired = true; });
    dram.access(makeTranslation(0x8200, 1, 0x9040));
    test::drain(eq);
    EXPECT_FALSE(fired);
}

TEST_F(DramTest, ChannelInterleavingSpreadsBlocks)
{
    params.channels = 2;
    Dram dram("d", eq, params);
    // Adjacent blocks alternate channels; their transfers can overlap,
    // so four loads across two channels finish faster than four on one.
    Cycle lastTwoChannel = 0;
    for (int i = 0; i < 4; ++i) {
        auto r = makeLoad(Addr(i) * kBlockSize);
        r->onComplete = [&](MemRequest &rr) {
            lastTwoChannel = std::max(lastTwoChannel, rr.completedAt);
        };
        dram.access(r);
    }
    test::drain(eq);

    EventQueue eq1;
    DramParams p1 = params;
    p1.channels = 1;
    Dram one("one", eq1, p1);
    Cycle lastOneChannel = 0;
    for (int i = 0; i < 4; ++i) {
        auto r = makeLoad(Addr(i) * kBlockSize);
        r->onComplete = [&](MemRequest &rr) {
            lastOneChannel = std::max(lastOneChannel, rr.completedAt);
        };
        one.access(r);
    }
    test::drain(eq1);
    EXPECT_LE(lastTwoChannel, lastOneChannel);
}

} // namespace
} // namespace tacsim
