/**
 * @file
 * Tests for the parallel sweep runner: determinism under parallelism
 * (parallel results identical to a serial run), per-job exception
 * capture, registration-order reporting, memoization, TACSIM_JOBS
 * parsing and the JSON report writer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/sweep.hh"

namespace tacsim {
namespace {

constexpr std::uint64_t kInstr = 20000;
constexpr std::uint64_t kWarm = 5000;

/** Register the same deterministic 4-point sweep on @p sw. */
void
addPoints(SweepRunner &sw)
{
    const Benchmark bs[] = {Benchmark::pr, Benchmark::mcf,
                            Benchmark::canneal, Benchmark::xalancbmk};
    int i = 0;
    for (Benchmark b : bs) {
        SystemConfig cfg;
        cfg.seed = 7 + i;
        sw.add("p" + std::to_string(i), cfg, b, kInstr, kWarm);
        ++i;
    }
}

/** Field-by-field identity of everything a report could consume. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.stlbMpki, b.stlbMpki);
    EXPECT_EQ(a.l2ReplayMpki, b.l2ReplayMpki);
    EXPECT_EQ(a.llcReplayMpki, b.llcReplayMpki);
    EXPECT_EQ(a.llcPtl1Mpki, b.llcPtl1Mpki);
    EXPECT_EQ(a.stallT, b.stallT);
    EXPECT_EQ(a.stallR, b.stallR);
    EXPECT_EQ(a.stallN, b.stallN);
    EXPECT_EQ(a.threadCycles, b.threadCycles);
    EXPECT_EQ(a.threadInstructions, b.threadInstructions);
}

TEST(Sweep, ParallelMatchesSerial)
{
    SweepRunner serial(1);
    SweepRunner parallel(2);
    addPoints(serial);
    addPoints(parallel);
    serial.run();
    parallel.run();
    for (int i = 0; i < 4; ++i) {
        const std::string key = "p" + std::to_string(i);
        SCOPED_TRACE(key);
        expectSameResult(serial.result(key), parallel.result(key));
    }
}

TEST(Sweep, ThrowingJobIsReportedWithoutAbortingTheSweep)
{
    SweepRunner sw(2);
    sw.addCustom("boom", []() -> RunResult {
        throw std::runtime_error("diverged");
    });
    SystemConfig cfg;
    sw.add("ok", cfg, Benchmark::pr, kInstr, kWarm);
    sw.run();

    const SweepOutcome *bad = sw.outcome("boom");
    ASSERT_NE(bad, nullptr);
    EXPECT_FALSE(bad->ok);
    EXPECT_NE(bad->error.find("diverged"), std::string::npos);
    EXPECT_THROW(sw.result("boom"), std::runtime_error);

    const SweepOutcome *good = sw.outcome("ok");
    ASSERT_NE(good, nullptr);
    EXPECT_TRUE(good->ok);
    EXPECT_GT(sw.result("ok").instructions, 0u);
}

TEST(Sweep, OutcomesFollowRegistrationOrder)
{
    SweepRunner sw(4);
    addPoints(sw);
    sw.run();
    const auto all = sw.outcomes();
    ASSERT_EQ(all.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(all[i]->key, "p" + std::to_string(i));
}

TEST(Sweep, AddIsMemoizedAndResultRunsOnDemand)
{
    SweepRunner sw(2);
    int calls = 0;
    sw.addCustom("job", [&calls] {
        ++calls;
        RunResult r;
        r.benchmark = "stub";
        r.instructions = 1;
        return r;
    });
    sw.addCustom("job", [&calls] { // duplicate key: first wins
        ++calls;
        return RunResult{};
    });
    EXPECT_EQ(sw.points(), 1u);
    // result() without run() executes lazily, exactly once.
    EXPECT_EQ(sw.result("job").benchmark, "stub");
    sw.run(); // already done: no re-execution
    EXPECT_EQ(sw.result("job").instructions, 1u);
    EXPECT_EQ(calls, 1);
    EXPECT_THROW(sw.result("unknown"), std::runtime_error);
}

TEST(Sweep, DefaultJobsReadsEnv)
{
    ::setenv("TACSIM_JOBS", "3", 1);
    EXPECT_EQ(SweepRunner::defaultJobs(), 3u);
    ::setenv("TACSIM_JOBS", "0", 1); // invalid: falls back to hardware
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
    ::unsetenv("TACSIM_JOBS");
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
}

TEST(Sweep, JsonReportIsWrittenAndWellFormed)
{
    SweepRunner sw(2);
    sw.addCustom("good \"quoted\"", [] {
        RunResult r;
        r.benchmark = "stub";
        r.instructions = 5;
        r.cycles = 10;
        r.ipc = 0.5;
        return r;
    });
    sw.addCustom("bad", []() -> RunResult {
        throw std::runtime_error("exploded \"here\"");
    });
    sw.run();

    std::vector<ReportRow> rows;
    rows.push_back({"series-a", "label-1", 1.5, 2.5, "%"});
    rows.push_back({"series-b", "label-2", 0.25, std::nan(""), "IPC"});

    const std::string path = ::testing::TempDir() + "tacsim_sweep.json";
    ASSERT_TRUE(sw.writeJson(path, "unit \"test\"", rows));

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();

    EXPECT_NE(text.find("\"schema\": \"tacsim-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"title\": \"unit \\\"test\\\"\""),
              std::string::npos);
    EXPECT_NE(text.find("\"measured\": 1.5"), std::string::npos);
    // NaN paper values must serialize as null, never bare nan.
    EXPECT_NE(text.find("\"paper\": null"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    // Both runs present, with the failure captured and escaped.
    EXPECT_NE(text.find("\"key\": \"good \\\"quoted\\\"\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(text.find("exploded \\\"here\\\""), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_EQ(std::count(text.begin(), text.end(), '['),
              std::count(text.begin(), text.end(), ']'));
    std::remove(path.c_str());
}

TEST(Sweep, ReRegisteringANameForADifferentPointThrows)
{
    // Regression: the memo used to key on the registration name alone,
    // so this pattern silently returned the first point's result for
    // the second configuration.
    SweepRunner sw(1);
    SystemConfig cfg;
    sw.addSpec("p", cfg, "mcf", kInstr, kWarm);
    SystemConfig other;
    other.stlbEntries = cfg.stlbEntries * 2;
    EXPECT_THROW(sw.addSpec("p", other, "mcf", kInstr, kWarm),
                 std::runtime_error);
    // Identical re-registration stays a memoized no-op.
    sw.addSpec("p", cfg, "mcf", kInstr, kWarm);
    EXPECT_EQ(sw.points(), 1u);
}

TEST(Sweep, SamePointUnderTwoNamesRunsOnce)
{
    SweepRunner sw(2);
    SystemConfig cfg;
    sw.addSpec("first", cfg, "mcf", kInstr, kWarm);
    sw.addSpec("alias", cfg, "mcf", kInstr, kWarm);
    EXPECT_EQ(sw.points(), 1u);
    sw.run();
    // Both names resolve to the one result.
    expectSameResult(sw.result("first"), sw.result("alias"));
    const SweepOutcome *o = sw.outcome("alias");
    ASSERT_NE(o, nullptr);
    EXPECT_TRUE(o->ok);
    EXPECT_EQ(o->pointKey.size(), 64u);
}

TEST(Sweep, OutcomesCarryThePointKey)
{
    SweepRunner sw(1);
    SystemConfig cfg;
    sw.addSpec("spec-point", cfg, "mcf", kInstr, kWarm);
    sw.addMix("mix-point", cfg, {Benchmark::mcf}, kInstr, kWarm);
    sw.addCustom("custom-point", [] { return RunResult{}; });
    sw.run();

    const SweepOutcome *spec = sw.outcome("spec-point");
    const SweepOutcome *mix = sw.outcome("mix-point");
    const SweepOutcome *custom = sw.outcome("custom-point");
    ASSERT_NE(spec, nullptr);
    ASSERT_NE(mix, nullptr);
    ASSERT_NE(custom, nullptr);
    EXPECT_EQ(spec->pointKey.size(), 64u);
    EXPECT_EQ(mix->pointKey.size(), 64u);
    // A single-benchmark mix and the same benchmark as a spec are the
    // same simulation — one canonical identity.
    EXPECT_EQ(spec->pointKey, mix->pointKey);
    EXPECT_EQ(sw.points(), 2u); // the mix aliased the spec point
    // Custom jobs have no canonical hash and never dedup.
    EXPECT_TRUE(custom->pointKey.empty());

    const std::string path =
        ::testing::TempDir() + "tacsim_sweep_pk.json";
    ASSERT_TRUE(sw.writeJson(path, "point keys", {}));
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_NE(ss.str().find("\"point_key\": \"" + spec->pointKey +
                            "\""),
              std::string::npos);
    EXPECT_NE(ss.str().find("\"cached\": false"), std::string::npos);
    std::remove(path.c_str());
}

/** In-memory SweepCache double: deterministic, no disk. */
class MemoryCache : public SweepCache
{
  public:
    bool lookup(const std::string &pointKey, RunResult &out) override
    {
        ++lookups;
        auto it = store_.find(pointKey);
        if (it == store_.end())
            return false;
        out = it->second;
        return true;
    }

    void store(const std::string &pointKey, const RunResult &result,
               const std::string &statsDump) override
    {
        ++stores;
        lastDump = statsDump;
        store_[pointKey] = result;
    }

    int lookups = 0;
    int stores = 0;
    std::string lastDump;

  private:
    std::map<std::string, RunResult> store_;
};

TEST(Sweep, AttachedCacheServesRepeatPointsWithoutSimulating)
{
    MemoryCache cache;
    SystemConfig cfg;

    SweepRunner first(1);
    first.attachCache(&cache);
    first.addSpec("p", cfg, "mcf", kInstr, kWarm);
    first.run();
    const SweepOutcome *cold = first.outcome("p");
    ASSERT_NE(cold, nullptr);
    EXPECT_TRUE(cold->ok);
    EXPECT_FALSE(cold->cached);
    EXPECT_EQ(cache.stores, 1);
    EXPECT_FALSE(cache.lastDump.empty());

    // A second runner over the same point is served from the cache:
    // no new store, identical result, cached flagged in the outcome.
    SweepRunner second(1);
    second.attachCache(&cache);
    second.addSpec("p", cfg, "mcf", kInstr, kWarm);
    second.run();
    const SweepOutcome *warm = second.outcome("p");
    ASSERT_NE(warm, nullptr);
    EXPECT_TRUE(warm->ok);
    EXPECT_TRUE(warm->cached);
    EXPECT_EQ(cache.stores, 1);
    expectSameResult(cold->result, warm->result);

    // The JSON report records the hit.
    const std::string path =
        ::testing::TempDir() + "tacsim_sweep_cached.json";
    ASSERT_TRUE(second.writeJson(path, "cached", {}));
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_NE(ss.str().find("\"cached\": true"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Sweep, MixPointsRunThroughThePool)
{
    SweepRunner sw(2);
    SystemConfig cfg;
    cfg.numCores = 2;
    sw.addMix("mix", cfg, {Benchmark::pr, Benchmark::mcf}, kInstr, kWarm);
    sw.run();
    const RunResult &r = sw.result("mix");
    EXPECT_EQ(r.benchmark, "pr-mcf");
    EXPECT_EQ(r.threadCycles.size(), 2u);
}

} // namespace
} // namespace tacsim
