/**
 * @file
 * Scale-out end-to-end tests for the declarative topology engine:
 * 16/32/64-core machines built from a TopologySpec string alone,
 * byte-identical determinism between a serial sweep and a 4-worker
 * pool, pin tests that the default 1-core and 8-core machines are
 * bit-exact through the topology path (so the pre-existing goldens
 * stay valid), an arbitration-engagement sanity check, and the
 * death-tested accessor guards on System::threadCycles()/finishCycle().
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/slice_router.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "sim/topology.hh"
#include "workloads/benchmarks.hh"

namespace tacsim {
namespace {

constexpr std::uint64_t kInstr = 3000;
constexpr std::uint64_t kWarm = 500;

/** Deterministic heterogeneous mix: cycle through the suite. */
std::vector<Benchmark>
cyclingMix(unsigned threads)
{
    std::vector<Benchmark> mix;
    mix.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        mix.push_back(kAllBenchmarks[t % kAllBenchmarks.size()]);
    return mix;
}

std::vector<std::unique_ptr<Workload>>
workloadsFor(const SystemConfig &cfg)
{
    std::vector<std::unique_ptr<Workload>> w;
    const std::vector<Benchmark> mix = cyclingMix(cfg.threads());
    for (std::size_t t = 0; t < mix.size(); ++t)
        w.push_back(makeWorkload(mix[t], cfg.seed + t));
    return w;
}

TEST(TopologyScaleoutTest, SixteenCoreMachineRunsFromSpecAlone)
{
    const SystemConfig cfg = configFromTopology(
        "cores=16,slices=4,slice_lat=2,mshr_quota=64,bw=32");
    System sys(cfg, workloadsFor(cfg));

    ASSERT_EQ(sys.threads(), 16u);
    ASSERT_EQ(sys.llcSlices(), 4u);
    ASSERT_NE(sys.llcRouter(), nullptr);
    // Slices split the auto-sized 32MB LLC evenly: 32768 sets over 4.
    EXPECT_EQ(sys.llc(0).params().sets, 8192u);

    sys.warmup(kWarm);
    sys.run(kInstr);

    for (std::size_t t = 0; t < sys.threads(); ++t)
        EXPECT_GT(sys.threadCycles(t), 0u) << "thread " << t;
    const CacheStats ls = sys.llcStats();
    std::uint64_t accesses = 0;
    for (std::uint64_t a : ls.accesses)
        accesses += a;
    EXPECT_GT(accesses, 0u);
    // The ring model charged remote-slice hops.
    EXPECT_GT(sys.llcRouter()->stats().routed, 0u);
    EXPECT_GT(sys.llcRouter()->stats().hopCycles, 0u);
}

TEST(TopologyScaleoutTest, LargeMachinesBuildFromSpecAlone)
{
    {
        const SystemConfig cfg =
            configFromTopology("cores=32,smt=2,slices=8,chan=4");
        System sys(cfg, workloadsFor(cfg));
        EXPECT_EQ(sys.threads(), 64u);
        EXPECT_EQ(sys.llcSlices(), 8u);
    }
    {
        const SystemConfig cfg = configFromTopology(
            "cores=64,llc=128MB/32w,slices=16,slice_lat=2");
        System sys(cfg, workloadsFor(cfg));
        EXPECT_EQ(sys.threads(), 64u);
        EXPECT_EQ(sys.llcSlices(), 16u);
        // 128MB / (32w * 64B) = 65536 sets, 4096 per slice.
        EXPECT_EQ(sys.llc(0).params().sets, 4096u);
    }
}

TEST(TopologyScaleoutTest, SerialAndPooledSweepsAreByteIdentical)
{
    const SystemConfig cfg = configFromTopology(
        "cores=16,slices=4,slice_lat=2,mshr_quota=64,bw=32");

    SweepRunner serial(1);
    SweepRunner pooled(4);
    const std::vector<std::string> keys = {"so/cycling", "so/homog-pr"};
    const std::vector<std::vector<Benchmark>> mixes = {
        cyclingMix(16), std::vector<Benchmark>(16, Benchmark::pr)};
    for (std::size_t i = 0; i < keys.size(); ++i) {
        serial.addMix(keys[i], cfg, mixes[i], kInstr, kWarm);
        pooled.addMix(keys[i], cfg, mixes[i], kInstr, kWarm);
    }
    serial.run();
    pooled.run();

    for (const std::string &k : keys)
        EXPECT_EQ(dumpRunResult(serial.result(k)),
                  dumpRunResult(pooled.result(k)))
            << "serial vs 4-worker divergence at " << k;
}

TEST(TopologyScaleoutTest, DefaultMachinesPinnedThroughTopologyPath)
{
    // The topology path must reproduce the hand-wired machines
    // bit-exactly — this is what keeps the pre-existing golden
    // snapshots valid.
    {
        const RunResult direct =
            runBenchmark(SystemConfig{}, Benchmark::mcf, 20000, 5000);
        const RunResult viaSpec = runBenchmark(
            configFromTopology("cores=1"), Benchmark::mcf, 20000, 5000);
        EXPECT_EQ(dumpRunResult(direct), dumpRunResult(viaSpec));
    }
    {
        SystemConfig manual;
        manual.numCores = 8;
        const std::vector<Benchmark> mix = cyclingMix(8);
        const RunResult direct = runMix(manual, mix, kInstr, kWarm);
        const RunResult viaSpec = runMix(configFromTopology("cores=8"),
                                         mix, kInstr, kWarm);
        EXPECT_EQ(dumpRunResult(direct), dumpRunResult(viaSpec));
    }
}

TEST(TopologyScaleoutTest, TightArbitrationEngagesAndStaysConsistent)
{
    // A deliberately starved LLC: 2 MSHRs and 4 demand lookups per
    // window per core. The arbiter must actually defer work, and the
    // invariant walk must accept the resulting state.
    const SystemConfig cfg =
        configFromTopology("cores=8,mshr_quota=2,bw=4");
    System sys(cfg, workloadsFor(cfg));
    sys.run(4000);

    const CacheStats ls = sys.llcStats();
    EXPECT_GT(ls.arbMshrDeferred + ls.arbBwDeferred, 0u)
        << "starved arbitration never deferred anything";
    for (std::size_t s = 0; s < sys.llcSlices(); ++s)
        EXPECT_NO_THROW(sys.llc(s).checkInvariants());
}

#if defined(TACSIM_VERIFY_ENABLED) || !defined(NDEBUG)
// TACSIM_DCHECK is compiled out in plain release builds; the guards are
// exercised in debug and verify lanes.
TEST(TopologyScaleoutDeathTest, AccessorsBeforeFirstRunAbort)
{
    SystemConfig cfg;
    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(makeWorkload(Benchmark::mcf, cfg.seed));
    System sys(cfg, std::move(w));
    EXPECT_DEATH_IF_SUPPORTED(sys.threadCycles(0),
                              "threadCycles\\(\\) before any run");
    EXPECT_DEATH_IF_SUPPORTED(sys.finishCycle(0),
                              "finishCycle\\(\\) before any run");
}

TEST(TopologyScaleoutDeathTest, OutOfRangeThreadIndexAborts)
{
    SystemConfig cfg;
    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(makeWorkload(Benchmark::mcf, cfg.seed));
    System sys(cfg, std::move(w));
    sys.run(2000);
    EXPECT_DEATH_IF_SUPPORTED(sys.threadCycles(99),
                              "threadCycles\\(\\) thread index out of "
                              "range");
    EXPECT_DEATH_IF_SUPPORTED(sys.finishCycle(99),
                              "finishCycle\\(\\) thread index out of "
                              "range");
}
#endif

} // namespace
} // namespace tacsim
