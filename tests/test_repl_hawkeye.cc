/**
 * @file
 * Unit tests for Hawkeye: OPTgen-based training on sampled sets,
 * friendly/averse insertion, aging, eviction detraining, and the
 * T-Hawkeye overrides.
 */

#include <gtest/gtest.h>

#include "cache/repl/hawkeye.hh"

namespace tacsim {
namespace {

AccessInfo
access(Addr block, Addr ip)
{
    AccessInfo ai;
    ai.blockAddr = block;
    ai.ip = ip;
    ai.cat = BlockCat::NonReplay;
    return ai;
}

TEST(Hawkeye, FriendlyPatternTrainsUp)
{
    HawkeyePolicy p(64, 4, {});
    const Addr ip = 0x400000;
    // Set 0 is sampled (stride divides 0). Tight reuse of few blocks:
    // OPT would keep them -> train up.
    const auto idx = p.predIndex(ip, false, false);
    const auto before = p.predictorCounter(idx);
    for (int round = 0; round < 16; ++round)
        for (Addr b = 0; b < 2; ++b)
            p.onFill(0, static_cast<std::uint32_t>(b),
                     access(b * 64, ip));
    EXPECT_GE(p.predictorCounter(idx), before);
    EXPECT_EQ(p.predictorCounter(idx), HawkeyePolicy::kCtrMax);
}

TEST(Hawkeye, ThrashingPatternTrainsDown)
{
    HawkeyePolicy p(64, 4, {});
    const Addr ip = 0x400100;
    const auto idx = p.predIndex(ip, false, false);
    // Cycle through more blocks than the OPTgen capacity (ways=4) with a
    // reuse distance that fits the sampler window: every reuse interval
    // overflows the occupancy vector, so OPT would miss -> train down.
    for (int round = 0; round < 8; ++round)
        for (Addr b = 0; b < 24; ++b)
            p.onFill(0, static_cast<std::uint32_t>(b % 4),
                     access(b * 64, ip));
    EXPECT_LT(p.predictorCounter(idx), HawkeyePolicy::kFriendlyThreshold);
}

TEST(Hawkeye, AverseInsertionGetsMaxRrpv)
{
    HawkeyePolicy p(64, 4, {});
    const Addr ip = 0x400200;
    const Addr friendlyIp = 0x111;
    // Drive the counter to zero via thrashing within the sampler window.
    for (int round = 0; round < 8; ++round)
        for (Addr b = 0; b < 24; ++b)
            p.onFill(0, static_cast<std::uint32_t>(b % 4),
                     access(b * 64, ip));
    // A fill from the averse IP parks at max RRPV and is evicted before
    // fresh friendly fills.
    p.onFill(1, 2, access(0x9040, ip));
    p.onFill(1, 0, access(0x100, friendlyIp));
    p.onFill(1, 1, access(0x140, friendlyIp));
    p.onFill(1, 3, access(0x180, friendlyIp));
    std::vector<BlockMeta> blocks(4);
    for (auto &b : blocks)
        b.valid = true;
    EXPECT_EQ(p.victim(1, access(0xa000, ip), blocks.data()), 2u);
}

TEST(Hawkeye, VictimDetrainsFriendlyBlocks)
{
    HawkeyePolicy p(64, 4, {});
    const Addr ip = 0x400300;
    const auto idx = p.predIndex(ip, false, false);
    // Fresh predictor: weakly friendly. Fill a non-sampled set fully
    // with friendly blocks, then evict one: its PC must be detrained.
    const auto before = p.predictorCounter(idx);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(1, w, access(0x100 + w * 64, ip));
    std::vector<BlockMeta> blocks(4);
    for (auto &b : blocks)
        b.valid = true;
    p.victim(1, access(0x9000, ip), blocks.data());
    EXPECT_LT(p.predictorCounter(idx), before + 1);
}

TEST(THawkeye, LeafTranslationForcedFriendly)
{
    ReplOpts opts;
    opts.newSignatures = true;
    opts.translationRrpv0 = true;
    HawkeyePolicy p(64, 4, opts);
    EXPECT_EQ(p.name(), "T-Hawkeye");

    const Addr ip = 0x400400;
    // Poison the translation signature as averse...
    for (int round = 0; round < 8; ++round)
        for (Addr b = 0; b < 64; ++b) {
            AccessInfo ai = access(b * 64, ip);
            ai.cat = BlockCat::PtLeaf;
            ai.ptLevel = 1;
            ai.leafPte = true;
            p.onFill(0, static_cast<std::uint32_t>(b % 4), ai);
        }
    // ...then a leaf translation fill must still be treated friendly.
    AccessInfo tr = access(0x8000, ip);
    tr.cat = BlockCat::PtLeaf;
    tr.ptLevel = 1;
    tr.leafPte = true;
    p.onFill(1, 0, tr);
    std::vector<BlockMeta> blocks(4);
    for (auto &b : blocks)
        b.valid = true;
    // Way 0 must NOT be the immediate victim (it is not at max RRPV).
    p.onFill(1, 1, access(0x9000, 0x777)); // likely averse or friendly
    EXPECT_NE(p.victim(1, access(0xa000, ip), blocks.data()), 0u);
}

TEST(THawkeye, NewSignaturesSeparatePredictorEntries)
{
    ReplOpts opts;
    opts.newSignatures = true;
    HawkeyePolicy p(64, 4, opts);
    const Addr ip = 0x400500;
    EXPECT_NE(p.predIndex(ip, true, false), p.predIndex(ip, false, false));
    EXPECT_NE(p.predIndex(ip, false, true), p.predIndex(ip, false, false));
}

TEST(Hawkeye, DefaultSignaturesIgnoreFlags)
{
    HawkeyePolicy p(64, 4, {});
    const Addr ip = 0x400600;
    EXPECT_EQ(p.predIndex(ip, true, false), p.predIndex(ip, false, false));
}

TEST(Hawkeye, VictimPrefersMaxRrpv)
{
    HawkeyePolicy p(64, 4, {});
    // Fill ways; with a fresh (friendly) predictor they insert at 0.
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(2, w, access(w * 64, 0x400700));
    // Force one way averse via distant hint.
    AccessInfo pf = access(0x8000, 0x400800);
    pf.distantHint = true;
    p.onFill(2, 3, pf);
    std::vector<BlockMeta> blocks(4);
    for (auto &b : blocks)
        b.valid = true;
    EXPECT_EQ(p.victim(2, access(0x9000, 0x400700), blocks.data()), 3u);
}

} // namespace
} // namespace tacsim
