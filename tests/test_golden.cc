/**
 * @file
 * Golden-run snapshot tests: small-budget end-to-end runs per
 * benchmark×policy whose stats dumps are checked into tests/golden/ and
 * compared field by field. This is the safety net under engine
 * hot-path rewrites — any behavioral drift (an extra event, a different
 * miss count, a reordered fill) shows up as a named-field diff.
 *
 * Budgets are fixed constants (not TACSIM_INSTRUCTIONS) so the
 * snapshots cannot drift with the environment.
 *
 * Regeneration: TACSIM_REGEN_GOLDEN=1 rewrites the snapshots in the
 * source tree instead of comparing (scripts/regen_golden.sh drives
 * this).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/stats_dump.hh"

#ifndef TACSIM_GOLDEN_DIR
#error "TACSIM_GOLDEN_DIR must point at tests/golden"
#endif

namespace tacsim {
namespace {

constexpr std::uint64_t kGoldenInstructions = 40000;
constexpr std::uint64_t kGoldenWarmup = 10000;

struct GoldenPoint
{
    const char *name; ///< snapshot file stem
    Benchmark benchmark;
    bool proposed;     ///< false = baseline DRRIP/SHiP, true = full paper
    double thp2m = 0.0; ///< fraction of 2M-backed guest regions
    bool nested = false; ///< 2D guest×host translation
};

SystemConfig
configFor(const GoldenPoint &p)
{
    SystemConfig cfg{};
    if (p.proposed) {
        TranslationAwareOptions ta;
        ta.tempo = true;
        applyTranslationAware(cfg, ta);
    }
    cfg.vm.hugePages2M = p.thp2m;
    cfg.vm.nested = p.nested;
    return cfg;
}

std::string
goldenPath(const GoldenPoint &p)
{
    return std::string(TACSIM_GOLDEN_DIR) + "/" + p.name + ".txt";
}

bool
regenRequested()
{
    const char *v = std::getenv("TACSIM_REGEN_GOLDEN");
    return v && *v && std::string(v) != "0";
}

class GoldenRunTest : public ::testing::TestWithParam<GoldenPoint>
{
};

TEST_P(GoldenRunTest, MatchesSnapshot)
{
    const GoldenPoint &p = GetParam();
    const RunResult r = runBenchmark(configFor(p), p.benchmark,
                                     kGoldenInstructions, kGoldenWarmup);
    const std::string dump = dumpRunResult(r);
    const std::string path = goldenPath(p);

    if (regenRequested()) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << dump;
        out.close();
        ASSERT_TRUE(out.good()) << "write to " << path << " failed";
        std::printf("regenerated %s\n", path.c_str());
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << path
        << " — run scripts/regen_golden.sh to create it";
    std::ostringstream expected;
    expected << in.rdbuf();

    const std::vector<std::string> diffs =
        diffDumps(expected.str(), dump);
    if (diffs.empty())
        return;
    std::ostringstream msg;
    msg << "golden mismatch for " << p.name << " (" << diffs.size()
        << " field(s)):\n";
    for (const std::string &d : diffs)
        msg << "  " << d << "\n";
    msg << "If the change is intentional, refresh with "
           "scripts/regen_golden.sh and review the diff.";
    FAIL() << msg.str();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GoldenRunTest,
    ::testing::Values(
        GoldenPoint{"xalancbmk_baseline", Benchmark::xalancbmk, false},
        GoldenPoint{"xalancbmk_proposed", Benchmark::xalancbmk, true},
        GoldenPoint{"mcf_baseline", Benchmark::mcf, false},
        GoldenPoint{"mcf_proposed", Benchmark::mcf, true},
        GoldenPoint{"canneal_baseline", Benchmark::canneal, false},
        GoldenPoint{"canneal_proposed", Benchmark::canneal, true},
        GoldenPoint{"pr_baseline", Benchmark::pr, false},
        GoldenPoint{"pr_proposed", Benchmark::pr, true},
        GoldenPoint{"mcf_thp", Benchmark::mcf, false, 0.5},
        GoldenPoint{"mcf_nested", Benchmark::mcf, false, 0.0, true}),
    [](const ::testing::TestParamInfo<GoldenPoint> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace tacsim
