/**
 * @file
 * Unit tests for the data prefetchers: next-line, IP-stride, SPP,
 * Bingo, IPCP (incl. the TLB-gated cross-page path) and ISB.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "prefetch/bingo.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/isb.hh"
#include "prefetch/simple.hh"
#include "prefetch/spp.hh"

namespace tacsim {
namespace {

/** Captures issued prefetches. */
class CaptureIssuer : public PrefetchIssuer
{
  public:
    void
    issuePrefetch(Addr paddr, PrefetchOrigin origin, Addr) override
    {
        issued.push_back({paddr, origin});
    }

    bool
    has(Addr paddr) const
    {
        for (const auto &p : issued)
            if (blockAlign(p.first) == blockAlign(paddr))
                return true;
        return false;
    }

    std::vector<std::pair<Addr, PrefetchOrigin>> issued;
};

AccessInfo
demand(Addr paddr, Addr ip, Addr vaddr = 0)
{
    AccessInfo ai;
    ai.blockAddr = blockAlign(paddr);
    ai.vaddr = vaddr ? vaddr : paddr;
    ai.ip = ip;
    ai.cat = BlockCat::NonReplay;
    return ai;
}

TEST(NextLine, PrefetchesNextBlockSamePage)
{
    NextLinePrefetcher pf(1);
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    pf.onAccess(demand(0x1000, 0x400000), false);
    ASSERT_EQ(sink.issued.size(), 1u);
    EXPECT_EQ(sink.issued[0].first, 0x1040u);
}

TEST(NextLine, ClampsAtPageBoundary)
{
    NextLinePrefetcher pf(2);
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    pf.onAccess(demand(0x1fc0, 0x400000), false); // last block of page
    EXPECT_TRUE(sink.issued.empty());
}

TEST(IpStride, DetectsStrideAfterConfidence)
{
    IpStridePrefetcher pf(2);
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    const Addr ip = 0x400100;
    // Stride of 2 blocks (128B) within one page.
    for (Addr a = 0x2000; a <= 0x2400; a += 0x80)
        pf.onAccess(demand(a, ip), false);
    EXPECT_TRUE(sink.has(0x2480));
    EXPECT_TRUE(sink.has(0x2500));
}

TEST(IpStride, NoPrefetchWithoutPattern)
{
    IpStridePrefetcher pf(2);
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    const Addr ip = 0x400200;
    const Addr irregular[] = {0x2000, 0x2240, 0x2080, 0x2680, 0x2140};
    for (Addr a : irregular)
        pf.onAccess(demand(a, ip), false);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Spp, SignatureUpdateFoldsDelta)
{
    const auto s1 = SppPrefetcher::updateSignature(0, 3);
    const auto s2 = SppPrefetcher::updateSignature(s1, -2);
    EXPECT_NE(s1, s2);
    EXPECT_LT(s2, 1u << 12);
    // Deterministic.
    EXPECT_EQ(SppPrefetcher::updateSignature(0, 3), s1);
}

TEST(Spp, LearnsConstantDeltaAndLooksAhead)
{
    SppPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    const Addr ip = 0x400300;
    // Train delta=+1 within a page, several pages in a row.
    for (Addr page = 0; page < 4; ++page)
        for (Addr b = 0; b < 16; ++b)
            pf.onAccess(demand((Addr{0x100000} + page * kPageSize) +
                                   b * kBlockSize,
                               ip),
                        false);
    sink.issued.clear();
    // On a fresh page the learned path should prefetch ahead.
    pf.onAccess(demand(0x900000, ip), false);
    pf.onAccess(demand(0x900040, ip), false);
    EXPECT_FALSE(sink.issued.empty());
    EXPECT_TRUE(sink.has(0x900080));
}

TEST(Spp, NeverCrossesPages)
{
    SppPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    const Addr ip = 0x400400;
    for (Addr page = 0; page < 4; ++page)
        for (Addr b = 0; b < 64; ++b)
            pf.onAccess(demand((Addr{0x200000} + page * kPageSize) +
                                   b * kBlockSize,
                               ip),
                        false);
    for (const auto &p : sink.issued)
        EXPECT_EQ(pageNumber(p.first),
                  pageNumber(blockAlign(p.first)));
    // Stronger: every prefetch stays in some accessed page range.
    for (const auto &p : sink.issued)
        EXPECT_LT(p.first, Addr{0x200000} + 4 * kPageSize);
}

TEST(Bingo, ReplaysRecordedFootprint)
{
    BingoPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    const Addr ip = 0x400500;
    // Touch a footprint {0, 2, 5} in many regions so the (PC, offset)
    // short event is learned, then trigger a fresh region.
    for (Addr r = 0; r < 70; ++r) {
        const Addr base = Addr{0x400000} + r * BingoPrefetcher::kRegionSize;
        pf.onAccess(demand(base, ip), false);
        pf.onAccess(demand(base + 2 * kBlockSize, ip), false);
        pf.onAccess(demand(base + 5 * kBlockSize, ip), false);
    }
    sink.issued.clear();
    const Addr fresh = 0x4000000;
    pf.onAccess(demand(fresh, ip), false);
    EXPECT_TRUE(sink.has(fresh + 2 * kBlockSize));
    EXPECT_TRUE(sink.has(fresh + 5 * kBlockSize));
}

TEST(Ipcp, ConstantStrideCrossesPagesWhenTlbHits)
{
    IpcpPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    pf.setTranslateHook([](Addr vaddr, std::uint16_t) {
        return std::optional<Addr>(vaddr + 0x10000000); // always hits
    });
    const Addr ip = 0x400600;
    // Large stride: 32 blocks = half a page, crosses pages quickly.
    for (Addr i = 0; i < 8; ++i)
        pf.onAccess(demand(0, ip, Addr{0x300000} + i * 0x800), false);
    EXPECT_FALSE(sink.issued.empty());
    // Prefetches carry the hook's translation.
    for (const auto &p : sink.issued)
        EXPECT_GE(p.first, 0x10000000u);
}

TEST(Ipcp, CrossPagePrefetchDroppedOnStlbMiss)
{
    IpcpPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    pf.setTranslateHook([](Addr, std::uint16_t) {
        return std::optional<Addr>(); // STLB always misses
    });
    const Addr ip = 0x400700;
    for (Addr i = 0; i < 8; ++i)
        pf.onAccess(demand(0, ip, Addr{0x300000} + i * 0x800), false);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Ipcp, GlobalStreamIssuesNextLines)
{
    IpcpPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    pf.setTranslateHook(
        [](Addr vaddr, std::uint16_t) { return std::optional<Addr>(vaddr); });
    // Dense ascending accesses in one 2KB region from varied IPs.
    for (Addr i = 0; i < 8; ++i)
        pf.onAccess(demand(0, 0x400800 + i * 4,
                           Addr{0x500000} + i * kBlockSize),
                    false);
    EXPECT_TRUE(sink.has(0x500000 + 8 * kBlockSize));
}

TEST(Isb, LinksTemporalNeighbours)
{
    IsbPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    const Addr ip = 0x400900;
    const Addr seq[] = {0x7000, 0x913000, 0x55000, 0xabc0000};
    // Two passes: first trains, second predicts.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a : seq)
            pf.onAccess(demand(a, ip), false);
    EXPECT_TRUE(sink.has(0x913000));
    EXPECT_TRUE(sink.has(0x55000));
}

TEST(Isb, StructuralAddressesAssigned)
{
    IsbPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    const Addr ip = 0x400a00;
    pf.onAccess(demand(0x1000, ip), false);
    pf.onAccess(demand(0x2000, ip), false);
    const auto s1 = pf.structuralOf(0x1000);
    const auto s2 = pf.structuralOf(0x2000);
    ASSERT_NE(s1, 0u);
    EXPECT_EQ(s2, s1 + 1);
}

TEST(Isb, DifferentPcsTrainSeparateStreams)
{
    IsbPrefetcher pf;
    CaptureIssuer sink;
    pf.setIssuer(&sink);
    // Interleaved accesses from two PCs: each PC's stream stays coherent.
    pf.onAccess(demand(0x1000, 0x111), false);
    pf.onAccess(demand(0x9000, 0x999), false);
    pf.onAccess(demand(0x2000, 0x111), false);
    pf.onAccess(demand(0xa000, 0x999), false);
    EXPECT_EQ(pf.structuralOf(0x2000), pf.structuralOf(0x1000) + 1);
    EXPECT_EQ(pf.structuralOf(0xa000), pf.structuralOf(0x9000) + 1);
}

} // namespace
} // namespace tacsim
