/**
 * @file
 * Unit tests for the TLB: lookups, LRU within a set, ASID isolation,
 * probe semantics and the recall profiler used by Fig. 18.
 */

#include <gtest/gtest.h>

#include "vm/tlb.hh"

namespace tacsim {
namespace {

TEST(Tlb, MissThenFillThenHit)
{
    Tlb tlb("t", 64, 4, 1);
    Addr pfn = 0;
    EXPECT_FALSE(tlb.lookup(0, 0x123, pfn));
    tlb.fill(0, 0x123, 0xabc000);
    EXPECT_TRUE(tlb.lookup(0, 0x123, pfn));
    EXPECT_EQ(pfn, 0xabc000u);
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, AsidsAreIsolated)
{
    Tlb tlb("t", 64, 4, 1);
    tlb.fill(1, 0x55, 0x1000);
    Addr pfn = 0;
    EXPECT_FALSE(tlb.lookup(2, 0x55, pfn));
    EXPECT_TRUE(tlb.lookup(1, 0x55, pfn));
}

TEST(Tlb, LruEvictionWithinSet)
{
    // 4 entries, 4 ways: one set. Fill 5 VPNs; the LRU one must go.
    Tlb tlb("t", 4, 4, 1);
    for (Addr v = 0; v < 4; ++v)
        tlb.fill(0, v * 1 /* same set: sets==1 */, Addr(v + 1) << 12);
    Addr pfn = 0;
    EXPECT_TRUE(tlb.lookup(0, 0, pfn)); // refresh vpn 0
    tlb.fill(0, 100, 0x99000);          // evicts vpn 1 (oldest now)
    EXPECT_FALSE(tlb.probe(0, 1, pfn));
    EXPECT_TRUE(tlb.probe(0, 0, pfn));
    EXPECT_TRUE(tlb.probe(0, 100, pfn));
}

TEST(Tlb, ProbeDoesNotTouchStatsOrLru)
{
    Tlb tlb("t", 4, 4, 1);
    tlb.fill(0, 7, 0x7000);
    const auto before = tlb.stats().accesses;
    Addr pfn = 0;
    EXPECT_TRUE(tlb.probe(0, 7, pfn));
    EXPECT_EQ(tlb.stats().accesses, before);
}

TEST(Tlb, FillRefreshesExistingEntryInPlace)
{
    Tlb tlb("t", 4, 4, 1);
    tlb.fill(0, 9, 0x1000);
    tlb.fill(0, 9, 0x2000); // remap
    Addr pfn = 0;
    EXPECT_TRUE(tlb.lookup(0, 9, pfn));
    EXPECT_EQ(pfn, 0x2000u);
}

TEST(Tlb, FlushInvalidatesEverything)
{
    Tlb tlb("t", 64, 4, 1);
    for (Addr v = 0; v < 32; ++v)
        tlb.fill(0, v, v << 12);
    tlb.flush();
    Addr pfn = 0;
    for (Addr v = 0; v < 32; ++v)
        EXPECT_FALSE(tlb.probe(0, v, pfn));
}

TEST(Tlb, SetIndexingSpreadsVpns)
{
    Tlb tlb("t", 64, 4, 1);
    EXPECT_EQ(tlb.sets(), 16u);
    // 16 consecutive VPNs land in 16 different sets: none evicted.
    for (Addr v = 0; v < 64; ++v)
        tlb.fill(0, v, v << 12);
    Addr pfn = 0;
    for (Addr v = 0; v < 64; ++v)
        EXPECT_TRUE(tlb.probe(0, v, pfn)) << v;
}

TEST(Tlb, ResetStatsKeepsContents)
{
    Tlb tlb("t", 64, 4, 1);
    tlb.fill(0, 3, 0x3000);
    Addr pfn = 0;
    tlb.lookup(0, 3, pfn);
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().accesses, 0u);
    EXPECT_TRUE(tlb.probe(0, 3, pfn));
}

TEST(Tlb, RecallProfilerTracksEvictedEntries)
{
    Tlb tlb("t", 4, 4, 1, /*profileRecall=*/true);
    // Fill the single set, evict vpn 0, then access it again.
    for (Addr v = 0; v < 4; ++v) {
        Addr pfn = 0;
        tlb.lookup(0, v, pfn); // miss (counts an access in the set)
        tlb.fill(0, v, v << 12);
    }
    Addr pfn = 0;
    tlb.fill(0, 50, 0x50000); // evicts vpn 0 (LRU)
    tlb.lookup(0, 0, pfn);    // recall event for vpn 0
    ASSERT_NE(tlb.recallProfiler(), nullptr);
    EXPECT_EQ(tlb.recallProfiler()->translationHist().count(), 1u);
}

TEST(Tlb, LatencyIsReported)
{
    Tlb tlb("t", 2048, 16, 8);
    EXPECT_EQ(tlb.latency(), 8u);
    EXPECT_EQ(tlb.entries(), 2048u);
    EXPECT_EQ(tlb.ways(), 16u);
}

} // namespace
} // namespace tacsim
