/**
 * @file
 * Unit tests for the TLB: lookups, LRU within a set, ASID isolation,
 * probe semantics and the recall profiler used by Fig. 18.
 */

#include <gtest/gtest.h>

#include "vm/tlb.hh"

namespace tacsim {
namespace {

/** Convenience: the 4K-page virtual address for a VPN. */
constexpr Addr
va(Addr vpn)
{
    return vpn << kPageBits;
}

TEST(Tlb, MissThenFillThenHit)
{
    Tlb tlb("t", 64, 4, 1);
    Addr pa = 0;
    EXPECT_FALSE(tlb.lookup(0, va(0x123) | 0x45, pa));
    tlb.fill(0, va(0x123), 0xabc000);
    EXPECT_TRUE(tlb.lookup(0, va(0x123) | 0x45, pa));
    EXPECT_EQ(pa, 0xabc045u); // page offset preserved
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, AsidsAreIsolated)
{
    Tlb tlb("t", 64, 4, 1);
    tlb.fill(1, va(0x55), 0x1000);
    Addr pa = 0;
    EXPECT_FALSE(tlb.lookup(2, va(0x55), pa));
    EXPECT_TRUE(tlb.lookup(1, va(0x55), pa));
}

TEST(Tlb, LruEvictionWithinSet)
{
    // 4 entries, 4 ways: one set. Fill 5 VPNs; the LRU one must go.
    Tlb tlb("t", 4, 4, 1);
    for (Addr v = 0; v < 4; ++v)
        tlb.fill(0, va(v) /* same set: sets==1 */, Addr(v + 1) << 12);
    Addr pa = 0;
    EXPECT_TRUE(tlb.lookup(0, va(0), pa)); // refresh vpn 0
    tlb.fill(0, va(100), 0x99000);         // evicts vpn 1 (oldest now)
    EXPECT_FALSE(tlb.probe(0, va(1), pa));
    EXPECT_TRUE(tlb.probe(0, va(0), pa));
    EXPECT_TRUE(tlb.probe(0, va(100), pa));
}

TEST(Tlb, ProbeDoesNotTouchStatsOrLru)
{
    Tlb tlb("t", 4, 4, 1);
    tlb.fill(0, va(7), 0x7000);
    const auto before = tlb.stats().accesses;
    Addr pa = 0;
    EXPECT_TRUE(tlb.probe(0, va(7), pa));
    EXPECT_EQ(tlb.stats().accesses, before);
}

TEST(Tlb, FillRefreshesExistingEntryInPlace)
{
    Tlb tlb("t", 4, 4, 1);
    tlb.fill(0, va(9), 0x1000);
    tlb.fill(0, va(9), 0x2000); // remap
    Addr pa = 0;
    EXPECT_TRUE(tlb.lookup(0, va(9), pa));
    EXPECT_EQ(pa, 0x2000u);
}

TEST(Tlb, FlushInvalidatesEverything)
{
    Tlb tlb("t", 64, 4, 1);
    for (Addr v = 0; v < 32; ++v)
        tlb.fill(0, va(v), v << 12);
    tlb.flush();
    Addr pa = 0;
    for (Addr v = 0; v < 32; ++v)
        EXPECT_FALSE(tlb.probe(0, va(v), pa));
}

TEST(Tlb, SetIndexingSpreadsVpns)
{
    Tlb tlb("t", 64, 4, 1);
    EXPECT_EQ(tlb.sets(), 16u);
    // 16 consecutive VPNs land in 16 different sets: none evicted.
    for (Addr v = 0; v < 64; ++v)
        tlb.fill(0, va(v), v << 12);
    Addr pa = 0;
    for (Addr v = 0; v < 64; ++v)
        EXPECT_TRUE(tlb.probe(0, va(v), pa)) << v;
}

TEST(Tlb, ResetStatsKeepsContents)
{
    Tlb tlb("t", 64, 4, 1);
    tlb.fill(0, va(3), 0x3000);
    Addr pa = 0;
    tlb.lookup(0, va(3), pa);
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().accesses, 0u);
    EXPECT_TRUE(tlb.probe(0, va(3), pa));
}

TEST(Tlb, RecallProfilerTracksEvictedEntries)
{
    Tlb tlb("t", 4, 4, 1, /*profileRecall=*/true);
    // Fill the single set, evict vpn 0, then access it again.
    for (Addr v = 0; v < 4; ++v) {
        Addr pa = 0;
        tlb.lookup(0, va(v), pa); // miss (counts an access in the set)
        tlb.fill(0, va(v), v << 12);
    }
    Addr pa = 0;
    tlb.fill(0, va(50), 0x50000); // evicts vpn 0 (LRU)
    tlb.lookup(0, va(0), pa);     // recall event for vpn 0
    ASSERT_NE(tlb.recallProfiler(), nullptr);
    EXPECT_EQ(tlb.recallProfiler()->translationHist().count(), 1u);
}

TEST(Tlb, LatencyIsReported)
{
    Tlb tlb("t", 2048, 16, 8);
    EXPECT_EQ(tlb.latency(), 8u);
    EXPECT_EQ(tlb.entries(), 2048u);
    EXPECT_EQ(tlb.ways(), 16u);
}

} // namespace
} // namespace tacsim
