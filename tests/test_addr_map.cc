/**
 * @file
 * AddrMap stress tests: randomized churn against a std::unordered_map
 * reference model (growth/rehash under load), targeted backward-shift
 * deletion across the table's wrap boundary, and Addr 0 as a live key
 * (the map uses an explicit occupancy flag, not a sentinel key).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/addr_map.hh"
#include "common/rng.hh"

namespace tacsim {
namespace {

/** Mirror of AddrMap's Fibonacci home slot, for crafting collisions. */
std::size_t
homeOf(std::uint64_t key, std::size_t cap)
{
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> (64 - std::countr_zero(cap)));
}

/** First @p n distinct nonzero keys whose home slot is @p h at @p cap. */
std::vector<std::uint64_t>
keysWithHome(std::size_t h, std::size_t cap, std::size_t n)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t k = 1; out.size() < n; ++k)
        if (homeOf(k, cap) == h)
            out.push_back(k);
    return out;
}

/** Full cross-check: same size, same entries, forEach agrees. */
void
expectMatchesReference(
    const AddrMap<std::uint64_t> &map,
    const std::unordered_map<std::uint64_t, std::uint64_t> &ref)
{
    ASSERT_EQ(map.size(), ref.size());
    for (const auto &[k, v] : ref) {
        const std::uint64_t *p = map.find(k);
        ASSERT_NE(p, nullptr) << "key " << k << " lost";
        EXPECT_EQ(*p, v) << "key " << k << " has wrong value";
    }
    std::size_t visited = 0;
    map.forEach([&](std::uint64_t k, const std::uint64_t &v) {
        ++visited;
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "forEach produced ghost key " << k;
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(AddrMap, ChurnMatchesReferenceModel)
{
    // Start tiny so the churn rides through several growth/rehash
    // cycles; block-aligned keys exercise the Fibonacci spread the
    // structure exists for.
    AddrMap<std::uint64_t> map(2);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(12345);

    for (std::uint64_t step = 1; step <= 30000; ++step) {
        const std::uint64_t key = rng.range(400) * 64; // includes 0
        const auto it = ref.find(key);
        if (it == ref.end()) {
            map.insert(key, step);
            ref.emplace(key, step);
        } else if (rng.chance(0.6)) {
            EXPECT_TRUE(map.erase(key));
            ref.erase(it);
        } else {
            // Update through find(), like MSHR merge does.
            std::uint64_t *p = map.find(key);
            ASSERT_NE(p, nullptr);
            *p = step;
            it->second = step;
        }
        // Absent keys must stay absent (and erase must say so).
        const std::uint64_t ghost = (400 + rng.range(100)) * 64;
        EXPECT_EQ(map.find(ghost), nullptr);
        EXPECT_FALSE(map.erase(ghost));

        if (step % 1000 == 0)
            expectMatchesReference(map, ref);
    }
    expectMatchesReference(map, ref);

    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    for (const auto &[k, v] : ref)
        EXPECT_EQ(map.find(k), nullptr) << v;
}

TEST(AddrMap, GrowthRehashPreservesEveryEntry)
{
    AddrMap<std::uint64_t> map(2);
    // 1000 entries force the slot array through many doublings; key 0
    // goes in first so it survives every rehash.
    for (std::uint64_t i = 0; i < 1000; ++i)
        map.insert(i * 64, i + 1);
    ASSERT_EQ(map.size(), 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t *p = map.find(i * 64);
        ASSERT_NE(p, nullptr) << "key " << i * 64 << " lost in rehash";
        EXPECT_EQ(*p, i + 1);
    }

    for (std::uint64_t i = 0; i < 1000; i += 2)
        EXPECT_TRUE(map.erase(i * 64));
    EXPECT_EQ(map.size(), 500u);
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(map.contains(i * 64), i % 2 == 1);
}

TEST(AddrMap, BackwardShiftDeletionAcrossWrapBoundary)
{
    // Default construction gives a 16-slot table; stay under 8 entries
    // so it never grows and the hand-picked home slots hold.
    constexpr std::size_t kCap = 16;
    AddrMap<int> map;

    // Three colliders homed at the last slot: they occupy slots 15, 0, 1
    // (the probe chain wraps), plus one key homed at slot 1 displaced to
    // slot 2.
    const std::vector<std::uint64_t> tail = keysWithHome(kCap - 1, kCap, 3);
    const std::uint64_t after = keysWithHome(1, kCap, 1)[0];
    map.insert(tail[0], 10);
    map.insert(tail[1], 11);
    map.insert(tail[2], 12);
    map.insert(after, 20);
    ASSERT_EQ(map.size(), 4u);

    // Deleting the chain head forces backward shift across the wrap:
    // every follower (including the displaced slot-1 key) must stay
    // reachable.
    EXPECT_TRUE(map.erase(tail[0]));
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.find(tail[0]), nullptr);
    ASSERT_NE(map.find(tail[1]), nullptr);
    EXPECT_EQ(*map.find(tail[1]), 11);
    ASSERT_NE(map.find(tail[2]), nullptr);
    EXPECT_EQ(*map.find(tail[2]), 12);
    ASSERT_NE(map.find(after), nullptr);
    EXPECT_EQ(*map.find(after), 20);

    // Delete from the middle of the (now shifted) chain too.
    EXPECT_TRUE(map.erase(tail[2]));
    EXPECT_EQ(map.find(tail[2]), nullptr);
    ASSERT_NE(map.find(tail[1]), nullptr);
    ASSERT_NE(map.find(after), nullptr);
}

TEST(AddrMap, ZeroAddressIsALiveKeyThroughWrapChurn)
{
    // Addr 0 homes at slot 0 — exactly where a wrapping probe chain from
    // the last slot lands. The explicit occupancy flag must keep it
    // distinct from "empty" while deletions shift neighbours around it.
    constexpr std::size_t kCap = 16;
    ASSERT_EQ(homeOf(0, kCap), 0u);

    AddrMap<int> map;
    map.insert(0, 7);
    const std::vector<std::uint64_t> tail = keysWithHome(kCap - 1, kCap, 2);
    map.insert(tail[0], 1); // slot 15
    map.insert(tail[1], 2); // wraps past occupied slot 0 into slot 1

    // Erasing the chain head shifts tail[1] backwards across the wrap;
    // key 0 sits in the middle of that chain and must not move or die.
    EXPECT_TRUE(map.erase(tail[0]));
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 7);
    ASSERT_NE(map.find(tail[1]), nullptr);
    EXPECT_EQ(*map.find(tail[1]), 2);

    EXPECT_TRUE(map.erase(0));
    EXPECT_EQ(map.find(0), nullptr);
    EXPECT_FALSE(map.erase(0));
    ASSERT_NE(map.find(tail[1]), nullptr);

    // Reinsert and survive a growth cycle.
    map.insert(0, 9);
    for (std::uint64_t i = 1; i <= 32; ++i)
        map.insert(i * 4096, static_cast<int>(i));
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 9);
}

} // namespace
} // namespace tacsim
