/**
 * @file
 * tacsim-lint tests: lexer token/stripping behavior, suppression-comment
 * parsing, and — against the seeded fixture tree in tests/lint/ — one
 * positive and one suppressed case per registered check, baseline
 * add/expire semantics, and `tacsim-lint-v1` JSON schema stability.
 *
 * The fixtures mirror the src/ layout (tests/lint/src/cache/...,
 * tests/lint/src/vm/...) so directory-scoped checks fire naturally with
 * --root tests/lint. Line numbers asserted here are load-bearing: keep
 * them in sync when editing fixtures.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.hh"

namespace tacsim {
namespace lint {
namespace {

std::vector<std::pair<std::string, std::string>>
loadFixtures()
{
    const std::string root = TACSIM_LINT_FIXTURE_DIR;
    std::vector<std::pair<std::string, std::string>> files;
    for (const auto &[rel, abs] : collectFiles(root, {root + "/src"})) {
        std::ifstream in(abs, std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        files.emplace_back(rel, body.str());
    }
    EXPECT_FALSE(files.empty()) << "no fixtures under " << root;
    return files;
}

Report
lintFixtures(const std::vector<std::string> &baseline = {})
{
    return runLint(loadFixtures(), Options{}, baseline);
}

bool
hasActive(const Report &r, const std::string &check, const std::string &path,
          int line)
{
    return std::any_of(r.active.begin(), r.active.end(),
                       [&](const Finding &f) {
                           return f.check == check && f.path == path &&
                               f.line == line;
                       });
}

bool
hasSuppressed(const Report &r, const std::string &check,
              const std::string &path, int line)
{
    return std::any_of(r.suppressed.begin(), r.suppressed.end(),
                       [&](const Report::Suppressed &s) {
                           return s.finding.check == check &&
                               s.finding.path == path &&
                               s.finding.line == line &&
                               !s.reason.empty();
                       });
}

int
countActive(const Report &r, const std::string &check,
            const std::string &path)
{
    return static_cast<int>(
        std::count_if(r.active.begin(), r.active.end(),
                      [&](const Finding &f) {
                          return f.check == check && f.path == path;
                      }));
}

// ---------------------------------------------------------------- lexer --

TEST(LintLexer, CommentsAndStringsNeverProduceValueTokens)
{
    const auto toks = lex("int a = 4096; // 4096 in a comment\n"
                          "/* 4096 in a block */ const char *s = \"4096\";\n"
                          "const char c = 'x';\n");
    int magic = 0;
    for (const auto &t : toks)
        if (t.kind == Tok::Number && t.valueValid && t.value == 4096)
            ++magic;
    EXPECT_EQ(magic, 1); // only the real literal on line 1
}

TEST(LintLexer, RawStringsAreOpaque)
{
    const auto toks = lex("auto s = R\"(shift >> 12 and 4096)\";\n"
                          "auto t = R\"xy(0xfff)xy\";\n");
    for (const auto &t : toks) {
        EXPECT_NE(t.kind, Tok::Number);
        if (t.kind == Tok::Punct) {
            EXPECT_NE(t.text, ">>");
        }
    }
}

TEST(LintLexer, IntegerLiteralForms)
{
    const auto toks = lex("a = 0x1000; b = 4'096; c = 0b1'0000'0000'0000; "
                          "d = 010000; e = 4096u; f = 4096.0;");
    int hits = 0;
    bool sawFloat = false;
    for (const auto &t : toks) {
        if (t.kind != Tok::Number)
            continue;
        if (t.valueValid && t.value == 4096)
            ++hits;
        if (t.text == "4096.0")
            sawFloat = !t.valueValid;
    }
    EXPECT_EQ(hits, 5); // hex, separated decimal, binary, octal, suffixed
    EXPECT_TRUE(sawFloat);
}

TEST(LintLexer, IncludeOperandLexesAsHeaderToken)
{
    const auto toks = lex("#include <cassert>\n#include \"vm/ptw.hh\"\n"
                          "int x = 1 < 2;\n");
    std::vector<std::string> headers;
    for (const auto &t : toks)
        if (t.kind == Tok::Header) {
            headers.push_back(t.text);
            EXPECT_TRUE(t.inPp);
        }
    ASSERT_EQ(headers.size(), 2u);
    EXPECT_EQ(headers[0], "cassert");
    EXPECT_EQ(headers[1], "vm/ptw.hh");
}

TEST(LintLexer, TracksLinesAcrossContinuationsAndComments)
{
    const auto toks = lex("/* span\n   two lines */ first\n#define M \\\n"
                          "    second\nthird\n");
    // first, '#', define, M, second, third
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(toks[0].line, 2);
    EXPECT_EQ(toks[4].text, "second");
    EXPECT_TRUE(toks[4].inPp); // the continuation keeps the #define open
    EXPECT_EQ(toks[4].line, 4);
    EXPECT_EQ(toks[5].text, "third");
    EXPECT_EQ(toks[5].line, 5);
    EXPECT_FALSE(toks[5].inPp);
}

// --------------------------------------------------------- suppressions --

TEST(LintSuppressions, TrailingAppliesToOwnLineWholeLineToNext)
{
    const std::set<std::string> known = {"raw-assert", "banned-include"};
    const auto scan =
        parseSuppressions("assert(x); // tacsim-lint: allow(raw-assert) ok\n"
                          "// tacsim-lint: allow(banned-include) also ok\n"
                          "#include <cassert>\n",
                          known);
    EXPECT_TRUE(scan.malformed.empty());
    ASSERT_EQ(scan.byLine.count(1), 1u);
    EXPECT_EQ(scan.byLine.find(1)->second.checks.front(), "raw-assert");
    ASSERT_EQ(scan.byLine.count(3), 1u); // whole-line on 2 applies to 3
    EXPECT_EQ(scan.byLine.find(3)->second.checks.front(), "banned-include");
    EXPECT_EQ(scan.byLine.find(3)->second.reason, "also ok");
}

TEST(LintSuppressions, MalformedFormsAreReported)
{
    const std::set<std::string> known = {"raw-assert"};
    const auto scan = parseSuppressions(
        "a(); // tacsim-lint: allow(raw-assert)\n"     // no reason
        "b(); // tacsim-lint: allow(bogus-check) r\n"  // unknown check
        "c(); // tacsim-lint: disable everything\n",   // bad syntax
        known);
    EXPECT_EQ(scan.malformed.size(), 3u);
    EXPECT_TRUE(scan.byLine.empty());
}

// --------------------------------------------- checks, on the fixtures --

TEST(LintChecks, RegistryIsStable)
{
    const auto checks = createChecks();
    std::set<std::string> ids;
    for (const auto &c : checks)
        ids.insert(c->id());
    EXPECT_EQ(ids.size(), checks.size()) << "duplicate check id";
    const std::set<std::string> expected = {
        "magic-page-constant",  "nondeterminism-hazard",
        "unsequenced-rng",      "raw-assert",
        "banned-include",       "hot-path-container",
        "stats-registry-coverage"};
    EXPECT_EQ(ids, expected);
}

TEST(LintChecks, MagicPageConstant)
{
    const Report r = lintFixtures();
    const char *f = "src/prefetch/magic.cc";
    EXPECT_TRUE(hasActive(r, "magic-page-constant", f, 3)); // 4096
    EXPECT_TRUE(hasActive(r, "magic-page-constant", f, 4)); // 0xfff
    EXPECT_TRUE(hasActive(r, "magic-page-constant", f, 5)); // >> 12
    EXPECT_TRUE(hasActive(r, "magic-page-constant", f, 6)); // 0x1ff
    EXPECT_EQ(countActive(r, "magic-page-constant", f), 4);
    EXPECT_TRUE(hasSuppressed(r, "magic-page-constant", f, 7));
    // The vocabulary-defining header is exempt.
    EXPECT_EQ(countActive(r, "magic-page-constant", "src/common/types.hh"),
              0);
}

TEST(LintChecks, NondeterminismHazard)
{
    const Report r = lintFixtures();
    const char *f = "src/sim/nondet.cc";
    EXPECT_TRUE(hasActive(r, "nondeterminism-hazard", f, 7));  // std::rand()
    EXPECT_TRUE(hasActive(r, "nondeterminism-hazard", f, 8));  // steady_clock
    EXPECT_TRUE(hasActive(r, "nondeterminism-hazard", f, 13)); // range-for
    EXPECT_EQ(countActive(r, "nondeterminism-hazard", f), 3)
        << "'time' as a plain identifier and range-for over an array "
           "must not be flagged";
    EXPECT_TRUE(hasSuppressed(r, "nondeterminism-hazard", f, 20));
}

TEST(LintChecks, UnsequencedRng)
{
    const Report r = lintFixtures();
    const char *f = "src/workloads/unseq.cc";
    EXPECT_TRUE(hasActive(r, "unsequenced-rng", f, 6));
    EXPECT_EQ(countActive(r, "unsequenced-rng", f), 1)
        << "statement-separated draws, ?:-sequenced draws, and "
           "braced-init-list draws must not be flagged";
    EXPECT_TRUE(hasSuppressed(r, "unsequenced-rng", f, 16));
}

TEST(LintChecks, RawAssert)
{
    const Report r = lintFixtures();
    const char *f = "src/core/checks.cc";
    EXPECT_TRUE(hasActive(r, "raw-assert", f, 8));
    EXPECT_EQ(countActive(r, "raw-assert", f), 1) << "static_assert is fine";
    EXPECT_TRUE(hasSuppressed(r, "raw-assert", f, 13));
}

TEST(LintChecks, BannedInclude)
{
    const Report r = lintFixtures();
    const char *f = "src/core/checks.cc";
    EXPECT_TRUE(hasActive(r, "banned-include", f, 2)); // <cassert>
    EXPECT_EQ(countActive(r, "banned-include", f), 1);
    EXPECT_TRUE(hasSuppressed(r, "banned-include", f, 3)); // <random>
}

TEST(LintChecks, HotPathContainer)
{
    const Report r = lintFixtures();
    EXPECT_TRUE(hasActive(r, "hot-path-container", "src/cache/hot.cc", 8));
    EXPECT_TRUE(hasSuppressed(r, "hot-path-container", "src/cache/hot.cc",
                              10));
    // Same container type outside the hot-path directories: not flagged
    // by this check (nondeterminism-hazard owns the iteration angle).
    EXPECT_EQ(countActive(r, "hot-path-container", "src/sim/nondet.cc"), 0);
}

TEST(LintChecks, StatsRegistryCoverage)
{
    const Report r = lintFixtures();
    const char *f = "src/vm/stats.hh";
    // 'stalls' is declared in stats.hh but registered nowhere; 'walks'
    // and 'latency' are registered in stats.cc (cross-file resolution).
    EXPECT_TRUE(hasActive(r, "stats-registry-coverage", f, 7));
    EXPECT_EQ(countActive(r, "stats-registry-coverage", f), 1);
    // 'rows' is covered by the struct-level allow() on ImportStats.
    EXPECT_TRUE(hasSuppressed(r, "stats-registry-coverage", f, 16));
}

TEST(LintChecks, MalformedSuppressionsAreFindings)
{
    const Report r = lintFixtures();
    const char *f = "src/obs/bad_suppress.cc";
    std::set<int> lines;
    for (const auto &m : r.malformed)
        if (m.path == f)
            lines.insert(m.line);
    EXPECT_EQ(lines, (std::set<int>{3, 4, 5}));
    EXPECT_FALSE(r.clean());
}

// -------------------------------------------------------------- driver --

TEST(LintBaseline, GrandfathersExactKeysAndFlagsStaleOnes)
{
    const Report before = lintFixtures();
    ASSERT_FALSE(before.active.empty());

    std::vector<std::string> baseline;
    for (const auto &f : before.active)
        baseline.push_back(baselineKey(f));

    const Report after = lintFixtures(baseline);
    EXPECT_TRUE(after.active.empty());
    EXPECT_EQ(after.baselined.size(), before.active.size());
    EXPECT_TRUE(after.staleBaseline.empty());

    // An entry matching nothing (e.g. the violation was fixed) is stale
    // and fails the gate: the baseline can only shrink.
    baseline.push_back("raw-assert src/prefetch/magic.cc:999");
    const Report stale = lintFixtures(baseline);
    EXPECT_EQ(stale.staleBaseline,
              (std::vector<std::string>{
                  "raw-assert src/prefetch/magic.cc:999"}));
}

TEST(LintBaseline, KeyFormatAndParsing)
{
    Finding f;
    f.check = "magic-page-constant";
    f.path = "src/prefetch/spp.hh";
    f.line = 27;
    EXPECT_EQ(baselineKey(f), "magic-page-constant src/prefetch/spp.hh:27");

    const auto entries = parseBaseline("# grandfathered findings\n\n"
                                       "raw-assert src/a.cc:1\n"
                                       "  banned-include src/b.cc:2  \n");
    EXPECT_EQ(entries, (std::vector<std::string>{
                           "raw-assert src/a.cc:1",
                           "banned-include src/b.cc:2"}));
}

TEST(LintJson, SchemaV1IsStableAndDeterministic)
{
    const Report r = lintFixtures();
    const std::string json = toJson(r);
    for (const char *key :
         {"\"schema\"", "tacsim-lint-v1", "\"files_scanned\"", "\"findings\"",
          "\"suppressed\"", "\"baselined\"", "\"stale_baseline\"",
          "\"malformed_suppressions\"", "\"clean\"", "\"check\"", "\"file\"",
          "\"line\"", "\"col\"", "\"message\"", "\"reason\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // Byte-identical across runs: findings are sorted, no timestamps.
    EXPECT_EQ(json, toJson(lintFixtures()));
}

TEST(LintDriver, FindingsAreSortedByPathLineCol)
{
    const Report r = lintFixtures();
    for (std::size_t i = 1; i < r.active.size(); ++i) {
        const Finding &a = r.active[i - 1];
        const Finding &b = r.active[i];
        EXPECT_LE(std::tie(a.path, a.line, a.col),
                  std::tie(b.path, b.line, b.col));
    }
}

TEST(LintDriver, EnabledChecksFilterRestrictsFindings)
{
    Options only;
    only.enabledChecks = {"raw-assert"};
    const Report r = runLint(loadFixtures(), only, {});
    EXPECT_FALSE(r.active.empty());
    for (const auto &f : r.active)
        EXPECT_EQ(f.check, "raw-assert");
}

} // namespace
} // namespace lint
} // namespace tacsim
