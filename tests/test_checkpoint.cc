/**
 * @file
 * Checkpoint/restore (tacsim-ckpt-v1) determinism and safety tests.
 *
 * The contract under test: warm-up → quiesce → save → measure must be
 * byte-identical (canonical stats dump, `events` line included) to
 * building a fresh System, restoring the checkpoint, and measuring.
 * This is what lets the serve daemon hand a warmed machine state to a
 * later process and still return results indistinguishable from a
 * cold run.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"
#include "sim/system.hh"
#include "workloads/benchmarks.hh"

namespace tacsim {
namespace {

constexpr std::uint64_t kInstr = 20000;
constexpr std::uint64_t kWarm = 6000;

std::string
tmpPath(const std::string &stem)
{
    return ::testing::TempDir() + "tacsim_ckpt_" + stem + "_" +
        std::to_string(::getpid()) + ".ckpt";
}

struct Point
{
    const char *name;
    const char *spec;
    bool proposed = false;
    double thp2m = 0.0;
    bool nested = false;
};

SystemConfig
configFor(const Point &p)
{
    SystemConfig cfg{};
    if (p.proposed) {
        TranslationAwareOptions ta;
        ta.tempo = true;
        applyTranslationAware(cfg, ta);
    }
    cfg.vm.hugePages2M = p.thp2m;
    cfg.vm.nested = p.nested;
    return cfg;
}

TEST(Checkpoint, RestoreMatchesStraightThroughByteForByte)
{
    const Point points[] = {
        {"xalancbmk_baseline", "xalancbmk"},
        {"mcf_proposed", "mcf", true},
        {"canneal_thp", "canneal", false, 0.5},
        {"xalancbmk_nested", "xalancbmk", false, 0.0, true},
    };
    for (const Point &p : points) {
        SCOPED_TRACE(p.name);
        const SystemConfig cfg = configFor(p);
        const std::vector<std::string> specs(cfg.threads(), p.spec);
        const std::string path = tmpPath(p.name);

        const RunResult straight =
            runSpecMixCheckpointed(cfg, specs, kInstr, kWarm, path);
        const RunResult restored =
            runSpecMixFromCheckpoint(cfg, specs, kInstr, path);

        EXPECT_EQ(dumpRunResult(straight), dumpRunResult(restored));
        std::remove(path.c_str());
    }
}

TEST(Checkpoint, MulticoreRestoreMatches)
{
    SystemConfig cfg{};
    cfg.numCores = 2;
    const std::vector<std::string> specs = {"mcf", "xalancbmk"};
    const std::string path = tmpPath("multicore");

    const RunResult straight =
        runSpecMixCheckpointed(cfg, specs, kInstr, kWarm, path);
    const RunResult restored =
        runSpecMixFromCheckpoint(cfg, specs, kInstr, path);

    EXPECT_EQ(dumpRunResult(straight), dumpRunResult(restored));
    std::remove(path.c_str());
}

TEST(Checkpoint, TraceWorkloadRestoreMatches)
{
    const std::string spec = std::string("trace:") +
        TACSIM_TEST_DATA_DIR + "/xalancbmk_small.tactrc";
    SystemConfig cfg{};
    const std::vector<std::string> specs(1, spec);
    const std::string path = tmpPath("trace");

    const RunResult straight =
        runSpecMixCheckpointed(cfg, specs, kInstr, kWarm, path);
    const RunResult restored =
        runSpecMixFromCheckpoint(cfg, specs, kInstr, path);

    EXPECT_EQ(dumpRunResult(straight), dumpRunResult(restored));
    std::remove(path.c_str());
}

TEST(Checkpoint, ConfigMismatchIsRejected)
{
    SystemConfig cfg{};
    const std::vector<std::string> specs(1, "mcf");
    const std::string path = tmpPath("cfgmismatch");
    runSpecMixCheckpointed(cfg, specs, kInstr, kWarm, path);

    SystemConfig other = cfg;
    other.stlbEntries = 1024;
    EXPECT_THROW(
        runSpecMixFromCheckpoint(other, specs, kInstr, path),
        std::runtime_error);
    std::remove(path.c_str());
}

TEST(Checkpoint, CorruptFilesAreRejected)
{
    SystemConfig cfg{};
    const std::vector<std::string> specs(1, "mcf");
    const std::string path = tmpPath("corrupt");
    runSpecMixCheckpointed(cfg, specs, kInstr, kWarm, path);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u);

    // Truncation: drop the CRC footer plus some payload.
    {
        const std::string tpath = tmpPath("truncated");
        std::ofstream out(tpath, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 32));
        out.close();
        EXPECT_THROW(
            runSpecMixFromCheckpoint(cfg, specs, kInstr, tpath),
            std::runtime_error);
        std::remove(tpath.c_str());
    }

    // Bit rot in the payload: the CRC check must fire.
    {
        const std::string fpath = tmpPath("bitflip");
        std::string flipped = bytes;
        flipped[flipped.size() / 2] ^= 0x40;
        std::ofstream out(fpath, std::ios::binary);
        out.write(flipped.data(),
                  static_cast<std::streamsize>(flipped.size()));
        out.close();
        EXPECT_THROW(
            runSpecMixFromCheckpoint(cfg, specs, kInstr, fpath),
            std::runtime_error);
        std::remove(fpath.c_str());
    }

    // Wrong magic: rejected before anything else is read.
    {
        const std::string mpath = tmpPath("badmagic");
        std::string bad = bytes;
        bad[0] = 'X';
        std::ofstream out(mpath, std::ios::binary);
        out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
        out.close();
        EXPECT_THROW(
            runSpecMixFromCheckpoint(cfg, specs, kInstr, mpath),
            std::runtime_error);
        std::remove(mpath.c_str());
    }

    std::remove(path.c_str());
}

TEST(Checkpoint, UnsupportedComponentsAreGated)
{
    // Prefetchers keep private state v1 does not serialize; saving must
    // refuse loudly instead of writing a checkpoint that restores to a
    // subtly different machine.
    SystemConfig cfg{};
    cfg.l2Prefetcher = PrefetcherKind::IpStride;
    const std::vector<std::string> specs(1, "mcf");
    EXPECT_THROW(runSpecMixCheckpointed(cfg, specs, kInstr, kWarm,
                                        tmpPath("gated")),
                 std::runtime_error);
}

} // namespace
} // namespace tacsim
