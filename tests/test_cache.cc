/**
 * @file
 * Unit tests for the cache level: hit/miss paths, MSHR merging and
 * saturation, fills and dirty evictions, ideal-hit modes, prefetch
 * handling and the ATP trigger.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "test_util.hh"

namespace tacsim {
namespace {

using test::MockMemory;
using test::makeLoad;
using test::makeTranslation;

struct CacheTest : ::testing::Test
{
    EventQueue eq;
    MockMemory lower{eq, 100};

    CacheParams
    smallParams()
    {
        CacheParams p;
        p.name = "L1";
        p.sets = 4;
        p.ways = 2;
        p.latency = 5;
        p.mshrs = 4;
        p.mshrReserveForDemand = 1;
        p.level = RespSource::L1D;
        return p;
    }

    std::unique_ptr<Cache>
    makeCache(CacheParams p)
    {
        return std::make_unique<Cache>(
            p, eq, &lower, makePolicy(PolicyKind::LRU, p.sets, p.ways));
    }
};

TEST_F(CacheTest, MissFillsThenHits)
{
    auto c = makeCache(smallParams());
    auto r1 = makeLoad(0x1000);
    Cycle done1 = 0;
    r1->onComplete = [&](MemRequest &r) { done1 = r.completedAt; };
    c->access(r1);
    test::drain(eq);
    EXPECT_EQ(r1->source, RespSource::DRAM);
    EXPECT_EQ(done1, 5u + 100u); // lookup latency + mock delay
    EXPECT_TRUE(c->contains(0x1000));

    auto r2 = makeLoad(0x1000);
    Cycle done2 = 0;
    const Cycle start = eq.now();
    r2->onComplete = [&](MemRequest &r) { done2 = r.completedAt; };
    c->access(r2);
    test::drain(eq);
    EXPECT_EQ(r2->source, RespSource::L1D);
    EXPECT_EQ(done2 - start, 5u);
    EXPECT_EQ(c->stats().hits[std::size_t(BlockCat::NonReplay)], 1u);
    EXPECT_EQ(c->stats().misses[std::size_t(BlockCat::NonReplay)], 1u);
}

TEST_F(CacheTest, MshrMergesSameBlock)
{
    auto c = makeCache(smallParams());
    auto r1 = makeLoad(0x2000);
    auto r2 = makeLoad(0x2010); // same block
    int completions = 0;
    r1->onComplete = [&](MemRequest &) { ++completions; };
    r2->onComplete = [&](MemRequest &) { ++completions; };
    c->access(r1);
    c->access(r2);
    test::drain(eq);
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(lower.requests.size(), 1u); // one fill for both
    EXPECT_EQ(c->stats().mshrMerges, 1u);
}

TEST_F(CacheTest, MshrSaturationQueuesDemands)
{
    auto p = smallParams();
    p.mshrs = 2;
    auto c = makeCache(p);
    int completions = 0;
    for (int i = 0; i < 4; ++i) {
        auto r = makeLoad(Addr(0x10000) + Addr(i) * 0x1000);
        r->onComplete = [&](MemRequest &) { ++completions; };
        c->access(r);
    }
    test::drain(eq);
    EXPECT_EQ(completions, 4); // all eventually complete
    EXPECT_GT(c->stats().mshrFullEvents, 0u);
}

TEST_F(CacheTest, DirtyEvictionGeneratesWriteback)
{
    auto p = smallParams();
    p.sets = 1;
    p.ways = 1; // single frame: every new block evicts
    auto c = makeCache(p);

    auto st = makeLoad(0x3000);
    st->type = ReqType::Store;
    c->access(st);
    test::drain(eq);

    auto r = makeLoad(0x4000); // evicts the dirty block
    c->access(r);
    test::drain(eq);

    EXPECT_EQ(lower.countOf(ReqType::Writeback), 1u);
    EXPECT_EQ(c->stats().writebacksOut, 1u);
    EXPECT_FALSE(c->contains(0x3000));
    EXPECT_TRUE(c->contains(0x4000));
}

TEST_F(CacheTest, WritebackFromAboveHitsInPlace)
{
    auto c = makeCache(smallParams());
    auto r = makeLoad(0x5000);
    c->access(r);
    test::drain(eq);

    auto wb = std::make_shared<MemRequest>();
    wb->paddr = 0x5000;
    wb->type = ReqType::Writeback;
    c->access(wb);
    test::drain(eq);
    EXPECT_EQ(lower.countOf(ReqType::Writeback), 0u); // absorbed here

    // Evicting it now must push the dirty copy down.
    auto p = smallParams();
    (void)p;
}

TEST_F(CacheTest, WritebackMissForwardsWithoutAllocation)
{
    auto c = makeCache(smallParams());
    auto wb = std::make_shared<MemRequest>();
    wb->paddr = 0x6000;
    wb->type = ReqType::Writeback;
    c->access(wb);
    test::drain(eq);
    EXPECT_EQ(lower.countOf(ReqType::Writeback), 1u);
    EXPECT_FALSE(c->contains(0x6000));
}

TEST_F(CacheTest, IdealTranslationModeGrantsEarlyCompletion)
{
    auto p = smallParams();
    p.idealTranslations = true;
    p.level = RespSource::LLC;
    auto c = makeCache(p);

    auto t = makeTranslation(0x7000, 1, 0x8000);
    Cycle done = 0;
    t->onComplete = [&](MemRequest &r) { done = r.completedAt; };
    c->access(t);
    test::drain(eq);
    EXPECT_EQ(done, 5u); // hit latency, not DRAM
    EXPECT_EQ(t->source, RespSource::IdealLLC);
    EXPECT_EQ(c->stats().idealGrants, 1u);
    // The fill still happened in the background.
    EXPECT_TRUE(c->contains(0x7000));
    EXPECT_EQ(lower.countOf(ReqType::Translation), 1u);
}

TEST_F(CacheTest, IdealModeIgnoresNonLeafAndData)
{
    auto p = smallParams();
    p.idealTranslations = true;
    auto c = makeCache(p);
    auto t = makeTranslation(0x7000, 3); // upper level: not ideal
    Cycle done = 0;
    t->onComplete = [&](MemRequest &r) { done = r.completedAt; };
    c->access(t);
    test::drain(eq);
    EXPECT_GT(done, 100u);
}

TEST_F(CacheTest, AtpTriggersOnLeafTranslationHit)
{
    auto p = smallParams();
    p.atp = true;
    auto c = makeCache(p);

    // First walk: leaf PTE misses, fills.
    auto t1 = makeTranslation(0x9000, 1, 0xa000);
    c->access(t1);
    test::drain(eq);
    EXPECT_EQ(c->stats().atpIssued, 0u); // miss: no trigger

    // Second walk to the same PTE block: hit -> ATP prefetch of the
    // replay line.
    auto t2 = makeTranslation(0x9000, 1, 0xb000);
    c->access(t2);
    test::drain(eq);
    EXPECT_EQ(c->stats().atpIssued, 1u);
    EXPECT_TRUE(c->contains(0xb000));
    const auto &last = lower.requests.back();
    EXPECT_EQ(last->type, ReqType::Prefetch);
    EXPECT_EQ(last->prefetchOrigin, PrefetchOrigin::Atp);
}

TEST_F(CacheTest, AtpPrefetchUsefulWhenReplayHits)
{
    auto p = smallParams();
    p.atp = true;
    auto c = makeCache(p);
    auto t1 = makeTranslation(0x9000, 1, 0xa000);
    c->access(t1);
    test::drain(eq);
    auto t2 = makeTranslation(0x9000, 1, 0xb000);
    c->access(t2);
    test::drain(eq);

    auto replay = makeLoad(0xb000, 0x400000, true);
    c->access(replay);
    test::drain(eq);
    EXPECT_EQ(replay->source, RespSource::L1D);
    EXPECT_EQ(c->stats().atpUseful, 1u);
    EXPECT_EQ(c->stats().prefetchUseful, 1u);
}

TEST_F(CacheTest, PrefetchDuplicateFiltersApply)
{
    auto c = makeCache(smallParams());
    auto r = makeLoad(0xc000);
    c->access(r);
    test::drain(eq);

    c->issuePrefetch(0xc000, PrefetchOrigin::DataPrefetcher, 0);
    EXPECT_EQ(c->stats().prefetchIssued, 0u); // resident: filtered

    c->issuePrefetch(0xd000, PrefetchOrigin::DataPrefetcher, 0);
    c->issuePrefetch(0xd000, PrefetchOrigin::DataPrefetcher, 0);
    EXPECT_EQ(c->stats().prefetchIssued, 1u); // in-flight: filtered
    test::drain(eq);
    EXPECT_TRUE(c->contains(0xd000));
}

TEST_F(CacheTest, PrefetchesCannotTakeReservedMshrs)
{
    auto p = smallParams();
    p.mshrs = 2;
    p.mshrReserveForDemand = 1;
    auto c = makeCache(p);

    auto r = makeLoad(0xe000);
    c->access(r);
    test::drain(eq); // occupy nothing now; fill done

    // One demand miss holds an MSHR; the only free one is reserved.
    auto r2 = makeLoad(0xf000);
    c->access(r2);
    eq.advanceTo(eq.now() + 6); // past lookup, fill pending
    c->issuePrefetch(0x1f000, PrefetchOrigin::DataPrefetcher, 0);
    EXPECT_EQ(c->stats().prefetchDropped, 1u);
    test::drain(eq);
}

TEST_F(CacheTest, LateMergedDemandReclassifiesFill)
{
    auto c = makeCache(smallParams());
    c->issuePrefetch(0x11000, PrefetchOrigin::DataPrefetcher, 0);
    eq.advanceTo(eq.now() + 1);
    auto replay = makeLoad(0x11000, 0x400000, true);
    c->access(replay);
    test::drain(eq);
    EXPECT_EQ(c->stats().prefetchLate, 1u);
    // The installed block carries the demand's (replay) category.
    const std::uint32_t set = c->setIndex(0x11000);
    bool found = false;
    for (std::uint32_t w = 0; w < c->params().ways; ++w) {
        const BlockMeta &b = c->blockAt(set, w);
        if (b.valid && b.tag == blockAlign(Addr{0x11000})) {
            EXPECT_EQ(b.cat, BlockCat::Replay);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(CacheTest, DrainedDemandDoesNotRefetchResidentLine)
{
    auto p = smallParams();
    p.mshrs = 1; // a single in-flight miss saturates the MSHRs
    auto c = makeCache(p);

    // Y occupies the only MSHR; its fill is in flight in the mock.
    auto y = makeLoad(0x20000);
    c->access(y);
    eq.advanceTo(eq.now() + 6); // past lookup; Y waits on the mock

    // Two demands to the same block X queue in pending_ while the MSHRs
    // are full (X1 gets no MSHR, so X2 cannot merge with it).
    auto x1 = makeLoad(0x30000);
    auto x2 = makeLoad(0x30010); // same 64B block as X1
    int completions = 0;
    x1->onComplete = [&](MemRequest &) { ++completions; };
    x2->onComplete = [&](MemRequest &) { ++completions; };
    c->access(x1);
    c->access(x2);
    test::drain(eq);

    // Y's fill drains X1 (fetches X); X's fill drains X2, which must
    // see the just-installed line and complete as a hit — not re-fetch
    // and re-install it.
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(x2->source, RespSource::L1D);
    std::size_t fetchesOfX = 0;
    for (const auto &r : lower.requests)
        fetchesOfX += r->blockAddr() == blockAlign(Addr{0x30000});
    EXPECT_EQ(fetchesOfX, 1u);
    EXPECT_EQ(c->stats().fills, 2u); // Y and X, once each
    // The queued demands were counted once at first lookup, not again
    // on drain.
    const auto cat = std::size_t(BlockCat::NonReplay);
    EXPECT_EQ(c->stats().accesses[cat], 3u);
    EXPECT_EQ(c->stats().misses[cat], 3u);
    EXPECT_GT(c->stats().mshrFullEvents, 0u);
}

namespace {

/** Prefetcher spy: counts onPrefetchFill notifications. */
struct SpyPrefetcher : Prefetcher
{
    void onAccess(const AccessInfo &, bool) override {}
    void onPrefetchFill(Addr) override { ++fills; }
    std::string name() const override { return "spy"; }
    int fills = 0;
};

} // namespace

TEST_F(CacheTest, DemandMergeIntoPrefetchMshrStopsPrefetcherTraining)
{
    auto p = smallParams();
    auto spy = std::make_unique<SpyPrefetcher>();
    SpyPrefetcher *spyPtr = spy.get();
    auto c = std::make_unique<Cache>(
        p, eq, &lower, makePolicy(PolicyKind::LRU, p.sets, p.ways),
        std::move(spy));

    // Control: an unmerged prefetch fill trains the prefetcher.
    c->issuePrefetch(0x40000, PrefetchOrigin::DataPrefetcher, 0);
    test::drain(eq);
    EXPECT_EQ(spyPtr->fills, 1);

    // A demand merging into an in-flight prefetch reclassifies the fill
    // as a demand fill: the prefetcher must not train on it.
    c->issuePrefetch(0x50000, PrefetchOrigin::DataPrefetcher, 0);
    eq.advanceTo(eq.now() + 1);
    auto d = makeLoad(0x50000);
    c->access(d);
    test::drain(eq);
    EXPECT_EQ(c->stats().prefetchLate, 1u);
    EXPECT_EQ(spyPtr->fills, 1); // unchanged
}

TEST_F(CacheTest, StatsAccountingConsistent)
{
    auto c = makeCache(smallParams());
    for (int i = 0; i < 32; ++i) {
        auto r = makeLoad(Addr(i % 8) * 0x1000);
        c->access(r);
        test::drain(eq);
    }
    const CacheStats &s = c->stats();
    const auto cat = std::size_t(BlockCat::NonReplay);
    EXPECT_EQ(s.accesses[cat], s.hits[cat] + s.misses[cat]);
    EXPECT_EQ(s.accesses[cat], 32u);
}

} // namespace
} // namespace tacsim
