/**
 * @file
 * Determinism tests: the same benchmark×config point, run twice with
 * the same seed, must produce byte-identical stats dumps — serially and
 * across the sweep runner's thread pool (TACSIM_JOBS=4 equivalent).
 * These pin the engine's bit-reproducibility contract so fast-path
 * rewrites (calendar event queue, pooled requests, open-addressed
 * MSHRs) cannot introduce platform- or schedule-dependent behavior.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/stats_dump.hh"
#include "sim/sweep.hh"

namespace tacsim {
namespace {

constexpr std::uint64_t kInstr = 30000;
constexpr std::uint64_t kWarmup = 8000;

struct Point
{
    const char *name;
    Benchmark benchmark;
    bool proposed;
    double thp2m = 0.0;
    bool nested = false;
};

const Point kPoints[] = {
    {"xalancbmk_baseline", Benchmark::xalancbmk, false},
    {"xalancbmk_proposed", Benchmark::xalancbmk, true},
    {"mcf_baseline", Benchmark::mcf, false},
    {"canneal_proposed", Benchmark::canneal, true},
    {"pr_baseline", Benchmark::pr, false},
    {"mcf_thp", Benchmark::mcf, false, 0.5},
    {"xalancbmk_nested", Benchmark::xalancbmk, false, 0.0, true},
};

SystemConfig
configFor(const Point &p)
{
    SystemConfig cfg{};
    if (p.proposed) {
        TranslationAwareOptions ta;
        ta.tempo = true;
        applyTranslationAware(cfg, ta);
    }
    cfg.vm.hugePages2M = p.thp2m;
    cfg.vm.nested = p.nested;
    return cfg;
}

TEST(Determinism, RepeatedSerialRunsAreByteIdentical)
{
    for (const Point &p : kPoints) {
        const SystemConfig cfg = configFor(p);
        const std::string first =
            dumpRunResult(runBenchmark(cfg, p.benchmark, kInstr, kWarmup));
        const std::string second =
            dumpRunResult(runBenchmark(cfg, p.benchmark, kInstr, kWarmup));
        EXPECT_EQ(first, second) << p.name << ": two serial runs with "
                                    "the same seed diverged";
    }
}

TEST(Determinism, ThreadPoolRunsMatchSerialRuns)
{
    // Every point twice across a 4-worker pool: concurrent execution
    // and completion order must not leak into the results.
    SweepRunner sweep(4);
    for (const Point &p : kPoints) {
        const SystemConfig cfg = configFor(p);
        sweep.add(std::string(p.name) + "#a", cfg, p.benchmark, kInstr,
                  kWarmup);
        sweep.add(std::string(p.name) + "#b", cfg, p.benchmark, kInstr,
                  kWarmup);
    }
    sweep.run();

    for (const Point &p : kPoints) {
        const SystemConfig cfg = configFor(p);
        const std::string serial =
            dumpRunResult(runBenchmark(cfg, p.benchmark, kInstr, kWarmup));
        const std::string a = dumpRunResult(
            sweep.result(std::string(p.name) + "#a"));
        const std::string b = dumpRunResult(
            sweep.result(std::string(p.name) + "#b"));
        EXPECT_EQ(a, b) << p.name
                        << ": pool runs of the same point diverged";
        EXPECT_EQ(serial, a)
            << p.name << ": pool run differs from serial run";
    }
}

TEST(Determinism, DifferentSeedsActuallyDiverge)
{
    // Sanity check that the dump is sensitive enough to catch drift:
    // perturbing the seed must change it.
    SystemConfig a{};
    SystemConfig b{};
    b.seed = a.seed + 1;
    const std::string da = dumpRunResult(
        runBenchmark(a, Benchmark::xalancbmk, kInstr, kWarmup));
    const std::string db = dumpRunResult(
        runBenchmark(b, Benchmark::xalancbmk, kInstr, kWarmup));
    EXPECT_NE(da, db) << "stats dump is insensitive to the seed — the "
                         "determinism tests would be vacuous";
}

} // namespace
} // namespace tacsim
