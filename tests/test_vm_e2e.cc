/**
 * @file
 * End-to-end VM configuration tests: THP-style huge pages reduce STLB
 * pressure, nested (2D guest×host) translation multiplies walk memory
 * references, and both modes hold up under the invariant checker.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/system.hh"
#include "sim/verify.hh"

namespace tacsim {
namespace {

constexpr std::uint64_t kInstr = 60000;
constexpr std::uint64_t kWarm = 15000;

System
makeSystem(SystemConfig cfg, Benchmark b)
{
    std::vector<std::unique_ptr<Workload>> w;
    for (unsigned t = 0; t < cfg.threads(); ++t)
        w.push_back(makeWorkload(b, cfg.seed + t));
    return System(cfg, std::move(w));
}

std::uint64_t
totalWalkRefs(const PtwStats &s)
{
    std::uint64_t refs = 0;
    for (unsigned l = 0; l < kPtLevels; ++l)
        refs += s.levelReads[l] + s.hostLevelReads[l];
    return refs;
}

TEST(VmE2e, DefaultConfigStaysPureFourK)
{
    // Guard for golden-snapshot identity: with vm knobs at their
    // defaults nothing may touch the huge-page or nested paths.
    SystemConfig cfg;
    ASSERT_FALSE(cfg.vm.anyHugePages());
    ASSERT_FALSE(cfg.vm.nested);
    System sys = makeSystem(cfg, Benchmark::xalancbmk);
    sys.run(kInstr);
    const PtwStats &ps = sys.ptw().stats();
    EXPECT_EQ(ps.hostWalks, 0u);
    EXPECT_EQ(ps.walksBySize[unsigned(PageSize::Size2M)], 0u);
    EXPECT_EQ(ps.walksBySize[unsigned(PageSize::Size1G)], 0u);
    // walks counts at start, walksBySize at completion — a handful may
    // still be in flight when the run stops.
    EXPECT_LE(ps.walksBySize[unsigned(PageSize::Size4K)], ps.walks);
    EXPECT_GE(ps.walksBySize[unsigned(PageSize::Size4K)] + 16, ps.walks);
    EXPECT_EQ(sys.stlb().stats().fillsBySize[unsigned(PageSize::Size2M)],
              0u);
    EXPECT_EQ(sys.hostPageTable(), nullptr);
}

TEST(VmE2e, TwoMegPagesReduceStlbMpki)
{
    SystemConfig base;
    const RunResult rb = runBenchmark(base, Benchmark::mcf, kInstr, kWarm);

    SystemConfig thp = base;
    thp.vm.hugePages2M = 1.0;
    const RunResult rt = runBenchmark(thp, Benchmark::mcf, kInstr, kWarm);

    // 512x coverage per STLB entry: misses must drop hard.
    EXPECT_LT(rt.stlbMpki, rb.stlbMpki * 0.5)
        << "2M pages should slash STLB MPKI (base " << rb.stlbMpki
        << ", thp " << rt.stlbMpki << ")";
}

TEST(VmE2e, FractionalThpLandsBetweenTheExtremes)
{
    SystemConfig base;
    SystemConfig half = base;
    half.vm.hugePages2M = 0.5;
    SystemConfig full = base;
    full.vm.hugePages2M = 1.0;

    const RunResult r0 = runBenchmark(base, Benchmark::mcf, kInstr, kWarm);
    const RunResult rh = runBenchmark(half, Benchmark::mcf, kInstr, kWarm);
    const RunResult r1 = runBenchmark(full, Benchmark::mcf, kInstr, kWarm);
    EXPECT_LT(rh.stlbMpki, r0.stlbMpki);
    EXPECT_LE(r1.stlbMpki, rh.stlbMpki);
}

TEST(VmE2e, HugePageWalksAreShorter)
{
    SystemConfig thp;
    thp.vm.hugePages2M = 1.0;
    System sys = makeSystem(thp, Benchmark::mcf);
    sys.run(kInstr);
    const PtwStats &ps = sys.ptw().stats();
    ASSERT_GT(ps.walks, 0u);
    EXPECT_EQ(ps.walksBySize[unsigned(PageSize::Size2M)], ps.walks);
    EXPECT_EQ(ps.levelReads[0], 0u); // no level-1 tables exist
    // Every walk reads at most 4 levels.
    EXPECT_LE(totalWalkRefs(ps), 4 * ps.walks);
}

TEST(VmE2e, NestedTranslationMultipliesWalkReferences)
{
    // The paper's virtualization motivation: a 2D guest×host walk
    // needs up to 24 references on a 4-level table (35 on 5 levels)
    // where a bare-metal walk needs at most 5. With PSCs live in both
    // dimensions most of that is absorbed, but on a walk-heavy
    // workload every STLB miss must still cost ≥4 references where a
    // PSCL2-hit bare-metal walk needs exactly 1.
    SystemConfig bare;
    System sb = makeSystem(bare, Benchmark::tc);
    sb.run(kInstr);
    const PtwStats &psb = sb.ptw().stats();
    ASSERT_GT(psb.walks, 0u);

    SystemConfig nested = bare;
    nested.vm.nested = true;
    System sn = makeSystem(nested, Benchmark::tc);
    sn.run(kInstr);
    const PtwStats &psn = sn.ptw().stats();
    ASSERT_GT(psn.walks, 0u);
    EXPECT_GT(psn.hostWalks, psn.walks); // >= guest levels + 1 sub-walks

    const double bareRefs =
        double(totalWalkRefs(psb)) / double(psb.walks);
    const double nestedRefs =
        double(totalWalkRefs(psn)) / double(psn.walks);
    EXPECT_GE(nestedRefs, 4.0)
        << "a nested STLB miss should cost >=4x a bare PSCL2-hit walk";
    EXPECT_GE(nestedRefs, 2.5 * bareRefs)
        << "nested walks should multiply references per STLB miss "
           "(bare "
        << bareRefs << ", nested " << nestedRefs << ")";
    // And the slowdown is visible end to end.
    EXPECT_GT(sn.cycle(), sb.cycle());
}

TEST(VmE2e, NestedWithHostHugePagesShortensHostWalks)
{
    SystemConfig nested;
    nested.vm.nested = true;
    System s4k = makeSystem(nested, Benchmark::xalancbmk);
    s4k.run(kInstr);

    SystemConfig nestedThp = nested;
    nestedThp.vm.hostHugePages2M = 1.0;
    System s2m = makeSystem(nestedThp, Benchmark::xalancbmk);
    s2m.run(kInstr);

    const auto hostReads = [](const PtwStats &s) {
        std::uint64_t r = 0;
        for (unsigned l = 0; l < kPtLevels; ++l)
            r += s.hostLevelReads[l];
        return r;
    };
    const double perSubWalk4k = double(hostReads(s4k.ptw().stats())) /
        double(s4k.ptw().stats().hostWalks);
    const double perSubWalk2m = double(hostReads(s2m.ptw().stats())) /
        double(s2m.ptw().stats().hostWalks);
    EXPECT_LT(perSubWalk2m, perSubWalk4k);
}

TEST(VmE2e, CheckerPassesUnderHugePagesAndNesting)
{
    SystemConfig cfg;
    cfg.vm.hugePages2M = 0.5;
    cfg.vm.hugePages1G = 0.1;
    cfg.vm.nested = true;
    cfg.vm.hostHugePages2M = 0.5;
    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(makeWorkload(Benchmark::mcf, cfg.seed));
    System sys(cfg, std::move(w));
    verify::Checker checker(sys, 2000);
    sys.attachChecker(&checker);
    sys.run(30000);
    // The TLB/page-table cross-check verifies every cached entry's PFN
    // and granule against a fresh guest×host walk.
    EXPECT_NO_THROW(checker.checkAll());
    EXPECT_GT(sys.ptw().stats().walksBySize[unsigned(PageSize::Size2M)],
              0u);
}

TEST(VmE2e, VmConfigsAreDeterministic)
{
    SystemConfig cfg;
    cfg.vm.hugePages2M = 0.5;
    cfg.vm.nested = true;
    System a = makeSystem(cfg, Benchmark::mcf);
    System b = makeSystem(cfg, Benchmark::mcf);
    a.run(30000);
    b.run(30000);
    EXPECT_EQ(a.cycle(), b.cycle());
    EXPECT_EQ(a.ptw().stats().hostWalks, b.ptw().stats().hostWalks);
    EXPECT_EQ(a.stlb().stats().misses, b.stlb().stats().misses);
}

} // namespace
} // namespace tacsim
