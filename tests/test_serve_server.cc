/**
 * @file
 * End-to-end tests for the serve daemon (serve/server.hh): a real
 * Server on an ephemeral loopback port, driven through real sockets —
 * job submission and polling, in-flight dedup, persistent-cache hits
 * across a daemon restart with byte-identical stats dumps, error
 * handling for hostile submissions, and graceful drain.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/job_spec.hh"
#include "serve/point_key.hh"
#include "serve/server.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"

namespace tacsim {
namespace serve {
namespace {

constexpr std::uint64_t kInstr = 20000;
constexpr std::uint64_t kWarm = 5000;

std::string
tmpDir(const std::string &stem)
{
    return ::testing::TempDir() + "tacsim_" + stem + "_" +
        std::to_string(::getpid());
}

struct Reply
{
    int status = 0;
    std::string body;
};

/** Blocking one-shot HTTP exchange against 127.0.0.1:@p port. */
Reply
exchange(std::uint16_t port, const std::string &method,
         const std::string &target, const std::string &body = "")
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    std::string req = method + " " + target + " HTTP/1.1\r\n";
    req += "Host: 127.0.0.1\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    req += body;
    EXPECT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(req.size()));

    std::string raw;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        raw.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);

    Reply r;
    const std::size_t split = raw.find("\r\n\r\n");
    if (split == std::string::npos)
        return r;
    r.status = std::atoi(raw.c_str() + raw.find(' ') + 1);
    r.body = raw.substr(split + 4);
    return r;
}

std::string
mcfBody()
{
    return "{\"spec\": \"mcf\", \"instructions\": " +
        std::to_string(kInstr) + ", \"warmup\": " +
        std::to_string(kWarm) + "}";
}

/** Poll /jobs/<id> until terminal; returns the final status object. */
JsonValue
pollToCompletion(std::uint16_t port, std::uint64_t id)
{
    for (int i = 0; i < 3000; ++i) {
        const Reply r =
            exchange(port, "GET", "/jobs/" + std::to_string(id));
        EXPECT_EQ(r.status, 200);
        JsonValue v = parseJson(r.body);
        const std::string &state = v.at("status").asString();
        if (state == "done" || state == "failed")
            return v;
        ::usleep(10000);
    }
    ADD_FAILURE() << "job " << id << " never completed";
    return JsonValue();
}

TEST(ServeServer, HealthAndMetricsRespond)
{
    Server server({});
    server.start();
    EXPECT_NE(server.port(), 0);

    EXPECT_EQ(exchange(server.port(), "GET", "/healthz").body, "ok\n");
    const Reply m = exchange(server.port(), "GET", "/metrics");
    EXPECT_EQ(m.status, 200);
    EXPECT_NE(m.body.find("serve.jobs_submitted 0\n"),
              std::string::npos);
    server.stop();
}

TEST(ServeServer, SubmitPollResultMatchesLocalRun)
{
    Server server({});
    server.start();
    const std::uint16_t port = server.port();

    const Reply r = exchange(port, "POST", "/jobs", mcfBody());
    ASSERT_EQ(r.status, 200) << r.body;
    const JsonValue submitted = parseJson(r.body);
    EXPECT_TRUE(isPointKey(submitted.at("point_key").asString()));

    const JsonValue done =
        pollToCompletion(port, submitted.at("id").asU64());
    ASSERT_EQ(done.at("status").asString(), "done");
    EXPECT_FALSE(done.at("cached").asBool());

    // The daemon's canonical dump must equal a local run's, byte for
    // byte — serving is observation, not perturbation.
    SystemConfig cfg;
    const RunResult local = runSpec(cfg, "mcf", kInstr, kWarm);
    EXPECT_EQ(done.at("stats_dump").asString(), dumpRunResult(local));

    // /results/<key> serves the same bytes as text/plain.
    const Reply res = exchange(
        port, "GET", "/results/" + done.at("point_key").asString());
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, dumpRunResult(local));
    server.stop();
}

TEST(ServeServer, DuplicateSubmissionsShareOneJob)
{
    Server server({});
    server.start();
    const std::uint16_t port = server.port();

    const JsonValue a =
        parseJson(exchange(port, "POST", "/jobs", mcfBody()).body);
    const JsonValue b =
        parseJson(exchange(port, "POST", "/jobs", mcfBody()).body);
    EXPECT_EQ(a.at("id").asU64(), b.at("id").asU64());
    EXPECT_EQ(a.at("point_key").asString(),
              b.at("point_key").asString());

    // A different point gets its own job.
    const JsonValue c = parseJson(
        exchange(port, "POST", "/jobs",
                 "{\"spec\": \"xalancbmk\", \"instructions\": 20000, "
                 "\"warmup\": 5000}")
            .body);
    EXPECT_NE(c.at("id").asU64(), a.at("id").asU64());

    pollToCompletion(port, a.at("id").asU64());
    pollToCompletion(port, c.at("id").asU64());
    const std::string metrics = server.metricsText();
    EXPECT_NE(metrics.find("serve.jobs_submitted 3\n"),
              std::string::npos);
    EXPECT_NE(metrics.find("serve.jobs_deduped 1\n"),
              std::string::npos);
    EXPECT_NE(metrics.find("serve.jobs_completed 2\n"),
              std::string::npos);
    server.stop();
}

TEST(ServeServer, CacheHitAcrossRestartIsByteIdentical)
{
    const std::string dir = tmpDir("serve_restart");
    std::string firstDump;
    std::string key;
    {
        ServerConfig cfg;
        cfg.cacheDir = dir;
        Server server(cfg);
        server.start();
        const JsonValue submitted = parseJson(
            exchange(server.port(), "POST", "/jobs", mcfBody()).body);
        const JsonValue done =
            pollToCompletion(server.port(), submitted.at("id").asU64());
        ASSERT_EQ(done.at("status").asString(), "done");
        firstDump = done.at("stats_dump").asString();
        key = done.at("point_key").asString();
        server.stop();
    }

    // Fresh daemon, same cache dir: the point completes at submission
    // time from the store, with the identical dump.
    ServerConfig cfg;
    cfg.cacheDir = dir;
    Server server(cfg);
    server.start();
    const JsonValue hit = parseJson(
        exchange(server.port(), "POST", "/jobs", mcfBody()).body);
    EXPECT_EQ(hit.at("status").asString(), "done");
    EXPECT_TRUE(hit.at("cached").asBool());
    EXPECT_EQ(hit.at("point_key").asString(), key);
    EXPECT_EQ(hit.at("stats_dump").asString(), firstDump);

    const Reply res = exchange(server.port(), "GET", "/results/" + key);
    EXPECT_EQ(res.body, firstDump);
    server.stop();
}

TEST(ServeServer, HostileSubmissionsAreRejectedNotFatal)
{
    Server server({});
    server.start();
    const std::uint16_t port = server.port();

    EXPECT_EQ(exchange(port, "POST", "/jobs", "not json").status, 400);
    EXPECT_EQ(exchange(port, "POST", "/jobs", "{}").status, 400);
    EXPECT_EQ(exchange(port, "POST", "/jobs",
                       "{\"spec\": \"mcf\", \"bogus\": 1}")
                  .status,
              400);
    EXPECT_EQ(exchange(port, "POST", "/jobs",
                       "{\"spec\": \"mcf\", \"config\": "
                       "{\"no_such_knob\": 1}}")
                  .status,
              400);
    EXPECT_EQ(exchange(port, "GET", "/nope").status, 404);
    EXPECT_EQ(exchange(port, "GET", "/jobs/999").status, 404);
    EXPECT_EQ(exchange(port, "GET", "/results/zzz").status, 404);
    EXPECT_EQ(exchange(port, "DELETE", "/jobs").status, 405);

    // Still healthy after all of that.
    EXPECT_EQ(exchange(port, "GET", "/healthz").status, 200);
    server.stop();
}

TEST(ServeServer, FailedJobsReportTheError)
{
    Server server({});
    server.start();

    // A nonexistent trace cannot even be hashed: rejected at submit.
    EXPECT_EQ(exchange(server.port(), "POST", "/jobs",
                       "{\"spec\": \"trace:/nonexistent/f.tactrc\"}")
                  .status,
              400);

    // A malformed trace hashes fine (the key covers raw bytes) but the
    // worker fails parsing it — the job turns Failed, not the daemon.
    const std::string path = tmpDir("bad_trace") + ".tactrc";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not a tacsim-trace-v1 file", f);
        std::fclose(f);
    }
    const JsonValue submitted = parseJson(
        exchange(server.port(), "POST", "/jobs",
                 "{\"spec\": \"trace:" + path + "\"}")
            .body);
    const JsonValue done =
        pollToCompletion(server.port(), submitted.at("id").asU64());
    EXPECT_EQ(done.at("status").asString(), "failed");
    EXPECT_FALSE(done.at("error").asString().empty());
    std::remove(path.c_str());
    server.stop();
}

TEST(ServeServer, ConfigOverridesChangeThePoint)
{
    Server server({});
    server.start();
    const std::uint16_t port = server.port();

    const JsonValue base =
        parseJson(exchange(port, "POST", "/jobs", mcfBody()).body);
    const JsonValue translated = parseJson(
        exchange(port, "POST", "/jobs",
                 "{\"spec\": \"mcf\", \"instructions\": 20000, "
                 "\"warmup\": 5000, "
                 "\"config\": {\"translation_aware\": true}}")
            .body);
    EXPECT_NE(base.at("point_key").asString(),
              translated.at("point_key").asString());

    // The override actually reached the simulation: the translated run
    // matches a local translation-aware run byte for byte.
    const JsonValue done =
        pollToCompletion(port, translated.at("id").asU64());
    ASSERT_EQ(done.at("status").asString(), "done");
    SystemConfig cfg;
    applyTranslationAware(cfg, TranslationAwareOptions{});
    const RunResult local = runSpec(cfg, "mcf", kInstr, kWarm);
    EXPECT_EQ(done.at("stats_dump").asString(), dumpRunResult(local));

    pollToCompletion(port, base.at("id").asU64());
    server.stop();
}

TEST(ServeServer, StopDrainsGracefully)
{
    Server server({});
    server.start();
    const std::uint16_t port = server.port();
    const JsonValue submitted =
        parseJson(exchange(port, "POST", "/jobs", mcfBody()).body);
    server.stop(); // in-flight work finishes or fails; never hangs

    // After the drain the job is terminal (done if a worker picked it
    // up in time, failed("server shutting down") otherwise).
    const std::uint64_t id = submitted.at("id").asU64();
    (void)id;
    const std::string metrics = server.metricsText();
    EXPECT_NE(metrics.find("serve.jobs_queued 0\n"), std::string::npos);
}

} // namespace
} // namespace serve
} // namespace tacsim
