/**
 * @file
 * Tests for the hierarchy invariant verifier: a clean system must pass
 * every check, and each deliberately seeded corruption (duplicate tag,
 * out-of-range RRPV, stale eviction metadata, MSHR for a resident line,
 * TLB entry disagreeing with the page table) must trip exactly the
 * invariant it targets, identified by its stable tag and component.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/repl/rrip.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "sim/verify.hh"
#include "vm/tlb.hh"
#include "test_util.hh"

namespace tacsim {
namespace {

using test::MockMemory;
using test::makeLoad;
using verify::Checker;
using verify::InvariantViolation;

/**
 * Run @p fn and return the InvariantViolation it throws. Fails the test
 * if nothing (or anything else) is thrown.
 */
template <typename Fn>
InvariantViolation
expectViolation(Fn &&fn)
{
    try {
        fn();
    } catch (const InvariantViolation &v) {
        return v;
    } catch (const std::exception &e) {
        ADD_FAILURE() << "wrong exception type: " << e.what();
        return InvariantViolation("", "", "");
    }
    ADD_FAILURE() << "expected InvariantViolation, nothing thrown";
    return InvariantViolation("", "", "");
}

struct VerifyCacheTest : ::testing::Test
{
    EventQueue eq;
    MockMemory lower{eq, 100};

    CacheParams
    smallParams()
    {
        CacheParams p;
        p.name = "L1";
        p.sets = 4;
        p.ways = 2;
        p.latency = 5;
        p.mshrs = 4;
        p.mshrReserveForDemand = 1;
        p.level = RespSource::L1D;
        return p;
    }

    std::unique_ptr<Cache>
    makeCache(CacheParams p)
    {
        return std::make_unique<Cache>(
            p, eq, &lower, makePolicy(PolicyKind::LRU, p.sets, p.ways));
    }

    /** Fill one line and drain so the cache is quiescent. */
    void
    fillLine(Cache &c, Addr paddr)
    {
        c.access(makeLoad(paddr));
        test::drain(eq);
        ASSERT_TRUE(c.contains(paddr));
    }
};

TEST_F(VerifyCacheTest, CleanCachePassesAfterTraffic)
{
    auto c = makeCache(smallParams());
    for (Addr a : {0x1000, 0x2000, 0x2040, 0x9000, 0x1000})
        c->access(makeLoad(a));
    test::drain(eq);
    EXPECT_NO_THROW(c->checkInvariants());
}

TEST_F(VerifyCacheTest, DuplicateTagTrips)
{
    auto c = makeCache(smallParams());
    fillLine(*c, 0x1000);

    const std::uint32_t set = c->setIndex(0x1000);
    // Clone the resident block into the other way of its set.
    c->blockAt(set, 1) = c->blockAt(set, 0);

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "duplicate-tag");
    EXPECT_EQ(v.component(), "L1");
    EXPECT_EQ(v.set(), static_cast<std::int64_t>(set));
}

TEST_F(VerifyCacheTest, StaleReplayFlagOnInvalidBlockTrips)
{
    auto c = makeCache(smallParams());
    fillLine(*c, 0x1000);

    // Model a buggy eviction that forgot to clear the traffic class:
    // the way is invalid but still tagged as holding a replay block.
    BlockMeta &b = c->blockAt(c->setIndex(0x1000), 0);
    b.valid = false;
    b.cat = BlockCat::Replay;

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "stale-meta");
    EXPECT_EQ(v.component(), "L1");
}

TEST_F(VerifyCacheTest, StalePrefetchOriginTrips)
{
    auto c = makeCache(smallParams());
    fillLine(*c, 0x2000);

    BlockMeta &b = c->blockAt(c->setIndex(0x2000), 0);
    b.valid = false;
    b.prefetchOrigin = PrefetchOrigin::Atp;

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "stale-meta");
}

TEST_F(VerifyCacheTest, EvictionClearsMetadata)
{
    // Regression guard for the invariant itself: filling both ways of a
    // set and forcing an eviction must leave no stale metadata behind.
    auto c = makeCache(smallParams());
    const std::uint32_t set = c->setIndex(0x1000);
    for (Addr a : {0x1000, 0x1100, 0x1200}) {
        ASSERT_EQ(c->setIndex(a), set);
        c->access(makeLoad(a));
        test::drain(eq);
    }
    EXPECT_NO_THROW(c->checkInvariants());
}

TEST_F(VerifyCacheTest, MshrForResidentLineTrips)
{
    auto c = makeCache(smallParams());
    c->access(makeLoad(0x3000));
    // Past the lookup latency (MSHR allocated) but well before the mock
    // memory answers at +100.
    eq.advanceTo(20);

    // Magically install the line the MSHR is still fetching.
    BlockMeta &b = c->blockAt(c->setIndex(0x3000), 0);
    b.valid = true;
    b.tag = blockAlign(0x3000);

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "mshr-resident");
    EXPECT_EQ(v.component(), "L1");
}

TEST_F(VerifyCacheTest, StatsDesyncTrips)
{
    auto c = makeCache(smallParams());
    fillLine(*c, 0x1000);

    // A hit that was never accounted as an access.
    c->access(makeLoad(0x1000));
    test::drain(eq);
    const_cast<CacheStats &>(c->stats())
        .accesses[static_cast<std::size_t>(BlockCat::NonReplay)] -= 1;

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "stats-accounting");
}

/** SRRIP with the protected RRPV write exposed as a corruption seam. */
struct PokeableSrrip : SrripPolicy
{
    using SrripPolicy::SrripPolicy;

    void
    poke(std::uint32_t set, std::uint32_t way, std::uint8_t v)
    {
        setRrpv(set, way, v);
    }
};

TEST_F(VerifyCacheTest, RrpvOutOfRangeTrips)
{
    CacheParams p = smallParams();
    auto pol = std::make_unique<PokeableSrrip>(p.sets, p.ways, ReplOpts{});
    PokeableSrrip *srrip = pol.get();
    Cache c(p, eq, &lower, std::move(pol));
    EXPECT_NO_THROW(c.checkInvariants());

    srrip->poke(2, 1, 0x7f);

    auto v = expectViolation([&] { c.checkInvariants(); });
    EXPECT_EQ(v.invariant(), "rrpv-range");
    EXPECT_EQ(v.component(), "L1/SRRIP");
    EXPECT_EQ(v.set(), 2);
    EXPECT_EQ(v.way(), 1);
}

/**
 * LLC-arbitration bookkeeping: a small shared cache with the per-core
 * MSHR quota and bandwidth-token bucket on, corrupted through the
 * cache's test hooks so each arb invariant trips by its exact tag.
 */
struct VerifyArbTest : VerifyCacheTest
{
    CacheParams
    arbParams()
    {
        CacheParams p = smallParams();
        p.name = "LLC";
        p.mshrs = 8;
        p.level = RespSource::LLC;
        p.arb.cores = 2;
        p.arb.smt = 1;
        p.arb.mshrQuota = 2;
        p.arb.bwTokens = 4;
        p.arb.bwWindow = 64;
        return p;
    }

    /** A demand load attributed to @p core. */
    MemRequestPtr
    ownedLoad(Addr paddr, std::uint16_t core)
    {
        MemRequestPtr req = makeLoad(paddr);
        req->cpu = core;
        return req;
    }
};

TEST_F(VerifyArbTest, CleanArbitratedTrafficPasses)
{
    auto c = makeCache(arbParams());
    for (Addr a : {0x1000, 0x2000, 0x3000, 0x4000})
        c->access(ownedLoad(a, static_cast<std::uint16_t>(a >> 12 & 1)));
    // Mid-flight (MSHRs live, tokens spent) and drained states must
    // both pass.
    eq.advanceTo(20);
    EXPECT_NO_THROW(c->checkInvariants());
    test::drain(eq);
    EXPECT_NO_THROW(c->checkInvariants());
}

TEST_F(VerifyArbTest, MshrCounterDriftTrips)
{
    auto c = makeCache(arbParams());
    c->access(ownedLoad(0x1000, 0));
    eq.advanceTo(20); // MSHR allocated, fill still 80 cycles out

    // Model a leaked decrement: the arbiter thinks core 0 freed an
    // MSHR it still holds.
    c->arbMshrCountFor(0) = 0;

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "arb-mshr-quota");
    EXPECT_EQ(v.component(), "LLC");
    EXPECT_NE(std::string(v.what()).find(
                  "owns 1 live MSHRs but the arbiter counter says 0"),
              std::string::npos);
}

TEST_F(VerifyArbTest, PhantomOwnershipTrips)
{
    auto c = makeCache(arbParams());
    // No traffic at all, but the counter claims core 1 holds MSHRs.
    c->arbMshrCountFor(1) = 3;

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "arb-mshr-quota");
    EXPECT_NE(std::string(v.what()).find(
                  "owns 0 live MSHRs but the arbiter counter says 3"),
              std::string::npos);
}

TEST_F(VerifyArbTest, TokenOverspendTrips)
{
    auto c = makeCache(arbParams());
    // 4 tokens granted per 64-cycle window; a spend of 999 cannot be
    // the result of legal metering.
    c->arbTokensFor(1) = 999;

    auto v = expectViolation([&] { c->checkInvariants(); });
    EXPECT_EQ(v.invariant(), "arb-token-conservation");
    EXPECT_EQ(v.component(), "LLC");
    EXPECT_NE(std::string(v.what()).find(
                  "spent 999 bandwidth tokens of 4 granted per window"),
              std::string::npos);
}

TEST(VerifyTlbTest, DuplicateKeyTrips)
{
    Tlb t("STLB", 64, 4, 1);
    t.fill(0, Addr{5} << kPageBits, 0xaa000);
    EXPECT_NO_THROW(t.checkInvariants());

    // Same (asid, vpn) in two ways of set 5.
    t.pokeForTest(5, 2, 0, 5, 0xbb000);

    try {
        t.checkInvariants();
        FAIL() << "duplicate key not detected";
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.invariant(), "duplicate-key");
        EXPECT_EQ(v.component(), "STLB");
        EXPECT_EQ(v.set(), 5);
    }
}

TEST(VerifyTlbTest, WrongSetTrips)
{
    Tlb t("DTLB", 64, 4, 1);
    // vpn 5 belongs in set 5 (16 sets), not set 3.
    t.pokeForTest(3, 0, 0, 5, 0xaa000);

    try {
        t.checkInvariants();
        FAIL() << "set mismatch not detected";
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.invariant(), "set-mismatch");
        EXPECT_EQ(v.component(), "DTLB");
    }
}

TEST(VerifyTlbTest, UnalignedPfnTrips)
{
    Tlb t("DTLB", 64, 4, 1);
    t.pokeForTest(5, 0, 0, 5, 0xaa040); // not page-aligned

    try {
        t.checkInvariants();
        FAIL() << "unaligned PFN not detected";
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.invariant(), "pfn-align");
    }
}

TEST(VerifyViolationTest, MessageCarriesContext)
{
    InvariantViolation v("LLC", "duplicate-tag", "tag=0x1000", 7, 3);
    const std::string msg = v.what();
    EXPECT_NE(msg.find("LLC"), std::string::npos);
    EXPECT_NE(msg.find("duplicate-tag"), std::string::npos);
    EXPECT_NE(msg.find("tag=0x1000"), std::string::npos);
    EXPECT_EQ(v.set(), 7);
    EXPECT_EQ(v.way(), 3);
}

TEST(VerifyCheckMacroTest, CheckAbortsOnFailure)
{
    EXPECT_DEATH_IF_SUPPORTED(TACSIM_CHECK(1 + 1 == 3),
                              "check failed: 1 \\+ 1 == 3");
    // And the passing form is a no-op.
    TACSIM_CHECK(1 + 1 == 2);
}

/** Full-System fixture: a short mcf run leaves every structure warm. */
struct VerifySystemTest : ::testing::Test
{
    SystemConfig cfg;
    std::unique_ptr<System> sys;
    std::unique_ptr<Checker> checker;

    void
    SetUp() override
    {
        std::vector<std::unique_ptr<Workload>> w;
        w.push_back(makeWorkload(Benchmark::mcf, cfg.seed));
        sys = std::make_unique<System>(cfg, std::move(w));
        checker = std::make_unique<Checker>(*sys, 2000);
        sys->attachChecker(checker.get());
        sys->run(20000);
    }
};

TEST_F(VerifySystemTest, CleanHierarchyPasses)
{
    EXPECT_NO_THROW(checker->checkAll());
#ifdef TACSIM_VERIFY_ENABLED
    // In verify builds the run loop itself drove periodic checks plus
    // the drain-point check.
    EXPECT_GT(checker->checksRun(), 1u);
#endif
}

TEST_F(VerifySystemTest, LlcDuplicateTagTrips)
{
    Cache &llc = sys->llc();
    const std::uint32_t sets = llc.params().sets;
    const std::uint32_t ways = llc.params().ways;

    // Find a set holding a valid block next to an invalid way.
    for (std::uint32_t s = 0; s < sets; ++s) {
        std::int64_t validWay = -1, freeWay = -1;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (llc.blockAt(s, w).valid)
                validWay = w;
            else
                freeWay = w;
        }
        if (validWay < 0 || freeWay < 0)
            continue;

        llc.blockAt(s, static_cast<std::uint32_t>(freeWay)) =
            llc.blockAt(s, static_cast<std::uint32_t>(validWay));

        auto v = expectViolation([&] { checker->checkAll(); });
        EXPECT_EQ(v.invariant(), "duplicate-tag");
        EXPECT_EQ(v.component(), "LLC");
        EXPECT_EQ(v.set(), static_cast<std::int64_t>(s));
        return;
    }
    FAIL() << "no LLC set with both a valid block and a free way";
}

TEST_F(VerifySystemTest, TlbPageTableMismatchTrips)
{
    Tlb &stlb = sys->stlb();
    // vpn == set index for the STLB's power-of-two set count, so placing
    // vpn 3 in set 3 passes the structural checks; only the cross-check
    // against the page table can catch the bogus PFN.
    const Addr vpn = 3;
    stlb.pokeForTest(static_cast<std::uint32_t>(vpn % stlb.sets()), 0, 0,
                     vpn, 0x7ffffffff000ull);

    auto v = expectViolation([&] { checker->checkAll(); });
    EXPECT_EQ(v.invariant(), "tlb-pagetable");
    EXPECT_EQ(v.component(), "STLB");
}

TEST_F(VerifySystemTest, PeriodicPacingHonorsInterval)
{
    Checker paced(*sys, 5000);
    paced.maybeCheck(4999);
    EXPECT_EQ(paced.checksRun(), 0u); // not yet due
    paced.maybeCheck(5000);
    EXPECT_EQ(paced.checksRun(), 1u);
    paced.maybeCheck(5001);
    EXPECT_EQ(paced.checksRun(), 1u); // interval restarts

    Checker off(*sys, 0); // 0 = drain points / explicit only
    off.maybeCheck(1u << 30);
    EXPECT_EQ(off.checksRun(), 0u);
}

} // namespace
} // namespace tacsim
