/**
 * @file
 * Multicore golden-run snapshots: tiny-budget 16-core and 32-core
 * heterogeneous mixes built from declarative TopologySpec strings,
 * with sliced LLCs and per-core arbitration engaged, compared field by
 * field against snapshots in tests/golden/. This pins the scale-out
 * composition path (slicing, ring hops, MSHR quotas, bandwidth tokens,
 * derived DRAM channels) the same way test_golden.cc pins the
 * single-core machine.
 *
 * Budgets are fixed constants (not TACSIM_INSTRUCTIONS) so the
 * snapshots cannot drift with the environment. Regeneration:
 * TACSIM_REGEN_GOLDEN=1 (scripts/regen_golden.sh drives this).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/stats_dump.hh"
#include "sim/topology.hh"

#ifndef TACSIM_GOLDEN_DIR
#error "TACSIM_GOLDEN_DIR must point at tests/golden"
#endif

namespace tacsim {
namespace {

struct MulticoreGoldenPoint
{
    const char *name;     ///< snapshot file stem
    const char *topology; ///< declarative machine spec
    std::uint64_t instructions;
    std::uint64_t warmup;
};

/** Deterministic heterogeneous mix: cycle through the suite. */
std::vector<Benchmark>
cyclingMix(unsigned threads)
{
    std::vector<Benchmark> mix;
    mix.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        mix.push_back(kAllBenchmarks[t % kAllBenchmarks.size()]);
    return mix;
}

bool
regenRequested()
{
    const char *v = std::getenv("TACSIM_REGEN_GOLDEN");
    return v && *v && std::string(v) != "0";
}

class MulticoreGoldenTest
    : public ::testing::TestWithParam<MulticoreGoldenPoint>
{
};

TEST_P(MulticoreGoldenTest, MatchesSnapshot)
{
    const MulticoreGoldenPoint &p = GetParam();
    const SystemConfig cfg = configFromTopology(p.topology);
    const RunResult r = runMix(cfg, cyclingMix(cfg.threads()),
                               p.instructions, p.warmup);
    const std::string dump = dumpRunResult(r);
    const std::string path =
        std::string(TACSIM_GOLDEN_DIR) + "/" + p.name + ".txt";

    if (regenRequested()) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << dump;
        out.close();
        ASSERT_TRUE(out.good()) << "write to " << path << " failed";
        std::printf("regenerated %s\n", path.c_str());
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << path
        << " — run scripts/regen_golden.sh to create it";
    std::ostringstream expected;
    expected << in.rdbuf();

    const std::vector<std::string> diffs =
        diffDumps(expected.str(), dump);
    if (diffs.empty())
        return;
    std::ostringstream msg;
    msg << "golden mismatch for " << p.name << " (topology "
        << p.topology << ", " << diffs.size() << " field(s)):\n";
    for (const std::string &d : diffs)
        msg << "  " << d << "\n";
    msg << "If the change is intentional, refresh with "
           "scripts/regen_golden.sh and review the diff.";
    FAIL() << msg.str();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MulticoreGoldenTest,
    ::testing::Values(
        MulticoreGoldenPoint{
            "mc16_mix", "cores=16,slices=4,slice_lat=2,mshr_quota=64,bw=32",
            4000, 1000},
        MulticoreGoldenPoint{
            "mc32_mix", "cores=32,slices=8,slice_lat=2,mshr_quota=32,bw=32",
            2000, 500}),
    [](const ::testing::TestParamInfo<MulticoreGoldenPoint> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace tacsim
