/**
 * @file
 * Unit tests for the RRIP family: SRRIP transitions, BRRIP bimodality,
 * DRRIP set-dueling, and the paper's T-DRRIP insertion overrides
 * (translations at RRPV=0, replays at RRPV=3, Fig. 9).
 */

#include <gtest/gtest.h>

#include "cache/repl/rrip.hh"

namespace tacsim {
namespace {

AccessInfo
dataAccess(Addr block = 0x1000, Addr ip = 0x400000)
{
    AccessInfo ai;
    ai.blockAddr = block;
    ai.ip = ip;
    ai.cat = BlockCat::NonReplay;
    return ai;
}

AccessInfo
replayAccess(Addr block = 0x2000)
{
    AccessInfo ai = dataAccess(block);
    ai.cat = BlockCat::Replay;
    ai.isReplay = true;
    return ai;
}

AccessInfo
leafTranslation(Addr block = 0x3000)
{
    AccessInfo ai = dataAccess(block);
    ai.cat = BlockCat::PtLeaf;
    ai.ptLevel = 1;
    ai.leafPte = true;
    return ai;
}

TEST(Srrip, InsertsAtLongInterval)
{
    SrripPolicy p(4, 4, {});
    p.onFill(0, 0, dataAccess());
    EXPECT_EQ(p.rrpv(0, 0), RripBase::kMaxRrpv - 1);
}

TEST(Srrip, PromotesToZeroOnHit)
{
    SrripPolicy p(4, 4, {});
    p.onFill(0, 1, dataAccess());
    p.onHit(0, 1, dataAccess());
    EXPECT_EQ(p.rrpv(0, 1), 0);
}

TEST(Srrip, VictimPrefersDistantAndAges)
{
    SrripPolicy p(1, 2, {});
    p.onFill(0, 0, dataAccess(0x0));
    p.onFill(0, 1, dataAccess(0x40));
    p.onHit(0, 0, dataAccess(0x0)); // way0 -> 0, way1 stays at 2
    std::vector<BlockMeta> blocks(2);
    const std::uint32_t v = p.victim(0, dataAccess(0x80), blocks.data());
    EXPECT_EQ(v, 1u); // aged to 3 first
    // Aging incremented way0 as well.
    EXPECT_EQ(p.rrpv(0, 0), 1);
}

TEST(Brrip, InsertsMostlyDistant)
{
    BrripPolicy p(1, 16, {}, 123);
    unsigned distant = 0;
    for (std::uint32_t w = 0; w < 16; ++w) {
        p.onFill(0, w, dataAccess(Addr(w) * 64));
        distant += p.rrpv(0, w) == RripBase::kMaxRrpv;
    }
    EXPECT_GE(distant, 12u); // ~31/32 expected
}

TEST(Drrip, LeaderSetsAreDisjoint)
{
    DrripPolicy p(1024, 16, {}, 1);
    unsigned srrip = 0, brrip = 0;
    for (std::uint32_t s = 0; s < 1024; ++s) {
        EXPECT_FALSE(p.isSrripLeader(s) && p.isBrripLeader(s));
        srrip += p.isSrripLeader(s);
        brrip += p.isBrripLeader(s);
    }
    EXPECT_EQ(srrip, DrripPolicy::kLeaderSets);
    EXPECT_EQ(brrip, DrripPolicy::kLeaderSets);
}

TEST(Drrip, SmallCacheKeepsFollowerSets)
{
    // 16 sets < 2*kLeaderSets used to make every even set an SRRIP
    // leader and every odd set a BRRIP leader, leaving zero followers
    // for PSEL to steer. Leaders are now capped at sets/4 per policy.
    DrripPolicy p(16, 4, {}, 1);
    unsigned srrip = 0, brrip = 0, followers = 0;
    for (std::uint32_t s = 0; s < 16; ++s) {
        EXPECT_FALSE(p.isSrripLeader(s) && p.isBrripLeader(s));
        srrip += p.isSrripLeader(s);
        brrip += p.isBrripLeader(s);
        followers += !p.isSrripLeader(s) && !p.isBrripLeader(s);
    }
    EXPECT_GT(srrip, 0u);
    EXPECT_EQ(srrip, brrip);
    EXPECT_LE(srrip, 4u); // at most sets/4 per policy
    EXPECT_GE(followers, 8u); // at least half the sets follow PSEL
}

TEST(Drrip, TinyCacheRunsWithoutLeaders)
{
    // Fewer than 4 sets: no leaders at all; insertion must still work
    // (pure SRRIP at the PSEL default) without dividing by zero.
    DrripPolicy p(2, 4, {}, 1);
    for (std::uint32_t s = 0; s < 2; ++s) {
        EXPECT_FALSE(p.isSrripLeader(s));
        EXPECT_FALSE(p.isBrripLeader(s));
    }
    p.onFill(0, 0, dataAccess());
    EXPECT_EQ(p.rrpv(0, 0), RripBase::kMaxRrpv - 1); // SRRIP insertion
}

TEST(Drrip, PselMovesWithLeaderMisses)
{
    DrripPolicy p(1024, 16, {}, 1);
    const int before = p.psel();
    // Misses (fills) in SRRIP leader sets vote for BRRIP (increment).
    std::uint32_t srripLeader = 0;
    while (!p.isSrripLeader(srripLeader))
        ++srripLeader;
    for (int i = 0; i < 10; ++i)
        p.onFill(srripLeader, 0, dataAccess());
    EXPECT_GT(p.psel(), before);

    std::uint32_t brripLeader = 0;
    while (!p.isBrripLeader(brripLeader))
        ++brripLeader;
    for (int i = 0; i < 20; ++i)
        p.onFill(brripLeader, 0, dataAccess());
    EXPECT_LT(p.psel(), before + 10);
}

TEST(TDrrip, LeafTranslationsInsertAtZero)
{
    ReplOpts opts;
    opts.translationRrpv0 = true;
    opts.replayEvictFast = true;
    DrripPolicy p(64, 8, opts, 1);
    p.onFill(5, 0, leafTranslation());
    EXPECT_EQ(p.rrpv(5, 0), 0);
    EXPECT_EQ(p.name(), "T-DRRIP");
}

TEST(TDrrip, UpperLevelTranslationsNotPinned)
{
    ReplOpts opts;
    opts.translationRrpv0 = true;
    DrripPolicy p(64, 8, opts, 1);
    AccessInfo upper = leafTranslation();
    upper.ptLevel = 3;
    upper.leafPte = false;
    upper.cat = BlockCat::PtUpper;
    p.onFill(5, 1, upper);
    EXPECT_GT(p.rrpv(5, 1), 0);
}

TEST(TDrrip, ReplaysInsertDeadOnArrival)
{
    ReplOpts opts;
    opts.translationRrpv0 = true;
    opts.replayEvictFast = true;
    DrripPolicy p(64, 8, opts, 1);
    p.onFill(5, 2, replayAccess());
    EXPECT_EQ(p.rrpv(5, 2), RripBase::kMaxRrpv);
}

TEST(TDrrip, Fig10AblationInsertsReplaysAtZero)
{
    ReplOpts opts;
    opts.translationRrpv0 = true;
    opts.replayRrpv0 = true; // the ablated variant
    DrripPolicy p(64, 8, opts, 1);
    p.onFill(5, 2, replayAccess());
    EXPECT_EQ(p.rrpv(5, 2), 0);
}

TEST(TDrrip, AtpPrefetchesInsertDistant)
{
    ReplOpts opts;
    opts.translationRrpv0 = true;
    DrripPolicy p(64, 8, opts, 1);
    AccessInfo pf;
    pf.blockAddr = 0x4000;
    pf.cat = BlockCat::Prefetch;
    pf.distantHint = true;
    pf.origin = PrefetchOrigin::Atp;
    p.onFill(5, 3, pf);
    EXPECT_EQ(p.rrpv(5, 3), RripBase::kMaxRrpv);
}

TEST(TDrrip, PromotionUnchangedFromDrrip)
{
    ReplOpts opts;
    opts.translationRrpv0 = true;
    opts.replayEvictFast = true;
    DrripPolicy p(64, 8, opts, 1);
    p.onFill(5, 2, replayAccess());
    p.onHit(5, 2, replayAccess());
    EXPECT_EQ(p.rrpv(5, 2), 0); // reuse promotes even replays
}

} // namespace
} // namespace tacsim
