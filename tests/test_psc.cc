/**
 * @file
 * Unit tests for the paging-structure caches: deepest-hit-wins lookup,
 * per-level fills, capacity/LRU, ASID isolation.
 */

#include <gtest/gtest.h>

#include "vm/psc.hh"

namespace tacsim {
namespace {

TEST(Psc, ColdLookupStartsFromRoot)
{
    PagingStructureCaches pscs;
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, 0x1234000, frame), kPtLevels);
    EXPECT_EQ(pscs.stats().fullMisses, 1u);
}

TEST(Psc, DeepestHitWins)
{
    PagingStructureCaches pscs;
    const Addr va = Addr{0x40002000};
    pscs.fill(0, va, 4, 0xaaa000); // PSCL4: skip to level 3
    pscs.fill(0, va, 2, 0xbbb000); // PSCL2: skip to leaf
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, va, frame), 1u);
    EXPECT_EQ(frame, 0xbbb000u);
}

TEST(Psc, PartialHitSkipsSomeLevels)
{
    PagingStructureCaches pscs;
    const Addr va = Addr{0x40002000};
    pscs.fill(0, va, 4, 0xccc000);
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, va, frame), 3u);
    EXPECT_EQ(frame, 0xccc000u);
    EXPECT_EQ(pscs.stats().hitsAtLevel[3], 1u);
}

TEST(Psc, TagCoversOnlyUpperBits)
{
    // Two addresses in the same 2MB region share the PSCL2 tag.
    PagingStructureCaches pscs;
    const Addr va1 = Addr{0x40000000};
    const Addr va2 = va1 + 5 * kPageSize;
    pscs.fill(0, va1, 2, 0xddd000);
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, va2, frame), 1u);
    EXPECT_EQ(frame, 0xddd000u);
}

TEST(Psc, CapacityEvictsLru)
{
    // PSCL5 has 2 entries.
    PagingStructureCaches pscs;
    const Addr base = Addr{1} << 48;
    pscs.fill(0, base * 1, 5, 0x1000);
    pscs.fill(0, base * 2, 5, 0x2000);
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, base * 1, frame), 4u); // refresh #1
    pscs.fill(0, base * 3, 5, 0x3000);              // evicts #2
    EXPECT_EQ(pscs.lookup(0, base * 2, frame), kPtLevels);
    EXPECT_EQ(pscs.lookup(0, base * 1, frame), 4u);
    EXPECT_EQ(pscs.lookup(0, base * 3, frame), 4u);
}

TEST(Psc, AsidsAreIsolated)
{
    PagingStructureCaches pscs;
    const Addr va = Addr{0x40002000};
    pscs.fill(1, va, 2, 0xeee000);
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(2, va, frame), kPtLevels);
    EXPECT_EQ(pscs.lookup(1, va, frame), 1u);
}

TEST(Psc, FlushClearsAllLevels)
{
    PagingStructureCaches pscs;
    const Addr va = Addr{0x40002000};
    for (unsigned level = 2; level <= 5; ++level)
        pscs.fill(0, va, level, Addr(level) << 20);
    pscs.flush();
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, va, frame), kPtLevels);
}

TEST(Psc, FillRefreshesExistingEntry)
{
    PagingStructureCaches pscs;
    const Addr va = Addr{0x40002000};
    pscs.fill(0, va, 2, 0x111000);
    pscs.fill(0, va, 2, 0x222000);
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, va, frame), 1u);
    EXPECT_EQ(frame, 0x222000u);
}

TEST(Psc, OutOfRangeLevelsIgnored)
{
    PagingStructureCaches pscs;
    pscs.fill(0, 0x1000, 1, 0x111000); // leaf level: no PSC
    pscs.fill(0, 0x1000, 6, 0x111000); // beyond root
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, 0x1000, frame), kPtLevels);
}

} // namespace
} // namespace tacsim
