/**
 * @file
 * Page-size diversity tests: huge-page frame allocation, the THP-style
 * promotion policy, early-terminating walks, page-size-aware TLB and PSC
 * behavior, and the nested (2D guest×host) walker.
 */

#include <gtest/gtest.h>

#include "sim/verify.hh"
#include "test_util.hh"
#include "vm/ptw.hh"

namespace tacsim {
namespace {

using verify::InvariantViolation;

// --------------------------------------------------------------------------
// FrameAllocator
// --------------------------------------------------------------------------

TEST(FrameAllocatorHuge, HugeFramesAreNaturallyAligned)
{
    FrameAllocator fa;
    EXPECT_EQ(fa.alloc(), kPageSize);
    const Addr f2m = fa.alloc(pageBytes(PageSize::Size2M));
    EXPECT_EQ(f2m % pageBytes(PageSize::Size2M), 0u);
    const Addr f1g = fa.alloc(pageBytes(PageSize::Size1G));
    EXPECT_EQ(f1g % pageBytes(PageSize::Size1G), 0u);
    EXPECT_GT(f1g, f2m);
    // Small allocations continue right after the huge frame.
    EXPECT_EQ(fa.alloc(), f1g + pageBytes(PageSize::Size1G));
}

// --------------------------------------------------------------------------
// HugePagePolicy
// --------------------------------------------------------------------------

TEST(HugePagePolicy, ExactAtTheEndpoints)
{
    const HugePagePolicy all{1.0, 1.0, 7};
    const HugePagePolicy none{0.0, 0.0, 7};
    for (Addr region = 0; region < 256; ++region) {
        EXPECT_TRUE(all.promotes(region, PageSize::Size2M));
        EXPECT_TRUE(all.promotes(region, PageSize::Size1G));
        EXPECT_FALSE(none.promotes(region, PageSize::Size2M));
        EXPECT_FALSE(none.promotes(region, PageSize::Size1G));
    }
    EXPECT_TRUE(none.none());
    EXPECT_FALSE(all.none());
}

TEST(HugePagePolicy, FractionIsDeterministicAndRoughlyHonored)
{
    const HugePagePolicy p{0.5, 0.0, 42};
    unsigned promoted = 0;
    for (Addr region = 0; region < 1000; ++region) {
        const bool first = p.promotes(region, PageSize::Size2M);
        EXPECT_EQ(first, p.promotes(region, PageSize::Size2M));
        promoted += first;
    }
    EXPECT_GT(promoted, 350u);
    EXPECT_LT(promoted, 650u);
}

TEST(HugePagePolicy, SeedChangesTheDraw)
{
    const HugePagePolicy a{0.5, 0.0, 1};
    const HugePagePolicy b{0.5, 0.0, 2};
    unsigned differ = 0;
    for (Addr region = 0; region < 256; ++region)
        differ += a.promotes(region, PageSize::Size2M) !=
            b.promotes(region, PageSize::Size2M);
    EXPECT_GT(differ, 0u);
}

// --------------------------------------------------------------------------
// PageTable with huge mappings
// --------------------------------------------------------------------------

TEST(PageTableHuge, MapRegionOverridesGranule)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const Addr giga = pageBytes(PageSize::Size1G);
    pt.mapRegion(giga, giga, PageSize::Size1G);
    EXPECT_EQ(pt.pageSizeOf(giga + 0x1234), PageSize::Size1G);
    EXPECT_EQ(pt.pageSizeOf(0x1000), PageSize::Size4K);
}

TEST(PageTableHuge, TwoMegWalkTerminatesAtLevelTwo)
{
    FrameAllocator fa;
    PageTable pt(fa, HugePagePolicy{1.0, 0.0, 1});
    const Addr va = 0x40000000 | 0x123456;
    const auto r = pt.walk(va);
    EXPECT_EQ(r.leafLevel, 2u);
    EXPECT_EQ(r.pageSize, PageSize::Size2M);
    EXPECT_EQ(r.pteAddr[0], 0u); // no level-1 table exists
    EXPECT_NE(r.pteAddr[1], 0u);
    // The 21-bit offset survives translation.
    EXPECT_EQ(pageOffset(r.dataPaddr, PageSize::Size2M), 0x123456u);
    EXPECT_EQ(pageAlign(r.dataPaddr, PageSize::Size2M) %
                  pageBytes(PageSize::Size2M),
              0u);
    // root + L4 + L3 + L2 tables, no leaf table.
    EXPECT_EQ(pt.tablePages(), 4u);
}

TEST(PageTableHuge, OneGigWalkTerminatesAtLevelThree)
{
    FrameAllocator fa;
    PageTable pt(fa, HugePagePolicy{0.0, 1.0, 1});
    const auto r = pt.walk(0x40000000);
    EXPECT_EQ(r.leafLevel, 3u);
    EXPECT_EQ(r.pageSize, PageSize::Size1G);
    EXPECT_EQ(r.pteAddr[0], 0u);
    EXPECT_EQ(r.pteAddr[1], 0u);
    EXPECT_EQ(pt.tablePages(), 3u);
}

TEST(PageTableHuge, NeighborsShareTheHugeFrame)
{
    FrameAllocator fa;
    PageTable pt(fa, HugePagePolicy{1.0, 0.0, 1});
    const Addr base = 0x40000000;
    const Addr pa1 = pt.translate(base + 0x1000);
    const Addr pa2 = pt.translate(base + 0x1ff000);
    EXPECT_EQ(pageAlign(pa1, PageSize::Size2M),
              pageAlign(pa2, PageSize::Size2M));
    EXPECT_NE(pa1, pa2);
}

// --------------------------------------------------------------------------
// TLB with mixed page sizes
// --------------------------------------------------------------------------

TEST(TlbHuge, TwoMegEntryCoversWholePage)
{
    Tlb tlb("t", 64, 4, 1);
    const Addr va = Addr{0x40000000};
    tlb.fill(0, va, 0x600000, PageSize::Size2M);
    Addr pa = 0;
    EXPECT_TRUE(tlb.lookup(0, va + 0x123456, pa));
    EXPECT_EQ(pa, 0x723456u);
    EXPECT_TRUE(tlb.lookup(0, va + 0x1fffff, pa));
    EXPECT_FALSE(tlb.lookup(0, va + pageBytes(PageSize::Size2M), pa));
    EXPECT_EQ(tlb.stats().hitsBySize[unsigned(PageSize::Size2M)], 2u);
    EXPECT_EQ(tlb.stats().fillsBySize[unsigned(PageSize::Size2M)], 1u);
}

TEST(TlbHuge, SizesCoexistWithoutAliasing)
{
    Tlb tlb("t", 64, 4, 1);
    tlb.fill(0, 0x5000, 0xa000, PageSize::Size4K);
    tlb.fill(0, 0x40000000, 0x200000, PageSize::Size2M);
    tlb.fill(0, Addr{3} << 30, Addr{1} << 30, PageSize::Size1G);
    Addr pa = 0;
    EXPECT_TRUE(tlb.probe(0, 0x5abc, pa));
    EXPECT_EQ(pa, 0xaabcu);
    EXPECT_TRUE(tlb.probe(0, 0x40000000 + 0x42, pa));
    EXPECT_EQ(pa, 0x200042u);
    EXPECT_TRUE(tlb.probe(0, (Addr{3} << 30) + 0x99, pa));
    EXPECT_EQ(pa, (Addr{1} << 30) + 0x99);
    EXPECT_NO_THROW(tlb.checkInvariants());
    tlb.flush();
    EXPECT_FALSE(tlb.probe(0, 0x5abc, pa));
    EXPECT_FALSE(tlb.probe(0, 0x40000042, pa));
}

TEST(TlbHuge, MixedSizeAliasTripsInvariant)
{
    Tlb tlb("t", 64, 4, 1);
    // A 4K entry inside a VA range also covered by a live 2M entry.
    tlb.pokeForTest(0, 0, 0, /*vpn=*/0x200, 0xaa000, PageSize::Size4K);
    tlb.pokeForTest(1, 0, 0, /*vpn=*/1, 0x200000, PageSize::Size2M);
    try {
        tlb.checkInvariants();
        FAIL() << "mixed-size alias not detected";
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.invariant(), "mixed-size-alias");
    }
}

// --------------------------------------------------------------------------
// PSC and huge-page leaves
// --------------------------------------------------------------------------

TEST(PscHuge, FillAtOrBelowLeafLevelIsDropped)
{
    PagingStructureCaches pscs;
    const Addr va = 0x40000000;
    // A 2M walk (leaf at level 2) must not populate PSCL2 ...
    pscs.fill(0, va, 2, 0x111000, /*leafLevel=*/2);
    Addr frame = 0;
    EXPECT_EQ(pscs.lookup(0, va, frame), kPtLevels);
    // ... but may populate PSCL3 (the level-2 table does exist).
    pscs.fill(0, va, 3, 0x222000, /*leafLevel=*/2);
    EXPECT_EQ(pscs.lookup(0, va, frame), 2u);
    EXPECT_EQ(frame, 0x222000u);
    EXPECT_NO_THROW(pscs.checkInvariants());
}

TEST(PscHuge, SkippedLevelEntryTripsInvariant)
{
    PagingStructureCaches pscs;
    // Seed the corruption fill() refuses: a PSCL2 entry installed by a
    // walk whose leaf was level 2.
    pscs.pokeForTest(2, 0, 0, 0x40000000, 0x111000, /*leafLevel=*/2);
    try {
        pscs.checkInvariants();
        FAIL() << "skipped-level entry not detected";
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.invariant(), "psc-skipped-level");
        EXPECT_EQ(v.component(), "PSCL2");
    }
}

// --------------------------------------------------------------------------
// Walker: early termination
// --------------------------------------------------------------------------

struct PtwPageSizeTest : ::testing::Test
{
    EventQueue eq;
    test::MockMemory mem{eq, 50};
    FrameAllocator fa;
};

TEST_F(PtwPageSizeTest, TwoMegWalkReadsFourLevels)
{
    PageTable pt(fa, HugePagePolicy{1.0, 0.0, 1});
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &pt);

    PageSize seen = PageSize::Size4K;
    w.walk(0, 0x40000000, 0, 0,
           [&](Addr, PageSize ps, RespSource) { seen = ps; });
    test::drain(eq);
    EXPECT_EQ(mem.countOf(ReqType::Translation), kPtLevels - 1);
    EXPECT_EQ(seen, PageSize::Size2M);
    EXPECT_EQ(w.stats().walksBySize[unsigned(PageSize::Size2M)], 1u);
    EXPECT_EQ(w.stats().levelReads[0], 0u); // no level-1 read
    EXPECT_EQ(w.stats().walkRefs.max(), kPtLevels - 1);
    EXPECT_NO_THROW(w.checkInvariants());
}

TEST_F(PtwPageSizeTest, OneGigWalkReadsThreeLevels)
{
    PageTable pt(fa, HugePagePolicy{0.0, 1.0, 1});
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &pt);
    w.walk(0, 0x40000000, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    EXPECT_EQ(mem.countOf(ReqType::Translation), kPtLevels - 2);
    EXPECT_EQ(w.stats().walksBySize[unsigned(PageSize::Size1G)], 1u);
}

TEST_F(PtwPageSizeTest, PscHitClampsToLeafLevel)
{
    PageTable pt(fa, HugePagePolicy{1.0, 0.0, 1});
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &pt);

    w.walk(0, 0x40000000, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    const auto cold = mem.countOf(ReqType::Translation);

    // Second 4K page in the same 2M mapping: PSCL3 hit says "start at
    // level 2", which is exactly the leaf — one read.
    w.walk(0, 0x40000000 + 5 * kPageSize, 0, 0,
           [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    EXPECT_EQ(mem.countOf(ReqType::Translation), cold + 1);
    EXPECT_EQ(w.stats().levelReads[1], 2u); // both walks read the leaf
}

TEST_F(PtwPageSizeTest, StlbFilledAtHugeGranule)
{
    PageTable pt(fa, HugePagePolicy{1.0, 0.0, 1});
    Tlb stlb("stlb", 64, 4, 8);
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &pt);
    w.setStlb(&stlb);

    const Addr vaddr = 0x40000000 | 0x3456;
    w.walk(0, vaddr, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);

    // One fill covers every 4K page of the 2M region.
    Addr pa = 0;
    EXPECT_TRUE(stlb.probe(0, 0x40000000 + 0x1ff123, pa));
    EXPECT_EQ(pa, pt.translate(0x40000000 + 0x1ff123));
    EXPECT_EQ(stlb.stats().fillsBySize[unsigned(PageSize::Size2M)], 1u);
}

// --------------------------------------------------------------------------
// Walker: nested 2D guest×host translation
// --------------------------------------------------------------------------

struct PtwNestedTest : PtwPageSizeTest
{
    FrameAllocator hostFa;
};

TEST_F(PtwNestedTest, ColdNestedWalkMultipliesReferences)
{
    PageTable guest(fa), host(hostFa);
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &guest);
    w.setNestedTranslation(&host);
    ASSERT_TRUE(w.nested());

    Addr result = 0;
    const Addr vaddr = 0x12345678;
    w.walk(0, vaddr, 0, 0,
           [&](Addr paddr, PageSize, RespSource) { result = paddr; });
    test::drain(eq);

    // 5 guest PTE reads, each behind a host sub-walk, plus the final
    // host walk of the data address. The first sub-walk is cold (5 host
    // reads); the guest tables share one 2M host region, so the host
    // PSCL2 covers the rest (1 host read each): 5 + 5 + 5*1 = 15.
    EXPECT_EQ(mem.countOf(ReqType::Translation), 15u);
    EXPECT_EQ(w.stats().hostWalks, kPtLevels + 1);
    std::uint64_t guestReads = 0, hostReads = 0;
    for (unsigned l = 0; l < kPtLevels; ++l) {
        guestReads += w.stats().levelReads[l];
        hostReads += w.stats().hostLevelReads[l];
    }
    EXPECT_EQ(guestReads, kPtLevels);
    EXPECT_EQ(hostReads, 10u);
    EXPECT_EQ(w.stats().walkRefs.max(), 15u);

    // The callback reports the *host* physical address.
    EXPECT_EQ(result, host.translate(guest.translate(vaddr)));
    EXPECT_NO_THROW(w.checkInvariants());
}

TEST_F(PtwNestedTest, WarmNestedWalkShrinksToThreeReads)
{
    PageTable guest(fa), host(hostFa);
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &guest);
    w.setNestedTranslation(&host);

    w.walk(0, 0x12345000, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    const auto cold = mem.countOf(ReqType::Translation);

    // Adjacent page: guest PSCL2 hit (leaf only) and host PSCL2 hits
    // for both the leaf's sub-walk and the data walk.
    w.walk(0, 0x12346000, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    EXPECT_EQ(mem.countOf(ReqType::Translation), cold + 3);
}

TEST_F(PtwNestedTest, NestedLeafCarriesHostReplayBlock)
{
    PageTable guest(fa), host(hostFa);
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &guest);
    w.setNestedTranslation(&host);

    const Addr vaddr = 0x77777123;
    w.walk(0, vaddr, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);

    const Addr hostPa = host.translate(guest.translate(vaddr));
    unsigned leafSeen = 0;
    for (const auto &r : mem.requests) {
        if (r->type != ReqType::Translation)
            continue;
        if (r->leafPte) {
            ++leafSeen;
            EXPECT_TRUE(r->isLeafTranslation());
            EXPECT_EQ(r->replayBlockPaddr, blockAlign(hostPa));
        } else {
            EXPECT_EQ(r->replayBlockPaddr, 0u);
        }
    }
    // Exactly one leaf: host sub-walk reads never end the translation.
    EXPECT_EQ(leafSeen, 1u);
}

TEST_F(PtwNestedTest, StlbCachesGuestToHostAtMinGranule)
{
    // Guest maps everything 2M; host stays 4K. The STLB entry can only
    // be 4K wide: the host dimension fractures the guest huge page.
    PageTable guest(fa, HugePagePolicy{1.0, 0.0, 1});
    PageTable host(hostFa);
    Tlb stlb("stlb", 64, 4, 8);
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &guest);
    w.setNestedTranslation(&host);
    w.setStlb(&stlb);

    PageSize seen = PageSize::Size1G;
    const Addr vaddr = 0x40000000 | 0x3456;
    w.walk(0, vaddr, 0, 0,
           [&](Addr, PageSize ps, RespSource) { seen = ps; });
    test::drain(eq);

    EXPECT_EQ(seen, PageSize::Size4K);
    EXPECT_EQ(stlb.stats().fillsBySize[unsigned(PageSize::Size4K)], 1u);
    Addr pa = 0;
    EXPECT_TRUE(stlb.probe(0, vaddr, pa));
    EXPECT_EQ(pa, host.translate(guest.translate(vaddr)));
    // The neighboring 4K page of the guest 2M mapping is NOT covered.
    EXPECT_FALSE(stlb.probe(0, (vaddr + kPageSize) & ~Addr{0xfff}, pa));
}

TEST_F(PtwNestedTest, NestedWalksStillMerge)
{
    PageTable guest(fa), host(hostFa);
    PageTableWalker w(eq, &mem, {});
    w.addAddressSpace(0, &guest);
    w.setNestedTranslation(&host);
    int done = 0;
    w.walk(0, 0x9000, 0, 0, [&](Addr, PageSize, RespSource) { ++done; });
    w.walk(0, 0x9008, 0, 0, [&](Addr, PageSize, RespSource) { ++done; });
    test::drain(eq);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(w.stats().walks, 1u);
    EXPECT_EQ(w.stats().merged, 1u);
}

} // namespace
} // namespace tacsim
