/**
 * @file
 * Property test cross-checking Hawkeye's OPTgen against a reference
 * Belady (MIN) simulator on small random traces: a policy trained by
 * OPTgen must achieve a hit rate between LRU's and Belady's, and its
 * per-PC verdicts must agree with OPT's behaviour on pathological
 * patterns (pure streaming = averse, tight loops = friendly).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/repl/hawkeye.hh"
#include "cache/repl/policy.hh"
#include "common/rng.hh"

namespace tacsim {
namespace {

/** Reference Belady MIN hit count for a single-set trace. */
std::uint64_t
beladyHits(const std::vector<Addr> &trace, unsigned ways)
{
    // next-use index for each access
    std::unordered_map<Addr, std::vector<std::size_t>> positions;
    for (std::size_t i = 0; i < trace.size(); ++i)
        positions[trace[i]].push_back(i);
    std::unordered_map<Addr, std::size_t> nextIdx; // per-block cursor
    std::vector<Addr> cache;
    std::uint64_t hits = 0;

    auto nextUse = [&](Addr b, std::size_t from) -> std::size_t {
        const auto &v = positions[b];
        auto it = std::upper_bound(v.begin(), v.end(), from);
        return it == v.end() ? SIZE_MAX : *it;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Addr b = trace[i];
        auto pos = std::find(cache.begin(), cache.end(), b);
        if (pos != cache.end()) {
            ++hits;
            continue;
        }
        if (cache.size() < ways) {
            cache.push_back(b);
            continue;
        }
        // Evict the block used farthest in the future.
        std::size_t worst = 0, worstUse = 0;
        for (std::size_t w = 0; w < cache.size(); ++w) {
            const std::size_t use = nextUse(cache[w], i);
            if (use >= worstUse) {
                worstUse = use;
                worst = w;
                if (use == SIZE_MAX)
                    break;
            }
        }
        cache[worst] = b;
    }
    (void)nextIdx;
    return hits;
}

/** Run a single-set trace through a ReplPolicy-backed cache model. */
std::uint64_t
policyHits(ReplPolicy &p, const std::vector<Addr> &trace,
           const std::vector<Addr> &ips, unsigned ways)
{
    std::vector<BlockMeta> blocks(ways);
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        AccessInfo ai;
        ai.blockAddr = trace[i];
        ai.ip = ips[i];
        ai.cat = BlockCat::NonReplay;

        std::int32_t way = -1;
        for (unsigned w = 0; w < ways; ++w)
            if (blocks[w].valid && blocks[w].tag == trace[i])
                way = static_cast<std::int32_t>(w);
        if (way >= 0) {
            ++hits;
            p.onHit(0, static_cast<std::uint32_t>(way), ai);
            continue;
        }
        std::int32_t victim = -1;
        for (unsigned w = 0; w < ways; ++w)
            if (!blocks[w].valid) {
                victim = static_cast<std::int32_t>(w);
                break;
            }
        if (victim < 0) {
            victim = static_cast<std::int32_t>(
                p.victim(0, ai, blocks.data()));
            p.onEvict(0, static_cast<std::uint32_t>(victim),
                      blocks[static_cast<std::size_t>(victim)]);
        }
        auto &b = blocks[static_cast<std::size_t>(victim)];
        b.valid = true;
        b.tag = trace[i];
        b.fillIp = ips[i];
        p.onFill(0, static_cast<std::uint32_t>(victim), ai);
    }
    return hits;
}

struct TraceCase
{
    std::vector<Addr> trace;
    std::vector<Addr> ips;
};

/** Zipf-ish random trace over a working set larger than the cache. */
TraceCase
randomTrace(std::uint64_t seed, std::size_t len, std::size_t blocks)
{
    TraceCase t;
    Rng rng(seed);
    for (std::size_t i = 0; i < len; ++i) {
        // Square the uniform draw to skew toward low block ids.
        const double u = rng.uniform();
        const auto b =
            static_cast<Addr>(u * u * double(blocks));
        t.trace.push_back(b * kBlockSize);
        t.ips.push_back(0x400000 + (b % 4) * 4);
    }
    return t;
}

class BeladyComparison : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BeladyComparison, HawkeyeBetweenRandomAndBelady)
{
    const unsigned kWays = 8;
    TraceCase t = randomTrace(GetParam(), 4000, 64);

    const std::uint64_t opt = beladyHits(t.trace, kWays);

    auto hawkeye = makePolicy(PolicyKind::Hawkeye, 1, kWays);
    const std::uint64_t hk = policyHits(*hawkeye, t.trace, t.ips, kWays);

    auto random = makePolicy(PolicyKind::Random, 1, kWays, {}, GetParam());
    const std::uint64_t rnd = policyHits(*random, t.trace, t.ips, kWays);

    // OPT is an upper bound for everything.
    EXPECT_LE(hk, opt);
    EXPECT_LE(rnd, opt);
    // Hawkeye must be competitive: within 15% of OPT or above Random.
    EXPECT_GE(double(hk), std::min(double(opt) * 0.8, double(rnd)));
}

TEST_P(BeladyComparison, AllPoliciesBoundedByBelady)
{
    const unsigned kWays = 4;
    TraceCase t = randomTrace(GetParam() ^ 0x5a5a, 2000, 48);
    const std::uint64_t opt = beladyHits(t.trace, kWays);
    for (PolicyKind k : {PolicyKind::LRU, PolicyKind::SRRIP,
                         PolicyKind::DRRIP, PolicyKind::SHiP,
                         PolicyKind::Hawkeye}) {
        auto p = makePolicy(k, 1, kWays, {}, GetParam());
        EXPECT_LE(policyHits(*p, t.trace, t.ips, kWays), opt)
            << policyKindName(k);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyComparison,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST(BeladyReference, LoopingTraceIsAllHitsAfterWarmup)
{
    // A loop that fits: Belady keeps everything.
    std::vector<Addr> trace;
    for (int r = 0; r < 10; ++r)
        for (Addr b = 0; b < 4; ++b)
            trace.push_back(b * kBlockSize);
    EXPECT_EQ(beladyHits(trace, 4), trace.size() - 4);
}

TEST(BeladyReference, StreamingTraceNeverHits)
{
    std::vector<Addr> trace;
    for (Addr b = 0; b < 100; ++b)
        trace.push_back(b * kBlockSize);
    EXPECT_EQ(beladyHits(trace, 4), 0u);
}

TEST(BeladyReference, ThrashingLoopBeatsLru)
{
    // Loop of ways+1 blocks: LRU gets zero hits, Belady keeps ways-1.
    const unsigned kWays = 4;
    std::vector<Addr> trace;
    std::vector<Addr> ips;
    for (int r = 0; r < 50; ++r)
        for (Addr b = 0; b < kWays + 1; ++b) {
            trace.push_back(b * kBlockSize);
            ips.push_back(0x400000);
        }
    const auto opt = beladyHits(trace, kWays);
    auto lru = makePolicy(PolicyKind::LRU, 1, kWays);
    const auto lruHits = policyHits(*lru, trace, ips, kWays);
    EXPECT_EQ(lruHits, 0u);
    EXPECT_GT(opt, trace.size() / 2);
}

} // namespace
} // namespace tacsim
