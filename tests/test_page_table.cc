/**
 * @file
 * Unit tests for the frame allocator and the five-level radix page
 * table: PTE address arithmetic, lazy construction, determinism.
 */

#include <gtest/gtest.h>

#include <set>

#include "vm/page_table.hh"

namespace tacsim {
namespace {

TEST(FrameAllocator, SequentialPageAlignedFrames)
{
    FrameAllocator fa;
    const Addr f1 = fa.alloc();
    const Addr f2 = fa.alloc();
    EXPECT_EQ(f1 % kPageSize, 0u);
    EXPECT_EQ(f2, f1 + kPageSize);
}

TEST(PageTable, TranslationPreservesPageOffset)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const Addr va = (Addr{0x5} << 30) | 0xabc;
    const Addr pa = pt.translate(va);
    EXPECT_EQ(pa & (kPageSize - 1), 0xabcu);
}

TEST(PageTable, SamePageTranslatesConsistently)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const Addr va = Addr{0x1234} << 12;
    const Addr pa1 = pt.translate(va + 0x10);
    const Addr pa2 = pt.translate(va + 0x800);
    EXPECT_EQ(pageAlign(pa1), pageAlign(pa2));
}

TEST(PageTable, DistinctPagesGetDistinctFrames)
{
    FrameAllocator fa;
    PageTable pt(fa);
    std::set<Addr> frames;
    for (Addr p = 0; p < 64; ++p)
        frames.insert(pageAlign(pt.translate(p << 12)));
    EXPECT_EQ(frames.size(), 64u);
}

TEST(PageTable, WalkExposesAllFiveLevels)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const Addr va = (Addr{0x3} << 48) | (Addr{0x7} << 39) |
        (Addr{0x1f} << 30) | (Addr{0xff} << 21) | (Addr{0x1aa} << 12);
    const auto r = pt.walk(va);

    // Root frame matches CR3; PTE addresses sit at index*8 within each
    // level's table page.
    EXPECT_EQ(r.tableFrame[kPtLevels - 1], pt.rootFrame());
    for (unsigned level = 1; level <= kPtLevels; ++level) {
        const Addr pte = r.pteAddr[level - 1];
        EXPECT_EQ(pageAlign(pte), r.tableFrame[level - 1]);
        EXPECT_EQ((pte - r.tableFrame[level - 1]) / kPteSize,
                  ptIndex(va, level));
    }
}

TEST(PageTable, SharedPrefixSharesUpperTables)
{
    FrameAllocator fa;
    PageTable pt(fa);
    // Two pages in the same 2MB region share all levels but the leaf
    // index.
    const Addr va1 = Addr{0x40000000};
    const Addr va2 = va1 + kPageSize;
    const auto r1 = pt.walk(va1);
    const auto r2 = pt.walk(va2);
    for (unsigned level = 2; level <= kPtLevels; ++level)
        EXPECT_EQ(r1.tableFrame[level - 1], r2.tableFrame[level - 1]);
    EXPECT_NE(r1.pteAddr[0], r2.pteAddr[0]);
}

TEST(PageTable, DistantAddressesDivergeEarly)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const auto r1 = pt.walk(Addr{1} << 48);
    const auto r2 = pt.walk(Addr{2} << 48);
    EXPECT_EQ(r1.tableFrame[kPtLevels - 1],
              r2.tableFrame[kPtLevels - 1]); // same root
    EXPECT_NE(r1.tableFrame[kPtLevels - 2],
              r2.tableFrame[kPtLevels - 2]); // different level-4 tables
}

TEST(PageTable, WalkIsIdempotent)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const Addr va = Addr{0xdeadb000};
    const auto r1 = pt.walk(va);
    const auto r2 = pt.walk(va);
    EXPECT_EQ(r1.dataPaddr, r2.dataPaddr);
    for (unsigned l = 0; l < kPtLevels; ++l)
        EXPECT_EQ(r1.pteAddr[l], r2.pteAddr[l]);
}

TEST(PageTable, TablePagesGrowLazily)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const auto initial = pt.tablePages();
    EXPECT_EQ(initial, 1u); // root only
    pt.translate(0x1000);
    const auto afterOne = pt.tablePages();
    EXPECT_EQ(afterOne, kPtLevels); // one chain of tables
    pt.translate(0x2000); // same leaf table
    EXPECT_EQ(pt.tablePages(), afterOne);
}

TEST(PageTable, SeparateAddressSpacesDoNotCollide)
{
    FrameAllocator fa;
    PageTable a(fa), b(fa);
    const Addr va = 0x7000;
    EXPECT_NE(pageAlign(a.translate(va)), pageAlign(b.translate(va)));
}

} // namespace
} // namespace tacsim
