/**
 * @file
 * Unit tests for the synthetic benchmark generators: determinism,
 * record validity, footprints, structural properties and the factory.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/benchmarks.hh"
#include "workloads/canneal.hh"
#include "workloads/graph.hh"
#include "workloads/mcf.hh"
#include "workloads/xalanc.hh"

namespace tacsim {
namespace {

TEST(Workloads, FactoryBuildsEveryBenchmark)
{
    for (Benchmark b : kAllBenchmarks) {
        auto w = makeWorkload(b, 1);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), benchmarkName(b));
        EXPECT_GT(w->footprint(), Addr{100} << 20)
            << "paper footprints are hundreds of MB";
    }
}

TEST(Workloads, DeterministicPerSeed)
{
    for (Benchmark b : kAllBenchmarks) {
        auto w1 = makeWorkload(b, 7);
        auto w2 = makeWorkload(b, 7);
        for (int i = 0; i < 2000; ++i) {
            const TraceRecord t1 = w1->next();
            const TraceRecord t2 = w2->next();
            ASSERT_EQ(t1.vaddr, t2.vaddr) << benchmarkName(b);
            ASSERT_EQ(t1.ip, t2.ip);
            ASSERT_EQ(static_cast<int>(t1.kind),
                      static_cast<int>(t2.kind));
        }
    }
}

TEST(Workloads, DifferentSeedsDiffer)
{
    auto w1 = makeWorkload(Benchmark::pr, 1);
    auto w2 = makeWorkload(Benchmark::pr, 2);
    bool anyDiff = false;
    for (int i = 0; i < 2000; ++i)
        anyDiff |= w1->next().vaddr != w2->next().vaddr;
    EXPECT_TRUE(anyDiff);
}

TEST(Workloads, MemRecordsHaveAddressesAndIps)
{
    for (Benchmark b : kAllBenchmarks) {
        auto w = makeWorkload(b, 3);
        unsigned memOps = 0;
        for (int i = 0; i < 5000; ++i) {
            const TraceRecord t = w->next();
            EXPECT_NE(t.ip, 0u);
            if (t.isMem()) {
                EXPECT_NE(t.vaddr, 0u) << benchmarkName(b);
                ++memOps;
            }
        }
        EXPECT_GT(memOps, 500u)
            << benchmarkName(b) << " must be memory-intensive";
    }
}

TEST(Workloads, AddressesStayWithinReasonableRegion)
{
    // Every generated address must land in a bounded virtual region so
    // page-table growth stays sane.
    for (Benchmark b : kAllBenchmarks) {
        auto w = makeWorkload(b, 3);
        for (int i = 0; i < 20000; ++i) {
            const TraceRecord t = w->next();
            if (t.isMem()) {
                ASSERT_LT(t.vaddr, Addr{1} << 46) << benchmarkName(b);
            }
        }
    }
}

TEST(Workloads, CategoriesMatchTableTwo)
{
    EXPECT_EQ(benchmarkCategory(Benchmark::xalancbmk), MpkiCategory::Low);
    EXPECT_EQ(benchmarkCategory(Benchmark::mcf), MpkiCategory::Medium);
    EXPECT_EQ(benchmarkCategory(Benchmark::pr), MpkiCategory::High);
    EXPECT_EQ(categoryName(MpkiCategory::High), "High");
}

TEST(Workloads, TableTwoDataIsOrderedByStlbMpki)
{
    double prev = 0;
    for (Benchmark b : kAllBenchmarks) {
        EXPECT_GE(paperTableTwo(b).stlbMpki, prev);
        prev = paperTableTwo(b).stlbMpki;
    }
}

TEST(GraphWorkloadTest, DegreeDistributionHasHeavyTail)
{
    GraphParams p;
    p.vertices = 1 << 16;
    GraphWorkload g(GraphAlgo::PR, p);
    std::uint64_t maxDeg = 0, sum = 0;
    for (std::uint64_t v = 0; v < 10000; ++v) {
        const auto d = g.degree(v);
        maxDeg = std::max(maxDeg, d);
        sum += d;
        EXPECT_GE(d, 1u);
    }
    const double avg = double(sum) / 10000.0;
    EXPECT_GT(maxDeg, Addr(avg * 4)) << "no heavy tail";
}

TEST(GraphWorkloadTest, NeighborsInRangeAndDeterministic)
{
    GraphParams p;
    p.vertices = 1 << 16;
    GraphWorkload g(GraphAlgo::BF, p);
    for (std::uint64_t v = 0; v < 100; ++v)
        for (std::uint64_t i = 0; i < 4; ++i) {
            const auto n = g.neighbor(v, i);
            EXPECT_LT(n, p.vertices);
            EXPECT_EQ(n, g.neighbor(v, i));
        }
}

TEST(GraphWorkloadTest, HubBiasConcentratesNeighbors)
{
    GraphParams p;
    p.vertices = 1 << 20;
    p.hubFraction = 0.5;
    p.localFraction = 0.0;
    p.hubVertices = 1 << 10;
    GraphWorkload g(GraphAlgo::PR, p);
    unsigned inHub = 0, total = 0;
    for (std::uint64_t v = 0; v < 2000; ++v)
        for (std::uint64_t i = 0; i < 4; ++i) {
            inHub += g.neighbor(v, i) < p.hubVertices;
            ++total;
        }
    EXPECT_NEAR(double(inHub) / total, 0.5, 0.05);
}

TEST(McfWorkloadTest, ChainDoesNotCycleShort)
{
    McfWorkload m;
    std::set<Addr> seen;
    unsigned repeats = 0;
    for (int i = 0; i < 3000; ++i) {
        const TraceRecord t = m.next();
        if (t.kind == TraceRecord::Kind::Load &&
            t.dependsOnPrevLoad) {
            if (!seen.insert(t.vaddr).second)
                ++repeats;
        }
    }
    // Revisits happen (hot region) but the chain must not collapse into
    // a tiny cycle.
    EXPECT_GT(seen.size(), 200u);
}

TEST(McfWorkloadTest, FirstLoadIsDependentChase)
{
    McfWorkload m;
    const TraceRecord t = m.next();
    EXPECT_EQ(t.kind, TraceRecord::Kind::Load);
    EXPECT_TRUE(t.dependsOnPrevLoad);
}

TEST(CannealWorkloadTest, MixesHotAndColdElements)
{
    CannealParams p;
    p.coldElementFraction = 0.5;
    CannealWorkload w(p);
    unsigned beyondHot = 0, loads = 0;
    for (int i = 0; i < 20000; ++i) {
        const TraceRecord t = w.next();
        if (t.kind != TraceRecord::Kind::Load)
            continue;
        ++loads;
        // hot region is the first hotBytes of the arena
        const Addr off = t.vaddr & ((Addr{1} << 42) - 1);
        beyondHot += off > p.hotBytes + 64;
    }
    EXPECT_GT(beyondHot, loads / 5);
    EXPECT_LT(beyondHot, loads);
}

TEST(XalancWorkloadTest, ColdExcursionsAreRare)
{
    XalancWorkload w;
    unsigned cold = 0, loads = 0;
    const Addr coldBase = (Addr{1} << 43) + (Addr{1} << 35);
    for (int i = 0; i < 50000; ++i) {
        const TraceRecord t = w.next();
        if (t.kind != TraceRecord::Kind::Load)
            continue;
        ++loads;
        cold += t.vaddr >= coldBase;
    }
    EXPECT_GT(cold, 0u);
    EXPECT_LT(double(cold) / loads, 0.3);
}

/** Property: every generator produces a bounded instruction mix. */
class WorkloadMixTest : public ::testing::TestWithParam<Benchmark>
{};

TEST_P(WorkloadMixTest, LoadFractionWithinBand)
{
    auto w = makeWorkload(GetParam(), 5);
    unsigned loads = 0, stores = 0, nonmem = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        switch (w->next().kind) {
          case TraceRecord::Kind::Load: ++loads; break;
          case TraceRecord::Kind::Store: ++stores; break;
          default: ++nonmem; break;
        }
    }
    const double loadFrac = double(loads) / n;
    EXPECT_GT(loadFrac, 0.05);
    EXPECT_LT(loadFrac, 0.75);
    EXPECT_LT(double(stores) / n, 0.4);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadMixTest,
                         ::testing::ValuesIn(kAllBenchmarks),
                         [](const auto &info) {
                             return benchmarkName(info.param);
                         });

} // namespace
} // namespace tacsim
