// tacsim-lint fixture standing in for common/types.hh: the one file
// allowed to spell page geometry as raw numbers.
constexpr unsigned long kPageSize = 4096;
constexpr unsigned kPageMask = 0xfff;
constexpr unsigned kPtIndexMask = 0x1ff;
constexpr unsigned long vpnOf(unsigned long a) { return a >> 12; }
