// tacsim-lint fixture: registration side of stats.hh.
#include "vm/stats.hh"
namespace fix {
void
registerMetrics(Registry &registry, WalkerStats &stats_)
{
    registry.addCounter("walker.walks", &stats_.walks);
    registry.addHistogram("walker.latency", &stats_.latency);
}
} // namespace fix
