// tacsim-lint fixture: seeded stats-registry-coverage violations.
#include <cstdint>
namespace fix {
struct WalkerStats
{
    std::uint64_t walks = 0;  // registered in stats.cc
    std::uint64_t stalls = 0; // never registered: finding
    Histogram latency{};      // registered in stats.cc
    double notACounter = 0.0; // wrong type: ignored by the check
    std::uint64_t total() const { return walks + stalls; }
    void reset() { *this = WalkerStats{}; }
};
// tacsim-lint: allow(stats-registry-coverage) fixture: import summary printed by the CLI, no registry exists there
struct ImportStats
{
    std::uint64_t rows = 0; // suppressed by the struct-level allow
};
} // namespace fix
