// tacsim-lint fixture: seeded magic-page-constant violations.
namespace fix {
unsigned long pageSize() { return 4096; }
unsigned mask(unsigned a) { return a & 0xfff; }
unsigned vpn(unsigned a) { return a >> 12; }
unsigned ptIndex(unsigned a) { return a & 0x1ff; }
unsigned long table() { return 4096; } // tacsim-lint: allow(magic-page-constant) fixture: a table size that is not page geometry
unsigned big(unsigned a) { return a << 21; } // not in the banned set
const char *text() { return "4096 >> 12"; }  // literal: never flagged
} // namespace fix
