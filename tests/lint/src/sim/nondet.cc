// tacsim-lint fixture: seeded nondeterminism-hazard violations.
#include <unordered_map>
namespace fix {
struct Telemetry
{
    std::unordered_map<int, int> counts_;
    unsigned long seed() { return std::rand(); }
    unsigned long stamp() { return std::chrono::steady_clock::now(); }
    unsigned long okTime(int time) { return time; } // not a call
    void
    drain()
    {
        for (const auto &kv : counts_)
            (void)kv;
    }
    void
    drainAllowed()
    {
        // tacsim-lint: allow(nondeterminism-hazard) fixture: consumer sorts before anything observable
        for (const auto &kv : counts_)
            (void)kv;
    }
    void
    drainVector(const int (&v)[4])
    {
        for (int x : v) // ordered container: never flagged
            (void)x;
    }
};
} // namespace fix
