// tacsim-lint fixture: seeded unsequenced-rng violations.
namespace fix {
long combine(long a, long b);
struct Gen
{
    long bad() { return combine(rng_.next(), rng_.next()); }
    long
    good()
    {
        const long a = rng_.next();
        const long b = rng_.next();
        return combine(a, b);
    }
    long goodBranch() { return rng_.chance(0.5) ? rng_.next() : 0; }
    long goodInit() { return sum({rng_.next(), rng_.next()}); }
    long allowed() { return combine(rng_.next(), rng_.next()); } // tacsim-lint: allow(unsequenced-rng) fixture: operands commute
    long sum(std::initializer_list<long> xs);
    Rng rng_;
};
} // namespace fix
