// tacsim-lint fixture: malformed suppressions (each is a finding).
namespace fix {
int noReason(); // tacsim-lint: allow(raw-assert)
int unknownCheck(); // tacsim-lint: allow(no-such-check) because reasons
int badSyntax(); // tacsim-lint: please ignore this line
} // namespace fix
