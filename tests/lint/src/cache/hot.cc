// tacsim-lint fixture: seeded hot-path-container violations (this
// fixture lives under src/cache/, a hot-path directory).
#include <map>
#include <unordered_map>
namespace fix {
struct Index
{
    std::unordered_map<unsigned long, int> blocks_;
    // tacsim-lint: allow(hot-path-container) fixture: cold configuration table built once at startup
    std::map<int, int> config_;
};
} // namespace fix
