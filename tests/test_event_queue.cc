/**
 * @file
 * Unit tests for the discrete-event queue: ordering, tie-breaking,
 * advanceTo semantics and re-entrancy.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/event_queue.hh"

namespace tacsim {
namespace {

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventCycle(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.advanceTo(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, SameCycleEventsFireInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.advanceTo(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, AdvanceToStopsAtTarget)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.advanceTo(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.nextEventCycle(), 20u);
}

TEST(EventQueue, EventsMayScheduleMoreEventsWithinWindow)
{
    EventQueue eq;
    std::vector<Cycle> times;
    eq.schedule(5, [&] {
        times.push_back(eq.now());
        eq.schedule(5, [&] { times.push_back(eq.now()); });
    });
    eq.advanceTo(20);
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 5u);
    EXPECT_EQ(times[1], 10u);
}

TEST(EventQueue, ChainedEventBeyondWindowIsDeferred)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { eq.schedule(100, [&] { ++fired; }); });
    eq.advanceTo(50);
    EXPECT_EQ(fired, 0);
    eq.advanceTo(105);
    EXPECT_EQ(fired, 1);
}

#if defined(TACSIM_VERIFY_ENABLED) || !defined(NDEBUG)

TEST(EventQueueDeathTest, ScheduleAtInPastAbortsWhenChecksAreLive)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.advanceTo(100);
    EXPECT_DEATH(eq.scheduleAt(10, [] {}), "scheduleAt in the past");
}

#else

TEST(EventQueue, ScheduleAtInPastClampsToNow)
{
    // Release safety net only: with TACSIM_DCHECK compiled in, past
    // scheduling aborts instead (see the death test above).
    EventQueue eq;
    eq.advanceTo(100);
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    EXPECT_EQ(eq.nextEventCycle(), 100u);
    eq.advanceTo(100);
    EXPECT_EQ(fired, 1);
}

#endif

TEST(EventQueue, StepRunsExactlyOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ResetDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    eq.advanceTo(100);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, SizeTracksPendingEvents)
{
    EventQueue eq;
    for (int i = 1; i <= 5; ++i)
        eq.schedule(static_cast<Cycle>(i), [] {});
    EXPECT_EQ(eq.size(), 5u);
    eq.advanceTo(3);
    EXPECT_EQ(eq.size(), 2u);
}

TEST(EventQueue, FarFutureEventsFireInTimeOrder)
{
    // Events thousands of cycles out overflow the calendar window and
    // must still interleave correctly with near-future ones.
    EventQueue eq;
    std::vector<Cycle> times;
    auto record = [&] { times.push_back(eq.now()); };
    eq.scheduleAt(9000, record);
    eq.scheduleAt(12, record);
    eq.scheduleAt(4096, record);
    eq.scheduleAt(2047, record);
    eq.scheduleAt(100000, record);
    eq.advanceTo(200000);
    EXPECT_EQ(times,
              (std::vector<Cycle>{12, 2047, 4096, 9000, 100000}));
}

TEST(EventQueue, SameCycleOrderSurvivesHeapMigration)
{
    // e1 is scheduled for cycle 5000 while that cycle is far outside
    // the window (it waits in the overflow heap); e2 is scheduled for
    // the same cycle once the window has advanced over it. Insertion
    // (seq) order must still decide who fires first.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(5000, [&] { order.push_back(1); });
    eq.advanceTo(4500);
    eq.scheduleAt(5000, [&] { order.push_back(2); });
    eq.advanceTo(5000);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LargeCapturesFallBackGracefully)
{
    // Captures larger than the record's inline storage take the
    // std::function fallback; behavior must be identical.
    EventQueue eq;
    struct Big
    {
        char payload[128];
    };
    Big big{};
    big.payload[0] = 42;
    int seen = 0;
    eq.schedule(3, [&seen, big] { seen = big.payload[0]; });
    eq.advanceTo(3);
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, ExecutedCountsAllFiredEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(static_cast<Cycle>(i % 3), [] {});
    eq.advanceTo(10);
    EXPECT_EQ(eq.executed(), 10u);
    eq.reset();
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, HeapMigrationAtExactWindowBoundary)
{
    // At t=0 the calendar covers [0, 1024): cycle 1023 is the last
    // bucketed cycle and cycle 1024 — exactly windowEnd — waits in the
    // overflow heap. An event at cycle 1 slides the window to [1, 1025),
    // migrating both boundary events in (when, seq) order; its callback
    // then appends a third cycle-1024 event directly to the bucket,
    // which must keep insertion order behind the migrated pair.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(1024, [&] { order.push_back(1); }); // heap, seq 0
    eq.scheduleAt(1023, [&] { order.push_back(0); }); // bucket
    eq.scheduleAt(1024, [&] { order.push_back(2); }); // heap, seq 2
    eq.schedule(1, [&] { eq.scheduleAt(1024, [&] { order.push_back(3); }); });
    eq.advanceTo(2000);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, WindowBoundaryCycleDoesNotAliasIntoCurrentBucket)
{
    // Cycles 0 and 1024 map to the same bucket index. The boundary
    // condition must be strict (`when < windowEnd`): an off-by-one that
    // bucketed cycle 1024 at t=0 would fire it 1024 cycles early,
    // aliased into cycle 0's FIFO.
    EventQueue eq;
    std::vector<Cycle> times;
    auto record = [&] { times.push_back(eq.now()); };
    eq.scheduleAt(0, record);
    eq.scheduleAt(1024, record);
    eq.advanceTo(1500);
    EXPECT_EQ(times, (std::vector<Cycle>{0, 1024}));
}

TEST(EventQueue, EventExactlyAtNewWindowEndStaysDeferred)
{
    // After the window advances to [1, 1025), cycle 1024 migrates into
    // its bucket but cycle 1025 — exactly the new windowEnd — must stay
    // in the heap, and still fire at the right time later.
    EventQueue eq;
    std::vector<Cycle> times;
    auto record = [&] { times.push_back(eq.now()); };
    eq.scheduleAt(1024, record);
    eq.scheduleAt(1025, record);
    eq.schedule(1, [] {});
    eq.advanceTo(1024);
    EXPECT_EQ(times, (std::vector<Cycle>{1024}));
    eq.advanceTo(1025);
    EXPECT_EQ(times, (std::vector<Cycle>{1024, 1025}));
}

TEST(EventQueue, ResetDropsFarFutureEventsToo)
{
    // Pending overflow-heap events must be destroyed on reset (their
    // captures may own shared_ptrs — leaking them trips ASan).
    EventQueue eq;
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    eq.scheduleAt(50000, [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());
    eq.reset();
    EXPECT_TRUE(watch.expired());
}

} // namespace
} // namespace tacsim
