/**
 * @file
 * Unit tests for the discrete-event queue: ordering, tie-breaking,
 * advanceTo semantics and re-entrancy.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"

namespace tacsim {
namespace {

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventCycle(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.advanceTo(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, SameCycleEventsFireInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.advanceTo(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, AdvanceToStopsAtTarget)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.advanceTo(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.nextEventCycle(), 20u);
}

TEST(EventQueue, EventsMayScheduleMoreEventsWithinWindow)
{
    EventQueue eq;
    std::vector<Cycle> times;
    eq.schedule(5, [&] {
        times.push_back(eq.now());
        eq.schedule(5, [&] { times.push_back(eq.now()); });
    });
    eq.advanceTo(20);
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 5u);
    EXPECT_EQ(times[1], 10u);
}

TEST(EventQueue, ChainedEventBeyondWindowIsDeferred)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { eq.schedule(100, [&] { ++fired; }); });
    eq.advanceTo(50);
    EXPECT_EQ(fired, 0);
    eq.advanceTo(105);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ScheduleAtInPastClampsToNow)
{
    EventQueue eq;
    eq.advanceTo(100);
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    EXPECT_EQ(eq.nextEventCycle(), 100u);
    eq.advanceTo(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepRunsExactlyOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ResetDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    eq.advanceTo(100);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, SizeTracksPendingEvents)
{
    EventQueue eq;
    for (int i = 1; i <= 5; ++i)
        eq.schedule(static_cast<Cycle>(i), [] {});
    EXPECT_EQ(eq.size(), 5u);
    eq.advanceTo(3);
    EXPECT_EQ(eq.size(), 2u);
}

} // namespace
} // namespace tacsim
