/**
 * @file
 * Integration tests: the full system end to end — stats invariants,
 * warmup semantics, ideal modes, SMT and multi-core composition, and
 * the translation-aware configuration helper.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "test_util.hh"

namespace tacsim {
namespace {

constexpr std::uint64_t kInstr = 60000;
constexpr std::uint64_t kWarm = 15000;

System
makeSystem(SystemConfig cfg, Benchmark b = Benchmark::pr)
{
    std::vector<std::unique_ptr<Workload>> w;
    for (unsigned t = 0; t < cfg.threads(); ++t)
        w.push_back(makeWorkload(b, cfg.seed + t));
    return System(cfg, std::move(w));
}

TEST(SystemTest, RunRetiresRequestedInstructions)
{
    SystemConfig cfg;
    System sys = makeSystem(cfg);
    sys.run(kInstr);
    EXPECT_GE(sys.core(0).retired(), kInstr);
    EXPECT_GT(sys.cycle(), 0u);
}

TEST(SystemTest, CacheStatsInternallyConsistent)
{
    SystemConfig cfg;
    System sys = makeSystem(cfg);
    sys.run(kInstr);
    for (Cache *c : {&sys.l1d(), &sys.l2(), &sys.llc()}) {
        const CacheStats &s = c->stats();
        for (std::size_t cat = 0; cat < kNumBlockCats; ++cat) {
            EXPECT_EQ(s.accesses[cat], s.hits[cat] + s.misses[cat])
                << c->name() << " cat " << cat;
        }
    }
}

TEST(SystemTest, HierarchyFiltersMisses)
{
    SystemConfig cfg;
    System sys = makeSystem(cfg);
    sys.run(kInstr);
    // Each L1D demand miss either merges into an existing MSHR or
    // forwards one child to the L2 (plus PTW translation children),
    // so L2 demand accesses are bounded by L1 misses and are nonzero.
    const auto l1Miss = sys.l1d().stats().demandMisses();
    const auto l1Merges = sys.l1d().stats().mshrMerges;
    const auto l2Acc = sys.l2().stats().demandAccesses();
    EXPECT_GT(l2Acc, 0u);
    EXPECT_LE(l2Acc, l1Miss + 10);
    EXPECT_GE(l2Acc + l1Merges + 100, l1Miss);
}

TEST(SystemTest, TranslationsReachCachesViaPtw)
{
    SystemConfig cfg;
    System sys = makeSystem(cfg);
    sys.run(kInstr);
    EXPECT_GT(sys.ptw().stats().walks, 0u);
    EXPECT_GT(sys.l1d().stats().translationAccesses(), 0u);
    // The leaf source distribution covers all walks (modulo walks that
    // are still in flight or queued when the run ends).
    const PtwStats &ps = sys.ptw().stats();
    const auto attributed = ps.leafFromL1D + ps.leafFromL2C +
        ps.leafFromLLC + ps.leafFromDram + ps.leafFromIdeal;
    EXPECT_LE(attributed, ps.walks);
    EXPECT_GE(attributed + 8, ps.walks);
}

TEST(SystemTest, WarmupResetsStatsButKeepsState)
{
    SystemConfig cfg;
    System sys = makeSystem(cfg);
    sys.warmup(kWarm);
    EXPECT_EQ(sys.core(0).retired(), 0u);
    EXPECT_EQ(sys.measuredCycles(), 0u);
    const auto llcFillsAfterWarmup = sys.llc().stats().fills;
    EXPECT_EQ(llcFillsAfterWarmup, 0u);
    sys.run(kInstr);
    EXPECT_GE(sys.core(0).retired(), kInstr);
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    SystemConfig cfg;
    System a = makeSystem(cfg);
    System b = makeSystem(cfg);
    a.run(kInstr);
    b.run(kInstr);
    EXPECT_EQ(a.cycle(), b.cycle());
    EXPECT_EQ(a.llc().stats().demandMisses(),
              b.llc().stats().demandMisses());
}

TEST(SystemTest, IdealLlcTranslationsEliminatesLeafDramResponses)
{
    SystemConfig cfg;
    cfg.idealLlcTranslations = true;
    System sys = makeSystem(cfg);
    sys.run(kInstr);
    EXPECT_EQ(sys.ptw().stats().leafFromDram, 0u);
    EXPECT_GT(sys.ptw().stats().leafFromIdeal, 0u);
}

TEST(SystemTest, IdealModesImprovePerformance)
{
    // mcf's dependent chain is latency-bound: ideal replay treatment
    // must shorten it substantially (paper Fig. 2's premise).
    SystemConfig base;
    System b = makeSystem(base, Benchmark::mcf);
    b.warmup(kWarm);
    b.run(kInstr);

    SystemConfig ideal = base;
    ideal.idealLlcTranslations = true;
    ideal.idealLlcReplays = true;
    ideal.idealL2Translations = true;
    ideal.idealL2Replays = true;
    System i = makeSystem(ideal, Benchmark::mcf);
    i.warmup(kWarm);
    i.run(kInstr);
    EXPECT_LT(i.measuredCycles(), b.measuredCycles() * 95 / 100);
}

TEST(SystemTest, SmtSharesHierarchy)
{
    SystemConfig cfg;
    cfg.threadsPerCore = 2;
    System sys = makeSystem(cfg);
    EXPECT_EQ(sys.threads(), 2u);
    sys.run(kInstr / 2);
    EXPECT_GE(sys.core(0).retired(), kInstr / 2);
    EXPECT_GE(sys.core(1).retired(), kInstr / 2);
    // Both ASIDs hit the same STLB.
    EXPECT_GT(sys.stlb(0).stats().accesses, 0u);
}

TEST(SystemTest, MultiCoreSharesLlcPrivateL2)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    System sys = makeSystem(cfg, Benchmark::canneal);
    sys.run(20000);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_GT(sys.l2(c).stats().demandAccesses(), 0u) << c;
    EXPECT_GT(sys.llc().stats().demandAccesses(), 0u);
    // LLC is scaled: 2MB per core.
    EXPECT_EQ(sys.llc().params().sets * sys.llc().params().ways *
                  kBlockSize,
              Addr{8} << 20);
}

TEST(SystemTest, PerThreadFinishCyclesRecorded)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys = makeSystem(cfg);
    sys.run(20000);
    EXPECT_GT(sys.threadCycles(0), 0u);
    EXPECT_GT(sys.threadCycles(1), 0u);
}

TEST(TranslationAware, AppliesAllFlags)
{
    SystemConfig cfg;
    TranslationAwareOptions o;
    o.tempo = true;
    applyTranslationAware(cfg, o);
    EXPECT_TRUE(cfg.l2Opts.translationRrpv0);
    EXPECT_TRUE(cfg.l2Opts.replayEvictFast);
    EXPECT_TRUE(cfg.llcOpts.newSignatures);
    EXPECT_TRUE(cfg.llcOpts.translationRrpv0);
    EXPECT_TRUE(cfg.atpL2);
    EXPECT_TRUE(cfg.atpLlc);
    EXPECT_TRUE(cfg.tempo);
}

TEST(TranslationAware, TShipReducesLlcTranslationMisses)
{
    // Longer horizon than the other tests: retention only pays off once
    // translation blocks see reuse (recall distance <= ~50).
    SystemConfig base;
    RunResult rb = runBenchmark(base, Benchmark::pr, 300000, 80000);

    SystemConfig t = base;
    applyTranslationAware(t, {true, true, false, false, false});
    RunResult rt = runBenchmark(t, Benchmark::pr, 300000, 80000);

    EXPECT_LT(rt.llcPtl1Mpki, rb.llcPtl1Mpki);
    EXPECT_GE(rt.leafOnChipHitRate, rb.leafOnChipHitRate);
}

TEST(TranslationAware, TShipRetainsTranslationsUnderDataChurn)
{
    // Mechanism-level check, deterministic: a leaf-translation block in
    // one set survives a burst of dead data fills under T-SHiP but is
    // evicted under baseline SHiP.
    auto churn = [](ReplOpts opts) {
        EventQueue eq;
        test::MockMemory mem(eq, 50);
        CacheParams p;
        p.sets = 2;
        p.ways = 4;
        p.latency = 1;
        p.mshrs = 8;
        Cache c(p, eq, &mem, makePolicy(PolicyKind::SHiP, 2, 4, opts));

        auto tr = test::makeTranslation(0x0, 1, 0x99000, 0x500000);
        c.access(tr);
        test::drain(eq);
        // Flood the same set with dead data fills from one IP.
        for (int i = 0; i < 16; ++i) {
            auto ld = test::makeLoad(Addr(0x0) + Addr(2 * i + 2) * 128,
                                     0x600000);
            c.access(ld);
            test::drain(eq);
        }
        return c.contains(0x0);
    };

    ReplOpts baseline;
    ReplOpts tship;
    tship.newSignatures = true;
    tship.translationRrpv0 = true;
    EXPECT_FALSE(churn(baseline));
    EXPECT_TRUE(churn(tship));
}

TEST(TranslationAware, AtpIssuesAccuratePrefetches)
{
    SystemConfig cfg;
    applyTranslationAware(cfg, {true, true, false, true, false});
    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(makeWorkload(Benchmark::mcf, cfg.seed));
    System sys(cfg, std::move(w));
    sys.run(kInstr);
    const auto issued =
        sys.l2().stats().atpIssued + sys.llc().stats().atpIssued;
    EXPECT_GT(issued, 0u);
}

TEST(TranslationAware, TempoPrefetchesAtDramOnLeafMiss)
{
    SystemConfig cfg;
    applyTranslationAware(cfg, {true, true, false, true, true});
    std::vector<std::unique_ptr<Workload>> w;
    // canneal has the most DRAM-bound translations.
    w.push_back(makeWorkload(Benchmark::canneal, cfg.seed));
    System sys(cfg, std::move(w));
    sys.run(kInstr);
    EXPECT_GT(sys.dram().stats().tempoPrefetches, 0u);
}

TEST(RunnerTest, SpeedupMath)
{
    RunResult a, b;
    a.cycles = 2000;
    a.instructions = 1000;
    b.cycles = 1000;
    b.instructions = 1000;
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
    EXPECT_DOUBLE_EQ(speedup(b, a), 0.5);
}

TEST(RunnerTest, HarmonicSpeedupMath)
{
    RunResult mix;
    mix.threadCycles = {1000, 1000};
    mix.threadInstructions = {500, 250}; // IPC .5 and .25
    const double h = harmonicSpeedup({1.0, 0.5}, mix);
    EXPECT_DOUBLE_EQ(h, 2.0 / (1.0 / 0.5 + 0.5 / 0.25));
}

TEST(RunnerTest, CollectResultMatchesSystem)
{
    SystemConfig cfg;
    System sys = makeSystem(cfg, Benchmark::tc);
    sys.warmup(kWarm);
    sys.run(kInstr);
    RunResult r = collectResult(sys, "tc");
    EXPECT_EQ(r.cycles, sys.measuredCycles());
    EXPECT_GE(r.instructions, kInstr);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.stlbMpki, 0.0);
    EXPECT_NEAR(r.leafL1D + r.leafL2C + r.leafLLC + r.leafDram, 1.0,
                1e-6);
}

TEST(RunnerTest, RunBenchmarkProducesNamedResult)
{
    SystemConfig cfg;
    RunResult r = runBenchmark(cfg, Benchmark::xalancbmk, 20000, 5000);
    EXPECT_EQ(r.benchmark, "xalancbmk");
    EXPECT_GE(r.instructions, 20000u);
}

} // namespace
} // namespace tacsim
