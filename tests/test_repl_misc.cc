/**
 * @file
 * Unit tests for LRU/Random policies, the CbPred-style dead-block
 * wrapper, the CSALT-style partitioning wrapper and the policy factory.
 */

#include <gtest/gtest.h>

#include "cache/repl/basic.hh"
#include "cache/repl/csalt.hh"
#include "cache/repl/deadblock.hh"
#include "cache/repl/policy.hh"
#include "cache/repl/ship.hh"
#include "common/rng.hh"

namespace tacsim {
namespace {

AccessInfo
dataAccess(Addr ip = 0x400000, Addr block = 0x1000)
{
    AccessInfo ai;
    ai.blockAddr = block;
    ai.ip = ip;
    ai.cat = BlockCat::NonReplay;
    return ai;
}

AccessInfo
translationAccess(Addr ip = 0x400000)
{
    AccessInfo ai = dataAccess(ip, 0x8000);
    ai.cat = BlockCat::PtLeaf;
    ai.ptLevel = 1;
    ai.leafPte = true;
    return ai;
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy p(4, 4, {});
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, dataAccess());
    p.onHit(0, 0, dataAccess()); // refresh way 0
    std::vector<BlockMeta> blocks(4);
    EXPECT_EQ(p.victim(0, dataAccess(), blocks.data()), 1u);
}

TEST(Lru, ReplayEvictFastGoesToLruPosition)
{
    ReplOpts opts;
    opts.replayEvictFast = true;
    LruPolicy p(4, 4, opts);
    for (std::uint32_t w = 0; w < 3; ++w)
        p.onFill(0, w, dataAccess());
    AccessInfo replay = dataAccess();
    replay.cat = BlockCat::Replay;
    replay.isReplay = true;
    p.onFill(0, 3, replay);
    std::vector<BlockMeta> blocks(4);
    EXPECT_EQ(p.victim(0, dataAccess(), blocks.data()), 3u);
}

TEST(Random, VictimAlwaysInRange)
{
    RandomPolicy p(8, 16, {}, 99);
    std::vector<BlockMeta> blocks(16);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(p.victim(0, dataAccess(), blocks.data()), 16u);
}

TEST(DeadBlock, LearnsToBypassDeadSignatures)
{
    auto inner = std::make_unique<ShipPolicy>(64, 8, ReplOpts{});
    DeadBlockPolicy p(64, 8, {}, std::move(inner));
    const Addr deadIp = 0x500000;
    BlockMeta meta;
    meta.valid = true;
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(p.bypassFill(0, dataAccess(deadIp)));
        p.onFill(0, 0, dataAccess(deadIp));
        p.onEvict(0, 0, meta);
    }
    EXPECT_TRUE(p.bypassFill(0, dataAccess(deadIp)));
    EXPECT_GE(p.bypasses(), 1u);
}

TEST(DeadBlock, ReuseRescuesSignature)
{
    auto inner = std::make_unique<ShipPolicy>(64, 8, ReplOpts{});
    DeadBlockPolicy p(64, 8, {}, std::move(inner));
    const Addr ip = 0x500100;
    BlockMeta meta;
    meta.valid = true;
    for (int i = 0; i < 4; ++i) {
        p.onFill(0, 0, dataAccess(ip));
        p.onEvict(0, 0, meta);
    }
    // Hits drive the dead counter back down.
    for (int i = 0; i < 4; ++i) {
        p.onFill(0, 0, dataAccess(ip));
        p.onHit(0, 0, dataAccess(ip));
    }
    EXPECT_FALSE(p.bypassFill(0, dataAccess(ip)));
}

TEST(DeadBlock, NeverBypassesTranslations)
{
    auto inner = std::make_unique<ShipPolicy>(64, 8, ReplOpts{});
    DeadBlockPolicy p(64, 8, {}, std::move(inner));
    const Addr ip = 0x500200;
    BlockMeta meta;
    meta.valid = true;
    for (int i = 0; i < 8; ++i) {
        p.onFill(0, 0, dataAccess(ip));
        p.onEvict(0, 0, meta);
    }
    EXPECT_TRUE(p.bypassFill(0, dataAccess(ip)));
    EXPECT_FALSE(p.bypassFill(0, translationAccess(ip)));
}

TEST(Csalt, QuotaGrowsWhenTranslationsMiss)
{
    auto inner = std::make_unique<ShipPolicy>(64, 8, ReplOpts{});
    CsaltPolicy p(64, 8, {}, std::move(inner));
    const auto before = p.translationQuota();
    // An epoch dominated by translation misses and data hits.
    for (std::uint64_t i = 0; i < CsaltPolicy::kEpochAccesses; ++i) {
        if (i % 4 == 0)
            p.onFill(0, 0, translationAccess()); // translation misses
        else
            p.onHit(0, 1, dataAccess()); // data hits
    }
    EXPECT_GT(p.translationQuota(), before);
}

TEST(Csalt, QuotaShrinksWhenDataMisses)
{
    auto inner = std::make_unique<ShipPolicy>(64, 8, ReplOpts{});
    CsaltPolicy p(64, 8, {}, std::move(inner));
    // First grow it.
    for (std::uint64_t i = 0; i < CsaltPolicy::kEpochAccesses; ++i) {
        if (i % 4 == 0)
            p.onFill(0, 0, translationAccess());
        else
            p.onHit(0, 1, dataAccess());
    }
    const auto grown = p.translationQuota();
    // Then an epoch where data misses and translations hit.
    for (std::uint64_t i = 0; i < CsaltPolicy::kEpochAccesses; ++i) {
        if (i % 4 == 0)
            p.onHit(0, 0, translationAccess());
        else
            p.onFill(0, 1, dataAccess());
    }
    EXPECT_LT(p.translationQuota(), grown);
}

TEST(Csalt, EvictsWithinClassWhenOverQuota)
{
    auto inner = std::make_unique<ShipPolicy>(4, 4, ReplOpts{});
    CsaltPolicy p(4, 4, {}, std::move(inner));
    // Set: 3 translation blocks, 1 data block; quota starts small (1).
    std::vector<BlockMeta> blocks(4);
    for (int w = 0; w < 3; ++w) {
        blocks[static_cast<std::size_t>(w)].valid = true;
        blocks[static_cast<std::size_t>(w)].cat = BlockCat::PtLeaf;
    }
    blocks[3].valid = true;
    blocks[3].cat = BlockCat::NonReplay;
    // Incoming translation while translations exceed quota: must evict
    // a translation way, not the data way.
    const auto v = p.victim(0, translationAccess(), blocks.data());
    EXPECT_LT(v, 3u);
}

TEST(Factory, BuildsEveryKindWithMatchingName)
{
    const std::pair<PolicyKind, const char *> kinds[] = {
        {PolicyKind::LRU, "LRU"},       {PolicyKind::Random, "Random"},
        {PolicyKind::SRRIP, "SRRIP"},   {PolicyKind::BRRIP, "BRRIP"},
        {PolicyKind::DRRIP, "DRRIP"},   {PolicyKind::SHiP, "SHiP"},
        {PolicyKind::Hawkeye, "Hawkeye"},
    };
    for (auto [kind, name] : kinds) {
        auto p = makePolicy(kind, 64, 8);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), name);
        EXPECT_EQ(policyKindName(kind), name);
        EXPECT_EQ(p->sets(), 64u);
        EXPECT_EQ(p->ways(), 8u);
    }
}

/** Property sweep: every policy kind returns victims within range and
 *  survives a burst of fills/hits/evicts under every ReplOpts combo. */
class PolicySweep
    : public ::testing::TestWithParam<std::tuple<PolicyKind, int>>
{};

TEST_P(PolicySweep, VictimAlwaysValidUnderChurn)
{
    const auto [kind, optBits] = GetParam();
    ReplOpts opts;
    opts.translationRrpv0 = optBits & 1;
    opts.replayEvictFast = optBits & 2;
    opts.newSignatures = optBits & 4;
    opts.replayRrpv0 = optBits & 8;

    auto p = makePolicy(kind, 16, 4, opts, 7);
    std::vector<BlockMeta> blocks(4);
    for (auto &b : blocks)
        b.valid = true;

    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        AccessInfo ai;
        ai.blockAddr = rng.range(256) * kBlockSize;
        ai.ip = 0x400000 + rng.range(16) * 4;
        switch (rng.range(4)) {
          case 0: ai.cat = BlockCat::NonReplay; break;
          case 1:
            ai.cat = BlockCat::Replay;
            ai.isReplay = true;
            break;
          case 2:
            ai.cat = BlockCat::PtLeaf;
            ai.ptLevel = 1;
            ai.leafPte = true;
            break;
          default:
            ai.cat = BlockCat::PtUpper;
            ai.ptLevel = 3;
            break;
        }
        const std::uint32_t set =
            static_cast<std::uint32_t>(rng.range(16));
        const std::uint32_t v = p->victim(set, ai, blocks.data());
        ASSERT_LT(v, 4u);
        p->onEvict(set, v, blocks[v]);
        p->onFill(set, v, ai);
        if (rng.chance(0.5))
            p->onHit(set, v, ai);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllOpts, PolicySweep,
    ::testing::Combine(::testing::Values(PolicyKind::LRU,
                                         PolicyKind::Random,
                                         PolicyKind::SRRIP,
                                         PolicyKind::BRRIP,
                                         PolicyKind::DRRIP,
                                         PolicyKind::SHiP,
                                         PolicyKind::Hawkeye),
                       ::testing::Range(0, 16)));

} // namespace
} // namespace tacsim
