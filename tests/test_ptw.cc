/**
 * @file
 * Unit tests for the page-table walker: serial level reads, PSC skips,
 * merging, concurrency limits, STLB fills and the ATP plumbing
 * (IsLeafLevel + replay block address).
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "vm/ptw.hh"

namespace tacsim {
namespace {

struct PtwTest : ::testing::Test
{
    EventQueue eq;
    test::MockMemory mem{eq, 50};
    FrameAllocator fa;
    PageTable pt{fa};

    PageTableWalker
    makeWalker(PtwParams p = {})
    {
        PageTableWalker w(eq, &mem, p);
        w.addAddressSpace(0, &pt);
        return w;
    }
};

TEST_F(PtwTest, ColdWalkReadsAllFiveLevels)
{
    auto w = makeWalker();
    Addr result = 0;
    w.walk(0, 0x12345000, 0x400000, 0,
           [&](Addr paddr, PageSize, RespSource) { result = paddr; });
    test::drain(eq);
    EXPECT_EQ(mem.countOf(ReqType::Translation), kPtLevels);
    EXPECT_EQ(result, pt.translate(0x12345000));
    EXPECT_EQ(w.stats().walks, 1u);
    for (unsigned l = 0; l < kPtLevels; ++l)
        EXPECT_EQ(w.stats().levelReads[l], 1u);
}

TEST_F(PtwTest, LevelsReadSerially)
{
    auto w = makeWalker();
    w.walk(0, 0x5000, 0, 0, [](Addr, PageSize, RespSource) {});
    // After PSC latency + one memory delay, only one read has issued.
    eq.advanceTo(10);
    EXPECT_EQ(mem.requests.size(), 1u);
    eq.advanceTo(60);
    EXPECT_EQ(mem.requests.size(), 2u);
    test::drain(eq);
    EXPECT_EQ(mem.requests.size(), kPtLevels);
}

TEST_F(PtwTest, PscHitSkipsUpperLevels)
{
    auto w = makeWalker();
    // First walk warms the PSCs.
    w.walk(0, 0x40000000, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    const auto readsAfterFirst = mem.countOf(ReqType::Translation);
    EXPECT_EQ(readsAfterFirst, kPtLevels);

    // Second walk in the same 2MB region: PSCL2 hit -> leaf read only.
    w.walk(0, 0x40000000 + 7 * kPageSize, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    EXPECT_EQ(mem.countOf(ReqType::Translation), readsAfterFirst + 1);
    EXPECT_EQ(w.pscStats().hitsAtLevel[1], 1u); // PSCL2
}

TEST_F(PtwTest, LeafRequestCarriesReplayBlock)
{
    auto w = makeWalker();
    const Addr vaddr = 0x77777123; // offset 0x123 within the page
    w.walk(0, vaddr, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    unsigned leafSeen = 0;
    for (const auto &r : mem.requests) {
        if (r->type != ReqType::Translation)
            continue;
        if (r->ptLevel == 1) {
            ++leafSeen;
            EXPECT_TRUE(r->isLeafTranslation());
            EXPECT_EQ(r->replayBlockPaddr,
                      blockAlign(pt.translate(vaddr)));
        } else {
            EXPECT_EQ(r->replayBlockPaddr, 0u);
        }
    }
    EXPECT_EQ(leafSeen, 1u);
}

TEST_F(PtwTest, SameVpnWalksMerge)
{
    auto w = makeWalker();
    int done = 0;
    w.walk(0, 0x9000, 0, 0, [&](Addr, PageSize, RespSource) { ++done; });
    w.walk(0, 0x9008, 0, 0, [&](Addr, PageSize, RespSource) { ++done; });
    w.walk(0, 0x9ff0, 0, 0, [&](Addr, PageSize, RespSource) { ++done; });
    test::drain(eq);
    EXPECT_EQ(done, 3);
    EXPECT_EQ(w.stats().walks, 1u);
    EXPECT_EQ(w.stats().merged, 2u);
}

TEST_F(PtwTest, ConcurrencyLimitQueuesWalks)
{
    PtwParams p;
    p.maxConcurrentWalks = 2;
    auto w = makeWalker(p);
    int done = 0;
    for (Addr i = 0; i < 5; ++i)
        w.walk(0, (Addr{0x100} + i) << 12, 0, 0,
               [&](Addr, PageSize, RespSource) { ++done; });
    EXPECT_EQ(w.activeWalks(), 2u);
    EXPECT_EQ(w.stats().queued, 3u);
    test::drain(eq);
    EXPECT_EQ(done, 5);
    EXPECT_EQ(w.stats().walks, 5u);
    EXPECT_EQ(w.activeWalks(), 0u);
}

TEST_F(PtwTest, StlbFilledOnCompletion)
{
    Tlb stlb("stlb", 64, 4, 8);
    auto w = makeWalker();
    w.setStlb(&stlb);
    const Addr vaddr = 0xabcd3456;
    w.walk(0, vaddr, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    Addr pa = 0;
    EXPECT_TRUE(stlb.probe(0, vaddr, pa));
    EXPECT_EQ(pa, pt.translate(vaddr));
}

TEST_F(PtwTest, LeafSourceRecorded)
{
    auto w = makeWalker();
    w.walk(0, 0x4000, 0, 0, [](Addr, PageSize, RespSource) {});
    test::drain(eq);
    EXPECT_EQ(w.stats().leafFromDram, 1u); // mock completes as DRAM
}

TEST_F(PtwTest, WalkLatencyIncludesAllLevels)
{
    auto w = makeWalker();
    Cycle finished = 0;
    w.walk(0, 0x8000, 0, 0,
           [&](Addr, PageSize, RespSource) { finished = eq.now(); });
    test::drain(eq);
    // 1 cycle PSC + 5 serial reads of 50 cycles.
    EXPECT_EQ(finished, 1u + kPtLevels * 50u);
    EXPECT_EQ(w.stats().walkLatency.count(), 1u);
    EXPECT_EQ(w.stats().walkLatency.max(), 1u + kPtLevels * 50u);
}

TEST_F(PtwTest, DistinctAsidsWalkDistinctTables)
{
    PageTable pt2(fa);
    auto w = makeWalker();
    w.addAddressSpace(1, &pt2);
    Addr pa0 = 0, pa1 = 0;
    w.walk(0, 0x6000, 0, 0, [&](Addr p, PageSize, RespSource) { pa0 = p; });
    w.walk(1, 0x6000, 0, 1, [&](Addr p, PageSize, RespSource) { pa1 = p; });
    test::drain(eq);
    EXPECT_NE(pa0, 0u);
    EXPECT_NE(pa1, 0u);
    EXPECT_NE(pa0, pa1);
}

} // namespace
} // namespace tacsim
