/**
 * @file
 * Canonical content hash of one experiment point — the single identity
 * every layer of the serve stack agrees on.
 *
 * A "point" is everything that determines a simulation's outcome:
 *
 *   - the canonical config text (sim/config.hh canonicalConfigText —
 *     behavior-complete, ObsConfig excluded),
 *   - the per-thread workload specs, with "trace:<path>" specs resolved
 *     to the SHA-256 of the trace file's *bytes* (so renaming or moving
 *     a trace does not change identity, and editing one does),
 *   - the measured-instruction and warm-up budgets.
 *
 * pointKey() digests all of that into 64 hex chars. The same key is
 * used by the in-process sweep memo (sim/sweep.hh), the on-disk result
 * cache (serve/result_cache.hh), the daemon's in-flight dedup
 * (serve/server.hh), and the `point_key` field on every
 * tacsim-sweep-v1 run record — so a result computed anywhere is
 * recognizable everywhere.
 */

#ifndef TACSIM_SERVE_POINT_KEY_HH
#define TACSIM_SERVE_POINT_KEY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tacsim {

struct SystemConfig;

namespace serve {

/**
 * Content hash (64 lowercase hex chars) of the point
 * (@p cfg, @p specs, @p instructions, @p warmup). Budgets of 0 are
 * hashed as the resolved defaults (TACSIM_INSTRUCTIONS / TACSIM_WARMUP
 * environment overrides included), so a spelled-out default and an
 * implicit one share a key. Throws std::runtime_error when a
 * "trace:<path>" spec names an unreadable file. File digests are
 * memoized per (path, mtime, size) for the process lifetime.
 */
std::string pointKey(const SystemConfig &cfg,
                     const std::vector<std::string> &specs,
                     std::uint64_t instructions, std::uint64_t warmup);

/** Single-spec convenience: every thread runs @p spec. */
std::string pointKey(const SystemConfig &cfg, const std::string &spec,
                     std::uint64_t instructions, std::uint64_t warmup);

/**
 * Identity of a *warmed machine state* rather than a finished result:
 * like pointKey but excluding the measured-instruction budget. Two
 * points that differ only in how long they measure share warm state,
 * which is what makes a checkpoint (sim/checkpoint.hh) reusable across
 * measurement budgets.
 */
std::string warmKey(const SystemConfig &cfg,
                    const std::vector<std::string> &specs,
                    std::uint64_t warmup);

/** True iff @p s looks like a point key (64 lowercase hex chars). */
bool isPointKey(const std::string &s);

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_POINT_KEY_HH
