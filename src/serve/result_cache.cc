#include "serve/result_cache.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "serve/json.hh"
#include "serve/point_key.hh"
#include "serve/result_codec.hh"
#include "trace/format.hh"

namespace tacsim {
namespace serve {

namespace {

constexpr const char *kEntryMagic = "tacsim-cache-v1";

void
makeDir(const std::string &path)
{
    // tacsim-lint: allow(magic-page-constant) mkdir permission bits, not a page mask
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        throw std::runtime_error("result cache: cannot create directory " +
                                 path + ": " + std::strerror(errno));
}

void
warn(const std::string &message)
{
    std::fprintf(stderr, "tacsim-cache: warning: %s\n", message.c_str());
}

/** Write @p content to @p path atomically (temp file + rename). */
bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const bool wrote =
        content.empty() ||
        std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string
crcHex(std::uint32_t crc)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", crc);
    return buf;
}

/** Serialize an entry to its self-verifying file form. */
std::string
encodeEntry(const CacheEntry &e)
{
    JsonObject o;
    o["schema"] = JsonValue(kEntryMagic);
    o["point_key"] = JsonValue(e.pointKey);
    o["run"] = parseJson(e.runRecord.empty() ? "null" : e.runRecord);
    o["result"] = runResultToJson(e.result);
    o["stats_dump"] = JsonValue(e.statsDump);
    const std::string payload = JsonValue(std::move(o)).dump();
    const std::uint32_t crc =
        trace::crc32(0, payload.data(), payload.size());
    return std::string(kEntryMagic) + " " + crcHex(crc) + " " +
        std::to_string(payload.size()) + "\n" + payload;
}

/** Parse and verify an entry file; false (with reason) on any defect. */
bool
decodeEntry(const std::string &bytes, CacheEntry &out, std::string &why)
{
    const std::size_t nl = bytes.find('\n');
    if (nl == std::string::npos) {
        why = "missing header line";
        return false;
    }
    std::istringstream header(bytes.substr(0, nl));
    std::string magic, crcField;
    std::uint64_t payloadLen = 0;
    header >> magic >> crcField >> payloadLen;
    if (magic != kEntryMagic || header.fail()) {
        why = "bad header";
        return false;
    }
    const std::string payload = bytes.substr(nl + 1);
    if (payload.size() != payloadLen) {
        why = "truncated payload (header says " +
            std::to_string(payloadLen) + " bytes, file has " +
            std::to_string(payload.size()) + ")";
        return false;
    }
    const std::uint32_t crc =
        trace::crc32(0, payload.data(), payload.size());
    if (crcHex(crc) != crcField) {
        why = "CRC mismatch";
        return false;
    }
    try {
        const JsonValue v = parseJson(payload);
        if (v.at("schema").asString() != kEntryMagic) {
            why = "wrong schema";
            return false;
        }
        out.pointKey = v.at("point_key").asString();
        out.runRecord = v.at("run").dump();
        out.statsDump = v.at("stats_dump").asString();
        out.result = runResultFromJson(v.at("result"));
    } catch (const std::exception &e) {
        why = std::string("unparseable payload: ") + e.what();
        return false;
    }
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t maxBytes)
    : dir_(std::move(dir)), maxBytes_(maxBytes)
{
    makeDir(dir_);
    makeDir(dir_ + "/objects");
    std::lock_guard<std::mutex> lk(mutex_);
    loadIndexLocked();
}

std::string
ResultCache::objectPath(const std::string &pointKey) const
{
    return dir_ + "/objects/" + pointKey;
}

void
ResultCache::loadIndexLocked()
{
    index_.clear();
    totalBytes_ = 0;
    nextSeq_ = 1;

    std::string text;
    if (!readFile(dir_ + "/index.txt", text))
        return; // fresh cache

    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        IndexEntry e;
        ls >> key >> e.bytes >> e.seq;
        if (ls.fail() || !isPointKey(key)) {
            warn(dir_ + "/index.txt line " + std::to_string(lineNo) +
                 " is malformed; dropping it");
            continue;
        }
        index_[key] = e;
        totalBytes_ += e.bytes;
        nextSeq_ = std::max(nextSeq_, e.seq + 1);
    }
}

void
ResultCache::writeIndexLocked() const
{
    std::string out;
    out.reserve(index_.size() * 90);
    // tacsim-lint: allow(nondeterminism-hazard) index_ is a std::map — key-sorted, deterministic iteration
    for (const auto &[key, e] : index_)
        out += key + " " + std::to_string(e.bytes) + " " +
            std::to_string(e.seq) + "\n";
    if (!writeFileAtomic(dir_ + "/index.txt", out))
        warn("cannot write " + dir_ + "/index.txt");
}

void
ResultCache::dropEntryLocked(const std::string &pointKey, const char *why)
{
    auto it = index_.find(pointKey);
    if (it != index_.end()) {
        totalBytes_ -= it->second.bytes;
        index_.erase(it);
    }
    std::remove(objectPath(pointKey).c_str());
    warn("entry " + pointKey + " dropped: " + why);
}

bool
ResultCache::readEntryLocked(const std::string &pointKey,
                             CacheEntry &out) const
{
    std::string bytes;
    if (!readFile(objectPath(pointKey), bytes))
        return false;
    std::string why;
    if (!decodeEntry(bytes, out, why))
        return false;
    return out.pointKey == pointKey;
}

bool
ResultCache::lookup(const std::string &pointKey, CacheEntry &out)
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = index_.find(pointKey);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }

    std::string bytes;
    if (!readFile(objectPath(pointKey), bytes)) {
        // Stale index: the object vanished underneath us.
        ++misses_;
        ++corruptMisses_;
        dropEntryLocked(pointKey, "object file missing (stale index)");
        writeIndexLocked();
        return false;
    }
    std::string why;
    if (!decodeEntry(bytes, out, why) || out.pointKey != pointKey) {
        ++misses_;
        ++corruptMisses_;
        dropEntryLocked(pointKey,
                        why.empty() ? "point key mismatch" : why.c_str());
        writeIndexLocked();
        return false;
    }

    ++hits_;
    it->second.seq = nextSeq_++;
    writeIndexLocked();
    return true;
}

bool
ResultCache::contains(const std::string &pointKey) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return index_.count(pointKey) != 0;
}

void
ResultCache::store(const CacheEntry &entry)
{
    const std::string bytes = encodeEntry(entry);
    std::lock_guard<std::mutex> lk(mutex_);
    if (!writeFileAtomic(objectPath(entry.pointKey), bytes)) {
        warn("cannot write entry " + entry.pointKey + "; not cached");
        return;
    }
    auto it = index_.find(entry.pointKey);
    if (it != index_.end())
        totalBytes_ -= it->second.bytes;
    index_[entry.pointKey] =
        IndexEntry{bytes.size(), nextSeq_++};
    totalBytes_ += bytes.size();
    ++stores_;
    if (maxBytes_ != 0)
        evictOverLocked(maxBytes_);
    writeIndexLocked();
}

void
ResultCache::evictOverLocked(std::uint64_t cap)
{
    while (totalBytes_ > cap && !index_.empty()) {
        auto victim = index_.begin();
        for (auto it = index_.begin(); it != index_.end(); ++it)
            if (it->second.seq < victim->second.seq)
                victim = it;
        totalBytes_ -= victim->second.bytes;
        std::remove(objectPath(victim->first).c_str());
        index_.erase(victim);
        ++evictions_;
    }
}

std::vector<ResultCache::Info>
ResultCache::list() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<Info> out;
    out.reserve(index_.size());
    // tacsim-lint: allow(nondeterminism-hazard) index_ is a std::map — key-sorted, deterministic iteration
    for (const auto &[key, e] : index_)
        out.push_back(Info{key, e.bytes, e.seq});
    std::sort(out.begin(), out.end(),
              [](const Info &a, const Info &b) { return a.seq > b.seq; });
    return out;
}

std::uint64_t
ResultCache::totalBytes() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return totalBytes_;
}

std::size_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return index_.size();
}

std::size_t
ResultCache::gcToBytes(std::uint64_t targetBytes)
{
    std::lock_guard<std::mutex> lk(mutex_);
    const std::uint64_t before = evictions_;
    evictOverLocked(targetBytes);
    writeIndexLocked();
    return static_cast<std::size_t>(evictions_ - before);
}

std::size_t
ResultCache::verify()
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::size_t dropped = 0;

    // Pass 1: every indexed entry must decode and CRC-verify.
    std::vector<std::string> bad;
    // tacsim-lint: allow(nondeterminism-hazard) index_ is a std::map — key-sorted, deterministic iteration
    for (const auto &[key, e] : index_) {
        (void)e;
        CacheEntry tmp;
        if (!readEntryLocked(key, tmp))
            bad.push_back(key);
    }
    for (const std::string &key : bad) {
        dropEntryLocked(key.c_str(), "failed verification");
        ++dropped;
    }

    // Pass 2: adopt valid orphans the index forgot (crash between
    // object write and index write).
    if (DIR *d = ::opendir((dir_ + "/objects").c_str())) {
        while (const struct dirent *ent = ::readdir(d)) {
            const std::string name = ent->d_name;
            if (!isPointKey(name) || index_.count(name))
                continue;
            CacheEntry tmp;
            if (!readEntryLocked(name, tmp)) {
                std::remove(objectPath(name).c_str());
                warn("removing invalid orphan object " + name);
                continue;
            }
            struct ::stat st{};
            if (::stat(objectPath(name).c_str(), &st) != 0)
                continue;
            index_[name] = IndexEntry{
                static_cast<std::uint64_t>(st.st_size), nextSeq_++};
            totalBytes_ += static_cast<std::uint64_t>(st.st_size);
        }
        ::closedir(d);
    }

    if (maxBytes_ != 0)
        evictOverLocked(maxBytes_);
    writeIndexLocked();
    return dropped;
}

bool
ResultCacheSweepAdapter::lookup(const std::string &pointKey,
                                RunResult &out)
{
    CacheEntry e;
    if (!cache_.lookup(pointKey, e))
        return false;
    out = e.result;
    return true;
}

void
ResultCacheSweepAdapter::store(const std::string &pointKey,
                               const RunResult &result,
                               const std::string &statsDump)
{
    CacheEntry e;
    e.pointKey = pointKey;
    e.runRecord = makeRunRecord(pointKey, result);
    e.statsDump = statsDump;
    e.result = result;
    cache_.store(e);
}

std::string
makeRunRecord(const std::string &pointKey, const RunResult &result)
{
    JsonObject o;
    o["key"] = JsonValue(result.benchmark);
    o["point_key"] = JsonValue(pointKey);
    o["benchmark"] = JsonValue(result.benchmark);
    o["instructions"] = JsonValue(result.instructions);
    o["cycles"] = JsonValue(result.cycles);
    o["ipc"] = JsonValue(result.ipc);
    o["ok"] = JsonValue(true);
    return JsonValue(std::move(o)).dump();
}

} // namespace serve
} // namespace tacsim
