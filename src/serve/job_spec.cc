#include "serve/job_spec.hh"

#include <stdexcept>

#include "serve/point_key.hh"
#include "sim/topology.hh"

namespace tacsim {
namespace serve {

namespace {

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error("job spec: " + what);
}

PolicyKind
parsePolicy(const std::string &name)
{
    static const PolicyKind kKinds[] = {
        PolicyKind::LRU,   PolicyKind::Random, PolicyKind::SRRIP,
        PolicyKind::BRRIP, PolicyKind::DRRIP,  PolicyKind::SHiP,
        PolicyKind::Hawkeye};
    for (PolicyKind k : kKinds)
        if (policyKindName(k) == name)
            return k;
    bad("unknown replacement policy '" + name + "'");
}

PrefetcherKind
parsePrefetcher(const std::string &name)
{
    static const PrefetcherKind kKinds[] = {
        PrefetcherKind::None,  PrefetcherKind::NextLine,
        PrefetcherKind::IpStride, PrefetcherKind::Spp,
        PrefetcherKind::Bingo, PrefetcherKind::Ipcp,
        PrefetcherKind::Isb};
    for (PrefetcherKind k : kKinds)
        if (prefetcherKindName(k) == name)
            return k;
    bad("unknown prefetcher '" + name + "'");
}

double
fraction(const JsonValue &v, const char *key)
{
    const double d = v.asNumber();
    if (!(d >= 0.0 && d <= 1.0))
        bad(std::string(key) + " must be in [0,1]");
    return d;
}

void
applyConfig(SystemConfig &cfg, const JsonValue &v)
{
    if (!v.isObject())
        bad("'config' must be an object");

    // Topology first: later per-field overrides win over its derived
    // values, matching how a CLI user would compose them.
    if (v.has("topology"))
        applyTopology(parseTopologySpec(v.at("topology").asString()),
                      cfg);

    for (const auto &[key, val] : v.asObject()) {
        if (key == "topology") {
            // handled above
        } else if (key == "num_cores") {
            cfg.numCores = static_cast<unsigned>(val.asU64());
            if (cfg.numCores == 0)
                bad("num_cores must be positive");
        } else if (key == "threads_per_core") {
            cfg.threadsPerCore = static_cast<unsigned>(val.asU64());
            if (cfg.threadsPerCore == 0)
                bad("threads_per_core must be positive");
        } else if (key == "seed") {
            cfg.seed = val.asU64();
        } else if (key == "translation_aware") {
            TranslationAwareOptions ta;
            if (val.isBool()) {
                if (!val.asBool())
                    continue;
            } else if (val.isObject()) {
                for (const auto &[tk, tv] : val.asObject()) {
                    if (tk == "tdrrip")
                        ta.tDrrip = tv.asBool();
                    else if (tk == "tship")
                        ta.tShip = tv.asBool();
                    else if (tk == "new_signatures_only")
                        ta.newSignaturesOnly = tv.asBool();
                    else if (tk == "atp")
                        ta.atp = tv.asBool();
                    else if (tk == "tempo")
                        ta.tempo = tv.asBool();
                    else
                        bad("unknown translation_aware key '" + tk + "'");
                }
            } else {
                bad("translation_aware must be a bool or an object");
            }
            applyTranslationAware(cfg, ta);
        } else if (key == "l2_policy") {
            cfg.l2Policy = parsePolicy(val.asString());
        } else if (key == "llc_policy") {
            cfg.llcPolicy = parsePolicy(val.asString());
        } else if (key == "l1_prefetcher") {
            cfg.l1Prefetcher = parsePrefetcher(val.asString());
        } else if (key == "l2_prefetcher") {
            cfg.l2Prefetcher = parsePrefetcher(val.asString());
        } else if (key == "atp_l2") {
            cfg.atpL2 = val.asBool();
        } else if (key == "atp_llc") {
            cfg.atpLlc = val.asBool();
        } else if (key == "tempo") {
            cfg.tempo = val.asBool();
            cfg.dram.tempo = cfg.tempo;
        } else if (key == "dtlb_entries") {
            cfg.dtlbEntries = static_cast<std::uint32_t>(val.asU64());
        } else if (key == "stlb_entries") {
            cfg.stlbEntries = static_cast<std::uint32_t>(val.asU64());
        } else if (key == "huge_pages_2m") {
            cfg.vm.hugePages2M = fraction(val, "huge_pages_2m");
        } else if (key == "huge_pages_1g") {
            cfg.vm.hugePages1G = fraction(val, "huge_pages_1g");
        } else if (key == "nested") {
            cfg.vm.nested = val.asBool();
        } else if (key == "host_huge_pages_2m") {
            cfg.vm.hostHugePages2M = fraction(val, "host_huge_pages_2m");
        } else if (key == "host_huge_pages_1g") {
            cfg.vm.hostHugePages1G = fraction(val, "host_huge_pages_1g");
        } else {
            bad("unknown config key '" + key + "'");
        }
    }
}

} // namespace

JobSpec
parseJobSpec(const JsonValue &v)
{
    if (!v.isObject())
        bad("submission body must be a JSON object");
    for (const auto &[key, val] : v.asObject()) {
        (void)val;
        if (key != "spec" && key != "instructions" && key != "warmup" &&
            key != "config")
            bad("unknown key '" + key + "'");
    }
    if (!v.has("spec"))
        bad("missing 'spec'");

    JobSpec out;
    if (v.has("config"))
        applyConfig(out.cfg, v.at("config"));
    if (v.has("instructions"))
        out.instructions = v.at("instructions").asU64();
    if (v.has("warmup"))
        out.warmup = v.at("warmup").asU64();

    const JsonValue &spec = v.at("spec");
    if (spec.isString()) {
        out.specs.assign(out.cfg.threads(), spec.asString());
    } else if (spec.isArray()) {
        for (const JsonValue &s : spec.asArray())
            out.specs.push_back(s.asString());
        if (out.specs.size() != out.cfg.threads())
            bad("'spec' array has " + std::to_string(out.specs.size()) +
                " entries for " + std::to_string(out.cfg.threads()) +
                " hardware threads");
    } else {
        bad("'spec' must be a string or an array of strings");
    }
    for (const std::string &s : out.specs)
        if (s.empty())
            bad("workload specs must be non-empty");
    return out;
}

std::string
jobSpecPointKey(const JobSpec &spec)
{
    return pointKey(spec.cfg, spec.specs, spec.instructions, spec.warmup);
}

} // namespace serve
} // namespace tacsim
