/**
 * @file
 * Persistent content-addressed simulation-result cache (tacsim-cache-v1).
 *
 * Layout under the cache root:
 *
 *   index.txt          one line per entry: "<key> <bytes> <seq>"
 *   objects/<key>      one entry file per cached point
 *
 * where <key> is a serve::pointKey (64 hex chars — everything that
 * determines the simulation's outcome: canonical config text, workload
 * content, budgets) and <seq> is a persisted logical access counter
 * giving LRU order across daemon restarts.
 *
 * Entry files are self-verifying:
 *
 *   line 1   "tacsim-cache-v1 <crc32-hex> <payload-bytes>\n"
 *   payload  a JSON object: {"schema", "point_key", "run" (the
 *            tacsim-sweep-v1-style run record), "result" (exact
 *            RunResult codec), "stats_dump" (canonical dumpRunResult
 *            text, served back byte-identically)}
 *
 * The CRC (trace::crc32, the same IEEE polynomial the trace and
 * checkpoint containers use) covers the payload, so truncation and bit
 * rot turn into clean misses. *Every* corruption mode — truncated
 * entry, CRC mismatch, unparseable payload, a key the index lists but
 * whose object file is gone — degrades to a miss plus a stderr
 * warning; the cache never returns a wrong result and never throws on
 * a corrupt store.
 *
 * Writes are atomic (temp file + rename) and the index rewrites
 * atomically after every mutation, so a killed process leaves at worst
 * an orphaned object that `tacsim-cache verify` re-adopts.
 *
 * All public methods are thread-safe (one internal mutex — entries are
 * small and hits are file reads, so contention is not a concern at
 * sweep scale).
 */

#ifndef TACSIM_SERVE_RESULT_CACHE_HH
#define TACSIM_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace tacsim {
namespace serve {

/** One cached result, as stored and as returned by lookup(). */
struct CacheEntry
{
    std::string pointKey;
    /** tacsim-sweep-v1-style run record (JSON object text). */
    std::string runRecord;
    /** Canonical stats dump (dumpRunResult) — byte-identical replay. */
    std::string statsDump;
    RunResult result;
};

class ResultCache
{
  public:
    /**
     * Open (creating directories and an empty index as needed) the
     * cache rooted at @p dir. @p maxBytes caps the total payload size —
     * exceeding it evicts least-recently-used entries; 0 means
     * unbounded. Throws std::runtime_error when the root cannot be
     * created; a corrupt index is adopted best-effort (bad lines are
     * dropped with a warning).
     */
    explicit ResultCache(std::string dir, std::uint64_t maxBytes = 0);

    /** True + filled @p out on a verified hit; false (never a throw) on
     *  absent, truncated, CRC-mismatched, or unparseable entries. */
    bool lookup(const std::string &pointKey, CacheEntry &out);

    /** True when @p pointKey is present without reading or verifying
     *  the entry (no LRU touch). */
    bool contains(const std::string &pointKey) const;

    /** Insert or overwrite an entry, then enforce the size cap. */
    void store(const CacheEntry &entry);

    /** Index metadata for the CLI, most recently used first. */
    struct Info
    {
        std::string pointKey;
        std::uint64_t bytes = 0;
        std::uint64_t seq = 0;
    };
    std::vector<Info> list() const;

    std::uint64_t totalBytes() const;
    std::size_t entries() const;
    const std::string &dir() const { return dir_; }

    /** Evict least-recently-used entries until the payload total is at
     *  most @p targetBytes; returns the number evicted. */
    std::size_t gcToBytes(std::uint64_t targetBytes);

    /**
     * Re-verify every entry on disk: CRC-check each object named by the
     * index, drop entries whose files are missing or corrupt, and adopt
     * valid orphaned objects the index forgot (e.g. after a crash
     * between object write and index write). Returns the number of
     * bad entries dropped.
     */
    std::size_t verify();

    // Monotonic counters for the daemon's /metrics endpoint.
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t corruptMisses() const { return corruptMisses_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    struct IndexEntry
    {
        std::uint64_t bytes = 0;
        std::uint64_t seq = 0;
    };

    std::string objectPath(const std::string &pointKey) const;
    void loadIndexLocked();
    void writeIndexLocked() const;
    void evictOverLocked(std::uint64_t cap);
    void dropEntryLocked(const std::string &pointKey, const char *why);
    bool readEntryLocked(const std::string &pointKey,
                         CacheEntry &out) const;

    std::string dir_;
    std::uint64_t maxBytes_;
    mutable std::mutex mutex_;
    std::map<std::string, IndexEntry> index_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t hits_ = 0, misses_ = 0, corruptMisses_ = 0,
                  stores_ = 0, evictions_ = 0;
};

/**
 * SweepCache adapter: plug a ResultCache into SweepRunner::attachCache
 * so sweeps skip points the store already holds. store() synthesizes
 * the run record from the RunResult; lookup() decodes the exact codec
 * payload.
 */
class ResultCacheSweepAdapter : public SweepCache
{
  public:
    explicit ResultCacheSweepAdapter(ResultCache &cache) : cache_(cache)
    {}

    bool lookup(const std::string &pointKey, RunResult &out) override;
    void store(const std::string &pointKey, const RunResult &result,
               const std::string &statsDump) override;

  private:
    ResultCache &cache_;
};

/** Build the tacsim-sweep-v1-style run record stored with an entry. */
std::string makeRunRecord(const std::string &pointKey,
                          const RunResult &result);

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_RESULT_CACHE_HH
