/**
 * @file
 * Minimal JSON reader/writer for the serve layer's wire format.
 *
 * The daemon's job specs and responses are small, flat-ish documents, so
 * this is a deliberately small recursive-descent parser over an
 * owning value tree — not a general-purpose JSON library. Scope:
 * objects, arrays, strings (with \uXXXX escapes decoded to UTF-8),
 * numbers (doubles, with an exact-integer accessor), booleans, null.
 * Rejects trailing garbage, caps nesting depth, and throws
 * std::runtime_error with a byte offset on malformed input — a network
 * peer must never be able to crash the daemon with a weird payload.
 *
 * The writer escapes control characters and always emits valid UTF-8
 * passthrough; numbers print round-trip-exactly.
 */

#ifndef TACSIM_SERVE_JSON_HH
#define TACSIM_SERVE_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tacsim {
namespace serve {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::Number), num_(d) {}
    JsonValue(std::int64_t i)
        : kind_(Kind::Number), num_(static_cast<double>(i))
    {}
    JsonValue(std::uint64_t u)
        : kind_(Kind::Number), num_(static_cast<double>(u))
    {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    JsonValue(JsonArray a)
        : kind_(Kind::Array),
          arr_(std::make_shared<JsonArray>(std::move(a)))
    {}
    JsonValue(JsonObject o)
        : kind_(Kind::Object),
          obj_(std::make_shared<JsonObject>(std::move(o)))
    {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw std::runtime_error on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** The number as u64; throws unless it is a non-negative integer
     *  representable exactly in a double (< 2^53). */
    std::uint64_t asU64() const;
    const std::string &asString() const;
    const JsonArray &asArray() const;
    const JsonObject &asObject() const;

    /** Object member lookup; null-kind reference when absent. */
    const JsonValue &at(const std::string &key) const;
    bool has(const std::string &key) const;

    /** Serialize (compact, keys in map order — deterministic). */
    std::string dump() const;

  private:
    void dumpTo(std::string &out) const;

    Kind kind_;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    // Shared (not unique) so JsonValue stays copyable; the value tree
    // is read-only after construction everywhere it is shared.
    std::shared_ptr<JsonArray> arr_;
    std::shared_ptr<JsonObject> obj_;
};

/**
 * Parse a complete JSON document. Throws std::runtime_error (message
 * includes the byte offset) on malformed input, trailing garbage, or
 * nesting deeper than 64 levels.
 */
JsonValue parseJson(const std::string &text);

/** Escape @p s as a JSON string literal, quotes included. */
std::string jsonQuote(const std::string &s);

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_JSON_HH
