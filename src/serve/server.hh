/**
 * @file
 * tacsim-served: the simulation-as-a-service daemon core.
 *
 * A Server binds one loopback (by default) TCP port and speaks the
 * minimal HTTP/1.1 of serve/http.hh:
 *
 *   POST /jobs            submit a JSON job spec (serve/job_spec.hh).
 *                         Responds with the job id, the canonical
 *                         point_key, and the current status — "done"
 *                         immediately when the result cache already
 *                         holds the point, and an existing job's id
 *                         when an identical submission is already
 *                         queued or running (in-flight dedup).
 *   GET  /jobs/<id>       poll status; a finished job carries the run
 *                         record and the canonical stats dump.
 *   GET  /results/<key>   the canonical stats dump for a point key,
 *                         byte-identical to what the computing run
 *                         produced (text/plain; 404 when unknown).
 *   GET  /healthz         liveness probe ("ok").
 *   GET  /metrics         counters in obs::Registry::dumpText format.
 *
 * Simulation happens on a bounded worker pool (each job is an
 * independent deterministic System, so concurrency cannot change
 * results). Every completed job is written to the persistent
 * ResultCache, so a restarted daemon — or a SweepRunner pointed at the
 * same cache directory — serves repeat points without simulating.
 *
 * Shutdown is graceful: requestStop() (async-signal-safe: a flag write
 * plus closing the listen socket) stops accepting work; wait() returns
 * once in-flight jobs finish and queued ones are marked failed
 * ("server shutting down"). The cache index is already durable at that
 * point — it rewrites atomically on every mutation.
 */

#ifndef TACSIM_SERVE_SERVER_HH
#define TACSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hh"
#include "serve/http.hh"
#include "serve/job_spec.hh"
#include "serve/result_cache.hh"

namespace tacsim {
namespace serve {

struct ServerConfig
{
    /** Bind address. Loopback by default: the daemon runs untrusted
     *  JSON through a hand-rolled parser; exposing it wider is an
     *  explicit operator decision. */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read it back via port()). */
    std::uint16_t port = 0;
    /** Simulation worker threads; 0 = min(hardware_concurrency, 4). */
    unsigned workers = 0;
    /** Result-cache directory; empty runs without persistence. */
    std::string cacheDir;
    /** Cache size cap in bytes (0 = unbounded). */
    std::uint64_t maxCacheBytes = 0;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();

    /** Bind, listen, and spawn the accept loop and worker pool.
     *  Throws std::runtime_error when the socket cannot be bound. */
    void start();

    /** Port actually bound (resolves an ephemeral request). */
    std::uint16_t port() const { return boundPort_; }

    /**
     * Begin graceful shutdown: stop accepting connections and wake the
     * workers. Safe to call from a signal handler (writes an atomic
     * flag and closes the listen fd).
     */
    void requestStop();

    /** Block until the accept loop and every worker have exited. */
    void wait();

    /** requestStop() + wait(). */
    void stop();

    ResultCache *cache() { return cache_.get(); }

    /** Counters in obs::Registry::dumpText format (the /metrics body). */
    std::string metricsText();

  private:
    enum class JobState : std::uint8_t
    {
        Queued,
        Running,
        Done,
        Failed,
    };

    struct JobRecord
    {
        std::uint64_t id = 0;
        std::string pointKey;
        JobSpec spec;
        JobState state = JobState::Queued;
        bool cached = false;
        std::string error;
        std::string statsDump;
        std::string runRecord;
        RunResult result;
    };

    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);
    std::string handleRequest(const HttpRequest &req);
    std::string handleSubmit(const HttpRequest &req);
    std::string handleJobStatus(std::uint64_t id);
    std::string handleResult(const std::string &key);
    std::string jobStatusJson(const JobRecord &job) const;

    ServerConfig cfg_;
    std::unique_ptr<ResultCache> cache_;

    int listenFd_ = -1;
    std::uint16_t boundPort_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    mutable std::mutex jobMutex_;
    std::condition_variable jobCv_;
    std::map<std::uint64_t, JobRecord> jobs_;
    std::map<std::string, std::uint64_t> jobByPointKey_;
    std::deque<std::uint64_t> queue_;
    std::uint64_t nextJobId_ = 1;

    // /metrics counters (guarded by jobMutex_; registry reads them
    // under the same lock in metricsText()).
    obs::Registry registry_;
    std::uint64_t mSubmitted_ = 0;
    std::uint64_t mDeduped_ = 0;
    std::uint64_t mCacheHits_ = 0;
    std::uint64_t mCompleted_ = 0;
    std::uint64_t mFailed_ = 0;
    std::uint64_t mRejected_ = 0;
    std::uint64_t mConnections_ = 0;
};

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_SERVER_HH
