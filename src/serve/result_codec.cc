#include "serve/result_codec.hh"

#include <stdexcept>

namespace tacsim {
namespace serve {

namespace {

const JsonValue &
require(const JsonValue &obj, const char *key)
{
    if (!obj.has(key))
        throw std::runtime_error(
            "result codec: missing field '" + std::string(key) + "'");
    return obj.at(key);
}

} // namespace

JsonValue
runResultToJson(const RunResult &r)
{
    JsonObject o;
    o["benchmark"] = JsonValue(r.benchmark);
    o["instructions"] = JsonValue(r.instructions);
    o["cycles"] = JsonValue(r.cycles);
    o["ipc"] = JsonValue(r.ipc);
    o["events"] = JsonValue(r.events);
    o["stlb_mpki"] = JsonValue(r.stlbMpki);
    o["l2_replay_mpki"] = JsonValue(r.l2ReplayMpki);
    o["l2_nonreplay_mpki"] = JsonValue(r.l2NonReplayMpki);
    o["l2_ptl1_mpki"] = JsonValue(r.l2Ptl1Mpki);
    o["llc_replay_mpki"] = JsonValue(r.llcReplayMpki);
    o["llc_nonreplay_mpki"] = JsonValue(r.llcNonReplayMpki);
    o["llc_ptl1_mpki"] = JsonValue(r.llcPtl1Mpki);
    o["stall_t"] = JsonValue(r.stallT);
    o["stall_r"] = JsonValue(r.stallR);
    o["stall_n"] = JsonValue(r.stallN);
    o["avg_stall_per_walk"] = JsonValue(r.avgStallPerWalk);
    o["avg_stall_per_replay"] = JsonValue(r.avgStallPerReplay);
    o["avg_stall_per_nonreplay"] = JsonValue(r.avgStallPerNonReplay);
    o["max_stall_per_walk"] = JsonValue(r.maxStallPerWalk);
    o["max_stall_per_replay"] = JsonValue(r.maxStallPerReplay);
    o["leaf_l1d"] = JsonValue(r.leafL1D);
    o["leaf_l2c"] = JsonValue(r.leafL2C);
    o["leaf_llc"] = JsonValue(r.leafLLC);
    o["leaf_dram"] = JsonValue(r.leafDram);
    o["replay_l1d"] = JsonValue(r.replayL1D);
    o["replay_l2c"] = JsonValue(r.replayL2C);
    o["replay_llc"] = JsonValue(r.replayLLC);
    o["replay_dram"] = JsonValue(r.replayDram);
    o["leaf_onchip_hit_rate"] = JsonValue(r.leafOnChipHitRate);
    o["atp_issued"] = JsonValue(r.atpIssued);
    o["atp_useful"] = JsonValue(r.atpUseful);
    o["tempo_issued"] = JsonValue(r.tempoIssued);
    JsonArray tc, ti;
    for (std::uint64_t v : r.threadCycles)
        tc.push_back(JsonValue(v));
    for (std::uint64_t v : r.threadInstructions)
        ti.push_back(JsonValue(v));
    o["thread_cycles"] = JsonValue(std::move(tc));
    o["thread_instructions"] = JsonValue(std::move(ti));
    return JsonValue(std::move(o));
}

RunResult
runResultFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw std::runtime_error("result codec: expected an object");
    RunResult r;
    r.benchmark = require(v, "benchmark").asString();
    r.instructions = require(v, "instructions").asU64();
    r.cycles = require(v, "cycles").asU64();
    r.ipc = require(v, "ipc").asNumber();
    r.events = require(v, "events").asU64();
    r.stlbMpki = require(v, "stlb_mpki").asNumber();
    r.l2ReplayMpki = require(v, "l2_replay_mpki").asNumber();
    r.l2NonReplayMpki = require(v, "l2_nonreplay_mpki").asNumber();
    r.l2Ptl1Mpki = require(v, "l2_ptl1_mpki").asNumber();
    r.llcReplayMpki = require(v, "llc_replay_mpki").asNumber();
    r.llcNonReplayMpki = require(v, "llc_nonreplay_mpki").asNumber();
    r.llcPtl1Mpki = require(v, "llc_ptl1_mpki").asNumber();
    r.stallT = require(v, "stall_t").asU64();
    r.stallR = require(v, "stall_r").asU64();
    r.stallN = require(v, "stall_n").asU64();
    r.avgStallPerWalk = require(v, "avg_stall_per_walk").asNumber();
    r.avgStallPerReplay = require(v, "avg_stall_per_replay").asNumber();
    r.avgStallPerNonReplay =
        require(v, "avg_stall_per_nonreplay").asNumber();
    r.maxStallPerWalk = require(v, "max_stall_per_walk").asU64();
    r.maxStallPerReplay = require(v, "max_stall_per_replay").asU64();
    r.leafL1D = require(v, "leaf_l1d").asNumber();
    r.leafL2C = require(v, "leaf_l2c").asNumber();
    r.leafLLC = require(v, "leaf_llc").asNumber();
    r.leafDram = require(v, "leaf_dram").asNumber();
    r.replayL1D = require(v, "replay_l1d").asNumber();
    r.replayL2C = require(v, "replay_l2c").asNumber();
    r.replayLLC = require(v, "replay_llc").asNumber();
    r.replayDram = require(v, "replay_dram").asNumber();
    r.leafOnChipHitRate = require(v, "leaf_onchip_hit_rate").asNumber();
    r.atpIssued = require(v, "atp_issued").asU64();
    r.atpUseful = require(v, "atp_useful").asU64();
    r.tempoIssued = require(v, "tempo_issued").asU64();
    for (const JsonValue &e : require(v, "thread_cycles").asArray())
        r.threadCycles.push_back(e.asU64());
    for (const JsonValue &e : require(v, "thread_instructions").asArray())
        r.threadInstructions.push_back(e.asU64());
    return r;
}

} // namespace serve
} // namespace tacsim
