/**
 * @file
 * Exact JSON codec for RunResult — the serve layer's interchange form.
 *
 * Unlike the human-facing tacsim-sweep-v1 report (which rounds doubles
 * to %.6g for readability), this codec must round-trip: a RunResult
 * stored in the result cache and decoded later has to be
 * indistinguishable from the freshly computed one, or a cache hit
 * would produce a different canonical stats dump than the run it
 * memoizes. Doubles therefore serialize with full precision
 * (serve/json.hh prints %.17g) and every field of RunResult is
 * covered; decode rejects missing fields rather than defaulting them,
 * so the codec and the struct cannot drift apart silently.
 */

#ifndef TACSIM_SERVE_RESULT_CODEC_HH
#define TACSIM_SERVE_RESULT_CODEC_HH

#include "serve/json.hh"
#include "sim/runner.hh"

namespace tacsim {
namespace serve {

/** Encode every field of @p r as a JSON object. */
JsonValue runResultToJson(const RunResult &r);

/** Decode a runResultToJson object; throws std::runtime_error on
 *  missing or mistyped fields. */
RunResult runResultFromJson(const JsonValue &v);

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_RESULT_CODEC_HH
