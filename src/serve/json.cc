#include "serve/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tacsim {
namespace serve {

namespace {

[[noreturn]] void
fail(const char *what, std::size_t pos)
{
    throw std::runtime_error("json: " + std::string(what) +
                             " at byte " + std::to_string(pos));
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        skipWs();
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage", pos_);
        return v;
    }

  private:
    static constexpr unsigned kMaxDepth = 64;

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input", pos_);
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character", pos_);
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        if (depth_ > kMaxDepth)
            fail("nesting too deep", pos_);
        switch (peek()) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return JsonValue(parseString());
        case 't':
            if (!consumeLiteral("true"))
                fail("bad literal", pos_);
            return JsonValue(true);
        case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal", pos_);
            return JsonValue(false);
        case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal", pos_);
            return JsonValue();
        default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        ++depth_;
        expect('{');
        JsonObject obj;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return JsonValue(std::move(obj));
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            obj[std::move(key)] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
        --depth_;
        return JsonValue(std::move(obj));
    }

    JsonValue
    parseArray()
    {
        ++depth_;
        expect('[');
        JsonArray arr;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return JsonValue(std::move(arr));
        }
        for (;;) {
            skipWs();
            arr.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
        --depth_;
        return JsonValue(std::move(arr));
    }

    unsigned
    parseHex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++pos_;
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u escape", pos_ - 1);
        }
        return v;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            // tacsim-lint: allow(magic-page-constant) UTF-8 continuation shift, not page math
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            // tacsim-lint: allow(magic-page-constant) UTF-8 continuation shift, not page math
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string", pos_);
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string", pos_ - 1);
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // Surrogate pair.
                    if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                        text_[pos_ + 1] != 'u')
                        fail("unpaired surrogate", pos_);
                    pos_ += 2;
                    const unsigned lo = parseHex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("bad low surrogate", pos_);
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired surrogate", pos_);
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("bad escape", pos_ - 1);
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (peek() < '0' || peek() > '9')
            fail("bad number", pos_);
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (peek() < '0' || peek() > '9')
                fail("bad number", pos_);
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (peek() < '0' || peek() > '9')
                fail("bad number", pos_);
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        return JsonValue(std::strtod(token.c_str(), nullptr));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    unsigned depth_ = 0;
};

const JsonValue kNullValue{};

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw std::runtime_error("json: expected bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        throw std::runtime_error("json: expected number");
    return num_;
}

std::uint64_t
JsonValue::asU64() const
{
    const double d = asNumber();
    if (!(d >= 0) || d != std::floor(d) || d > 9007199254740992.0)
        throw std::runtime_error(
            "json: expected a non-negative integer");
    return static_cast<std::uint64_t>(d);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw std::runtime_error("json: expected string");
    return str_;
}

const JsonArray &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        throw std::runtime_error("json: expected array");
    return *arr_;
}

const JsonObject &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        throw std::runtime_error("json: expected object");
    return *obj_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return kNullValue;
    auto it = obj_->find(key);
    return it == obj_->end() ? kNullValue : it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return kind_ == Kind::Object && obj_->count(key) != 0;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
JsonValue::dumpTo(std::string &out) const
{
    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Kind::Number: {
        char buf[40];
        // Integers (the common case: cycles, counts) print without an
        // exponent; everything else round-trips via %.17g.
        if (num_ == std::floor(num_) && std::fabs(num_) < 1e15)
            std::snprintf(buf, sizeof(buf), "%.0f", num_);
        else
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out += buf;
        break;
    }
    case Kind::String:
        out += jsonQuote(str_);
        break;
    case Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &v : *arr_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
    }
    case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : *obj_) {
            if (!first)
                out += ',';
            first = false;
            out += jsonQuote(k);
            out += ':';
            v.dumpTo(out);
        }
        out += '}';
        break;
    }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace serve
} // namespace tacsim
