#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/point_key.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"

namespace tacsim {
namespace serve {

namespace {

/** Per-connection socket timeouts: a stalled peer must not pin the
 *  accept loop forever. */
void
setSocketTimeouts(int fd)
{
    struct timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer gone or timed out; nothing to salvage
        off += static_cast<std::size_t>(n);
    }
}

const char *
jobStateName(int state)
{
    switch (state) {
    case 0:
        return "queued";
    case 1:
        return "running";
    case 2:
        return "done";
    default:
        return "failed";
    }
}

} // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg))
{
    if (!cfg_.cacheDir.empty())
        cache_ = std::make_unique<ResultCache>(cfg_.cacheDir,
                                               cfg_.maxCacheBytes);
    registry_.addCounter("serve.jobs_submitted", &mSubmitted_);
    registry_.addCounter("serve.jobs_deduped", &mDeduped_);
    registry_.addCounter("serve.cache_hits", &mCacheHits_);
    registry_.addCounter("serve.jobs_completed", &mCompleted_);
    registry_.addCounter("serve.jobs_failed", &mFailed_);
    registry_.addCounter("serve.requests_rejected", &mRejected_);
    registry_.addCounter("serve.connections", &mConnections_);
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("serve: socket() failed: " +
                                 std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: bad bind address " + cfg_.host);
    }
    if (::bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        const std::string err = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: cannot listen on " + cfg_.host +
                                 ":" + std::to_string(cfg_.port) + ": " +
                                 err);
    }

    struct sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<struct sockaddr *>(&bound),
                  &blen);
    boundPort_ = ntohs(bound.sin_port);

    unsigned workers = cfg_.workers;
    if (workers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = std::min(hw ? hw : 1u, 4u);
    }
    for (unsigned w = 0; w < workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_relaxed);
    // Closing the listen socket pops the accept loop out of accept().
    const int fd = listenFd_;
    listenFd_ = -1;
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    jobCv_.notify_all();
}

void
Server::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();

    // Queued-but-never-run jobs fail loudly so pollers see a terminal
    // state instead of hanging on "queued" forever.
    std::lock_guard<std::mutex> lk(jobMutex_);
    while (!queue_.empty()) {
        auto it = jobs_.find(queue_.front());
        queue_.pop_front();
        if (it != jobs_.end() && it->second.state == JobState::Queued) {
            it->second.state = JobState::Failed;
            it->second.error = "server shutting down";
            ++mFailed_;
        }
    }
}

void
Server::stop()
{
    requestStop();
    wait();
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed))
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listen socket gone
        }
        setSocketTimeouts(fd);
        handleConnection(fd);
        ::close(fd);
    }
}

void
Server::handleConnection(int fd)
{
    {
        std::lock_guard<std::mutex> lk(jobMutex_);
        ++mConnections_;
    }
    HttpRequestParser parser;
    // tacsim-lint: allow(magic-page-constant) socket read buffer, not page math
    char chunk[4096];
    while (parser.state() == HttpRequestParser::State::NeedMore) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break; // closed or timed out mid-request
        parser.feed(chunk, static_cast<std::size_t>(n));
    }

    if (parser.state() != HttpRequestParser::State::Done) {
        std::lock_guard<std::mutex> lk(jobMutex_);
        ++mRejected_;
        sendAll(fd, httpError(400, "Bad Request",
                              parser.error().empty() ? "incomplete request"
                                                     : parser.error()));
        return;
    }
    sendAll(fd, handleRequest(parser.request()));
}

std::string
Server::handleRequest(const HttpRequest &req)
{
    const std::string &t = req.target;
    if (req.method == "GET") {
        if (t == "/healthz")
            return httpOkText("ok\n");
        if (t == "/metrics")
            return httpOkText(metricsText());
        if (t.rfind("/jobs/", 0) == 0) {
            const std::string idText = t.substr(6);
            char *end = nullptr;
            const unsigned long long id =
                std::strtoull(idText.c_str(), &end, 10);
            if (end == idText.c_str() || *end != '\0')
                return httpError(404, "Not Found", "bad job id");
            return handleJobStatus(id);
        }
        if (t.rfind("/results/", 0) == 0)
            return handleResult(t.substr(9));
        return httpError(404, "Not Found", "unknown endpoint");
    }
    if (req.method == "POST" && t == "/jobs")
        return handleSubmit(req);
    return httpError(405, "Method Not Allowed",
                     "unsupported method for " + t);
}

std::string
Server::handleSubmit(const HttpRequest &req)
{
    JobSpec spec;
    std::string key;
    try {
        spec = parseJobSpec(parseJson(req.body));
        key = jobSpecPointKey(spec);
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lk(jobMutex_);
        ++mRejected_;
        return httpError(400, "Bad Request", e.what());
    }

    std::unique_lock<std::mutex> lk(jobMutex_);
    ++mSubmitted_;

    // In-flight / already-computed dedup: one point key, one job.
    auto known = jobByPointKey_.find(key);
    if (known != jobByPointKey_.end()) {
        ++mDeduped_;
        return httpOkJson(jobStatusJson(jobs_.at(known->second)));
    }

    JobRecord job;
    job.id = nextJobId_++;
    job.pointKey = key;
    job.spec = std::move(spec);

    // A persistent-cache hit completes the job at submission time.
    if (cache_) {
        CacheEntry entry;
        lk.unlock(); // file I/O outside the job lock
        const bool hit = cache_->lookup(key, entry);
        lk.lock();
        if (hit) {
            job.state = JobState::Done;
            job.cached = true;
            job.result = entry.result;
            job.statsDump = entry.statsDump;
            job.runRecord = entry.runRecord;
            ++mCacheHits_;
            ++mCompleted_;
        }
    }

    const bool enqueue = job.state == JobState::Queued;
    const std::uint64_t id = job.id;
    jobByPointKey_[key] = id;
    jobs_[id] = std::move(job);
    if (enqueue) {
        if (stopping_.load(std::memory_order_relaxed)) {
            jobs_[id].state = JobState::Failed;
            jobs_[id].error = "server shutting down";
            ++mFailed_;
        } else {
            queue_.push_back(id);
            jobCv_.notify_one();
        }
    }
    return httpOkJson(jobStatusJson(jobs_.at(id)));
}

std::string
Server::handleJobStatus(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(jobMutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return httpError(404, "Not Found",
                         "unknown job " + std::to_string(id));
    return httpOkJson(jobStatusJson(it->second));
}

std::string
Server::handleResult(const std::string &key)
{
    if (!isPointKey(key))
        return httpError(404, "Not Found", "malformed point key");
    {
        std::lock_guard<std::mutex> lk(jobMutex_);
        auto it = jobByPointKey_.find(key);
        if (it != jobByPointKey_.end()) {
            const JobRecord &job = jobs_.at(it->second);
            if (job.state == JobState::Done)
                return httpOkText(job.statsDump);
        }
    }
    if (cache_) {
        CacheEntry entry;
        if (cache_->lookup(key, entry))
            return httpOkText(entry.statsDump);
    }
    return httpError(404, "Not Found", "no result for " + key);
}

std::string
Server::jobStatusJson(const JobRecord &job) const
{
    JsonObject o;
    o["id"] = JsonValue(job.id);
    o["point_key"] = JsonValue(job.pointKey);
    o["status"] =
        JsonValue(jobStateName(static_cast<int>(job.state)));
    o["cached"] = JsonValue(job.cached);
    if (job.state == JobState::Failed)
        o["error"] = JsonValue(job.error);
    if (job.state == JobState::Done) {
        o["benchmark"] = JsonValue(job.result.benchmark);
        o["cycles"] = JsonValue(job.result.cycles);
        o["instructions"] = JsonValue(job.result.instructions);
        o["ipc"] = JsonValue(job.result.ipc);
        o["stats_dump"] = JsonValue(job.statsDump);
        o["run"] = parseJson(job.runRecord.empty() ? "null"
                                                   : job.runRecord);
    }
    return JsonValue(std::move(o)).dump();
}

void
Server::workerLoop()
{
    for (;;) {
        std::uint64_t id = 0;
        JobSpec spec;
        std::string key;
        {
            std::unique_lock<std::mutex> lk(jobMutex_);
            jobCv_.wait(lk, [this] {
                return !queue_.empty() ||
                    stopping_.load(std::memory_order_relaxed);
            });
            if (queue_.empty())
                return; // stopping and drained
            id = queue_.front();
            queue_.pop_front();
            JobRecord &job = jobs_.at(id);
            job.state = JobState::Running;
            spec = job.spec;
            key = job.pointKey;
        }

        RunResult result;
        std::string error;
        try {
            result = runSpecMix(spec.cfg, spec.specs, spec.instructions,
                                spec.warmup);
        } catch (const std::exception &e) {
            error = e.what();
        } catch (...) {
            error = "unknown exception";
        }

        std::string dump;
        if (error.empty()) {
            dump = dumpRunResult(result);
            if (cache_) {
                CacheEntry entry;
                entry.pointKey = key;
                entry.runRecord = makeRunRecord(key, result);
                entry.statsDump = dump;
                entry.result = result;
                cache_->store(entry);
            }
        }

        std::lock_guard<std::mutex> lk(jobMutex_);
        JobRecord &job = jobs_.at(id);
        if (error.empty()) {
            job.state = JobState::Done;
            job.result = std::move(result);
            job.statsDump = std::move(dump);
            job.runRecord = makeRunRecord(key, job.result);
            ++mCompleted_;
        } else {
            job.state = JobState::Failed;
            job.error = std::move(error);
            ++mFailed_;
        }
    }
}

std::string
Server::metricsText()
{
    std::lock_guard<std::mutex> lk(jobMutex_);
    std::string out = registry_.dumpText();
    // Gauges the registry cannot own (they live behind this mutex).
    out += "serve.jobs_queued " + std::to_string(queue_.size()) + "\n";
    out += "serve.jobs_known " + std::to_string(jobs_.size()) + "\n";
    if (cache_) {
        out += "serve.cache_entries " +
            std::to_string(cache_->entries()) + "\n";
        out += "serve.cache_bytes " +
            std::to_string(cache_->totalBytes()) + "\n";
        out += "serve.cache_store_hits " +
            std::to_string(cache_->hits()) + "\n";
        out += "serve.cache_store_misses " +
            std::to_string(cache_->misses()) + "\n";
        out += "serve.cache_corrupt_misses " +
            std::to_string(cache_->corruptMisses()) + "\n";
        out += "serve.cache_evictions " +
            std::to_string(cache_->evictions()) + "\n";
    }
    return out;
}

} // namespace serve
} // namespace tacsim
