/**
 * @file
 * Minimal HTTP/1.1 message layer for the serve daemon — hand-rolled
 * over POSIX sockets, zero third-party dependencies.
 *
 * Scope is exactly what the daemon's API needs: request-line + headers
 * + optional Content-Length body (no chunked transfer, no pipelining,
 * one request per connection, "Connection: close" semantics). The
 * parser is incremental (feed() bytes as they arrive) and defensive:
 * header-section and body sizes are capped, malformed input moves the
 * parser to Error instead of throwing, and nothing a peer sends can
 * allocate unboundedly — a network-facing parser is the one place in
 * this codebase where inputs are genuinely adversarial.
 *
 * Kept separate from the server so tests can drive the parser with
 * byte-exact fragments (split mid-line, oversized, torn bodies) without
 * opening sockets.
 */

#ifndef TACSIM_SERVE_HTTP_HH
#define TACSIM_SERVE_HTTP_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace tacsim {
namespace serve {

struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< request target, e.g. "/jobs/3"
    std::string version; ///< "HTTP/1.1"
    /** Header fields, keys lower-cased (field names are
     *  case-insensitive per RFC 9110). */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Header value or "" when absent (@p name must be lower-case). */
    const std::string &header(const std::string &name) const;
};

/**
 * Incremental request parser. feed() bytes until state() leaves
 * NeedMore; on Done, request() is complete (any bytes past the message
 * end are ignored — connections are not pipelined). On Error,
 * error() explains and the connection should be answered 400 and
 * closed.
 */
class HttpRequestParser
{
  public:
    enum class State : std::uint8_t
    {
        NeedMore,
        Done,
        Error,
    };

    /** Caps chosen for the daemon's tiny API; a job spec is ~1KB. */
    static constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
    static constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

    State feed(const char *data, std::size_t n);
    State state() const { return state_; }
    const HttpRequest &request() const { return req_; }
    const std::string &error() const { return error_; }

  private:
    State fail(const std::string &why);
    bool parseHeaderSection(const std::string &text);

    State state_ = State::NeedMore;
    bool headersDone_ = false;
    std::size_t bodyNeeded_ = 0;
    std::string buf_;
    HttpRequest req_;
    std::string error_;
};

/** Serialize a response: status line, headers (Content-Length and
 *  Connection: close added), blank line, body. */
std::string makeHttpResponse(int status, const std::string &reason,
                             const std::string &contentType,
                             const std::string &body);

/** Convenience wrappers used across the server's handlers. */
std::string httpOkJson(const std::string &json);
std::string httpOkText(const std::string &text);
std::string httpError(int status, const std::string &reason,
                      const std::string &message);

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_HTTP_HH
