/**
 * @file
 * Dependency-free SHA-256 (FIPS 180-4) for content addressing.
 *
 * The serve layer keys its persistent result cache on a cryptographic
 * digest of everything that determines a simulation's outcome
 * (serve/point_key.hh). CRC-32 — the repo's integrity check for trace
 * and checkpoint files — is fine for detecting corruption but far too
 * collision-prone to *address* by: two different experiment points
 * mapping to one cache slot would silently serve wrong results. SHA-256
 * makes that practically impossible, and its 64-hex digests double as
 * stable, filesystem-safe object names.
 *
 * Incremental interface (init/update/final) so large trace files hash
 * in fixed memory; one-shot helpers cover the common case.
 */

#ifndef TACSIM_SERVE_SHA256_HH
#define TACSIM_SERVE_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tacsim {
namespace serve {

class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, std::size_t n);

    /** Finalize and return the 32-byte digest. The object must be
     *  reset() before further use. */
    std::array<std::uint8_t, 32> digest();

    /** Finalize and return the digest as 64 lowercase hex chars. */
    std::string hexDigest();

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> h_;
    std::array<std::uint8_t, 64> buf_;
    std::size_t bufLen_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/** One-shot digest of a byte buffer, as 64 lowercase hex chars. */
std::string sha256Hex(const void *data, std::size_t n);
std::string sha256Hex(const std::string &s);

/**
 * Digest of a file's contents (streamed, fixed memory), as 64 lowercase
 * hex chars. Throws std::runtime_error if the file cannot be read.
 */
std::string sha256FileHex(const std::string &path);

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_SHA256_HH
