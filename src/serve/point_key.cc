#include "serve/point_key.hh"

#include <sys/stat.h>

#include <map>
#include <mutex>
#include <stdexcept>

#include "serve/sha256.hh"
#include "sim/config.hh"
#include "sim/runner.hh"

namespace tacsim {
namespace serve {

namespace {

/**
 * Digest of a trace file's bytes, memoized per (path, mtime, size).
 * Hashing a multi-MB trace on every submission would dominate a warm
 * cache hit; the (mtime, size) pair invalidates the memo when the file
 * is rewritten in place.
 */
std::string
traceFileDigest(const std::string &path)
{
    struct Stamp
    {
        std::int64_t mtime;
        std::uint64_t size;
        std::string digest;
    };
    static std::mutex mu;
    static std::map<std::string, Stamp> memo;

    struct ::stat st{};
    if (::stat(path.c_str(), &st) != 0)
        throw std::runtime_error("pointKey: cannot stat trace file " +
                                 path);
    const std::int64_t mtime = static_cast<std::int64_t>(st.st_mtime);
    const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = memo.find(path);
        if (it != memo.end() && it->second.mtime == mtime &&
            it->second.size == size)
            return it->second.digest;
    }

    const std::string digest = sha256FileHex(path);
    std::lock_guard<std::mutex> lock(mu);
    memo[path] = Stamp{mtime, size, digest};
    return digest;
}

/** Canonical one-line form of a workload spec: trace specs become
 *  content digests, everything else (benchmark names) passes through. */
std::string
canonicalSpec(const std::string &spec)
{
    if (spec.rfind("trace:", 0) == 0)
        return "trace-sha256:" + traceFileDigest(spec.substr(6));
    return spec;
}

std::string
digestPoint(const SystemConfig &cfg,
            const std::vector<std::string> &specs,
            std::uint64_t instructions, std::uint64_t warmup,
            bool includeInstructions)
{
    std::string text;
    // tacsim-lint: allow(magic-page-constant) string capacity hint, not page math
    text.reserve(4096);
    text += includeInstructions ? "tacsim-point-v1\n" : "tacsim-warm-v1\n";
    text += canonicalConfigText(cfg);
    text += "threads " + std::to_string(specs.size()) + '\n';
    for (const std::string &s : specs)
        text += "spec " + canonicalSpec(s) + '\n';
    if (includeInstructions)
        text += "instructions " +
            std::to_string(instructions ? instructions
                                        : defaultInstructions()) +
            '\n';
    text += "warmup " +
        std::to_string(warmup ? warmup : defaultWarmup()) + '\n';
    return sha256Hex(text);
}

} // namespace

std::string
pointKey(const SystemConfig &cfg, const std::vector<std::string> &specs,
         std::uint64_t instructions, std::uint64_t warmup)
{
    return digestPoint(cfg, specs, instructions, warmup, true);
}

std::string
pointKey(const SystemConfig &cfg, const std::string &spec,
         std::uint64_t instructions, std::uint64_t warmup)
{
    const std::vector<std::string> specs(cfg.threads(), spec);
    return pointKey(cfg, specs, instructions, warmup);
}

std::string
warmKey(const SystemConfig &cfg, const std::vector<std::string> &specs,
        std::uint64_t warmup)
{
    return digestPoint(cfg, specs, 0, warmup, false);
}

bool
isPointKey(const std::string &s)
{
    if (s.size() != 64)
        return false;
    for (char c : s)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

} // namespace serve
} // namespace tacsim
