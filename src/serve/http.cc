#include "serve/http.hh"

#include <cstdlib>
#include <sstream>

#include "serve/json.hh"

namespace tacsim {
namespace serve {

namespace {

const std::string kEmpty;

std::string
toLower(std::string s)
{
    for (char &c : s)
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                     s[e - 1] == '\r'))
        --e;
    return s.substr(b, e - b);
}

} // namespace

const std::string &
HttpRequest::header(const std::string &name) const
{
    auto it = headers.find(name);
    return it == headers.end() ? kEmpty : it->second;
}

HttpRequestParser::State
HttpRequestParser::fail(const std::string &why)
{
    state_ = State::Error;
    error_ = why;
    return state_;
}

bool
HttpRequestParser::parseHeaderSection(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        return false;
    // Request line: METHOD SP target SP HTTP/x.y
    std::istringstream rl(trim(line));
    if (!(rl >> req_.method >> req_.target >> req_.version))
        return false;
    std::string extra;
    if (rl >> extra)
        return false;
    if (req_.version.rfind("HTTP/", 0) != 0)
        return false;

    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return false;
        req_.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }
    return true;
}

HttpRequestParser::State
HttpRequestParser::feed(const char *data, std::size_t n)
{
    if (state_ != State::NeedMore)
        return state_;
    buf_.append(data, n);

    if (!headersDone_) {
        const std::size_t end = buf_.find("\r\n\r\n");
        if (end == std::string::npos) {
            if (buf_.size() > kMaxHeaderBytes)
                return fail("header section too large");
            return state_;
        }
        if (end > kMaxHeaderBytes)
            return fail("header section too large");
        if (!parseHeaderSection(buf_.substr(0, end)))
            return fail("malformed request line or header");
        buf_.erase(0, end + 4);
        headersDone_ = true;

        const std::string &cl = req_.header("content-length");
        if (!cl.empty()) {
            char *endp = nullptr;
            const unsigned long long v =
                std::strtoull(cl.c_str(), &endp, 10);
            if (endp == cl.c_str() || *endp != '\0')
                return fail("malformed Content-Length");
            if (v > kMaxBodyBytes)
                return fail("body too large");
            bodyNeeded_ = static_cast<std::size_t>(v);
        } else if (!req_.header("transfer-encoding").empty()) {
            return fail("chunked transfer encoding not supported");
        }
    }

    if (buf_.size() >= bodyNeeded_) {
        req_.body = buf_.substr(0, bodyNeeded_);
        buf_.clear();
        state_ = State::Done;
    }
    return state_;
}

std::string
makeHttpResponse(int status, const std::string &reason,
                 const std::string &contentType, const std::string &body)
{
    std::string out;
    out.reserve(body.size() + 128);
    out += "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
    out += "Content-Type: " + contentType + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n";
    out += "\r\n";
    out += body;
    return out;
}

std::string
httpOkJson(const std::string &json)
{
    return makeHttpResponse(200, "OK", "application/json", json);
}

std::string
httpOkText(const std::string &text)
{
    return makeHttpResponse(200, "OK", "text/plain; charset=utf-8", text);
}

std::string
httpError(int status, const std::string &reason,
          const std::string &message)
{
    JsonObject o;
    o["error"] = JsonValue(message);
    return makeHttpResponse(status, reason, "application/json",
                            JsonValue(std::move(o)).dump());
}

} // namespace serve
} // namespace tacsim
