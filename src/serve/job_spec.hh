/**
 * @file
 * JSON job specification — the serve daemon's submission format.
 *
 * A job spec describes one simulation point:
 *
 *   {
 *     "spec": "mcf" | ["mcf", "xalancbmk"],    // workload spec(s)
 *     "instructions": 20000,                   // optional, 0 = default
 *     "warmup": 5000,                          // optional, 0 = default
 *     "config": { ... }                        // optional overrides
 *   }
 *
 * "spec" is either one workload spec applied to every hardware thread
 * (a Table-II benchmark name or "trace:<path>", resolved on the
 * daemon's filesystem) or an array with exactly one spec per thread.
 *
 * "config" overrides named fields of the default SystemConfig:
 *   num_cores, threads_per_core, seed          integers
 *   topology                                   canonical topology spec
 *                                              (sim/topology.hh), applied
 *                                              before other overrides
 *   translation_aware                          true = the paper's full
 *                                              T-DRRIP+T-SHiP+ATP switch
 *                                              set, or an object with
 *                                              tdrrip/tship/
 *                                              new_signatures_only/atp/
 *                                              tempo booleans
 *   l2_policy, llc_policy                      "LRU"|"Random"|"SRRIP"|
 *                                              "BRRIP"|"DRRIP"|"SHiP"|
 *                                              "Hawkeye"
 *   l1_prefetcher, l2_prefetcher               "None"|"NextLine"|
 *                                              "IpStride"|"Spp"|"Bingo"|
 *                                              "Ipcp"|"Isb"
 *   atp_l2, atp_llc, tempo                     booleans
 *   dtlb_entries, stlb_entries                 integers
 *   huge_pages_2m, huge_pages_1g               fractions [0,1]
 *   nested                                     boolean
 *   host_huge_pages_2m, host_huge_pages_1g     fractions [0,1]
 *
 * Unknown keys are rejected (a typoed override must not silently
 * simulate the default), and every parse error carries the offending
 * key. Parsing never touches global state, so the server can validate
 * submissions on its network threads.
 */

#ifndef TACSIM_SERVE_JOB_SPEC_HH
#define TACSIM_SERVE_JOB_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/json.hh"
#include "sim/config.hh"

namespace tacsim {
namespace serve {

struct JobSpec
{
    SystemConfig cfg;
    std::vector<std::string> specs; ///< one per hardware thread
    std::uint64_t instructions = 0; ///< 0 = runner default
    std::uint64_t warmup = 0;       ///< 0 = runner default
};

/** Parse a submission body; throws std::runtime_error with a
 *  user-facing message on any defect. */
JobSpec parseJobSpec(const JsonValue &v);

/** Canonical point hash of a parsed spec (serve/point_key.hh). */
std::string jobSpecPointKey(const JobSpec &spec);

} // namespace serve
} // namespace tacsim

#endif // TACSIM_SERVE_JOB_SPEC_HH
