/**
 * @file
 * Periodic metrics sampler: every N retired instructions it snapshots
 * the whole Registry and appends one JSONL record, producing the
 * `tacsim-timeseries-v1` format consumed by tools/tacsim-stats:
 *
 *   {"schema":"tacsim-timeseries-v1","label":L,"interval":N,
 *    "columns":[...]}                       <- first line, once
 *   {"i":I,"c":C,"v":[...]}                 <- one line per sample
 *   {"event":"reset","i":I,"c":C}           <- stats-reset marker
 *
 * "i" is total retired instructions across threads, "c" the global
 * cycle; "v" aligns with "columns" (counters as integers, gauges with
 * %.12g — the simulation is deterministic, so equal runs produce
 * byte-equal files, which the determinism tests exploit).
 *
 * The run loop's cost when sampling is off is a null-pointer test; when
 * on, between samples it is one integer compare per scheduler
 * iteration.
 */

#ifndef TACSIM_OBS_TIMESERIES_HH
#define TACSIM_OBS_TIMESERIES_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/registry.hh"

namespace tacsim {
namespace obs {

class Sampler
{
  public:
    /**
     * Opens @p path for writing and emits the header line. Throws
     * std::runtime_error when the file cannot be created.
     * @param interval instructions between samples (> 0)
     * @param label free-form run label recorded in the header
     */
    Sampler(const Registry &registry, std::string path,
            std::uint64_t interval, const std::string &label);
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Cheap per-iteration check; samples when the next boundary is
     *  crossed. */
    void
    maybeSample(std::uint64_t instructions, Cycle cycle)
    {
        if (instructions >= next_)
            sample(instructions, cycle);
    }

    /** Unconditionally snapshot now and advance the next boundary. */
    void sample(std::uint64_t instructions, Cycle cycle);

    /** Record a stats-reset marker (so consumers can split warm-up from
     *  measurement without guessing at counter drops). */
    void markReset(std::uint64_t instructions, Cycle cycle);

    /** Emit a final sample (unless one just fired at this instruction
     *  count) and close the file. Idempotent; called by ~System. */
    void finish(std::uint64_t instructions, Cycle cycle);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t interval() const { return interval_; }
    const std::string &path() const { return path_; }

  private:
    void writeSample(std::uint64_t instructions, Cycle cycle);

    const Registry &registry_;
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t interval_;
    std::uint64_t next_;
    std::uint64_t samples_ = 0;
    std::uint64_t lastSampledAt_ = ~std::uint64_t{0};
    std::vector<Registry::Value> scratch_;
};

} // namespace obs
} // namespace tacsim

#endif // TACSIM_OBS_TIMESERIES_HH
