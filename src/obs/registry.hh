/**
 * @file
 * Typed metrics registry: the single catalogue of every statistic the
 * simulator exposes. Components register handles at construction under
 * hierarchical dotted names ("l2c.repl.tdrrip.psel"); the registry never
 * owns or touches hot-path storage, it only records pointers into the
 * per-component stats structs — an increment stays a plain `++stats_.x`,
 * so registration costs nothing when no sampler or dump reads it.
 *
 * Three metric kinds:
 *  - counter:   monotone within a measurement window, resets to zero
 *               (a `const std::uint64_t *` into a stats struct);
 *  - gauge:     instantaneous architectural state (DRRIP PSEL, CSALT way
 *               quota, predictor table occupancy) — survives resetStats
 *               by design, sampled through a `std::function<double()>`;
 *  - histogram: a `const Histogram *`, expanded in flat snapshots as
 *               `<name>.count/.mean/.max/.bucket<i>`.
 *
 * The registry also centralizes reset: components register reset hooks,
 * System::resetStats() calls resetAll(), and nonZeroAfterReset() audits
 * that every counter and histogram actually returned to zero — the
 * regression net for stats that used to survive warm-up.
 */

#ifndef TACSIM_OBS_REGISTRY_HH
#define TACSIM_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/histogram.hh"

namespace tacsim {
namespace obs {

class Registry
{
  public:
    /** One flat snapshot value (histograms arrive pre-expanded). */
    struct Value
    {
        bool isInt = true;
        std::uint64_t u = 0;
        double d = 0.0;
    };

    /** Register a counter backed by @p v. The pointee must outlive the
     *  registry. Names are validated ([a-z0-9._-], unique). */
    void addCounter(const std::string &name, const std::uint64_t *v);

    /** Register a gauge computed on demand by @p fn. */
    void addGauge(const std::string &name, std::function<double()> fn);

    /** Register a histogram backed by @p h. */
    void addHistogram(const std::string &name, const Histogram *h);

    /** Register a hook invoked by resetAll() (component stat reset). */
    void addResetHook(std::function<void()> hook);

    /** Invoke every reset hook, in registration order. */
    void resetAll();

    /** Number of registered metrics (histograms count once). */
    std::size_t size() const { return entries_.size(); }
    bool has(const std::string &name) const
    {
        return names_.count(name) != 0;
    }

    /**
     * Flat column names in registration order; histograms expand to
     * .count/.mean/.max/.bucket<i>. Matches sampleInto() positions.
     */
    std::vector<std::string> columns() const;

    /** Append the current flat values to @p out (same order/length as
     *  columns()). Reuses @p out's capacity across calls. */
    void sampleInto(std::vector<Value> &out) const;

    /**
     * Deterministic full dump, "name value\n" per flat column, doubles
     * with "%.12g" — the registry-backed counterpart of dumpRunResult.
     */
    std::string dumpText() const;

    /**
     * Names of counters / histogram columns whose value is non-zero
     * right now. Called immediately after resetAll() this must be empty;
     * anything listed is a stat that survived a reset. Gauges are
     * exempt: they expose architectural state (PSEL, quotas) that a
     * stats reset intentionally preserves.
     */
    std::vector<std::string> nonZeroAfterReset() const;

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Hist };

    struct Entry
    {
        Kind kind;
        std::string name;
        const std::uint64_t *counter = nullptr;
        std::function<double()> gauge;
        const Histogram *hist = nullptr;
    };

    void addEntry(Entry e);

    std::vector<Entry> entries_;
    std::unordered_set<std::string> names_;
    std::vector<std::function<void()>> resetHooks_;
};

} // namespace obs
} // namespace tacsim

#endif // TACSIM_OBS_REGISTRY_HH
