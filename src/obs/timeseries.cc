#include "obs/timeseries.hh"

#include <stdexcept>

namespace tacsim {
namespace obs {

namespace {

/** Minimal JSON string escape; metric names are already [a-z0-9._-]. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    return out;
}

} // namespace

Sampler::Sampler(const Registry &registry, std::string path,
                 std::uint64_t interval, const std::string &label)
    : registry_(registry), path_(std::move(path)),
      interval_(interval ? interval : 1), next_(interval_)
{
    TACSIM_CHECK(!path_.empty() && "sampler needs an output path");
    file_ = std::fopen(path_.c_str(), "w");
    if (!file_)
        throw std::runtime_error("obs: cannot write timeseries file: " +
                                 path_);

    std::fprintf(file_,
                 "{\"schema\":\"tacsim-timeseries-v1\","
                 "\"label\":\"%s\",\"interval\":%llu,\"columns\":[",
                 jsonEscape(label).c_str(),
                 static_cast<unsigned long long>(interval_));
    const std::vector<std::string> cols = registry_.columns();
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::fprintf(file_, "%s\"%s\"", i ? "," : "",
                     jsonEscape(cols[i]).c_str());
    std::fprintf(file_, "]}\n");
}

Sampler::~Sampler()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
Sampler::writeSample(std::uint64_t instructions, Cycle cycle)
{
    registry_.sampleInto(scratch_);
    std::fprintf(file_, "{\"i\":%llu,\"c\":%llu,\"v\":[",
                 static_cast<unsigned long long>(instructions),
                 static_cast<unsigned long long>(cycle));
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
        const Registry::Value &v = scratch_[i];
        if (v.isInt)
            std::fprintf(file_, "%s%llu", i ? "," : "",
                         static_cast<unsigned long long>(v.u));
        else
            std::fprintf(file_, "%s%.12g", i ? "," : "", v.d);
    }
    std::fprintf(file_, "]}\n");
    ++samples_;
    lastSampledAt_ = instructions;
}

void
Sampler::sample(std::uint64_t instructions, Cycle cycle)
{
    if (!file_)
        return;
    writeSample(instructions, cycle);
    // Advance past the current boundary even when a burst of retires
    // overshot several intervals at once.
    while (next_ <= instructions)
        next_ += interval_;
}

void
Sampler::markReset(std::uint64_t instructions, Cycle cycle)
{
    if (!file_)
        return;
    std::fprintf(file_, "{\"event\":\"reset\",\"i\":%llu,\"c\":%llu}\n",
                 static_cast<unsigned long long>(instructions),
                 static_cast<unsigned long long>(cycle));
    // The instruction counter restarts at zero after a stats reset, so
    // the sampling boundary rewinds with it.
    next_ = interval_;
    lastSampledAt_ = ~std::uint64_t{0};
}

void
Sampler::finish(std::uint64_t instructions, Cycle cycle)
{
    if (!file_)
        return;
    if (instructions != lastSampledAt_)
        writeSample(instructions, cycle);
    std::fclose(file_);
    file_ = nullptr;
}

} // namespace obs
} // namespace tacsim
