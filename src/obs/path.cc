#include "obs/path.hh"

namespace tacsim {
namespace obs {

std::string
sanitizeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
            (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        out += ok ? c : '_';
    }
    return out;
}

std::string
expandPointPath(const std::string &pattern, const std::string &key)
{
    static const std::string kPlaceholder = "{key}";
    std::string out = pattern;
    const std::string token = sanitizeKey(key);
    std::size_t pos = 0;
    while ((pos = out.find(kPlaceholder, pos)) != std::string::npos) {
        out.replace(pos, kPlaceholder.size(), token);
        pos += token.size();
    }
    return out;
}

} // namespace obs
} // namespace tacsim
