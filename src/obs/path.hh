/**
 * @file
 * Output-path templating for per-point observability files. Sweep keys
 * ("mcf/proposed") become filesystem-safe tokens, and a "{key}"
 * placeholder in a configured timeseries / chrome-trace path expands to
 * that token — so one SystemConfig fanned out across a sweep writes one
 * file per point, safely in parallel under TACSIM_JOBS.
 */

#ifndef TACSIM_OBS_PATH_HH
#define TACSIM_OBS_PATH_HH

#include <string>

namespace tacsim {
namespace obs {

/** Map @p key to a filesystem-safe token: [A-Za-z0-9._-] kept, every
 *  other byte (slashes, spaces...) becomes '_'. */
std::string sanitizeKey(const std::string &key);

/** Replace every "{key}" in @p pattern with sanitizeKey(@p key). */
std::string expandPointPath(const std::string &pattern,
                            const std::string &key);

} // namespace obs
} // namespace tacsim

#endif // TACSIM_OBS_PATH_HH
