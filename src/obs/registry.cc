#include "obs/registry.hh"

#include <cstdio>

#include "common/types.hh"

namespace tacsim {
namespace obs {

namespace {

bool
validName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
            c == '.' || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

} // namespace

void
Registry::addEntry(Entry e)
{
    TACSIM_CHECK(validName(e.name) &&
                 "metric names are non-empty [a-z0-9._-]");
    TACSIM_CHECK(names_.insert(e.name).second &&
                 "duplicate metric name registered");
    entries_.push_back(std::move(e));
}

void
Registry::addCounter(const std::string &name, const std::uint64_t *v)
{
    TACSIM_CHECK(v && "counter storage must not be null");
    Entry e;
    e.kind = Kind::Counter;
    e.name = name;
    e.counter = v;
    addEntry(std::move(e));
}

void
Registry::addGauge(const std::string &name, std::function<double()> fn)
{
    TACSIM_CHECK(fn && "gauge function must not be null");
    Entry e;
    e.kind = Kind::Gauge;
    e.name = name;
    e.gauge = std::move(fn);
    addEntry(std::move(e));
}

void
Registry::addHistogram(const std::string &name, const Histogram *h)
{
    TACSIM_CHECK(h && "histogram storage must not be null");
    Entry e;
    e.kind = Kind::Hist;
    e.name = name;
    e.hist = h;
    addEntry(std::move(e));
}

void
Registry::addResetHook(std::function<void()> hook)
{
    TACSIM_CHECK(hook && "reset hook must not be null");
    resetHooks_.push_back(std::move(hook));
}

void
Registry::resetAll()
{
    for (auto &hook : resetHooks_)
        hook();
}

std::vector<std::string>
Registry::columns() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_) {
        switch (e.kind) {
          case Kind::Counter:
          case Kind::Gauge:
            out.push_back(e.name);
            break;
          case Kind::Hist:
            out.push_back(e.name + ".count");
            out.push_back(e.name + ".mean");
            out.push_back(e.name + ".max");
            for (std::size_t i = 0; i < e.hist->buckets(); ++i)
                out.push_back(e.name + ".bucket" + std::to_string(i));
            break;
        }
    }
    return out;
}

void
Registry::sampleInto(std::vector<Value> &out) const
{
    out.clear();
    for (const Entry &e : entries_) {
        Value v;
        switch (e.kind) {
          case Kind::Counter:
            v.u = *e.counter;
            out.push_back(v);
            break;
          case Kind::Gauge:
            v.isInt = false;
            v.d = e.gauge();
            out.push_back(v);
            break;
          case Kind::Hist: {
            v.u = e.hist->count();
            out.push_back(v);
            Value mean;
            mean.isInt = false;
            mean.d = e.hist->mean();
            out.push_back(mean);
            Value mx;
            mx.u = e.hist->max();
            out.push_back(mx);
            for (std::size_t i = 0; i < e.hist->buckets(); ++i) {
                Value b;
                b.u = e.hist->bucketCount(i);
                out.push_back(b);
            }
            break;
          }
        }
    }
}

std::string
Registry::dumpText() const
{
    const std::vector<std::string> names = columns();
    std::vector<Value> vals;
    sampleInto(vals);

    std::string out;
    out.reserve(names.size() * 32);
    for (std::size_t i = 0; i < names.size(); ++i) {
        out += names[i];
        out += ' ';
        if (vals[i].isInt)
            out += std::to_string(vals[i].u);
        else
            out += formatDouble(vals[i].d);
        out += '\n';
    }
    return out;
}

std::vector<std::string>
Registry::nonZeroAfterReset() const
{
    std::vector<std::string> bad;
    for (const Entry &e : entries_) {
        switch (e.kind) {
          case Kind::Counter:
            if (*e.counter != 0)
                bad.push_back(e.name);
            break;
          case Kind::Gauge:
            break; // architectural state, exempt by design
          case Kind::Hist:
            if (e.hist->count() != 0 || e.hist->max() != 0)
                bad.push_back(e.name);
            break;
        }
    }
    return bad;
}

} // namespace obs
} // namespace tacsim
