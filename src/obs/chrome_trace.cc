#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>

namespace tacsim {
namespace obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    return out;
}

} // namespace

ChromeTracer::ChromeTracer(std::string path) : path_(std::move(path))
{
    TACSIM_CHECK(!path_.empty() && "tracer needs an output path");
}

ChromeTracer::~ChromeTracer()
{
    finish();
}

std::uint32_t
ChromeTracer::addTrack(const std::string &name)
{
    tracks_.push_back(name);
    return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::uint32_t
ChromeTracer::intern(const std::string &name)
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<std::uint32_t>(i);
    names_.push_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

void
ChromeTracer::push(const Event &e)
{
    if (buffer_.size() >= kMaxEvents) {
        ++dropped_;
        return;
    }
    buffer_.push_back(e);
}

void
ChromeTracer::span(std::uint32_t track, std::uint32_t nameId, Cycle start,
                   Cycle end)
{
    TACSIM_DCHECK(end >= start && "span must not end before it starts");
    Event e{};
    e.track = track;
    e.nameId = nameId;
    e.phase = 'X';
    e.ts = start;
    e.dur = end - start;
    push(e);
}

void
ChromeTracer::counter(std::uint32_t track, std::uint32_t nameId, Cycle ts,
                      double value)
{
    Event e{};
    e.track = track;
    e.nameId = nameId;
    e.phase = 'C';
    e.ts = ts;
    e.value = value;
    push(e);
}

void
ChromeTracer::instant(std::uint32_t track, std::uint32_t nameId, Cycle ts)
{
    Event e{};
    e.track = track;
    e.nameId = nameId;
    e.phase = 'i';
    e.ts = ts;
    push(e);
}

bool
ChromeTracer::finish()
{
    if (finished_)
        return true;
    finished_ = true;

    // Perfetto wants non-decreasing timestamps within a track; events
    // are emitted in event-queue order, which interleaves tracks but is
    // already time-ordered per component. Sorting by (track, ts) is a
    // stable no-op per track and groups rows for readability.
    std::stable_sort(buffer_.begin(), buffer_.end(),
                     [](const Event &a, const Event &b) {
                         if (a.track != b.track)
                             return a.track < b.track;
                         return a.ts < b.ts;
                     });

    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "obs: cannot write chrome trace: %s\n",
                     path_.c_str());
        return false;
    }

    std::fprintf(f, "{\"traceEvents\":[\n");
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":"
                 "\"process_name\",\"args\":{\"name\":\"tacsim\"}}");
    for (std::size_t t = 0; t < tracks_.size(); ++t)
        std::fprintf(f,
                     ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"name\":"
                     "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                     t, jsonEscape(tracks_[t]).c_str());
    for (const Event &e : buffer_) {
        const std::string escaped = jsonEscape(names_[e.nameId]);
        const char *name = escaped.c_str();
        switch (e.phase) {
          case 'X':
            std::fprintf(f,
                         ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
                         "\"ts\":%llu,\"dur\":%llu,\"name\":\"%s\","
                         "\"cat\":\"tacsim\"}",
                         e.track,
                         static_cast<unsigned long long>(e.ts),
                         static_cast<unsigned long long>(e.dur), name);
            break;
          case 'C':
            std::fprintf(f,
                         ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":%u,"
                         "\"ts\":%llu,\"name\":\"%s\","
                         "\"args\":{\"value\":%.12g}}",
                         e.track,
                         static_cast<unsigned long long>(e.ts), name,
                         e.value);
            break;
          default:
            std::fprintf(f,
                         ",\n{\"ph\":\"i\",\"pid\":0,\"tid\":%u,"
                         "\"ts\":%llu,\"name\":\"%s\",\"s\":\"t\","
                         "\"cat\":\"tacsim\"}",
                         e.track,
                         static_cast<unsigned long long>(e.ts), name);
            break;
        }
    }
    std::fprintf(f,
                 "\n],\n\"displayTimeUnit\":\"ms\",\n"
                 "\"tacsimDroppedEvents\":%llu\n}\n",
                 static_cast<unsigned long long>(dropped_));
    const bool ok = std::fclose(f) == 0;
    if (dropped_)
        std::fprintf(stderr,
                     "obs: chrome trace %s dropped %llu events past the "
                     "%zu-event buffer cap\n",
                     path_.c_str(),
                     static_cast<unsigned long long>(dropped_),
                     kMaxEvents);
    buffer_.clear();
    buffer_.shrink_to_fit();
    return ok;
}

} // namespace obs
} // namespace tacsim
