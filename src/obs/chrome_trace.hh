/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto) event exporter for the
 * timeline view of a run: page-walk lifetimes, replay-load latencies,
 * MSHR occupancy and DRAM row activity.
 *
 * Components hold a `ChromeTracer *` that is null unless tracing was
 * requested, so the disabled cost is one pointer test on paths that are
 * already off the common case (miss handling, walk completion). Event
 * names are interned once at wiring time; emitting an event is an
 * append to an in-memory buffer. finish() stable-sorts by (track, ts)
 * — Perfetto expects monotonic timestamps per track — and writes the
 * JSON object format, one event per line. Timestamps are core cycles
 * reported as microseconds (1 us = 1 cycle); only relative spans
 * matter.
 */

#ifndef TACSIM_OBS_CHROME_TRACE_HH
#define TACSIM_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tacsim {
namespace obs {

class ChromeTracer
{
  public:
    /** Opens @p path at finish() time; the constructor only records it.
     */
    explicit ChromeTracer(std::string path);
    ~ChromeTracer();

    ChromeTracer(const ChromeTracer &) = delete;
    ChromeTracer &operator=(const ChromeTracer &) = delete;

    /** Register a track (rendered as one named row); returns its id. */
    std::uint32_t addTrack(const std::string &name);

    /** Intern an event name; returns its id. */
    std::uint32_t intern(const std::string &name);

    /** Complete event ("X"): [start, end] on @p track. */
    void span(std::uint32_t track, std::uint32_t nameId, Cycle start,
              Cycle end);

    /** Counter event ("C"): a stepped value series on @p track. */
    void counter(std::uint32_t track, std::uint32_t nameId, Cycle ts,
                 double value);

    /** Instant event ("i"): a point-in-time marker on @p track. */
    void instant(std::uint32_t track, std::uint32_t nameId, Cycle ts);

    /** Sort, write the file, release the buffer. Idempotent; called by
     *  ~System. Returns false on I/O failure (also reported on stderr).
     */
    bool finish();

    std::uint64_t events() const { return buffer_.size() + dropped_; }
    std::uint64_t dropped() const { return dropped_; }
    const std::string &path() const { return path_; }

  private:
    /** Buffer bound: a runaway run degrades to a truncated trace (the
     *  drop count is recorded in the file) instead of eating all RAM. */
    static constexpr std::size_t kMaxEvents = std::size_t{1} << 22;

    struct Event
    {
        std::uint32_t track;
        std::uint32_t nameId;
        char phase; // 'X', 'C', 'i'
        Cycle ts;
        Cycle dur;    // X only
        double value; // C only
    };

    void push(const Event &e);

    std::string path_;
    std::vector<std::string> names_;
    std::vector<std::string> tracks_;
    std::vector<Event> buffer_;
    std::uint64_t dropped_ = 0;
    bool finished_ = false;
};

} // namespace obs
} // namespace tacsim

#endif // TACSIM_OBS_CHROME_TRACE_HH
