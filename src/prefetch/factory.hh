/**
 * @file
 * Prefetcher selection and construction.
 */

#ifndef TACSIM_PREFETCH_FACTORY_HH
#define TACSIM_PREFETCH_FACTORY_HH

#include <memory>
#include <string>

#include "prefetch/prefetcher.hh"

namespace tacsim {

enum class PrefetcherKind
{
    None,
    NextLine,
    IpStride,
    Spp,
    Bingo,
    Ipcp,
    Isb,
};

/** Human-readable name ("SPP", ...). */
std::string prefetcherKindName(PrefetcherKind kind);

/** Build a prefetcher; returns nullptr for None. */
std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherKind kind);

} // namespace tacsim

#endif // TACSIM_PREFETCH_FACTORY_HH
