/**
 * @file
 * IPCP — Instruction Pointer Classifier-based spatial Prefetching
 * (Pakalapati & Panda, ISCA'20). An L1D prefetcher that classifies each
 * load IP as constant-stride (CS), complex-stride (CPLX) or part of a
 * global stream (GS) and prefetches accordingly on *virtual* addresses,
 * so it can cross page boundaries — but every crossing needs the TLB:
 * the translate hook drops prefetches whose pages miss the STLB, which
 * reproduces the paper's finding (§III) that even cross-page IPCP cannot
 * cover replay loads because those prefetches are exactly the ones that
 * stall behind the walk.
 */

#ifndef TACSIM_PREFETCH_IPCP_HH
#define TACSIM_PREFETCH_IPCP_HH

#include <array>
#include <cstdint>

#include "prefetch/prefetcher.hh"

namespace tacsim {

class IpcpPrefetcher : public Prefetcher
{
  public:
    static constexpr std::size_t kIpEntries = 64;
    static constexpr std::size_t kCsptEntries = 1024; ///< CPLX table
    static constexpr unsigned kCsDegree = 3;
    static constexpr unsigned kGsDegree = 4;

    void onAccess(const AccessInfo &ai, bool hit) override;
    std::string name() const override { return "IPCP"; }

  private:
    struct IpEntry
    {
        Addr ipTag = 0;
        Addr lastVblock = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        std::uint16_t signature = 0; ///< CPLX delta signature
        bool valid = false;
    };

    struct CsptEntry
    {
        std::int32_t delta = 0;
        std::uint8_t confidence = 0;
    };

    /** Global-stream detector state. */
    struct Stream
    {
        Addr region = 0;
        std::uint8_t touches = 0;
        bool ascending = true;
        Addr lastVblock = 0;
    };

    static std::uint16_t
    updateSig(std::uint16_t sig, std::int64_t delta)
    {
        return static_cast<std::uint16_t>(
            ((sig << 3) ^ (static_cast<std::uint64_t>(delta) & 0x3f)) &
            (kCsptEntries - 1));
    }

    std::array<IpEntry, kIpEntries> ipTable_;
    std::array<CsptEntry, kCsptEntries> cspt_;
    Stream stream_;
};

} // namespace tacsim

#endif // TACSIM_PREFETCH_IPCP_HH
