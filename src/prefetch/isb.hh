/**
 * @file
 * ISB — Irregular Stream Buffer (Jain & Lin, MICRO'13). A PC-localized
 * temporal prefetcher: correlated pairs of consecutive physical blocks
 * (per load PC) are linearized into a structural address space; a hit in
 * the physical-to-structural map prefetches the next structural
 * neighbours. Because it replays recorded *physical* sequences, it is
 * the one prefetcher class that can cover some replay loads — the paper
 * measures ~20% replay ROB-stall reduction for ISB (§III).
 */

#ifndef TACSIM_PREFETCH_ISB_HH
#define TACSIM_PREFETCH_ISB_HH

#include <cstdint>
#include <unordered_map>

#include "obs/registry.hh"
#include "prefetch/prefetcher.hh"

namespace tacsim {

class IsbPrefetcher : public Prefetcher
{
  public:
    static constexpr unsigned kRegionSize = 16; ///< structural region
    static constexpr unsigned kDegree = 3;
    static constexpr std::size_t kMapCap = 1u << 20;
    static constexpr std::size_t kTrainers = 64;

    void onAccess(const AccessInfo &ai, bool hit) override;
    std::string name() const override { return "ISB"; }

    void
    registerMetrics(obs::Registry &registry,
                    const std::string &prefix) override
    {
        registry.addGauge(prefix + ".isb.mappings",
                          [this] { return double(ps_.size()); });
    }

    /** Structural address of a physical block, 0 if unmapped (tests). */
    std::uint64_t
    structuralOf(Addr blockAddr) const
    {
        auto it = ps_.find(blockAddr);
        return it == ps_.end() ? 0 : it->second;
    }

  private:
    struct Trainer
    {
        Addr pcTag = 0;
        Addr lastBlock = 0;
        bool valid = false;
    };

    void link(Addr prevBlock, Addr curBlock);
    void capMaps();

    std::unordered_map<Addr, std::uint64_t> ps_; ///< physical->structural
    std::unordered_map<std::uint64_t, Addr> sp_; ///< structural->physical
    std::uint64_t nextStructural_ = kRegionSize;  ///< 0 = unmapped
    Trainer trainers_[kTrainers];
};

} // namespace tacsim

#endif // TACSIM_PREFETCH_ISB_HH
