#include "prefetch/ipcp.hh"

#include "common/rng.hh"
#include "common/types.hh"

namespace tacsim {

void
IpcpPrefetcher::onAccess(const AccessInfo &ai, bool)
{
    if (ai.vaddr == 0)
        return; // virtual-address prefetcher needs the VA

    const Addr vblock = blockNumber(ai.vaddr);

    // --- GS class: dense-region stream detection (next-line burst).
    // Global across IPs, so it runs before any per-IP filtering. ---
    const Addr region = ai.vaddr >> 11; // 2KB region
    if (stream_.region == region) {
        if (++stream_.touches >= 3) {
            const std::int64_t dir = stream_.ascending ? 1 : -1;
            for (unsigned d = 1; d <= kGsDegree; ++d)
                issueVirtual(ai.vaddr +
                                 Addr(dir * std::int64_t(d)) * kBlockSize,
                             ai.ip, ai.cpu);
        }
        stream_.ascending = vblock >= stream_.lastVblock;
    } else {
        stream_.region = region;
        stream_.touches = 1;
    }
    stream_.lastVblock = vblock;

    IpEntry &e = ipTable_[hashMix(ai.ip) % kIpEntries];
    if (!e.valid || e.ipTag != ai.ip) {
        e = IpEntry{};
        e.ipTag = ai.ip;
        e.lastVblock = vblock;
        e.valid = true;
        return;
    }

    const std::int64_t delta = static_cast<std::int64_t>(vblock) -
        static_cast<std::int64_t>(e.lastVblock);
    if (delta == 0)
        return;

    // --- CS class: constant stride with 2-bit confidence. ---
    if (delta == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        if (e.confidence > 0)
            --e.confidence;
        if (e.confidence == 0)
            e.stride = delta;
    }

    // --- CPLX class: delta-signature prediction. ---
    CsptEntry &c = cspt_[e.signature];
    if (c.delta == delta) {
        if (c.confidence < 3)
            ++c.confidence;
    } else if (c.confidence > 0) {
        --c.confidence;
    } else {
        c.delta = static_cast<std::int32_t>(delta);
    }
    const std::uint16_t newSig = updateSig(e.signature, delta);

    if (e.confidence >= 2) {
        // CS prefetches cross pages on virtual addresses.
        for (unsigned d = 1; d <= kCsDegree; ++d)
            issueVirtual(ai.vaddr +
                             Addr(e.stride * std::int64_t(d)) * kBlockSize,
                         ai.ip, ai.cpu);
    } else if (c.confidence >= 2 && c.delta != 0) {
        // CPLX: follow the predicted delta chain a couple of steps.
        std::uint16_t sig = newSig;
        Addr v = ai.vaddr;
        for (unsigned d = 0; d < 2; ++d) {
            const CsptEntry &n = cspt_[sig];
            if (n.confidence < 2 || n.delta == 0)
                break;
            v += Addr(std::int64_t(n.delta)) * kBlockSize;
            issueVirtual(v, ai.ip, ai.cpu);
            sig = updateSig(sig, n.delta);
        }
    }

    e.signature = newSig;
    e.lastVblock = vblock;
}

} // namespace tacsim
