/**
 * @file
 * Hardware prefetcher interface. A prefetcher is attached to one cache
 * level; the cache notifies it of demand activity and the prefetcher
 * issues block prefetches back through its issuer (the cache).
 *
 * L1-level prefetchers (IPCP) train on virtual addresses and may cross
 * page boundaries, but each crossing requires a TLB lookup; the translate
 * hook models that — it returns the physical address only when the
 * DTLB/STLB can translate without a walk, reproducing the paper's
 * observation (§III) that cross-page prefetches stall behind STLB misses
 * and arrive too late to help replay loads.
 */

#ifndef TACSIM_PREFETCH_PREFETCHER_HH
#define TACSIM_PREFETCH_PREFETCHER_HH

#include <functional>
#include <optional>
#include <string>

#include "cache/block.hh"
#include "common/types.hh"

namespace tacsim {

namespace obs {
class Registry;
} // namespace obs

/** Sink for prefetch requests (implemented by Cache). */
class PrefetchIssuer
{
  public:
    virtual ~PrefetchIssuer() = default;

    /** Issue a prefetch for the block containing @p paddr. */
    virtual void issuePrefetch(Addr paddr, PrefetchOrigin origin,
                               Addr ip) = 0;
};

class Prefetcher
{
  public:
    /** TLB-only translation: nullopt when the STLB misses. */
    using TranslateHook =
        std::function<std::optional<Addr>(Addr vaddr, std::uint16_t cpu)>;

    virtual ~Prefetcher() = default;

    /**
     * Called by the owning cache on every demand (load/store) access,
     * after the hit/miss outcome is known. Translation and writeback
     * traffic is not passed to data prefetchers.
     */
    virtual void onAccess(const AccessInfo &ai, bool hit) = 0;

    /** Called when a prefetched block fills (for throttling feedback). */
    virtual void onPrefetchFill(Addr blockAddr) { (void)blockAddr; }

    virtual std::string name() const = 0;

    /**
     * Register observable predictor state under "@p prefix." — table
     * occupancies, confidence gauges. Issue/useful counters live in the
     * owning cache's stats, not here. Default: nothing.
     */
    virtual void
    registerMetrics(obs::Registry &registry, const std::string &prefix)
    {
        (void)registry;
        (void)prefix;
    }

    void setIssuer(PrefetchIssuer *issuer) { issuer_ = issuer; }
    void setTranslateHook(TranslateHook h) { translate_ = std::move(h); }

  protected:
    /** Issue a physical-address prefetch, clamped to the same page as
     *  @p basePaddr (physical pages are not contiguous). @p ps is the
     *  mapping's actual granule — a 2M page gives 512x the reach of the
     *  old hardcoded-4K clamp. */
    void
    issueSamePage(Addr basePaddr, std::int64_t blockDelta, Addr ip,
                  PageSize ps = PageSize::Size4K)
    {
        const Addr target = Addr(std::int64_t(blockAlign(basePaddr)) +
                                 blockDelta * std::int64_t(kBlockSize));
        if (issuer_ && pageAlign(target, ps) == pageAlign(basePaddr, ps))
            issuer_->issuePrefetch(target, PrefetchOrigin::DataPrefetcher,
                                   ip);
    }

    /** Issue a prefetch for an exact physical block (temporal
     *  prefetchers replay recorded physical miss sequences). */
    void
    issuePhysical(Addr paddr, Addr ip)
    {
        if (issuer_)
            issuer_->issuePrefetch(paddr, PrefetchOrigin::DataPrefetcher,
                                   ip);
    }

    /** Issue a virtual-address prefetch through the TLB hook; silently
     *  dropped when the STLB cannot translate (late-prefetch model). */
    bool
    issueVirtual(Addr vaddr, Addr ip, std::uint16_t cpu)
    {
        if (!issuer_ || !translate_)
            return false;
        if (auto pa = translate_(vaddr, cpu)) {
            issuer_->issuePrefetch(*pa, PrefetchOrigin::DataPrefetcher,
                                   ip);
            return true;
        }
        return false;
    }

    PrefetchIssuer *issuer_ = nullptr;
    TranslateHook translate_;
};

} // namespace tacsim

#endif // TACSIM_PREFETCH_PREFETCHER_HH
