#include "prefetch/isb.hh"

#include "common/rng.hh"
#include "common/types.hh"

namespace tacsim {

void
IsbPrefetcher::capMaps()
{
    // Off-chip metadata in real ISB is ~MBs; we emulate finite capacity
    // by discarding everything when the cap is reached.
    if (ps_.size() > kMapCap || sp_.size() > kMapCap) {
        ps_.clear();
        sp_.clear();
        nextStructural_ = kRegionSize;
    }
}

void
IsbPrefetcher::link(Addr prevBlock, Addr curBlock)
{
    std::uint64_t sPrev = 0;
    auto it = ps_.find(prevBlock);
    if (it != ps_.end())
        sPrev = it->second;

    if (sPrev == 0 || (sPrev + 1) % kRegionSize == 0) {
        // Start a new structural region for the pair.
        sPrev = nextStructural_;
        nextStructural_ += kRegionSize;
        ps_[prevBlock] = sPrev;
        sp_[sPrev] = prevBlock;
    }

    // First mapping wins: a block already linearized keeps its place so
    // cyclic streams stay predictable (stale links age out via the cap).
    const std::uint64_t sCur = sPrev + 1;
    if (ps_.emplace(curBlock, sCur).second)
        sp_[sCur] = curBlock;
    capMaps();
}

void
IsbPrefetcher::onAccess(const AccessInfo &ai, bool)
{
    const Addr block = ai.blockAddr;

    // Train: consecutive blocks under the same PC become neighbours in
    // the structural space.
    Trainer &t = trainers_[hashMix(ai.ip) % kTrainers];
    if (t.valid && t.pcTag == ai.ip && t.lastBlock != block)
        link(t.lastBlock, block);
    t.pcTag = ai.ip;
    t.lastBlock = block;
    t.valid = true;

    // Predict: prefetch the structural successors.
    auto it = ps_.find(block);
    if (it == ps_.end())
        return;
    const std::uint64_t s = it->second;
    for (unsigned d = 1; d <= kDegree; ++d) {
        if ((s + d) % kRegionSize == 0)
            break; // stop at the region boundary
        auto target = sp_.find(s + d);
        if (target == sp_.end())
            break;
        issuePhysical(target->second, ai.ip);
    }
}

} // namespace tacsim
