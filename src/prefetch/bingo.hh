/**
 * @file
 * Bingo spatial prefetcher (Bakhshalipour et al., HPCA'19). Records the
 * footprint (block bitmap) of each 2KB region while it is live in an
 * accumulation table; on region eviction the footprint is stored in a
 * history table under both a long (PC+address) and short (PC+offset)
 * event. A region's first access looks the events up — long event
 * preferred — and prefetches the recorded footprint. Region-bound like
 * SPP, so replay loads on fresh pages are out of reach (paper Fig. 8).
 */

#ifndef TACSIM_PREFETCH_BINGO_HH
#define TACSIM_PREFETCH_BINGO_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/registry.hh"
#include "prefetch/prefetcher.hh"

namespace tacsim {

class BingoPrefetcher : public Prefetcher
{
  public:
    static constexpr unsigned kRegionBits = 11; ///< 2KB regions
    static constexpr Addr kRegionSize = Addr{1} << kRegionBits;
    static constexpr unsigned kBlocksPerRegion =
        static_cast<unsigned>(kRegionSize / kBlockSize);
    static constexpr std::size_t kAccumEntries = 64;
    static constexpr std::size_t kHistoryCap = 1u << 15;

    void onAccess(const AccessInfo &ai, bool hit) override;
    std::string name() const override { return "Bingo"; }

    void
    registerMetrics(obs::Registry &registry,
                    const std::string &prefix) override
    {
        registry.addGauge(prefix + ".bingo.history", [this] {
            return double(longHistory_.size() + shortHistory_.size());
        });
    }

  private:
    struct AccumEntry
    {
        Addr region = 0;
        std::uint32_t footprint = 0;
        Addr triggerPc = 0;
        std::uint32_t triggerOffset = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint64_t longEvent(Addr pc, Addr region,
                            std::uint32_t offset) const;
    std::uint64_t shortEvent(Addr pc, std::uint32_t offset) const;
    void evictAccum(AccumEntry &e);
    void capHistory(std::unordered_map<std::uint64_t, std::uint32_t> &h);

    std::vector<AccumEntry> accum_{kAccumEntries};
    std::unordered_map<std::uint64_t, std::uint32_t> longHistory_;
    std::unordered_map<std::uint64_t, std::uint32_t> shortHistory_;
    std::uint64_t clock_ = 1;
};

} // namespace tacsim

#endif // TACSIM_PREFETCH_BINGO_HH
