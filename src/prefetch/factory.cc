#include "prefetch/factory.hh"

#include "prefetch/bingo.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/isb.hh"
#include "prefetch/simple.hh"
#include "prefetch/spp.hh"

namespace tacsim {

std::string
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None: return "none";
      case PrefetcherKind::NextLine: return "next-line";
      case PrefetcherKind::IpStride: return "ip-stride";
      case PrefetcherKind::Spp: return "SPP";
      case PrefetcherKind::Bingo: return "Bingo";
      case PrefetcherKind::Ipcp: return "IPCP";
      case PrefetcherKind::Isb: return "ISB";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:
        return nullptr;
      case PrefetcherKind::NextLine:
        return std::make_unique<NextLinePrefetcher>();
      case PrefetcherKind::IpStride:
        return std::make_unique<IpStridePrefetcher>();
      case PrefetcherKind::Spp:
        return std::make_unique<SppPrefetcher>();
      case PrefetcherKind::Bingo:
        return std::make_unique<BingoPrefetcher>();
      case PrefetcherKind::Ipcp:
        return std::make_unique<IpcpPrefetcher>();
      case PrefetcherKind::Isb:
        return std::make_unique<IsbPrefetcher>();
    }
    return nullptr;
}

} // namespace tacsim
