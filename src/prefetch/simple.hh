/**
 * @file
 * Simple reference prefetchers: next-line and per-IP stride. Useful as
 * sanity baselines and in unit tests; the paper's evaluation uses the
 * heavier SPP/Bingo/IPCP/ISB engines.
 */

#ifndef TACSIM_PREFETCH_SIMPLE_HH
#define TACSIM_PREFETCH_SIMPLE_HH

#include <array>
#include <cstdint>

#include "prefetch/prefetcher.hh"

namespace tacsim {

/** Prefetch the next @p degree sequential blocks (same page). */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree = 1) : degree_(degree) {}

    void
    onAccess(const AccessInfo &ai, bool) override
    {
        for (unsigned d = 1; d <= degree_; ++d)
            issueSamePage(ai.blockAddr, static_cast<std::int64_t>(d),
                          ai.ip, ai.pageSize);
    }

    std::string name() const override { return "next-line"; }

  private:
    unsigned degree_;
};

/** Classic per-IP stride detector with 2-bit confidence. */
class IpStridePrefetcher : public Prefetcher
{
  public:
    static constexpr std::size_t kEntries = 256;

    explicit IpStridePrefetcher(unsigned degree = 2) : degree_(degree) {}

    void onAccess(const AccessInfo &ai, bool hit) override;
    std::string name() const override { return "ip-stride"; }

  private:
    struct Entry
    {
        Addr ip = 0;
        Addr lastBlock = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::array<Entry, kEntries> table_;
    unsigned degree_;
};

} // namespace tacsim

#endif // TACSIM_PREFETCH_SIMPLE_HH
