#include "prefetch/spp.hh"

#include "common/rng.hh"
#include "common/types.hh"

namespace tacsim {

SppPrefetcher::SigEntry &
SppPrefetcher::sigEntry(Addr page)
{
    return sigTable_[hashMix(page) % kSigTableEntries];
}

SppPrefetcher::PatternEntry &
SppPrefetcher::pattern(std::uint32_t sig)
{
    return patternTable_[sig % kPatternEntries];
}

void
SppPrefetcher::train(std::uint32_t sig, std::int32_t delta)
{
    PatternEntry &p = pattern(sig);
    if (p.cSig == kSigCounterSaturation) {
        // Periodically halve to keep ratios meaningful.
        p.cSig >>= 1;
        for (auto &c : p.cDelta)
            c >>= 1;
    }
    ++p.cSig;
    // Find or allocate the delta slot (replace the weakest).
    unsigned weakest = 0;
    for (unsigned i = 0; i < kDeltasPerSig; ++i) {
        if (p.cDelta[i] && p.delta[i] == delta) {
            ++p.cDelta[i];
            return;
        }
        if (p.cDelta[i] < p.cDelta[weakest])
            weakest = i;
    }
    p.delta[weakest] = delta;
    p.cDelta[weakest] = 1;
}

void
SppPrefetcher::lookahead(Addr pageBase, std::int32_t offset,
                         std::uint32_t sig, Addr ip, PageSize ps)
{
    const std::int32_t blocksPerPage =
        static_cast<std::int32_t>(pageBytes(ps) / kBlockSize);
    double confidence = 1.0;
    std::int32_t o = offset;
    std::uint32_t s = sig;

    for (unsigned depth = 0; depth < kMaxLookahead; ++depth) {
        const PatternEntry &p = pattern(s);
        if (p.cSig == 0)
            return;
        // Best delta by count.
        unsigned best = 0;
        for (unsigned i = 1; i < kDeltasPerSig; ++i)
            if (p.cDelta[i] > p.cDelta[best])
                best = i;
        if (p.cDelta[best] == 0)
            return;
        confidence *= double(p.cDelta[best]) / double(p.cSig);
        if (confidence < kPrefetchThreshold)
            return;

        o += p.delta[best];
        if (o < 0 || o >= blocksPerPage)
            return; // SPP does not cross physical pages
        issueSamePage(pageBase + Addr(o) * kBlockSize, 0, ip, ps);
        s = updateSignature(s, p.delta[best]);
    }
}

void
SppPrefetcher::onAccess(const AccessInfo &ai, bool)
{
    // Pages are tracked at the mapping's own granule: with 2M/1G pages
    // the physically-contiguous region SPP may cover grows accordingly.
    const PageSize ps = ai.pageSize;
    const Addr page = pageNumber(ai.blockAddr, ps);
    const std::int32_t offset = static_cast<std::int32_t>(
        pageOffset(ai.blockAddr, ps) >> kBlockBits);

    SigEntry &e = sigEntry(page);
    std::uint32_t sig = 0;
    // A page number only identifies a page together with its granule
    // (2M page n and 4K page n are different regions), so a granule
    // mismatch is a tag miss.
    if (e.valid && e.pageTag == page && e.pageSize == ps &&
        e.lastOffset >= 0) {
        const std::int32_t delta = offset - e.lastOffset;
        if (delta != 0) {
            train(e.signature, delta);
            sig = updateSignature(e.signature, delta);
        } else {
            sig = e.signature;
        }
    } else {
        e.pageTag = page;
        e.pageSize = ps;
        e.valid = true;
        sig = updateSignature(0, offset); // first touch: seed with offset
    }
    e.signature = sig;
    e.lastOffset = offset;

    lookahead(pageAlign(ai.blockAddr, ps), offset, sig, ai.ip, ps);
}

} // namespace tacsim
