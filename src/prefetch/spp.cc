#include "prefetch/spp.hh"

#include "common/rng.hh"
#include "common/types.hh"

namespace tacsim {

SppPrefetcher::SigEntry &
SppPrefetcher::sigEntry(Addr page)
{
    return sigTable_[hashMix(page) % kSigTableEntries];
}

SppPrefetcher::PatternEntry &
SppPrefetcher::pattern(std::uint32_t sig)
{
    return patternTable_[sig % kPatternEntries];
}

void
SppPrefetcher::train(std::uint32_t sig, std::int32_t delta)
{
    PatternEntry &p = pattern(sig);
    if (p.cSig == 0xffff) {
        // Periodically halve to keep ratios meaningful.
        p.cSig >>= 1;
        for (auto &c : p.cDelta)
            c >>= 1;
    }
    ++p.cSig;
    // Find or allocate the delta slot (replace the weakest).
    unsigned weakest = 0;
    for (unsigned i = 0; i < kDeltasPerSig; ++i) {
        if (p.cDelta[i] && p.delta[i] == delta) {
            ++p.cDelta[i];
            return;
        }
        if (p.cDelta[i] < p.cDelta[weakest])
            weakest = i;
    }
    p.delta[weakest] = delta;
    p.cDelta[weakest] = 1;
}

void
SppPrefetcher::lookahead(Addr pageBase, std::int32_t offset,
                         std::uint32_t sig, Addr ip)
{
    constexpr std::int32_t blocksPerPage =
        static_cast<std::int32_t>(kPageSize / kBlockSize);
    double confidence = 1.0;
    std::int32_t o = offset;
    std::uint32_t s = sig;

    for (unsigned depth = 0; depth < kMaxLookahead; ++depth) {
        const PatternEntry &p = pattern(s);
        if (p.cSig == 0)
            return;
        // Best delta by count.
        unsigned best = 0;
        for (unsigned i = 1; i < kDeltasPerSig; ++i)
            if (p.cDelta[i] > p.cDelta[best])
                best = i;
        if (p.cDelta[best] == 0)
            return;
        confidence *= double(p.cDelta[best]) / double(p.cSig);
        if (confidence < kPrefetchThreshold)
            return;

        o += p.delta[best];
        if (o < 0 || o >= blocksPerPage)
            return; // SPP does not cross physical pages
        issueSamePage(pageBase + Addr(o) * kBlockSize, 0, ip);
        s = updateSignature(s, p.delta[best]);
    }
}

void
SppPrefetcher::onAccess(const AccessInfo &ai, bool)
{
    const Addr page = pageNumber(ai.blockAddr);
    const std::int32_t offset = static_cast<std::int32_t>(
        (ai.blockAddr & (kPageSize - 1)) >> kBlockBits);

    SigEntry &e = sigEntry(page);
    std::uint32_t sig = 0;
    if (e.valid && e.pageTag == page && e.lastOffset >= 0) {
        const std::int32_t delta = offset - e.lastOffset;
        if (delta != 0) {
            train(e.signature, delta);
            sig = updateSignature(e.signature, delta);
        } else {
            sig = e.signature;
        }
    } else {
        e.pageTag = page;
        e.valid = true;
        sig = updateSignature(0, offset); // first touch: seed with offset
    }
    e.signature = sig;
    e.lastOffset = offset;

    lookahead(pageAlign(ai.blockAddr), offset, sig, ai.ip);
}

} // namespace tacsim
