#include "prefetch/simple.hh"

#include "common/rng.hh"

namespace tacsim {

void
IpStridePrefetcher::onAccess(const AccessInfo &ai, bool)
{
    Entry &e = table_[hashMix(ai.ip) % kEntries];
    const Addr block = blockNumber(ai.blockAddr);

    if (!e.valid || e.ip != ai.ip) {
        e = Entry{};
        e.ip = ai.ip;
        e.lastBlock = block;
        e.valid = true;
        return;
    }

    const std::int64_t delta =
        static_cast<std::int64_t>(block) -
        static_cast<std::int64_t>(e.lastBlock);
    if (delta == 0)
        return;

    if (delta == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = delta;
        e.confidence = e.confidence ? e.confidence - 1 : 0;
    }
    e.lastBlock = block;

    if (e.confidence >= 2) {
        for (unsigned d = 1; d <= degree_; ++d)
            issueSamePage(ai.blockAddr,
                          e.stride * static_cast<std::int64_t>(d), ai.ip,
                          ai.pageSize);
    }
}

} // namespace tacsim
