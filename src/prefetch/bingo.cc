#include "prefetch/bingo.hh"

#include "common/rng.hh"

namespace tacsim {

std::uint64_t
BingoPrefetcher::longEvent(Addr pc, Addr region,
                           std::uint32_t offset) const
{
    return hashCombine(hashCombine(pc, region), offset);
}

std::uint64_t
BingoPrefetcher::shortEvent(Addr pc, std::uint32_t offset) const
{
    return hashCombine(pc, offset) | (std::uint64_t{1} << 63);
}

void
BingoPrefetcher::capHistory(
    std::unordered_map<std::uint64_t, std::uint32_t> &h)
{
    // Cheap pressure relief: drop everything when over capacity. Real
    // Bingo uses a set-associative table; the learning dynamics are the
    // same for our purposes.
    if (h.size() > kHistoryCap)
        h.clear();
}

void
BingoPrefetcher::evictAccum(AccumEntry &e)
{
    if (!e.valid)
        return;
    const Addr regionBase = e.region << kRegionBits;
    longHistory_[longEvent(e.triggerPc, regionBase, e.triggerOffset)] =
        e.footprint;
    shortHistory_[shortEvent(e.triggerPc, e.triggerOffset)] = e.footprint;
    capHistory(longHistory_);
    capHistory(shortHistory_);
    e.valid = false;
}

void
BingoPrefetcher::onAccess(const AccessInfo &ai, bool)
{
    const Addr region = ai.blockAddr >> kRegionBits;
    const auto offset = static_cast<std::uint32_t>(
        (ai.blockAddr & (kRegionSize - 1)) >> kBlockBits);

    // Find the accumulation entry for this region.
    AccumEntry *entry = nullptr;
    AccumEntry *victim = &accum_[0];
    for (auto &e : accum_) {
        if (e.valid && e.region == region) {
            entry = &e;
            break;
        }
        if (!e.valid || e.lru < victim->lru)
            victim = &e;
    }

    if (entry) {
        entry->footprint |= 1u << offset;
        entry->lru = clock_++;
        return;
    }

    // Region trigger: predict its footprint from history.
    evictAccum(*victim);
    victim->valid = true;
    victim->region = region;
    victim->footprint = 1u << offset;
    victim->triggerPc = ai.ip;
    victim->triggerOffset = offset;
    victim->lru = clock_++;

    const Addr regionBase = region << kRegionBits;
    std::uint32_t footprint = 0;
    auto lit = longHistory_.find(longEvent(ai.ip, regionBase, offset));
    if (lit != longHistory_.end()) {
        footprint = lit->second;
    } else {
        auto sit = shortHistory_.find(shortEvent(ai.ip, offset));
        if (sit != shortHistory_.end())
            footprint = sit->second;
    }

    for (unsigned b = 0; b < kBlocksPerRegion; ++b) {
        if ((footprint & (1u << b)) && b != offset)
            issueSamePage(regionBase + Addr(b) * kBlockSize, 0, ai.ip);
    }
}

} // namespace tacsim
