/**
 * @file
 * SPP — Signature Path Prefetcher (Kim et al., MICRO'16), the
 * lookahead/path-confidence spatial prefetcher the paper evaluates at the
 * L2C. Per-page signatures compress recent delta history; a pattern
 * table maps signatures to candidate deltas with confidences; lookahead
 * walks the signature path issuing prefetches while the compound
 * confidence stays above threshold. Operating on physical addresses at
 * the L2C, it cannot prefetch across page boundaries — which is exactly
 * why it cannot cover replay loads (paper §III, Fig. 8).
 */

#ifndef TACSIM_PREFETCH_SPP_HH
#define TACSIM_PREFETCH_SPP_HH

#include <array>
#include <cstdint>

#include "prefetch/prefetcher.hh"

namespace tacsim {

class SppPrefetcher : public Prefetcher
{
  public:
    static constexpr std::size_t kSigTableEntries = 256;
    static constexpr unsigned kDeltasPerSig = 4;
    static constexpr unsigned kSigBits = 12;
    /** Pattern table is direct-mapped by signature, one entry per
     *  possible kSigBits-bit signature (not page geometry). */
    static constexpr std::size_t kPatternEntries = std::size_t{1}
        << kSigBits;
    static constexpr unsigned kMaxLookahead = 8;
    static constexpr double kPrefetchThreshold = 0.25;
    /** Saturation point of the per-signature occurrence counter
     *  (cSig): at the uint16 ceiling all confidence counters are
     *  halved together so the delta ratios stay meaningful. */
    static constexpr std::uint16_t kSigCounterSaturation = 0xffff;

    void onAccess(const AccessInfo &ai, bool hit) override;
    std::string name() const override { return "SPP"; }

    /** Signature update function — exposed for tests. */
    static std::uint32_t
    updateSignature(std::uint32_t sig, std::int32_t delta)
    {
        const std::uint32_t d =
            static_cast<std::uint32_t>(delta) & 0x7f;
        return ((sig << 3) ^ d) & ((1u << kSigBits) - 1);
    }

  private:
    struct SigEntry
    {
        Addr pageTag = 0;
        std::uint32_t signature = 0;
        std::int32_t lastOffset = -1;
        PageSize pageSize = PageSize::Size4K; ///< granule of pageTag
        bool valid = false;
    };

    struct PatternEntry
    {
        std::array<std::int32_t, kDeltasPerSig> delta = {};
        std::array<std::uint16_t, kDeltasPerSig> cDelta = {};
        std::uint16_t cSig = 0;
    };

    SigEntry &sigEntry(Addr page);
    PatternEntry &pattern(std::uint32_t sig);
    void train(std::uint32_t sig, std::int32_t delta);
    void lookahead(Addr pageBase, std::int32_t offset, std::uint32_t sig,
                   Addr ip, PageSize ps);

    std::array<SigEntry, kSigTableEntries> sigTable_;
    std::array<PatternEntry, kPatternEntries> patternTable_;
};

} // namespace tacsim

#endif // TACSIM_PREFETCH_SPP_HH
