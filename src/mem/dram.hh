/**
 * @file
 * DDR5-class DRAM channel model with banks, open-row policy and a shared
 * data bus, plus the memory controller that fronts the channels.
 *
 * This is a latency/bandwidth model in the ChampSim fidelity class, not a
 * JEDEC state machine: each read is charged controller latency, bank
 * availability, row-buffer hit/miss/conflict timing, and data-bus
 * occupancy. Writes drain opportunistically and consume bus slots.
 *
 * The controller is also where TEMPO (Bhattacharjee, ASPLOS'17) lives:
 * when a *leaf* page-table read is serviced from DRAM, TEMPO immediately
 * fetches the replay data line the PTE maps and pushes it up into the LLC
 * (paper §IV, Fig. 13 rightmost case).
 */

#ifndef TACSIM_MEM_DRAM_HH
#define TACSIM_MEM_DRAM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "mem/request.hh"

namespace tacsim {

namespace obs {
class ChromeTracer;
class Registry;
} // namespace obs

class SerialReader;
class SerialWriter;

/** Tuning knobs for one DRAM channel (all in core cycles @ 4 GHz). */
struct DramParams
{
    unsigned channels = 1;
    unsigned banksPerChannel = 32;   ///< 2 ranks x 16 banks
    std::uint64_t rowBytes = 8192;   ///< row-buffer size
    Cycle tController = 10;          ///< queueing/controller overhead
    Cycle tCas = 64;                 ///< CL ~16 ns @ 4 GHz
    Cycle tRcd = 64;                 ///< RAS-to-CAS
    Cycle tRp = 64;                  ///< precharge
    Cycle tBurst = 5;                ///< 64B line @ 51.2 GB/s, 4 GHz
    bool tempo = false;              ///< enable TEMPO replay prefetch
};

/** Per-request DRAM service statistics. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t translationReads = 0;
    std::uint64_t tempoPrefetches = 0;
    std::uint64_t busyCycles = 0; ///< total data-bus occupancy charged

    void
    reset()
    {
        *this = DramStats{};
    }
};

/**
 * Memory controller + channels. Implements MemDevice; completion is
 * scheduled on the shared event queue.
 */
class Dram : public MemDevice
{
  public:
    /** Callback used by TEMPO to inject a prefetch fill into the LLC. */
    using TempoHook = std::function<void(Addr blockPaddr, Addr ip)>;

    Dram(std::string name, EventQueue &eq, DramParams p = {});

    void access(const MemRequestPtr &req) override;
    const std::string &name() const override { return name_; }

    /** Install the hook TEMPO uses to push replay lines into the LLC. */
    void setTempoHook(TempoHook h) { tempoHook_ = std::move(h); }

    void setTempoEnabled(bool on) { params_.tempo = on; }
    bool tempoEnabled() const { return params_.tempo; }

    const DramStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Register controller counters under "@p prefix.", plus the reset
     *  hook. */
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);

    /** Attach a Chrome tracer; row-buffer hits/misses/conflicts are
     *  emitted as instant events on @p track. Pass nullptr to detach. */
    void setTracer(obs::ChromeTracer *tracer, std::uint32_t track);

    const DramParams &params() const { return params_; }

    /** Verify controller invariants: channel/bank geometry matches the
     *  parameters, row-state accounting conserves requests, open-row
     *  bookkeeping is coherent. Throws verify::InvariantViolation. */
    void checkInvariants() const;

    /**
     * Checkpoint bank/bus timing state (tacsim-ckpt-v1). Times are
     * absolute cycles; the owner restores the event-queue clock to the
     * same instant, so they remain directly comparable after restore.
     */
    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    struct Bank
    {
        Cycle readyAt = 0;
        Addr openRow = ~Addr{0};
        bool rowValid = false;
    };

    struct Channel
    {
        std::vector<Bank> banks;
        Cycle busFreeAt = 0;
    };

    /** Compute service completion cycle for a line at @p paddr. */
    Cycle serviceLine(Addr paddr, bool isWrite);

    unsigned channelOf(Addr paddr) const;
    unsigned bankOf(Addr paddr) const;
    Addr rowOf(Addr paddr) const;

    std::string name_;
    EventQueue &eq_;
    DramParams params_;
    std::vector<Channel> channels_;
    DramStats stats_;
    TempoHook tempoHook_;

    obs::ChromeTracer *tracer_ = nullptr; ///< null = tracing disabled
    std::uint32_t track_ = 0;
    std::uint32_t rowHitId_ = 0;
    std::uint32_t rowMissId_ = 0;
    std::uint32_t rowConflictId_ = 0;
};

} // namespace tacsim

#endif // TACSIM_MEM_DRAM_HH
