#include "mem/dram.hh"

#include <sstream>
#include <stdexcept>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "obs/chrome_trace.hh"
#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

Dram::Dram(std::string name, EventQueue &eq, DramParams p)
    : name_(std::move(name)), eq_(eq), params_(p)
{
    channels_.resize(params_.channels);
    for (auto &ch : channels_)
        ch.banks.resize(params_.banksPerChannel);
}

void
Dram::registerMetrics(obs::Registry &registry, const std::string &prefix)
{
    registry.addCounter(prefix + ".reads", &stats_.reads);
    registry.addCounter(prefix + ".writes", &stats_.writes);
    registry.addCounter(prefix + ".row_hits", &stats_.rowHits);
    registry.addCounter(prefix + ".row_misses", &stats_.rowMisses);
    registry.addCounter(prefix + ".row_conflicts",
                        &stats_.rowConflicts);
    registry.addCounter(prefix + ".translation_reads",
                        &stats_.translationReads);
    registry.addCounter(prefix + ".tempo_prefetches",
                        &stats_.tempoPrefetches);
    registry.addCounter(prefix + ".busy_cycles", &stats_.busyCycles);
    registry.addResetHook([this] { resetStats(); });
}

void
Dram::setTracer(obs::ChromeTracer *tracer, std::uint32_t track)
{
    tracer_ = tracer;
    track_ = track;
    if (tracer_) {
        rowHitId_ = tracer_->intern("row_hit");
        rowMissId_ = tracer_->intern("row_miss");
        rowConflictId_ = tracer_->intern("row_conflict");
    }
}

unsigned
Dram::channelOf(Addr paddr) const
{
    // Interleave channels at block granularity.
    return blockNumber(paddr) % params_.channels;
}

unsigned
Dram::bankOf(Addr paddr) const
{
    // Interleave banks at row granularity with a mixing hash so that
    // strided streams spread across banks.
    return static_cast<unsigned>(hashMix(paddr / params_.rowBytes) %
                                 params_.banksPerChannel);
}

Addr
Dram::rowOf(Addr paddr) const
{
    return paddr / params_.rowBytes;
}

Cycle
Dram::serviceLine(Addr paddr, bool isWrite)
{
    Channel &ch = channels_[channelOf(paddr)];
    Bank &bank = ch.banks[bankOf(paddr)];
    const Addr row = rowOf(paddr);

    Cycle start = eq_.now() + params_.tController;
    if (bank.readyAt > start)
        start = bank.readyAt;

    Cycle accessLat;
    std::uint32_t rowEventId;
    if (bank.rowValid && bank.openRow == row) {
        accessLat = params_.tCas;
        ++stats_.rowHits;
        rowEventId = rowHitId_;
    } else if (!bank.rowValid) {
        accessLat = params_.tRcd + params_.tCas;
        ++stats_.rowMisses;
        rowEventId = rowMissId_;
    } else {
        accessLat = params_.tRp + params_.tRcd + params_.tCas;
        ++stats_.rowConflicts;
        rowEventId = rowConflictId_;
    }
    if (tracer_)
        tracer_->instant(track_, rowEventId, start);
    bank.rowValid = true;
    bank.openRow = row;

    Cycle dataStart = start + accessLat;
    if (dataStart < ch.busFreeAt)
        dataStart = ch.busFreeAt;
    ch.busFreeAt = dataStart + params_.tBurst;
    stats_.busyCycles += params_.tBurst;

    // The bank can begin its next activate once the column access is done.
    bank.readyAt = dataStart;

    if (isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    return dataStart + params_.tBurst;
}

void
Dram::access(const MemRequestPtr &req)
{
    if (req->type == ReqType::Writeback) {
        // Writes are posted: charge bandwidth, nobody waits.
        serviceLine(req->blockAddr(), true);
        req->complete(eq_.now(), RespSource::DRAM);
        return;
    }

    const Cycle doneAt = serviceLine(req->blockAddr(), false);

    if (req->isTranslation())
        ++stats_.translationReads;

    // TEMPO: a leaf PTE read serviced at DRAM means the demand load that
    // is waiting on this translation will miss the whole hierarchy next.
    // Fetch its data line right now and hand it to the LLC.
    if (params_.tempo && req->isLeafTranslation() &&
        req->replayBlockPaddr != 0 && tempoHook_) {
        ++stats_.tempoPrefetches;
        tempoHook_(blockAlign(req->replayBlockPaddr), req->ip);
    }

    MemRequestPtr keep = req;
    eq_.scheduleAt(doneAt, [keep, doneAt] {
        keep->complete(doneAt, RespSource::DRAM);
    });
}

void
Dram::checkInvariants() const
{
    using verify::InvariantViolation;

    if (channels_.size() != params_.channels) {
        std::ostringstream os;
        os << channels_.size() << " channels built, " << params_.channels
           << " configured";
        throw InvariantViolation(name_, "geometry", os.str());
    }
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const Channel &ch = channels_[c];
        if (ch.banks.size() != params_.banksPerChannel) {
            std::ostringstream os;
            os << "channel " << c << " has " << ch.banks.size()
               << " banks, " << params_.banksPerChannel << " configured";
            throw InvariantViolation(name_, "geometry", os.str());
        }
        for (std::size_t b = 0; b < ch.banks.size(); ++b) {
            const Bank &bank = ch.banks[b];
            if (!bank.rowValid && bank.openRow != ~Addr{0}) {
                std::ostringstream os;
                os << "channel " << c << " bank " << b
                   << " has no open row but openRow=0x" << std::hex
                   << bank.openRow;
                throw InvariantViolation(name_, "row-state", os.str());
            }
        }
    }

    // Every serviced line is exactly one of row hit / miss / conflict.
    if (stats_.rowHits + stats_.rowMisses + stats_.rowConflicts !=
        stats_.reads + stats_.writes) {
        std::ostringstream os;
        os << "rowHits=" << stats_.rowHits << " + rowMisses="
           << stats_.rowMisses << " + rowConflicts="
           << stats_.rowConflicts << " != reads=" << stats_.reads
           << " + writes=" << stats_.writes;
        throw InvariantViolation(name_, "row-conservation", os.str());
    }
}

void
Dram::saveState(SerialWriter &w) const
{
    w.putU64(channels_.size());
    for (const Channel &ch : channels_) {
        w.putU64(ch.busFreeAt);
        w.putU64(ch.banks.size());
        for (const Bank &b : ch.banks) {
            w.putU64(b.readyAt);
            w.putU64(b.openRow);
            w.putBool(b.rowValid);
        }
    }
}

void
Dram::loadState(SerialReader &r)
{
    if (r.getU64() != channels_.size())
        throw std::runtime_error("checkpoint: DRAM channel count mismatch");
    for (Channel &ch : channels_) {
        ch.busFreeAt = r.getU64();
        if (r.getU64() != ch.banks.size())
            throw std::runtime_error(
                "checkpoint: DRAM bank count mismatch");
        for (Bank &b : ch.banks) {
            b.readyAt = r.getU64();
            b.openRow = r.getU64();
            b.rowValid = r.getBool();
        }
    }
}

} // namespace tacsim
