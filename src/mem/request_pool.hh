/**
 * @file
 * Pooled allocation for MemRequest objects.
 *
 * Every miss in the hierarchy allocates a fresh child MemRequest (plus
 * its shared_ptr control block) and frees it when the fill completes —
 * at simulation rates that is hundreds of thousands of malloc/free
 * pairs per second, all of identical size. makeRequest() routes them
 * through a thread-local freelist instead: std::allocate_shared places
 * the request and its control block in one node, and retired nodes are
 * recycled rather than returned to the heap.
 *
 * Thread safety: the freelist is thread_local, which is sound because a
 * System and every request it creates live on a single sweep-worker
 * thread for the whole run. Nodes are never handed across threads.
 *
 * Determinism: pooling only changes *where* requests live, never any
 * value the simulation reads — no simulated behavior depends on pointer
 * values. The golden-run suite pins this.
 */

#ifndef TACSIM_MEM_REQUEST_POOL_HH
#define TACSIM_MEM_REQUEST_POOL_HH

#include <cstddef>
#include <memory>
#include <new>

#include "mem/request.hh"

namespace tacsim {
namespace pool_detail {

/** Thread-local freelist of raw nodes for a single object type.
 *  Parked nodes are returned to the heap when their thread exits, so
 *  the pool holds no memory past any thread's lifetime. */
template <typename T>
struct Freelist
{
    union Node
    {
        Node *next;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    Node *head = nullptr;

    ~Freelist()
    {
        while (head) {
            Node *node = head;
            head = node->next;
            ::operator delete(node);
        }
    }

    static Freelist &
    instance()
    {
        static thread_local Freelist fl;
        return fl;
    }
};

/**
 * Minimal std allocator backed by Freelist<T>. allocate_shared rebinds
 * it to the combined object+control-block type, so every allocation it
 * sees is single-object and pool-eligible; the n != 1 path exists only
 * to satisfy the allocator contract.
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    PoolAllocator() = default;
    template <typename U>
    PoolAllocator(const PoolAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 1) {
            auto &fl = Freelist<T>::instance();
            if (auto *node = fl.head) {
                fl.head = node->next;
                return reinterpret_cast<T *>(node);
            }
            return static_cast<T *>(
                ::operator new(sizeof(typename Freelist<T>::Node)));
        }
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        if (n == 1) {
            auto &fl = Freelist<T>::instance();
            auto *node = reinterpret_cast<typename Freelist<T>::Node *>(p);
            node->next = fl.head;
            fl.head = node;
            return;
        }
        ::operator delete(p);
    }

    template <typename U>
    bool operator==(const PoolAllocator<U> &) const
    {
        return true;
    }
    template <typename U>
    bool operator!=(const PoolAllocator<U> &) const
    {
        return false;
    }
};

} // namespace pool_detail

/** Allocate a default-constructed MemRequest from the thread's pool.
 *  Drop-in replacement for std::make_shared<MemRequest>(). */
inline MemRequestPtr
makeRequest()
{
    return std::allocate_shared<MemRequest>(
        pool_detail::PoolAllocator<MemRequest>());
}

} // namespace tacsim

#endif // TACSIM_MEM_REQUEST_POOL_HH
