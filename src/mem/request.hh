/**
 * @file
 * The request object that flows through the memory hierarchy, and the
 * abstract device interface every level (cache, DRAM controller)
 * implements.
 *
 * The paper's mechanisms hinge on the hierarchy being able to tell three
 * kinds of block apart: page-table-entry blocks (tagged with their
 * page-table level), *replay* data blocks (demand loads whose translation
 * missed the STLB), and ordinary non-replay data. MemRequest carries those
 * flags end to end — this is the "additional flags from the page-table
 * walker into the cache hierarchy" the paper's abstract calls out.
 */

#ifndef TACSIM_MEM_REQUEST_HH
#define TACSIM_MEM_REQUEST_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hh"

namespace tacsim {

/** Kind of memory transaction. */
enum class ReqType : std::uint8_t
{
    Load,        ///< demand data read
    Store,       ///< demand data write (modelled as read-for-ownership)
    Prefetch,    ///< hardware prefetch
    Writeback,   ///< dirty eviction travelling down
    Translation, ///< page-table-walker read of a PTE block
};

/** Which hierarchy level produced the data for a completed request. */
enum class RespSource : std::uint8_t
{
    None,
    L1D,
    L2C,
    LLC,
    DRAM,
    IdealL2C, ///< hit granted by the ideal-L2C mode (paper Fig. 2)
    IdealLLC, ///< hit granted by the ideal-LLC mode (paper Fig. 2)
};

/** Who generated a prefetch (for accuracy accounting). */
enum class PrefetchOrigin : std::uint8_t
{
    None,
    DataPrefetcher, ///< SPP / Bingo / IPCP / ISB / stride
    Atp,            ///< the paper's translation-hit-triggered prefetcher
    Tempo,          ///< TEMPO DRAM-controller prefetch
};

class MemRequest;
using MemRequestPtr = std::shared_ptr<MemRequest>;

/**
 * One memory transaction. Allocated by the requester (core or PTW) and
 * passed by shared_ptr so MSHR merging can hang several requesters off the
 * same in-flight line.
 */
class MemRequest
{
  public:
    using Callback = std::function<void(MemRequest &)>;

    Addr paddr = 0;      ///< physical byte address
    Addr vaddr = 0;      ///< originating virtual address (0 for PTW/WB)
    Addr ip = 0;         ///< instruction pointer of the triggering op
    ReqType type = ReqType::Load;

    /** Page-table level for Translation requests: 1 = leaf ... 5 = root,
     *  0 for data requests. In nested mode this is the level within the
     *  dimension (guest or host) that issued the read. */
    std::uint8_t ptLevel = 0;

    /** Translation request reading the *leaf* PTE — the read that ends
     *  the translation. With huge pages the leaf may sit at level 2 or 3,
     *  and in nested mode host reads are never the leaf, so this is a
     *  flag rather than a ptLevel comparison. */
    bool leafPte = false;

    /** Mapping granule of the data page (demand/prefetch requests). */
    PageSize pageSize = PageSize::Size4K;

    /** Demand data access whose translation missed the STLB. */
    bool isReplay = false;

    /** For leaf-level Translation requests: the block address of the data
     *  line the in-flight demand load will access once translation
     *  completes. Architecturally this is reconstructed from the PTE
     *  contents plus the upper six page-offset bits the PTW carries
     *  (paper §IV); the simulator just plumbs it through. */
    Addr replayBlockPaddr = 0;

    PrefetchOrigin prefetchOrigin = PrefetchOrigin::None;

    std::uint16_t cpu = 0; ///< issuing hardware context

    Cycle issuedAt = 0;
    Cycle completedAt = 0;
    RespSource source = RespSource::None;
    bool done = false;

    /** Invoked exactly once when the request's data is available. */
    Callback onComplete;

    /** True for PTW reads of the leaf page-table level. */
    bool isLeafTranslation() const
    {
        return type == ReqType::Translation && leafPte;
    }

    bool isTranslation() const { return type == ReqType::Translation; }

    bool isDemand() const
    {
        return type == ReqType::Load || type == ReqType::Store;
    }

    /** Block-aligned physical address. */
    Addr blockAddr() const { return blockAlign(paddr); }

    /** Mark complete and fire the callback. */
    void
    complete(Cycle when, RespSource src)
    {
        if (done)
            return;
        done = true;
        completedAt = when;
        source = src;
        if (onComplete)
            onComplete(*this);
    }
};

/**
 * Anything that can accept a MemRequest: a cache level or the DRAM
 * controller. Devices call req->complete() (possibly much later) when the
 * data is available.
 */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /** Hand a request to this device. The device owns scheduling. */
    virtual void access(const MemRequestPtr &req) = 0;

    /** Device name for reports. */
    virtual const std::string &name() const = 0;
};

} // namespace tacsim

#endif // TACSIM_MEM_REQUEST_HH
