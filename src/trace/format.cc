#include "trace/format.hh"

#include <stdexcept>

namespace tacsim {
namespace trace {

namespace {

struct CrcTable
{
    std::uint32_t t[256];

    CrcTable()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

const CrcTable &
crcTable()
{
    static const CrcTable table;
    return table;
}

void
appendLe(std::vector<unsigned char> &out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

} // namespace

std::uint32_t
crc32(std::uint32_t crc, const void *data, std::size_t n)
{
    const CrcTable &tab = crcTable();
    const unsigned char *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < n; ++i)
        crc = tab.t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

void
appendVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

void
encodeRecord(std::vector<unsigned char> &out, const TraceRecord &r,
             DeltaState &ds)
{
    const unsigned char flags =
        static_cast<unsigned char>(r.kind) |
        static_cast<unsigned char>(r.dependsOnPrevLoad ? 0x04 : 0x00);
    out.push_back(flags);
    appendVarint(out, zigzagEncode(static_cast<std::int64_t>(
                          r.ip - ds.prevIp)));
    ds.prevIp = r.ip;
    if (r.isMem()) {
        appendVarint(out, zigzagEncode(static_cast<std::int64_t>(
                              r.vaddr - ds.prevVaddr)));
        ds.prevVaddr = r.vaddr;
    }
}

std::vector<unsigned char>
encodeHeader(const TraceHeader &h)
{
    if (h.name.size() > 0xFFFF)
        throw std::runtime_error("trace: benchmark name too long");
    std::vector<unsigned char> out;
    out.reserve(kHeaderFixedBytes + h.name.size());
    out.insert(out.end(), kMagic.begin(), kMagic.end());
    appendLe(out, kVersion, 4);
    appendLe(out, h.footprint, 8);
    appendLe(out, h.seed, 8);
    appendLe(out, h.recordCount, 8);
    appendLe(out, h.name.size(), 2);
    out.insert(out.end(), h.name.begin(), h.name.end());
    return out;
}

std::vector<unsigned char>
encodeFooter(std::uint64_t recordCount, std::uint32_t crc)
{
    std::vector<unsigned char> out;
    out.reserve(kFooterBytes);
    out.insert(out.end(), kEndMagic.begin(), kEndMagic.end());
    appendLe(out, recordCount, 8);
    appendLe(out, crc, 4);
    return out;
}

} // namespace trace
} // namespace tacsim
