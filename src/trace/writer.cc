#include "trace/writer.hh"

#include <stdexcept>

namespace tacsim {
namespace trace {

TraceWriter::TraceWriter(const std::string &path, TraceHeader header)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        throw std::runtime_error("trace: cannot open for writing: " +
                                 path);
    header.recordCount = 0; // patched by finalize()
    const std::vector<unsigned char> hdr = encodeHeader(header);
    if (std::fwrite(hdr.data(), 1, hdr.size(), file_) != hdr.size()) {
        std::fclose(file_);
        file_ = nullptr;
        throw std::runtime_error("trace: header write failed: " + path);
    }
    buffer_.reserve(kFlushBytes + 32);
}

TraceWriter::~TraceWriter()
{
    if (file_) {
        try {
            finalize();
        } catch (...) {
            // Destructor cleanup: the file is already broken; swallow.
            if (file_) {
                std::fclose(file_);
                file_ = nullptr;
            }
        }
    }
}

void
TraceWriter::flush()
{
    if (buffer_.empty())
        return;
    crc_ = crc32(crc_, buffer_.data(), buffer_.size());
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size())
        throw std::runtime_error("trace: payload write failed: " + path_);
    buffer_.clear();
}

void
TraceWriter::finalize()
{
    if (!file_)
        return;
    flush();

    const std::vector<unsigned char> foot = encodeFooter(count_, crc_);
    bool ok =
        std::fwrite(foot.data(), 1, foot.size(), file_) == foot.size();

    // Patch the header's recordCount now that the stream length is
    // known; readers rely on it to find the payload end.
    const auto patchU64 = [&](std::size_t offset, std::uint64_t v) {
        unsigned char le[8];
        for (unsigned i = 0; i < 8; ++i)
            le[i] = static_cast<unsigned char>(v >> (8 * i));
        return std::fseek(file_, static_cast<long>(offset), SEEK_SET) ==
            0 &&
            std::fwrite(le, 1, sizeof le, file_) == sizeof le;
    };
    ok = ok && patchU64(kHeaderCountOffset, count_);
    if (patchFootprint_)
        ok = ok && patchU64(kHeaderFootprintOffset, footprint_);

    ok = std::fclose(file_) == 0 && ok;
    file_ = nullptr;
    if (!ok)
        throw std::runtime_error("trace: finalize failed: " + path_);
}

} // namespace trace
} // namespace tacsim
