/**
 * @file
 * ChampSim trace import: converts the ChampSim `input_instr` format
 * (64-byte fixed records: ip, branch bits, 2 destination + 4 source
 * registers, 2 destination + 4 source memory operands) into
 * `tacsim-trace-v1`.
 *
 * Mapping:
 *  - each nonzero source_memory operand becomes a Load record, each
 *    nonzero destination_memory operand a Store record, all at the
 *    instruction's ip; an instruction with no memory operands becomes
 *    one NonMem record;
 *  - tacsim's `dependsOnPrevLoad` is derived from ChampSim's register
 *    dependences: a memory instruction whose source registers include a
 *    register written by the most recent preceding load is marked
 *    dependent (pointer chasing). Registers overwritten by non-load
 *    instructions kill the dependence.
 *
 * Decompression is the caller's concern: the importer pulls raw
 * `input_instr` bytes from a ByteSource callback, so the CLI can hand
 * it a plain file reader or a gzip stream without this library linking
 * zlib.
 */

#ifndef TACSIM_TRACE_CHAMPSIM_HH
#define TACSIM_TRACE_CHAMPSIM_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"

namespace tacsim {
namespace trace {

/** Pull callback: fill up to n bytes, return bytes produced (0 = EOF,
 *  may return short counts mid-stream). */
using ByteSource = std::function<std::size_t(void *, std::size_t)>;

/** Size of one ChampSim input_instr record on disk. */
constexpr std::size_t kChampSimRecordBytes = 64;

struct ChampSimImportOptions
{
    std::string name = "champsim"; ///< benchmark name for the header
    Addr footprint = 0; ///< 0 = derive from the observed address span
    std::uint64_t seed = 0; ///< recorded in the header (provenance only)
    std::uint64_t maxInstructions = 0; ///< 0 = import everything
};

// tacsim-lint: allow(stats-registry-coverage) one-shot import summary returned to the CLI and printed; not a simulation metric, no registry exists at import time
struct ChampSimImportStats
{
    std::uint64_t instructions = 0; ///< input_instr records consumed
    std::uint64_t records = 0;      ///< TraceRecords written
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t nonMem = 0;
    std::uint64_t dependent = 0; ///< records with dependsOnPrevLoad
    Addr minVaddr = ~Addr{0};
    Addr maxVaddr = 0;
};

/**
 * Convert @p src into a finalized trace file at @p outPath. Throws
 * std::runtime_error on I/O failure or a truncated (non-multiple of 64
 * bytes) input stream.
 */
ChampSimImportStats importChampSim(const ByteSource &src,
                                   const std::string &outPath,
                                   const ChampSimImportOptions &opts = {});

} // namespace trace
} // namespace tacsim

#endif // TACSIM_TRACE_CHAMPSIM_HH
