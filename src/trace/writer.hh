/**
 * @file
 * TraceWriter — streams TraceRecords into a `tacsim-trace-v1` file —
 * and RecordingWorkload, a decorator that tees any Workload's stream to
 * a writer so an ordinary simulation run doubles as trace capture.
 */

#ifndef TACSIM_TRACE_WRITER_HH
#define TACSIM_TRACE_WRITER_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "trace/format.hh"

namespace tacsim {
namespace trace {

/**
 * Buffered, CRC-accumulating writer. append() encodes into an in-memory
 * buffer flushed in large chunks; finalize() writes the footer and
 * patches the header's record count (the destructor finalizes too, but
 * call finalize() explicitly to observe I/O errors — it throws).
 */
class TraceWriter
{
  public:
    /** Opens @p path for writing and emits the header. @p header's
     *  recordCount is ignored (counted as records are appended). Throws
     *  std::runtime_error on I/O failure. */
    TraceWriter(const std::string &path, TraceHeader header);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Encode and buffer one record. */
    void
    append(const TraceRecord &r)
    {
        encodeRecord(buffer_, r, delta_);
        ++count_;
        if (buffer_.size() >= kFlushBytes)
            flush();
    }

    /** Flush, write the footer, patch the header count, close. Safe to
     *  call once; throws std::runtime_error on I/O failure. */
    void finalize();

    /** Override the header's footprint at finalize time (the ChampSim
     *  importer derives it from the observed address span). */
    void
    setFootprint(Addr footprint)
    {
        footprint_ = footprint;
        patchFootprint_ = true;
    }

    bool finalized() const { return file_ == nullptr; }
    std::uint64_t recordCount() const { return count_; }
    const std::string &path() const { return path_; }

  private:
    static constexpr std::size_t kFlushBytes = 64 * 1024;

    void flush();

    std::string path_;
    std::FILE *file_ = nullptr;
    std::vector<unsigned char> buffer_;
    DeltaState delta_;
    std::uint64_t count_ = 0;
    std::uint32_t crc_ = 0;
    Addr footprint_ = 0;
    bool patchFootprint_ = false;
};

/**
 * Tee decorator: forwards next() to the wrapped workload and appends
 * every produced record to the shared writer. Wrapping is transparent —
 * the simulated system sees the identical stream — so the canonical
 * stats dump of a recording run matches the plain run byte for byte.
 */
class RecordingWorkload : public Workload
{
  public:
    RecordingWorkload(std::unique_ptr<Workload> inner,
                      std::shared_ptr<TraceWriter> writer)
        : inner_(std::move(inner)), writer_(std::move(writer))
    {}

    TraceRecord
    next() override
    {
        TraceRecord r = inner_->next();
        writer_->append(r);
        return r;
    }

    std::string name() const override { return inner_->name(); }
    Addr footprint() const override { return inner_->footprint(); }

    /** Header metadata describing @p w, for recording its stream. */
    static TraceHeader
    headerFor(const Workload &w, std::uint64_t seed)
    {
        TraceHeader h;
        h.name = w.name();
        h.footprint = w.footprint();
        h.seed = seed;
        return h;
    }

  private:
    std::unique_ptr<Workload> inner_;
    std::shared_ptr<TraceWriter> writer_;
};

} // namespace trace
} // namespace tacsim

#endif // TACSIM_TRACE_WRITER_HH
