/**
 * @file
 * TraceReader — buffered decoder for `tacsim-trace-v1` files — and
 * TraceFileWorkload, which replays a recorded trace through the
 * Workload interface, looping at EOF so the endless-stream contract the
 * core model relies on is preserved.
 */

#ifndef TACSIM_TRACE_READER_HH
#define TACSIM_TRACE_READER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "core/trace.hh"
#include "trace/format.hh"

namespace tacsim {
namespace trace {

/**
 * Sequential record decoder. Validates magic/version/header shape on
 * construction, plus that the file is long enough to hold its
 * fixed-size footer (throws std::runtime_error on malformed or
 * truncated files); payload integrity (CRC, counts, footer contents)
 * is checked by verifyTraceFile(), which decodes the whole file.
 * Decoding never reads past the footer boundary, so a truncated
 * payload reports the truncation instead of misdecoding footer bytes
 * as records.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const TraceHeader &header() const { return header_; }
    const std::string &path() const { return path_; }

    /** Records decoded since construction / the last rewind(). */
    std::uint64_t position() const { return position_; }

    /**
     * Decode the next record into @p r; false once recordCount records
     * have been read. Throws std::runtime_error on a truncated or
     * corrupt payload.
     */
    bool next(TraceRecord &r);

    /** Seek back to the payload start and reset the delta chains. */
    void rewind();

  private:
    unsigned char takeByte();
    std::uint64_t takeVarint();
    bool refill();

    std::string path_;
    std::FILE *file_ = nullptr;
    TraceHeader header_;
    long payloadStart_ = 0;
    long payloadEnd_ = 0; ///< first footer byte; decode stops here

    std::vector<unsigned char> buffer_;
    std::size_t bufPos_ = 0;
    DeltaState delta_;
    std::uint64_t position_ = 0;
};

/** Outcome of a full-file integrity check. */
struct VerifyResult
{
    bool ok = false;
    std::string error;     ///< first problem found, empty when ok
    TraceHeader header;    ///< valid whenever the header parsed
    std::uint64_t payloadBytes = 0;
};

/**
 * Decode every record, then check the footer: end magic present, both
 * record counts consistent, payload CRC matches. Never throws — parse
 * errors come back as !ok.
 */
VerifyResult verifyTraceFile(const std::string &path);

/**
 * Replay a recorded trace as an endless instruction stream. Each
 * instance owns an independent reader, so multiple threads of a System
 * may replay the same file. At EOF the reader rewinds to the payload
 * start — short traces repeat, which mirrors how the synthetic
 * generators produce unbounded streams from bounded state.
 */
class TraceFileWorkload : public Workload
{
  public:
    explicit TraceFileWorkload(const std::string &path) : reader_(path)
    {
        if (reader_.header().recordCount == 0)
            throw std::runtime_error("trace: empty trace: " + path);
    }

    TraceRecord
    next() override
    {
        TraceRecord r;
        if (!reader_.next(r)) {
            reader_.rewind();
            reader_.next(r);
        }
        return r;
    }

    std::string name() const override { return reader_.header().name; }
    Addr footprint() const override { return reader_.header().footprint; }

    const TraceHeader &header() const { return reader_.header(); }

    /**
     * Checkpoint support: the replay cursor is just the record position
     * within the file (the loop count does not matter — the stream is
     * periodic). Restore rewinds and decodes forward; the delta decoder
     * has no random access, but checkpoint restore is a once-per-job
     * cost and decode throughput is tens of millions of records/sec.
     */
    void
    saveState(SerialWriter &w) const override
    {
        w.putU64(reader_.position());
    }

    void
    loadState(SerialReader &r) override
    {
        const std::uint64_t target = r.getU64();
        if (target > reader_.header().recordCount)
            throw std::runtime_error(
                "checkpoint: trace position " + std::to_string(target) +
                " exceeds record count of " + reader_.path());
        reader_.rewind();
        TraceRecord scratch;
        for (std::uint64_t i = 0; i < target; ++i) {
            if (!reader_.next(scratch))
                throw std::runtime_error(
                    "checkpoint: trace ended early replaying to position " +
                    std::to_string(target) + ": " + reader_.path());
        }
    }

  private:
    TraceReader reader_;
};

} // namespace trace
} // namespace tacsim

#endif // TACSIM_TRACE_READER_HH
