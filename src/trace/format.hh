/**
 * @file
 * The `tacsim-trace-v1` on-disk format: a versioned, dependency-free
 * binary container for recorded instruction streams.
 *
 * Layout (all integers little-endian):
 *
 *   header   8B magic "TACTRCv1"
 *            u32 version (= 1)
 *            u64 footprint        (Workload::footprint of the source)
 *            u64 seed             (generator seed, 0 for imports)
 *            u64 recordCount      (patched by TraceWriter::finalize)
 *            u16 nameLen, then nameLen bytes of benchmark name
 *   payload  recordCount encoded TraceRecords (see below)
 *   footer   4B end magic "TEND"
 *            u64 recordCount      (must equal the header's)
 *            u32 CRC-32 (IEEE) of the payload bytes
 *
 * Record encoding — one flags byte, then LEB128 varints:
 *
 *   flags    bits [1:0] TraceRecord::Kind (0 NonMem, 1 Load, 2 Store)
 *            bit  [2]   dependsOnPrevLoad
 *            bits [7:3] reserved, must be zero
 *   ip       zigzag-LEB128 delta against the previous record's ip
 *   vaddr    zigzag-LEB128 delta against the previous memory record's
 *            vaddr (memory records only)
 *
 * Both delta chains start from 0 at the beginning of the payload, so a
 * reader that rewinds to the payload start (TraceFileWorkload loops at
 * EOF) just resets its DeltaState. Deltas + LEB128 keep hot loops at
 * 2-4 bytes per record instead of 17.
 */

#ifndef TACSIM_TRACE_FORMAT_HH
#define TACSIM_TRACE_FORMAT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/trace.hh"

namespace tacsim {
namespace trace {

constexpr std::array<unsigned char, 8> kMagic = {'T', 'A', 'C', 'T',
                                                 'R', 'C', 'v', '1'};
constexpr std::array<unsigned char, 4> kEndMagic = {'T', 'E', 'N', 'D'};
constexpr std::uint32_t kVersion = 1;

/** Fixed-size part of the header (magic..nameLen, excluding the name). */
constexpr std::size_t kHeaderFixedBytes = 8 + 4 + 8 + 8 + 8 + 2;
/** Byte offset of the header's footprint field (patchable on finalize —
 *  the ChampSim importer only knows the address span at the end). */
constexpr std::size_t kHeaderFootprintOffset = 8 + 4;
/** Byte offset of the header's recordCount field (patched on finalize). */
constexpr std::size_t kHeaderCountOffset = 8 + 4 + 8 + 8;
/** Size of the footer (end magic + recordCount + CRC-32). */
constexpr std::size_t kFooterBytes = 4 + 8 + 4;

/** Decoded header metadata. */
struct TraceHeader
{
    std::string name;    ///< benchmark name ("mcf", "xalancbmk", ...)
    Addr footprint = 0;  ///< virtual footprint in bytes
    std::uint64_t seed = 0;
    std::uint64_t recordCount = 0;
};

/** Incremental CRC-32 (IEEE 802.3, reflected). Start with crc = 0. */
std::uint32_t crc32(std::uint32_t crc, const void *data, std::size_t n);

/** Append @p v as unsigned LEB128. */
void appendVarint(std::vector<unsigned char> &out, std::uint64_t v);

/** Zigzag-fold a signed delta into an unsigned varint payload. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
        -static_cast<std::int64_t>(v & 1);
}

/** Delta-chain state shared by the record encoder and decoder. Reset to
 *  the default state whenever (re)starting from the payload start. */
struct DeltaState
{
    Addr prevIp = 0;
    Addr prevVaddr = 0;
};

/** Append the encoding of @p r to @p out, advancing @p ds. */
void encodeRecord(std::vector<unsigned char> &out, const TraceRecord &r,
                  DeltaState &ds);

/**
 * Serialize the header for @p h (recordCount as currently set).
 * Throws std::runtime_error if the name is longer than 64KiB.
 */
std::vector<unsigned char> encodeHeader(const TraceHeader &h);

/** Serialize the footer for @p recordCount / @p crc. */
std::vector<unsigned char> encodeFooter(std::uint64_t recordCount,
                                        std::uint32_t crc);

} // namespace trace
} // namespace tacsim

#endif // TACSIM_TRACE_FORMAT_HH
