#include "trace/champsim.hh"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "trace/writer.hh"

namespace tacsim {
namespace trace {

namespace {

// ChampSim input_instr field geometry (64 bytes, little-endian).
constexpr std::size_t kNumDest = 2;
constexpr std::size_t kNumSrc = 4;
constexpr std::size_t kOffIp = 0;
constexpr std::size_t kOffDestRegs = 10; // after ip + 2 branch bytes
constexpr std::size_t kOffSrcRegs = 12;
constexpr std::size_t kOffDestMem = 16;
constexpr std::size_t kOffSrcMem = 32;

std::uint64_t
readLe64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

/** Fill exactly @p want bytes from @p src (which may return short
 *  counts); returns bytes actually produced (< want only at EOF). */
std::size_t
fillExact(const ByteSource &src, unsigned char *out, std::size_t want)
{
    std::size_t got = 0;
    while (got < want) {
        const std::size_t n = src(out + got, want - got);
        if (n == 0)
            break;
        got += n;
    }
    return got;
}

} // namespace

ChampSimImportStats
importChampSim(const ByteSource &src, const std::string &outPath,
               const ChampSimImportOptions &opts)
{
    TraceHeader header;
    header.name = opts.name;
    header.footprint = opts.footprint;
    header.seed = opts.seed;
    TraceWriter writer(outPath, header);

    ChampSimImportStats stats;

    // Registers written by the most recent load instruction: a later
    // memory access sourcing one of them is address-dependent on that
    // load (tacsim's dependsOnPrevLoad).
    std::array<bool, 256> loadDest{};

    auto emit = [&](const TraceRecord &r) {
        writer.append(r);
        ++stats.records;
        if (r.isMem()) {
            stats.minVaddr = std::min(stats.minVaddr, r.vaddr);
            stats.maxVaddr = std::max(stats.maxVaddr, r.vaddr);
        }
        if (r.dependsOnPrevLoad)
            ++stats.dependent;
    };

    unsigned char rec[kChampSimRecordBytes];
    for (;;) {
        if (opts.maxInstructions &&
            stats.instructions >= opts.maxInstructions)
            break;
        const std::size_t got = fillExact(src, rec, sizeof rec);
        if (got == 0)
            break;
        if (got != sizeof rec)
            throw std::runtime_error(
                "champsim import: truncated input_instr record (" +
                std::to_string(got) + " trailing bytes)");
        ++stats.instructions;

        const Addr ip = readLe64(rec + kOffIp);

        bool depends = false;
        for (std::size_t i = 0; i < kNumSrc; ++i) {
            const unsigned char reg = rec[kOffSrcRegs + i];
            if (reg && loadDest[reg])
                depends = true;
        }

        bool anyMem = false;
        bool anyLoad = false;
        for (std::size_t i = 0; i < kNumSrc; ++i) {
            const Addr va = readLe64(rec + kOffSrcMem + 8 * i);
            if (!va)
                continue;
            TraceRecord r;
            r.ip = ip;
            r.kind = TraceRecord::Kind::Load;
            r.vaddr = va;
            r.dependsOnPrevLoad = depends;
            emit(r);
            ++stats.loads;
            anyMem = anyLoad = true;
        }
        for (std::size_t i = 0; i < kNumDest; ++i) {
            const Addr va = readLe64(rec + kOffDestMem + 8 * i);
            if (!va)
                continue;
            TraceRecord r;
            r.ip = ip;
            r.kind = TraceRecord::Kind::Store;
            r.vaddr = va;
            r.dependsOnPrevLoad = depends;
            emit(r);
            ++stats.stores;
            anyMem = true;
        }
        if (!anyMem) {
            TraceRecord r;
            r.ip = ip;
            emit(r);
            ++stats.nonMem;
        }

        // A load replaces the dependence set with its destinations; any
        // other instruction overwrites (kills) the registers it writes.
        if (anyLoad)
            loadDest.fill(false);
        for (std::size_t i = 0; i < kNumDest; ++i) {
            const unsigned char reg = rec[kOffDestRegs + i];
            if (reg)
                loadDest[reg] = anyLoad;
        }
    }

    if (stats.records == 0)
        throw std::runtime_error("champsim import: empty input");

    if (opts.footprint == 0 && stats.maxVaddr >= stats.minVaddr &&
        stats.loads + stats.stores > 0)
        writer.setFootprint(stats.maxVaddr - stats.minVaddr + 1);
    writer.finalize();
    return stats;
}

} // namespace trace
} // namespace tacsim
