#include "trace/reader.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace tacsim {
namespace trace {

namespace {

constexpr std::size_t kBufferBytes = 64 * 1024;

std::uint64_t
readLe(const unsigned char *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    throw std::runtime_error("trace: " + what + ": " + path);
}

} // namespace

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fail(path, "cannot open");

    unsigned char fixed[kHeaderFixedBytes];
    if (std::fread(fixed, 1, sizeof fixed, file_) != sizeof fixed) {
        std::fclose(file_);
        file_ = nullptr;
        fail(path, "truncated header");
    }
    if (std::memcmp(fixed, kMagic.data(), kMagic.size()) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        fail(path, "not a tacsim-trace file (bad magic)");
    }
    const std::uint64_t version = readLe(fixed + 8, 4);
    if (version != kVersion) {
        std::fclose(file_);
        file_ = nullptr;
        fail(path, "unsupported version " + std::to_string(version));
    }
    header_.footprint = readLe(fixed + 12, 8);
    header_.seed = readLe(fixed + 20, 8);
    header_.recordCount = readLe(fixed + 28, 8);
    const std::size_t nameLen =
        static_cast<std::size_t>(readLe(fixed + 36, 2));

    std::vector<char> name(nameLen);
    if (nameLen &&
        std::fread(name.data(), 1, nameLen, file_) != nameLen) {
        std::fclose(file_);
        file_ = nullptr;
        fail(path, "truncated header name");
    }
    header_.name.assign(name.begin(), name.end());
    payloadStart_ = static_cast<long>(kHeaderFixedBytes + nameLen);

    // Locate the payload's end now: every valid file ends in a
    // fixed-size footer, and the decoder must stop before it —
    // otherwise a truncated payload would silently misdecode footer
    // bytes as records instead of reporting the truncation.
    if (std::fseek(file_, 0, SEEK_END) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        fail(path, "seek failed");
    }
    const long fileSize = std::ftell(file_);
    payloadEnd_ = fileSize - static_cast<long>(kFooterBytes);
    if (payloadEnd_ < payloadStart_) {
        std::fclose(file_);
        file_ = nullptr;
        fail(path, "file truncated (no room for footer)");
    }
    if (std::fseek(file_, payloadStart_, SEEK_SET) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        fail(path, "seek failed");
    }
    buffer_.reserve(kBufferBytes);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::refill()
{
    const long at = std::ftell(file_);
    if (at < 0)
        fail(path_, "ftell failed");
    if (at >= payloadEnd_)
        return false; // next byte would be the footer
    const std::size_t want = std::min<std::size_t>(
        kBufferBytes, static_cast<std::size_t>(payloadEnd_ - at));
    buffer_.resize(want);
    const std::size_t got =
        std::fread(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.resize(got);
    bufPos_ = 0;
    return got != 0;
}

unsigned char
TraceReader::takeByte()
{
    if (bufPos_ >= buffer_.size() && !refill())
        fail(path_,
             "payload truncated (decoded " + std::to_string(position_) +
                 " of " + std::to_string(header_.recordCount) +
                 " records)");
    return buffer_[bufPos_++];
}

std::uint64_t
TraceReader::takeVarint()
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const unsigned char b = takeByte();
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return v;
    }
    fail(path_, "overlong varint");
}

bool
TraceReader::next(TraceRecord &r)
{
    if (position_ >= header_.recordCount)
        return false;

    const unsigned char flags = takeByte();
    if (flags & ~0x07u)
        fail(path_, "corrupt record flags");
    const unsigned kind = flags & 0x03u;
    if (kind > 2)
        fail(path_, "corrupt record kind");

    r = TraceRecord{};
    r.kind = static_cast<TraceRecord::Kind>(kind);
    r.dependsOnPrevLoad = (flags & 0x04u) != 0;
    delta_.prevIp += static_cast<Addr>(zigzagDecode(takeVarint()));
    r.ip = delta_.prevIp;
    if (r.isMem()) {
        delta_.prevVaddr +=
            static_cast<Addr>(zigzagDecode(takeVarint()));
        r.vaddr = delta_.prevVaddr;
    }
    ++position_;
    return true;
}

void
TraceReader::rewind()
{
    if (std::fseek(file_, payloadStart_, SEEK_SET) != 0)
        fail(path_, "rewind failed");
    buffer_.clear();
    bufPos_ = 0;
    delta_ = DeltaState{};
    position_ = 0;
}

VerifyResult
verifyTraceFile(const std::string &path)
{
    VerifyResult v;
    try {
        TraceReader reader(path);
        v.header = reader.header();
        if (v.header.recordCount == 0) {
            v.error = "empty trace (0 records)";
            return v;
        }

        TraceRecord r;
        while (reader.next(r)) {
        }

        // Decoding proved the payload is structurally sound; now check
        // integrity byte-for-byte. The payload spans from the end of the
        // header to the start of the fixed-size footer.
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f) {
            v.error = "cannot reopen";
            return v;
        }
        const long payloadStart = static_cast<long>(
            kHeaderFixedBytes + v.header.name.size());
        std::fseek(f, 0, SEEK_END);
        const long fileSize = std::ftell(f);
        const long payloadEnd =
            fileSize - static_cast<long>(kFooterBytes);
        if (payloadEnd < payloadStart) {
            std::fclose(f);
            v.error = "file too small for footer";
            return v;
        }
        v.payloadBytes =
            static_cast<std::uint64_t>(payloadEnd - payloadStart);

        std::fseek(f, payloadStart, SEEK_SET);
        std::uint32_t crc = 0;
        std::vector<unsigned char> buf(64 * 1024);
        std::uint64_t remaining = v.payloadBytes;
        while (remaining) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(remaining, buf.size()));
            if (std::fread(buf.data(), 1, want, f) != want) {
                std::fclose(f);
                v.error = "payload read failed";
                return v;
            }
            crc = crc32(crc, buf.data(), want);
            remaining -= want;
        }

        unsigned char foot[kFooterBytes];
        const bool footOk =
            std::fread(foot, 1, sizeof foot, f) == sizeof foot;
        std::fclose(f);
        if (!footOk) {
            v.error = "truncated footer";
            return v;
        }
        if (std::memcmp(foot, kEndMagic.data(), kEndMagic.size()) != 0) {
            v.error = "bad footer magic";
            return v;
        }
        const std::uint64_t footCount = readLe(foot + 4, 8);
        const std::uint32_t footCrc =
            static_cast<std::uint32_t>(readLe(foot + 12, 4));
        if (footCount != v.header.recordCount) {
            v.error = "record count mismatch (header " +
                std::to_string(v.header.recordCount) + ", footer " +
                std::to_string(footCount) + ")";
            return v;
        }
        if (reader.position() != v.header.recordCount) {
            v.error = "decoded record count mismatch";
            return v;
        }
        if (footCrc != crc) {
            v.error = "payload CRC mismatch";
            return v;
        }
        v.ok = true;
    } catch (const std::exception &e) {
        v.error = e.what();
    }
    return v;
}

} // namespace trace
} // namespace tacsim
