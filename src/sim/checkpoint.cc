#include "sim/checkpoint.hh"

#include <array>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/serialize.hh"
#include "sim/config.hh"
#include "sim/system.hh"
#include "trace/format.hh"

namespace tacsim {

namespace {

constexpr std::array<unsigned char, 8> kCkptMagic = {'T', 'A', 'C', 'C',
                                                     'K', 'P', 'T', '1'};

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
writeAll(std::FILE *f, const void *data, std::size_t n,
         const std::string &path)
{
    if (n != 0 && std::fwrite(data, 1, n, f) != n)
        throw std::runtime_error("checkpoint: short write to " + path);
}

void
readAll(std::FILE *f, void *data, std::size_t n, const std::string &path)
{
    if (n != 0 && std::fread(data, 1, n, f) != n)
        throw std::runtime_error("checkpoint: " + path +
                                 " is truncated");
}

void
putU32le(unsigned char out[4], std::uint32_t v)
{
    out[0] = static_cast<unsigned char>(v);
    out[1] = static_cast<unsigned char>(v >> 8);
    out[2] = static_cast<unsigned char>(v >> 16);
    out[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64le(unsigned char out[8], std::uint64_t v)
{
    putU32le(out, static_cast<std::uint32_t>(v));
    putU32le(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
getU32le(const unsigned char in[4])
{
    return std::uint32_t{in[0]} | (std::uint32_t{in[1]} << 8) |
        (std::uint32_t{in[2]} << 16) | (std::uint32_t{in[3]} << 24);
}

std::uint64_t
getU64le(const unsigned char in[8])
{
    return std::uint64_t{getU32le(in)} |
        (std::uint64_t{getU32le(in + 4)} << 32);
}

} // namespace

void
saveCheckpoint(const std::string &path, System &sys)
{
    sys.quiesce();

    SerialWriter w;
    sys.saveState(w);

    const std::string cfgText = canonicalConfigText(sys.config());

    std::uint32_t crc = 0;
    crc = trace::crc32(crc, cfgText.data(), cfgText.size());
    crc = trace::crc32(crc, w.bytes().data(), w.bytes().size());

    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw std::runtime_error("checkpoint: cannot open " + path +
                                 " for writing");

    writeAll(f.get(), kCkptMagic.data(), kCkptMagic.size(), path);
    unsigned char u32buf[4], u64buf[8];
    putU32le(u32buf, kCheckpointVersion);
    writeAll(f.get(), u32buf, sizeof(u32buf), path);
    putU64le(u64buf, cfgText.size());
    writeAll(f.get(), u64buf, sizeof(u64buf), path);
    writeAll(f.get(), cfgText.data(), cfgText.size(), path);
    putU64le(u64buf, w.size());
    writeAll(f.get(), u64buf, sizeof(u64buf), path);
    writeAll(f.get(), w.bytes().data(), w.size(), path);
    putU32le(u32buf, crc);
    writeAll(f.get(), u32buf, sizeof(u32buf), path);

    if (std::fflush(f.get()) != 0)
        throw std::runtime_error("checkpoint: flush failed for " + path);
}

void
loadCheckpoint(const std::string &path, System &sys)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw std::runtime_error("checkpoint: cannot open " + path);

    std::array<unsigned char, 8> magic{};
    readAll(f.get(), magic.data(), magic.size(), path);
    if (magic != kCkptMagic)
        throw std::runtime_error("checkpoint: " + path +
                                 " is not a tacsim-ckpt-v1 file");

    unsigned char u32buf[4], u64buf[8];
    readAll(f.get(), u32buf, sizeof(u32buf), path);
    const std::uint32_t version = getU32le(u32buf);
    if (version != kCheckpointVersion)
        throw std::runtime_error(
            "checkpoint: " + path + " has unsupported version " +
            std::to_string(version));

    readAll(f.get(), u64buf, sizeof(u64buf), path);
    const std::uint64_t cfgLen = getU64le(u64buf);
    // Sanity cap: a canonical config dump is a few KiB. A corrupt length
    // field must not drive a multi-GiB allocation.
    if (cfgLen > (1u << 20))
        throw std::runtime_error("checkpoint: " + path +
                                 " has an implausible config length");
    std::string cfgText(static_cast<std::size_t>(cfgLen), '\0');
    readAll(f.get(), cfgText.data(), cfgText.size(), path);

    readAll(f.get(), u64buf, sizeof(u64buf), path);
    const std::uint64_t payloadLen = getU64le(u64buf);
    if (payloadLen > (std::uint64_t{1} << 34))
        throw std::runtime_error("checkpoint: " + path +
                                 " has an implausible payload length");
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(payloadLen));
    readAll(f.get(), payload.data(), payload.size(), path);

    readAll(f.get(), u32buf, sizeof(u32buf), path);
    const std::uint32_t storedCrc = getU32le(u32buf);
    std::uint32_t crc = 0;
    crc = trace::crc32(crc, cfgText.data(), cfgText.size());
    crc = trace::crc32(crc, payload.data(), payload.size());
    if (crc != storedCrc)
        throw std::runtime_error("checkpoint: " + path +
                                 " failed CRC verification");

    const std::string want = canonicalConfigText(sys.config());
    if (cfgText != want)
        throw std::runtime_error(
            "checkpoint: " + path +
            " was saved from a different configuration; rebuild the "
            "System with the checkpoint's config before restoring");

    SerialReader r(payload);
    sys.loadState(r);
    if (!r.atEnd())
        throw std::runtime_error(
            "checkpoint: " + path + " has " +
            std::to_string(r.remaining()) +
            " trailing payload bytes — save/load mismatch");
}

} // namespace tacsim
