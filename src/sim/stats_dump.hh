/**
 * @file
 * Deterministic textual serialization of a RunResult, plus a
 * field-by-field comparator. This is the contract behind two safety
 * nets:
 *
 *  - golden-run snapshot tests (tests/golden/): small-budget end-to-end
 *    dumps checked into the tree, regenerated via
 *    scripts/regen_golden.sh, diffed field by field on mismatch;
 *  - determinism tests: the same point run twice (serially and across
 *    the sweep thread pool) must produce byte-identical dumps.
 *
 * The format is strict "key value\n" lines in a fixed field order.
 * Doubles are printed with "%.12g" — the simulation is deterministic, so
 * equal runs produce bit-equal doubles and therefore byte-equal text.
 */

#ifndef TACSIM_SIM_STATS_DUMP_HH
#define TACSIM_SIM_STATS_DUMP_HH

#include <string>
#include <vector>

#include "sim/runner.hh"

namespace tacsim {

/** Serialize @p r as deterministic "key value" lines. */
std::string dumpRunResult(const RunResult &r);

/**
 * Every metric the hierarchy registered, as deterministic "name value"
 * lines (the registry-backed complement of dumpRunResult: raw counters
 * per component rather than collapsed paper metrics). diffDumps works
 * on this format too.
 */
std::string dumpFullStats(const System &sys);

/**
 * Compare two dumps field by field. Returns human-readable difference
 * descriptions ("field: expected X, got Y"), empty when identical.
 * Missing/extra keys are reported as differences too.
 */
std::vector<std::string> diffDumps(const std::string &expected,
                                   const std::string &actual);

} // namespace tacsim

#endif // TACSIM_SIM_STATS_DUMP_HH
