/**
 * @file
 * The `tacsim-ckpt-v1` on-disk checkpoint container.
 *
 * Layout (all integers little-endian):
 *
 *   header   8B magic "TACCKPT1"
 *            u32 version (= 1)
 *            u64 configLen, then configLen bytes of
 *                canonicalConfigText (sim/config.hh) of the saved system
 *            u64 payloadLen
 *   payload  payloadLen bytes of System::saveState output
 *   footer   u32 CRC-32 (IEEE) of config text + payload bytes
 *
 * The embedded config text is the compatibility stamp: loadCheckpoint
 * refuses to restore into a System whose canonical config differs from
 * the saver's, because state layouts (set counts, way counts, ROB
 * geometry) are config-derived and a silent mismatch would corrupt the
 * restored machine. The CRC rejects truncation and bit rot before any
 * payload byte is interpreted.
 *
 * Checkpoints are only written at quiesce() boundaries (System::saveState
 * enforces this), which is what makes restore deterministic: a
 * straight-through run and a save/restore run execute identical
 * instruction streams from identical machine state, so their canonical
 * stats dumps stay byte-identical.
 */

#ifndef TACSIM_SIM_CHECKPOINT_HH
#define TACSIM_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>

namespace tacsim {

class System;

constexpr std::uint32_t kCheckpointVersion = 1;

/**
 * Quiesce @p sys and write a tacsim-ckpt-v1 file to @p path.
 * Throws std::runtime_error on I/O failure or when the system holds
 * state that cannot be checkpointed (see System::saveState).
 */
void saveCheckpoint(const std::string &path, System &sys);

/**
 * Restore @p sys from a tacsim-ckpt-v1 file. @p sys must be freshly
 * built with the same configuration the checkpoint was saved from;
 * throws std::runtime_error on magic/version/CRC/config mismatch or a
 * malformed payload.
 */
void loadCheckpoint(const std::string &path, System &sys);

} // namespace tacsim

#endif // TACSIM_SIM_CHECKPOINT_HH
