#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono> // tacsim-lint: allow(banned-include) wall-clock is reporting-only here (per-point wallMs); nothing simulated reads it
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/host.hh"
#include "obs/path.hh"
#include "serve/point_key.hh"
#include "sim/stats_dump.hh"
#include "sim/topology.hh"

namespace tacsim {

namespace {

/**
 * Expand "{key}" in a point's obs output paths with the sweep key.
 * Sweep keys are unique per point (the benchmark label is not — a
 * baseline/proposed pair shares it), so concurrent points under
 * TACSIM_JOBS never collide on an output file.
 */
SystemConfig
configForPoint(const SystemConfig &cfg, const std::string &key)
{
    SystemConfig out = cfg;
    out.obs.timeseriesPath =
        obs::expandPointPath(out.obs.timeseriesPath, key);
    out.obs.chromeTracePath =
        obs::expandPointPath(out.obs.chromeTracePath, key);
    if (out.obs.label.empty())
        out.obs.label = key;
    return out;
}

/** Minimal JSON string escape (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** NaN-safe number formatting: JSON has no NaN, emit null. */
std::string
jsonNumber(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/**
 * Canonical hash of a point, or "" when it cannot be computed (e.g. a
 * "trace:<path>" spec whose file is missing). An empty hash disables
 * dedup and caching for the job; execution still runs and captures the
 * real error, preserving the runner's per-job failure reporting.
 */
std::string
tryPointKey(const SystemConfig &cfg, const std::vector<std::string> &specs,
            std::uint64_t instructions, std::uint64_t warmup)
{
    try {
        return serve::pointKey(cfg, specs, instructions, warmup);
    } catch (const std::exception &) {
        return "";
    }
}

} // namespace

SweepRunner::SweepRunner(unsigned jobs)
    : threads_(jobs ? jobs : defaultJobs())
{}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *v = std::getenv("TACSIM_JOBS")) {
        const unsigned long parsed = std::strtoul(v, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::size_t
SweepRunner::addJob(Job job)
{
    auto it = index_.find(job.key);
    if (it != index_.end()) {
        // Same name must mean the same simulation point. The old memo
        // keyed on the name alone, so a key reused for a different
        // config silently returned the first registration's numbers —
        // exactly the wrong-result class of bug the canonical hash
        // exists to prevent.
        const Job &existing = jobs_[it->second];
        if (!job.pointKey.empty() && !existing.pointKey.empty() &&
            job.pointKey != existing.pointKey)
            throw std::runtime_error(
                "sweep key '" + job.key +
                "' re-registered for a different simulation point");
        return it->second;
    }
    if (!job.pointKey.empty()) {
        auto hit = hashIndex_.find(job.pointKey);
        if (hit != hashIndex_.end()) {
            // Identical point under a new name: alias instead of
            // simulating twice.
            index_.emplace(job.key, hit->second);
            return hit->second;
        }
    }
    const std::size_t idx = jobs_.size();
    index_.emplace(job.key, idx);
    if (!job.pointKey.empty())
        hashIndex_.emplace(job.pointKey, idx);
    jobs_.push_back(std::move(job));
    return idx;
}

std::size_t
SweepRunner::jobIndex(const std::string &key) const
{
    auto it = index_.find(key);
    if (it == index_.end())
        throw std::runtime_error("unknown sweep point '" + key + "'");
    return it->second;
}

std::size_t
SweepRunner::add(const std::string &key, const SystemConfig &cfg,
                 Benchmark b, std::uint64_t instructions,
                 std::uint64_t warmup)
{
    std::vector<Benchmark> mix(cfg.threads(), b);
    return addMix(key, cfg, std::move(mix), instructions, warmup);
}

std::size_t
SweepRunner::addMix(const std::string &key, const SystemConfig &cfg,
                    std::vector<Benchmark> mix,
                    std::uint64_t instructions, std::uint64_t warmup)
{
    Job job;
    job.key = key;
    // Resolve the budgets now so the JSON metadata records what actually
    // ran (runMix would apply the same defaults internally).
    job.instructions = instructions ? instructions : defaultInstructions();
    job.warmup = warmup ? warmup : defaultWarmup();
    job.seed = cfg.seed;
    job.topology = dumpTopologySpec(topologyOf(cfg));
    // runMix resolves each thread's workload the same way: the config's
    // spec (when set) overrides the benchmark choice on every thread.
    std::vector<std::string> specs;
    specs.reserve(mix.size());
    for (Benchmark b : mix)
        specs.push_back(cfg.workload.empty() ? benchmarkName(b)
                                             : cfg.workload);
    job.pointKey =
        tryPointKey(cfg, specs, job.instructions, job.warmup);
    for (std::size_t t = 0; t < mix.size(); ++t) {
        if (t)
            job.benchmark += "-";
        job.benchmark += benchmarkName(mix[t]);
    }
    job.fn = [cfg = configForPoint(cfg, key), mix = std::move(mix),
              instr = job.instructions, warm = job.warmup] {
        return runMix(cfg, mix, instr, warm);
    };
    return addJob(std::move(job));
}

std::size_t
SweepRunner::addSpec(const std::string &key, const SystemConfig &cfg,
                     const std::string &spec,
                     std::uint64_t instructions, std::uint64_t warmup)
{
    Job job;
    job.key = key;
    job.instructions = instructions ? instructions : defaultInstructions();
    job.warmup = warmup ? warmup : defaultWarmup();
    job.seed = cfg.seed;
    job.topology = dumpTopologySpec(topologyOf(cfg));
    job.pointKey = tryPointKey(
        cfg, std::vector<std::string>(cfg.threads(), spec),
        job.instructions, job.warmup);
    // benchmark stays empty: execute() labels the outcome with the
    // workload's own name (trace headers carry the benchmark name).
    job.fn = [cfg = configForPoint(cfg, key), spec,
              instr = job.instructions, warm = job.warmup] {
        return runSpec(cfg, spec, instr, warm);
    };
    return addJob(std::move(job));
}

std::size_t
SweepRunner::addCustom(const std::string &key,
                       std::function<RunResult()> fn)
{
    Job job;
    job.key = key;
    job.fn = std::move(fn);
    return addJob(std::move(job));
}

void
SweepRunner::execute(Job &job)
{
    SweepOutcome o;
    o.key = job.key;
    o.pointKey = job.pointKey;
    o.benchmark = job.benchmark;
    o.topology = job.topology;
    o.instructions = job.instructions;
    o.warmup = job.warmup;
    o.seed = job.seed;

    // tacsim-lint: allow(nondeterminism-hazard) measures host wall time for the report's wallMs field; never feeds simulation state
    const auto t0 = std::chrono::steady_clock::now();
    try {
        if (cache_ && !job.pointKey.empty() &&
            cache_->lookup(job.pointKey, o.result)) {
            o.cached = true;
        } else {
            o.result = job.fn();
            if (cache_ && !job.pointKey.empty())
                cache_->store(job.pointKey, o.result,
                              dumpRunResult(o.result));
        }
        o.ok = true;
        if (o.benchmark.empty())
            o.benchmark = o.result.benchmark;
    } catch (const std::exception &e) {
        o.error = e.what();
    } catch (...) {
        o.error = "unknown exception";
    }
    o.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0) // tacsim-lint: allow(nondeterminism-hazard) reporting-only wall time (see t0 above)
                   .count();
    o.peakRssKb = peakRssKb();

    std::lock_guard<std::mutex> lk(mutex_);
    job.done = true;
    results_[job.key] = std::move(o);
}

void
SweepRunner::run()
{
    std::vector<std::size_t> todo;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (std::size_t i = 0; i < jobs_.size(); ++i)
            if (!jobs_[i].done)
                todo.push_back(i);
    }
    if (todo.empty())
        return;

    const std::size_t workers =
        std::min<std::size_t>(threads_, todo.size());
    if (workers <= 1) {
        for (std::size_t idx : todo)
            execute(jobs_[idx]);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([this, &todo, &next] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= todo.size())
                    return;
                execute(jobs_[todo[i]]);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
}

const RunResult &
SweepRunner::result(const std::string &key)
{
    // Aliased names resolve to their primary job's key, under which the
    // (single) outcome is stored.
    const std::size_t idx = jobIndex(key);
    const std::string &primary = jobs_[idx].key;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto it = results_.find(primary);
        if (it != results_.end()) {
            if (!it->second.ok)
                throw std::runtime_error("sweep point '" + key +
                                         "' failed: " + it->second.error);
            return it->second.result;
        }
    }
    execute(jobs_[idx]);
    std::lock_guard<std::mutex> lk(mutex_);
    SweepOutcome &o = results_.at(primary);
    if (!o.ok)
        throw std::runtime_error("sweep point '" + key +
                                 "' failed: " + o.error);
    return o.result;
}

const SweepOutcome *
SweepRunner::outcome(const std::string &key) const
{
    auto idx = index_.find(key);
    if (idx == index_.end())
        return nullptr;
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = results_.find(jobs_[idx->second].key);
    return it == results_.end() ? nullptr : &it->second;
}

std::vector<const SweepOutcome *>
SweepRunner::outcomes() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<const SweepOutcome *> out;
    out.reserve(jobs_.size());
    for (const Job &j : jobs_) {
        auto it = results_.find(j.key);
        if (it != results_.end())
            out.push_back(&it->second);
    }
    return out;
}

bool
SweepRunner::writeJson(const std::string &path, const std::string &title,
                       const std::vector<ReportRow> &rows) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;

    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"tacsim-sweep-v1\",\n");
    std::fprintf(f, "  \"title\": \"%s\",\n", jsonEscape(title).c_str());
    std::fprintf(f, "  \"jobs\": %u,\n", threads_);
    std::fprintf(f, "  \"points\": %zu,\n", jobs_.size());

    std::fprintf(f, "  \"rows\": [");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ReportRow &r = rows[i];
        std::fprintf(f,
                     "%s\n    {\"series\": \"%s\", \"label\": \"%s\", "
                     "\"measured\": %s, \"paper\": %s, \"unit\": \"%s\"}",
                     i ? "," : "", jsonEscape(r.series).c_str(),
                     jsonEscape(r.label).c_str(),
                     jsonNumber(r.measured).c_str(),
                     jsonNumber(r.paper).c_str(),
                     jsonEscape(r.unit).c_str());
    }
    std::fprintf(f, "\n  ],\n");

    std::fprintf(f, "  \"runs\": [");
    const auto all = outcomes();
    for (std::size_t i = 0; i < all.size(); ++i) {
        const SweepOutcome &o = *all[i];
        const std::string err =
            o.ok ? "null" : "\"" + jsonEscape(o.error) + "\"";
        std::fprintf(
            f,
            "%s\n    {\"key\": \"%s\", \"point_key\": \"%s\", "
            "\"benchmark\": \"%s\", "
            "\"topology\": \"%s\", "
            "\"instructions\": %llu, \"warmup\": %llu, \"seed\": %llu, "
            "\"ok\": %s, \"cached\": %s, \"wall_ms\": %s, "
            "\"cycles\": %llu, "
            "\"ipc\": %s, \"error\": %s}",
            i ? "," : "", jsonEscape(o.key).c_str(),
            jsonEscape(o.pointKey).c_str(),
            jsonEscape(o.benchmark).c_str(),
            jsonEscape(o.topology).c_str(),
            static_cast<unsigned long long>(o.instructions),
            static_cast<unsigned long long>(o.warmup),
            static_cast<unsigned long long>(o.seed),
            o.ok ? "true" : "false", o.cached ? "true" : "false",
            jsonNumber(o.wallMs).c_str(),
            static_cast<unsigned long long>(o.ok ? o.result.cycles : 0),
            jsonNumber(o.ok ? o.result.ipc : 0.0).c_str(),
            err.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");

    const bool ok = std::fclose(f) == 0;
    return ok;
}

bool
SweepRunner::writeJsonFromEnv(const std::string &title,
                              const std::vector<ReportRow> &rows) const
{
    const char *path = std::getenv("TACSIM_JSON_OUT");
    if (!path || !*path)
        return false;
    const bool ok = writeJson(path, title, rows);
    if (ok)
        std::fprintf(stderr, "tacsim: JSON report written to %s\n", path);
    else
        std::fprintf(stderr, "tacsim: failed to write JSON report to %s\n",
                     path);
    return ok;
}

SweepRunner &
globalSweep()
{
    static SweepRunner runner;
    return runner;
}

} // namespace tacsim
