#include "sim/topology.hh"

#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace tacsim {

namespace {

[[noreturn]] void
fail(const std::string &msg)
{
    throw std::invalid_argument("topology: " + msg);
}

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Strict unsigned decimal parse; the whole token must be digits. */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 19)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = kKiB * 1024;
constexpr std::uint64_t kGiB = kMiB * 1024;

/** "16MB" / "512KB" / "1GB" / plain bytes -> byte count. */
bool
parseSize(const std::string &s, std::uint64_t &out)
{
    std::uint64_t mult = 1;
    std::string digits = s;
    if (s.size() > 2) {
        const std::string suffix = s.substr(s.size() - 2);
        if (suffix == "KB")
            mult = kKiB;
        else if (suffix == "MB")
            mult = kMiB;
        else if (suffix == "GB")
            mult = kGiB;
        if (mult != 1)
            digits = s.substr(0, s.size() - 2);
    }
    std::uint64_t v = 0;
    if (!parseU64(digits, v) || v == 0)
        return false;
    out = v * mult;
    return true;
}

std::string
formatSize(std::uint64_t bytes)
{
    if (bytes % kGiB == 0)
        return std::to_string(bytes / kGiB) + "GB";
    if (bytes % kMiB == 0)
        return std::to_string(bytes / kMiB) + "MB";
    if (bytes % kKiB == 0)
        return std::to_string(bytes / kKiB) + "KB";
    return std::to_string(bytes);
}

/** `<size>/<w>w` or `auto/<w>w` or bare `<size>` / `auto`. */
void
parseLlcValue(const std::string &value, TopologySpec &spec)
{
    std::string sizePart = value;
    const std::size_t slash = value.find('/');
    if (slash != std::string::npos) {
        sizePart = value.substr(0, slash);
        const std::string waysPart = value.substr(slash + 1);
        std::uint64_t ways = 0;
        if (waysPart.empty() || waysPart.back() != 'w' ||
            !parseU64(waysPart.substr(0, waysPart.size() - 1), ways))
            fail("bad ways '" + waysPart + "' for 'llc'");
        spec.llcWays = static_cast<std::uint32_t>(ways);
    }
    if (sizePart == "auto") {
        spec.llcBytes = 0;
        return;
    }
    if (!parseSize(sizePart, spec.llcBytes))
        fail("bad size '" + sizePart + "' for 'llc'");
}

/** `<tokens>` or `<tokens>/<window>c`. */
void
parseBwValue(const std::string &value, TopologySpec &spec)
{
    std::string tokenPart = value;
    const std::size_t slash = value.find('/');
    if (slash != std::string::npos) {
        tokenPart = value.substr(0, slash);
        const std::string winPart = value.substr(slash + 1);
        std::uint64_t window = 0;
        if (winPart.empty() || winPart.back() != 'c' ||
            !parseU64(winPart.substr(0, winPart.size() - 1), window))
            fail("bad window '" + winPart + "' for 'bw'");
        spec.bwWindow = window;
    }
    std::uint64_t tokens = 0;
    if (!parseU64(tokenPart, tokens))
        fail("bad value '" + tokenPart + "' for 'bw'");
    spec.bwTokens = static_cast<std::uint32_t>(tokens);
}

std::uint64_t
parseCount(const std::string &value, const std::string &key)
{
    std::uint64_t v = 0;
    if (!parseU64(value, v))
        fail("bad value '" + value + "' for '" + key + "'");
    return v;
}

} // namespace

std::uint64_t
resolvedLlcBytes(const TopologySpec &spec, std::uint64_t perCoreBytes)
{
    return spec.llcBytes ? spec.llcBytes : perCoreBytes * spec.cores;
}

std::uint64_t
resolvedLlcSets(const TopologySpec &spec, std::uint64_t perCoreBytes)
{
    const std::uint64_t rowBytes =
        static_cast<std::uint64_t>(spec.llcWays) * kBlockSize;
    return rowBytes ? resolvedLlcBytes(spec, perCoreBytes) / rowBytes : 0;
}

void
validateTopology(const TopologySpec &spec, std::uint64_t perCoreBytes)
{
    if (spec.cores == 0)
        fail("cores must be nonzero");
    if (spec.cores > 1024)
        fail("cores must be <= 1024");
    if (spec.smt == 0 || spec.smt > 8)
        fail("smt must be in 1..8");
    if (!isPow2(spec.llcWays))
        fail("llc ways must be a nonzero power of two");
    if (!isPow2(spec.slices))
        fail("slices must be a nonzero power of two");
    if (spec.bwWindow == 0)
        fail("bw window must be nonzero");

    const std::uint64_t bytes = resolvedLlcBytes(spec, perCoreBytes);
    const std::uint64_t rowBytes =
        static_cast<std::uint64_t>(spec.llcWays) * kBlockSize;
    const std::uint64_t sets = bytes / rowBytes;
    if (bytes % rowBytes != 0 || !isPow2(sets))
        fail("llc size " + formatSize(bytes) + " with " +
             std::to_string(spec.llcWays) +
             " ways does not yield a power-of-two set count");
    if (spec.slices > sets)
        fail("slices (" + std::to_string(spec.slices) +
             ") exceed llc sets (" + std::to_string(sets) + ")");
}

TopologySpec
parseTopologySpec(const std::string &text)
{
    if (text.empty())
        fail("empty spec");

    TopologySpec spec;
    std::vector<std::string> seen;

    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;

        const std::size_t eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0)
            fail("expected key=value, got '" + item + "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        for (const std::string &k : seen)
            if (k == key)
                fail("duplicate key '" + key + "'");
        seen.push_back(key);

        if (key == "cores")
            spec.cores = static_cast<unsigned>(parseCount(value, key));
        else if (key == "smt")
            spec.smt = static_cast<unsigned>(parseCount(value, key));
        else if (key == "llc")
            parseLlcValue(value, spec);
        else if (key == "slices")
            spec.slices = static_cast<unsigned>(parseCount(value, key));
        else if (key == "slice_lat")
            spec.sliceHopLatency = parseCount(value, key);
        else if (key == "chan")
            spec.channels = static_cast<unsigned>(parseCount(value, key));
        else if (key == "mshr_quota")
            spec.mshrQuota =
                static_cast<std::uint32_t>(parseCount(value, key));
        else if (key == "bw")
            parseBwValue(value, spec);
        else
            fail("unknown key '" + key + "'");
    }

    validateTopology(spec);
    return spec;
}

std::string
dumpTopologySpec(const TopologySpec &spec)
{
    std::string out = "cores=" + std::to_string(spec.cores);
    if (spec.smt != 1)
        out += ",smt=" + std::to_string(spec.smt);
    if (spec.llcBytes != 0 || spec.llcWays != 16) {
        out += ",llc=";
        out += spec.llcBytes ? formatSize(spec.llcBytes)
                             : std::string("auto");
        out += "/" + std::to_string(spec.llcWays) + "w";
    }
    if (spec.slices != 1)
        out += ",slices=" + std::to_string(spec.slices);
    if (spec.sliceHopLatency != 0)
        out += ",slice_lat=" + std::to_string(spec.sliceHopLatency);
    if (spec.channels != 0)
        out += ",chan=" + std::to_string(spec.channels);
    if (spec.mshrQuota != 0)
        out += ",mshr_quota=" + std::to_string(spec.mshrQuota);
    if (spec.bwTokens != 0) {
        out += ",bw=" + std::to_string(spec.bwTokens);
        if (spec.bwWindow != 64)
            out += "/" + std::to_string(spec.bwWindow) + "c";
    }
    return out;
}

TopologySpec
topologyOf(const SystemConfig &cfg)
{
    TopologySpec spec;
    spec.cores = cfg.numCores;
    spec.smt = cfg.threadsPerCore;
    spec.llcBytes = cfg.llcTotalBytes;
    spec.llcWays = cfg.llcPerCore.ways;
    spec.slices = cfg.llcSlices;
    spec.sliceHopLatency = cfg.llcSliceHopLatency;
    // One channel is both the config default and the "derive from core
    // count" marker (System sizes channels up for >4 cores), so it maps
    // back to the spec's auto value.
    spec.channels = cfg.dram.channels == 1 ? 0 : cfg.dram.channels;
    spec.mshrQuota = cfg.llcMshrQuotaPerCore;
    spec.bwTokens = cfg.llcBwTokensPerCore;
    spec.bwWindow = cfg.llcBwWindow;
    return spec;
}

void
applyTopology(const TopologySpec &spec, SystemConfig &cfg)
{
    validateTopology(spec, cfg.llcPerCore.sizeBytes);
    cfg.numCores = spec.cores;
    cfg.threadsPerCore = spec.smt;
    cfg.llcTotalBytes = spec.llcBytes;
    cfg.llcPerCore.ways = spec.llcWays;
    cfg.llcSlices = spec.slices;
    cfg.llcSliceHopLatency = spec.sliceHopLatency;
    if (spec.channels != 0)
        cfg.dram.channels = spec.channels;
    cfg.llcMshrQuotaPerCore = spec.mshrQuota;
    cfg.llcBwTokensPerCore = spec.bwTokens;
    cfg.llcBwWindow = spec.bwWindow;
}

SystemConfig
configFromTopology(const std::string &text, SystemConfig base)
{
    applyTopology(parseTopologySpec(text), base);
    return base;
}

} // namespace tacsim
