/**
 * @file
 * Hierarchy-wide invariant verifier. The paper's mechanisms are
 * cross-cutting metadata plumbing — PTE / replay / non-replay flags
 * travelling from the page-table walker through two cache levels,
 * replacement state and two prefetch paths — exactly the kind of state
 * where a silent desync (a replay flag surviving eviction, a leaf-PTE
 * block double-resident in a set) skews every downstream figure without
 * failing a test.
 *
 * Every component exposes a checkInvariants() hook that walks its own
 * state and throws InvariantViolation on the first inconsistency. The
 * Checker ties them together: attached to a System it re-verifies the
 * whole hierarchy at a configurable executed-event interval during
 * System::run() (compiled in under -DTACSIM_VERIFY=ON; zero cost when
 * off) and at drain points, plus whenever checkAll() is called
 * explicitly — which works in every build type.
 */

#ifndef TACSIM_SIM_VERIFY_HH
#define TACSIM_SIM_VERIFY_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace tacsim {

class System;
class Tlb;

namespace verify {

/**
 * One structural inconsistency, carrying enough context to localize it:
 * which component, which named invariant, where in the array (set/way,
 * -1 when not applicable) and a free-form state dump.
 *
 * The invariant tags are stable strings (e.g. "duplicate-tag",
 * "rrpv-range", "stale-meta") so tests can assert that a seeded
 * corruption trips exactly the check it targets.
 */
class InvariantViolation : public std::runtime_error
{
  public:
    InvariantViolation(std::string component, std::string invariant,
                       std::string detail, std::int64_t set = -1,
                       std::int64_t way = -1);

    const std::string &component() const { return component_; }
    const std::string &invariant() const { return invariant_; }
    const std::string &detail() const { return detail_; }
    std::int64_t set() const { return set_; }
    std::int64_t way() const { return way_; }

  private:
    static std::string format(const std::string &component,
                              const std::string &invariant,
                              const std::string &detail, std::int64_t set,
                              std::int64_t way);

    std::string component_;
    std::string invariant_;
    std::string detail_;
    std::int64_t set_;
    std::int64_t way_;
};

/**
 * Walks a System's full hierarchy asserting structural invariants:
 * no duplicate tags within a set, replacement metadata within bounds,
 * MSHR targets unique with consistent demand/prefetch origin flags,
 * translation/replay block metadata cleared on eviction, TLB/PSC state
 * consistent with the page table, DRRIP leader constituencies disjoint,
 * and event-queue timestamps monotone.
 *
 * Attach with System::attachChecker(); System::run() then calls
 * maybeCheck() each scheduler iteration (only in TACSIM_VERIFY builds)
 * and onDrain() when a run completes. checkAll() may also be called
 * directly at any quiescent point.
 */
class Checker
{
  public:
    /**
     * @param eventInterval re-verify after this many executed events
     *        (0 = only at drain points / explicit calls).
     */
    explicit Checker(System &sys, std::uint64_t eventInterval = 100000);

    /** Verify every component now. Throws InvariantViolation. */
    void checkAll();

    /** Periodic hook driven by the run loop's executed-event count. */
    void maybeCheck(std::uint64_t eventsExecuted);

    /** Drain-point hook: unconditional full check. */
    void onDrain() { checkAll(); }

    /** Number of full hierarchy verifications performed so far. */
    std::uint64_t checksRun() const { return checks_; }

    std::uint64_t eventInterval() const { return interval_; }

  private:
    void checkEventQueue() const;
    void checkTlbAgainstPageTable(const Tlb &tlb) const;

    System &sys_;
    std::uint64_t interval_;
    std::uint64_t lastCheckedAt_ = 0;
    std::uint64_t checks_ = 0;
};

} // namespace verify
} // namespace tacsim

#endif // TACSIM_SIM_VERIFY_HH
