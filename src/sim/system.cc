#include "sim/system.hh"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.hh"

#include "cache/repl/csalt.hh"
#include "cache/repl/deadblock.hh"
#include "cache/slice_router.hh"
#include "obs/chrome_trace.hh"
#include "obs/timeseries.hh"
#include "sim/topology.hh"
#include "sim/verify.hh"

namespace tacsim {

namespace {

unsigned
log2OfPow2(std::uint64_t v)
{
    unsigned bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

} // namespace

std::unique_ptr<ReplPolicy>
System::buildLlcPolicy(std::uint32_t sets, std::uint32_t ways,
                       std::uint64_t seed) const
{
    auto base = makePolicy(cfg_.llcPolicy, sets, ways, cfg_.llcOpts, seed);
    if (cfg_.llcDeadBlock)
        return std::make_unique<DeadBlockPolicy>(sets, ways, cfg_.llcOpts,
                                                 std::move(base));
    if (cfg_.llcCsalt)
        return std::make_unique<CsaltPolicy>(sets, ways, cfg_.llcOpts,
                                             std::move(base));
    return base;
}

System::System(SystemConfig cfg,
               std::vector<std::unique_ptr<Workload>> workloads)
    : cfg_(cfg), workloads_(std::move(workloads))
{
    // Every composition decision below flows from the declarative
    // topology the config describes; reject inconsistent shapes (bad
    // slice/set ratios, zero cores) before building anything.
    const TopologySpec topo = topologyOf(cfg_);
    validateTopology(topo, cfg_.llcPerCore.sizeBytes);

    const unsigned threads = cfg_.threads();
    TACSIM_CHECK(workloads_.size() == threads &&
                 "need one workload per hardware thread");

    // Page tables: one address space per thread. Huge-page coverage is
    // a property of the (simulated) OS, so every thread shares the same
    // promotion policy.
    const HugePagePolicy guestPolicy{cfg_.vm.hugePages2M,
                                     cfg_.vm.hugePages1G, cfg_.seed};
    for (unsigned t = 0; t < threads; ++t)
        pageTables_.push_back(
            std::make_unique<PageTable>(frames_, guestPolicy));

    // Nested translation: one host address space translating every
    // guest-physical address, with its own frame pool (host-physical).
    if (cfg_.vm.nested) {
        const HugePagePolicy hostPolicy{cfg_.vm.hostHugePages2M,
                                        cfg_.vm.hostHugePages1G,
                                        cfg_.seed + 1};
        hostPageTable_ =
            std::make_unique<PageTable>(hostFrames_, hostPolicy);
    }

    // DRAM: explicit channel count from the topology, else one channel
    // per four cores (Table I).
    DramParams dp = cfg_.dram;
    if (dp.channels == 1 && cfg_.numCores > 4)
        dp.channels = (cfg_.numCores + 3) / 4;
    dp.tempo = cfg_.tempo;
    dram_ = std::make_unique<Dram>("DRAM", eq_, dp);

    // Shared LLC: total capacity from the topology (default 2MB per
    // core), address-interleaved across llcSlices independent Cache
    // instances. Each slice indexes above the slice-select bits so
    // sibling slices cover disjoint sets of the monolithic geometry.
    const unsigned slices = cfg_.llcSlices ? cfg_.llcSlices : 1;
    llcSliceMask_ = slices - 1;
    {
        const std::uint64_t llcBytes = cfg_.llcTotalBytes
            ? cfg_.llcTotalBytes
            : static_cast<std::uint64_t>(cfg_.llcPerCore.sizeBytes) *
                cfg_.numCores;
        const std::uint32_t ways = cfg_.llcPerCore.ways;
        const std::uint32_t setsTotal = static_cast<std::uint32_t>(
            llcBytes / (static_cast<std::uint64_t>(ways) * kBlockSize));
        const std::uint32_t mshrsTotal =
            cfg_.llcPerCore.mshrs * cfg_.numCores;

        for (unsigned s = 0; s < slices; ++s) {
            CacheParams p;
            p.name = slices > 1 ? "LLC." + std::to_string(s) : "LLC";
            p.ways = ways;
            p.sets = setsTotal / slices;
            p.setShift = kBlockBits + log2OfPow2(slices);
            p.latency = cfg_.llcPerCore.latency;
            p.mshrs = std::max<std::uint32_t>(1, mshrsTotal / slices);
            p.level = RespSource::LLC;
            p.idealTranslations = cfg_.idealLlcTranslations;
            p.idealReplays = cfg_.idealLlcReplays;
            p.atp = cfg_.atpLlc;
            p.profileRecall = cfg_.profileCacheRecall;
            p.arb.cores = cfg_.llcMshrQuotaPerCore ||
                    cfg_.llcBwTokensPerCore
                ? cfg_.numCores
                : 0;
            p.arb.smt = cfg_.threadsPerCore;
            p.arb.mshrQuota = cfg_.llcMshrQuotaPerCore;
            p.arb.bwTokens = cfg_.llcBwTokensPerCore;
            p.arb.bwWindow = cfg_.llcBwWindow ? cfg_.llcBwWindow : 64;
            llc_.push_back(std::make_unique<Cache>(
                p, eq_, dram_.get(),
                buildLlcPolicy(p.sets, p.ways, cfg_.seed + s)));
        }
    }

    // The slice interconnect fronts the L2s only when there is
    // something to route; a monolithic LLC keeps the direct path (and
    // byte-identical behavior with the pre-topology composition).
    if (slices > 1) {
        std::vector<Cache *> homes;
        homes.reserve(slices);
        for (auto &s : llc_)
            homes.push_back(s.get());
        llcRouter_ = std::make_unique<SliceRouter>(
            "LLCRouter", eq_, std::move(homes), cfg_.threadsPerCore,
            cfg_.llcSliceHopLatency);
    }
    MemDevice *llcFront =
        llcRouter_ ? static_cast<MemDevice *>(llcRouter_.get())
                   : static_cast<MemDevice *>(llc_[0].get());

    if (cfg_.tempo) {
        dram_->setTempoHook([this](Addr block, Addr ip) {
            llcSliceFor(block).issuePrefetch(block, PrefetchOrigin::Tempo,
                                             ip);
        });
    }

    // Per-core private hierarchy.
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        const std::string suffix =
            cfg_.numCores > 1 ? "." + std::to_string(c) : "";

        {
            CacheParams p;
            p.name = "L2C" + suffix;
            p.ways = cfg_.l2.ways;
            p.sets = cfg_.l2.sets();
            p.latency = cfg_.l2.latency;
            p.mshrs = cfg_.l2.mshrs;
            p.level = RespSource::L2C;
            p.idealTranslations = cfg_.idealL2Translations;
            p.idealReplays = cfg_.idealL2Replays;
            p.atp = cfg_.atpL2;
            p.profileRecall = cfg_.profileCacheRecall;
            auto pol = makePolicy(cfg_.l2Policy, p.sets, p.ways,
                                  cfg_.l2Opts, cfg_.seed + c);
            auto pf = makePrefetcher(cfg_.l2Prefetcher);
            l2_.push_back(std::make_unique<Cache>(p, eq_, llcFront,
                                                  std::move(pol),
                                                  std::move(pf)));
        }

        dtlb_.push_back(std::make_unique<Tlb>(
            "DTLB" + suffix, cfg_.dtlbEntries, cfg_.dtlbWays,
            cfg_.dtlbLatency));
        stlb_.push_back(std::make_unique<Tlb>(
            "STLB" + suffix, cfg_.stlbEntries, cfg_.stlbWays,
            cfg_.stlbLatency, cfg_.profileStlbRecall));

        {
            CacheParams p;
            p.name = "L1D" + suffix;
            p.ways = cfg_.l1d.ways;
            p.sets = cfg_.l1d.sets();
            p.latency = cfg_.l1d.latency;
            p.mshrs = cfg_.l1d.mshrs;
            p.level = RespSource::L1D;
            auto pol = makePolicy(PolicyKind::LRU, p.sets, p.ways, {},
                                  cfg_.seed + c);
            auto pf = makePrefetcher(cfg_.l1Prefetcher);
            if (pf) {
                Tlb *dtlb = dtlb_[c].get();
                Tlb *stlb = stlb_[c].get();
                pf->setTranslateHook(
                    [dtlb, stlb](Addr vaddr,
                                 std::uint16_t cpu) -> std::optional<Addr> {
                        // probe() applies the hit entry's own offset
                        // mask, so huge-page mappings translate right.
                        Addr paddr = 0;
                        if (dtlb->probe(cpu, vaddr, paddr) ||
                            stlb->probe(cpu, vaddr, paddr))
                            return paddr;
                        return std::nullopt;
                    });
            }
            l1d_.push_back(std::make_unique<Cache>(p, eq_, l2_[c].get(),
                                                   std::move(pol),
                                                   std::move(pf)));
        }

        ptw_.push_back(std::make_unique<PageTableWalker>(
            eq_, l1d_[c].get(), cfg_.ptw));
        ptw_[c]->setStlb(stlb_[c].get());
        if (hostPageTable_)
            ptw_[c]->setNestedTranslation(hostPageTable_.get());
    }

    // Hardware threads.
    for (unsigned t = 0; t < threads; ++t) {
        const unsigned c = t / cfg_.threadsPerCore;
        CoreParams cp = cfg_.core;
        cp.robSize = cfg_.core.robSize / cfg_.threadsPerCore;
        cp.cpuId = static_cast<std::uint16_t>(t);
        cp.asid = static_cast<std::uint16_t>(t);
        ptw_[c]->addAddressSpace(cp.asid, pageTables_[t].get());
        cores_.push_back(std::make_unique<Core>(
            cp, eq_, *workloads_[t], *dtlb_[c], *stlb_[c], *ptw_[c],
            *l1d_[c]));
    }

    finishCycle_.assign(threads, 0);

    // Metrics registration. Every component catalogues its counters /
    // gauges / histograms once, here; the per-core prefix carries an
    // index only when there is more than one instance (matching the
    // "L2C" vs "L2C.0" component-name convention).
    for (unsigned t = 0; t < threads; ++t) {
        const std::string tsuffix =
            threads > 1 ? "." + std::to_string(t) : "";
        cores_[t]->registerMetrics(registry_, "core" + tsuffix);
    }
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        const std::string suffix =
            cfg_.numCores > 1 ? "." + std::to_string(c) : "";
        dtlb_[c]->registerMetrics(registry_, "dtlb" + suffix);
        stlb_[c]->registerMetrics(registry_, "stlb" + suffix);
        ptw_[c]->registerMetrics(registry_, "ptw" + suffix);
        l1d_[c]->registerMetrics(registry_, "l1d" + suffix);
        l2_[c]->registerMetrics(registry_, "l2c" + suffix);
    }
    for (std::size_t s = 0; s < llc_.size(); ++s) {
        const std::string ssuffix =
            llc_.size() > 1 ? "." + std::to_string(s) : "";
        llc_[s]->registerMetrics(registry_, "llc" + ssuffix);
    }
    if (llcRouter_)
        llcRouter_->registerMetrics(registry_, "noc");
    dram_->registerMetrics(registry_, "dram");

    // Timeline tracing (off unless a path was configured; components
    // keep a null tracer pointer otherwise).
    if (!cfg_.obs.chromeTracePath.empty()) {
        tracer_ =
            std::make_unique<obs::ChromeTracer>(cfg_.obs.chromeTracePath);
        for (unsigned t = 0; t < threads; ++t)
            cores_[t]->setTracer(
                tracer_.get(),
                tracer_->addTrack("Core." + std::to_string(t)));
        for (unsigned c = 0; c < cfg_.numCores; ++c) {
            const std::string suffix =
                cfg_.numCores > 1 ? "." + std::to_string(c) : "";
            ptw_[c]->setTracer(tracer_.get(),
                               tracer_->addTrack("PTW" + suffix));
            l1d_[c]->setTracer(
                tracer_.get(), tracer_->addTrack(l1d_[c]->name()));
            l2_[c]->setTracer(
                tracer_.get(), tracer_->addTrack(l2_[c]->name()));
        }
        for (auto &s : llc_)
            s->setTracer(tracer_.get(), tracer_->addTrack(s->name()));
        dram_->setTracer(tracer_.get(),
                         tracer_->addTrack(dram_->name()));
    }

    // Time-series sampling.
    if (!cfg_.obs.timeseriesPath.empty()) {
        const std::uint64_t interval =
            cfg_.obs.sampleInterval ? cfg_.obs.sampleInterval : 10000;
        sampler_ = std::make_unique<obs::Sampler>(
            registry_, cfg_.obs.timeseriesPath, interval,
            cfg_.obs.label.empty() ? std::string("tacsim")
                                   : cfg_.obs.label);
    }
}

System::~System()
{
    if (sampler_)
        sampler_->finish(measuredInstructions(), cycle_);
    if (tracer_)
        tracer_->finish();
}

void
System::run(std::uint64_t instrPerThread)
{
    const std::size_t n = cores_.size();
    std::vector<std::uint64_t> target(n);
    std::vector<bool> reached(n, false);
    for (std::size_t t = 0; t < n; ++t)
        target[t] = cores_[t]->retired() + instrPerThread;
    runStartCycle_ = cycle_;

    std::size_t remaining = n;
    while (remaining > 0) {
#ifdef TACSIM_VERIFY_ENABLED
        // Periodic hierarchy verification between scheduler iterations,
        // where all components are quiescent. Compiled out (and thus
        // genuinely free) unless -DTACSIM_VERIFY=ON.
        if (checker_)
            checker_->maybeCheck(eq_.executed());
#endif
        eq_.advanceTo(cycle_);

        bool allBlocked = true;
        for (std::size_t t = 0; t < n; ++t) {
            cores_[t]->tick();
            if (!cores_[t]->blocked())
                allBlocked = false;
            if (!reached[t] && cores_[t]->retired() >= target[t]) {
                reached[t] = true;
                finishCycle_[t] = cycle_;
                --remaining;
            }
        }
        if (sampler_)
            sampler_->maybeSample(measuredInstructions(), cycle_);
        if (remaining == 0)
            break;

        if (allBlocked) {
            if (eq_.empty())
                throw std::runtime_error(
                    "tacsim: deadlock — all cores blocked, no events");
            const Cycle next = eq_.nextEventCycle();
            if (next > cycle_ + 1) {
                const Cycle skip = next - (cycle_ + 1);
                for (auto &core : cores_)
                    core->chargeSkippedCycles(skip);
                cycle_ = next;
                continue;
            }
        }
        ++cycle_;
    }

    ranOnce_ = true;

#ifdef TACSIM_VERIFY_ENABLED
    // Drain point: the run target is met, no core mid-retire.
    if (checker_)
        checker_->onDrain();
#endif
}

void
System::quiesce()
{
    for (auto &c : cores_)
        c->beginDrain();
    while (true) {
        eq_.advanceTo(cycle_);
        bool robsEmpty = true;
        for (auto &c : cores_) {
            c->tick();
            if (!c->robEmpty())
                robsEmpty = false;
        }
        if (robsEmpty && eq_.empty())
            break;
        if (robsEmpty) {
            // Only background events remain (store writebacks, fills
            // with no waiter); jump straight to the next one.
            cycle_ = std::max(cycle_ + 1, eq_.nextEventCycle());
            continue;
        }
        ++cycle_;
    }
    for (auto &c : cores_)
        c->endDrain();

#ifdef TACSIM_VERIFY_ENABLED
    // The drain is a natural verification point: every structure is at
    // rest, so a full hierarchy walk is maximally meaningful.
    if (checker_)
        checker_->onDrain();
#endif
}

void
System::saveState(SerialWriter &w) const
{
    if (sampler_)
        throw std::runtime_error(
            "checkpoint: time-series sampler attached (unsupported)");
    if (tracer_)
        throw std::runtime_error(
            "checkpoint: Chrome tracer attached (unsupported)");
    TACSIM_CHECK(eq_.empty() && eq_.now() == cycle_ &&
                 "saveState requires a quiesced system (call quiesce())");

    w.beginSection("clock");
    w.putU64(cycle_);
    w.putU64(eq_.seq());
    w.putU64(eq_.executed());

    w.beginSection("memory");
    frames_.saveState(w);
    hostFrames_.saveState(w);
    for (const auto &pt : pageTables_)
        pt->saveState(w);
    w.putBool(hostPageTable_ != nullptr);
    if (hostPageTable_)
        hostPageTable_->saveState(w);
    dram_->saveState(w);

    w.beginSection("caches");
    for (const auto &s : llc_)
        s->saveState(w);
    for (const auto &c : l2_)
        c->saveState(w);
    for (const auto &c : l1d_)
        c->saveState(w);

    w.beginSection("translation");
    for (const auto &t : dtlb_)
        t->saveState(w);
    for (const auto &t : stlb_)
        t->saveState(w);
    for (const auto &p : ptw_)
        p->saveState(w);

    w.beginSection("cores");
    for (const auto &c : cores_)
        c->saveState(w);
    for (const auto &wl : workloads_)
        wl->saveState(w);
}

void
System::loadState(SerialReader &r)
{
    if (sampler_)
        throw std::runtime_error(
            "checkpoint: time-series sampler attached (unsupported)");
    if (tracer_)
        throw std::runtime_error(
            "checkpoint: Chrome tracer attached (unsupported)");
    TACSIM_CHECK(eq_.empty() &&
                 "loadState requires a freshly built system");

    r.expectSection("clock");
    cycle_ = r.getU64();
    const std::uint64_t seq = r.getU64();
    const std::uint64_t executed = r.getU64();
    eq_.restoreClock(cycle_, seq, executed);
    cycleBase_ = cycle_;
    runStartCycle_ = cycle_;

    r.expectSection("memory");
    frames_.loadState(r);
    hostFrames_.loadState(r);
    for (auto &pt : pageTables_)
        pt->loadState(r);
    const bool hasHost = r.getBool();
    if (hasHost != (hostPageTable_ != nullptr))
        throw std::runtime_error(
            "checkpoint: nested-translation mode mismatch");
    if (hostPageTable_)
        hostPageTable_->loadState(r);
    dram_->loadState(r);

    r.expectSection("caches");
    for (auto &s : llc_)
        s->loadState(r);
    for (auto &c : l2_)
        c->loadState(r);
    for (auto &c : l1d_)
        c->loadState(r);

    r.expectSection("translation");
    for (auto &t : dtlb_)
        t->loadState(r);
    for (auto &t : stlb_)
        t->loadState(r);
    for (auto &p : ptw_)
        p->loadState(r);

    r.expectSection("cores");
    for (auto &c : cores_)
        c->loadState(r);
    for (auto &wl : workloads_)
        wl->loadState(r);
}

CacheStats
System::llcStats() const
{
    CacheStats total;
    for (const auto &s : llc_)
        total.add(s->stats());
    return total;
}

void
System::warmup(std::uint64_t instr)
{
    run(instr);
    resetStats();
}

void
System::resetStats()
{
    cycleBase_ = cycle_;
    // Record where the reset fell before counters drop to zero.
    const std::uint64_t instr = measuredInstructions();
    // Every component installed a reset hook when it registered its
    // metrics, so one call covers the whole hierarchy — including state
    // the old per-component sweep missed (recall profilers, policy
    // bypass counters).
    registry_.resetAll();
    if (sampler_)
        sampler_->markReset(instr, cycle_);
}

std::uint64_t
System::measuredInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &c : cores_)
        total += c->retired();
    return total;
}

} // namespace tacsim
