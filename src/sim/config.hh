/**
 * @file
 * Full-system configuration. Defaults reproduce the paper's Table I
 * (Intel Sunny-Cove-like): 352-entry ROB 6-issue/4-retire core, 64-entry
 * DTLB + 2048-entry STLB, PSCL5/4/3/2 of 2/4/8/32 entries, 48KB L1D,
 * 512KB L2 (DRRIP), 2MB/core LLC (SHiP), one DDR5-6400 channel per four
 * cores.
 */

#ifndef TACSIM_SIM_CONFIG_HH
#define TACSIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/repl/policy.hh"
#include "core/core.hh"
#include "mem/dram.hh"
#include "prefetch/factory.hh"
#include "vm/ptw.hh"

namespace tacsim {

/**
 * Observability outputs (src/obs/). Empty paths disable each sink, and
 * a disabled sink costs nothing in the run loop. Paths may contain the
 * literal "{key}" — the sweep runner expands it with the point's sweep
 * key, the workload runner with the run label — so parallel points
 * never write to the same file.
 */
struct ObsConfig
{
    /** Retired instructions between time-series samples (0 = 10000). */
    std::uint64_t sampleInterval = 0;
    /** tacsim-timeseries-v1 JSONL output path. */
    std::string timeseriesPath;
    /** Chrome-trace (Perfetto-loadable) JSON output path. */
    std::string chromeTracePath;
    /** Run label recorded in the time-series header. */
    std::string label;
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint32_t sizeBytes;
    std::uint32_t ways;
    Cycle latency;
    std::uint32_t mshrs;

    std::uint32_t
    sets() const
    {
        return sizeBytes / (ways * static_cast<std::uint32_t>(kBlockSize));
    }
};

/**
 * Virtual-memory regime: huge-page coverage and nested (virtualized)
 * translation. Defaults reproduce the paper's bare-metal all-4K setup;
 * the fractions model THP-style promotion (the deterministic per-region
 * policy in vm/page_table.hh).
 */
struct VmConfig
{
    /** Fraction of 2M-aligned guest regions backed by 2M pages. */
    double hugePages2M = 0.0;
    /** Fraction of 1G-aligned guest regions backed by 1G pages. */
    double hugePages1G = 0.0;
    /** Nested 2D translation: guest tables hold guest-physical
     *  addresses, each resolved by a host walk (up to
     *  (gL+1)*hL + gL references per STLB miss). */
    bool nested = false;
    /** Host-dimension huge-page coverage (nested mode only). */
    double hostHugePages2M = 0.0;
    double hostHugePages1G = 0.0;

    bool
    anyHugePages() const
    {
        return hugePages2M > 0.0 || hugePages1G > 0.0;
    }
};

struct SystemConfig
{
    unsigned numCores = 1;
    unsigned threadsPerCore = 1; ///< 2 = SMT (shared hierarchy)

    CoreParams core; ///< per-thread ROB is core.robSize / threadsPerCore

    // TLBs (Table I).
    std::uint32_t dtlbEntries = 64, dtlbWays = 4;
    Cycle dtlbLatency = 1;
    std::uint32_t stlbEntries = 2048, stlbWays = 16;
    Cycle stlbLatency = 8;
    PageTableWalker::Params ptw;

    // Cache hierarchy (Table I).
    // MSHR depths are sized for a Sunny-Cove-class core (the L1D's also
    // carry page-walker traffic): shallow buffers would throttle the
    // memory-level parallelism a 352-entry ROB exposes.
    CacheGeometry l1d{48 * 1024, 12, 5, 32};
    CacheGeometry l2{512 * 1024, 8, 10, 64};
    CacheGeometry llcPerCore{2 * 1024 * 1024, 16, 20, 128};

    // Shared-LLC composition (sim/topology.hh writes these; the
    // defaults reproduce the fixed pre-topology machine exactly).
    /** Total LLC bytes; 0 derives llcPerCore.sizeBytes * numCores. */
    std::uint64_t llcTotalBytes = 0;
    /** Address-interleaved LLC slices (power of two; 1 = monolithic). */
    unsigned llcSlices = 1;
    /** Extra cycles per ring hop from a core to a remote slice. */
    Cycle llcSliceHopLatency = 0;
    /** Per-core cap on live MSHRs in each LLC slice; 0 disables. */
    std::uint32_t llcMshrQuotaPerCore = 0;
    /** Per-core LLC demand lookups per llcBwWindow cycles; 0 = off. */
    std::uint32_t llcBwTokensPerCore = 0;
    Cycle llcBwWindow = 64;

    PolicyKind l2Policy = PolicyKind::DRRIP;
    ReplOpts l2Opts;
    PolicyKind llcPolicy = PolicyKind::SHiP;
    ReplOpts llcOpts;
    bool llcDeadBlock = false; ///< CbPred-style wrapper (§V-B)
    bool llcCsalt = false;     ///< CSALT-style wrapper (§V-B)

    PrefetcherKind l1Prefetcher = PrefetcherKind::None;
    PrefetcherKind l2Prefetcher = PrefetcherKind::None;

    // The paper's mechanisms.
    bool atpL2 = false;
    bool atpLlc = false;
    bool tempo = false;

    // Fig. 2 ideal modes.
    bool idealL2Translations = false;
    bool idealL2Replays = false;
    bool idealLlcTranslations = false;
    bool idealLlcReplays = false;

    // Profiling (Figs. 5/7/18).
    bool profileCacheRecall = false;
    bool profileStlbRecall = false;

    DramParams dram;

    VmConfig vm;

    /**
     * Workload override. Empty (default) runs the benchmark passed to
     * the runner/sweep; otherwise a workload spec replaces it on every
     * thread: a Table-II benchmark name ("mcf") or "trace:<path>" to
     * replay a recorded `tacsim-trace-v1` file (see src/trace/ and
     * makeWorkloadFromSpec).
     */
    std::string workload;

    ObsConfig obs;

    std::uint64_t seed = 1;

    unsigned threads() const { return numCores * threadsPerCore; }
};

/**
 * The paper's proposal as one switch set: pass to
 * applyTranslationAware() to layer T-DRRIP / T-SHiP / ATP / TEMPO on a
 * baseline config. Partial combinations give the paper's incremental
 * bars (Fig. 14) and ablations (Figs. 10, 12).
 */
struct TranslationAwareOptions
{
    bool tDrrip = true;  ///< L2C: translations RRPV=0, replays RRPV=3
    bool tShip = true;   ///< LLC: new signatures + translations RRPV=0
    bool newSignaturesOnly = false; ///< Fig. 12 middle bar
    bool atp = true;     ///< translation-hit-triggered replay prefetch
    bool tempo = false;  ///< DRAM-controller replay prefetch
};

/** Layer the paper's enhancements onto @p cfg. */
void applyTranslationAware(SystemConfig &cfg,
                           const TranslationAwareOptions &opts = {});

/**
 * Canonical, behavior-complete text form of a SystemConfig: one
 * "key value" line per field that can change simulation results, in a
 * fixed order, with doubles printed round-trip-exactly. Two configs
 * produce the same text iff they simulate identically, which makes this
 * the config component of serve::pointKey (the content-addressed result
 * cache) and the compatibility stamp inside tacsim-ckpt-v1 checkpoints.
 * Observability sinks (ObsConfig) are deliberately excluded: they alter
 * outputs on disk, never simulated behavior.
 */
std::string canonicalConfigText(const SystemConfig &cfg);

} // namespace tacsim

#endif // TACSIM_SIM_CONFIG_HH
