/**
 * @file
 * One-call experiment runner: build a System for a benchmark (or mix),
 * warm up, measure, and collapse the component statistics into the
 * metrics the paper reports (IPC, per-class MPKIs, ROB-stall breakdown,
 * leaf-translation response distribution, prefetch accuracy).
 *
 * Instruction budgets default to values that keep every bench binary in
 * the tens of seconds; override with the TACSIM_INSTRUCTIONS and
 * TACSIM_WARMUP environment variables for higher-fidelity runs.
 */

#ifndef TACSIM_SIM_RUNNER_HH
#define TACSIM_SIM_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/system.hh"
#include "workloads/benchmarks.hh"

namespace tacsim {

/** Collapsed metrics of one simulation (single thread unless noted). */
struct RunResult
{
    std::string benchmark;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0;

    /** Discrete events executed by the engine over the system's whole
     *  lifetime (warm-up included) — the denominator-free throughput
     *  number tacsim-perf divides by wall time. */
    std::uint64_t events = 0;

    double stlbMpki = 0;

    // Per-class MPKIs (Table II metrics).
    double l2ReplayMpki = 0, l2NonReplayMpki = 0, l2Ptl1Mpki = 0;
    double llcReplayMpki = 0, llcNonReplayMpki = 0, llcPtl1Mpki = 0;

    // ROB-head stall cycles by cause (Figs. 1/16).
    std::uint64_t stallT = 0, stallR = 0, stallN = 0;
    double avgStallPerWalk = 0, avgStallPerReplay = 0,
           avgStallPerNonReplay = 0;
    std::uint64_t maxStallPerWalk = 0, maxStallPerReplay = 0;

    // Leaf-translation response distribution (Fig. 3), fractions.
    double leafL1D = 0, leafL2C = 0, leafLLC = 0, leafDram = 0;
    // Replay-load response distribution (Fig. 3), fractions.
    double replayL1D = 0, replayL2C = 0, replayLLC = 0, replayDram = 0;

    // On-chip hit rate for leaf translations (the paper's 99% claim).
    double leafOnChipHitRate = 0;

    // ATP/TEMPO activity.
    std::uint64_t atpIssued = 0, atpUseful = 0;
    std::uint64_t tempoIssued = 0;

    // Per-thread cycles for SMT/multicore speedups.
    std::vector<std::uint64_t> threadCycles;
    std::vector<std::uint64_t> threadInstructions;

    /** IPC of thread @p t in this run. */
    double
    threadIpc(std::size_t t) const
    {
        return threadCycles[t]
            ? double(threadInstructions[t]) / double(threadCycles[t])
            : 0.0;
    }
};

/** Default measured instructions per thread (env TACSIM_INSTRUCTIONS). */
std::uint64_t defaultInstructions();
/** Default warm-up instructions per thread (env TACSIM_WARMUP). */
std::uint64_t defaultWarmup();

/** Run one benchmark on @p cfg; warmup+measure with the given budgets
 *  (0 = defaults). A non-empty cfg.workload spec overrides @p b. */
RunResult runBenchmark(const SystemConfig &cfg, Benchmark b,
                       std::uint64_t instructions = 0,
                       std::uint64_t warmup = 0);

/** Run a multi-thread mix (one benchmark per thread). A non-empty
 *  cfg.workload spec overrides every mix entry. */
RunResult runMix(const SystemConfig &cfg,
                 const std::vector<Benchmark> &mix,
                 std::uint64_t instructionsPerThread = 0,
                 std::uint64_t warmup = 0);

/** Run one workload spec ("mcf" or "trace:<path>") on every thread. */
RunResult runSpec(const SystemConfig &cfg, const std::string &spec,
                  std::uint64_t instructions = 0,
                  std::uint64_t warmup = 0);

/** Run a multi-thread mix of workload specs (one per thread). */
RunResult runSpecMix(const SystemConfig &cfg,
                     const std::vector<std::string> &specs,
                     std::uint64_t instructionsPerThread = 0,
                     std::uint64_t warmup = 0);

/**
 * Like runSpecMix, but after the warm-up phase the system is quiesced
 * and its full state written to @p ckptPath as a tacsim-ckpt-v1 file
 * (sim/checkpoint.hh) before the measured run continues. The result is
 * byte-identical to a plain warm+quiesce+measure run: saving is
 * observation, not perturbation.
 */
RunResult runSpecMixCheckpointed(const SystemConfig &cfg,
                                 const std::vector<std::string> &specs,
                                 std::uint64_t instructionsPerThread,
                                 std::uint64_t warmup,
                                 const std::string &ckptPath);

/**
 * Resume from a checkpoint written by runSpecMixCheckpointed: build a
 * fresh System for (@p cfg, @p specs), restore @p ckptPath into it, and
 * run the measured phase only. With the same cfg/specs/instruction
 * budget, the RunResult matches the saving run's byte-for-byte.
 */
RunResult runSpecMixFromCheckpoint(const SystemConfig &cfg,
                                   const std::vector<std::string> &specs,
                                   std::uint64_t instructionsPerThread,
                                   const std::string &ckptPath);

/**
 * Run pre-built workloads (one per thread). This is the primitive the
 * spec/benchmark entry points delegate to; callers that need to wrap
 * workloads themselves (e.g. the trace CLI teeing a run through a
 * RecordingWorkload) use it directly. @p name labels the RunResult;
 * empty derives the usual "-"-joined workload names.
 */
RunResult runWorkloads(const SystemConfig &cfg,
                       std::vector<std::unique_ptr<Workload>> workloads,
                       const std::string &name = "",
                       std::uint64_t instructionsPerThread = 0,
                       std::uint64_t warmup = 0);

/** Extract a RunResult from an already-run system. */
RunResult collectResult(System &sys, const std::string &name);

/** speedup = baselineCycles / enhancedCycles. */
double speedup(const RunResult &baseline, const RunResult &enhanced);

/**
 * Harmonic speedup of a mix versus solo runs (paper Fig. 17):
 *   H = n / sum_t (IPC_solo_t / IPC_mix_t)
 */
double harmonicSpeedup(const std::vector<double> &soloIpc,
                       const RunResult &mix);

} // namespace tacsim

#endif // TACSIM_SIM_RUNNER_HH
