#include "sim/config.hh"

#include <cstdio>

namespace tacsim {

namespace {

void
emit(std::string &out, const char *key, std::uint64_t v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += key;
    out += ' ';
    out += buf;
    out += '\n';
}

void
emit(std::string &out, const char *key, double v)
{
    // %.17g round-trips every IEEE-754 double, so configs differing in
    // any representable fraction hash differently.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += key;
    out += ' ';
    out += buf;
    out += '\n';
}

void
emit(std::string &out, const char *key, const std::string &v)
{
    out += key;
    out += ' ';
    out += v;
    out += '\n';
}

void
emitOpts(std::string &out, const char *prefix, const ReplOpts &o)
{
    const std::string p(prefix);
    emit(out, (p + ".translation_rrpv0").c_str(),
         std::uint64_t{o.translationRrpv0});
    emit(out, (p + ".replay_evict_fast").c_str(),
         std::uint64_t{o.replayEvictFast});
    emit(out, (p + ".new_signatures").c_str(),
         std::uint64_t{o.newSignatures});
    emit(out, (p + ".replay_rrpv0").c_str(), std::uint64_t{o.replayRrpv0});
}

void
emitGeometry(std::string &out, const char *prefix, const CacheGeometry &g)
{
    const std::string p(prefix);
    emit(out, (p + ".size_bytes").c_str(), std::uint64_t{g.sizeBytes});
    emit(out, (p + ".ways").c_str(), std::uint64_t{g.ways});
    emit(out, (p + ".latency").c_str(), std::uint64_t{g.latency});
    emit(out, (p + ".mshrs").c_str(), std::uint64_t{g.mshrs});
}

} // namespace

void
applyTranslationAware(SystemConfig &cfg,
                      const TranslationAwareOptions &opts)
{
    if (opts.tDrrip) {
        cfg.l2Opts.translationRrpv0 = true;
        cfg.l2Opts.replayEvictFast = true;
    }
    if (opts.newSignaturesOnly) {
        cfg.llcOpts.newSignatures = true;
    }
    if (opts.tShip) {
        cfg.llcOpts.newSignatures = true;
        cfg.llcOpts.translationRrpv0 = true;
    }
    if (opts.atp) {
        cfg.atpL2 = true;
        cfg.atpLlc = true;
    }
    if (opts.tempo) {
        cfg.tempo = true;
        cfg.dram.tempo = true;
    }
}

std::string
canonicalConfigText(const SystemConfig &cfg)
{
    std::string out;
    out.reserve(2048);
    out += "tacsim-config-v1\n";

    emit(out, "num_cores", std::uint64_t{cfg.numCores});
    emit(out, "threads_per_core", std::uint64_t{cfg.threadsPerCore});

    emit(out, "core.rob_size", std::uint64_t{cfg.core.robSize});
    emit(out, "core.issue_width", std::uint64_t{cfg.core.issueWidth});
    emit(out, "core.retire_width", std::uint64_t{cfg.core.retireWidth});

    emit(out, "dtlb.entries", std::uint64_t{cfg.dtlbEntries});
    emit(out, "dtlb.ways", std::uint64_t{cfg.dtlbWays});
    emit(out, "dtlb.latency", std::uint64_t{cfg.dtlbLatency});
    emit(out, "stlb.entries", std::uint64_t{cfg.stlbEntries});
    emit(out, "stlb.ways", std::uint64_t{cfg.stlbWays});
    emit(out, "stlb.latency", std::uint64_t{cfg.stlbLatency});

    emit(out, "ptw.max_concurrent_walks",
         std::uint64_t{cfg.ptw.maxConcurrentWalks});
    for (std::size_t i = 0; i < cfg.ptw.pscSizes.size(); ++i)
        emit(out,
             ("ptw.pscl" + std::to_string(i + 2) + "_entries").c_str(),
             std::uint64_t{cfg.ptw.pscSizes[i]});
    emit(out, "ptw.psc_latency", std::uint64_t{cfg.ptw.pscLatency});

    emitGeometry(out, "l1d", cfg.l1d);
    emitGeometry(out, "l2", cfg.l2);
    emitGeometry(out, "llc_per_core", cfg.llcPerCore);

    emit(out, "llc.total_bytes", std::uint64_t{cfg.llcTotalBytes});
    emit(out, "llc.slices", std::uint64_t{cfg.llcSlices});
    emit(out, "llc.slice_hop_latency",
         std::uint64_t{cfg.llcSliceHopLatency});
    emit(out, "llc.mshr_quota_per_core",
         std::uint64_t{cfg.llcMshrQuotaPerCore});
    emit(out, "llc.bw_tokens_per_core",
         std::uint64_t{cfg.llcBwTokensPerCore});
    emit(out, "llc.bw_window", std::uint64_t{cfg.llcBwWindow});

    emit(out, "l2.policy", policyKindName(cfg.l2Policy));
    emitOpts(out, "l2.opts", cfg.l2Opts);
    emit(out, "llc.policy", policyKindName(cfg.llcPolicy));
    emitOpts(out, "llc.opts", cfg.llcOpts);
    emit(out, "llc.dead_block", std::uint64_t{cfg.llcDeadBlock});
    emit(out, "llc.csalt", std::uint64_t{cfg.llcCsalt});

    emit(out, "l1.prefetcher", prefetcherKindName(cfg.l1Prefetcher));
    emit(out, "l2.prefetcher", prefetcherKindName(cfg.l2Prefetcher));

    emit(out, "atp.l2", std::uint64_t{cfg.atpL2});
    emit(out, "atp.llc", std::uint64_t{cfg.atpLlc});
    emit(out, "tempo", std::uint64_t{cfg.tempo});

    emit(out, "ideal.l2_translations",
         std::uint64_t{cfg.idealL2Translations});
    emit(out, "ideal.l2_replays", std::uint64_t{cfg.idealL2Replays});
    emit(out, "ideal.llc_translations",
         std::uint64_t{cfg.idealLlcTranslations});
    emit(out, "ideal.llc_replays", std::uint64_t{cfg.idealLlcReplays});

    emit(out, "profile.cache_recall",
         std::uint64_t{cfg.profileCacheRecall});
    emit(out, "profile.stlb_recall", std::uint64_t{cfg.profileStlbRecall});

    emit(out, "dram.channels", std::uint64_t{cfg.dram.channels});
    emit(out, "dram.banks_per_channel",
         std::uint64_t{cfg.dram.banksPerChannel});
    emit(out, "dram.row_bytes", std::uint64_t{cfg.dram.rowBytes});
    emit(out, "dram.t_controller", std::uint64_t{cfg.dram.tController});
    emit(out, "dram.t_cas", std::uint64_t{cfg.dram.tCas});
    emit(out, "dram.t_rcd", std::uint64_t{cfg.dram.tRcd});
    emit(out, "dram.t_rp", std::uint64_t{cfg.dram.tRp});
    emit(out, "dram.t_burst", std::uint64_t{cfg.dram.tBurst});
    emit(out, "dram.tempo", std::uint64_t{cfg.dram.tempo});

    emit(out, "vm.huge_pages_2m", cfg.vm.hugePages2M);
    emit(out, "vm.huge_pages_1g", cfg.vm.hugePages1G);
    emit(out, "vm.nested", std::uint64_t{cfg.vm.nested});
    emit(out, "vm.host_huge_pages_2m", cfg.vm.hostHugePages2M);
    emit(out, "vm.host_huge_pages_1g", cfg.vm.hostHugePages1G);

    emit(out, "workload", cfg.workload);
    emit(out, "seed", cfg.seed);

    return out;
}

} // namespace tacsim
