#include "sim/config.hh"

namespace tacsim {

void
applyTranslationAware(SystemConfig &cfg,
                      const TranslationAwareOptions &opts)
{
    if (opts.tDrrip) {
        cfg.l2Opts.translationRrpv0 = true;
        cfg.l2Opts.replayEvictFast = true;
    }
    if (opts.newSignaturesOnly) {
        cfg.llcOpts.newSignatures = true;
    }
    if (opts.tShip) {
        cfg.llcOpts.newSignatures = true;
        cfg.llcOpts.translationRrpv0 = true;
    }
    if (opts.atp) {
        cfg.atpL2 = true;
        cfg.atpLlc = true;
    }
    if (opts.tempo) {
        cfg.tempo = true;
        cfg.dram.tempo = true;
    }
}

} // namespace tacsim
