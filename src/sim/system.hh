/**
 * @file
 * Full-system composition: cores (optionally SMT), per-core TLBs and
 * page-table walkers, private L1D/L2, shared LLC, DRAM, and the run loop
 * with cycle skipping.
 *
 * Threads are numbered 0..threads()-1; thread t runs on core
 * t / threadsPerCore and owns address space (ASID) t. SMT threads share
 * their core's DTLB, STLB, walker and L1D; all cores share the LLC and
 * DRAM. This mirrors the paper's single-core, 2-way SMT and 8-core
 * evaluations (§V).
 *
 * The machine shape is fully described by a TopologySpec
 * (sim/topology.hh): core/SMT counts, total LLC capacity, the LLC's
 * address-interleaved slicing (one Cache per slice behind a
 * SliceRouter), derived DRAM channels, and the per-core MSHR-quota /
 * bandwidth-token arbitration the shared slices apply. The defaults
 * reproduce the fixed pre-topology machine exactly: one monolithic
 * slice, no router, no arbitration.
 */

#ifndef TACSIM_SIM_SYSTEM_HH
#define TACSIM_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/event_queue.hh"
#include "core/core.hh"
#include "mem/dram.hh"
#include "obs/registry.hh"
#include "sim/config.hh"
#include "vm/page_table.hh"
#include "vm/ptw.hh"
#include "vm/tlb.hh"
#include "workloads/benchmarks.hh"

namespace tacsim {

namespace obs {
class ChromeTracer;
class Sampler;
} // namespace obs

namespace verify {
class Checker;
} // namespace verify

class SliceRouter;

class System
{
  public:
    /** @param workloads one per hardware thread (threads() of them). */
    System(SystemConfig cfg,
           std::vector<std::unique_ptr<Workload>> workloads);

    /** Flushes the sampler and Chrome tracer (if configured). */
    ~System();

    /**
     * Run until every thread has retired @p instrPerThread more
     * instructions. Threads that finish early keep running (standard
     * multi-programmed methodology); per-thread finish cycles are
     * recorded for weighted/harmonic speedups.
     */
    void run(std::uint64_t instrPerThread);

    /** Run @p instr instructions then zero all statistics (warm-up). */
    void warmup(std::uint64_t instr);

    /**
     * Drain to a quiesced boundary: suspend dispatch on every core,
     * keep ticking until all ROBs are empty and the event queue is dry
     * (outstanding misses, walks and background writes complete). This
     * is the only legal point to saveState() from — with nothing in
     * flight, the checkpoint needs no MSHR/walk/event serialization.
     * Deterministic: a straight-through run and a restored run execute
     * the same drain, so their stats remain byte-identical.
     */
    void quiesce();

    /**
     * Serialize the full mutable simulation state (tacsim-ckpt-v1
     * payload; sim/checkpoint.hh adds the file container). Requires a
     * quiesced system; throws when a component with unsupported state
     * is attached (sampler, tracer, prefetchers, recall profilers,
     * policies without save support).
     */
    void saveState(SerialWriter &w) const;

    /**
     * Restore state captured by saveState() into a freshly built System
     * of the *same configuration* (the checkpoint container verifies
     * the canonical config text before calling this). After restore,
     * resetStats() + run() reproduces the original continuation
     * byte-for-byte.
     */
    void loadState(SerialReader &r);

    /** Zero statistics on every component; sets the measurement base. */
    void resetStats();

    Cycle cycle() const { return cycle_; }
    /** Cycles elapsed since the last resetStats(). */
    Cycle measuredCycles() const { return cycle_ - cycleBase_; }
    /** Cycle at which thread @p t hit its target in the last run().
     *  Meaningless before the first run() completes. */
    Cycle
    finishCycle(std::size_t t) const
    {
        TACSIM_DCHECK(ranOnce_ &&
                      "finishCycle() before any run() completed");
        TACSIM_DCHECK(t < finishCycle_.size() &&
                      "finishCycle() thread index out of range");
        return finishCycle_[t];
    }
    /** Measured cycles for thread @p t in the last run().
     *  Meaningless before the first run() completes. */
    Cycle
    threadCycles(std::size_t t) const
    {
        TACSIM_DCHECK(ranOnce_ &&
                      "threadCycles() before any run() completed");
        TACSIM_DCHECK(t < finishCycle_.size() &&
                      "threadCycles() thread index out of range");
        return finishCycle_[t] - runStartCycle_;
    }

    std::size_t threads() const { return cores_.size(); }
    Core &core(std::size_t t) { return *cores_[t]; }
    const Core &core(std::size_t t) const { return *cores_[t]; }
    Workload &workload(std::size_t t) { return *workloads_[t]; }

    Cache &l1d(std::size_t coreIdx = 0) { return *l1d_[coreIdx]; }
    Cache &l2(std::size_t coreIdx = 0) { return *l2_[coreIdx]; }
    /** LLC slice @p slice (the whole LLC when unsliced). */
    Cache &llc(std::size_t slice = 0) { return *llc_[slice]; }
    std::size_t llcSlices() const { return llc_.size(); }
    /** Home slice of @p paddr under the address interleave. */
    Cache &
    llcSliceFor(Addr paddr)
    {
        return *llc_[static_cast<std::uint32_t>(paddr >> kBlockBits) &
                     llcSliceMask_];
    }
    /** Counters summed across every LLC slice. */
    CacheStats llcStats() const;
    /** Slice interconnect; null when the LLC is monolithic. */
    SliceRouter *llcRouter() { return llcRouter_.get(); }
    Dram &dram() { return *dram_; }
    Tlb &dtlb(std::size_t coreIdx = 0) { return *dtlb_[coreIdx]; }
    Tlb &stlb(std::size_t coreIdx = 0) { return *stlb_[coreIdx]; }
    PageTableWalker &ptw(std::size_t coreIdx = 0) { return *ptw_[coreIdx]; }
    PageTable &pageTable(std::size_t t) { return *pageTables_[t]; }
    /** Host (second-dimension) page table; null unless cfg.vm.nested. */
    PageTable *hostPageTable() { return hostPageTable_.get(); }
    EventQueue &eventQueue() { return eq_; }
    const SystemConfig &config() const { return cfg_; }

    /** Total instructions retired across threads since resetStats(). */
    std::uint64_t measuredInstructions() const;

    /** Every metric in the hierarchy, registered at construction. */
    const obs::Registry &metrics() const { return registry_; }
    /** Time-series sampler; null unless cfg.obs.timeseriesPath is set. */
    obs::Sampler *sampler() { return sampler_.get(); }
    /** Chrome tracer; null unless cfg.obs.chromeTracePath is set. */
    obs::ChromeTracer *tracer() { return tracer_.get(); }

    /**
     * Attach an invariant verifier. In TACSIM_VERIFY builds the run loop
     * calls it back at its configured event interval and at the end of
     * every run() (a drain point); other builds only keep the pointer so
     * tests can invoke Checker::checkAll() explicitly. Pass nullptr to
     * detach. The checker must outlive the system or be detached first.
     */
    void attachChecker(verify::Checker *checker) { checker_ = checker; }
    verify::Checker *checker() const { return checker_; }

  private:
    std::unique_ptr<ReplPolicy> buildLlcPolicy(std::uint32_t sets,
                                               std::uint32_t ways,
                                               std::uint64_t seed) const;

    SystemConfig cfg_;
    EventQueue eq_;
    Cycle cycle_ = 0;
    Cycle cycleBase_ = 0;
    Cycle runStartCycle_ = 0;

    FrameAllocator frames_;
    FrameAllocator hostFrames_; ///< host-physical pool (nested mode)
    std::vector<std::unique_ptr<Workload>> workloads_;
    std::vector<std::unique_ptr<PageTable>> pageTables_;
    std::unique_ptr<PageTable> hostPageTable_; ///< non-null when nested

    std::unique_ptr<Dram> dram_;
    std::vector<std::unique_ptr<Cache>> llc_; ///< one entry per slice
    std::unique_ptr<SliceRouter> llcRouter_;  ///< non-null when sliced
    std::uint32_t llcSliceMask_ = 0;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Tlb>> dtlb_;
    std::vector<std::unique_ptr<Tlb>> stlb_;
    std::vector<std::unique_ptr<PageTableWalker>> ptw_;
    std::vector<std::unique_ptr<Core>> cores_;

    std::vector<Cycle> finishCycle_;
    bool ranOnce_ = false; ///< finish cycles valid after first run()
    verify::Checker *checker_ = nullptr;

    obs::Registry registry_;
    std::unique_ptr<obs::Sampler> sampler_;
    std::unique_ptr<obs::ChromeTracer> tracer_;
};

} // namespace tacsim

#endif // TACSIM_SIM_SYSTEM_HH
