#include "sim/verify.hh"

#include <sstream>

#include "sim/system.hh"

namespace tacsim {
namespace verify {

InvariantViolation::InvariantViolation(std::string component,
                                       std::string invariant,
                                       std::string detail, std::int64_t set,
                                       std::int64_t way)
    : std::runtime_error(format(component, invariant, detail, set, way)),
      component_(std::move(component)),
      invariant_(std::move(invariant)),
      detail_(std::move(detail)),
      set_(set),
      way_(way)
{}

std::string
InvariantViolation::format(const std::string &component,
                           const std::string &invariant,
                           const std::string &detail, std::int64_t set,
                           std::int64_t way)
{
    std::ostringstream os;
    os << "InvariantViolation[" << component << "/" << invariant << "]";
    if (set >= 0)
        os << " set=" << set;
    if (way >= 0)
        os << " way=" << way;
    os << ": " << detail;
    return os.str();
}

Checker::Checker(System &sys, std::uint64_t eventInterval)
    : sys_(sys), interval_(eventInterval)
{}

void
Checker::maybeCheck(std::uint64_t eventsExecuted)
{
    if (interval_ == 0 || eventsExecuted - lastCheckedAt_ < interval_)
        return;
    lastCheckedAt_ = eventsExecuted;
    checkAll();
}

void
Checker::checkAll()
{
    ++checks_;
    checkEventQueue();
    for (unsigned c = 0; c < sys_.config().numCores; ++c) {
        sys_.l1d(c).checkInvariants();
        sys_.l2(c).checkInvariants();
        sys_.dtlb(c).checkInvariants();
        sys_.stlb(c).checkInvariants();
        sys_.ptw(c).checkInvariants();
        checkTlbAgainstPageTable(sys_.dtlb(c));
        checkTlbAgainstPageTable(sys_.stlb(c));
    }
    for (std::size_t s = 0; s < sys_.llcSlices(); ++s)
        sys_.llc(s).checkInvariants();
    sys_.dram().checkInvariants();
}

void
Checker::checkEventQueue() const
{
    const EventQueue &eq = sys_.eventQueue();
    if (eq.nextEventCycle() < eq.now()) {
        std::ostringstream os;
        os << "earliest pending event at cycle " << eq.nextEventCycle()
           << " is behind now=" << eq.now();
        throw InvariantViolation("EventQueue", "time-monotone", os.str());
    }
}

void
Checker::checkTlbAgainstPageTable(const Tlb &tlb) const
{
    tlb.forEachEntry([this, &tlb](std::uint16_t asid, Addr vpn, Addr pfn,
                                  PageSize ps) {
        if (asid >= sys_.threads()) {
            std::ostringstream os;
            os << "entry for asid " << asid << " but only "
               << sys_.threads() << " address spaces exist (vpn=0x"
               << std::hex << vpn << ")";
            throw InvariantViolation(tlb.name(), "asid-range", os.str());
        }
        const Addr vaddr = vpn << pageShift(ps);
        // Walking an already-mapped page is side-effect free; a VPN the
        // page table has never seen gets a fresh frame, which then
        // mismatches the cached PFN — also a violation, as intended.
        const PageTable::WalkResult g = sys_.pageTable(asid).walk(vaddr);
        Addr truth;
        PageSize truthSize = g.pageSize;
        if (PageTable *host = sys_.hostPageTable()) {
            // Nested mode: the cached translation is guest-VA to
            // host-PA at the granule both dimensions support.
            const PageTable::WalkResult h = host->walk(g.dataPaddr);
            truthSize = minPageSize(g.pageSize, h.pageSize);
            truth = pageAlign(h.dataPaddr, truthSize);
        } else {
            truth = pageAlign(g.dataPaddr, truthSize);
        }
        if (ps != truthSize) {
            std::ostringstream os;
            os << "asid " << asid << " vaddr 0x" << std::hex << vaddr
               << std::dec << " cached at " << pageSizeName(ps)
               << " but the mapping granule is "
               << pageSizeName(truthSize);
            throw InvariantViolation(tlb.name(), "tlb-pagesize", os.str());
        }
        if (pfn != truth) {
            std::ostringstream os;
            os << "asid " << asid << " vpn 0x" << std::hex << vpn
               << " cached pfn 0x" << pfn << " but page table maps 0x"
               << truth;
            throw InvariantViolation(tlb.name(), "tlb-pagetable", os.str());
        }
    });
}

} // namespace verify
} // namespace tacsim
