#include "sim/runner.hh"

#include <cstdlib>

#include "obs/path.hh"
#include "sim/checkpoint.hh"
#include "sim/verify.hh"

namespace tacsim {

namespace {

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    if (const char *v = std::getenv(name)) {
        const std::uint64_t parsed = std::strtoull(v, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

} // namespace

std::uint64_t
defaultInstructions()
{
    return envOr("TACSIM_INSTRUCTIONS", 400000);
}

std::uint64_t
defaultWarmup()
{
    return envOr("TACSIM_WARMUP", 100000);
}

RunResult
collectResult(System &sys, const std::string &name)
{
    RunResult r;
    r.benchmark = name;
    r.cycles = sys.measuredCycles();
    r.instructions = sys.measuredInstructions();
    r.events = sys.eventQueue().executed();
    r.ipc = r.cycles ? double(r.instructions) / double(r.cycles) : 0.0;

    const double kilo = double(r.instructions) / 1000.0;
    auto mpki = [kilo](std::uint64_t misses) {
        return kilo > 0 ? double(misses) / kilo : 0.0;
    };

    // TLB and stall stats aggregate across cores/threads.
    std::uint64_t stlbMisses = 0;
    std::uint64_t walkHistCount = 0;
    double walkStallSum = 0, replayStallSum = 0, nonReplayStallSum = 0;
    std::uint64_t nonReplayCount = 0;
    const std::size_t nCores =
        sys.config().numCores; // private structures per core
    // STLB MPKI counts *walks*: concurrent misses on a page whose walk
    // is already in flight merge in the PTW and are one miss
    // architecturally.
    for (std::size_t c = 0; c < nCores; ++c)
        stlbMisses += sys.ptw(c).stats().walks;

    for (std::size_t t = 0; t < sys.threads(); ++t) {
        const CoreStats &cs = sys.core(t).stats();
        r.stallT += cs.stallCyclesT;
        r.stallR += cs.stallCyclesR;
        r.stallN += cs.stallCyclesN;
        walkHistCount += cs.stallPerWalk.count();
        walkStallSum += cs.stallPerWalk.mean() * cs.stallPerWalk.count();
        replayStallSum +=
            cs.stallPerReplay.mean() * cs.stallPerReplay.count();
        nonReplayCount += cs.stallPerNonReplay.count();
        nonReplayStallSum +=
            cs.stallPerNonReplay.mean() * cs.stallPerNonReplay.count();
        r.maxStallPerWalk =
            std::max(r.maxStallPerWalk, cs.stallPerWalk.max());
        r.maxStallPerReplay =
            std::max(r.maxStallPerReplay, cs.stallPerReplay.max());
        r.threadCycles.push_back(sys.threadCycles(t));
        r.threadInstructions.push_back(cs.retired);
    }
    r.stlbMpki = mpki(stlbMisses);
    if (walkHistCount) {
        r.avgStallPerWalk = walkStallSum / double(walkHistCount);
        r.avgStallPerReplay = replayStallSum / double(walkHistCount);
    }
    if (nonReplayCount)
        r.avgStallPerNonReplay = nonReplayStallSum / double(nonReplayCount);

    // Cache MPKIs (sum private L2s).
    std::uint64_t l2Replay = 0, l2NonReplay = 0, l2Ptl1 = 0;
    for (std::size_t c = 0; c < nCores; ++c) {
        const CacheStats &s = sys.l2(c).stats();
        l2Replay += s.at(s.misses, BlockCat::Replay);
        l2NonReplay += s.at(s.misses, BlockCat::NonReplay);
        l2Ptl1 += s.at(s.misses, BlockCat::PtLeaf);
    }
    r.l2ReplayMpki = mpki(l2Replay);
    r.l2NonReplayMpki = mpki(l2NonReplay);
    r.l2Ptl1Mpki = mpki(l2Ptl1);

    const CacheStats ls = sys.llcStats(); // summed across slices
    r.llcReplayMpki = mpki(ls.at(ls.misses, BlockCat::Replay));
    r.llcNonReplayMpki = mpki(ls.at(ls.misses, BlockCat::NonReplay));
    r.llcPtl1Mpki = mpki(ls.at(ls.misses, BlockCat::PtLeaf));

    // Leaf-translation / replay response distributions.
    std::uint64_t leafL1 = 0, leafL2 = 0, leafLlc = 0, leafDram = 0,
                  leafIdeal = 0;
    for (std::size_t c = 0; c < nCores; ++c) {
        const PtwStats &ps = sys.ptw(c).stats();
        leafL1 += ps.leafFromL1D;
        leafL2 += ps.leafFromL2C;
        leafLlc += ps.leafFromLLC;
        leafDram += ps.leafFromDram;
        leafIdeal += ps.leafFromIdeal;
    }
    const double leafTotal =
        double(leafL1 + leafL2 + leafLlc + leafDram + leafIdeal);
    if (leafTotal > 0) {
        r.leafL1D = leafL1 / leafTotal;
        r.leafL2C = leafL2 / leafTotal;
        r.leafLLC = leafLlc / leafTotal;
        r.leafDram = leafDram / leafTotal;
        r.leafOnChipHitRate = 1.0 - r.leafDram;
    }

    // Replay response distribution from L1D/L2/LLC hit/miss accounting.
    std::uint64_t rAcc = 0, rL1Hit = 0, rL2Hit = 0, rLlcHit = 0;
    for (std::size_t c = 0; c < nCores; ++c) {
        const CacheStats &a = sys.l1d(c).stats();
        const CacheStats &b = sys.l2(c).stats();
        rAcc += a.at(a.accesses, BlockCat::Replay);
        rL1Hit += a.at(a.hits, BlockCat::Replay);
        rL2Hit += b.at(b.hits, BlockCat::Replay);
    }
    rLlcHit = ls.at(ls.hits, BlockCat::Replay);
    if (rAcc > 0) {
        r.replayL1D = double(rL1Hit) / double(rAcc);
        r.replayL2C = double(rL2Hit) / double(rAcc);
        r.replayLLC = double(rLlcHit) / double(rAcc);
        r.replayDram =
            std::max(0.0, 1.0 - r.replayL1D - r.replayL2C - r.replayLLC);
    }

    for (std::size_t c = 0; c < nCores; ++c) {
        r.atpIssued += sys.l2(c).stats().atpIssued;
    }
    r.atpIssued += ls.atpIssued;
    r.atpUseful = ls.atpUseful;
    for (std::size_t c = 0; c < nCores; ++c)
        r.atpUseful += sys.l2(c).stats().atpUseful;
    r.tempoIssued = sys.dram().stats().tempoPrefetches;

    return r;
}

RunResult
runBenchmark(const SystemConfig &cfg, Benchmark b,
             std::uint64_t instructions, std::uint64_t warmup)
{
    std::vector<Benchmark> mix(cfg.threads(), b);
    return runMix(cfg, mix, instructions, warmup);
}

RunResult
runMix(const SystemConfig &cfg, const std::vector<Benchmark> &mix,
       std::uint64_t instructionsPerThread, std::uint64_t warmup)
{
    // The config's workload spec, when set, overrides the benchmark
    // selection on every thread (e.g. "trace:<path>" replays a recorded
    // trace through an otherwise unchanged experiment).
    std::vector<std::string> specs;
    specs.reserve(mix.size());
    for (Benchmark b : mix)
        specs.push_back(cfg.workload.empty() ? benchmarkName(b)
                                             : cfg.workload);
    return runSpecMix(cfg, specs, instructionsPerThread, warmup);
}

RunResult
runSpec(const SystemConfig &cfg, const std::string &spec,
        std::uint64_t instructions, std::uint64_t warmup)
{
    std::vector<std::string> specs(cfg.threads(), spec);
    return runSpecMix(cfg, specs, instructions, warmup);
}

RunResult
runSpecMix(const SystemConfig &cfg, const std::vector<std::string> &specs,
           std::uint64_t instructionsPerThread, std::uint64_t warmup)
{
    std::vector<std::unique_ptr<Workload>> wls;
    wls.reserve(specs.size());
    for (std::size_t t = 0; t < specs.size(); ++t)
        wls.push_back(makeWorkloadFromSpec(specs[t], cfg.seed + t));
    return runWorkloads(cfg, std::move(wls), "", instructionsPerThread,
                        warmup);
}

namespace {

struct BuiltSystem
{
    std::unique_ptr<System> sys;
    std::string label;
};

/** Build a System for a spec mix exactly the way runSpecMix would,
 *  including obs-path expansion, so checkpoint save/restore runs see
 *  the same machine as a straight-through run. */
BuiltSystem
buildSpecMixSystem(const SystemConfig &cfg,
                   const std::vector<std::string> &specs)
{
    std::vector<std::unique_ptr<Workload>> wls;
    wls.reserve(specs.size());
    for (std::size_t t = 0; t < specs.size(); ++t)
        wls.push_back(makeWorkloadFromSpec(specs[t], cfg.seed + t));

    std::string label;
    for (std::size_t t = 0; t < wls.size(); ++t) {
        if (t)
            label += "-";
        label += wls[t]->name();
    }

    SystemConfig runCfg = cfg;
    runCfg.obs.timeseriesPath =
        obs::expandPointPath(runCfg.obs.timeseriesPath, label);
    runCfg.obs.chromeTracePath =
        obs::expandPointPath(runCfg.obs.chromeTracePath, label);
    if (runCfg.obs.label.empty())
        runCfg.obs.label = label;

    return {std::make_unique<System>(runCfg, std::move(wls)), label};
}

} // namespace

RunResult
runSpecMixCheckpointed(const SystemConfig &cfg,
                       const std::vector<std::string> &specs,
                       std::uint64_t instructionsPerThread,
                       std::uint64_t warmup, const std::string &ckptPath)
{
    if (instructionsPerThread == 0)
        instructionsPerThread = defaultInstructions();
    if (warmup == 0)
        warmup = defaultWarmup();

    BuiltSystem built = buildSpecMixSystem(cfg, specs);
    System &sys = *built.sys;
#ifdef TACSIM_VERIFY_ENABLED
    verify::Checker checker(sys);
    sys.attachChecker(&checker);
#endif
    sys.run(warmup);
    // saveCheckpoint quiesces first; the measured run then continues
    // from the same drained boundary a restored run starts at.
    saveCheckpoint(ckptPath, sys);
    sys.resetStats();
    sys.run(instructionsPerThread);
    return collectResult(sys, built.label);
}

RunResult
runSpecMixFromCheckpoint(const SystemConfig &cfg,
                         const std::vector<std::string> &specs,
                         std::uint64_t instructionsPerThread,
                         const std::string &ckptPath)
{
    if (instructionsPerThread == 0)
        instructionsPerThread = defaultInstructions();

    BuiltSystem built = buildSpecMixSystem(cfg, specs);
    System &sys = *built.sys;
#ifdef TACSIM_VERIFY_ENABLED
    verify::Checker checker(sys);
    sys.attachChecker(&checker);
#endif
    loadCheckpoint(ckptPath, sys);
    sys.resetStats();
    sys.run(instructionsPerThread);
    return collectResult(sys, built.label);
}

RunResult
runWorkloads(const SystemConfig &cfg,
             std::vector<std::unique_ptr<Workload>> workloads,
             const std::string &name, std::uint64_t instructionsPerThread,
             std::uint64_t warmup)
{
    if (instructionsPerThread == 0)
        instructionsPerThread = defaultInstructions();
    if (warmup == 0)
        warmup = defaultWarmup();

    std::string label = name;
    if (label.empty()) {
        for (std::size_t t = 0; t < workloads.size(); ++t) {
            if (t)
                label += "-";
            label += workloads[t]->name();
        }
    }

    // Expand any "{key}" still present in the obs output paths with the
    // run label (the sweep runner substitutes its more specific sweep
    // key before this point; a plain runner call lands here directly).
    SystemConfig runCfg = cfg;
    runCfg.obs.timeseriesPath =
        obs::expandPointPath(runCfg.obs.timeseriesPath, label);
    runCfg.obs.chromeTracePath =
        obs::expandPointPath(runCfg.obs.chromeTracePath, label);
    if (runCfg.obs.label.empty())
        runCfg.obs.label = label;

    System sys(runCfg, std::move(workloads));
#ifdef TACSIM_VERIFY_ENABLED
    // Verify builds check the whole hierarchy periodically on every
    // run, not just in tests that attach a checker by hand; walking a
    // mapped page table is side-effect free, so results are unchanged.
    verify::Checker checker(sys);
    sys.attachChecker(&checker);
#endif
    sys.warmup(warmup);
    sys.run(instructionsPerThread);
    return collectResult(sys, label);
}

double
speedup(const RunResult &baseline, const RunResult &enhanced)
{
    // Same instruction budget: compare per-instruction execution time.
    const double base = double(baseline.cycles) /
        double(std::max<std::uint64_t>(1, baseline.instructions));
    const double enh = double(enhanced.cycles) /
        double(std::max<std::uint64_t>(1, enhanced.instructions));
    return enh > 0 ? base / enh : 0.0;
}

double
harmonicSpeedup(const std::vector<double> &soloIpc, const RunResult &mix)
{
    double denom = 0;
    for (std::size_t t = 0; t < soloIpc.size(); ++t) {
        const double mixIpc = mix.threadIpc(t);
        if (mixIpc <= 0)
            return 0.0;
        denom += soloIpc[t] / mixIpc;
    }
    return denom > 0 ? double(soloIpc.size()) / denom : 0.0;
}

} // namespace tacsim
