/**
 * @file
 * Declarative system topology: one compact spec string describes how
 * many cores/SMT threads to build, the shared-LLC geometry and its
 * slicing, DRAM channel count, and the per-core arbitration knobs at
 * the LLC. System composition consumes the resolved spec instead of
 * hand-wired constructor paths, so a 64-core mix is one string away:
 *
 *     cores=32,smt=2,llc=16MB/32w,slices=8,chan=4
 *
 * Grammar (comma-separated `key=value`, no spaces, every key at most
 * once):
 *
 *     cores=<n>          hardware cores, 1..1024
 *     smt=<n>            threads per core, 1..8
 *     llc=<size>/<w>w    total LLC capacity and associativity
 *                        (e.g. 16MB/32w; size accepts KB/MB/GB or
 *                        plain bytes; "auto" = 2MB x cores)
 *     slices=<n>         LLC slice count (power of two, <= sets)
 *     slice_lat=<c>      extra cycles per ring hop to a remote slice
 *     chan=<n>           DRAM channels (0/omitted = 1 per 4 cores)
 *     mshr_quota=<n>     max in-flight LLC MSHRs per core (0 = off)
 *     bw=<t>[/<w>c]      LLC demand-lookup tokens per core per window
 *                        of <w> cycles (default window 64; 0 = off)
 *
 * parse/dump round-trip: dumpTopologySpec() emits the canonical form
 * (defaults omitted, fixed key order), and parsing that string yields
 * an identical spec. Malformed specs throw std::invalid_argument with
 * a stable "topology: ..." message.
 */

#ifndef TACSIM_SIM_TOPOLOGY_HH
#define TACSIM_SIM_TOPOLOGY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "sim/config.hh"

namespace tacsim {

/** Declarative shape of the simulated machine (see file comment). */
struct TopologySpec
{
    unsigned cores = 1;
    unsigned smt = 1; ///< hardware threads per core

    /** Total LLC bytes; 0 derives the paper's 2MB-per-core sizing. */
    std::uint64_t llcBytes = 0;
    std::uint32_t llcWays = 16;

    unsigned slices = 1;        ///< address-interleaved LLC slices
    Cycle sliceHopLatency = 0;  ///< per-ring-hop cycles to a remote slice

    /** DRAM channels; 0 derives one channel per four cores (Table I). */
    unsigned channels = 0;

    /** Per-core cap on live LLC MSHRs (per slice); 0 disables. */
    std::uint32_t mshrQuota = 0;
    /** Per-core LLC demand lookups per bwWindow (per slice); 0 = off. */
    std::uint32_t bwTokens = 0;
    Cycle bwWindow = 64;

    unsigned threads() const { return cores * smt; }

    bool
    operator==(const TopologySpec &o) const
    {
        return cores == o.cores && smt == o.smt &&
            llcBytes == o.llcBytes && llcWays == o.llcWays &&
            slices == o.slices && sliceHopLatency == o.sliceHopLatency &&
            channels == o.channels && mshrQuota == o.mshrQuota &&
            bwTokens == o.bwTokens && bwWindow == o.bwWindow;
    }
    bool operator!=(const TopologySpec &o) const { return !(*this == o); }
};

/** LLC capacity the spec resolves to; @p perCoreBytes fills the "auto"
 *  (llcBytes == 0) case. */
std::uint64_t resolvedLlcBytes(const TopologySpec &spec,
                               std::uint64_t perCoreBytes);

/** Total LLC sets the spec resolves to (before slicing). */
std::uint64_t resolvedLlcSets(const TopologySpec &spec,
                              std::uint64_t perCoreBytes);

/**
 * Validate @p spec; throws std::invalid_argument with a stable
 * "topology: ..." message on the first violated constraint. The LLC
 * set-count constraints (power-of-two sets, slices <= sets) need a
 * concrete capacity, so the auto size is resolved against
 * @p perCoreBytes.
 */
void validateTopology(const TopologySpec &spec,
                      std::uint64_t perCoreBytes = 2u << 20);

/** Parse and validate a spec string (grammar in the file comment). */
TopologySpec parseTopologySpec(const std::string &text);

/** Canonical string form: defaults omitted, fixed key order; parsing
 *  the result reproduces @p spec exactly. */
std::string dumpTopologySpec(const TopologySpec &spec);

/** The topology a SystemConfig describes (the inverse of
 *  applyTopology; composition-unrelated fields are ignored). */
TopologySpec topologyOf(const SystemConfig &cfg);

/** Overwrite @p cfg's composition fields from @p spec (validating it
 *  against the config's per-core LLC sizing first). */
void applyTopology(const TopologySpec &spec, SystemConfig &cfg);

/** Convenience: @p base with the parsed @p text applied. */
SystemConfig configFromTopology(const std::string &text,
                                SystemConfig base = {});

} // namespace tacsim

#endif // TACSIM_SIM_TOPOLOGY_HH
