/**
 * @file
 * Parallel sweep runner: a registered job list of named simulation
 * points executed across a std::thread pool, with a mutex-guarded
 * result map, deterministic (registration-order) reporting independent
 * of completion order, and per-job exception capture so one diverging
 * configuration reports an error instead of killing the whole sweep.
 *
 * Every simulation point is an independent, deterministic System, so
 * running them concurrently is safe and produces results identical to a
 * serial run. The pool size comes from TACSIM_JOBS (default:
 * hardware_concurrency).
 *
 * The runner doubles as the structured-results layer: writeJson() (or
 * writeJsonFromEnv(), keyed on TACSIM_JSON_OUT) emits a machine-readable
 * report with the series/label/measured/paper rows of the bench harness
 * plus per-run metadata (config key, benchmark, instruction budgets,
 * seed, wall time, errors).
 */

#ifndef TACSIM_SIM_SWEEP_HH
#define TACSIM_SIM_SWEEP_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/runner.hh"

namespace tacsim {

/** One row of a paper-vs-measured report. */
struct ReportRow
{
    std::string series;  ///< e.g. "T-SHiP"
    std::string label;   ///< e.g. benchmark name
    double measured = 0;
    double paper = std::nan(""); ///< NaN when the paper gives no number
    std::string unit;
};

/** Outcome of one sweep point (success or captured failure). */
struct SweepOutcome
{
    std::string key;
    /** Canonical content hash of the simulation point
     *  (serve::pointKey — config + workload content + budgets).
     *  Empty for custom jobs, whose behavior the runner cannot see. */
    std::string pointKey;
    bool ok = false;
    bool cached = false; ///< result came from an attached SweepCache
    RunResult result;   ///< valid only when ok
    std::string error;  ///< exception text when !ok
    double wallMs = 0;  ///< wall time of this point's simulation

    /** Process peak RSS (KiB) sampled when the point finished. The
     *  reading is a process-wide high-water mark, so it bounds (rather
     *  than isolates) the point's own footprint. */
    std::uint64_t peakRssKb = 0;

    // Job metadata echoed for the JSON report.
    std::string benchmark;
    /** Canonical topology spec of the point's config ("" for custom
     *  jobs; see sim/topology.hh). */
    std::string topology;
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed = 0;
};

/**
 * Persistent result store the runner can consult before simulating a
 * point. Keys are canonical content hashes (serve::pointKey), so a
 * cache populated by any process — a previous run, the serve daemon, a
 * different machine — is valid here. Implementations must be
 * thread-safe: the pool calls lookup()/store() concurrently. The
 * canonical implementation is serve::ResultCache's adapter
 * (serve/result_cache.hh).
 */
class SweepCache
{
  public:
    virtual ~SweepCache() = default;

    /** Fill @p out and return true when @p pointKey is cached. A miss
     *  (including a corrupt or unreadable entry) returns false. */
    virtual bool lookup(const std::string &pointKey, RunResult &out) = 0;

    /** Record a freshly computed result. @p statsDump is the canonical
     *  dump (dumpRunResult) so the store can serve it byte-identically
     *  later. */
    virtual void store(const std::string &pointKey,
                       const RunResult &result,
                       const std::string &statsDump) = 0;
};

/**
 * Two-phase sweep executor: add() points, run() them across the pool,
 * then read result()/outcome() in any order. Registration is memoized
 * on the *canonical point hash* (serve::pointKey), not the name: the
 * same simulation point added under two names runs once (the second
 * name aliases the first), and re-registering a name for a different
 * point throws instead of silently returning the first registration's
 * result. result() of a registered-but-unrun key executes it on
 * demand, so lazy serial callers keep working.
 */
class SweepRunner
{
  public:
    /** @p jobs 0 selects defaultJobs() (TACSIM_JOBS / hw concurrency). */
    explicit SweepRunner(unsigned jobs = 0);

    /** Register one benchmark point (0 budgets = runner defaults). */
    std::size_t add(const std::string &key, const SystemConfig &cfg,
                    Benchmark b, std::uint64_t instructions = 0,
                    std::uint64_t warmup = 0);

    /** Register a multi-thread mix point (one benchmark per thread). */
    std::size_t addMix(const std::string &key, const SystemConfig &cfg,
                       std::vector<Benchmark> mix,
                       std::uint64_t instructions = 0,
                       std::uint64_t warmup = 0);

    /** Register a workload-spec point ("mcf" or "trace:<path>"), run on
     *  every thread of @p cfg. The JSON benchmark label comes from the
     *  workload's own name once the point has run. */
    std::size_t addSpec(const std::string &key, const SystemConfig &cfg,
                        const std::string &spec,
                        std::uint64_t instructions = 0,
                        std::uint64_t warmup = 0);

    /** Register an arbitrary job (custom sweeps, tests). */
    std::size_t addCustom(const std::string &key,
                          std::function<RunResult()> fn);

    /** Execute every registered-but-unrun point across the pool. */
    void run();

    /**
     * Result for @p key; executes the point serially if it has not run
     * yet. Throws std::runtime_error for unknown keys and for points
     * whose job failed (re-raising the captured error).
     */
    const RunResult &result(const std::string &key);

    /** Outcome (including captured failures); nullptr if unknown or not
     *  yet run. */
    const SweepOutcome *outcome(const std::string &key) const;

    /** All completed outcomes, in registration order. */
    std::vector<const SweepOutcome *> outcomes() const;

    std::size_t points() const { return jobs_.size(); }
    unsigned threadCount() const { return threads_; }

    /** TACSIM_JOBS env var if set (>0), else hardware_concurrency. */
    static unsigned defaultJobs();

    /**
     * Attach a persistent result store consulted before each point
     * simulates (and fed after). Pass nullptr to detach. The cache must
     * outlive the runner or be detached first; custom jobs (no point
     * hash) always simulate.
     */
    void attachCache(SweepCache *cache) { cache_ = cache; }
    SweepCache *cache() const { return cache_; }

    /** Write the JSON report to @p path; false on I/O failure. */
    bool writeJson(const std::string &path, const std::string &title,
                   const std::vector<ReportRow> &rows) const;

    /** writeJson() to $TACSIM_JSON_OUT; false when unset or on I/O
     *  failure. */
    bool writeJsonFromEnv(const std::string &title,
                          const std::vector<ReportRow> &rows) const;

  private:
    struct Job
    {
        std::string key;
        std::string pointKey;  ///< canonical hash ("" for custom)
        std::function<RunResult()> fn;
        std::string benchmark; ///< "-"-joined mix name ("" for custom)
        std::string topology;  ///< canonical spec ("" for custom)
        std::uint64_t instructions = 0, warmup = 0, seed = 0;
        bool done = false;
    };

    std::size_t addJob(Job job);
    void execute(Job &job);
    /** Job index for @p key (aliases resolve to their primary job);
     *  throws std::runtime_error for unknown keys. */
    std::size_t jobIndex(const std::string &key) const;

    unsigned threads_;
    std::vector<Job> jobs_;
    /** Registration name -> job index; aliases share an index. */
    std::unordered_map<std::string, std::size_t> index_;
    /** Canonical point hash -> job index (the real memo). */
    std::unordered_map<std::string, std::size_t> hashIndex_;
    SweepCache *cache_ = nullptr;
    mutable std::mutex mutex_; ///< guards results_ and Job::done
    std::unordered_map<std::string, SweepOutcome> results_;
};

/** Process-wide runner shared by the bench harness. */
SweepRunner &globalSweep();

} // namespace tacsim

#endif // TACSIM_SIM_SWEEP_HH
