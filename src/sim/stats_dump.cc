#include "sim/stats_dump.hh"

#include <cstdio>
#include <map>
#include <sstream>

namespace tacsim {

namespace {

void
emit(std::string &out, const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s %llu\n", key,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
emit(std::string &out, const char *key, double v)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s %.12g\n", key, v);
    out += buf;
}

void
emit(std::string &out, const char *key, const std::string &v)
{
    out += key;
    out += ' ';
    out += v;
    out += '\n';
}

} // namespace

std::string
dumpRunResult(const RunResult &r)
{
    std::string out;
    out.reserve(1024);
    emit(out, "benchmark", r.benchmark);
    emit(out, "instructions", r.instructions);
    emit(out, "cycles", r.cycles);
    emit(out, "events", r.events);
    emit(out, "ipc", r.ipc);
    emit(out, "stlb_mpki", r.stlbMpki);
    emit(out, "l2_replay_mpki", r.l2ReplayMpki);
    emit(out, "l2_nonreplay_mpki", r.l2NonReplayMpki);
    emit(out, "l2_ptl1_mpki", r.l2Ptl1Mpki);
    emit(out, "llc_replay_mpki", r.llcReplayMpki);
    emit(out, "llc_nonreplay_mpki", r.llcNonReplayMpki);
    emit(out, "llc_ptl1_mpki", r.llcPtl1Mpki);
    emit(out, "stall_t", r.stallT);
    emit(out, "stall_r", r.stallR);
    emit(out, "stall_n", r.stallN);
    emit(out, "avg_stall_per_walk", r.avgStallPerWalk);
    emit(out, "avg_stall_per_replay", r.avgStallPerReplay);
    emit(out, "avg_stall_per_nonreplay", r.avgStallPerNonReplay);
    emit(out, "max_stall_per_walk", r.maxStallPerWalk);
    emit(out, "max_stall_per_replay", r.maxStallPerReplay);
    emit(out, "leaf_l1d", r.leafL1D);
    emit(out, "leaf_l2c", r.leafL2C);
    emit(out, "leaf_llc", r.leafLLC);
    emit(out, "leaf_dram", r.leafDram);
    emit(out, "leaf_onchip_hit_rate", r.leafOnChipHitRate);
    emit(out, "replay_l1d", r.replayL1D);
    emit(out, "replay_l2c", r.replayL2C);
    emit(out, "replay_llc", r.replayLLC);
    emit(out, "replay_dram", r.replayDram);
    emit(out, "atp_issued", r.atpIssued);
    emit(out, "atp_useful", r.atpUseful);
    emit(out, "tempo_issued", r.tempoIssued);
    for (std::size_t t = 0; t < r.threadCycles.size(); ++t) {
        const std::string key = "thread" + std::to_string(t);
        emit(out, (key + "_cycles").c_str(), r.threadCycles[t]);
        emit(out, (key + "_instructions").c_str(),
             r.threadInstructions[t]);
    }
    return out;
}

namespace {

std::map<std::string, std::string>
parseDump(const std::string &text)
{
    std::map<std::string, std::string> fields;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const std::size_t sp = line.find(' ');
        if (sp == std::string::npos)
            fields[line] = "";
        else
            fields[line.substr(0, sp)] = line.substr(sp + 1);
    }
    return fields;
}

} // namespace

std::string
dumpFullStats(const System &sys)
{
    return sys.metrics().dumpText();
}

std::vector<std::string>
diffDumps(const std::string &expected, const std::string &actual)
{
    const auto exp = parseDump(expected);
    const auto act = parseDump(actual);
    std::vector<std::string> diffs;
    for (const auto &[key, value] : exp) {
        auto it = act.find(key);
        if (it == act.end())
            diffs.push_back(key + ": expected " + value +
                            ", missing in actual");
        else if (it->second != value)
            diffs.push_back(key + ": expected " + value + ", got " +
                            it->second);
    }
    for (const auto &[key, value] : act) {
        if (!exp.count(key))
            diffs.push_back(key + ": unexpected field (value " + value +
                            ")");
    }
    return diffs;
}

} // namespace tacsim
