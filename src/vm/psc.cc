#include "vm/psc.hh"

#include <sstream>

#include "sim/verify.hh"

namespace tacsim {

PagingStructureCaches::PagingStructureCaches(
    std::array<std::uint32_t, 4> sizes, Cycle latency)
    : latency_(latency)
{
    for (unsigned i = 0; i < 4; ++i)
        caches_[i].resize(sizes[i]);
}

unsigned
PagingStructureCaches::lookup(std::uint16_t asid, Addr vaddr,
                              Addr &nextTableFrame)
{
    ++stats_.lookups;
    // Deepest level first: PSCL2 hit means only the leaf remains.
    for (unsigned level = 2; level <= kPtLevels; ++level) {
        auto &cache = caches_[level - 2];
        const std::uint64_t tag = tagOf(asid, vaddr, level);
        for (auto &e : cache) {
            if (e.valid && e.tag == tag) {
                e.lru = clock_++;
                nextTableFrame = e.frame;
                ++stats_.hitsAtLevel[level - 1];
                return level - 1;
            }
        }
    }
    ++stats_.fullMisses;
    nextTableFrame = 0;
    return kPtLevels;
}

void
PagingStructureCaches::fill(std::uint16_t asid, Addr vaddr, unsigned level,
                            Addr childTableFrame)
{
    if (level < 2 || level > kPtLevels)
        return;
    auto &cache = caches_[level - 2];
    const std::uint64_t tag = tagOf(asid, vaddr, level);
    Entry *victim = &cache[0];
    for (auto &e : cache) {
        if (e.valid && e.tag == tag) {
            e.frame = childTableFrame;
            e.lru = clock_++;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->frame = childTableFrame;
    victim->lru = clock_++;
}

void
PagingStructureCaches::flush()
{
    for (auto &c : caches_)
        for (auto &e : c)
            e.valid = false;
}

void
PagingStructureCaches::checkInvariants() const
{
    using verify::InvariantViolation;
    for (unsigned level = 2; level <= kPtLevels; ++level) {
        const auto &cache = caches_[level - 2];
        const std::string who = "PSCL" + std::to_string(level);
        for (std::size_t i = 0; i < cache.size(); ++i) {
            const Entry &e = cache[i];
            if (!e.valid)
                continue;
            std::ostringstream ctx;
            ctx << std::hex << "tag=0x" << e.tag << " frame=0x" << e.frame
                << std::dec << " lru=" << e.lru;
            if (e.frame != pageAlign(e.frame))
                throw InvariantViolation(who, "frame-align", ctx.str(),
                                         static_cast<std::int64_t>(i));
            if (e.lru == 0 || e.lru >= clock_)
                throw InvariantViolation(who, "lru-clock", ctx.str(),
                                         static_cast<std::int64_t>(i));
            for (std::size_t j = i + 1; j < cache.size(); ++j) {
                if (cache[j].valid && cache[j].tag == e.tag)
                    throw InvariantViolation(
                        who, "duplicate-tag", ctx.str(),
                        static_cast<std::int64_t>(j));
            }
        }
    }
}

} // namespace tacsim
