#include "vm/psc.hh"

#include <sstream>
#include <stdexcept>

#include "sim/verify.hh"

namespace tacsim {

namespace {

/** VA truncated to the region PSCL_l tags cover (levels >= l). */
Addr
coverageAlign(Addr vaddr, unsigned level)
{
    const unsigned shift = kPageBits + (level - 1) * kPtIndexBits;
    return vaddr & ~((Addr{1} << shift) - 1);
}

} // namespace

PagingStructureCaches::PagingStructureCaches(
    std::array<std::uint32_t, 4> sizes, Cycle latency)
    : latency_(latency)
{
    for (unsigned i = 0; i < 4; ++i)
        caches_[i].resize(sizes[i]);
}

unsigned
PagingStructureCaches::lookup(std::uint16_t asid, Addr vaddr,
                              Addr &nextTableFrame)
{
    ++stats_.lookups;
    // Deepest level first: PSCL2 hit means only the leaf remains.
    for (unsigned level = 2; level <= kPtLevels; ++level) {
        auto &cache = caches_[level - 2];
        const std::uint64_t tag = tagOf(asid, vaddr, level);
        for (auto &e : cache) {
            if (e.valid && e.tag == tag) {
                e.lru = clock_++;
                nextTableFrame = e.frame;
                ++stats_.hitsAtLevel[level - 1];
                return level - 1;
            }
        }
    }
    ++stats_.fullMisses;
    nextTableFrame = 0;
    return kPtLevels;
}

void
PagingStructureCaches::fill(std::uint16_t asid, Addr vaddr, unsigned level,
                            Addr childTableFrame, unsigned leafLevel)
{
    if (level < 2 || level > kPtLevels)
        return;
    // No level-(l-1) table exists at or below the leaf: a 2M walk
    // (leaf at 2) must never populate PSCL2.
    if (level <= leafLevel)
        return;
    auto &cache = caches_[level - 2];
    const std::uint64_t tag = tagOf(asid, vaddr, level);
    Entry *victim = &cache[0];
    for (auto &e : cache) {
        if (e.valid && e.tag == tag) {
            e.frame = childTableFrame;
            e.leafLevel = static_cast<std::uint8_t>(leafLevel);
            e.lru = clock_++;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->frame = childTableFrame;
    victim->va = coverageAlign(vaddr, level);
    victim->asid = asid;
    victim->leafLevel = static_cast<std::uint8_t>(leafLevel);
    victim->lru = clock_++;
}

void
PagingStructureCaches::flush()
{
    for (auto &c : caches_)
        for (auto &e : c)
            e.valid = false;
}

void
PagingStructureCaches::forEachEntry(
    const std::function<void(unsigned, std::uint16_t, Addr, Addr, unsigned)>
        &fn) const
{
    for (unsigned level = 2; level <= kPtLevels; ++level) {
        for (const Entry &e : caches_[level - 2]) {
            if (e.valid)
                fn(level, e.asid, e.va, e.frame, e.leafLevel);
        }
    }
}

void
PagingStructureCaches::pokeForTest(unsigned level, std::uint32_t index,
                                   std::uint16_t asid, Addr vaddr,
                                   Addr frame, unsigned leafLevel)
{
    Entry &e = caches_[level - 2][index];
    e.valid = true;
    e.tag = tagOf(asid, vaddr, level);
    e.frame = frame;
    e.va = coverageAlign(vaddr, level);
    e.asid = asid;
    e.leafLevel = static_cast<std::uint8_t>(leafLevel);
    e.lru = clock_++;
}

void
PagingStructureCaches::checkInvariants() const
{
    using verify::InvariantViolation;
    for (unsigned level = 2; level <= kPtLevels; ++level) {
        const auto &cache = caches_[level - 2];
        const std::string who = "PSCL" + std::to_string(level);
        for (std::size_t i = 0; i < cache.size(); ++i) {
            const Entry &e = cache[i];
            if (!e.valid)
                continue;
            std::ostringstream ctx;
            ctx << std::hex << "tag=0x" << e.tag << " frame=0x" << e.frame
                << " va=0x" << e.va << std::dec
                << " leaf=" << unsigned(e.leafLevel) << " lru=" << e.lru;
            if (e.frame != pageAlign(e.frame))
                throw InvariantViolation(who, "frame-align", ctx.str(),
                                         static_cast<std::int64_t>(i));
            if (e.lru == 0 || e.lru >= clock_)
                throw InvariantViolation(who, "lru-clock", ctx.str(),
                                         static_cast<std::int64_t>(i));
            if (e.tag != tagOf(e.asid, e.va, level))
                throw InvariantViolation(who, "tag-mismatch", ctx.str(),
                                         static_cast<std::int64_t>(i));
            // An entry at PSCL_l points at a level-(l-1) table; a walk
            // whose leaf was at or above l has no such table.
            if (e.leafLevel >= level)
                throw InvariantViolation(who, "psc-skipped-level",
                                         ctx.str(),
                                         static_cast<std::int64_t>(i));
            for (std::size_t j = i + 1; j < cache.size(); ++j) {
                if (cache[j].valid && cache[j].tag == e.tag)
                    throw InvariantViolation(
                        who, "duplicate-tag", ctx.str(),
                        static_cast<std::int64_t>(j));
            }
        }
    }
}

void
PagingStructureCaches::saveState(SerialWriter &w) const
{
    w.putU64(clock_);
    for (const auto &cache : caches_) {
        w.putU64(cache.size());
        for (const Entry &e : cache) {
            w.putU64(e.tag);
            w.putU64(e.frame);
            w.putU64(e.va);
            w.putU64(e.lru);
            w.putU16(e.asid);
            w.putU8(e.leafLevel);
            w.putBool(e.valid);
        }
    }
}

void
PagingStructureCaches::loadState(SerialReader &r)
{
    clock_ = r.getU64();
    for (auto &cache : caches_) {
        if (r.getU64() != cache.size())
            throw std::runtime_error("checkpoint: PSC geometry mismatch");
        for (Entry &e : cache) {
            e.tag = r.getU64();
            e.frame = r.getU64();
            e.va = r.getU64();
            e.lru = r.getU64();
            e.asid = r.getU16();
            e.leafLevel = r.getU8();
            e.valid = r.getBool();
        }
    }
}

} // namespace tacsim
