#include "vm/ptw.hh"

#include <sstream>

#include "mem/request_pool.hh"
#include "obs/chrome_trace.hh"
#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

PageTableWalker::PageTableWalker(EventQueue &eq, MemDevice *port, Params p)
    : eq_(eq), port_(port), params_(p),
      pscs_(p.pscSizes, p.pscLatency)
{}

void
PageTableWalker::addAddressSpace(std::uint16_t asid, PageTable *pt)
{
    spaces_[asid] = pt;
}

void
PageTableWalker::resetStats()
{
    stats_.reset();
    pscs_.resetStats();
}

void
PageTableWalker::registerMetrics(obs::Registry &registry,
                                 const std::string &prefix)
{
    registry.addCounter(prefix + ".walks", &stats_.walks);
    registry.addCounter(prefix + ".merged", &stats_.merged);
    registry.addCounter(prefix + ".queued", &stats_.queued);
    for (unsigned l = 1; l <= kPtLevels; ++l)
        registry.addCounter(prefix + ".reads.l" + std::to_string(l),
                            &stats_.levelReads[l - 1]);
    registry.addCounter(prefix + ".leaf_from.l1d", &stats_.leafFromL1D);
    registry.addCounter(prefix + ".leaf_from.l2c", &stats_.leafFromL2C);
    registry.addCounter(prefix + ".leaf_from.llc", &stats_.leafFromLLC);
    registry.addCounter(prefix + ".leaf_from.dram", &stats_.leafFromDram);
    registry.addCounter(prefix + ".leaf_from.ideal",
                        &stats_.leafFromIdeal);
    registry.addHistogram(prefix + ".walk_latency", &stats_.walkLatency);
    const PscStats &psc = pscs_.stats();
    registry.addCounter(prefix + ".psc.lookups", &psc.lookups);
    registry.addCounter(prefix + ".psc.full_misses", &psc.fullMisses);
    // PSCL_l exists for l in 2..kPtLevels (hitsAtLevel is indexed l-1).
    for (unsigned l = 2; l <= kPtLevels; ++l)
        registry.addCounter(prefix + ".psc.hits.pscl" + std::to_string(l),
                            &psc.hitsAtLevel[l - 1]);
    registry.addResetHook([this] { resetStats(); });
}

void
PageTableWalker::setTracer(obs::ChromeTracer *tracer, std::uint32_t track)
{
    tracer_ = tracer;
    track_ = track;
    if (tracer_)
        walkNameId_ = tracer_->intern("walk");
}

void
PageTableWalker::walk(std::uint16_t asid, Addr vaddr, Addr ip,
                      std::uint16_t cpu, WalkCallback cb)
{
    const std::uint64_t key = keyOf(asid, vaddr);
    if (std::shared_ptr<WalkState> *live = inflight_.find(key)) {
        ++stats_.merged;
        (*live)->callbacks.push_back(std::move(cb));
        return;
    }
    // A duplicate may also be waiting behind the concurrency limit; a
    // second WalkState for the same key would later overwrite its
    // inflight_ slot and desync active_ from the map.
    for (auto &queued : queue_) {
        if (keyOf(queued->asid, queued->vaddr) == key) {
            ++stats_.merged;
            queued->callbacks.push_back(std::move(cb));
            return;
        }
    }

    auto ws = std::make_unique<WalkState>();
    ws->asid = asid;
    ws->vaddr = vaddr;
    ws->ip = ip;
    ws->cpu = cpu;
    ws->callbacks.push_back(std::move(cb));

    if (active_ >= params_.maxConcurrentWalks) {
        ++stats_.queued;
        queue_.push_back(std::move(ws));
        return;
    }
    startWalk(std::move(ws));
}

void
PageTableWalker::startWalk(std::unique_ptr<WalkState> ws)
{
    ++stats_.walks;
    ++active_;

    PageTable *pt = spaces_.at(ws->asid);
    ws->info = pt->walk(ws->vaddr);
    ws->startedAt = eq_.now();

    Addr skipFrame = 0;
    ws->startLevel = pscs_.lookup(ws->asid, ws->vaddr, skipFrame);

    std::shared_ptr<WalkState> shared(std::move(ws));
    inflight_.insert(keyOf(shared->asid, shared->vaddr), shared);

    // PSC search costs one cycle, then the first level read issues.
    const unsigned level = shared->startLevel;
    eq_.schedule(pscs_.latency(),
                 [this, shared, level] { issueLevel(shared, level); });
}

void
PageTableWalker::issueLevel(std::shared_ptr<WalkState> ws, unsigned level)
{
    TACSIM_DCHECK(level >= 1 && level <= kPtLevels);
    ++stats_.levelReads[level - 1];

    MemRequestPtr req = makeRequest();
    req->paddr = ws->info.pteAddr[level - 1];
    req->vaddr = ws->vaddr;
    req->ip = ws->ip;
    req->type = ReqType::Translation;
    req->ptLevel = static_cast<std::uint8_t>(level);
    req->cpu = ws->cpu;
    req->issuedAt = eq_.now();
    if (level == 1) {
        // IsLeafLevel + upper page-offset bits: tell the hierarchy which
        // data line the replay load will need, enabling ATP and TEMPO.
        req->replayBlockPaddr = blockAlign(ws->info.dataPaddr);
    }

    req->onComplete = [this, ws, level](MemRequest &resp) {
        if (level > 1) {
            issueLevel(ws, level - 1);
        } else {
            finishWalk(ws, resp.source);
        }
    };
    port_->access(req);
}

void
PageTableWalker::finishWalk(const std::shared_ptr<WalkState> &ws,
                            RespSource leafSource)
{
    switch (leafSource) {
      case RespSource::L1D: ++stats_.leafFromL1D; break;
      case RespSource::L2C: ++stats_.leafFromL2C; break;
      case RespSource::LLC: ++stats_.leafFromLLC; break;
      case RespSource::DRAM: ++stats_.leafFromDram; break;
      default: ++stats_.leafFromIdeal; break;
    }
    stats_.walkLatency.add(eq_.now() - ws->startedAt);
    if (tracer_)
        tracer_->span(track_, walkNameId_, ws->startedAt, eq_.now());

    // Fill the PSCs for every level we walked: PSCL_l learns the frame of
    // the level-(l-1) table.
    for (unsigned level = ws->startLevel; level >= 2; --level)
        pscs_.fill(ws->asid, ws->vaddr, level,
                   ws->info.tableFrame[level - 2]);

    if (stlb_)
        stlb_->fill(ws->asid, pageNumber(ws->vaddr),
                    pageAlign(ws->info.dataPaddr));

    inflight_.erase(keyOf(ws->asid, ws->vaddr));
    --active_;

    for (auto &cb : ws->callbacks)
        cb(ws->info.dataPaddr, leafSource);

    drainQueue();
}

void
PageTableWalker::drainQueue()
{
    while (!queue_.empty() && active_ < params_.maxConcurrentWalks) {
        auto ws = std::move(queue_.front());
        queue_.pop_front();
        startWalk(std::move(ws));
    }
}

void
PageTableWalker::checkInvariants() const
{
    using verify::InvariantViolation;
    const std::string who = "PTW";

    if (active_ != inflight_.size()) {
        std::ostringstream os;
        os << "active=" << active_ << " but " << inflight_.size()
           << " walks in flight";
        throw InvariantViolation(who, "active-count", os.str());
    }
    if (active_ > params_.maxConcurrentWalks) {
        std::ostringstream os;
        os << "active=" << active_ << " exceeds bound "
           << params_.maxConcurrentWalks;
        throw InvariantViolation(who, "active-bound", os.str());
    }
    if (!queue_.empty() && active_ < params_.maxConcurrentWalks) {
        std::ostringstream os;
        os << queue_.size() << " walks queued with only " << active_
           << "/" << params_.maxConcurrentWalks << " active";
        throw InvariantViolation(who, "queue-backlog", os.str());
    }
    inflight_.forEach([&](std::uint64_t key,
                          const std::shared_ptr<WalkState> &ws) {
        std::ostringstream ctx;
        ctx << std::hex << "walk asid=" << ws->asid << " vaddr=0x"
            << ws->vaddr << std::dec << " startLevel=" << ws->startLevel;
        if (key != keyOf(ws->asid, ws->vaddr))
            throw InvariantViolation(who, "inflight-key", ctx.str());
        if (ws->callbacks.empty())
            throw InvariantViolation(who, "walk-callbacks", ctx.str());
        if (ws->startLevel < 1 || ws->startLevel > kPtLevels)
            throw InvariantViolation(who, "level-range", ctx.str());
    });
    pscs_.checkInvariants();
}

} // namespace tacsim
