#include "vm/ptw.hh"

#include <algorithm>
#include <sstream>

#include "mem/request_pool.hh"
#include "obs/chrome_trace.hh"
#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

PageTableWalker::PageTableWalker(EventQueue &eq, MemDevice *port, Params p)
    : eq_(eq), port_(port), params_(p),
      pscs_(p.pscSizes, p.pscLatency)
{}

void
PageTableWalker::addAddressSpace(std::uint16_t asid, PageTable *pt)
{
    for (auto &[id, table] : spaces_) {
        if (id == asid) {
            table = pt;
            return;
        }
    }
    spaces_.emplace_back(asid, pt);
}

void
PageTableWalker::setNestedTranslation(PageTable *host)
{
    hostTable_ = host;
    if (host && !hostPscs_) {
        hostPscs_ = std::make_unique<PagingStructureCaches>(
            params_.pscSizes, params_.pscLatency);
    }
}

void
PageTableWalker::resetStats()
{
    stats_.reset();
    pscs_.resetStats();
    if (hostPscs_)
        hostPscs_->resetStats();
}

void
PageTableWalker::registerMetrics(obs::Registry &registry,
                                 const std::string &prefix)
{
    registry.addCounter(prefix + ".walks", &stats_.walks);
    registry.addCounter(prefix + ".merged", &stats_.merged);
    registry.addCounter(prefix + ".queued", &stats_.queued);
    for (unsigned l = 1; l <= kPtLevels; ++l)
        registry.addCounter(prefix + ".reads.l" + std::to_string(l),
                            &stats_.levelReads[l - 1]);
    for (PageSize ps : kAllPageSizes) {
        registry.addCounter(
            prefix + ".walks_" + pageSizeName(ps),
            &stats_.walksBySize[static_cast<unsigned>(ps)]);
    }
    registry.addCounter(prefix + ".leaf_from.l1d", &stats_.leafFromL1D);
    registry.addCounter(prefix + ".leaf_from.l2c", &stats_.leafFromL2C);
    registry.addCounter(prefix + ".leaf_from.llc", &stats_.leafFromLLC);
    registry.addCounter(prefix + ".leaf_from.dram", &stats_.leafFromDram);
    registry.addCounter(prefix + ".leaf_from.ideal",
                        &stats_.leafFromIdeal);
    registry.addHistogram(prefix + ".walk_latency", &stats_.walkLatency);
    registry.addHistogram(prefix + ".walk_refs", &stats_.walkRefs);
    const PscStats &psc = pscs_.stats();
    registry.addCounter(prefix + ".psc.lookups", &psc.lookups);
    registry.addCounter(prefix + ".psc.full_misses", &psc.fullMisses);
    // PSCL_l exists for l in 2..kPtLevels (hitsAtLevel is indexed l-1).
    for (unsigned l = 2; l <= kPtLevels; ++l)
        registry.addCounter(prefix + ".psc.hits.pscl" + std::to_string(l),
                            &psc.hitsAtLevel[l - 1]);
    if (hostTable_) {
        registry.addCounter(prefix + ".host_walks", &stats_.hostWalks);
        for (unsigned l = 1; l <= kPtLevels; ++l)
            registry.addCounter(
                prefix + ".host_reads.l" + std::to_string(l),
                &stats_.hostLevelReads[l - 1]);
        const PscStats &hpsc = hostPscs_->stats();
        registry.addCounter(prefix + ".host_psc.lookups", &hpsc.lookups);
        registry.addCounter(prefix + ".host_psc.full_misses",
                            &hpsc.fullMisses);
        for (unsigned l = 2; l <= kPtLevels; ++l)
            registry.addCounter(
                prefix + ".host_psc.hits.pscl" + std::to_string(l),
                &hpsc.hitsAtLevel[l - 1]);
    }
    registry.addResetHook([this] { resetStats(); });
}

void
PageTableWalker::setTracer(obs::ChromeTracer *tracer, std::uint32_t track)
{
    tracer_ = tracer;
    track_ = track;
    if (tracer_)
        walkNameId_ = tracer_->intern("walk");
}

void
PageTableWalker::walk(std::uint16_t asid, Addr vaddr, Addr ip,
                      std::uint16_t cpu, WalkCallback cb)
{
    const std::uint64_t key = keyOf(asid, vaddr);
    if (std::shared_ptr<WalkState> *live = inflight_.find(key)) {
        ++stats_.merged;
        (*live)->callbacks.push_back(std::move(cb));
        return;
    }
    // A duplicate may also be waiting behind the concurrency limit; a
    // second WalkState for the same key would later overwrite its
    // inflight_ slot and desync active_ from the map.
    for (auto &queued : queue_) {
        if (keyOf(queued->asid, queued->vaddr) == key) {
            ++stats_.merged;
            queued->callbacks.push_back(std::move(cb));
            return;
        }
    }

    auto ws = std::make_unique<WalkState>();
    ws->asid = asid;
    ws->vaddr = vaddr;
    ws->ip = ip;
    ws->cpu = cpu;
    ws->callbacks.push_back(std::move(cb));

    if (active_ >= params_.maxConcurrentWalks) {
        ++stats_.queued;
        queue_.push_back(std::move(ws));
        return;
    }
    startWalk(std::move(ws));
}

PageTable::WalkResult
PageTableWalker::appendHostWalk(WalkState &ws, Addr gpa)
{
    ++stats_.hostWalks;
    PageTable::WalkResult h = hostTable_->walk(gpa);
    Addr skipFrame = 0;
    unsigned start = hostPscs_->lookup(kHostAsid, gpa, skipFrame);
    start = std::max(start, h.leafLevel);
    for (unsigned level = start; level >= h.leafLevel; --level) {
        PendingRead r;
        r.paddr = h.pteAddr[level - 1];
        r.ptLevel = static_cast<std::uint8_t>(level);
        r.isHost = true;
        ws.reads.push_back(r);
    }
    // Reads within one walk are serial, so by the time the next sub-walk
    // starts these fills have architecturally happened.
    for (unsigned level = start; level >= 2; --level)
        hostPscs_->fill(kHostAsid, gpa, level, h.tableFrame[level - 2],
                        h.leafLevel);
    return h;
}

void
PageTableWalker::startWalk(std::unique_ptr<WalkState> ws)
{
    ++stats_.walks;
    ++active_;

    PageTable *pt = nullptr;
    for (const auto &[id, table] : spaces_) {
        if (id == ws->asid) {
            pt = table;
            break;
        }
    }
    TACSIM_CHECK(pt != nullptr && "walk for an ASID with no page table");
    ws->info = pt->walk(ws->vaddr);
    ws->startedAt = eq_.now();

    Addr skipFrame = 0;
    ws->startLevel = pscs_.lookup(ws->asid, ws->vaddr, skipFrame);
    // A PSC hit can at best skip down to the mapping's leaf level; a 2M
    // walk never reads a level-1 table because none exists.
    ws->startLevel = std::max(ws->startLevel, ws->info.leafLevel);

    if (!hostTable_) {
        for (unsigned level = ws->startLevel;
             level >= ws->info.leafLevel; --level) {
            PendingRead r;
            r.paddr = ws->info.pteAddr[level - 1];
            r.ptLevel = static_cast<std::uint8_t>(level);
            r.leafPte = (level == ws->info.leafLevel);
            if (r.leafPte)
                r.replayBlockPaddr = blockAlign(ws->info.dataPaddr);
            ws->reads.push_back(r);
        }
        ws->finalPaddr = ws->info.dataPaddr;
        ws->fillSize = ws->info.pageSize;
        ws->fillBase = pageAlign(ws->finalPaddr, ws->fillSize);
    } else {
        // Nested 2D walk: the data address the replay load needs is only
        // known through the host dimension, so resolve it functionally
        // up front — the guest leaf read must carry replayBlockPaddr.
        const Addr finalPaddr =
            hostTable_->translate(ws->info.dataPaddr);
        for (unsigned level = ws->startLevel;
             level >= ws->info.leafLevel; --level) {
            appendHostWalk(*ws, ws->info.pteAddr[level - 1]);
            PendingRead r;
            r.paddr = hostTable_->translate(ws->info.pteAddr[level - 1]);
            r.ptLevel = static_cast<std::uint8_t>(level);
            r.leafPte = (level == ws->info.leafLevel);
            if (r.leafPte)
                r.replayBlockPaddr = blockAlign(finalPaddr);
            ws->reads.push_back(r);
        }
        // One more host walk translates the guest data address itself.
        PageTable::WalkResult dataH =
            appendHostWalk(*ws, ws->info.dataPaddr);
        ws->finalPaddr = dataH.dataPaddr;
        TACSIM_DCHECK(ws->finalPaddr == finalPaddr);
        // The STLB can only cache the translation at the granule both
        // dimensions agree on: min(guest page, host page).
        ws->fillSize = minPageSize(ws->info.pageSize, dataH.pageSize);
        ws->fillBase = pageAlign(ws->finalPaddr, ws->fillSize);
    }
    TACSIM_DCHECK(!ws->reads.empty());

    std::shared_ptr<WalkState> shared(std::move(ws));
    inflight_.insert(keyOf(shared->asid, shared->vaddr), shared);

    // PSC search costs one cycle, then the first read issues.
    eq_.schedule(pscs_.latency(), [this, shared] { issueNext(shared); });
}

void
PageTableWalker::issueNext(std::shared_ptr<WalkState> ws)
{
    const PendingRead &r = ws->reads[ws->nextRead];
    TACSIM_DCHECK(r.ptLevel >= 1 && r.ptLevel <= kPtLevels);
    if (r.isHost)
        ++stats_.hostLevelReads[r.ptLevel - 1];
    else
        ++stats_.levelReads[r.ptLevel - 1];

    MemRequestPtr req = makeRequest();
    req->paddr = r.paddr;
    req->vaddr = ws->vaddr;
    req->ip = ws->ip;
    req->type = ReqType::Translation;
    req->ptLevel = r.ptLevel;
    req->leafPte = r.leafPte;
    req->cpu = ws->cpu;
    req->issuedAt = eq_.now();
    if (r.leafPte) {
        // IsLeafLevel + upper page-offset bits: tell the hierarchy which
        // data line the replay load will need, enabling ATP and TEMPO.
        req->replayBlockPaddr = r.replayBlockPaddr;
    }

    const bool leaf = r.leafPte;
    req->onComplete = [this, ws, leaf](MemRequest &resp) {
        if (leaf)
            ws->leafSource = resp.source;
        if (++ws->nextRead < ws->reads.size())
            issueNext(ws);
        else
            finishWalk(ws);
    };
    port_->access(req);
}

void
PageTableWalker::finishWalk(const std::shared_ptr<WalkState> &ws)
{
    switch (ws->leafSource) {
      case RespSource::L1D: ++stats_.leafFromL1D; break;
      case RespSource::L2C: ++stats_.leafFromL2C; break;
      case RespSource::LLC: ++stats_.leafFromLLC; break;
      case RespSource::DRAM: ++stats_.leafFromDram; break;
      default: ++stats_.leafFromIdeal; break;
    }
    stats_.walkLatency.add(eq_.now() - ws->startedAt);
    stats_.walkRefs.add(ws->reads.size());
    ++stats_.walksBySize[static_cast<unsigned>(ws->fillSize)];
    if (tracer_)
        tracer_->span(track_, walkNameId_, ws->startedAt, eq_.now());

    // Fill the PSCs for every level we walked: PSCL_l learns the frame of
    // the level-(l-1) table. fill() drops levels at or below the leaf.
    for (unsigned level = ws->startLevel; level >= 2; --level)
        pscs_.fill(ws->asid, ws->vaddr, level,
                   ws->info.tableFrame[level - 2], ws->info.leafLevel);

    if (stlb_)
        stlb_->fill(ws->asid, ws->vaddr, ws->fillBase, ws->fillSize);

    inflight_.erase(keyOf(ws->asid, ws->vaddr));
    --active_;

    for (auto &cb : ws->callbacks)
        cb(ws->finalPaddr, ws->fillSize, ws->leafSource);

    drainQueue();
}

void
PageTableWalker::drainQueue()
{
    while (!queue_.empty() && active_ < params_.maxConcurrentWalks) {
        auto ws = std::move(queue_.front());
        queue_.pop_front();
        startWalk(std::move(ws));
    }
}

void
PageTableWalker::checkInvariants() const
{
    using verify::InvariantViolation;
    const std::string who = "PTW";

    if (active_ != inflight_.size()) {
        std::ostringstream os;
        os << "active=" << active_ << " but " << inflight_.size()
           << " walks in flight";
        throw InvariantViolation(who, "active-count", os.str());
    }
    if (active_ > params_.maxConcurrentWalks) {
        std::ostringstream os;
        os << "active=" << active_ << " exceeds bound "
           << params_.maxConcurrentWalks;
        throw InvariantViolation(who, "active-bound", os.str());
    }
    if (!queue_.empty() && active_ < params_.maxConcurrentWalks) {
        std::ostringstream os;
        os << queue_.size() << " walks queued with only " << active_
           << "/" << params_.maxConcurrentWalks << " active";
        throw InvariantViolation(who, "queue-backlog", os.str());
    }
    inflight_.forEach([&](std::uint64_t key,
                          const std::shared_ptr<WalkState> &ws) {
        std::ostringstream ctx;
        ctx << std::hex << "walk asid=" << ws->asid << " vaddr=0x"
            << ws->vaddr << std::dec << " startLevel=" << ws->startLevel
            << " leafLevel=" << ws->info.leafLevel;
        if (key != keyOf(ws->asid, ws->vaddr))
            throw InvariantViolation(who, "inflight-key", ctx.str());
        if (ws->callbacks.empty())
            throw InvariantViolation(who, "walk-callbacks", ctx.str());
        if (ws->startLevel < 1 || ws->startLevel > kPtLevels)
            throw InvariantViolation(who, "level-range", ctx.str());
        if (ws->startLevel < ws->info.leafLevel)
            throw InvariantViolation(who, "start-below-leaf", ctx.str());
    });
    pscs_.checkInvariants();
    if (hostPscs_)
        hostPscs_->checkInvariants();
}

} // namespace tacsim
