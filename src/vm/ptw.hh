/**
 * @file
 * Hardware page-table walker. On an STLB miss the walker probes the PSCs
 * (one cycle, parallel search), then reads the remaining page-table
 * levels serially through the data cache hierarchy — each read is a
 * Translation request tagged with its level, so caches can apply the
 * paper's translation-conscious policies and trigger ATP on leaf hits.
 *
 * The walker carries the IsLeafLevel flag and the upper six bits of the
 * page offset so a leaf hit knows which data line the pending demand load
 * needs (paper §IV) — in the model this is replayBlockPaddr.
 *
 * Huge pages terminate the walk early: a 2M mapping's leaf PTE lives at
 * level 2, a 1G mapping's at level 3, so those walks issue fewer reads
 * and never touch the skipped lower-level tables.
 *
 * Nested (virtualized) mode turns each walk into a 2D guest×host walk:
 * every guest PTE address is guest-physical and must itself be translated
 * by a host walk before the guest PTE can be read, and the final guest
 * data address needs one more host walk — up to (gL+1)*hL + gL memory
 * references per STLB miss. The walker owns a second set of PSCs for the
 * host dimension. Host-PSC lookups and fills are applied in sub-walk
 * order when the walk starts (reads within a walk are serial, so each
 * sub-walk would indeed observe its predecessors' fills; only overlap
 * between concurrent walks is approximated).
 *
 * Walks to the same (asid, VPN) merge; a bounded number of walks may be
 * in flight, the rest queue.
 */

#ifndef TACSIM_VM_PTW_HH
#define TACSIM_VM_PTW_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/addr_map.hh"
#include "common/event_queue.hh"
#include "common/histogram.hh"
#include "common/types.hh"
#include "mem/request.hh"
#include "vm/page_table.hh"
#include "vm/psc.hh"
#include "vm/tlb.hh"

namespace tacsim {

namespace obs {
class ChromeTracer;
class Registry;
} // namespace obs

/** ASID the walker uses for the single host address space. */
constexpr std::uint16_t kHostAsid = 0;

struct PtwStats
{
    std::uint64_t walks = 0;
    std::uint64_t merged = 0;
    std::uint64_t queued = 0;
    /** Memory accesses issued per guest page-table level (index l-1). */
    std::array<std::uint64_t, kPtLevels> levelReads = {};
    /** Memory accesses issued per *host* level (nested mode only). */
    std::array<std::uint64_t, kPtLevels> hostLevelReads = {};
    /** Host sub-walks performed (nested mode only). */
    std::uint64_t hostWalks = 0;
    /** Finished walks by the granule installed in the STLB. */
    std::array<std::uint64_t, kNumPageSizes> walksBySize = {};
    /** Where the *leaf* PTE read was serviced. */
    std::uint64_t leafFromL1D = 0;
    std::uint64_t leafFromL2C = 0;
    std::uint64_t leafFromLLC = 0;
    std::uint64_t leafFromDram = 0;
    std::uint64_t leafFromIdeal = 0;
    Histogram walkLatency{std::vector<std::uint64_t>{20, 50, 100, 200,
                                                     500}};
    /** Memory references per walk (the nested-walk depth histogram:
     *  bare-metal 4K walks issue <= 5, nested walks up to 35). */
    Histogram walkRefs{std::vector<std::uint64_t>{1, 2, 3, 4, 5, 8, 12,
                                                  16, 20, 24, 28}};

    void reset() { *this = PtwStats{}; }
};

/** Walker configuration. */
struct PtwParams
{
    unsigned maxConcurrentWalks = 4;
    std::array<std::uint32_t, 4> pscSizes = {32, 8, 4, 2};
    Cycle pscLatency = 1;
};

class PageTableWalker
{
  public:
    /** Called when translation finishes: host-physical data address,
     *  installed translation granule, and leaf PTE response source. */
    using WalkCallback = std::function<void(Addr dataPaddr, PageSize ps,
                                            RespSource leafSource)>;

    using Params = PtwParams;

    PageTableWalker(EventQueue &eq, MemDevice *port, Params p = Params{});

    /** Register the page table serving @p asid. */
    void addAddressSpace(std::uint16_t asid, PageTable *pt);

    /** STLB this walker fills on completion (may be null). */
    void setStlb(Tlb *stlb) { stlb_ = stlb; }

    /**
     * Enable nested (2D) translation: every registered page table is
     * treated as guest-physical, translated through @p host. Call before
     * registerMetrics(). Pass nullptr to disable.
     */
    void setNestedTranslation(PageTable *host);

    bool nested() const { return hostTable_ != nullptr; }

    /**
     * Start (or merge into) a walk for @p vaddr.
     * @param ip instruction pointer of the triggering demand access
     * @param cpu hardware context id
     * @param cb invoked when the leaf PTE has been read
     */
    void walk(std::uint16_t asid, Addr vaddr, Addr ip, std::uint16_t cpu,
              WalkCallback cb);

    const PtwStats &stats() const { return stats_; }
    void resetStats();
    const PscStats &pscStats() const { return pscs_.stats(); }
    PagingStructureCaches &pscs() { return pscs_; }

    /** Host-dimension PSCs (null unless nested mode is enabled). */
    PagingStructureCaches *hostPscs() { return hostPscs_.get(); }

    /** Register walker + PSC counters under "@p prefix.", plus the
     *  reset hook. */
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);

    /** Attach a Chrome tracer; each finished walk is emitted as a span
     *  on @p track. Pass nullptr to detach. */
    void setTracer(obs::ChromeTracer *tracer, std::uint32_t track);

    unsigned activeWalks() const { return active_; }

    /**
     * Verify walker invariants: active count matches the in-flight map,
     * concurrency bound respected, queue only backs up when saturated,
     * in-flight keys consistent with their walk state (including that no
     * walk starts below its mapping's leaf level), and PSC state
     * well-formed. Throws verify::InvariantViolation.
     */
    void checkInvariants() const;

    /**
     * Checkpoint the walker's caches (guest + host PSCs). Only legal
     * when no walk is in flight or queued (post-quiesce) — walk state
     * itself is never serialized.
     */
    void
    saveState(SerialWriter &w) const
    {
        requireIdle("save");
        pscs_.saveState(w);
        w.putBool(hostPscs_ != nullptr);
        if (hostPscs_)
            hostPscs_->saveState(w);
    }

    void
    loadState(SerialReader &r)
    {
        requireIdle("load");
        pscs_.loadState(r);
        const bool hasHost = r.getBool();
        if (hasHost != (hostPscs_ != nullptr))
            throw std::runtime_error(
                "checkpoint: nested-translation mode mismatch");
        if (hostPscs_)
            hostPscs_->loadState(r);
    }

  private:
    void
    requireIdle(const char *what) const
    {
        if (active_ != 0 || !inflight_.empty() || !queue_.empty())
            throw std::runtime_error(
                std::string("checkpoint: cannot ") + what +
                " walker state with walks in flight");
    }

    /** One serial memory reference of a walk, precomputed at start. */
    struct PendingRead
    {
        Addr paddr = 0;
        Addr replayBlockPaddr = 0; ///< nonzero on the guest leaf read
        std::uint8_t ptLevel = 0;  ///< guest or host table level (1..5)
        bool isHost = false;
        bool leafPte = false; ///< the guest leaf PTE (ends translation)
    };

    struct WalkState
    {
        std::uint16_t asid;
        Addr vaddr;
        Addr ip;
        std::uint16_t cpu;
        PageTable::WalkResult info; ///< guest-dimension walk result
        unsigned startLevel;        ///< first guest level actually read
        Cycle startedAt;
        std::vector<PendingRead> reads; ///< serial reference list
        std::size_t nextRead = 0;
        Addr finalPaddr = 0;   ///< host-physical data address
        Addr fillBase = 0;     ///< STLB fill physical base
        PageSize fillSize = PageSize::Size4K; ///< STLB fill granule
        RespSource leafSource = RespSource::None;
        std::vector<WalkCallback> callbacks;
    };

    std::uint64_t keyOf(std::uint16_t asid, Addr vaddr) const
    {
        return (static_cast<std::uint64_t>(asid) << 48) ^ pageNumber(vaddr);
    }

    void startWalk(std::unique_ptr<WalkState> ws);
    /** Append a host sub-walk for @p gpa to ws->reads; returns the host
     *  walk result (nested mode only). */
    PageTable::WalkResult appendHostWalk(WalkState &ws, Addr gpa);
    void issueNext(std::shared_ptr<WalkState> ws);
    void finishWalk(const std::shared_ptr<WalkState> &ws);
    void drainQueue();

    EventQueue &eq_;
    MemDevice *port_;
    Params params_;
    PagingStructureCaches pscs_;
    Tlb *stlb_ = nullptr;

    PageTable *hostTable_ = nullptr; ///< non-null = nested 2D mode
    std::unique_ptr<PagingStructureCaches> hostPscs_;

    obs::ChromeTracer *tracer_ = nullptr; ///< null = tracing disabled
    std::uint32_t track_ = 0;
    std::uint32_t walkNameId_ = 0;

    /** Page table per ASID. A handful of entries probed once per walk:
     *  a flat array beats a node-based map (no hashing, no chase). */
    std::vector<std::pair<std::uint16_t, PageTable *>> spaces_;
    AddrMap<std::shared_ptr<WalkState>> inflight_;
    std::deque<std::unique_ptr<WalkState>> queue_;
    unsigned active_ = 0;
    PtwStats stats_;
};

} // namespace tacsim

#endif // TACSIM_VM_PTW_HH
