/**
 * @file
 * Hardware page-table walker. On an STLB miss the walker probes the PSCs
 * (one cycle, parallel search), then reads the remaining page-table
 * levels serially through the data cache hierarchy — each read is a
 * Translation request tagged with its level, so caches can apply the
 * paper's translation-conscious policies and trigger ATP on leaf hits.
 *
 * The walker carries the IsLeafLevel flag and the upper six bits of the
 * page offset so a leaf hit knows which data line the pending demand load
 * needs (paper §IV) — in the model this is replayBlockPaddr.
 *
 * Walks to the same (asid, VPN) merge; a bounded number of walks may be
 * in flight, the rest queue.
 */

#ifndef TACSIM_VM_PTW_HH
#define TACSIM_VM_PTW_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/addr_map.hh"
#include "common/event_queue.hh"
#include "common/histogram.hh"
#include "common/types.hh"
#include "mem/request.hh"
#include "vm/page_table.hh"
#include "vm/psc.hh"
#include "vm/tlb.hh"

namespace tacsim {

namespace obs {
class ChromeTracer;
class Registry;
} // namespace obs

struct PtwStats
{
    std::uint64_t walks = 0;
    std::uint64_t merged = 0;
    std::uint64_t queued = 0;
    /** Memory accesses issued per page-table level (index level-1). */
    std::array<std::uint64_t, kPtLevels> levelReads = {};
    /** Where the *leaf* PTE read was serviced. */
    std::uint64_t leafFromL1D = 0;
    std::uint64_t leafFromL2C = 0;
    std::uint64_t leafFromLLC = 0;
    std::uint64_t leafFromDram = 0;
    std::uint64_t leafFromIdeal = 0;
    Histogram walkLatency{std::vector<std::uint64_t>{20, 50, 100, 200,
                                                     500}};

    void reset() { *this = PtwStats{}; }
};

/** Walker configuration. */
struct PtwParams
{
    unsigned maxConcurrentWalks = 4;
    std::array<std::uint32_t, 4> pscSizes = {32, 8, 4, 2};
    Cycle pscLatency = 1;
};

class PageTableWalker
{
  public:
    /** Called when translation finishes. */
    using WalkCallback =
        std::function<void(Addr dataPaddr, RespSource leafSource)>;

    using Params = PtwParams;

    PageTableWalker(EventQueue &eq, MemDevice *port, Params p = Params{});

    /** Register the page table serving @p asid. */
    void addAddressSpace(std::uint16_t asid, PageTable *pt);

    /** STLB this walker fills on completion (may be null). */
    void setStlb(Tlb *stlb) { stlb_ = stlb; }

    /**
     * Start (or merge into) a walk for @p vaddr.
     * @param ip instruction pointer of the triggering demand access
     * @param cpu hardware context id
     * @param cb invoked when the leaf PTE has been read
     */
    void walk(std::uint16_t asid, Addr vaddr, Addr ip, std::uint16_t cpu,
              WalkCallback cb);

    const PtwStats &stats() const { return stats_; }
    void resetStats();
    const PscStats &pscStats() const { return pscs_.stats(); }
    PagingStructureCaches &pscs() { return pscs_; }

    /** Register walker + PSC counters under "@p prefix.", plus the
     *  reset hook. */
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);

    /** Attach a Chrome tracer; each finished walk is emitted as a span
     *  on @p track. Pass nullptr to detach. */
    void setTracer(obs::ChromeTracer *tracer, std::uint32_t track);

    unsigned activeWalks() const { return active_; }

    /**
     * Verify walker invariants: active count matches the in-flight map,
     * concurrency bound respected, queue only backs up when saturated,
     * in-flight keys consistent with their walk state, and PSC state
     * well-formed. Throws verify::InvariantViolation.
     */
    void checkInvariants() const;

  private:
    struct WalkState
    {
        std::uint16_t asid;
        Addr vaddr;
        Addr ip;
        std::uint16_t cpu;
        PageTable::WalkResult info;
        unsigned startLevel; ///< first level actually read
        Cycle startedAt;
        std::vector<WalkCallback> callbacks;
    };

    std::uint64_t keyOf(std::uint16_t asid, Addr vaddr) const
    {
        return (static_cast<std::uint64_t>(asid) << 48) ^ pageNumber(vaddr);
    }

    void startWalk(std::unique_ptr<WalkState> ws);
    void issueLevel(std::shared_ptr<WalkState> ws, unsigned level);
    void finishWalk(const std::shared_ptr<WalkState> &ws,
                    RespSource leafSource);
    void drainQueue();

    EventQueue &eq_;
    MemDevice *port_;
    Params params_;
    PagingStructureCaches pscs_;
    Tlb *stlb_ = nullptr;

    obs::ChromeTracer *tracer_ = nullptr; ///< null = tracing disabled
    std::uint32_t track_ = 0;
    std::uint32_t walkNameId_ = 0;

    std::unordered_map<std::uint16_t, PageTable *> spaces_;
    AddrMap<std::shared_ptr<WalkState>> inflight_;
    std::deque<std::unique_ptr<WalkState>> queue_;
    unsigned active_ = 0;
    PtwStats stats_;
};

} // namespace tacsim

#endif // TACSIM_VM_PTW_HH
