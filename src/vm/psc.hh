/**
 * @file
 * Paging-structure caches (PSCs). PSCL_l caches level-l PTEs: given the
 * virtual-address bits that index levels kPtLevels..l, it returns the
 * physical frame of the level-(l-1) table, letting the walker skip the
 * upper levels. Four PSCs exist for a five-level table (PSCL5..PSCL2);
 * they are searched in parallel in one cycle, and the deepest hit wins
 * (paper §II-A, Table I: 2/4/8/32 entries).
 */

#ifndef TACSIM_VM_PSC_HH
#define TACSIM_VM_PSC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace tacsim {

struct PscStats
{
    /** hitsAtLevel[l-1]: lookups resolved by PSCL_l (l in 2..5). */
    std::array<std::uint64_t, kPtLevels + 1> hitsAtLevel = {};
    std::uint64_t lookups = 0;
    std::uint64_t fullMisses = 0;

    void reset() { *this = PscStats{}; }
};

/** The four PSCs of one walker, fully associative, LRU. */
class PagingStructureCaches
{
  public:
    /** Entry counts for PSCL2..PSCL5 (index 0 -> PSCL2). */
    explicit PagingStructureCaches(std::array<std::uint32_t, 4> sizes =
                                       {32, 8, 4, 2},
                                   Cycle latency = 1);

    /**
     * Find the deepest cached level for (asid, vaddr).
     *
     * @param nextTableFrame out: frame of the level-(startLevel) table to
     *        read first.
     * @return the level the walk should *start* at (1..kPtLevels). A
     *         return of kPtLevels means full walk from the root; a return
     *         of 1 means only the leaf PTE must be read (PSCL2 hit).
     */
    unsigned lookup(std::uint16_t asid, Addr vaddr, Addr &nextTableFrame);

    /**
     * Fill PSCL_l with the level-l entry: tag = VA bits for levels >= l,
     * payload = frame of the level-(l-1) table.
     */
    void fill(std::uint16_t asid, Addr vaddr, unsigned level,
              Addr childTableFrame);

    Cycle latency() const { return latency_; }
    const PscStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    void flush();

    /** Verify per-PSC invariants: unique valid tags, LRU stamps behind
     *  the clock, page-aligned frames. Throws verify::InvariantViolation. */
    void checkInvariants() const;

    /** Tag for (asid, vaddr) at @p level — exposed for tests. */
    static std::uint64_t
    tagOf(std::uint16_t asid, Addr vaddr, unsigned level)
    {
        const Addr vpnBits =
            vaddr >> (kPageBits + (level - 1) * kPtIndexBits);
        return (static_cast<std::uint64_t>(asid) << 48) ^ vpnBits;
    }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        Addr frame = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    /** caches_[l-2] holds PSCL_l. */
    std::array<std::vector<Entry>, 4> caches_;
    Cycle latency_;
    std::uint64_t clock_ = 1;
    PscStats stats_;
};

} // namespace tacsim

#endif // TACSIM_VM_PSC_HH
