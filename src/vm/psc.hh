/**
 * @file
 * Paging-structure caches (PSCs). PSCL_l caches level-l PTEs: given the
 * virtual-address bits that index levels kPtLevels..l, it returns the
 * physical frame of the level-(l-1) table, letting the walker skip the
 * upper levels. Four PSCs exist for a five-level table (PSCL5..PSCL2);
 * they are searched in parallel in one cycle, and the deepest hit wins
 * (paper §II-A, Table I: 2/4/8/32 entries).
 *
 * With huge pages a walk may terminate above level 1: a 2M mapping has
 * no level-1 table, so PSCL2 must never hold an entry for that region.
 * Each entry records the leaf level of the walk that installed it, which
 * the verifier uses to catch fills for skipped levels.
 */

#ifndef TACSIM_VM_PSC_HH
#define TACSIM_VM_PSC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace tacsim {

struct PscStats
{
    /** hitsAtLevel[l-1]: lookups resolved by PSCL_l (l in 2..5). */
    std::array<std::uint64_t, kPtLevels + 1> hitsAtLevel = {};
    std::uint64_t lookups = 0;
    std::uint64_t fullMisses = 0;

    void reset() { *this = PscStats{}; }
};

/** The four PSCs of one walker, fully associative, LRU. */
class PagingStructureCaches
{
  public:
    /** Entry counts for PSCL2..PSCL5 (index 0 -> PSCL2). */
    explicit PagingStructureCaches(std::array<std::uint32_t, 4> sizes =
                                       {32, 8, 4, 2},
                                   Cycle latency = 1);

    /**
     * Find the deepest cached level for (asid, vaddr).
     *
     * @param nextTableFrame out: frame of the level-(startLevel) table to
     *        read first.
     * @return the level the walk should *start* at (1..kPtLevels). A
     *         return of kPtLevels means full walk from the root; a return
     *         of 1 means only the leaf PTE must be read (PSCL2 hit).
     *         For a huge-page mapping the walker clamps this to the
     *         mapping's leaf level.
     */
    unsigned lookup(std::uint16_t asid, Addr vaddr, Addr &nextTableFrame);

    /**
     * Fill PSCL_l with the level-l entry: tag = VA bits for levels >= l,
     * payload = frame of the level-(l-1) table. @p leafLevel is the leaf
     * level of the walk doing the fill; a fill at or below the leaf is
     * ignored (the child table does not exist).
     */
    void fill(std::uint16_t asid, Addr vaddr, unsigned level,
              Addr childTableFrame, unsigned leafLevel = 1);

    Cycle latency() const { return latency_; }
    const PscStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    void flush();

    /** Visit every valid entry as (level, asid, vaddr, frame, leafLevel);
     *  vaddr is the filling VA truncated to the level's coverage. */
    void forEachEntry(
        const std::function<void(unsigned, std::uint16_t, Addr, Addr,
                                 unsigned)> &fn) const;

    /** Verify per-PSC invariants: unique valid tags, LRU stamps behind
     *  the clock, page-aligned frames, tags consistent with the recorded
     *  VA, and no entry at or below its walk's leaf level.
     *  Throws verify::InvariantViolation. */
    void checkInvariants() const;

    /** Raw entry write bypassing fill()'s filters — verifier tests use
     *  this to seed corrupted state (e.g. a PSCL2 entry for a 2M leaf). */
    void pokeForTest(unsigned level, std::uint32_t index,
                     std::uint16_t asid, Addr vaddr, Addr frame,
                     unsigned leafLevel = 1);

    /** Checkpoint the four arrays + LRU clock (tacsim-ckpt-v1). */
    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

    /** Tag for (asid, vaddr) at @p level — exposed for tests. */
    static std::uint64_t
    tagOf(std::uint16_t asid, Addr vaddr, unsigned level)
    {
        const Addr vpnBits =
            vaddr >> (kPageBits + (level - 1) * kPtIndexBits);
        return (static_cast<std::uint64_t>(asid) << 48) ^ vpnBits;
    }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        Addr frame = 0;
        /** Filling VA truncated to this level's coverage (for verify). */
        Addr va = 0;
        std::uint64_t lru = 0;
        std::uint16_t asid = 0;
        std::uint8_t leafLevel = 1; ///< leaf level of the filling walk
        bool valid = false;
    };

    /** caches_[l-2] holds PSCL_l. */
    std::array<std::vector<Entry>, 4> caches_;
    Cycle latency_;
    std::uint64_t clock_ = 1;
    PscStats stats_;
};

} // namespace tacsim

#endif // TACSIM_VM_PSC_HH
