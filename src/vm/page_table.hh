/**
 * @file
 * Five-level radix page table (57-bit virtual addresses, 4KB pages, 8B
 * PTEs) with a physical frame allocator. This is the simulated OS's view:
 * tables are built lazily on first touch and live at real (simulated)
 * physical addresses so that page-table-walker reads travel through the
 * cache hierarchy like any other access (paper §II-A).
 */

#ifndef TACSIM_VM_PAGE_TABLE_HH
#define TACSIM_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace tacsim {

/**
 * Hands out 4KB physical frames. Shared by all address spaces in a
 * system so frames never collide. Frames are assigned sequentially in
 * first-touch order, which is what a first-touch OS allocator produces.
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(Addr base = kPageSize) : next_(base) {}

    /** Allocate one frame; returns its physical base address. */
    Addr
    alloc()
    {
        Addr f = next_;
        next_ += kPageSize;
        return f;
    }

    /** Total bytes of physical memory handed out. */
    Addr allocated() const { return next_; }

  private:
    Addr next_;
};

/**
 * One address space's page table. walk() returns the PTE physical
 * address at every level plus the final data physical address, which is
 * exactly what the page-table walker needs to generate its accesses.
 */
class PageTable
{
  public:
    /** Result of walking one virtual address. */
    struct WalkResult
    {
        /** pteAddr[l-1] = physical address of the level-l PTE
         *  (l = 1 leaf ... kPtLevels root). */
        std::array<Addr, kPtLevels> pteAddr;
        /** tableFrame[l-1] = physical base of the level-l table page. */
        std::array<Addr, kPtLevels> tableFrame;
        Addr dataPaddr = 0; ///< translated physical address
    };

    explicit PageTable(FrameAllocator &alloc)
        : alloc_(&alloc), root_(std::make_unique<Node>(alloc.alloc()))
    {}

    /**
     * Walk (and on first touch, build) the translation for @p vaddr.
     * Deterministic: the same touch order yields the same frames.
     */
    WalkResult
    walk(Addr vaddr)
    {
        WalkResult r;
        Node *node = root_.get();
        for (unsigned level = kPtLevels; level >= 2; --level) {
            const unsigned idx = ptIndex(vaddr, level);
            r.tableFrame[level - 1] = node->frame;
            r.pteAddr[level - 1] = node->frame + idx * kPteSize;
            if (!node->children[idx])
                node->children[idx] = std::make_unique<Node>(alloc_->alloc());
            node = node->children[idx].get();
        }
        const unsigned idx = ptIndex(vaddr, 1);
        r.tableFrame[0] = node->frame;
        r.pteAddr[0] = node->frame + idx * kPteSize;
        if (node->leafPfn[idx] == 0)
            node->leafPfn[idx] = alloc_->alloc();
        r.dataPaddr = node->leafPfn[idx] | (vaddr & (kPageSize - 1));
        return r;
    }

    /** Translate without exposing walk internals. */
    Addr translate(Addr vaddr) { return walk(vaddr).dataPaddr; }

    /** Number of page-table pages built so far (all levels). */
    std::uint64_t tablePages() const { return countNodes(root_.get()); }

    /** Physical base of the root (CR3 analogue). */
    Addr rootFrame() const { return root_->frame; }

  private:
    struct Node
    {
        explicit Node(Addr f) : frame(f), leafPfn(kPtEntries, 0)
        {
            children.resize(kPtEntries);
        }

        Addr frame;
        std::vector<std::unique_ptr<Node>> children;
        std::vector<Addr> leafPfn; ///< used only by level-1 tables
    };

    static std::uint64_t
    countNodes(const Node *n)
    {
        std::uint64_t c = 1;
        for (const auto &ch : n->children)
            if (ch)
                c += countNodes(ch.get());
        return c;
    }

    FrameAllocator *alloc_;
    std::unique_ptr<Node> root_;
};

} // namespace tacsim

#endif // TACSIM_VM_PAGE_TABLE_HH
