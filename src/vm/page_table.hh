/**
 * @file
 * Five-level radix page table (57-bit virtual addresses, 8B PTEs) with a
 * physical frame allocator. This is the simulated OS's view: tables are
 * built lazily on first touch and live at real (simulated) physical
 * addresses so that page-table-walker reads travel through the cache
 * hierarchy like any other access (paper §II-A).
 *
 * Mappings are not restricted to 4KB: a leaf PTE may sit at level 1
 * (4KB), level 2 (2MB) or level 3 (1GB). Which granule backs a virtual
 * region is decided on first touch, either by an explicit mapRegion()
 * override or by a deterministic THP-style policy that promotes a
 * configurable fraction of 2M/1G-aligned regions to huge pages.
 */

#ifndef TACSIM_VM_PAGE_TABLE_HH
#define TACSIM_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace tacsim {

/**
 * Hands out physical frames. Shared by all address spaces in a system so
 * frames never collide. Frames are assigned in first-touch order, which
 * is what a first-touch OS allocator produces; huge-page requests are
 * aligned up to their own size so a frame base ORed with a page offset
 * is always a valid physical address.
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(Addr base = kPageSize) : next_(base) {}

    /** Allocate one naturally-aligned frame of @p bytes (a power of
     *  two, default 4KB); returns its physical base address. */
    Addr
    alloc(Addr bytes = kPageSize)
    {
        TACSIM_DCHECK(bytes >= kPageSize && (bytes & (bytes - 1)) == 0);
        Addr f = (next_ + bytes - 1) & ~(bytes - 1);
        next_ = f + bytes;
        return f;
    }

    /** Total bytes of physical memory handed out. */
    Addr allocated() const { return next_; }

    /** Checkpoint seams: the allocator is one cursor. */
    void saveState(SerialWriter &w) const { w.putU64(next_); }
    void loadState(SerialReader &r) { next_ = r.getU64(); }

  private:
    Addr next_;
};

/**
 * THP-style huge-page policy: the fraction of 2M-aligned (and 1G-aligned)
 * virtual regions backed by a single huge page instead of a 4K subtree.
 * Decisions are a pure hash of (seed, region index), so the same policy
 * applied to the same touch order yields the same mapping — and fraction
 * 1.0 / 0.0 are exact, not probabilistic.
 */
struct HugePagePolicy
{
    double fraction2M = 0.0; ///< fraction of 2M regions mapped as 2M
    double fraction1G = 0.0; ///< fraction of 1G regions mapped as 1G
    std::uint64_t seed = 1;

    bool
    none() const
    {
        return fraction2M <= 0.0 && fraction1G <= 0.0;
    }

    /** Deterministic draw: does region @p index at @p ps get promoted? */
    bool
    promotes(Addr index, PageSize ps) const
    {
        const double f =
            ps == PageSize::Size1G ? fraction1G : fraction2M;
        if (f <= 0.0)
            return false;
        if (f >= 1.0)
            return true;
        const std::uint64_t h = hashCombine(
            hashMix(seed + static_cast<unsigned>(ps)), index);
        return static_cast<double>(h >> 11) * 0x1.0p-53 < f;
    }
};

/**
 * One address space's page table. walk() returns the PTE physical
 * address at every level read plus the final data physical address,
 * which is exactly what the page-table walker needs to generate its
 * accesses. A walk of a huge-page mapping terminates early: pteAddr[]
 * entries below the leaf level are unused (zero).
 */
class PageTable
{
  public:
    /** Result of walking one virtual address. */
    struct WalkResult
    {
        /** pteAddr[l-1] = physical address of the level-l PTE
         *  (l = leafLevel ... kPtLevels root; 0 below the leaf). */
        std::array<Addr, kPtLevels> pteAddr = {};
        /** tableFrame[l-1] = physical base of the level-l table page. */
        std::array<Addr, kPtLevels> tableFrame = {};
        Addr dataPaddr = 0;      ///< translated physical address
        unsigned leafLevel = 1;  ///< level of the leaf PTE (1/2/3)
        PageSize pageSize = PageSize::Size4K; ///< mapping granule
    };

    explicit PageTable(FrameAllocator &alloc, HugePagePolicy policy = {})
        : alloc_(&alloc),
          policy_(policy),
          root_(std::make_unique<Node>(alloc.alloc()))
    {}

    /**
     * Force [base, base + bytes) to map at granule @p ps (first-touch
     * builds honor it). Overrides beat the fractional policy; base and
     * bytes must be aligned to pageBytes(ps).
     */
    void
    mapRegion(Addr base, Addr bytes, PageSize ps)
    {
        TACSIM_CHECK(pageAlign(base, ps) == base &&
                     bytes % pageBytes(ps) == 0 &&
                     "mapRegion bounds must be page-size aligned");
        overrides_.push_back(Override{base, base + bytes, ps});
    }

    /**
     * Walk (and on first touch, build) the translation for @p vaddr.
     * Deterministic: the same touch order yields the same frames.
     */
    WalkResult
    walk(Addr vaddr)
    {
        const unsigned leafLevel = leafLevelFor(vaddr);
        const PageSize ps = pageSizeForLevel(leafLevel);
        WalkResult r;
        r.leafLevel = leafLevel;
        r.pageSize = ps;
        Node *node = root_.get();
        for (unsigned level = kPtLevels; level > leafLevel; --level) {
            const unsigned idx = ptIndex(vaddr, level);
            r.tableFrame[level - 1] = node->frame;
            r.pteAddr[level - 1] = node->frame + idx * kPteSize;
            TACSIM_DCHECK(node->leafPfn[idx] == 0 &&
                          "table descends through a huge-page leaf");
            if (!node->children[idx])
                node->children[idx] = std::make_unique<Node>(alloc_->alloc());
            node = node->children[idx].get();
        }
        const unsigned idx = ptIndex(vaddr, leafLevel);
        r.tableFrame[leafLevel - 1] = node->frame;
        r.pteAddr[leafLevel - 1] = node->frame + idx * kPteSize;
        TACSIM_DCHECK(!node->children[idx] &&
                      "huge-page leaf aliases an existing subtree");
        if (node->leafPfn[idx] == 0)
            node->leafPfn[idx] = alloc_->alloc(pageBytes(ps));
        r.dataPaddr = node->leafPfn[idx] | pageOffset(vaddr, ps);
        return r;
    }

    /** Translate without exposing walk internals. */
    Addr translate(Addr vaddr) { return walk(vaddr).dataPaddr; }

    /** Mapping granule that (would) back @p vaddr. */
    PageSize
    pageSizeOf(Addr vaddr) const
    {
        return pageSizeForLevel(leafLevelFor(vaddr));
    }

    /** Number of page-table pages built so far (all levels). */
    std::uint64_t tablePages() const { return countNodes(root_.get()); }

    /** Physical base of the root (CR3 analogue). */
    Addr rootFrame() const { return root_->frame; }

    const HugePagePolicy &policy() const { return policy_; }

    /**
     * Checkpoint the lazily-built radix tree as a sparse recursive dump
     * (frame + populated leaf slots + populated children per node). The
     * FrameAllocator cursor is saved separately by the owner; restoring
     * both reproduces the exact first-touch frame assignment, so a
     * restored run allocates identical frames for new pages.
     */
    void
    saveState(SerialWriter &w) const
    {
        w.putU64(overrides_.size());
        for (const Override &o : overrides_) {
            w.putU64(o.begin);
            w.putU64(o.end);
            w.putU8(static_cast<std::uint8_t>(o.ps));
        }
        saveNode(w, root_.get());
    }

    void
    loadState(SerialReader &r)
    {
        // Overrides are configuration (mapRegion calls), not mutable
        // state: the rebuilt system must have made the same calls.
        const std::uint64_t n = r.getU64();
        if (n != overrides_.size())
            throw std::runtime_error(
                "checkpoint: page-table mapRegion overrides differ");
        for (const Override &o : overrides_) {
            if (r.getU64() != o.begin || r.getU64() != o.end ||
                r.getU8() != static_cast<std::uint8_t>(o.ps))
                throw std::runtime_error(
                    "checkpoint: page-table mapRegion overrides differ");
        }
        root_ = loadNode(r);
    }

  private:
    struct Node
    {
        explicit Node(Addr f) : frame(f), leafPfn(kPtEntries, 0)
        {
            children.resize(kPtEntries);
        }

        Addr frame;
        std::vector<std::unique_ptr<Node>> children;
        std::vector<Addr> leafPfn; ///< nonzero where this node holds leaves
    };

    struct Override
    {
        Addr begin, end;
        PageSize ps;
    };

    /** Level of the leaf PTE backing @p vaddr (1 = 4K, 2 = 2M, 3 = 1G). */
    unsigned
    leafLevelFor(Addr vaddr) const
    {
        for (const Override &o : overrides_) {
            if (vaddr >= o.begin && vaddr < o.end)
                return leafLevelOf(o.ps);
        }
        if (policy_.none())
            return 1;
        if (policy_.promotes(pageNumber(vaddr, PageSize::Size1G),
                             PageSize::Size1G))
            return leafLevelOf(PageSize::Size1G);
        if (policy_.promotes(pageNumber(vaddr, PageSize::Size2M),
                             PageSize::Size2M))
            return leafLevelOf(PageSize::Size2M);
        return 1;
    }

    static std::uint64_t
    countNodes(const Node *n)
    {
        std::uint64_t c = 1;
        for (const auto &ch : n->children)
            if (ch)
                c += countNodes(ch.get());
        return c;
    }

    static void
    saveNode(SerialWriter &w, const Node *n)
    {
        w.putU64(n->frame);
        std::uint32_t leaves = 0;
        for (Addr pfn : n->leafPfn)
            leaves += pfn != 0;
        w.putU32(leaves);
        for (std::uint32_t i = 0; i < kPtEntries; ++i) {
            if (n->leafPfn[i] != 0) {
                w.putU32(i);
                w.putU64(n->leafPfn[i]);
            }
        }
        std::uint32_t kids = 0;
        for (const auto &ch : n->children)
            kids += ch != nullptr;
        w.putU32(kids);
        for (std::uint32_t i = 0; i < kPtEntries; ++i) {
            if (n->children[i]) {
                w.putU32(i);
                saveNode(w, n->children[i].get());
            }
        }
    }

    static std::unique_ptr<Node>
    loadNode(SerialReader &r)
    {
        auto n = std::make_unique<Node>(r.getU64());
        const std::uint32_t leaves = r.getU32();
        for (std::uint32_t i = 0; i < leaves; ++i) {
            const std::uint32_t idx = r.getU32();
            if (idx >= kPtEntries)
                throw std::runtime_error(
                    "checkpoint: page-table leaf index out of range");
            n->leafPfn[idx] = r.getU64();
        }
        const std::uint32_t kids = r.getU32();
        for (std::uint32_t i = 0; i < kids; ++i) {
            const std::uint32_t idx = r.getU32();
            if (idx >= kPtEntries)
                throw std::runtime_error(
                    "checkpoint: page-table child index out of range");
            n->children[idx] = loadNode(r);
        }
        return n;
    }

    FrameAllocator *alloc_;
    HugePagePolicy policy_;
    std::vector<Override> overrides_;
    std::unique_ptr<Node> root_;
};

} // namespace tacsim

#endif // TACSIM_VM_PAGE_TABLE_HH
