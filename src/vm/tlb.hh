/**
 * @file
 * Set-associative TLB (used for DTLB, ITLB and the unified STLB) with LRU
 * replacement, plus an optional recall-distance profiler for the paper's
 * Fig. 18.
 *
 * Lookups are functional; the owning core/walker charges the latency.
 * Entries are keyed by (ASID, VPN) so SMT threads and multi-core
 * workloads can share a structure without aliasing.
 */

#ifndef TACSIM_VM_TLB_HH
#define TACSIM_VM_TLB_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/recall_profiler.hh"
#include "common/set_index.hh"
#include "common/types.hh"

namespace tacsim {

namespace obs {
class Registry;
} // namespace obs

struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    void reset() { *this = TlbStats{}; }
};

class Tlb
{
  public:
    /**
     * @param entries total entries (must be ways * power-of-two sets)
     * @param ways associativity
     * @param latency lookup latency in cycles (charged by the caller)
     */
    Tlb(std::string name, std::uint32_t entries, std::uint32_t ways,
        Cycle latency, bool profileRecall = false);

    /**
     * Look up (asid, vpn). On a hit, writes the PFN (page-aligned
     * physical address) to @p pfn and refreshes LRU.
     */
    bool lookup(std::uint16_t asid, Addr vpn, Addr &pfn);

    /** Probe without updating LRU or stats (for prefetcher hooks). */
    bool probe(std::uint16_t asid, Addr vpn, Addr &pfn) const;

    /** Install a translation (evicting LRU within the set). */
    void fill(std::uint16_t asid, Addr vpn, Addr pfn);

    /** Drop everything (context-switch style). */
    void flush();

    Cycle latency() const { return latency_; }
    const TlbStats &stats() const { return stats_; }
    void resetStats();

    /** Register counters (and recall histograms when profiled) under
     *  "@p prefix.", plus the reset hook. */
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);
    const std::string &name() const { return name_; }
    std::uint32_t entries() const { return sets_ * ways_; }
    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    const RecallProfiler *recallProfiler() const { return profiler_.get(); }

    /** Visit every valid entry as (asid, vpn, pfn). */
    void forEachEntry(
        const std::function<void(std::uint16_t, Addr, Addr)> &fn) const;

    /**
     * Verify structural invariants: unique keys per set, entries indexed
     * into the right set, LRU stamps behind the clock, page-aligned PFNs.
     * Throws verify::InvariantViolation.
     */
    void checkInvariants() const;

    /** Raw entry write bypassing fill()'s dedup/refresh — verifier tests
     *  use this to seed corrupted state (duplicate keys, bogus PFNs). */
    void pokeForTest(std::uint32_t set, std::uint32_t way,
                     std::uint16_t asid, Addr vpn, Addr pfn);

  private:
    struct Entry
    {
        std::uint64_t key = 0; ///< (asid << 52) | vpn, +1 bias for valid
        Addr pfn = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    static std::uint64_t
    keyOf(std::uint16_t asid, Addr vpn)
    {
        return (static_cast<std::uint64_t>(asid) << 52) | vpn;
    }

    std::uint32_t setOf(Addr vpn) const { return indexer_.index(vpn); }

    std::string name_;
    std::uint32_t sets_;
    SetIndexer indexer_;
    std::uint32_t ways_;
    Cycle latency_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 1;
    TlbStats stats_;
    std::unique_ptr<RecallProfiler> profiler_;
};

} // namespace tacsim

#endif // TACSIM_VM_TLB_HH
