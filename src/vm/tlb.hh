/**
 * @file
 * Set-associative TLB (used for DTLB, ITLB and the unified STLB) with LRU
 * replacement, plus an optional recall-distance profiler for the paper's
 * Fig. 18.
 *
 * Lookups are functional; the owning core/walker charges the latency.
 * Entries are keyed by (ASID, VPN, page size) so SMT threads and
 * multi-core workloads can share a structure without aliasing, and so a
 * single array can hold 4K, 2M and 1G translations side by side (a
 * skewed/shared design: each page size indexes the sets with its own
 * VPN bits). Per-size occupancy counters let the common all-4K case
 * probe exactly one set, keeping the hot path as cheap as before.
 */

#ifndef TACSIM_VM_TLB_HH
#define TACSIM_VM_TLB_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/recall_profiler.hh"
#include "common/serialize.hh"
#include "common/set_index.hh"
#include "common/types.hh"

namespace tacsim {

namespace obs {
class Registry;
} // namespace obs

struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** hits/fills broken out by mapping granule (indexed by PageSize). */
    std::array<std::uint64_t, kNumPageSizes> hitsBySize = {};
    std::array<std::uint64_t, kNumPageSizes> fillsBySize = {};

    void reset() { *this = TlbStats{}; }
};

class Tlb
{
  public:
    /**
     * @param entries total entries (must be ways * power-of-two sets)
     * @param ways associativity
     * @param latency lookup latency in cycles (charged by the caller)
     */
    Tlb(std::string name, std::uint32_t entries, std::uint32_t ways,
        Cycle latency, bool profileRecall = false);

    /**
     * Look up @p vaddr in address space @p asid. On a hit, writes the
     * mapping's page-aligned physical base to @p pfnBase, its granule to
     * @p ps, and refreshes LRU. The caller composes the full physical
     * address as pfnBase | pageOffset(vaddr, ps).
     */
    bool lookup(std::uint16_t asid, Addr vaddr, Addr &pfnBase,
                PageSize &ps);

    /** Convenience overload: writes the full translated physical
     *  address of @p vaddr to @p paddr. */
    bool lookup(std::uint16_t asid, Addr vaddr, Addr &paddr);

    /** Probe without updating LRU or stats (for prefetcher hooks);
     *  writes the full translated physical address. */
    bool probe(std::uint16_t asid, Addr vaddr, Addr &paddr) const;

    /**
     * Install a translation covering the @p ps page around @p vaddr,
     * backed by physical base @p pfnBase (aligned to pageBytes(ps));
     * evicts LRU within the set.
     */
    void fill(std::uint16_t asid, Addr vaddr, Addr pfnBase,
              PageSize ps = PageSize::Size4K);

    /** Drop everything (context-switch style). */
    void flush();

    Cycle latency() const { return latency_; }
    const TlbStats &stats() const { return stats_; }
    void resetStats();

    /** Register counters (and recall histograms when profiled) under
     *  "@p prefix.", plus the reset hook. */
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);
    const std::string &name() const { return name_; }
    std::uint32_t entries() const { return sets_ * ways_; }
    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    const RecallProfiler *recallProfiler() const { return profiler_.get(); }

    /** Visit every valid entry as (asid, vpn, pfnBase, pageSize); vpn is
     *  at the entry's own granule (vaddr >> pageShift(pageSize)). */
    void forEachEntry(const std::function<void(std::uint16_t, Addr, Addr,
                                               PageSize)> &fn) const;

    /**
     * Verify structural invariants: unique (asid, vpn, size) per set,
     * entries indexed into the right set, LRU stamps behind the clock,
     * PFNs aligned to their own page size, and no two entries of
     * different sizes covering overlapping virtual ranges.
     * Throws verify::InvariantViolation.
     */
    void checkInvariants() const;

    /** Raw entry write bypassing fill()'s dedup/refresh — verifier tests
     *  use this to seed corrupted state (duplicate keys, bogus PFNs). */
    void pokeForTest(std::uint32_t set, std::uint32_t way,
                     std::uint16_t asid, Addr vpn, Addr pfn,
                     PageSize ps = PageSize::Size4K);

    /** Checkpoint the array contents + LRU clock (tacsim-ckpt-v1). */
    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    struct Entry
    {
        Addr vpn = 0; ///< vaddr >> pageShift(size)
        Addr pfn = 0; ///< physical base, aligned to pageBytes(size)
        std::uint64_t lru = 0;
        std::uint16_t asid = 0;
        PageSize size = PageSize::Size4K;
        bool valid = false;
    };

    /** Key the recall profiler by 4K VPN so its distance accounting is
     *  granule-independent (and unchanged for all-4K runs). */
    static std::uint64_t
    profileKeyOf(std::uint16_t asid, Addr vaddr)
    {
        return (static_cast<std::uint64_t>(asid) << 52) |
            pageNumber(vaddr);
    }

    std::uint32_t setOf(Addr vpn) const { return indexer_.index(vpn); }

    std::string name_;
    std::uint32_t sets_;
    SetIndexer indexer_;
    std::uint32_t ways_;
    Cycle latency_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 1;
    TlbStats stats_;
    /** Valid-entry count per granule; sizes with zero entries are
     *  skipped during lookup, so all-4K runs probe one set. */
    std::array<std::uint32_t, kNumPageSizes> sizeCount_ = {};
    std::unique_ptr<RecallProfiler> profiler_;
};

} // namespace tacsim

#endif // TACSIM_VM_TLB_HH
