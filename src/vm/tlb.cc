#include "vm/tlb.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

Tlb::Tlb(std::string name, std::uint32_t entries, std::uint32_t ways,
         Cycle latency, bool profileRecall)
    : name_(std::move(name)),
      sets_(entries / ways),
      indexer_(sets_, 0),
      ways_(ways),
      latency_(latency),
      entries_(static_cast<std::size_t>(entries))
{
    TACSIM_CHECK(entries % ways == 0);
    if (profileRecall)
        profiler_ = std::make_unique<RecallProfiler>(sets_, 1);
}

bool
Tlb::lookup(std::uint16_t asid, Addr vaddr, Addr &pfnBase, PageSize &ps)
{
    ++stats_.accesses;
    if (profiler_) {
        profiler_->onAccess(setOf(pageNumber(vaddr)),
                            profileKeyOf(asid, vaddr), BlockCat::PtLeaf);
    }
    for (PageSize s : kAllPageSizes) {
        if (sizeCount_[static_cast<unsigned>(s)] == 0)
            continue;
        const Addr vpn = pageNumber(vaddr, s);
        const std::size_t base =
            static_cast<std::size_t>(setOf(vpn)) * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            Entry &e = entries_[base + w];
            if (e.valid && e.size == s && e.asid == asid &&
                e.vpn == vpn) {
                e.lru = clock_++;
                pfnBase = e.pfn;
                ps = s;
                ++stats_.hits;
                ++stats_.hitsBySize[static_cast<unsigned>(s)];
                return true;
            }
        }
    }
    ++stats_.misses;
    return false;
}

bool
Tlb::lookup(std::uint16_t asid, Addr vaddr, Addr &paddr)
{
    Addr pfnBase = 0;
    PageSize ps = PageSize::Size4K;
    if (!lookup(asid, vaddr, pfnBase, ps))
        return false;
    paddr = pfnBase | pageOffset(vaddr, ps);
    return true;
}

bool
Tlb::probe(std::uint16_t asid, Addr vaddr, Addr &paddr) const
{
    for (PageSize s : kAllPageSizes) {
        if (sizeCount_[static_cast<unsigned>(s)] == 0)
            continue;
        const Addr vpn = pageNumber(vaddr, s);
        const std::size_t base =
            static_cast<std::size_t>(setOf(vpn)) * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const Entry &e = entries_[base + w];
            if (e.valid && e.size == s && e.asid == asid &&
                e.vpn == vpn) {
                paddr = e.pfn | pageOffset(vaddr, s);
                return true;
            }
        }
    }
    return false;
}

void
Tlb::fill(std::uint16_t asid, Addr vaddr, Addr pfnBase, PageSize ps)
{
    TACSIM_DCHECK(pageAlign(pfnBase, ps) == pfnBase);
    const Addr vpn = pageNumber(vaddr, ps);
    const std::uint32_t set = setOf(vpn);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    ++stats_.fillsBySize[static_cast<unsigned>(ps)];
    Entry *victim = &entries_[base];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.size == ps && e.asid == asid && e.vpn == vpn) {
            e.pfn = pfnBase; // refresh in place
            e.lru = clock_++;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    if (victim->valid) {
        --sizeCount_[static_cast<unsigned>(victim->size)];
        if (profiler_) {
            const Addr victimVa = victim->vpn << pageShift(victim->size);
            profiler_->onEvict(set, profileKeyOf(victim->asid, victimVa),
                               BlockCat::PtLeaf);
        }
    }
    victim->valid = true;
    victim->asid = asid;
    victim->vpn = vpn;
    victim->size = ps;
    victim->pfn = pfnBase;
    victim->lru = clock_++;
    ++sizeCount_[static_cast<unsigned>(ps)];
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    sizeCount_ = {};
}

void
Tlb::resetStats()
{
    stats_.reset();
    if (profiler_)
        profiler_->reset();
}

void
Tlb::registerMetrics(obs::Registry &registry, const std::string &prefix)
{
    registry.addCounter(prefix + ".accesses", &stats_.accesses);
    registry.addCounter(prefix + ".hits", &stats_.hits);
    registry.addCounter(prefix + ".misses", &stats_.misses);
    for (PageSize ps : kAllPageSizes) {
        const unsigned s = static_cast<unsigned>(ps);
        registry.addCounter(
            prefix + ".hits_" + pageSizeName(ps), &stats_.hitsBySize[s]);
        registry.addCounter(
            prefix + ".fills_" + pageSizeName(ps), &stats_.fillsBySize[s]);
    }
    // A TLB's profiler only ever records translation recalls (entries
    // are PTEs), so the replay/data histograms are not exported.
    if (profiler_)
        registry.addHistogram(prefix + ".recall.translation",
                              &profiler_->translationHist());
    registry.addResetHook([this] { resetStats(); });
}

void
Tlb::forEachEntry(
    const std::function<void(std::uint16_t, Addr, Addr, PageSize)> &fn)
    const
{
    for (const Entry &e : entries_) {
        if (e.valid)
            fn(e.asid, e.vpn, e.pfn, e.size);
    }
}

void
Tlb::pokeForTest(std::uint32_t set, std::uint32_t way, std::uint16_t asid,
                 Addr vpn, Addr pfn, PageSize ps)
{
    Entry &e = entries_[static_cast<std::size_t>(set) * ways_ + way];
    if (e.valid)
        --sizeCount_[static_cast<unsigned>(e.size)];
    e.valid = true;
    e.asid = asid;
    e.vpn = vpn;
    e.size = ps;
    e.pfn = pfn;
    e.lru = clock_++;
    ++sizeCount_[static_cast<unsigned>(ps)];
}

void
Tlb::checkInvariants() const
{
    using verify::InvariantViolation;
    struct Range
    {
        std::uint16_t asid;
        Addr begin, end;
        PageSize size;
        std::uint32_t set, way;
    };
    std::vector<Range> ranges;
    for (std::uint32_t set = 0; set < sets_; ++set) {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const Entry &e = entries_[base + w];
            if (!e.valid)
                continue;
            std::ostringstream ctx;
            ctx << std::hex << "asid=" << e.asid << " vpn=0x" << e.vpn
                << " pfn=0x" << e.pfn << std::dec << " size="
                << pageSizeName(e.size) << " lru=" << e.lru;
            if (setOf(e.vpn) != set)
                throw InvariantViolation(name_, "set-mismatch", ctx.str(),
                                         set, w);
            if (e.pfn != pageAlign(e.pfn, e.size))
                throw InvariantViolation(name_, "pfn-align", ctx.str(),
                                         set, w);
            if (e.lru == 0 || e.lru >= clock_)
                throw InvariantViolation(name_, "lru-clock", ctx.str(),
                                         set, w);
            for (std::uint32_t w2 = w + 1; w2 < ways_; ++w2) {
                const Entry &other = entries_[base + w2];
                if (other.valid && other.size == e.size &&
                    other.asid == e.asid && other.vpn == e.vpn)
                    throw InvariantViolation(name_, "duplicate-key",
                                             ctx.str(), set, w2);
            }
            const Addr begin = e.vpn << pageShift(e.size);
            ranges.push_back(Range{e.asid, begin,
                                   begin + pageBytes(e.size), e.size, set,
                                   w});
        }
    }
    // Two live entries of different granules must never cover the same
    // virtual address: that is a mapping alias the walker can't produce.
    std::sort(ranges.begin(), ranges.end(),
              [](const Range &a, const Range &b) {
                  return a.asid != b.asid ? a.asid < b.asid
                                          : a.begin < b.begin;
              });
    for (std::size_t i = 1; i < ranges.size(); ++i) {
        const Range &prev = ranges[i - 1];
        const Range &cur = ranges[i];
        if (prev.asid == cur.asid && cur.begin < prev.end &&
            prev.size != cur.size) {
            std::ostringstream ctx;
            ctx << std::hex << "asid=" << cur.asid << " va=0x"
                << cur.begin << " covered at both "
                << pageSizeName(prev.size) << " and "
                << pageSizeName(cur.size);
            throw InvariantViolation(name_, "mixed-size-alias", ctx.str(),
                                     cur.set, cur.way);
        }
    }
}

void
Tlb::saveState(SerialWriter &w) const
{
    if (profiler_)
        throw std::runtime_error(
            "checkpoint: TLB '" + name_ +
            "' has a recall profiler attached (unsupported)");
    w.putU64(clock_);
    w.putU64(entries_.size());
    for (const Entry &e : entries_) {
        w.putU64(e.vpn);
        w.putU64(e.pfn);
        w.putU64(e.lru);
        w.putU16(e.asid);
        w.putU8(static_cast<std::uint8_t>(e.size));
        w.putBool(e.valid);
    }
}

void
Tlb::loadState(SerialReader &r)
{
    if (profiler_)
        throw std::runtime_error(
            "checkpoint: TLB '" + name_ +
            "' has a recall profiler attached (unsupported)");
    clock_ = r.getU64();
    if (r.getU64() != entries_.size())
        throw std::runtime_error("checkpoint: TLB '" + name_ +
                                 "' geometry mismatch");
    sizeCount_.fill(0);
    for (Entry &e : entries_) {
        e.vpn = r.getU64();
        e.pfn = r.getU64();
        e.lru = r.getU64();
        e.asid = r.getU16();
        const std::uint8_t size = r.getU8();
        if (size >= kNumPageSizes)
            throw std::runtime_error("checkpoint: TLB '" + name_ +
                                     "' entry has a bad page size");
        e.size = static_cast<PageSize>(size);
        e.valid = r.getBool();
        if (e.valid)
            ++sizeCount_[size];
    }
}

} // namespace tacsim
