#include "vm/tlb.hh"

#include <sstream>

#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

namespace {
/** Low 52 bits of the entry key hold the VPN, the rest the ASID. */
constexpr std::uint64_t kVpnMask = (std::uint64_t{1} << 52) - 1;
} // namespace

Tlb::Tlb(std::string name, std::uint32_t entries, std::uint32_t ways,
         Cycle latency, bool profileRecall)
    : name_(std::move(name)),
      sets_(entries / ways),
      indexer_(sets_, 0),
      ways_(ways),
      latency_(latency),
      entries_(static_cast<std::size_t>(entries))
{
    TACSIM_CHECK(entries % ways == 0);
    if (profileRecall)
        profiler_ = std::make_unique<RecallProfiler>(sets_, 1);
}

bool
Tlb::lookup(std::uint16_t asid, Addr vpn, Addr &pfn)
{
    ++stats_.accesses;
    const std::uint64_t key = keyOf(asid, vpn);
    const std::size_t base =
        static_cast<std::size_t>(setOf(vpn)) * ways_;
    if (profiler_)
        profiler_->onAccess(setOf(vpn), key, BlockCat::PtLeaf);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.key == key) {
            e.lru = clock_++;
            pfn = e.pfn;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
Tlb::probe(std::uint16_t asid, Addr vpn, Addr &pfn) const
{
    const std::uint64_t key = keyOf(asid, vpn);
    const std::size_t base =
        static_cast<std::size_t>(setOf(vpn)) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Entry &e = entries_[base + w];
        if (e.valid && e.key == key) {
            pfn = e.pfn;
            return true;
        }
    }
    return false;
}

void
Tlb::fill(std::uint16_t asid, Addr vpn, Addr pfn)
{
    const std::uint64_t key = keyOf(asid, vpn);
    const std::uint32_t set = setOf(vpn);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    Entry *victim = &entries_[base];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.key == key) {
            e.pfn = pfn; // refresh in place
            e.lru = clock_++;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    if (victim->valid && profiler_)
        profiler_->onEvict(set, victim->key, BlockCat::PtLeaf);
    victim->valid = true;
    victim->key = key;
    victim->pfn = pfn;
    victim->lru = clock_++;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

void
Tlb::resetStats()
{
    stats_.reset();
    if (profiler_)
        profiler_->reset();
}

void
Tlb::registerMetrics(obs::Registry &registry, const std::string &prefix)
{
    registry.addCounter(prefix + ".accesses", &stats_.accesses);
    registry.addCounter(prefix + ".hits", &stats_.hits);
    registry.addCounter(prefix + ".misses", &stats_.misses);
    // A TLB's profiler only ever records translation recalls (entries
    // are PTEs), so the replay/data histograms are not exported.
    if (profiler_)
        registry.addHistogram(prefix + ".recall.translation",
                              &profiler_->translationHist());
    registry.addResetHook([this] { resetStats(); });
}

void
Tlb::forEachEntry(
    const std::function<void(std::uint16_t, Addr, Addr)> &fn) const
{
    for (const Entry &e : entries_) {
        if (e.valid)
            fn(static_cast<std::uint16_t>(e.key >> 52), e.key & kVpnMask,
               e.pfn);
    }
}

void
Tlb::pokeForTest(std::uint32_t set, std::uint32_t way, std::uint16_t asid,
                 Addr vpn, Addr pfn)
{
    Entry &e = entries_[static_cast<std::size_t>(set) * ways_ + way];
    e.valid = true;
    e.key = keyOf(asid, vpn);
    e.pfn = pfn;
    e.lru = clock_++;
}

void
Tlb::checkInvariants() const
{
    using verify::InvariantViolation;
    for (std::uint32_t set = 0; set < sets_; ++set) {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const Entry &e = entries_[base + w];
            if (!e.valid)
                continue;
            std::ostringstream ctx;
            ctx << std::hex << "key=0x" << e.key << " pfn=0x" << e.pfn
                << std::dec << " lru=" << e.lru;
            if (setOf(e.key & kVpnMask) != set)
                throw InvariantViolation(name_, "set-mismatch", ctx.str(),
                                         set, w);
            if (e.pfn != pageAlign(e.pfn))
                throw InvariantViolation(name_, "pfn-align", ctx.str(),
                                         set, w);
            if (e.lru == 0 || e.lru >= clock_)
                throw InvariantViolation(name_, "lru-clock", ctx.str(),
                                         set, w);
            for (std::uint32_t w2 = w + 1; w2 < ways_; ++w2) {
                const Entry &other = entries_[base + w2];
                if (other.valid && other.key == e.key)
                    throw InvariantViolation(name_, "duplicate-key",
                                             ctx.str(), set, w2);
            }
        }
    }
}

} // namespace tacsim
