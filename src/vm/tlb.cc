#include "vm/tlb.hh"

#include <cassert>

namespace tacsim {

Tlb::Tlb(std::string name, std::uint32_t entries, std::uint32_t ways,
         Cycle latency, bool profileRecall)
    : name_(std::move(name)),
      sets_(entries / ways),
      ways_(ways),
      latency_(latency),
      entries_(static_cast<std::size_t>(entries))
{
    assert(entries % ways == 0);
    assert((sets_ & (sets_ - 1)) == 0 && "TLB sets must be a power of two");
    if (profileRecall)
        profiler_ = std::make_unique<RecallProfiler>(sets_, 1);
}

bool
Tlb::lookup(std::uint16_t asid, Addr vpn, Addr &pfn)
{
    ++stats_.accesses;
    const std::uint64_t key = keyOf(asid, vpn);
    const std::size_t base =
        static_cast<std::size_t>(setOf(vpn)) * ways_;
    if (profiler_)
        profiler_->onAccess(setOf(vpn), key, BlockCat::PtLeaf);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.key == key) {
            e.lru = clock_++;
            pfn = e.pfn;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
Tlb::probe(std::uint16_t asid, Addr vpn, Addr &pfn) const
{
    const std::uint64_t key = keyOf(asid, vpn);
    const std::size_t base =
        static_cast<std::size_t>(setOf(vpn)) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Entry &e = entries_[base + w];
        if (e.valid && e.key == key) {
            pfn = e.pfn;
            return true;
        }
    }
    return false;
}

void
Tlb::fill(std::uint16_t asid, Addr vpn, Addr pfn)
{
    const std::uint64_t key = keyOf(asid, vpn);
    const std::uint32_t set = setOf(vpn);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    Entry *victim = &entries_[base];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.key == key) {
            e.pfn = pfn; // refresh in place
            e.lru = clock_++;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    if (victim->valid && profiler_)
        profiler_->onEvict(set, victim->key, BlockCat::PtLeaf);
    victim->valid = true;
    victim->key = key;
    victim->pfn = pfn;
    victim->lru = clock_++;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

void
Tlb::resetStats()
{
    stats_.reset();
}

} // namespace tacsim
