#include "workloads/xalanc.hh"

#include "workloads/ckpt.hh"

namespace tacsim {

namespace {
constexpr Addr kIpBase = 0x700000;

constexpr Addr
ip(unsigned site)
{
    return kIpBase + site * 4;
}
} // namespace

XalancWorkload::XalancWorkload(XalancParams p)
    : p_(p), rng_(p.seed),
      hotBase_(Addr{1} << 43),
      coldBase_(hotBase_ + (Addr{1} << 35))
{}

TraceRecord
XalancWorkload::next()
{
    while (queue_.empty())
        refill();
    TraceRecord t = queue_.front();
    queue_.pop_front();
    return t;
}

void
XalancWorkload::refill()
{
    auto load = [&](Addr pc, Addr va, bool dep = false) {
        TraceRecord t;
        t.ip = pc;
        t.kind = TraceRecord::Kind::Load;
        t.vaddr = va;
        t.dependsOnPrevLoad = dep;
        queue_.push_back(t);
    };
    auto nonmem = [&](Addr pc, unsigned n) {
        TraceRecord t;
        t.ip = pc;
        for (unsigned i = 0; i < n; ++i)
            queue_.push_back(t);
    };

    // DOM node visit: a short dependent pointer walk through the tiered
    // working sets (hot nodes near the tree root, cooler subtrees).
    auto tierSpan = [&]() -> Addr {
        const double u = rng_.uniform();
        if (u < p_.tier2Fraction)
            return p_.tier2Bytes;
        if (u < p_.tier2Fraction + p_.tier1Fraction)
            return p_.tier1Bytes;
        return p_.tier0Bytes;
    };
    // Draw the tier before the offset: both operands of % pull from
    // rng_, and unsequenced draws made the trace depend on the
    // compiler's evaluation order (caught by the golden suite — the
    // ASan build ordered them differently).
    const Addr span = tierSpan();
    Addr node = hotBase_ + (rng_.next() % span & ~Addr{63});
    load(ip(0), node);
    for (unsigned i = 1; i < p_.chainLength; ++i) {
        node = hotBase_ + (hashCombine(node, i) % tierSpan() & ~Addr{63});
        load(ip(1), node, true);
        nonmem(ip(2), p_.fillerPerNode);
    }

    // String-table / output-buffer excursion into the cold heap (a
    // sliding pool of the full document).
    if (rng_.chance(p_.coldFraction)) {
        const Addr off =
            (poolBase_ + rng_.next() % p_.coldPoolBytes) % p_.coldBytes;
        const Addr cold = coldBase_ + (off & ~Addr{63});
        load(ip(3), cold);
        load(ip(4), cold + 16, true);
        nonmem(ip(5), 3);
        poolBase_ = (poolBase_ + 192) % p_.coldBytes;
    }

    // Result construction: sequential append to the output document.
    if (rng_.chance(0.3)) {
        TraceRecord st;
        st.ip = ip(6);
        st.kind = TraceRecord::Kind::Store;
        st.vaddr = coldBase_ + (Addr{1} << 34) + (out_ % (1u << 24)) * 16;
        ++out_;
        queue_.push_back(st);
    }
}

void
XalancWorkload::saveState(SerialWriter &w) const
{
    workload_ckpt::saveRng(w, rng_);
    w.putU64(poolBase_);
    w.putU64(out_);
    workload_ckpt::saveQueue(w, queue_);
}

void
XalancWorkload::loadState(SerialReader &r)
{
    workload_ckpt::loadRng(r, rng_);
    poolBase_ = r.getU64();
    out_ = r.getU64();
    workload_ckpt::loadQueue(r, queue_);
}

} // namespace tacsim
