/**
 * @file
 * SPEC CPU2017 xalancbmk stand-in. XSLT transformation walks DOM trees:
 * a hot working set of a few megabytes is traversed heavily (reused at
 * L2C/LLC, resident in the STLB), while occasional excursions touch a
 * much larger cold heap. The result is the paper's "Low" STLB MPKI
 * (4.78) combined with a *high* non-replay miss rate at L2C (17.3) —
 * random hits inside a hot region that fits the STLB but not the caches.
 */

#ifndef TACSIM_WORKLOADS_XALANC_HH
#define TACSIM_WORKLOADS_XALANC_HH

#include <deque>
#include <string>

#include "common/rng.hh"
#include "core/trace.hh"

namespace tacsim {

struct XalancParams
{
    /** Tiered DOM working sets: L1-hot, L2/LLC-warm, LLC-cool. */
    Addr tier0Bytes = Addr{48} << 10;
    Addr tier1Bytes = Addr{1} << 20;
    Addr tier2Bytes = (Addr{3} << 20) / 2; // 1.5MB
    double tier1Fraction = 0.30; ///< walks landing in tier1
    double tier2Fraction = 0.12; ///< walks landing in tier2

    Addr coldBytes = Addr{500} << 20; ///< full document heap
    double coldFraction = 0.16;       ///< excursions into the cold heap
    /** Cold excursions target a sliding pool (string tables and result
     *  fragments are revisited); its PTE set is tiny but still gets
     *  evicted by xalancbmk's heavy data traffic at baseline. */
    Addr coldPoolBytes = Addr{24} << 20;
    unsigned chainLength = 4;         ///< DOM pointer-walk depth
    unsigned fillerPerNode = 6;
    std::uint64_t seed = 17;
};

class XalancWorkload : public Workload
{
  public:
    explicit XalancWorkload(XalancParams p = {});

    TraceRecord next() override;
    std::string name() const override { return "xalancbmk"; }
    Addr footprint() const override { return p_.coldBytes; }

    void saveState(SerialWriter &w) const override;
    void loadState(SerialReader &r) override;

  private:
    void refill();

    XalancParams p_;
    Rng rng_;
    Addr hotBase_;
    Addr coldBase_;
    Addr poolBase_ = 0;
    std::uint64_t out_ = 0;
    std::deque<TraceRecord> queue_;
};

} // namespace tacsim

#endif // TACSIM_WORKLOADS_XALANC_HH
