#include "workloads/canneal.hh"

#include "workloads/ckpt.hh"

namespace tacsim {

namespace {
constexpr Addr kIpBase = 0x600000;

constexpr Addr
ip(unsigned site)
{
    return kIpBase + site * 4;
}
} // namespace

CannealWorkload::CannealWorkload(CannealParams p)
    : p_(p), rng_(p.seed),
      base_(Addr{1} << 42),
      elems_(p.footprintBytes / p.elemStride)
{}

TraceRecord
CannealWorkload::next()
{
    while (queue_.empty())
        refill();
    TraceRecord t = queue_.front();
    queue_.pop_front();
    return t;
}

void
CannealWorkload::refill()
{
    auto load = [&](Addr pc, Addr va, bool dep = false) {
        TraceRecord t;
        t.ip = pc;
        t.kind = TraceRecord::Kind::Load;
        t.vaddr = va;
        t.dependsOnPrevLoad = dep;
        queue_.push_back(t);
    };
    auto store = [&](Addr pc, Addr va) {
        TraceRecord t;
        t.ip = pc;
        t.kind = TraceRecord::Kind::Store;
        t.vaddr = va;
        queue_.push_back(t);
    };
    auto nonmem = [&](Addr pc, unsigned n) {
        TraceRecord t;
        t.ip = pc;
        for (unsigned i = 0; i < n; ++i)
            queue_.push_back(t);
    };

    // One annealing move: two elements (mostly from the hot active set,
    // sometimes cold), a few fields each, and a conditional swap.
    const std::uint64_t hotElems = p_.hotBytes / p_.elemStride;
    const std::uint64_t poolElems = p_.coldPoolBytes / p_.elemStride;
    auto pick = [&]() -> Addr {
        if (rng_.chance(p_.coldElementFraction)) {
            const std::uint64_t e =
                (poolBase_ + rng_.range(poolElems)) % elems_;
            return base_ + e * p_.elemStride;
        }
        return base_ + rng_.range(hotElems) * p_.elemStride;
    };
    const Addr a = pick();
    const Addr b = pick();
    poolBase_ = (poolBase_ + 1) % elems_; // pool slides slowly

    load(ip(0), a);
    load(ip(1), a + 8, true);  // fanin pointer of a
    load(ip(2), b);
    load(ip(3), b + 8, true);  // fanin pointer of b
    nonmem(ip(4), p_.fillerPerSwap);
    if (rng_.chance(0.5)) {
        store(ip(5), a);
        store(ip(6), b);
    }
}

void
CannealWorkload::saveState(SerialWriter &w) const
{
    workload_ckpt::saveRng(w, rng_);
    w.putU64(poolBase_);
    workload_ckpt::saveQueue(w, queue_);
}

void
CannealWorkload::loadState(SerialReader &r)
{
    workload_ckpt::loadRng(r, rng_);
    poolBase_ = r.getU64();
    workload_ckpt::loadQueue(r, queue_);
}

} // namespace tacsim
