#include "workloads/benchmarks.hh"

#include <stdexcept>

#include "trace/reader.hh"
#include "workloads/canneal.hh"
#include "workloads/graph.hh"
#include "workloads/mcf.hh"
#include "workloads/xalanc.hh"

namespace tacsim {

namespace {

const TableTwoRow kTableTwo[] = {
    {"xalancbmk", "SPEC CPU2017", "500MB", MpkiCategory::Low, 4.78, 4.37,
     17.27, 1.04, 2.16, 7.81, 0.48},
    {"tc", "Ligra", "918MB", MpkiCategory::Medium, 12.54, 12.35, 10.88,
     3.51, 11.64, 8.59, 1.6},
    {"canneal", "PARSEC", "2.3GB", MpkiCategory::Medium, 17.54, 17.51,
     4.15, 7.65, 17.41, 4.07, 1.76},
    {"mis", "Ligra", "918MB", MpkiCategory::Medium, 18.64, 17.76, 63.68,
     1.49, 14.7, 39.07, 0.49},
    {"mcf", "SPEC CPU2017", "4GB", MpkiCategory::Medium, 22.35, 22.27,
     8.21, 6.84, 22.24, 4.5, 0.11},
    {"bf", "Ligra", "918MB", MpkiCategory::High, 33.31, 29.37, 42.06,
     4.82, 27.10, 34.18, 1.62},
    {"radii", "Ligra", "918MB", MpkiCategory::High, 35.69, 34.08, 44.91,
     5.18, 31.11, 31.86, 1.54},
    {"cc", "Ligra", "918MB", MpkiCategory::High, 49.5, 47.25, 4.94, 66.15,
     40.40, 42.54, 0.79},
    {"pr", "Ligra", "918MB", MpkiCategory::High, 82.29, 80.43, 44.65,
     20.98, 76.53, 35.63, 7.1},
};

} // namespace

const TableTwoRow &
paperTableTwo(Benchmark b)
{
    return kTableTwo[static_cast<std::size_t>(b)];
}

std::string
benchmarkName(Benchmark b)
{
    return paperTableTwo(b).name;
}

MpkiCategory
benchmarkCategory(Benchmark b)
{
    return paperTableTwo(b).category;
}

std::string
categoryName(MpkiCategory c)
{
    switch (c) {
      case MpkiCategory::Low: return "Low";
      case MpkiCategory::Medium: return "Medium";
      case MpkiCategory::High: return "High";
    }
    return "?";
}

std::unique_ptr<Workload>
makeWorkload(Benchmark b, std::uint64_t seed)
{
    switch (b) {
      case Benchmark::xalancbmk: {
        XalancParams p;
        p.seed = seed * 1017 + 3;
        return std::make_unique<XalancWorkload>(p);
      }
      case Benchmark::tc: {
        GraphParams p;
        p.vertices = 1u << 23;
        p.avgDegree = 8;
        p.fillerPerEdge = 3;
        p.hubFraction = 0.15;
        p.localFraction = 0.20;
        p.seed = seed * 1013 + 5;
        return std::make_unique<GraphWorkload>(GraphAlgo::TC, p);
      }
      case Benchmark::canneal: {
        CannealParams p;
        p.seed = seed * 1019 + 7;
        return std::make_unique<CannealWorkload>(p);
      }
      case Benchmark::mis: {
        GraphParams p;
        p.vertices = 1u << 24;
        p.avgDegree = 8;
        p.fillerPerEdge = 3;
        p.hubFraction = 0.10;
        p.localFraction = 0.13;
        p.seed = seed * 1021 + 11;
        return std::make_unique<GraphWorkload>(GraphAlgo::MIS, p);
      }
      case Benchmark::mcf: {
        McfParams p;
        p.seed = seed * 1031 + 13;
        return std::make_unique<McfWorkload>(p);
      }
      case Benchmark::bf: {
        GraphParams p;
        p.frontierWindow = 1u << 16;
        p.vertices = 1u << 24;
        p.avgDegree = 8;
        p.fillerPerEdge = 4;
        p.hubFraction = 0.72;
        p.localFraction = 0.12;
        p.seed = seed * 1033 + 17;
        return std::make_unique<GraphWorkload>(GraphAlgo::BF, p);
      }
      case Benchmark::radii: {
        GraphParams p;
        p.frontierWindow = 1u << 16;
        p.vertices = 1u << 24;
        p.avgDegree = 8;
        p.fillerPerEdge = 4;
        p.hubFraction = 0.80;
        p.localFraction = 0.10;
        p.seed = seed * 1039 + 19;
        return std::make_unique<GraphWorkload>(GraphAlgo::RADII, p);
      }
      case Benchmark::cc: {
        GraphParams p;
        p.vertices = 1u << 24;
        p.avgDegree = 8;
        p.fillerPerEdge = 3;
        p.hubFraction = 0.62;
        p.localFraction = 0.10;
        p.seed = seed * 1049 + 23;
        return std::make_unique<GraphWorkload>(GraphAlgo::CC, p);
      }
      case Benchmark::pr: {
        GraphParams p;
        p.vertices = 1u << 24;
        p.avgDegree = 8;
        p.fillerPerEdge = 1;
        p.hubFraction = 0.60;
        p.localFraction = 0.10;
        p.seed = seed * 1051 + 29;
        return std::make_unique<GraphWorkload>(GraphAlgo::PR, p);
      }
    }
    return nullptr;
}

std::optional<Benchmark>
benchmarkFromName(const std::string &name)
{
    for (Benchmark b : kAllBenchmarks)
        if (name == benchmarkName(b))
            return b;
    return std::nullopt;
}

std::unique_ptr<Workload>
makeWorkloadFromSpec(const std::string &spec, std::uint64_t seed)
{
    constexpr const char *kTracePrefix = "trace:";
    if (spec.rfind(kTracePrefix, 0) == 0) {
        const std::string path = spec.substr(6);
        if (path.empty())
            throw std::runtime_error(
                "workload spec 'trace:' needs a file path");
        return std::make_unique<trace::TraceFileWorkload>(path);
    }
    if (const std::optional<Benchmark> b = benchmarkFromName(spec))
        return makeWorkload(*b, seed);
    throw std::runtime_error(
        "unknown workload spec '" + spec +
        "' (expected a Table-II benchmark name or trace:<path>)");
}

} // namespace tacsim
