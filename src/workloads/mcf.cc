#include "workloads/mcf.hh"

#include "workloads/ckpt.hh"

namespace tacsim {

namespace {
constexpr Addr kIpBase = 0x500000;

constexpr Addr
ip(unsigned site)
{
    return kIpBase + site * 4;
}
} // namespace

McfWorkload::McfWorkload(McfParams p)
    : p_(p), rng_(p.seed),
      base_(Addr{1} << 41),
      nodes_(p.arenaBytes / p.nodeStride)
{
    cur_ = rng_.range(nodes_);
}

std::uint64_t
McfWorkload::successor(std::uint64_t node, std::uint64_t hop) const
{
    // Most hops revisit the active spanning-tree region (small enough to
    // stay cache/TLB-warm); the rest pivot anywhere in the arena. The
    // hop count is mixed in so revisiting a node does not cycle.
    const std::uint64_t h = hashCombine(hashCombine(node, hop),
                                        p_.seed * 31);
    const double u = double(h >> 11) * 0x1.0p-53;
    if (u < p_.localHopFraction)
        return hashMix(h) % p_.localNodes; // active tree region
    // Pivot to a distant subtree within the sliding cold pool.
    const std::uint64_t poolNodes = p_.coldPoolBytes / p_.nodeStride;
    return (poolBase_ + hashMix(h ^ 0x51ca) % poolNodes) % nodes_;
}

TraceRecord
McfWorkload::next()
{
    while (queue_.empty())
        refill();
    TraceRecord t = queue_.front();
    queue_.pop_front();
    return t;
}

void
McfWorkload::refill()
{
    auto push = [&](TraceRecord t) { queue_.push_back(t); };
    auto nonmem = [&](Addr pc, unsigned n) {
        TraceRecord t;
        t.ip = pc;
        for (unsigned i = 0; i < n; ++i)
            push(t);
    };

    // One pointer hop: the address of the next node comes from the data
    // of the previous load (dependsOnPrevLoad) — this is what makes mcf's
    // replay loads serialize at the ROB head.
    const Addr nodeAddr = base_ + cur_ * p_.nodeStride;
    TraceRecord chase;
    chase.ip = ip(0);
    chase.kind = TraceRecord::Kind::Load;
    chase.vaddr = nodeAddr;
    chase.dependsOnPrevLoad = true;
    push(chase);

    // A second field of the node (same cache line: merges in the MSHR).
    TraceRecord field;
    field.ip = ip(1);
    field.kind = TraceRecord::Kind::Load;
    field.vaddr = nodeAddr + 16;
    field.dependsOnPrevLoad = true;
    push(field);

    nonmem(ip(2), p_.fillerPerHop);

    // Occasional cost update (store to the node, after its data is in).
    if (rng_.chance(0.2)) {
        TraceRecord st;
        st.ip = ip(3);
        st.kind = TraceRecord::Kind::Store;
        st.vaddr = nodeAddr + 32;
        st.dependsOnPrevLoad = true;
        push(st);
    }

    // Light bookkeeping scan over the ~4MB price array (LLC-resident,
    // L2-missing: the paper's small non-replay MPKI for mcf).
    if (rng_.chance(0.25)) {
        TraceRecord seq;
        seq.ip = ip(4);
        seq.kind = TraceRecord::Kind::Load;
        seq.vaddr =
            base_ + p_.arenaBytes + (scan_++ % (1u << 19)) * 8;
        push(seq);
        nonmem(ip(5), 2);
    }

    cur_ = successor(cur_, hop_++);
    if (hop_ % 8 == 0)
        poolBase_ = (poolBase_ + 1) % nodes_; // pool slides slowly
}

void
McfWorkload::saveState(SerialWriter &w) const
{
    workload_ckpt::saveRng(w, rng_);
    w.putU64(cur_);
    w.putU64(hop_);
    w.putU64(poolBase_);
    w.putU64(scan_);
    workload_ckpt::saveQueue(w, queue_);
}

void
McfWorkload::loadState(SerialReader &r)
{
    workload_ckpt::loadRng(r, rng_);
    cur_ = r.getU64();
    hop_ = r.getU64();
    poolBase_ = r.getU64();
    scan_ = r.getU64();
    workload_ckpt::loadQueue(r, queue_);
}

} // namespace tacsim
