/**
 * @file
 * SPEC CPU2017 mcf stand-in: the network-simplex core of mcf is dominated
 * by dependent pointer chasing over a multi-gigabyte arc/node arena with
 * poor locality, mixed with light sequential bookkeeping. We reproduce
 * that with a hash-permuted pointer chain across a 4GB-class virtual
 * arena (dependent loads), periodic sequential scans and sparse stores.
 */

#ifndef TACSIM_WORKLOADS_MCF_HH
#define TACSIM_WORKLOADS_MCF_HH

#include <deque>
#include <string>

#include "common/rng.hh"
#include "core/trace.hh"

namespace tacsim {

struct McfParams
{
    Addr arenaBytes = Addr{3} << 30; ///< 3GB-class arena
    std::uint64_t nodeStride = 128;  ///< bytes between chained nodes
    unsigned fillerPerHop = 12;      ///< ALU work per pointer hop
    /** Probability a hop stays within the active spanning-tree region
     *  (whose pages are warm) instead of jumping across the arena. */
    double localHopFraction = 0.60;
    std::uint64_t localNodes = 3u << 10; ///< ~384KB active region
    /** Cold pivots land in a large sliding pool rather than uniformly:
     *  real mcf revisits arc neighbourhoods, so the leaf-PTE working
     *  set (pool/512 bytes) straddles the L2C but stays on chip —
     *  exactly the regime the paper's Fig. 3 reports. */
    Addr coldPoolBytes = Addr{48} << 20;
    std::uint64_t seed = 7;
};

class McfWorkload : public Workload
{
  public:
    explicit McfWorkload(McfParams p = {});

    TraceRecord next() override;
    std::string name() const override { return "mcf"; }
    Addr footprint() const override { return p_.arenaBytes; }

    /** Successor node at a given hop count — for tests. Depends on the
     *  hop so revisiting a node does not cycle the chain. */
    std::uint64_t successor(std::uint64_t node, std::uint64_t hop) const;

    void saveState(SerialWriter &w) const override;
    void loadState(SerialReader &r) override;

  private:
    void refill();

    McfParams p_;
    Rng rng_;
    Addr base_;
    std::uint64_t nodes_;
    std::uint64_t cur_ = 0;
    std::uint64_t hop_ = 0;
    std::uint64_t poolBase_ = 0;
    std::uint64_t scan_ = 0;
    std::deque<TraceRecord> queue_;
};

} // namespace tacsim

#endif // TACSIM_WORKLOADS_MCF_HH
