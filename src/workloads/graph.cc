#include "workloads/graph.hh"

#include "workloads/ckpt.hh"

namespace tacsim {

namespace {

/** Stable fake code addresses; one per operation site so replacement
 *  and prefetcher signatures see realistic IP diversity. */
constexpr Addr kIpBase = 0x400000;

constexpr Addr
ip(unsigned site)
{
    return kIpBase + site * 4;
}

} // namespace

GraphWorkload::GraphWorkload(GraphAlgo algo, GraphParams p)
    : algo_(algo), p_(p), rng_(p.seed)
{
    const Addr va = Addr{1} << 40;
    baseA_ = va;
    baseB_ = baseA_ + p_.vertices * 8;
    baseOff_ = baseB_ + p_.vertices * 8;
    baseEdge_ = baseOff_ + p_.vertices * 8;
}

Addr
GraphWorkload::footprint() const
{
    return p_.vertices * 8 * 3 + p_.vertices * p_.avgDegree * 8;
}

std::uint64_t
GraphWorkload::degree(std::uint64_t v) const
{
    const std::uint64_t h = hashMix(v ^ (p_.seed * 0x9e37u));
    std::uint64_t d = 1 + h % (2 * p_.avgDegree - 1);
    if (h % 61 == 0)
        d *= 6; // heavy tail
    return d;
}

std::uint64_t
GraphWorkload::neighbor(std::uint64_t v, std::uint64_t i) const
{
    const std::uint64_t h = hashCombine(v * 0x1000193 + i, p_.seed);
    const double u = double(h >> 11) * 0x1.0p-53;
    if (u < p_.hubFraction)
        return hashMix(h) % p_.hubVertices; // hot hub
    if (u < p_.hubFraction + p_.localFraction) {
        // Community-local neighbour.
        const std::uint64_t off = hashMix(h ^ 0xabcd) % p_.localWindow;
        return (v + off) % p_.vertices;
    }
    return hashMix(h ^ 0x1234) % p_.vertices; // cold uniform
}

std::string
GraphWorkload::name() const
{
    switch (algo_) {
      case GraphAlgo::PR: return "pr";
      case GraphAlgo::BF: return "bf";
      case GraphAlgo::CC: return "cc";
      case GraphAlgo::RADII: return "radii";
      case GraphAlgo::MIS: return "mis";
      case GraphAlgo::TC: return "tc";
    }
    return "graph";
}

void
GraphWorkload::emitNonMem(Addr pc, unsigned n)
{
    TraceRecord t;
    t.ip = pc;
    t.kind = TraceRecord::Kind::NonMem;
    for (unsigned i = 0; i < n; ++i)
        queue_.push_back(t);
}

void
GraphWorkload::emitLoad(Addr pc, Addr va, bool dep)
{
    TraceRecord t;
    t.ip = pc;
    t.kind = TraceRecord::Kind::Load;
    t.vaddr = va;
    t.dependsOnPrevLoad = dep;
    queue_.push_back(t);
}

void
GraphWorkload::emitStore(Addr pc, Addr va)
{
    TraceRecord t;
    t.ip = pc;
    t.kind = TraceRecord::Kind::Store;
    t.vaddr = va;
    queue_.push_back(t);
}

TraceRecord
GraphWorkload::next()
{
    while (queue_.empty())
        refill();
    TraceRecord t = queue_.front();
    queue_.pop_front();
    return t;
}

void
GraphWorkload::refill()
{
    switch (algo_) {
      case GraphAlgo::PR: refillPr(); break;
      case GraphAlgo::BF: refillBf(); break;
      case GraphAlgo::CC: refillCc(); break;
      case GraphAlgo::RADII: refillRadii(); break;
      case GraphAlgo::MIS: refillMis(); break;
      case GraphAlgo::TC: refillTc(); break;
    }
}

void
GraphWorkload::refillPr()
{
    // PageRank pull: stream offsets/edges of v, gather rank[nbr].
    const std::uint64_t v = curVertex_;
    curVertex_ = (curVertex_ + 1) % p_.vertices;

    emitLoad(ip(0), offsetAddr(v));
    const std::uint64_t d = degree(v);
    for (std::uint64_t i = 0; i < d; ++i) {
        emitLoad(ip(1), edgeAddr(v * p_.avgDegree + i));
        emitLoad(ip(2), vertexA(neighbor(v, i)), true); // gather
        emitNonMem(ip(3), p_.fillerPerEdge);
    }
    emitStore(ip(4), vertexB(v));
    emitNonMem(ip(5), 2);
}

void
GraphWorkload::refillBf()
{
    // Bellman-Ford sparse iteration: a frontier vertex (from the sliding
    // frontier window), relax its out-edges with dependent distance
    // reads and conditional writes.
    const std::uint64_t v =
        (frontierBase_ + rng_.range(p_.frontierWindow)) % p_.vertices;
    frontierBase_ = (frontierBase_ + 3) % p_.vertices;
    emitLoad(ip(8), vertexA(v)); // dist[v]
    const std::uint64_t d = degree(v);
    for (std::uint64_t i = 0; i < d; ++i) {
        emitLoad(ip(9), edgeAddr(v * p_.avgDegree + i));
        const std::uint64_t n = neighbor(v, i);
        emitLoad(ip(10), vertexA(n), true); // dist[nbr]
        emitNonMem(ip(11), p_.fillerPerEdge);
        if (rng_.chance(0.15))
            emitStore(ip(12), vertexA(n)); // relax
    }
}

void
GraphWorkload::refillCc()
{
    // Label propagation over a sequential vertex sweep; labels of
    // neighbours are gathered and the minimum written back.
    const std::uint64_t v = curVertex_;
    curVertex_ = (curVertex_ + 1) % p_.vertices;

    emitLoad(ip(16), vertexA(v));
    const std::uint64_t d = degree(v);
    for (std::uint64_t i = 0; i < d; ++i) {
        emitLoad(ip(17), edgeAddr(v * p_.avgDegree + i));
        emitLoad(ip(18), vertexA(neighbor(v, i)), true);
        emitNonMem(ip(19), p_.fillerPerEdge);
    }
    if (rng_.chance(0.5))
        emitStore(ip(20), vertexA(v));
}

void
GraphWorkload::refillRadii()
{
    // Multi-source BFS: frontier vertices from the sliding window,
    // bitmask loads and or-updates on the visited masks of neighbours.
    const std::uint64_t v =
        (frontierBase_ + rng_.range(p_.frontierWindow)) % p_.vertices;
    frontierBase_ = (frontierBase_ + 5) % p_.vertices;
    emitLoad(ip(24), vertexA(v));    // radii/visited mask of v
    emitLoad(ip(25), vertexB(v));    // nextVisited mask of v
    const std::uint64_t d = degree(v);
    for (std::uint64_t i = 0; i < d; ++i) {
        emitLoad(ip(26), edgeAddr(v * p_.avgDegree + i));
        const std::uint64_t n = neighbor(v, i);
        emitLoad(ip(27), vertexA(n), true);
        emitNonMem(ip(28), p_.fillerPerEdge);
        if (rng_.chance(0.3))
            emitStore(ip(29), vertexB(n));
    }
}

void
GraphWorkload::refillMis()
{
    // Maximal independent set rounds: dense streaming over the flag and
    // priority arrays (the paper's very high non-replay L2 MPKI for mis)
    // punctuated by occasional random neighbour peeks.
    for (unsigned k = 0; k < 4; ++k) {
        const std::uint64_t v = curVertex_;
        curVertex_ = (curVertex_ + 1) % p_.vertices;
        emitLoad(ip(32), vertexA(v));       // flags stream
        emitLoad(ip(33), vertexB(v));       // priority stream
        emitNonMem(ip(34), p_.fillerPerEdge);
        if (rng_.chance(0.13)) {
            emitLoad(ip(35), vertexA(neighbor(v, 0))); // random peek
            emitNonMem(ip(36), 2);
        }
        if (rng_.chance(0.05))
            emitStore(ip(37), vertexA(v));
    }
}

void
GraphWorkload::refillTc()
{
    // Triangle counting: intersect adj(u) with adj(n) for each
    // neighbour n; both lists stream, but n's list starts at a random
    // base, giving medium STLB pressure with heavy L2C streaming.
    const std::uint64_t u = curVertex_;
    curVertex_ = (curVertex_ + 1) % p_.vertices;

    const std::uint64_t du = degree(u);
    for (std::uint64_t i = 0; i < du; ++i) {
        emitLoad(ip(40), edgeAddr(u * p_.avgDegree + i));
        const std::uint64_t n = neighbor(u, i);
        // Merge-intersect: both lists stream; n's list starts at a
        // random-ish base (one cold page) then stays sequential.
        const std::uint64_t steps = 8 + degree(n);
        for (std::uint64_t j = 0; j < steps; ++j) {
            emitLoad(ip(41), edgeAddr(n * p_.avgDegree + j));
            emitLoad(ip(43), edgeAddr(u * p_.avgDegree + (j % (du + 1))));
            emitNonMem(ip(42), p_.fillerPerEdge + 1); // compare/advance
        }
    }
}

void
GraphWorkload::saveState(SerialWriter &w) const
{
    workload_ckpt::saveRng(w, rng_);
    w.putU64(curVertex_);
    w.putU64(frontierBase_);
    workload_ckpt::saveQueue(w, queue_);
}

void
GraphWorkload::loadState(SerialReader &r)
{
    workload_ckpt::loadRng(r, rng_);
    curVertex_ = r.getU64();
    frontierBase_ = r.getU64();
    workload_ckpt::loadQueue(r, queue_);
}

} // namespace tacsim
