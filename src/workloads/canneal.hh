/**
 * @file
 * PARSEC canneal stand-in. Canneal's kernel is simulated annealing of a
 * netlist: pick two random elements anywhere in a multi-gigabyte
 * structure, read a few fields of each, evaluate, and swap. Nearly every
 * element access lands on a fresh page, which is why canneal's replay
 * MPKI (17.5) dwarfs its non-replay MPKI (4.2) in the paper's Table II.
 */

#ifndef TACSIM_WORKLOADS_CANNEAL_HH
#define TACSIM_WORKLOADS_CANNEAL_HH

#include <deque>
#include <string>

#include "common/rng.hh"
#include "core/trace.hh"

namespace tacsim {

struct CannealParams
{
    Addr footprintBytes = Addr{2300} << 20; ///< ~2.3GB like the paper
    std::uint64_t elemStride = 64;
    unsigned fillerPerSwap = 10;
    /** Probability that a picked element is cold (anywhere in the
     *  netlist) rather than from the hot active set. Canneal's hot set
     *  is small (L2-resident), so non-replay MPKI stays low while cold
     *  picks drive the replay MPKI (paper Table II). */
    double coldElementFraction = 0.19;
    Addr hotBytes = Addr{256} << 10; ///< active working set
    /** Cold picks come from a large sliding pool of the netlist, so the
     *  leaf-PTE working set (~pool/512) overflows the L2C but mostly
     *  fits the LLC — canneal has the paper's highest PTL1 MPKIs. */
    Addr coldPoolBytes = Addr{40} << 20;
    std::uint64_t seed = 11;
};

class CannealWorkload : public Workload
{
  public:
    explicit CannealWorkload(CannealParams p = {});

    TraceRecord next() override;
    std::string name() const override { return "canneal"; }
    Addr footprint() const override { return p_.footprintBytes; }

    void saveState(SerialWriter &w) const override;
    void loadState(SerialReader &r) override;

  private:
    void refill();

    CannealParams p_;
    Rng rng_;
    std::uint64_t poolBase_ = 0;
    Addr base_;
    std::uint64_t elems_;
    std::deque<TraceRecord> queue_;
};

} // namespace tacsim

#endif // TACSIM_WORKLOADS_CANNEAL_HH
