/**
 * @file
 * Shared checkpoint helpers for the synthetic workload generators.
 *
 * Every generator in this directory carries the same three kinds of
 * mutable state: an Rng, a handful of integer cursors, and a deque of
 * already-generated TraceRecords waiting to be handed to the core.
 * These helpers serialize the Rng and the record queue so each
 * workload's saveState/loadState reduces to its cursors.
 */

#ifndef TACSIM_WORKLOADS_CKPT_HH
#define TACSIM_WORKLOADS_CKPT_HH

#include <deque>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "core/trace.hh"

namespace tacsim::workload_ckpt {

inline void
saveRng(SerialWriter &w, const Rng &rng)
{
    std::uint64_t s[Rng::kStateWords];
    rng.state(s);
    for (std::uint64_t word : s)
        w.putU64(word);
}

inline void
loadRng(SerialReader &r, Rng &rng)
{
    std::uint64_t s[Rng::kStateWords];
    for (auto &word : s)
        word = r.getU64();
    rng.setState(s);
}

inline void
saveQueue(SerialWriter &w, const std::deque<TraceRecord> &q)
{
    w.putU64(q.size());
    for (const TraceRecord &t : q) {
        w.putU64(t.ip);
        w.putU8(static_cast<std::uint8_t>(t.kind));
        w.putU64(t.vaddr);
        w.putBool(t.dependsOnPrevLoad);
    }
}

inline void
loadQueue(SerialReader &r, std::deque<TraceRecord> &q)
{
    q.clear();
    const std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceRecord t;
        t.ip = r.getU64();
        t.kind = static_cast<TraceRecord::Kind>(r.getU8());
        t.vaddr = r.getU64();
        t.dependsOnPrevLoad = r.getBool();
        q.push_back(t);
    }
}

} // namespace tacsim::workload_ckpt

#endif // TACSIM_WORKLOADS_CKPT_HH
