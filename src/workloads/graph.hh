/**
 * @file
 * Synthetic Ligra-class graph workloads (pr, bf, cc, radii, mis, tc).
 *
 * The graph is procedural: degrees and adjacency come from hash
 * functions, so a multi-hundred-megabyte graph costs no host memory while
 * producing the same *address behaviour* as a stored CSR graph — a
 * sequential offset/edge stream plus per-edge random accesses into
 * vertex-indexed arrays, which is precisely the irregular pattern whose
 * translations miss the STLB (paper Table II).
 *
 * Layout of the simulated address space (per instance):
 *   [vertexA]   8B per vertex   (rank / dist / label)
 *   [vertexB]   8B per vertex   (next iteration values)
 *   [offsets]   8B per vertex   (CSR offsets, streamed)
 *   [edges]     8B per edge     (CSR edges, streamed)
 */

#ifndef TACSIM_WORKLOADS_GRAPH_HH
#define TACSIM_WORKLOADS_GRAPH_HH

#include <deque>
#include <string>

#include "common/rng.hh"
#include "core/trace.hh"

namespace tacsim {

enum class GraphAlgo
{
    PR,    ///< PageRank: full edge sweeps, random dst reads
    BF,    ///< Bellman-Ford: frontier relaxations, random dist updates
    CC,    ///< connected components: label propagation
    RADII, ///< multi-source BFS with bitmasks
    MIS,   ///< maximal independent set: random neighbour peeks
    TC,    ///< triangle counting: adjacency-list intersections
};

struct GraphParams
{
    std::uint64_t vertices = 1u << 24; ///< 16M vertices
    std::uint64_t avgDegree = 8;
    /** Non-memory filler instructions per edge processed (controls the
     *  memory intensity, hence the STLB MPKI band). */
    unsigned fillerPerEdge = 2;

    /**
     * Power-law locality of the adjacency. A neighbour is drawn from the
     * hot hub set with probability hubFraction (hubs are reused so much
     * that their pages live in the STLB), from a community window around
     * the source vertex with probability localFraction, and uniformly
     * otherwise. These control how many gathers touch cold pages, i.e.
     * the benchmark's STLB-MPKI band.
     */
    double hubFraction = 0.3;
    std::uint64_t hubVertices = 1u << 14;
    double localFraction = 0.3;
    std::uint64_t localWindow = 1u << 16;

    /**
     * Frontier-based algorithms (bf, radii) pick active vertices from a
     * sliding window rather than uniformly — real BFS/SSSP frontiers are
     * community-clustered, which keeps the frontier's own pages warm.
     */
    std::uint64_t frontierWindow = 1u << 18;

    std::uint64_t seed = 42;
};

class GraphWorkload : public Workload
{
  public:
    GraphWorkload(GraphAlgo algo, GraphParams p = {});

    TraceRecord next() override;
    std::string name() const override;
    Addr footprint() const override;

    /** Procedural degree of vertex @p v (power-law-ish). */
    std::uint64_t degree(std::uint64_t v) const;
    /** Procedural @p i-th neighbour of vertex @p v. */
    std::uint64_t neighbor(std::uint64_t v, std::uint64_t i) const;

    void saveState(SerialWriter &w) const override;
    void loadState(SerialReader &r) override;

  private:
    // Address helpers.
    Addr vertexA(std::uint64_t v) const { return baseA_ + v * 8; }
    Addr vertexB(std::uint64_t v) const { return baseB_ + v * 8; }
    Addr offsetAddr(std::uint64_t v) const { return baseOff_ + v * 8; }
    Addr edgeAddr(std::uint64_t e) const { return baseEdge_ + e * 8; }

    void emitNonMem(Addr ip, unsigned n);
    void emitLoad(Addr ip, Addr va, bool dep = false);
    void emitStore(Addr ip, Addr va);

    void refill();
    void refillPr();
    void refillBf();
    void refillCc();
    void refillRadii();
    void refillMis();
    void refillTc();

    GraphAlgo algo_;
    GraphParams p_;
    Rng rng_;

    Addr baseA_, baseB_, baseOff_, baseEdge_;
    std::uint64_t curVertex_ = 0;
    std::uint64_t frontierBase_ = 0;
    std::deque<TraceRecord> queue_;
};

} // namespace tacsim

#endif // TACSIM_WORKLOADS_GRAPH_HH
