/**
 * @file
 * The paper's benchmark suite (Table II) as a factory of synthetic
 * stand-in workloads, plus the published reference numbers used by
 * EXPERIMENTS.md and the bench harnesses for paper-vs-measured reports.
 */

#ifndef TACSIM_WORKLOADS_BENCHMARKS_HH
#define TACSIM_WORKLOADS_BENCHMARKS_HH

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "core/trace.hh"

namespace tacsim {

/** The nine benchmarks of Table II, in the paper's (STLB-MPKI) order. */
enum class Benchmark
{
    xalancbmk,
    tc,
    canneal,
    mis,
    mcf,
    bf,
    radii,
    cc,
    pr,
};

constexpr std::array<Benchmark, 9> kAllBenchmarks = {
    Benchmark::xalancbmk, Benchmark::tc,    Benchmark::canneal,
    Benchmark::mis,       Benchmark::mcf,   Benchmark::bf,
    Benchmark::radii,     Benchmark::cc,    Benchmark::pr,
};

/** STLB-MPKI category used for the SMT/multicore mixes (paper §V-A). */
enum class MpkiCategory
{
    Low,    ///< STLB MPKI <= 10
    Medium, ///< 11..25
    High,   ///< > 25
};

/** Paper Table II reference values (for reports, not for simulation). */
struct TableTwoRow
{
    const char *name;
    const char *suite;
    const char *dataset;
    MpkiCategory category;
    double stlbMpki;
    double l2Replay, l2NonReplay, l2Ptl1;
    double llcReplay, llcNonReplay, llcPtl1;
};

/** The published Table II. */
const TableTwoRow &paperTableTwo(Benchmark b);

std::string benchmarkName(Benchmark b);
MpkiCategory benchmarkCategory(Benchmark b);
std::string categoryName(MpkiCategory c);

/**
 * Build the synthetic stand-in for benchmark @p b.
 * @param seed perturbs the procedural content (distinct SMT/MC copies)
 */
std::unique_ptr<Workload> makeWorkload(Benchmark b, std::uint64_t seed = 1);

/** Benchmark for a Table-II name ("mcf", ...), nullopt if unknown. */
std::optional<Benchmark> benchmarkFromName(const std::string &name);

/**
 * Build a workload from a spec string:
 *   - a Table-II benchmark name ("mcf", "pr", ...) selects the synthetic
 *     generator, seeded with @p seed exactly like makeWorkload();
 *   - "trace:<path>" replays a recorded `tacsim-trace-v1` file
 *     (src/trace/) — @p seed is ignored, the stream is the file's.
 * Throws std::runtime_error for an unknown spec or unreadable trace.
 */
std::unique_ptr<Workload> makeWorkloadFromSpec(const std::string &spec,
                                               std::uint64_t seed = 1);

} // namespace tacsim

#endif // TACSIM_WORKLOADS_BENCHMARKS_HH
