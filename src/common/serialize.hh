/**
 * @file
 * Byte-stream serialization primitives for simulation checkpoints
 * (tacsim-ckpt-v1, sim/checkpoint.hh).
 *
 * The encoding is deliberately dumb: fixed-width little-endian integers
 * and length-prefixed byte strings, no varints, no alignment. Checkpoint
 * files are written and read by the same binary family, and the CRC
 * footer plus the embedded canonical-config text (checked by the
 * loader) already reject any cross-version confusion — so simplicity
 * and auditability win over compactness here, unlike the trace format
 * (trace/format.hh) where size per record matters.
 *
 * Readers are bounds-checked: running off the end throws
 * std::runtime_error rather than reading garbage, so a truncated
 * checkpoint degrades to a clean load failure.
 */

#ifndef TACSIM_COMMON_SERIALIZE_HH
#define TACSIM_COMMON_SERIALIZE_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace tacsim {

/** Append-only byte sink for checkpoint payloads. */
class SerialWriter
{
  public:
    void
    putU8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    putU16(std::uint16_t v)
    {
        putU8(static_cast<std::uint8_t>(v));
        putU8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    putU32(std::uint32_t v)
    {
        putU16(static_cast<std::uint16_t>(v));
        putU16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    putU64(std::uint64_t v)
    {
        putU32(static_cast<std::uint32_t>(v));
        putU32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    putI64(std::int64_t v)
    {
        putU64(static_cast<std::uint64_t>(v));
    }

    void putBool(bool v) { putU8(v ? 1 : 0); }

    void
    putDouble(double v)
    {
        putU64(std::bit_cast<std::uint64_t>(v));
    }

    /** Length-prefixed byte string. */
    void
    putString(const std::string &s)
    {
        putU64(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    /**
     * Section marker: a tagged boundary between component payloads.
     * Readers consume it with expectSection(), so a component that
     * writes more or fewer bytes than its loader reads fails loudly at
     * the next boundary instead of corrupting every later component.
     */
    void
    beginSection(const std::string &tag)
    {
        putU32(kSectionMagic);
        putString(tag);
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::size_t size() const { return bytes_.size(); }

  private:
    static constexpr std::uint32_t kSectionMagic = 0x7ac5Ec10u;

    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked reader over a checkpoint payload. */
class SerialReader
{
  public:
    SerialReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    explicit SerialReader(const std::vector<std::uint8_t> &bytes)
        : SerialReader(bytes.data(), bytes.size())
    {}

    std::uint8_t
    getU8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    getU16()
    {
        const std::uint16_t lo = getU8();
        const std::uint16_t hi = getU8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    std::uint32_t
    getU32()
    {
        const std::uint32_t lo = getU16();
        const std::uint32_t hi = getU16();
        return lo | (hi << 16);
    }

    std::uint64_t
    getU64()
    {
        const std::uint64_t lo = getU32();
        const std::uint64_t hi = getU32();
        return lo | (hi << 32);
    }

    std::int64_t getI64() { return static_cast<std::int64_t>(getU64()); }

    bool getBool() { return getU8() != 0; }

    double getDouble() { return std::bit_cast<double>(getU64()); }

    std::string
    getString()
    {
        const std::uint64_t n = getU64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Consume a section marker; throws if the next bytes are not the
     *  marker for @p tag (a component save/load size mismatch). */
    void
    expectSection(const std::string &tag)
    {
        std::uint32_t magic = 0;
        std::string got;
        bool ok = remaining() >= 4;
        if (ok) {
            magic = getU32();
            ok = magic == kSectionMagic;
        }
        if (ok)
            got = getString();
        if (!ok || got != tag)
            throw std::runtime_error(
                "checkpoint: expected section '" + tag + "'" +
                (ok ? ", found '" + got + "'"
                    : " but the stream is misaligned") +
                " — component save/load mismatch or corrupt file");
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    static constexpr std::uint32_t kSectionMagic = 0x7ac5Ec10u;

    void
    need(std::uint64_t n) const
    {
        if (n > size_ - pos_)
            throw std::runtime_error(
                "checkpoint: truncated stream (need " + std::to_string(n) +
                " bytes, have " + std::to_string(size_ - pos_) + ")");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace tacsim

#endif // TACSIM_COMMON_SERIALIZE_HH
