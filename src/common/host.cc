#include "common/host.hh"

#include <cstdio>
#include <cstring>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace tacsim {

std::uint64_t
peakRssKb()
{
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f)) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            std::sscanf(line + 6, "%llu",
                        reinterpret_cast<unsigned long long *>(&kb));
            break;
        }
    }
    std::fclose(f);
    return kb;
#else
    return 0;
#endif
}

unsigned
hostCpus()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::string
hostCompiler()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("g++ ") + std::to_string(__GNUC__) + "." +
        std::to_string(__GNUC_MINOR__) + "." +
        std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

std::string
hostOs()
{
#if defined(__unix__) || defined(__APPLE__)
    struct utsname u;
    if (uname(&u) == 0)
        return std::string(u.sysname) + " " + u.release;
#endif
    return "unknown";
}

} // namespace tacsim
