/**
 * @file
 * Small fixed-bucket histogram used for recall-distance and stall-length
 * distributions (paper Figs. 1, 5, 7, 18).
 */

#ifndef TACSIM_COMMON_HISTOGRAM_HH
#define TACSIM_COMMON_HISTOGRAM_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tacsim {

/**
 * Histogram over user-supplied bucket upper bounds, with a catch-all
 * overflow bucket and running sum/max so means are available too.
 */
class Histogram
{
  public:
    /** @param bounds inclusive upper bound of each bucket, ascending. */
    explicit Histogram(std::vector<std::uint64_t> bounds = {10, 50, 100,
                                                            500})
        : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
    {}

    /** Record one sample. */
    void
    add(std::uint64_t v)
    {
        auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
        ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
        sum_ += v;
        ++n_;
        max_ = std::max(max_, v);
    }

    /** Total number of samples. */
    std::uint64_t count() const { return n_; }
    /** Mean of all samples (0 if empty). */
    double mean() const { return n_ ? double(sum_) / double(n_) : 0.0; }
    /** Maximum sample seen (0 if empty). */
    std::uint64_t max() const { return max_; }

    /** Number of buckets including the overflow bucket. */
    std::size_t buckets() const { return counts_.size(); }
    /** Raw count in bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

    /** Fraction of samples in bucket @p i (0 if empty). */
    double
    fraction(std::size_t i) const
    {
        return n_ ? double(counts_[i]) / double(n_) : 0.0;
    }

    /** Fraction of samples <= @p bound (bound must be a bucket bound). */
    double
    fractionAtOrBelow(std::uint64_t bound) const
    {
        // A non-bucket bound cannot be answered from bucket counts: the
        // loop below would silently return the partial sum up to the
        // nearest lower bound, which reads like a valid fraction.
        TACSIM_DCHECK(
            std::binary_search(bounds_.begin(), bounds_.end(), bound) &&
            "fractionAtOrBelow bound must be an exact bucket bound");
        if (!n_)
            return 0.0;
        std::uint64_t c = 0;
        for (std::size_t i = 0; i < bounds_.size(); ++i) {
            if (bounds_[i] <= bound)
                c += counts_[i];
        }
        return double(c) / double(n_);
    }

    /** Human-readable bucket label, e.g. "11-50" or ">500". */
    std::string
    label(std::size_t i) const
    {
        if (i == bounds_.size())
            return ">" + std::to_string(bounds_.back());
        std::uint64_t lo = i == 0 ? 0 : bounds_[i - 1] + 1;
        return std::to_string(lo) + "-" + std::to_string(bounds_[i]);
    }

    /** Forget all samples. */
    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        sum_ = n_ = max_ = 0;
    }

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    std::uint64_t n_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace tacsim

#endif // TACSIM_COMMON_HISTOGRAM_HH
