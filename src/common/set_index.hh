/**
 * @file
 * Shared set-index extraction for set-associative structures.
 *
 * Cache and Tlb both map an address to a power-of-two set with a
 * shift-and-mask; SetIndexer centralizes the precomputed mask/shift so
 * the hot lookup path is two ALU ops with no division, no modulo and no
 * re-derivation of `sets - 1` per access, and so the power-of-two
 * requirement is checked in exactly one place.
 */

#ifndef TACSIM_COMMON_SET_INDEX_HH
#define TACSIM_COMMON_SET_INDEX_HH

#include <cstdint>

#include "common/types.hh"

namespace tacsim {

class SetIndexer
{
  public:
    SetIndexer() = default;

    /** @p sets must be a power of two; @p shift is the number of low
     *  address bits below the index field (kBlockBits for a cache
     *  indexing physical addresses, 0 for a TLB indexing VPNs). */
    SetIndexer(std::uint32_t sets, unsigned shift)
        : shift_(shift), mask_(sets - 1)
    {
        TACSIM_CHECK(sets > 0 && (sets & (sets - 1)) == 0 &&
                     "set count must be a power of two");
    }

    std::uint32_t
    index(Addr a) const
    {
        return static_cast<std::uint32_t>(a >> shift_) & mask_;
    }

    std::uint32_t sets() const { return mask_ + 1; }

  private:
    unsigned shift_ = 0;
    std::uint32_t mask_ = 0;
};

} // namespace tacsim

#endif // TACSIM_COMMON_SET_INDEX_HH
