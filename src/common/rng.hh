/**
 * @file
 * Deterministic pseudo-random number generation used by workload
 * generators and randomized policies.
 *
 * We use xoshiro256** (public domain, Blackman & Vigna) rather than
 * std::mt19937 because it is faster and its state is four words, and a
 * splitmix64-based stateless hash for procedural content (graph adjacency)
 * where we need random-access randomness without storing a stream.
 */

#ifndef TACSIM_COMMON_RNG_HH
#define TACSIM_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>

namespace tacsim {

/** Stateless 64-bit mixing function (splitmix64 finalizer). */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return hashMix(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/**
 * xoshiro256** generator. Seeded deterministically; every workload run
 * with the same seed produces the same address stream.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Reset the state from a single seed value via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &w : s_) {
            seed = hashMix(seed);
            w = seed | 1; // never all-zero state
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    range(std::uint64_t bound)
    {
        // 128-bit multiply avoids modulo bias for our purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Number of 64-bit state words (checkpoint payload size). */
    static constexpr std::size_t kStateWords = 4;

    /** Copy the raw generator state into @p out (checkpoint save). */
    void
    state(std::uint64_t out[kStateWords]) const
    {
        for (std::size_t i = 0; i < kStateWords; ++i)
            out[i] = s_[i];
    }

    /** Restore raw generator state captured by state() (checkpoint
     *  load). The caller is responsible for never restoring an all-zero
     *  state; states produced by state() can't be all-zero. */
    void
    setState(const std::uint64_t in[kStateWords])
    {
        for (std::size_t i = 0; i < kStateWords; ++i)
            s_[i] = in[i];
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace tacsim

#endif // TACSIM_COMMON_RNG_HH
