/**
 * @file
 * Host introspection for performance reports: peak RSS, CPU count,
 * compiler and OS identification. Everything degrades gracefully on
 * platforms without /proc (values report as 0 / "unknown").
 */

#ifndef TACSIM_COMMON_HOST_HH
#define TACSIM_COMMON_HOST_HH

#include <cstdint>
#include <string>

namespace tacsim {

/** Peak resident-set size of this process in KiB (VmHWM); 0 if
 *  unavailable. Monotonic over the process lifetime, so per-point
 *  readings in a sweep record the high-water mark up to that point. */
std::uint64_t peakRssKb();

/** Logical CPU count visible to this process. */
unsigned hostCpus();

/** Compiler identification string (e.g. "g++ 12.2.0"). */
std::string hostCompiler();

/** Kernel/OS identification (uname -sr style); "unknown" elsewhere. */
std::string hostOs();

} // namespace tacsim

#endif // TACSIM_COMMON_HOST_HH
