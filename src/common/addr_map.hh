/**
 * @file
 * Open-addressed hash map for small, bounded, hot lookup structures
 * (MSHR files, in-flight walk tables) keyed by 64-bit addresses or
 * packed address keys.
 *
 * std::unordered_map costs a heap node per insert and a pointer chase
 * per lookup — measurable in the cache hot path where an MSHR probe
 * happens on every miss and every fill. This table keeps entries in a
 * flat power-of-two slot array (linear probing, Fibonacci hashing) with
 * an explicit occupancy flag (key 0 is a valid address), erases with
 * backward-shift deletion so no tombstones accumulate, and grows only
 * when load reaches 1/2 — for an MSHR file sized at construction it
 * never reallocates in steady state.
 *
 * Iteration order is slot order, which is hash-dependent; callers must
 * not let it influence simulated behavior (the invariant checker only
 * validates entries, so this holds today).
 */

#ifndef TACSIM_COMMON_ADDR_MAP_HH
#define TACSIM_COMMON_ADDR_MAP_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace tacsim {

template <typename V>
class AddrMap
{
  public:
    /** @p expected is the steady-state entry bound (e.g. the MSHR
     *  count); capacity is sized so that many entries stay under the
     *  1/2 load limit without growing. */
    explicit AddrMap(std::size_t expected = 8)
    {
        std::size_t cap = 16;
        while (cap < expected * 2)
            cap <<= 1;
        slots_.resize(cap);
    }

    V *
    find(std::uint64_t key)
    {
        for (std::size_t i = home(key);; i = next(i)) {
            Slot &s = slots_[i];
            if (!s.used)
                return nullptr;
            if (s.key == key)
                return &s.value;
        }
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<AddrMap *>(this)->find(key);
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Insert a new entry; @p key must not already be present. */
    V &
    insert(std::uint64_t key, V value)
    {
        if ((size_ + 1) * 2 > slots_.size())
            grow();
        ++size_;
        return place(key, std::move(value));
    }

    /** Remove @p key if present; returns whether an entry was erased. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = home(key);
        for (;; i = next(i)) {
            if (!slots_[i].used)
                return false;
            if (slots_[i].key == key)
                break;
        }
        // Backward-shift deletion: pull every follower whose home slot
        // lies cyclically outside (i, j] into the hole so probe chains
        // stay contiguous and no tombstones are needed.
        std::size_t j = i;
        for (;;) {
            j = next(j);
            if (!slots_[j].used)
                break;
            const std::size_t h = home(slots_[j].key);
            const bool hInHole = i <= j ? (i < h && h <= j)
                                        : (i < h || h <= j);
            if (hInHole)
                continue;
            slots_[i].key = slots_[j].key;
            slots_[i].value = std::move(slots_[j].value);
            i = j;
        }
        slots_[i].used = false;
        slots_[i].value = V();
        --size_;
        return true;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        for (Slot &s : slots_) {
            s.used = false;
            s.value = V();
        }
        size_ = 0;
    }

    /** Visit every entry as f(key, value). Slot order — see file note. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (const Slot &s : slots_)
            if (s.used)
                f(s.key, s.value);
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        V value{};
        bool used = false;
    };

    std::size_t
    home(std::uint64_t key) const
    {
        // Fibonacci hashing: the multiply spreads the (block-aligned,
        // low-zero) key bits into the top, which the shift keeps.
        const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(
            h >> (64 - std::countr_zero(slots_.size())));
    }

    std::size_t next(std::size_t i) const
    {
        return (i + 1) & (slots_.size() - 1);
    }

    V &
    place(std::uint64_t key, V &&value)
    {
        std::size_t i = home(key);
        while (slots_[i].used) {
            TACSIM_DCHECK(slots_[i].key != key &&
                          "AddrMap::insert of an existing key");
            i = next(i);
        }
        Slot &s = slots_[i];
        s.key = key;
        s.value = std::move(value);
        s.used = true;
        return s.value;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(old.size() * 2);
        for (Slot &s : old)
            if (s.used)
                place(s.key, std::move(s.value));
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace tacsim

#endif // TACSIM_COMMON_ADDR_MAP_HH
