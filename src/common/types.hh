/**
 * @file
 * Fundamental scalar types and address-geometry constants shared by every
 * tacsim component.
 */

#ifndef TACSIM_COMMON_TYPES_HH
#define TACSIM_COMMON_TYPES_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace tacsim {
namespace detail {

[[noreturn]] inline void
checkFailed(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "tacsim: check failed: %s (%s:%d)\n", expr, file,
                 line);
    std::fflush(stderr);
    std::abort();
}

} // namespace detail
} // namespace tacsim

/**
 * TACSIM_CHECK: always-on structural check for cheap conditions (construction
 * parameters, protocol steps that run at most once per miss). Unlike
 * assert(), it survives NDEBUG builds, so release runs abort loudly instead
 * of silently corrupting statistics. Write messages assert-style:
 * TACSIM_CHECK(x == y && "reason").
 */
#define TACSIM_CHECK(expr)                                                   \
    ((expr) ? static_cast<void>(0)                                           \
            : tacsim::detail::checkFailed(#expr, __FILE__, __LINE__))

/**
 * TACSIM_DCHECK: per-access-rate check, compiled in when the verifier is
 * enabled (-DTACSIM_VERIFY=ON) or in !NDEBUG builds, and free otherwise.
 */
#if defined(TACSIM_VERIFY_ENABLED) || !defined(NDEBUG)
#define TACSIM_DCHECK(expr) TACSIM_CHECK(expr)
#else
#define TACSIM_DCHECK(expr) static_cast<void>(sizeof(!(expr)))
#endif

namespace tacsim {

/** A byte address (virtual or physical depending on context). */
using Addr = std::uint64_t;

/** A point in time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Number of bits in a cache block offset (64-byte blocks). */
constexpr unsigned kBlockBits = 6;
/** Cache block size in bytes. */
constexpr Addr kBlockSize = Addr{1} << kBlockBits;
/** Number of bits in a 4KB page offset. */
constexpr unsigned kPageBits = 12;
/** Page size in bytes. */
constexpr Addr kPageSize = Addr{1} << kPageBits;
/** Bits of virtual address translated per radix page-table level. */
constexpr unsigned kPtIndexBits = 9;
/** Entries per page-table page (2^9). */
constexpr unsigned kPtEntries = 1u << kPtIndexBits;
/** Size of one page-table entry in bytes. */
constexpr Addr kPteSize = 8;
/** Number of radix page-table levels (57-bit virtual addresses). */
constexpr unsigned kPtLevels = 5;

/** Strip the block offset from an address. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~(kBlockSize - 1);
}

/** Block number of an address (address >> 6). */
constexpr Addr
blockNumber(Addr a)
{
    return a >> kBlockBits;
}

/** Strip the page offset from an address. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~(kPageSize - 1);
}

/** Virtual page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageBits;
}

/**
 * 9-bit radix index used by page-table level @p level (1 = leaf,
 * kPtLevels = root) for virtual address @p va.
 */
constexpr unsigned
ptIndex(Addr va, unsigned level)
{
    return (va >> (kPageBits + (level - 1) * kPtIndexBits)) &
        (kPtEntries - 1);
}

} // namespace tacsim

#endif // TACSIM_COMMON_TYPES_HH
