/**
 * @file
 * Fundamental scalar types and address-geometry constants shared by every
 * tacsim component.
 */

#ifndef TACSIM_COMMON_TYPES_HH
#define TACSIM_COMMON_TYPES_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace tacsim {
namespace detail {

[[noreturn]] inline void
checkFailed(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "tacsim: check failed: %s (%s:%d)\n", expr, file,
                 line);
    std::fflush(stderr);
    std::abort();
}

} // namespace detail
} // namespace tacsim

/**
 * TACSIM_CHECK: always-on structural check for cheap conditions (construction
 * parameters, protocol steps that run at most once per miss). Unlike
 * assert(), it survives NDEBUG builds, so release runs abort loudly instead
 * of silently corrupting statistics. Write messages assert-style:
 * TACSIM_CHECK(x == y && "reason").
 */
#define TACSIM_CHECK(expr)                                                   \
    ((expr) ? static_cast<void>(0)                                           \
            : tacsim::detail::checkFailed(#expr, __FILE__, __LINE__))

/**
 * TACSIM_DCHECK: per-access-rate check, compiled in when the verifier is
 * enabled (-DTACSIM_VERIFY=ON) or in !NDEBUG builds, and free otherwise.
 */
#if defined(TACSIM_VERIFY_ENABLED) || !defined(NDEBUG)
#define TACSIM_DCHECK(expr) TACSIM_CHECK(expr)
#else
#define TACSIM_DCHECK(expr) static_cast<void>(sizeof(!(expr)))
#endif

namespace tacsim {

/** A byte address (virtual or physical depending on context). */
using Addr = std::uint64_t;

/** A point in time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Number of bits in a cache block offset (64-byte blocks). */
constexpr unsigned kBlockBits = 6;
/** Cache block size in bytes. */
constexpr Addr kBlockSize = Addr{1} << kBlockBits;
/** Number of bits in a 4KB page offset. */
constexpr unsigned kPageBits = 12;
/** Page size in bytes. */
constexpr Addr kPageSize = Addr{1} << kPageBits;
/** Bits of virtual address translated per radix page-table level. */
constexpr unsigned kPtIndexBits = 9;
/** Entries per page-table page (2^9). */
constexpr unsigned kPtEntries = 1u << kPtIndexBits;
/** Size of one page-table entry in bytes. */
constexpr Addr kPteSize = 8;
/** Number of radix page-table levels (57-bit virtual addresses). */
constexpr unsigned kPtLevels = 5;

/** Strip the block offset from an address. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~(kBlockSize - 1);
}

/** Block number of an address (address >> 6). */
constexpr Addr
blockNumber(Addr a)
{
    return a >> kBlockBits;
}

/** Strip the page offset from an address. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~(kPageSize - 1);
}

/** Virtual page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageBits;
}

/**
 * Translation granule of one mapping. The radix table supports a leaf at
 * level 1 (4KB), level 2 (2MB) or level 3 (1GB) — each level adds
 * kPtIndexBits to the offset, exactly the x86-64 4K/2M/1G page sizes.
 */
enum class PageSize : std::uint8_t
{
    Size4K = 0,
    Size2M = 1,
    Size1G = 2,
};

constexpr unsigned kNumPageSizes = 3;

constexpr std::array<PageSize, kNumPageSizes> kAllPageSizes = {
    PageSize::Size4K, PageSize::Size2M, PageSize::Size1G};

/** Page-table level whose PTE is the leaf for @p ps (1 = 4K ... 3 = 1G). */
constexpr unsigned
leafLevelOf(PageSize ps)
{
    return 1u + static_cast<unsigned>(ps);
}

/** Page size mapped by a leaf PTE at @p level (1..3). */
constexpr PageSize
pageSizeForLevel(unsigned level)
{
    return static_cast<PageSize>(level - 1);
}

/** Number of offset bits in a page of size @p ps (12 / 21 / 30). */
constexpr unsigned
pageShift(PageSize ps)
{
    return kPageBits + static_cast<unsigned>(ps) * kPtIndexBits;
}

/** Page size in bytes (4K / 2M / 1G). */
constexpr Addr
pageBytes(PageSize ps)
{
    return Addr{1} << pageShift(ps);
}

/** Strip the page offset for a page of size @p ps. */
constexpr Addr
pageAlign(Addr a, PageSize ps)
{
    return a & ~(pageBytes(ps) - 1);
}

/** Offset of @p a within its page of size @p ps. */
constexpr Addr
pageOffset(Addr a, PageSize ps)
{
    return a & (pageBytes(ps) - 1);
}

/** Page number of @p a at granule @p ps. */
constexpr Addr
pageNumber(Addr a, PageSize ps)
{
    return a >> pageShift(ps);
}

/** Short name for reports/metrics ("4k", "2m", "1g"). */
constexpr const char *
pageSizeName(PageSize ps)
{
    return ps == PageSize::Size4K ? "4k"
        : ps == PageSize::Size2M  ? "2m"
                                  : "1g";
}

/** The smaller of two granules (effective nested translation size). */
constexpr PageSize
minPageSize(PageSize a, PageSize b)
{
    return static_cast<unsigned>(a) < static_cast<unsigned>(b) ? a : b;
}

/**
 * 9-bit radix index used by page-table level @p level (1 = leaf,
 * kPtLevels = root) for virtual address @p va.
 */
constexpr unsigned
ptIndex(Addr va, unsigned level)
{
    return (va >> (kPageBits + (level - 1) * kPtIndexBits)) &
        (kPtEntries - 1);
}

} // namespace tacsim

#endif // TACSIM_COMMON_TYPES_HH
