/**
 * @file
 * Global simulation event queue: a min-heap of (cycle, callback) pairs.
 *
 * All timed components (caches, DRAM, the page-table walker, the core)
 * share one EventQueue. Components schedule completion callbacks rather
 * than polling, which keeps the simulator fast even when the ROB is
 * stalled for hundreds of cycles.
 */

#ifndef TACSIM_COMMON_EVENT_QUEUE_HH
#define TACSIM_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace tacsim {

/**
 * A simple deterministic discrete-event queue.
 *
 * Events scheduled for the same cycle fire in insertion order (a
 * monotonically increasing sequence number breaks ties), which keeps runs
 * bit-reproducible across platforms.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Cycle delay, Callback cb)
    {
        scheduleAt(now_ + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute cycle @p when (>= now). */
    void
    scheduleAt(Cycle when, Callback cb)
    {
        if (when < now_)
            when = now_;
        heap_.push(Event{when, seq_++, std::move(cb)});
    }

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Cycle of the earliest pending event; now() if empty. */
    Cycle
    nextEventCycle() const
    {
        return heap_.empty() ? now_ : heap_.top().when;
    }

    /** Total events executed since construction / reset(). The invariant
     *  Checker paces its periodic hierarchy walks on this count. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Advance time to cycle @p target, running every event scheduled at or
     * before it. Events may schedule further events; those are run too if
     * they fall within the window.
     */
    void
    advanceTo(Cycle target)
    {
        while (!heap_.empty() && heap_.top().when <= target) {
            // Copy out before pop so the callback may schedule new events.
            Event ev = std::move(const_cast<Event &>(heap_.top()));
            heap_.pop();
            now_ = ev.when;
            ++executed_;
            ev.cb();
        }
        if (target > now_)
            now_ = target;
    }

    /** Run a single pending event (earliest); returns false if none. */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }

    /** Drop all pending events and reset time to zero. */
    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        seq_ = 0;
        executed_ = 0;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tacsim

#endif // TACSIM_COMMON_EVENT_QUEUE_HH
