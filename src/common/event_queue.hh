/**
 * @file
 * Global simulation event queue.
 *
 * All timed components (caches, DRAM, the page-table walker, the core)
 * share one EventQueue. Components schedule completion callbacks rather
 * than polling, which keeps the simulator fast even when the ROB is
 * stalled for hundreds of cycles.
 *
 * The queue is the hottest structure in the simulator, so it avoids the
 * classic priority_queue-of-std::function design entirely:
 *
 *  - Event records are slab-allocated and recycled through an intrusive
 *    freelist — steady-state scheduling performs no heap allocation.
 *  - Callables up to kInlineBytes are stored inline in the record
 *    (every scheduling site in the simulator fits); larger ones fall
 *    back to an inline std::function that owns its capture.
 *  - A calendar front-end covers the next kWindow cycles with one FIFO
 *    bucket per cycle and a bitmap for O(1)-ish next-event scans;
 *    events beyond the window wait in a small binary heap and migrate
 *    into buckets as the window advances.
 */

#ifndef TACSIM_COMMON_EVENT_QUEUE_HH
#define TACSIM_COMMON_EVENT_QUEUE_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace tacsim {

namespace event_detail {

/// Inline callable storage per event record; every scheduling site in
/// src/ fits (largest capture today is ~40 bytes in the walker).
inline constexpr std::size_t kInlineBytes = 48;

/// True if Fn can live in a record's inline storage. Requires nothrow
/// move because the invoke trampoline moves the callable to the stack
/// before recycling the record.
template <typename Fn>
inline constexpr bool fitsInline =
    sizeof(Fn) <= kInlineBytes &&
    alignof(Fn) <= alignof(std::max_align_t) &&
    std::is_nothrow_move_constructible_v<Fn>;

} // namespace event_detail

/**
 * A deterministic discrete-event queue.
 *
 * Events scheduled for the same cycle fire in insertion order (a
 * monotonically increasing sequence number breaks ties), which keeps runs
 * bit-reproducible across platforms. The calendar/heap split preserves
 * that order exactly: bucket FIFOs receive events in seq order, and the
 * overflow heap orders by (when, seq) before migrating.
 */
class EventQueue
{
    /// Calendar window: one bucket per cycle for the next kWindow cycles.
    static constexpr unsigned kWindowBits = 10;
    static constexpr Cycle kWindow = Cycle{1} << kWindowBits;
    static constexpr std::size_t kBucketMask = kWindow - 1;
    static constexpr std::size_t kWords = kWindow / 64;
    static constexpr std::size_t kInlineBytes = event_detail::kInlineBytes;
    static constexpr std::size_t kSlabRecords = 512;

  public:
    /** Fallback callable type for captures larger than kInlineBytes. */
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue() { destroyPending(); }

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    /** Schedule @p f to run @p delay cycles from now. */
    template <typename F>
    void
    schedule(Cycle delay, F &&f)
    {
        scheduleAt(now_ + delay, std::forward<F>(f));
    }

    /**
     * Schedule @p f at absolute cycle @p when. Scheduling in the past is
     * always a component bug (a latency subtraction gone negative, a
     * stale completion time) — verify/debug builds abort on it; release
     * builds clamp to now() as a safety net.
     */
    template <typename F>
    void
    scheduleAt(Cycle when, F &&f)
    {
        TACSIM_DCHECK(when >= now_ &&
                      "scheduleAt in the past — component bug");
        if (when < now_)
            when = now_;

        Record *r = allocRecord();
        r->when = when;
        r->seq = seq_++;
        r->next = nullptr;

        using Fn = std::decay_t<F>;
        if constexpr (event_detail::fitsInline<Fn>) {
            ::new (static_cast<void *>(r->storage))
                Fn(std::forward<F>(f));
            r->op = &opFor<Fn>;
        } else {
            static_assert(event_detail::fitsInline<Callback>,
                          "record storage must hold the fallback");
            ::new (static_cast<void *>(r->storage))
                Callback(std::forward<F>(f));
            r->op = &opFor<Callback>;
        }

        ++size_;
        if (when < windowEnd_)
            appendBucket(r);
        else
            heap_.push(r);
    }

    /** True if no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Cycle of the earliest pending event; now() if empty. */
    Cycle
    nextEventCycle() const
    {
        return size_ == 0 ? now_ : nextPendingCycle();
    }

    /** Total events executed since construction / reset(). The invariant
     *  Checker paces its periodic hierarchy walks on this count. */
    std::uint64_t executed() const { return executed_; }

    /** Next tie-break sequence number to be assigned (checkpoint save). */
    std::uint64_t seq() const { return seq_; }

    /**
     * Restore the queue clock from a checkpoint: current cycle, the next
     * tie-break sequence number, and the lifetime executed count. Only
     * legal on an empty queue — checkpoints are taken at a quiesced
     * boundary (System::quiesce()), so no pending events ever need to be
     * serialized. Restoring seq_/executed_ exactly (rather than zeroing)
     * keeps the post-restore event stream, and the `events` line of the
     * canonical stats dump, byte-identical to a straight-through run.
     */
    void
    restoreClock(Cycle now, std::uint64_t seq, std::uint64_t executed)
    {
        TACSIM_CHECK(size_ == 0 &&
                     "restoreClock requires an empty (quiesced) queue");
        now_ = now;
        windowEnd_ = now_ + kWindow;
        seq_ = seq;
        executed_ = executed;
        nextValid_ = false;
    }

    /**
     * Advance time to cycle @p target, running every event scheduled at or
     * before it. Events may schedule further events; those are run too if
     * they fall within the window.
     */
    void
    advanceTo(Cycle target)
    {
        while (size_ > 0) {
            const Cycle c = nextPendingCycle();
            if (c > target)
                break;
            now_ = c;
            advanceWindow();
            runCycle(c);
        }
        if (target > now_)
            now_ = target;
    }

    /** Run a single pending event (earliest); returns false if none. */
    bool
    step()
    {
        if (size_ == 0)
            return false;
        const Cycle c = nextPendingCycle();
        now_ = c;
        advanceWindow();

        Bucket &b = buckets_[bucketOf(c)];
        Record *r = b.head;
        b.head = r->next;
        if (!b.head) {
            b.tail = nullptr;
            clearBit(bucketOf(c));
        }
        nextValid_ = false;
        --size_;
        ++executed_;
        r->op(*r, *this, Op::Invoke);
        return true;
    }

    /** Drop all pending events and reset time to zero. Slabs are kept
     *  for reuse. */
    void
    reset()
    {
        destroyPending();
        now_ = 0;
        seq_ = 0;
        executed_ = 0;
        windowEnd_ = kWindow;
        nextValid_ = false;
    }

  private:
    enum class Op : std::uint8_t { Invoke, Destroy };

    struct Record
    {
        Cycle when;
        std::uint64_t seq;
        Record *next; ///< bucket FIFO link / freelist link
        void (*op)(Record &, EventQueue &, Op);
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    };

    struct Bucket
    {
        Record *head = nullptr;
        Record *tail = nullptr;
    };

    struct HeapCmp
    {
        bool
        operator()(const Record *a, const Record *b) const
        {
            return a->when != b->when ? a->when > b->when
                                      : a->seq > b->seq;
        }
    };

    /**
     * Type-erased record operation. Invoke moves the callable out and
     * recycles the record *before* calling it, so the callback can
     * freely schedule new events (possibly reusing this very record).
     */
    template <typename Fn>
    static void
    opFor(Record &r, EventQueue &q, Op op)
    {
        Fn *f = std::launder(reinterpret_cast<Fn *>(r.storage));
        if (op == Op::Invoke) {
            Fn fn(std::move(*f));
            f->~Fn();
            q.recycle(&r);
            fn();
        } else {
            f->~Fn();
            q.recycle(&r);
        }
    }

    static constexpr std::size_t
    bucketOf(Cycle when)
    {
        return static_cast<std::size_t>(when) & kBucketMask;
    }

    Record *
    allocRecord()
    {
        if (!free_) {
            slabs_.push_back(std::make_unique<Record[]>(kSlabRecords));
            Record *slab = slabs_.back().get();
            for (std::size_t i = 0; i < kSlabRecords; ++i) {
                slab[i].next = free_;
                free_ = &slab[i];
            }
        }
        Record *r = free_;
        free_ = r->next;
        return r;
    }

    void
    recycle(Record *r)
    {
        r->next = free_;
        free_ = r;
    }

    void
    setBit(std::size_t bucket)
    {
        occupied_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    }

    void
    clearBit(std::size_t bucket)
    {
        occupied_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
    }

    void
    appendBucket(Record *r)
    {
        Bucket &b = buckets_[bucketOf(r->when)];
        if (b.tail)
            b.tail->next = r;
        else
            b.head = r;
        b.tail = r;
        setBit(bucketOf(r->when));
        if (nextValid_ && r->when < nextCycle_)
            nextCycle_ = r->when;
    }

    /** Keep windowEnd_ = now_ + kWindow and pull newly covered heap
     *  events into their buckets. Heap pops come out in (when, seq)
     *  order, and direct inserts into a bucket can only happen after
     *  its cycle entered the window, so per-bucket seq order holds. */
    void
    advanceWindow()
    {
        if (windowEnd_ >= now_ + kWindow)
            return;
        windowEnd_ = now_ + kWindow;
        while (!heap_.empty() && heap_.top()->when < windowEnd_) {
            Record *r = heap_.top();
            heap_.pop();
            r->next = nullptr;
            appendBucket(r);
        }
    }

    /** Earliest pending cycle; requires size_ > 0. */
    Cycle
    nextPendingCycle() const
    {
        if (nextValid_)
            return nextCycle_;

        // Scan the occupancy bitmap in ring order starting at now_'s
        // bucket: first the start word's upper bits, then the following
        // words, finally the start word's lower bits (wrapped cycles).
        const std::size_t start = bucketOf(now_);
        const std::size_t startWord = start >> 6;
        const std::uint64_t upper = ~std::uint64_t{0} << (start & 63);
        std::size_t word = startWord;
        std::uint64_t bits = occupied_[word] & upper;
        for (std::size_t i = 0;;) {
            if (bits) {
                const std::size_t bucket = (word << 6) |
                    static_cast<std::size_t>(std::countr_zero(bits));
                nextCycle_ = now_ +
                    static_cast<Cycle>((bucket - start) & kBucketMask);
                nextValid_ = true;
                return nextCycle_;
            }
            if (++i > kWords)
                break;
            word = (startWord + i) & (kWords - 1);
            bits = occupied_[word];
            if (i == kWords)
                bits &= ~upper;
        }
        // Buckets empty: the earliest event waits in the heap.
        nextCycle_ = heap_.top()->when;
        nextValid_ = true;
        return nextCycle_;
    }

    /** Run every event for cycle @p c (including ones its callbacks
     *  append for the same cycle). */
    void
    runCycle(Cycle c)
    {
        Bucket &b = buckets_[bucketOf(c)];
        while (Record *r = b.head) {
            b.head = r->next;
            if (!b.head)
                b.tail = nullptr;
            --size_;
            ++executed_;
            r->op(*r, *this, Op::Invoke);
        }
        clearBit(bucketOf(c));
        nextValid_ = false;
    }

    void
    destroyPending()
    {
        for (Bucket &b : buckets_) {
            Record *r = b.head;
            while (r) {
                Record *n = r->next;
                r->op(*r, *this, Op::Destroy);
                r = n;
            }
            b.head = b.tail = nullptr;
        }
        occupied_.fill(0);
        while (!heap_.empty()) {
            Record *r = heap_.top();
            heap_.pop();
            r->op(*r, *this, Op::Destroy);
        }
        size_ = 0;
        nextValid_ = false;
    }

    std::array<Bucket, kWindow> buckets_{};
    std::array<std::uint64_t, kWords> occupied_{};
    std::priority_queue<Record *, std::vector<Record *>, HeapCmp> heap_;
    std::vector<std::unique_ptr<Record[]>> slabs_;
    Record *free_ = nullptr;

    Cycle now_ = 0;
    Cycle windowEnd_ = kWindow;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;

    mutable Cycle nextCycle_ = 0;   ///< memoized earliest pending cycle
    mutable bool nextValid_ = false;
};

} // namespace tacsim

#endif // TACSIM_COMMON_EVENT_QUEUE_HH
