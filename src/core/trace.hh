/**
 * @file
 * The instruction record produced by workload generators and consumed by
 * the core model, and the abstract workload (trace source) interface.
 *
 * tacsim is trace-driven in the ChampSim sense: the functional path
 * (what addresses are touched, in what order, with what dependences) is
 * produced by a generator, and the core model adds timing.
 */

#ifndef TACSIM_CORE_TRACE_HH
#define TACSIM_CORE_TRACE_HH

#include <memory>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace tacsim {

/** One dynamic instruction. */
struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        NonMem, ///< ALU/branch/etc. — completes in the pipeline
        Load,
        Store,
    };

    Addr ip = 0;
    Kind kind = Kind::NonMem;
    Addr vaddr = 0; ///< effective address for Load/Store

    /**
     * Address depends on the most recent preceding load (pointer
     * chasing): the core may not issue this access until that load's
     * data returns.
     */
    bool dependsOnPrevLoad = false;

    bool isLoad() const { return kind == Kind::Load; }
    bool isStore() const { return kind == Kind::Store; }
    bool isMem() const { return kind != Kind::NonMem; }
};

class SerialWriter;
class SerialReader;

/** An endless instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next dynamic instruction. */
    virtual TraceRecord next() = 0;

    /** Benchmark name ("pr", "mcf", ...). */
    virtual std::string name() const = 0;

    /** Virtual footprint in bytes (for reports). */
    virtual Addr footprint() const = 0;

    /**
     * Checkpoint seams (tacsim-ckpt-v1). A workload's generator state
     * must round-trip exactly: after loadState the stream it produces is
     * identical to the one the saved instance would have produced. The
     * default implementations throw, so a workload type that never
     * gained support fails a checkpoint attempt loudly instead of
     * silently replaying from the start.
     */
    virtual void saveState(SerialWriter &) const { unsupported(); }
    virtual void loadState(SerialReader &) { unsupported(); }

  private:
    [[noreturn]] void
    unsupported() const
    {
        throw std::runtime_error("checkpoint: workload '" + name() +
                                 "' does not support save/restore");
    }
};

} // namespace tacsim

#endif // TACSIM_CORE_TRACE_HH
