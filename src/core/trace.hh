/**
 * @file
 * The instruction record produced by workload generators and consumed by
 * the core model, and the abstract workload (trace source) interface.
 *
 * tacsim is trace-driven in the ChampSim sense: the functional path
 * (what addresses are touched, in what order, with what dependences) is
 * produced by a generator, and the core model adds timing.
 */

#ifndef TACSIM_CORE_TRACE_HH
#define TACSIM_CORE_TRACE_HH

#include <memory>
#include <string>

#include "common/types.hh"

namespace tacsim {

/** One dynamic instruction. */
struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        NonMem, ///< ALU/branch/etc. — completes in the pipeline
        Load,
        Store,
    };

    Addr ip = 0;
    Kind kind = Kind::NonMem;
    Addr vaddr = 0; ///< effective address for Load/Store

    /**
     * Address depends on the most recent preceding load (pointer
     * chasing): the core may not issue this access until that load's
     * data returns.
     */
    bool dependsOnPrevLoad = false;

    bool isLoad() const { return kind == Kind::Load; }
    bool isStore() const { return kind == Kind::Store; }
    bool isMem() const { return kind != Kind::NonMem; }
};

/** An endless instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next dynamic instruction. */
    virtual TraceRecord next() = 0;

    /** Benchmark name ("pr", "mcf", ...). */
    virtual std::string name() const = 0;

    /** Virtual footprint in bytes (for reports). */
    virtual Addr footprint() const = 0;
};

} // namespace tacsim

#endif // TACSIM_CORE_TRACE_HH
