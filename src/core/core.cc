#include "core/core.hh"

#include <algorithm>

#include "common/serialize.hh"
#include "mem/request_pool.hh"
#include "obs/chrome_trace.hh"
#include "obs/registry.hh"

namespace tacsim {

Core::Core(CoreParams params, EventQueue &eq, Workload &workload,
           Tlb &dtlb, Tlb &stlb, PageTableWalker &ptw, MemDevice &l1d)
    : params_(params),
      eq_(eq),
      workload_(workload),
      dtlb_(dtlb),
      stlb_(stlb),
      ptw_(ptw),
      l1d_(l1d),
      rob_(params_.robSize)
{}

StallKind
Core::classifyHead() const
{
    const RobEntry &h = head();
    if (h.complete)
        return StallKind::None;
    if (h.kind != TraceRecord::Kind::NonMem && h.stlbMiss) {
        if (h.wait == StallKind::Translation)
            return StallKind::Translation;
        if (h.wait == StallKind::Replay)
            return StallKind::Replay;
    }
    return StallKind::Other;
}

void
Core::chargeHeadStall(Cycle n)
{
    RobEntry &h = head();
    switch (classifyHead()) {
      case StallKind::Translation:
        h.tStall += n;
        stats_.stallCyclesT += n;
        break;
      case StallKind::Replay:
        h.rStall += n;
        stats_.stallCyclesR += n;
        break;
      case StallKind::Other:
        h.nStall += n;
        stats_.stallCyclesN += n;
        break;
      case StallKind::None:
        break;
    }
}

bool
Core::blocked() const
{
    return robFull() && !head().complete;
}

void
Core::chargeSkippedCycles(Cycle n)
{
    if (count_ && !head().complete)
        chargeHeadStall(n);
}

void
Core::retireHead()
{
    RobEntry &h = head();
    TACSIM_DCHECK(h.complete);
    ++stats_.retired;
    if (h.kind == TraceRecord::Kind::Load)
        ++stats_.loads;
    else if (h.kind == TraceRecord::Kind::Store)
        ++stats_.stores;

    if (h.kind != TraceRecord::Kind::NonMem) {
        if (h.stlbMiss) {
            stats_.stallPerWalk.add(h.tStall);
            stats_.stallPerReplay.add(h.rStall);
        } else {
            stats_.stallPerNonReplay.add(h.nStall);
        }
    }
    ++headSeq_;
    --count_;
}

void
Core::tick()
{
    // 1. Retire in order, bounded by retire width.
    unsigned retiredNow = 0;
    while (count_ && retiredNow < params_.retireWidth && head().complete) {
        retireHead();
        ++retiredNow;
    }
    if (count_ && !head().complete)
        chargeHeadStall(1);

    // 2. Dispatch new instructions (suspended while draining so the
    //    ROB empties for a quiesce point).
    if (!draining_)
        for (unsigned d = 0; d < params_.issueWidth && !robFull(); ++d)
            dispatchOne();
}

void
Core::saveState(SerialWriter &w) const
{
    TACSIM_CHECK(count_ == 0 &&
                 "core checkpoint requires an empty (drained) ROB");
    w.putU64(headSeq_);
    w.putU64(nextSeq_);
    w.putI64(lastLoadSeq_);
}

void
Core::loadState(SerialReader &r)
{
    TACSIM_CHECK(count_ == 0 &&
                 "core restore requires an empty ROB");
    headSeq_ = r.getU64();
    nextSeq_ = r.getU64();
    lastLoadSeq_ = r.getI64();
    // Stale ring contents are unreachable after a drain (the only
    // cross-retire reference, lastLoadSeq_, is guarded by
    // `>= headSeq_`), but reset them anyway so a restored core is
    // bitwise-independent of pre-checkpoint history.
    for (auto &e : rob_)
        e = RobEntry{};
    waitingOnProducer_.clear();
}

void
Core::dispatchOne()
{
    const std::uint64_t seq = nextSeq_++;
    RobEntry &e = entryFor(seq);
    TraceRecord t = workload_.next();

    e.ip = t.ip;
    e.vaddr = t.vaddr;
    e.kind = t.kind;
    e.complete = false;
    e.issued = false;
    e.stlbMiss = false;
    e.wait = StallKind::None;
    e.producerSeq = -1;
    e.tStall = e.rStall = e.nStall = 0;
    ++count_;

    if (t.kind == TraceRecord::Kind::NonMem) {
        // Retire width bounds non-memory IPC; no need to model latency.
        e.complete = true;
        return;
    }

    if (t.dependsOnPrevLoad && lastLoadSeq_ >= 0 &&
        static_cast<std::uint64_t>(lastLoadSeq_) >= headSeq_ &&
        !entryFor(static_cast<std::uint64_t>(lastLoadSeq_)).complete) {
        e.producerSeq = lastLoadSeq_;
    }

    if (t.kind == TraceRecord::Kind::Load)
        lastLoadSeq_ = static_cast<std::int64_t>(seq);

    tryIssue(seq);
}

void
Core::tryIssue(std::uint64_t seq)
{
    RobEntry &e = entryFor(seq);
    if (e.issued)
        return;
    if (e.producerSeq >= 0 &&
        !entryFor(static_cast<std::uint64_t>(e.producerSeq)).complete) {
        waitingOnProducer_.push_back(seq);
        return;
    }
    issueMemOp(seq);
}

void
Core::issueMemOp(std::uint64_t seq)
{
    RobEntry &e = entryFor(seq);
    e.issued = true;

    // TLB entries carry their own granule: the hit side returns the
    // mapping's page size so the offset mask is never assumed 4K.
    Addr pfnBase = 0;
    PageSize ps = PageSize::Size4K;

    if (dtlb_.lookup(params_.asid, e.vaddr, pfnBase, ps)) {
        const Addr paddr = pfnBase | pageOffset(e.vaddr, ps);
        eq_.schedule(dtlb_.latency(), [this, seq, paddr, ps] {
            startDataAccess(seq, paddr, false, ps);
        });
        return;
    }

    if (stlb_.lookup(params_.asid, e.vaddr, pfnBase, ps)) {
        dtlb_.fill(params_.asid, e.vaddr, pfnBase, ps);
        const Addr paddr = pfnBase | pageOffset(e.vaddr, ps);
        eq_.schedule(dtlb_.latency() + stlb_.latency(),
                     [this, seq, paddr, ps] {
                         startDataAccess(seq, paddr, false, ps);
                     });
        return;
    }

    // STLB miss: page-table walk. The eventual data access is a replay.
    e.stlbMiss = true;
    e.wait = StallKind::Translation;
    ++stats_.stlbMissAccesses;
    const Addr vaddr = e.vaddr;
    const Addr ip = e.ip;
    eq_.schedule(dtlb_.latency() + stlb_.latency(), [this, seq, vaddr,
                                                     ip] {
        ptw_.walk(params_.asid, vaddr, ip, params_.cpuId,
                  [this, seq, vaddr](Addr dataPaddr, PageSize ps,
                                     RespSource) {
                      dtlb_.fill(params_.asid, vaddr,
                                 pageAlign(dataPaddr, ps), ps);
                      // The replay re-issues only after the STLB and
                      // DTLB fills complete — the window ATP exploits.
                      eq_.schedule(
                          stlb_.latency() + dtlb_.latency(),
                          [this, seq, dataPaddr, ps] {
                              startDataAccess(seq, dataPaddr, true, ps);
                          });
                  });
    });
}

void
Core::startDataAccess(std::uint64_t seq, Addr paddr, bool replay,
                      PageSize ps)
{
    RobEntry &e = entryFor(seq);
    e.wait = replay ? StallKind::Replay : StallKind::Other;

    MemRequestPtr req = makeRequest();
    req->paddr = paddr;
    req->vaddr = e.vaddr;
    req->ip = e.ip;
    req->isReplay = replay;
    req->pageSize = ps;
    req->cpu = params_.cpuId;
    req->issuedAt = eq_.now();

    if (e.kind == TraceRecord::Kind::Store) {
        // Stores retire once translated; the write proceeds in the
        // background and nobody waits on it.
        req->type = ReqType::Store;
        l1d_.access(req);
        completeEntry(seq);
        return;
    }

    req->type = ReqType::Load;
    if (tracer_ && replay) {
        const Cycle t0 = eq_.now();
        req->onComplete = [this, seq, t0](MemRequest &) {
            tracer_->span(track_, replayLoadId_, t0, eq_.now());
            completeEntry(seq);
        };
    } else {
        req->onComplete = [this, seq](MemRequest &) {
            completeEntry(seq);
        };
    }
    l1d_.access(req);
}

void
Core::registerMetrics(obs::Registry &registry, const std::string &prefix)
{
    registry.addCounter(prefix + ".retired", &stats_.retired);
    registry.addCounter(prefix + ".loads", &stats_.loads);
    registry.addCounter(prefix + ".stores", &stats_.stores);
    registry.addCounter(prefix + ".stlb_miss_accesses",
                        &stats_.stlbMissAccesses);
    registry.addCounter(prefix + ".stall_cycles.translation",
                        &stats_.stallCyclesT);
    registry.addCounter(prefix + ".stall_cycles.replay",
                        &stats_.stallCyclesR);
    registry.addCounter(prefix + ".stall_cycles.other",
                        &stats_.stallCyclesN);
    registry.addHistogram(prefix + ".stall_per_walk",
                          &stats_.stallPerWalk);
    registry.addHistogram(prefix + ".stall_per_replay",
                          &stats_.stallPerReplay);
    registry.addHistogram(prefix + ".stall_per_nonreplay",
                          &stats_.stallPerNonReplay);
    registry.addResetHook([this] { resetStats(); });
}

void
Core::setTracer(obs::ChromeTracer *tracer, std::uint32_t track)
{
    tracer_ = tracer;
    track_ = track;
    if (tracer_)
        replayLoadId_ = tracer_->intern("replay_load");
}

void
Core::completeEntry(std::uint64_t seq)
{
    RobEntry &e = entryFor(seq);
    e.complete = true;
    e.wait = StallKind::None;
    wakeDependents(seq);
}

void
Core::wakeDependents(std::uint64_t producerSeq)
{
    if (waitingOnProducer_.empty())
        return;
    std::vector<std::uint64_t> still;
    still.reserve(waitingOnProducer_.size());
    std::vector<std::uint64_t> ready;
    for (std::uint64_t s : waitingOnProducer_) {
        if (entryFor(s).producerSeq ==
            static_cast<std::int64_t>(producerSeq))
            ready.push_back(s);
        else
            still.push_back(s);
    }
    waitingOnProducer_.swap(still);
    for (std::uint64_t s : ready)
        issueMemOp(s);
}

} // namespace tacsim
