/**
 * @file
 * Out-of-order core model: a 352-entry ROB with bounded dispatch and
 * retire width, load/store issue through the DTLB -> STLB -> page-table
 * walker path, register dependences for pointer chasing, and — central to
 * the paper — per-cycle attribution of ROB-head stalls to (T) outstanding
 * translations after an STLB miss, (R) outstanding replay-load data, or
 * (N) everything else (Figs. 1 and 16).
 *
 * Fidelity notes (see DESIGN.md §5): dispatch is in-order at issue-width,
 * non-memory ops complete immediately (retire width bounds their IPC),
 * stores complete when their translation resolves and write back in the
 * background; the front-end is ideal. These are the standard
 * trace-driven simplifications; the mechanisms under study act purely on
 * the memory hierarchy.
 */

#ifndef TACSIM_CORE_CORE_HH
#define TACSIM_CORE_CORE_HH

#include <cstdint>
#include <vector>

#include "common/event_queue.hh"
#include "common/histogram.hh"
#include "common/types.hh"
#include "core/trace.hh"
#include "mem/request.hh"
#include "vm/ptw.hh"
#include "vm/tlb.hh"

namespace tacsim {

namespace obs {
class ChromeTracer;
class Registry;
} // namespace obs

struct CoreParams
{
    unsigned robSize = 352;
    unsigned issueWidth = 6;
    unsigned retireWidth = 4;
    std::uint16_t cpuId = 0;
    std::uint16_t asid = 0;
};

/** Why the ROB head could not retire this cycle. */
enum class StallKind : std::uint8_t
{
    None,
    Translation, ///< head is a demand access waiting on an STLB-miss walk
    Replay,      ///< head is a replay load waiting on its data
    Other,       ///< non-replay data wait or pipeline latency
};

struct CoreStats
{
    std::uint64_t retired = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t stlbMissAccesses = 0; ///< demand accesses that walked

    std::uint64_t stallCyclesT = 0; ///< ROB-head cycles waiting: walk
    std::uint64_t stallCyclesR = 0; ///< ROB-head cycles waiting: replay
    std::uint64_t stallCyclesN = 0; ///< ROB-head cycles waiting: other

    /** Per-retired-access head-stall distributions (paper Fig. 1). */
    Histogram stallPerWalk{std::vector<std::uint64_t>{10, 25, 50, 100}};
    Histogram stallPerReplay{
        std::vector<std::uint64_t>{50, 100, 200, 400}};
    Histogram stallPerNonReplay{
        std::vector<std::uint64_t>{10, 25, 50, 100}};

    void reset() { *this = CoreStats{}; }
};

class Core
{
  public:
    Core(CoreParams params, EventQueue &eq, Workload &workload, Tlb &dtlb,
         Tlb &stlb, PageTableWalker &ptw, MemDevice &l1d);

    /** Advance one cycle: retire, wake dependents, dispatch, issue. */
    void tick();

    /**
     * True when this core cannot change state until an external event
     * fires (ROB full, head incomplete). Used for cycle skipping.
     */
    bool blocked() const;

    /** Charge @p n skipped cycles of head stall (cycle-skip support). */
    void chargeSkippedCycles(Cycle n);

    std::uint64_t retired() const { return stats_.retired; }
    const CoreStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    const CoreParams &params() const { return params_; }

    /** Register retirement/stall counters and histograms under
     *  "@p prefix.", plus the reset hook. */
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);

    /** Attach a Chrome tracer; every replay load's issue-to-data window
     *  is emitted as a span on @p track. Pass nullptr to detach. */
    void setTracer(obs::ChromeTracer *tracer, std::uint32_t track);

    /**
     * Drain mode (System::quiesce): suspend dispatch so in-flight ROB
     * entries retire and the core winds down to an empty ROB without
     * consuming further workload records. Retire/issue/wakeup proceed
     * normally during drain.
     */
    void beginDrain() { draining_ = true; }
    void endDrain() { draining_ = false; }
    bool robEmpty() const { return count_ == 0; }

    /**
     * Checkpoint the architectural cursor (tacsim-ckpt-v1). Only legal
     * when the ROB is empty (post-quiesce): with all entries retired,
     * the sequence cursors fully determine future behaviour — stale
     * rob_ ring contents are unreachable because the only cross-retire
     * reference, lastLoadSeq_, is guarded by `>= headSeq_` at every
     * use.
     */
    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    struct RobEntry
    {
        Addr ip = 0;
        Addr vaddr = 0;
        TraceRecord::Kind kind = TraceRecord::Kind::NonMem;
        bool complete = false;
        bool issued = false;
        bool stlbMiss = false;
        StallKind wait = StallKind::None;
        std::int64_t producerSeq = -1; ///< seq of producing load, -1 none
        Cycle tStall = 0;
        Cycle rStall = 0;
        Cycle nStall = 0;
    };

    RobEntry &entryFor(std::uint64_t seq)
    {
        return rob_[seq % params_.robSize];
    }

    bool robFull() const { return count_ == params_.robSize; }
    RobEntry &head() { return rob_[headSeq_ % params_.robSize]; }
    const RobEntry &head() const
    {
        return rob_[headSeq_ % params_.robSize];
    }

    StallKind classifyHead() const;
    void chargeHeadStall(Cycle n);
    void retireHead();
    void dispatchOne();
    void tryIssue(std::uint64_t seq);
    void issueMemOp(std::uint64_t seq);
    void startDataAccess(std::uint64_t seq, Addr paddr, bool replay,
                         PageSize ps = PageSize::Size4K);
    void completeEntry(std::uint64_t seq);
    void wakeDependents(std::uint64_t producerSeq);

    CoreParams params_;
    EventQueue &eq_;
    Workload &workload_;
    Tlb &dtlb_;
    Tlb &stlb_;
    PageTableWalker &ptw_;
    MemDevice &l1d_;

    std::vector<RobEntry> rob_;
    std::uint64_t headSeq_ = 0; ///< sequence number of the ROB head
    std::uint64_t nextSeq_ = 0; ///< next sequence number to dispatch
    unsigned count_ = 0;

    std::int64_t lastLoadSeq_ = -1;
    std::vector<std::uint64_t> waitingOnProducer_;
    bool draining_ = false; ///< dispatch suspended (System::quiesce)

    obs::ChromeTracer *tracer_ = nullptr; ///< null = tracing disabled
    std::uint32_t track_ = 0;
    std::uint32_t replayLoadId_ = 0;

    CoreStats stats_;
};

} // namespace tacsim

#endif // TACSIM_CORE_CORE_HH
