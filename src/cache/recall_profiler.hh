/**
 * @file
 * Recall-distance profiler (paper Figs. 5, 7, 18).
 *
 * The paper defines *recall distance* as the number of accesses that
 * arrive at a cache set between a block's eviction and its next request.
 * (This differs from reuse distance, which is measured between uses while
 * resident.) The profiler stamps a per-set access counter at eviction and
 * reports the delta when the block is requested again.
 *
 * Translations are tracked in every set; data blocks are tracked in a
 * sampled subset of sets to bound memory.
 */

#ifndef TACSIM_CACHE_RECALL_PROFILER_HH
#define TACSIM_CACHE_RECALL_PROFILER_HH

#include <vector>

#include "cache/block.hh"
#include "common/addr_map.hh"
#include "common/histogram.hh"
#include "common/types.hh"

namespace tacsim {

class RecallProfiler
{
  public:
    /**
     * @param sets number of sets in the profiled structure
     * @param dataSampleStride track data blocks only in sets where
     *        set % stride == 0 (1 = all sets)
     */
    explicit RecallProfiler(std::uint32_t sets,
                            std::uint32_t dataSampleStride = 16)
        : counters_(sets, 0), stride_(dataSampleStride)
    {}

    /** Record an access (hit or miss) for block @p block in @p set. */
    void
    onAccess(std::uint32_t set, Addr block, BlockCat cat)
    {
        ++counters_[set];
        if (!tracked(set, cat))
            return;
        if (const std::uint64_t *stamp = evicted_.find(block)) {
            histFor(cat).add(counters_[set] - *stamp);
            evicted_.erase(block);
        }
    }

    /** Record an eviction of @p block from @p set. */
    void
    onEvict(std::uint32_t set, Addr block, BlockCat cat)
    {
        if (!tracked(set, cat) || evicted_.size() >= kMaxTracked)
            return;
        if (std::uint64_t *stamp = evicted_.find(block))
            *stamp = counters_[set];
        else
            evicted_.insert(block, counters_[set]);
    }

    const Histogram &translationHist() const { return trHist_; }
    const Histogram &replayHist() const { return replayHist_; }
    const Histogram &nonReplayHist() const { return dataHist_; }

    void
    reset()
    {
        trHist_.reset();
        replayHist_.reset();
        dataHist_.reset();
        evicted_.clear();
    }

  private:
    static constexpr std::size_t kMaxTracked = 1u << 22;

    bool
    tracked(std::uint32_t set, BlockCat cat) const
    {
        if (cat == BlockCat::PtLeaf || cat == BlockCat::PtUpper)
            return true;
        return set % stride_ == 0;
    }

    Histogram &
    histFor(BlockCat cat)
    {
        switch (cat) {
          case BlockCat::PtLeaf:
          case BlockCat::PtUpper:
            return trHist_;
          case BlockCat::Replay:
            return replayHist_;
          default:
            return dataHist_;
        }
    }

    std::vector<std::uint64_t> counters_;
    std::uint32_t stride_;
    /** Eviction stamps by block address; only ever probed by key, so
     *  AddrMap's hash-dependent slot order cannot leak anywhere. */
    AddrMap<std::uint64_t> evicted_;
    Histogram trHist_;
    Histogram replayHist_;
    Histogram dataHist_;
};

} // namespace tacsim

#endif // TACSIM_CACHE_RECALL_PROFILER_HH
