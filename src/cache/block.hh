/**
 * @file
 * Per-block metadata and the access-descriptor passed to replacement
 * policies and prefetchers.
 */

#ifndef TACSIM_CACHE_BLOCK_HH
#define TACSIM_CACHE_BLOCK_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/request.hh"

namespace tacsim {

/**
 * Classification of a cache block / access that the paper's mechanisms
 * key on (§III-IV).
 */
enum class BlockCat : std::uint8_t
{
    NonReplay, ///< demand data, translation hit in STLB
    Replay,    ///< demand data whose translation missed the STLB
    PtLeaf,    ///< leaf-level (PTL1) page-table entries
    PtUpper,   ///< non-leaf page-table entries (PTL2..PTL5)
    Prefetch,  ///< brought in by a hardware prefetcher
    Writeback, ///< dirty eviction from above
};

constexpr std::size_t kNumBlockCats = 6;

/** Derive the category of a request. */
inline BlockCat
categorize(const MemRequest &req)
{
    switch (req.type) {
      case ReqType::Translation:
        // The leaf may sit at level 2/3 (huge pages), and nested host
        // reads are upper-level traffic even at host level 1 — so the
        // request's explicit leaf flag decides, not the level number.
        return req.isLeafTranslation() ? BlockCat::PtLeaf
                                       : BlockCat::PtUpper;
      case ReqType::Prefetch:
        return BlockCat::Prefetch;
      case ReqType::Writeback:
        return BlockCat::Writeback;
      default:
        return req.isReplay ? BlockCat::Replay : BlockCat::NonReplay;
    }
}

/** Metadata of one cache block frame. */
struct BlockMeta
{
    Addr tag = 0;           ///< block address (full, block-aligned)
    bool valid = false;
    bool dirty = false;
    bool reused = false;    ///< hit at least once since fill
    BlockCat cat = BlockCat::NonReplay;
    PrefetchOrigin prefetchOrigin = PrefetchOrigin::None;
    Addr fillIp = 0;        ///< IP of the filling access (policy training)
};

/**
 * Snapshot of an access handed to replacement policies and prefetchers.
 * This carries the flags the paper adds from the PTW into the hierarchy.
 */
struct AccessInfo
{
    Addr blockAddr = 0;  ///< block-aligned physical address
    Addr vaddr = 0;      ///< virtual address (0 for PTW traffic)
    Addr ip = 0;
    BlockCat cat = BlockCat::NonReplay;
    std::uint8_t ptLevel = 0; ///< 1..5 for translations, else 0
    bool leafPte = false;     ///< translation read of the leaf PTE
    PageSize pageSize = PageSize::Size4K; ///< data page granule
    bool isReplay = false;
    bool distantHint = false; ///< insert with eviction priority (ATP/TEMPO)
    PrefetchOrigin origin = PrefetchOrigin::None;
    std::uint16_t cpu = 0;

    bool isTranslation() const { return ptLevel != 0; }
    bool isLeafTranslation() const { return leafPte; }
};

/** Build an AccessInfo from a request. */
inline AccessInfo
accessInfoFor(const MemRequest &req)
{
    AccessInfo ai;
    ai.blockAddr = req.blockAddr();
    ai.vaddr = req.vaddr;
    ai.ip = req.ip;
    ai.cat = categorize(req);
    ai.ptLevel = req.ptLevel;
    ai.leafPte = req.leafPte;
    ai.pageSize = req.pageSize;
    ai.isReplay = req.isReplay;
    ai.distantHint = req.prefetchOrigin == PrefetchOrigin::Atp ||
        req.prefetchOrigin == PrefetchOrigin::Tempo;
    ai.origin = req.prefetchOrigin;
    ai.cpu = req.cpu;
    return ai;
}

} // namespace tacsim

#endif // TACSIM_CACHE_BLOCK_HH
