#include "cache/repl/rrip.hh"

#include <algorithm>
#include <sstream>

#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

RripBase::RripBase(std::uint32_t sets, std::uint32_t ways, ReplOpts opts)
    : ReplPolicy(sets, ways, opts),
      rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
{}

std::uint32_t
RripBase::victim(std::uint32_t set, const AccessInfo &, const BlockMeta *)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    // Evict the first block at distant RRPV; if none, age the whole set
    // and retry (guaranteed to terminate).
    for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[base + w] == kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < ways_; ++w)
            ++rrpv_[base + w];
    }
}

void
RripBase::onHit(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    setRrpv(set, way, 0);
}

void
RripBase::checkInvariants(const std::string &owner) const
{
    for (std::uint32_t set = 0; set < sets_; ++set) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (rrpv(set, w) > kMaxRrpv) {
                std::ostringstream os;
                os << "rrpv=" << static_cast<int>(rrpv(set, w))
                   << " exceeds max " << static_cast<int>(kMaxRrpv);
                throw verify::InvariantViolation(owner + "/" + name(),
                                                 "rrpv-range", os.str(),
                                                 set, w);
            }
        }
    }
}

std::uint8_t
RripBase::overrideInsertion(const AccessInfo &ai, std::uint8_t base) const
{
    // ATP / TEMPO prefetches are inserted dead-on-arrival by design.
    if (ai.distantHint)
        return kMaxRrpv;
    if (opts_.translationRrpv0 && ai.isLeafTranslation())
        return 0;
    if (ai.isReplay && ai.cat == BlockCat::Replay) {
        if (opts_.replayRrpv0)
            return 0; // Fig. 10 ablation
        if (opts_.replayEvictFast)
            return kMaxRrpv;
    }
    return base;
}

void
SrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &ai)
{
    setRrpv(set, way, overrideInsertion(ai, kMaxRrpv - 1));
}

void
BrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &ai)
{
    const std::uint8_t base =
        rng_.range(32) == 0 ? kMaxRrpv - 1 : kMaxRrpv;
    setRrpv(set, way, overrideInsertion(ai, base));
}

DrripPolicy::DrripPolicy(std::uint32_t sets, std::uint32_t ways,
                         ReplOpts opts, std::uint64_t seed)
    : RripBase(sets, ways, opts), rng_(seed)
{
    // Spread the leader sets evenly: sets [k*stride] lead for SRRIP,
    // [k*stride + stride/2] for BRRIP. Cap the leader count at sets/4
    // per policy so at least half the sets stay followers — otherwise a
    // small cache (sets < 2*kLeaderSets) would make every set a leader
    // and PSEL would steer nothing. Caches with fewer than 4 sets run
    // with no leaders at all (pure SRRIP insertion at the PSEL default).
    const std::uint32_t leaders =
        std::min<std::uint32_t>(kLeaderSets, sets_ / 4);
    leaderStride_ = leaders ? sets_ / leaders : 0;
}

bool
DrripPolicy::isSrripLeader(std::uint32_t set) const
{
    return leaderStride_ && set % leaderStride_ == 0;
}

bool
DrripPolicy::isBrripLeader(std::uint32_t set) const
{
    return leaderStride_ && set % leaderStride_ == leaderStride_ / 2;
}

void
DrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &ai)
{
    // A fill implies a miss; leader-set misses steer PSEL.
    bool useBrrip;
    if (isSrripLeader(set)) {
        useBrrip = false;
        if (psel_ < kPselMax)
            ++psel_; // SRRIP leader missed: vote for BRRIP
    } else if (isBrripLeader(set)) {
        useBrrip = true;
        if (psel_ > 0)
            --psel_; // BRRIP leader missed: vote for SRRIP
    } else {
        useBrrip = psel_ > kPselMax / 2;
    }

    std::uint8_t base;
    if (useBrrip)
        base = rng_.range(32) == 0 ? kMaxRrpv - 1 : kMaxRrpv;
    else
        base = kMaxRrpv - 1;
    setRrpv(set, way, overrideInsertion(ai, base));
}

void
DrripPolicy::checkInvariants(const std::string &owner) const
{
    RripBase::checkInvariants(owner);
    const std::string who = owner + "/" + name();
    if (psel_ < 0 || psel_ > kPselMax) {
        std::ostringstream os;
        os << "psel=" << psel_ << " outside [0, " << kPselMax << "]";
        throw verify::InvariantViolation(who, "psel-range", os.str());
    }
    std::uint32_t srrip = 0, brrip = 0;
    for (std::uint32_t set = 0; set < sets_; ++set) {
        const bool s = isSrripLeader(set);
        const bool b = isBrripLeader(set);
        if (s && b)
            throw verify::InvariantViolation(
                who, "leader-overlap",
                "set leads for both SRRIP and BRRIP", set);
        srrip += s;
        brrip += b;
    }
    // The constructor caps leaders so at least half the sets follow.
    if (srrip + brrip > sets_ / 2) {
        std::ostringstream os;
        os << srrip << "+" << brrip << " leader sets of " << sets_
           << " leave fewer than half as followers";
        throw verify::InvariantViolation(who, "leader-coverage", os.str());
    }
}

std::string
DrripPolicy::name() const
{
    if (opts_.translationRrpv0 || opts_.replayEvictFast)
        return "T-DRRIP";
    return "DRRIP";
}

void
DrripPolicy::registerMetrics(obs::Registry &registry,
                             const std::string &prefix)
{
    // PSEL is architectural set-dueling state: exposed as a gauge so the
    // timeline shows insertion-policy flips, exempt from stats resets.
    registry.addGauge(prefix + "." + metricSlug(name()) + ".psel",
                      [this] { return double(psel_); });
}

} // namespace tacsim
