/**
 * @file
 * CSALT-style dynamic translation/data cache partitioning (Marathe et
 * al., MICRO'17), used as a comparison point in the paper's §V-B.
 *
 * CSALT partitions LLC ways between page-table (translation) blocks and
 * data blocks, steering the split with hit-rate counters: each epoch it
 * compares translation and data hit rates and shifts the translation way
 * quota toward the class with the worse absolute hit yield per way. Our
 * implementation wraps a baseline policy for intra-class recency.
 */

#ifndef TACSIM_CACHE_REPL_CSALT_HH
#define TACSIM_CACHE_REPL_CSALT_HH

#include <memory>
#include <vector>

#include "cache/repl/policy.hh"

namespace tacsim {

class CsaltPolicy : public ReplPolicy
{
  public:
    static constexpr std::uint64_t kEpochAccesses = 8192;

    CsaltPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts,
                std::unique_ptr<ReplPolicy> inner);

    std::uint32_t victim(std::uint32_t set, const AccessInfo &ai,
                         const BlockMeta *blocks) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &ai) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const BlockMeta &meta) override;
    std::string name() const override;
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix) override;
    void resetStats() override { inner_->resetStats(); }
    void checkInvariants(const std::string &owner) const override;

    /** Current translation way quota — exposed for tests. */
    std::uint32_t translationQuota() const { return quota_; }

  private:
    void epochTick(const AccessInfo &ai, bool hit);

    std::unique_ptr<ReplPolicy> inner_;
    std::uint32_t quota_; ///< max ways translations may occupy per set

    std::uint64_t epochAccesses_ = 0;
    std::uint64_t trAcc_ = 0, trHit_ = 0;
    std::uint64_t dataAcc_ = 0, dataHit_ = 0;
};

} // namespace tacsim

#endif // TACSIM_CACHE_REPL_CSALT_HH
