#include "cache/repl/basic.hh"
#include "cache/repl/hawkeye.hh"
#include "cache/repl/policy.hh"
#include "cache/repl/rrip.hh"
#include "cache/repl/ship.hh"

namespace tacsim {

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::LRU: return "LRU";
      case PolicyKind::Random: return "Random";
      case PolicyKind::SRRIP: return "SRRIP";
      case PolicyKind::BRRIP: return "BRRIP";
      case PolicyKind::DRRIP: return "DRRIP";
      case PolicyKind::SHiP: return "SHiP";
      case PolicyKind::Hawkeye: return "Hawkeye";
    }
    return "?";
}

std::string
metricSlug(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c >= 'A' && c <= 'Z')
            out += static_cast<char>(c - 'A' + 'a');
        else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            out += c;
    }
    return out.empty() ? std::string("policy") : out;
}

std::unique_ptr<ReplPolicy>
makePolicy(PolicyKind kind, std::uint32_t sets, std::uint32_t ways,
           ReplOpts opts, std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::LRU:
        return std::make_unique<LruPolicy>(sets, ways, opts);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, opts, seed);
      case PolicyKind::SRRIP:
        return std::make_unique<SrripPolicy>(sets, ways, opts);
      case PolicyKind::BRRIP:
        return std::make_unique<BrripPolicy>(sets, ways, opts, seed);
      case PolicyKind::DRRIP:
        return std::make_unique<DrripPolicy>(sets, ways, opts, seed);
      case PolicyKind::SHiP:
        return std::make_unique<ShipPolicy>(sets, ways, opts);
      case PolicyKind::Hawkeye:
        return std::make_unique<HawkeyePolicy>(sets, ways, opts);
    }
    return nullptr;
}

} // namespace tacsim
