/**
 * @file
 * Baseline recency policies: true LRU and Random replacement.
 */

#ifndef TACSIM_CACHE_REPL_BASIC_HH
#define TACSIM_CACHE_REPL_BASIC_HH

#include <vector>

#include "cache/repl/policy.hh"
#include "common/rng.hh"

namespace tacsim {

/**
 * True LRU with optional translation-conscious insertion: with
 * opts.translationRrpv0, leaf-translation fills go to MRU (default
 * behaviour anyway); with opts.replayEvictFast, replay fills go to LRU
 * position.
 */
class LruPolicy : public ReplPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts);

    std::uint32_t victim(std::uint32_t set, const AccessInfo &ai,
                         const BlockMeta *blocks) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &ai) override;
    std::string name() const override { return "LRU"; }

    void
    saveState(SerialWriter &w) const override
    {
        w.putU64(clock_);
        w.putU64(stamp_.size());
        for (std::uint64_t s : stamp_)
            w.putU64(s);
    }

    void
    loadState(SerialReader &r) override
    {
        clock_ = r.getU64();
        if (r.getU64() != stamp_.size())
            throw std::runtime_error(
                "checkpoint: LRU stamp count mismatch");
        for (auto &s : stamp_)
            s = r.getU64();
    }

  private:
    /** stamp_[set*ways+way]: larger = more recently used. */
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 1;
};

/** Uniform-random replacement (lower bound for comparisons). */
class RandomPolicy : public ReplPolicy
{
  public:
    RandomPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts,
                 std::uint64_t seed)
        : ReplPolicy(sets, ways, opts), rng_(seed)
    {}

    std::uint32_t
    victim(std::uint32_t, const AccessInfo &, const BlockMeta *) override
    {
        return static_cast<std::uint32_t>(rng_.range(ways_));
    }

    void onFill(std::uint32_t, std::uint32_t, const AccessInfo &) override
    {}
    void onHit(std::uint32_t, std::uint32_t, const AccessInfo &) override {}
    std::string name() const override { return "Random"; }

    void
    saveState(SerialWriter &w) const override
    {
        std::uint64_t s[Rng::kStateWords];
        rng_.state(s);
        for (std::uint64_t word : s)
            w.putU64(word);
    }

    void
    loadState(SerialReader &r) override
    {
        std::uint64_t s[Rng::kStateWords];
        for (auto &word : s)
            word = r.getU64();
        rng_.setState(s);
    }

  private:
    Rng rng_;
};

} // namespace tacsim

#endif // TACSIM_CACHE_REPL_BASIC_HH
