#include "cache/repl/csalt.hh"

#include <algorithm>
#include <sstream>

#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

CsaltPolicy::CsaltPolicy(std::uint32_t sets, std::uint32_t ways,
                         ReplOpts opts, std::unique_ptr<ReplPolicy> inner)
    : ReplPolicy(sets, ways, opts),
      inner_(std::move(inner)),
      quota_(std::max(1u, ways / 8)) // start with a small translation slice
{}

void
CsaltPolicy::epochTick(const AccessInfo &ai, bool hit)
{
    if (ai.cat == BlockCat::Writeback)
        return;
    if (ai.isTranslation()) {
        ++trAcc_;
        trHit_ += hit;
    } else {
        ++dataAcc_;
        dataHit_ += hit;
    }
    if (++epochAccesses_ < kEpochAccesses)
        return;

    // Grow the slice of whichever class is missing more, one way at a
    // time, bounded to [1, ways-1].
    const double trMiss =
        trAcc_ ? double(trAcc_ - trHit_) / double(trAcc_) : 0.0;
    const double dataMiss =
        dataAcc_ ? double(dataAcc_ - dataHit_) / double(dataAcc_) : 0.0;
    if (trAcc_ > 64 && trMiss > dataMiss && quota_ < ways_ - 1)
        ++quota_;
    else if (dataMiss > trMiss && quota_ > 1)
        --quota_;

    epochAccesses_ = trAcc_ = trHit_ = dataAcc_ = dataHit_ = 0;
}

std::uint32_t
CsaltPolicy::victim(std::uint32_t set, const AccessInfo &ai,
                    const BlockMeta *blocks)
{
    // Enforce the partition: if the incoming block's class is over quota,
    // evict within the class; otherwise evict from the other class first
    // when it is over its own quota, falling back to the inner policy.
    std::uint32_t trWays = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (blocks[w].valid && (blocks[w].cat == BlockCat::PtLeaf ||
                                blocks[w].cat == BlockCat::PtUpper))
            ++trWays;
    }

    const bool incomingTr = ai.isTranslation();
    const bool trOver = trWays > quota_;
    const bool trUnder = trWays < quota_;

    // Choose the class we must evict from, if constrained.
    int evictClass = -1; // -1: unconstrained, 0: data, 1: translation
    if (incomingTr && !trUnder)
        evictClass = 1; // translations at/over quota replace translations
    else if (!incomingTr && trOver)
        evictClass = 1; // reclaim over-quota translation ways for data
    else if (!incomingTr)
        evictClass = 0;

    if (evictClass >= 0) {
        // Delegate recency to the inner policy but restrict candidates:
        // scan in inner-victim order by repeatedly asking for a victim is
        // not possible, so pick the inner victim if it matches the class,
        // else the first block of the class.
        const std::uint32_t v = inner_->victim(set, ai, blocks);
        const bool vIsTr = blocks[v].valid &&
            (blocks[v].cat == BlockCat::PtLeaf ||
             blocks[v].cat == BlockCat::PtUpper);
        if ((evictClass == 1) == vIsTr)
            return v;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const bool isTr = blocks[w].valid &&
                (blocks[w].cat == BlockCat::PtLeaf ||
                 blocks[w].cat == BlockCat::PtUpper);
            if ((evictClass == 1) == isTr)
                return w;
        }
        return v; // class not present; fall back
    }
    return inner_->victim(set, ai, blocks);
}

void
CsaltPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &ai)
{
    epochTick(ai, false);
    inner_->onFill(set, way, ai);
}

void
CsaltPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &ai)
{
    epochTick(ai, true);
    inner_->onHit(set, way, ai);
}

void
CsaltPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                     const BlockMeta &meta)
{
    inner_->onEvict(set, way, meta);
}

void
CsaltPolicy::checkInvariants(const std::string &owner) const
{
    const std::string who = owner + "/" + name();
    if (quota_ < 1 || quota_ > ways_ - 1) {
        std::ostringstream os;
        os << "translation quota " << quota_ << " outside [1, "
           << ways_ - 1 << "]";
        throw verify::InvariantViolation(who, "quota-range", os.str());
    }
    if (epochAccesses_ >= kEpochAccesses) {
        std::ostringstream os;
        os << "epoch counter " << epochAccesses_
           << " missed its rollover at " << kEpochAccesses;
        throw verify::InvariantViolation(who, "epoch-rollover", os.str());
    }
    inner_->checkInvariants(owner);
}

std::string
CsaltPolicy::name() const
{
    return "CSALT(" + inner_->name() + ")";
}

void
CsaltPolicy::registerMetrics(obs::Registry &registry,
                             const std::string &prefix)
{
    // The way quota is architectural partitioning state (persists across
    // stats resets), hence a gauge rather than a counter.
    registry.addGauge(prefix + ".csalt.quota",
                      [this] { return double(quota_); });
    inner_->registerMetrics(registry, prefix);
}

} // namespace tacsim
