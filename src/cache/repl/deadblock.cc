#include "cache/repl/deadblock.hh"

#include <sstream>

#include "common/rng.hh"
#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

DeadBlockPolicy::DeadBlockPolicy(std::uint32_t sets, std::uint32_t ways,
                                 ReplOpts opts,
                                 std::unique_ptr<ReplPolicy> inner)
    : ReplPolicy(sets, ways, opts),
      inner_(std::move(inner)),
      deadCtr_(kTableSize, 0),
      blockIdx_(static_cast<std::size_t>(sets) * ways, 0),
      blockReused_(static_cast<std::size_t>(sets) * ways, 0)
{}

std::uint32_t
DeadBlockPolicy::indexOf(Addr ip) const
{
    return static_cast<std::uint32_t>(hashMix(ip) & (kTableSize - 1));
}

bool
DeadBlockPolicy::bypassFill(std::uint32_t set, const AccessInfo &ai)
{
    // Never bypass translations or writebacks; bypass data fills whose
    // signature has a saturated dead counter.
    if (ai.isTranslation() || ai.cat == BlockCat::Writeback)
        return inner_->bypassFill(set, ai);
    if (deadCtr_[indexOf(ai.ip)] >= kDeadThreshold) {
        ++bypasses_;
        return true;
    }
    return false;
}

std::uint32_t
DeadBlockPolicy::victim(std::uint32_t set, const AccessInfo &ai,
                        const BlockMeta *blocks)
{
    return inner_->victim(set, ai, blocks);
}

void
DeadBlockPolicy::onFill(std::uint32_t set, std::uint32_t way,
                        const AccessInfo &ai)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    blockIdx_[idx] = indexOf(ai.ip);
    blockReused_[idx] = 0;
    inner_->onFill(set, way, ai);
}

void
DeadBlockPolicy::onHit(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &ai)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    if (!blockReused_[idx]) {
        blockReused_[idx] = 1;
        std::uint8_t &c = deadCtr_[blockIdx_[idx]];
        if (c > 0)
            --c;
    }
    inner_->onHit(set, way, ai);
}

void
DeadBlockPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                         const BlockMeta &meta)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    if (meta.valid && !blockReused_[idx]) {
        std::uint8_t &c = deadCtr_[blockIdx_[idx]];
        if (c < kCtrMax)
            ++c;
    }
    inner_->onEvict(set, way, meta);
}

void
DeadBlockPolicy::checkInvariants(const std::string &owner) const
{
    const std::string who = owner + "/" + name();
    for (std::uint32_t i = 0; i < kTableSize; ++i) {
        if (deadCtr_[i] > kCtrMax) {
            std::ostringstream os;
            os << "deadCtr[" << i << "]=" << static_cast<int>(deadCtr_[i])
               << " exceeds " << static_cast<int>(kCtrMax);
            throw verify::InvariantViolation(who, "deadctr-range",
                                             os.str());
        }
    }
    for (std::uint32_t set = 0; set < sets_; ++set) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::size_t idx =
                static_cast<std::size_t>(set) * ways_ + w;
            if (blockIdx_[idx] >= kTableSize)
                throw verify::InvariantViolation(
                    who, "sig-range", "predictor index out of table",
                    set, w);
            if (blockReused_[idx] > 1)
                throw verify::InvariantViolation(
                    who, "outcome-range", "reuse bit not 0/1", set, w);
        }
    }
    inner_->checkInvariants(owner);
}

std::string
DeadBlockPolicy::name() const
{
    return "CbPred(" + inner_->name() + ")";
}

void
DeadBlockPolicy::registerMetrics(obs::Registry &registry,
                                 const std::string &prefix)
{
    registry.addCounter(prefix + ".cbpred.bypasses", &bypasses_);
    inner_->registerMetrics(registry, prefix);
}

void
DeadBlockPolicy::resetStats()
{
    bypasses_ = 0;
    inner_->resetStats();
}

} // namespace tacsim
