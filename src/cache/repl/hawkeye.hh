/**
 * @file
 * Hawkeye (Jain & Lin, ISCA'16): learns from Belady's OPT on sampled sets
 * via OPTgen occupancy vectors and predicts per-PC cache friendliness.
 * Includes the paper's T-Hawkeye / NewSign variants through ReplOpts.
 *
 * Structure mirrors the CRC-2 reference release: a sampler of ~64 sets
 * records (address, time, PC) triples; OPTgen replays each reuse interval
 * against an occupancy vector of the set's capacity to decide whether OPT
 * would have hit, training a 3-bit per-PC counter up or down. Insertions
 * predicted cache-friendly get RRPV=0 (and age the rest of the set);
 * cache-averse insertions get RRPV=7. Evicting a friendly block detrains
 * the PC that last touched it.
 */

#ifndef TACSIM_CACHE_REPL_HAWKEYE_HH
#define TACSIM_CACHE_REPL_HAWKEYE_HH

#include <unordered_map>
#include <vector>

#include "cache/repl/policy.hh"

namespace tacsim {

class HawkeyePolicy : public ReplPolicy
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 7; // 3-bit RRPV
    static constexpr std::uint32_t kPredBits = 13;
    static constexpr std::uint32_t kPredSize = 1u << kPredBits;
    static constexpr std::uint8_t kCtrMax = 7;
    static constexpr std::uint8_t kFriendlyThreshold = 4;
    static constexpr std::uint32_t kTargetSampledSets = 64;

    HawkeyePolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts);

    std::uint32_t victim(std::uint32_t set, const AccessInfo &ai,
                         const BlockMeta *blocks) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &ai) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const BlockMeta &meta) override;
    std::string name() const override;
    void checkInvariants(const std::string &owner) const override;

    /** Predictor counter for a signature — exposed for tests. */
    std::uint8_t predictorCounter(std::uint32_t idx) const
    {
        return pred_[idx];
    }

    /** Predictor index for an access — exposed for tests. */
    std::uint32_t predIndex(Addr ip, bool isTranslation,
                            bool isReplay) const;

  private:
    struct SampledSet
    {
        std::uint64_t clock = 0;
        std::vector<std::uint8_t> occupancy; ///< circular, size history
        struct Entry
        {
            Addr block = 0;
            std::uint64_t lastTime = 0;
            std::uint32_t lastSig = 0;
            bool valid = false;
        };
        std::vector<Entry> entries;
    };

    bool isSampled(std::uint32_t set) const
    {
        return set % sampleStride_ == 0;
    }

    /** OPTgen training on an access to a sampled set. */
    void train(std::uint32_t set, const AccessInfo &ai);

    void trainUp(std::uint32_t sig);
    void trainDown(std::uint32_t sig);
    bool friendly(std::uint32_t sig) const
    {
        return pred_[sig] >= kFriendlyThreshold;
    }

    std::uint32_t sigOf(const AccessInfo &ai) const;
    void touch(std::uint32_t set, std::uint32_t way, const AccessInfo &ai,
               bool isFill);

    std::uint32_t sampleStride_;
    std::uint32_t history_; ///< OPTgen window: 8 * ways

    std::vector<std::uint8_t> pred_;
    std::vector<std::uint8_t> rrpv_;
    std::vector<std::uint32_t> blockSig_;   ///< last-touching signature
    std::vector<std::uint8_t> blockFriendly_;
    // tacsim-lint: allow(hot-path-container) sparse map over ~64 sampled sets, touched only on sampled-set accesses and only by keyed lookup
    std::unordered_map<std::uint32_t, SampledSet> samples_;
};

} // namespace tacsim

#endif // TACSIM_CACHE_REPL_HAWKEYE_HH
