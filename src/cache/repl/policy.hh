/**
 * @file
 * Abstract replacement policy interface and the option block that turns a
 * baseline policy into its translation-conscious variant.
 *
 * A policy is three sub-policies (paper §II-B): insertion (onFill),
 * promotion (onHit) and eviction (victim). Policies own whatever state
 * they need (RRPVs, SHCT, OPTgen...); the cache owns the tags.
 */

#ifndef TACSIM_CACHE_REPL_POLICY_HH
#define TACSIM_CACHE_REPL_POLICY_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/block.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace tacsim {

namespace obs {
class Registry;
} // namespace obs

/**
 * Flags layering the paper's enhancements on a baseline policy.
 *
 * All combinations are expressible so the ablations (Figs. 10, 12) fall
 * out of the same code:
 *  - T-DRRIP  = DRRIP  + translationRrpv0 + replayEvictFast
 *  - NewSign  = SHiP   + newSignatures
 *  - T-SHiP   = SHiP   + newSignatures + translationRrpv0
 *  - T-Hawkeye= Hawkeye+ newSignatures + translationRrpv0
 *  - Fig. 10 ablation = + replayRrpv0 (instead of replayEvictFast)
 */
struct ReplOpts
{
    /** Insert leaf-level translation fills with RRPV=0 / MRU. */
    bool translationRrpv0 = false;
    /** Insert replay-load fills with RRPV=max (dead-on-arrival). */
    bool replayEvictFast = false;
    /** Extend IP signatures with IsTranslation/IsReplay flag bits. */
    bool newSignatures = false;
    /** Ablation (paper Fig. 10): insert replays at RRPV=0 too. */
    bool replayRrpv0 = false;
};

/** Replacement policy for one set-associative array. */
class ReplPolicy
{
  public:
    ReplPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts)
        : sets_(sets), ways_(ways), opts_(opts)
    {}
    virtual ~ReplPolicy() = default;

    /**
     * Choose the way to evict in @p set for incoming access @p ai.
     * @p blocks points at the set's `ways()` BlockMeta entries. Invalid
     * ways are chosen by the cache before this is consulted.
     */
    virtual std::uint32_t victim(std::uint32_t set, const AccessInfo &ai,
                                 const BlockMeta *blocks) = 0;

    /** Incoming block installed in (set, way). */
    virtual void onFill(std::uint32_t set, std::uint32_t way,
                        const AccessInfo &ai) = 0;

    /** Block in (set, way) was referenced. */
    virtual void onHit(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &ai) = 0;

    /** Block in (set, way) is being evicted (for SHCT-style training). */
    virtual void onEvict(std::uint32_t set, std::uint32_t way,
                         const BlockMeta &meta)
    {
        (void)set; (void)way; (void)meta;
    }

    /**
     * Give the policy a chance to refuse allocation entirely (dead-block
     * bypass, CbPred-style). Default: always allocate.
     */
    virtual bool bypassFill(std::uint32_t set, const AccessInfo &ai)
    {
        (void)set; (void)ai;
        return false;
    }

    /**
     * Verify the policy's internal metadata: replacement state within
     * bounds (RRPVs, saturating counters), leader-set constituencies
     * disjoint, per-block training state well-formed. @p owner is the
     * owning cache's name, used to attribute violations. Throws
     * verify::InvariantViolation on the first inconsistency; the default
     * has nothing to verify.
     */
    virtual void checkInvariants(const std::string &owner) const
    {
        (void)owner;
    }

    virtual std::string name() const = 0;

    /**
     * Register observable state under "@p prefix.<slug>." (see
     * metricSlug): set-dueling PSEL, way quotas, bypass counters.
     * Training tables (SHCT, RRPVs) are not metrics. Default: nothing.
     */
    virtual void registerMetrics(obs::Registry &registry,
                                 const std::string &prefix)
    {
        (void)registry;
        (void)prefix;
    }

    /**
     * Zero statistic counters (not training state — set-dueling and
     * predictor tables persist across a stats reset just like cache
     * contents do). Default: nothing to reset.
     */
    virtual void resetStats() {}

    /**
     * Checkpoint the policy's training state (tacsim-ckpt-v1): RRPVs,
     * SHCT, set-dueling PSEL, randomized-victim RNG. The default throws
     * so a policy without support (Hawkeye's OPTgen history, dead-block
     * and CSALT wrappers) fails a checkpoint attempt loudly instead of
     * restoring with silently-reset predictors.
     */
    virtual void
    saveState(SerialWriter &) const
    {
        throw std::runtime_error("checkpoint: replacement policy '" +
                                 name() + "' does not support save/restore");
    }

    virtual void
    loadState(SerialReader &)
    {
        throw std::runtime_error("checkpoint: replacement policy '" +
                                 name() + "' does not support save/restore");
    }

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    const ReplOpts &opts() const { return opts_; }

  protected:
    std::uint32_t sets_;
    std::uint32_t ways_;
    ReplOpts opts_;
};

/** Baseline policy families selectable from the factory. */
enum class PolicyKind
{
    LRU,
    Random,
    SRRIP,
    BRRIP,
    DRRIP,
    SHiP,
    Hawkeye,
};

/** Human-readable policy-kind name ("DRRIP", ...). */
std::string policyKindName(PolicyKind kind);

/** Metric-name slug of a policy name: lowercase alphanumerics only
 *  ("T-DRRIP" -> "tdrrip", "SHiP" -> "ship"). */
std::string metricSlug(const std::string &name);

/** Build a policy instance. */
std::unique_ptr<ReplPolicy> makePolicy(PolicyKind kind, std::uint32_t sets,
                                       std::uint32_t ways,
                                       ReplOpts opts = {},
                                       std::uint64_t seed = 0x7ac51);

} // namespace tacsim

#endif // TACSIM_CACHE_REPL_POLICY_HH
