#include "cache/repl/ship.hh"

#include <sstream>

#include "common/rng.hh"
#include "sim/verify.hh"

namespace tacsim {

ShipPolicy::ShipPolicy(std::uint32_t sets, std::uint32_t ways,
                       ReplOpts opts)
    : RripBase(sets, ways, opts),
      shct_(kShctSize, 1),
      blockSig_(static_cast<std::size_t>(sets) * ways, 0),
      blockOutcome_(static_cast<std::size_t>(sets) * ways, 0)
{}

std::uint32_t
ShipPolicy::signatureFor(Addr ip, bool isTranslation, bool isReplay) const
{
    std::uint64_t key = ip;
    if (opts_.newSignatures) {
        // Paper §IV: shift the IP by the flags so the three traffic
        // classes hash to disjoint SHCT regions.
        key = (ip << 2) | (isTranslation ? 1u : 0u) |
            (isReplay ? 2u : 0u);
    }
    return static_cast<std::uint32_t>(hashMix(key) & (kShctSize - 1));
}

std::uint32_t
ShipPolicy::sigOf(const AccessInfo &ai) const
{
    return signatureFor(ai.ip, ai.isTranslation(), ai.isReplay);
}

void
ShipPolicy::onFill(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &ai)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const std::uint32_t sig = sigOf(ai);
    blockSig_[idx] = sig;
    blockOutcome_[idx] = 0;

    // SHiP insertion: predicted-dead signatures insert distant.
    std::uint8_t base = shct_[sig] == 0 ? kMaxRrpv : kMaxRrpv - 1;
    setRrpv(set, way, overrideInsertion(ai, base));
}

void
ShipPolicy::onHit(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &ai)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    if (!blockOutcome_[idx]) {
        blockOutcome_[idx] = 1;
        std::uint8_t &ctr = shct_[blockSig_[idx]];
        if (ctr < kCounterMax)
            ++ctr;
    }
    RripBase::onHit(set, way, ai);
}

void
ShipPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                    const BlockMeta &meta)
{
    if (!meta.valid)
        return;
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    if (!blockOutcome_[idx]) {
        std::uint8_t &ctr = shct_[blockSig_[idx]];
        if (ctr > 0)
            --ctr;
    }
}

void
ShipPolicy::checkInvariants(const std::string &owner) const
{
    RripBase::checkInvariants(owner);
    const std::string who = owner + "/" + name();
    for (std::uint32_t sig = 0; sig < kShctSize; ++sig) {
        if (shct_[sig] > kCounterMax) {
            std::ostringstream os;
            os << "shct[" << sig << "]=" << static_cast<int>(shct_[sig])
               << " exceeds " << static_cast<int>(kCounterMax);
            throw verify::InvariantViolation(who, "shct-range", os.str());
        }
    }
    for (std::uint32_t set = 0; set < sets_; ++set) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::size_t idx =
                static_cast<std::size_t>(set) * ways_ + w;
            if (blockSig_[idx] >= kShctSize)
                throw verify::InvariantViolation(
                    who, "sig-range", "training signature out of table",
                    set, w);
            if (blockOutcome_[idx] > 1)
                throw verify::InvariantViolation(
                    who, "outcome-range", "outcome bit not 0/1", set, w);
        }
    }
}

std::string
ShipPolicy::name() const
{
    if (opts_.translationRrpv0 && opts_.newSignatures)
        return "T-SHiP";
    if (opts_.newSignatures)
        return "SHiP-NewSign";
    if (opts_.translationRrpv0)
        return "SHiP-TR0";
    return "SHiP";
}

} // namespace tacsim
