#include "cache/repl/basic.hh"

namespace tacsim {

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts)
    : ReplPolicy(sets, ways, opts),
      stamp_(static_cast<std::size_t>(sets) * ways, 0)
{}

std::uint32_t
LruPolicy::victim(std::uint32_t set, const AccessInfo &, const BlockMeta *)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t v = 0;
    std::uint64_t best = stamp_[base];
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (stamp_[base + w] < best) {
            best = stamp_[base + w];
            v = w;
        }
    }
    return v;
}

void
LruPolicy::onFill(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &ai)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const bool evictFast = (opts_.replayEvictFast && ai.isReplay &&
                            !opts_.replayRrpv0) ||
        ai.distantHint;
    // LRU position 0 == immediate eviction candidate; MRU == clock.
    stamp_[idx] = evictFast ? 0 : clock_++;
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = clock_++;
}

} // namespace tacsim
