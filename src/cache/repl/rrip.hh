/**
 * @file
 * The RRIP family (Jaleel et al., ISCA'10): SRRIP, BRRIP and set-dueling
 * DRRIP, plus the paper's translation-conscious T-DRRIP obtained through
 * ReplOpts.
 *
 * T-DRRIP (paper §IV, Fig. 9): leaf-level translation fills are inserted
 * with RRPV=0 (retain) and replay-load fills with RRPV=3 (evict first),
 * because >95% of replay blocks are dead on arrival. Promotion and
 * eviction are unchanged. The Fig. 10 ablation (replays also at RRPV=0)
 * is opts.replayRrpv0.
 */

#ifndef TACSIM_CACHE_REPL_RRIP_HH
#define TACSIM_CACHE_REPL_RRIP_HH

#include <vector>

#include "cache/repl/policy.hh"
#include "common/rng.hh"

namespace tacsim {

/** Shared RRPV machinery for the RRIP family. */
class RripBase : public ReplPolicy
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3;

    RripBase(std::uint32_t sets, std::uint32_t ways, ReplOpts opts);

    std::uint32_t victim(std::uint32_t set, const AccessInfo &ai,
                         const BlockMeta *blocks) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &ai) override;
    void checkInvariants(const std::string &owner) const override;

    /** RRPV of (set, way) — exposed for tests. */
    std::uint8_t
    rrpv(std::uint32_t set, std::uint32_t way) const
    {
        return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
    }

    void
    saveState(SerialWriter &w) const override
    {
        w.putU64(rrpv_.size());
        for (std::uint8_t v : rrpv_)
            w.putU8(v);
    }

    void
    loadState(SerialReader &r) override
    {
        if (r.getU64() != rrpv_.size())
            throw std::runtime_error(
                "checkpoint: RRPV array size mismatch");
        for (auto &v : rrpv_) {
            v = r.getU8();
            if (v > kMaxRrpv)
                throw std::runtime_error(
                    "checkpoint: RRPV value out of range");
        }
    }

  protected:
    /**
     * Apply the translation/replay insertion overrides; returns the RRPV
     * to use, or @p base if no override applies.
     */
    std::uint8_t overrideInsertion(const AccessInfo &ai,
                                   std::uint8_t base) const;

    void
    setRrpv(std::uint32_t set, std::uint32_t way, std::uint8_t v)
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = v;
    }

    std::vector<std::uint8_t> rrpv_;
};

/** Static RRIP: insert at long re-reference interval (RRPV=2). */
class SrripPolicy : public RripBase
{
  public:
    using RripBase::RripBase;

    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    std::string name() const override { return "SRRIP"; }
};

/** Bimodal RRIP: insert at RRPV=3 except ~1/32 of fills at RRPV=2. */
class BrripPolicy : public RripBase
{
  public:
    BrripPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts,
                std::uint64_t seed)
        : RripBase(sets, ways, opts), rng_(seed)
    {}

    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    std::string name() const override { return "BRRIP"; }

    void
    saveState(SerialWriter &w) const override
    {
        RripBase::saveState(w);
        std::uint64_t s[Rng::kStateWords];
        rng_.state(s);
        for (std::uint64_t word : s)
            w.putU64(word);
    }

    void
    loadState(SerialReader &r) override
    {
        RripBase::loadState(r);
        std::uint64_t s[Rng::kStateWords];
        for (auto &word : s)
            word = r.getU64();
        rng_.setState(s);
    }

  private:
    Rng rng_;
};

/**
 * Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion with a
 * 10-bit PSEL counter. With translation-conscious ReplOpts this is the
 * paper's T-DRRIP.
 */
class DrripPolicy : public RripBase
{
  public:
    static constexpr unsigned kLeaderSets = 32;
    static constexpr int kPselMax = 1023;

    DrripPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts,
                std::uint64_t seed);

    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    std::string name() const override;
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix) override;
    void checkInvariants(const std::string &owner) const override;

    /** Exposed for tests. */
    int psel() const { return psel_; }
    bool isSrripLeader(std::uint32_t set) const;
    bool isBrripLeader(std::uint32_t set) const;

    void
    saveState(SerialWriter &w) const override
    {
        RripBase::saveState(w);
        std::uint64_t s[Rng::kStateWords];
        rng_.state(s);
        for (std::uint64_t word : s)
            w.putU64(word);
        w.putI64(psel_);
    }

    void
    loadState(SerialReader &r) override
    {
        RripBase::loadState(r);
        std::uint64_t s[Rng::kStateWords];
        for (auto &word : s)
            word = r.getU64();
        rng_.setState(s);
        const std::int64_t psel = r.getI64();
        if (psel < 0 || psel > kPselMax)
            throw std::runtime_error("checkpoint: PSEL out of range");
        psel_ = static_cast<int>(psel);
        // leaderStride_ is derived from the geometry in the constructor
        // and never mutates, so it is not part of the payload.
    }

  private:
    Rng rng_;
    int psel_ = kPselMax / 2;
    std::uint32_t leaderStride_;
};

} // namespace tacsim

#endif // TACSIM_CACHE_REPL_RRIP_HH
