/**
 * @file
 * SHiP-PC (Wu et al., MICRO'11): signature-based hit prediction on top of
 * SRRIP eviction/promotion, plus the paper's NewSign and T-SHiP variants.
 *
 * NewSign (paper §IV): the training signature is extended with the
 * IsTranslation and IsReplay flags so PTE blocks, replay blocks and
 * non-replay blocks train disjoint SHCT entries:
 *
 *     signature_translations = IP << IsTranslation
 *     signature_replayloads  = IP << IsReplay + IsTranslation
 *
 * The flag bits are folded into the SHCT hash, so the table size (and
 * hence storage) is unchanged — this is the paper's zero-storage claim.
 *
 * T-SHiP additionally inserts leaf-level translations at RRPV=0.
 */

#ifndef TACSIM_CACHE_REPL_SHIP_HH
#define TACSIM_CACHE_REPL_SHIP_HH

#include <vector>

#include "cache/repl/rrip.hh"

namespace tacsim {

class ShipPolicy : public RripBase
{
  public:
    static constexpr std::uint32_t kShctBits = 14;
    static constexpr std::uint32_t kShctSize = 1u << kShctBits;
    static constexpr std::uint8_t kCounterMax = 7; // 3-bit counters

    ShipPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts);

    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &ai) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const BlockMeta &meta) override;
    std::string name() const override;
    void checkInvariants(const std::string &owner) const override;

    /** Signature for an access — flag-extended when newSignatures is on.
     *  Exposed for tests. */
    std::uint32_t signatureFor(Addr ip, bool isTranslation,
                               bool isReplay) const;

    std::uint8_t shct(std::uint32_t sig) const { return shct_[sig]; }

    void
    saveState(SerialWriter &w) const override
    {
        RripBase::saveState(w);
        w.putU64(shct_.size());
        for (std::uint8_t c : shct_)
            w.putU8(c);
        w.putU64(blockSig_.size());
        for (std::uint32_t s : blockSig_)
            w.putU32(s);
        for (std::uint8_t o : blockOutcome_)
            w.putU8(o);
    }

    void
    loadState(SerialReader &r) override
    {
        RripBase::loadState(r);
        if (r.getU64() != shct_.size())
            throw std::runtime_error("checkpoint: SHCT size mismatch");
        for (auto &c : shct_) {
            c = r.getU8();
            if (c > kCounterMax)
                throw std::runtime_error(
                    "checkpoint: SHCT counter out of range");
        }
        if (r.getU64() != blockSig_.size())
            throw std::runtime_error(
                "checkpoint: SHiP block-state size mismatch");
        for (auto &s : blockSig_)
            s = r.getU32();
        for (auto &o : blockOutcome_)
            o = r.getU8();
    }

  private:
    std::uint32_t sigOf(const AccessInfo &ai) const;

    std::vector<std::uint8_t> shct_;
    /** Per-block training state (signature of filling access + outcome). */
    std::vector<std::uint32_t> blockSig_;
    std::vector<std::uint8_t> blockOutcome_; // 1 = reused since fill
};

} // namespace tacsim

#endif // TACSIM_CACHE_REPL_SHIP_HH
