#include "cache/repl/hawkeye.hh"

#include <algorithm>
#include <sstream>

#include "common/rng.hh"
#include "sim/verify.hh"

namespace tacsim {

HawkeyePolicy::HawkeyePolicy(std::uint32_t sets, std::uint32_t ways,
                             ReplOpts opts)
    : ReplPolicy(sets, ways, opts),
      sampleStride_(std::max(1u, sets / kTargetSampledSets)),
      history_(8 * ways),
      pred_(kPredSize, kFriendlyThreshold), // weakly friendly at reset
      rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv),
      blockSig_(static_cast<std::size_t>(sets) * ways, 0),
      blockFriendly_(static_cast<std::size_t>(sets) * ways, 0)
{}

std::uint32_t
HawkeyePolicy::predIndex(Addr ip, bool isTranslation, bool isReplay) const
{
    std::uint64_t key = ip;
    if (opts_.newSignatures)
        key = (ip << 2) | (isTranslation ? 1u : 0u) | (isReplay ? 2u : 0u);
    return static_cast<std::uint32_t>(hashMix(key) & (kPredSize - 1));
}

std::uint32_t
HawkeyePolicy::sigOf(const AccessInfo &ai) const
{
    return predIndex(ai.ip, ai.isTranslation(), ai.isReplay);
}

void
HawkeyePolicy::trainUp(std::uint32_t sig)
{
    if (pred_[sig] < kCtrMax)
        ++pred_[sig];
}

void
HawkeyePolicy::trainDown(std::uint32_t sig)
{
    if (pred_[sig] > 0)
        --pred_[sig];
}

void
HawkeyePolicy::train(std::uint32_t set, const AccessInfo &ai)
{
    SampledSet &ss = samples_[set];
    if (ss.occupancy.empty()) {
        ss.occupancy.assign(history_, 0);
        ss.entries.resize(history_);
    }

    const std::uint64_t t = ss.clock++;
    ss.occupancy[t % history_] = 0; // recycle the oldest quantum

    // Look for the previous access to this block in the sampler.
    SampledSet::Entry *match = nullptr;
    SampledSet::Entry *oldest = &ss.entries[0];
    for (auto &e : ss.entries) {
        if (e.valid && e.block == ai.blockAddr) {
            match = &e;
            break;
        }
        if (!e.valid) {
            oldest = &e;
        } else if (oldest->valid && e.lastTime < oldest->lastTime) {
            oldest = &e;
        }
    }

    if (match) {
        const std::uint64_t t0 = match->lastTime;
        if (t - t0 < history_) {
            // Would OPT have kept this line across [t0, t)?
            bool fits = true;
            for (std::uint64_t i = t0; i < t; ++i) {
                if (ss.occupancy[i % history_] >= ways_) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                for (std::uint64_t i = t0; i < t; ++i)
                    ++ss.occupancy[i % history_];
                trainUp(match->lastSig);
            } else {
                trainDown(match->lastSig);
            }
        } else {
            // Reuse distance beyond the OPTgen window: OPT would miss.
            trainDown(match->lastSig);
        }
        match->lastTime = t;
        match->lastSig = sigOf(ai);
    } else {
        oldest->valid = true;
        oldest->block = ai.blockAddr;
        oldest->lastTime = t;
        oldest->lastSig = sigOf(ai);
    }
}

std::uint32_t
HawkeyePolicy::victim(std::uint32_t set, const AccessInfo &,
                      const BlockMeta *)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t v = 0;
    std::uint8_t worst = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const std::uint8_t r = rrpv_[base + w];
        if (r == kMaxRrpv)
            return w;
        if (r >= worst) {
            worst = r;
            v = w;
        }
    }
    // Evicting a predicted-friendly block means the predictor was wrong:
    // detrain the PC that last touched it.
    if (blockFriendly_[base + v])
        trainDown(blockSig_[base + v]);
    return v;
}

void
HawkeyePolicy::touch(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &ai, bool isFill)
{
    if (isSampled(set) && ai.cat != BlockCat::Writeback)
        train(set, ai);

    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    const std::size_t idx = base + way;
    const std::uint32_t sig = sigOf(ai);
    bool isFriendly = friendly(sig);

    // Translation-conscious overrides (T-Hawkeye).
    if (ai.distantHint)
        isFriendly = false;
    else if (opts_.translationRrpv0 && ai.isLeafTranslation())
        isFriendly = true;
    else if (ai.isReplay && ai.cat == BlockCat::Replay) {
        if (opts_.replayRrpv0)
            isFriendly = true;
        else if (opts_.replayEvictFast)
            isFriendly = false;
    }

    blockSig_[idx] = sig;
    blockFriendly_[idx] = isFriendly ? 1 : 0;

    if (!isFriendly) {
        rrpv_[idx] = kMaxRrpv;
        return;
    }
    rrpv_[idx] = 0;
    if (isFill) {
        // Aging: make room for the new friendly line.
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (w != way && rrpv_[base + w] < kMaxRrpv - 1)
                ++rrpv_[base + w];
        }
    }
}

void
HawkeyePolicy::onFill(std::uint32_t set, std::uint32_t way,
                      const AccessInfo &ai)
{
    touch(set, way, ai, true);
}

void
HawkeyePolicy::onHit(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &ai)
{
    touch(set, way, ai, false);
}

void
HawkeyePolicy::onEvict(std::uint32_t, std::uint32_t, const BlockMeta &)
{
    // Detraining happens in victim(); nothing extra on eviction.
}

void
HawkeyePolicy::checkInvariants(const std::string &owner) const
{
    const std::string who = owner + "/" + name();
    for (std::uint32_t sig = 0; sig < kPredSize; ++sig) {
        if (pred_[sig] > kCtrMax) {
            std::ostringstream os;
            os << "pred[" << sig << "]=" << static_cast<int>(pred_[sig])
               << " exceeds " << static_cast<int>(kCtrMax);
            throw verify::InvariantViolation(who, "pred-range", os.str());
        }
    }
    for (std::uint32_t set = 0; set < sets_; ++set) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::size_t idx =
                static_cast<std::size_t>(set) * ways_ + w;
            if (rrpv_[idx] > kMaxRrpv) {
                std::ostringstream os;
                os << "rrpv=" << static_cast<int>(rrpv_[idx])
                   << " exceeds max " << static_cast<int>(kMaxRrpv);
                throw verify::InvariantViolation(who, "rrpv-range",
                                                 os.str(), set, w);
            }
            if (blockSig_[idx] >= kPredSize)
                throw verify::InvariantViolation(
                    who, "sig-range", "training signature out of table",
                    set, w);
            if (blockFriendly_[idx] > 1)
                throw verify::InvariantViolation(
                    who, "friendly-range", "friendliness bit not 0/1",
                    set, w);
        }
    }
    // Sort the sampled-set keys so a violation always reports the
    // lowest offending set, independent of hash-table slot order.
    std::vector<std::uint32_t> sampledSets;
    sampledSets.reserve(samples_.size());
    for (const auto &[set, ss] : samples_) // tacsim-lint: allow(nondeterminism-hazard) key harvest only; the iteration below is over the sorted copy
        sampledSets.push_back(set);
    std::sort(sampledSets.begin(), sampledSets.end());
    for (const std::uint32_t set : sampledSets) {
        const SampledSet &ss = samples_.at(set);
        if (set >= sets_ || !isSampled(set)) {
            std::ostringstream os;
            os << "sampler holds non-sampled set " << set
               << " (stride " << sampleStride_ << ")";
            throw verify::InvariantViolation(who, "sample-set", os.str(),
                                             set);
        }
        for (std::size_t i = 0; i < ss.occupancy.size(); ++i) {
            if (ss.occupancy[i] > ways_) {
                std::ostringstream os;
                os << "occupancy[" << i << "]="
                   << static_cast<int>(ss.occupancy[i])
                   << " exceeds associativity " << ways_;
                throw verify::InvariantViolation(who, "optgen-occupancy",
                                                 os.str(), set);
            }
        }
    }
}

std::string
HawkeyePolicy::name() const
{
    if (opts_.translationRrpv0 && opts_.newSignatures)
        return "T-Hawkeye";
    if (opts_.newSignatures)
        return "Hawkeye-NewSign";
    return "Hawkeye";
}

} // namespace tacsim
