/**
 * @file
 * CbPred/DpPred-style dead-block management (Mazumdar et al., HPCA'21),
 * used as a comparison point in the paper's §V-B.
 *
 * A sampling dead-block predictor (in the spirit of Khan et al.,
 * MICRO'10) learns, per fill signature, whether blocks die without reuse;
 * predicted-dead fills are bypassed at the LLC. The paper's argument is
 * that bypassing frees space but does not shorten the ROB stalls of the
 * replay loads themselves — our benches reproduce that comparison.
 */

#ifndef TACSIM_CACHE_REPL_DEADBLOCK_HH
#define TACSIM_CACHE_REPL_DEADBLOCK_HH

#include <memory>
#include <vector>

#include "cache/repl/policy.hh"

namespace tacsim {

class DeadBlockPolicy : public ReplPolicy
{
  public:
    static constexpr std::uint32_t kTableBits = 13;
    static constexpr std::uint32_t kTableSize = 1u << kTableBits;
    static constexpr std::uint8_t kCtrMax = 3;
    /** Bypass when the 2-bit dead counter saturates. */
    static constexpr std::uint8_t kDeadThreshold = 3;

    /** Wraps @p inner (typically SHiP) and adds bypass. */
    DeadBlockPolicy(std::uint32_t sets, std::uint32_t ways, ReplOpts opts,
                    std::unique_ptr<ReplPolicy> inner);

    std::uint32_t victim(std::uint32_t set, const AccessInfo &ai,
                         const BlockMeta *blocks) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &ai) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &ai) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const BlockMeta &meta) override;
    bool bypassFill(std::uint32_t set, const AccessInfo &ai) override;
    std::string name() const override;
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix) override;
    void resetStats() override;
    void checkInvariants(const std::string &owner) const override;

    std::uint64_t bypasses() const { return bypasses_; }

  private:
    std::uint32_t indexOf(Addr ip) const;

    std::unique_ptr<ReplPolicy> inner_;
    std::vector<std::uint8_t> deadCtr_;
    std::vector<std::uint32_t> blockIdx_;
    std::vector<std::uint8_t> blockReused_;
    std::uint64_t bypasses_ = 0;
};

} // namespace tacsim

#endif // TACSIM_CACHE_REPL_DEADBLOCK_HH
