#include "cache/slice_router.hh"

#include "cache/cache.hh"
#include "obs/registry.hh"

namespace tacsim {

SliceRouter::SliceRouter(std::string name, EventQueue &eq,
                         std::vector<Cache *> slices, std::uint32_t smt,
                         Cycle hopLatency)
    : name_(std::move(name)),
      eq_(eq),
      slices_(std::move(slices)),
      sliceMask_(static_cast<std::uint32_t>(slices_.size()) - 1),
      smt_(smt ? smt : 1),
      hopLatency_(hopLatency)
{
    const std::size_t n = slices_.size();
    TACSIM_CHECK(n > 0 && (n & (n - 1)) == 0 &&
                 "slice count must be a power of two");
}

std::uint32_t
SliceRouter::sliceOf(Addr paddr) const
{
    return static_cast<std::uint32_t>(paddr >> kBlockBits) & sliceMask_;
}

std::uint32_t
SliceRouter::hops(std::uint32_t core, std::uint32_t slice) const
{
    const std::uint32_t stop = core & sliceMask_;
    const std::uint32_t n = sliceMask_ + 1;
    const std::uint32_t d = stop > slice ? stop - slice : slice - stop;
    return d < n - d ? d : n - d;
}

void
SliceRouter::access(const MemRequestPtr &req)
{
    const std::uint32_t slice = sliceOf(req->blockAddr());
    Cache *home = slices_[slice];
    ++stats_.routed;

    Cycle extra = 0;
    if (hopLatency_ != 0) {
        // Writebacks and prefetch children have no issuing context
        // (cpu defaults to 0); charging them core 0's distance would
        // make slice 0 artificially close. Charge the ring diameter.
        const bool attributed =
            req->type != ReqType::Writeback &&
            req->type != ReqType::Prefetch;
        const std::uint32_t h = attributed
            ? hops(req->cpu / smt_, slice)
            : (sliceMask_ + 1) / 2;
        extra = hopLatency_ * h;
    }
    if (extra == 0) {
        home->access(req);
        return;
    }
    stats_.hopCycles += extra;
    MemRequestPtr keep = req;
    eq_.schedule(extra, [home, keep] { home->access(keep); });
}

void
SliceRouter::registerMetrics(obs::Registry &registry,
                             const std::string &prefix)
{
    registry.addCounter(prefix + ".routed", &stats_.routed);
    registry.addCounter(prefix + ".hop_cycles", &stats_.hopCycles);
    registry.addResetHook([this] { resetStats(); });
}

} // namespace tacsim
